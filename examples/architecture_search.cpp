// Deep dive into the OptInter search stage: watch the per-pair method
// probabilities evolve during Gumbel-softmax training, then compare the
// final architecture with the generator's planted ground truth and with
// the mutual-information ranking (paper §II-C and §III-G).
//
//   ./build/examples/architecture_search [--dataset=tiny] [--epochs=3]

#include <cstdio>

#include "common/flags.h"
#include "core/pipeline.h"
#include "core/search_model.h"
#include "metrics/mutual_information.h"
#include "obs/run_report.h"
#include "obs/timeline.h"
#include "synth/prepare.h"

using namespace optinter;

namespace {

void PrintProbRow(const SearchModel& model, size_t pair, const char* tag) {
  auto probs = model.PairProbabilities(pair);
  std::printf("  pair %3zu [%-13s]  p(mem)=%.3f p(fact)=%.3f p(naive)=%.3f\n",
              pair, tag, probs[0], probs[1], probs[2]);
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  flags.AddString("dataset", "tiny", "profile to search on");
  flags.AddInt("epochs", 3, "search epochs");
  flags.AddDouble("rows_scale", 1.0, "row-count multiplier");
  flags.AddString("report", "",
                  "write a JSON run report (search dynamics + metrics + "
                  "span profile) to this path");
  flags.AddInt("alpha_sample_every", 0,
               "sample argmax-architecture flips every N train steps "
               "(0 = off); flips land in the report's search_dynamics and "
               "in the OPTINTER_OBS_TIMELINE trace");
  Status st = flags.Parse(argc, argv);
  if (!st.ok()) return st.code() == StatusCode::kFailedPrecondition ? 0 : 1;

  PrepareOptions popts;
  popts.rows_scale = flags.GetDouble("rows_scale");
  auto prepared = PrepareProfile(flags.GetString("dataset"), popts);
  CHECK(prepared.ok()) << prepared.status().ToString();
  const PreparedDataset& p = *prepared;
  const auto kinds = p.config.PlantedKinds();

  HyperParams hp = DefaultHyperParams(flags.GetString("dataset"));
  hp.search_epochs = static_cast<size_t>(flags.GetInt("epochs"));

  // Pick one planted pair of each kind to track.
  size_t track[3] = {SIZE_MAX, SIZE_MAX, SIZE_MAX};
  for (size_t q = 0; q < kinds.size(); ++q) {
    if (kinds[q] == PlantedKind::kMemorize && track[0] == SIZE_MAX)
      track[0] = q;
    if (kinds[q] == PlantedKind::kFactorize && track[1] == SIZE_MAX)
      track[1] = q;
    if (kinds[q] == PlantedKind::kNoise && track[2] == SIZE_MAX)
      track[2] = q;
  }
  const char* tags[3] = {"planted-mem", "planted-fact", "planted-noise"};

  SearchModel model(p.data, hp, UpdateMode::kJoint);
  Batcher batcher(&p.data, p.splits.train, hp.batch_size, hp.seed);
  obs::SearchDynamics dynamics;
  dynamics.sample_every =
      static_cast<size_t>(flags.GetInt("alpha_sample_every"));
  size_t global_step = 0;
  Architecture sampled_arch;
  Architecture prev_arch;
  std::printf("search on %s: %zu pairs, tau %g -> %g over %zu epochs\n",
              p.config.name.c_str(), p.data.num_pairs(),
              hp.gumbel_temp_start, hp.gumbel_temp_end, hp.search_epochs);
  for (size_t epoch = 0; epoch < hp.search_epochs; ++epoch) {
    const float frac = hp.search_epochs > 1
                           ? static_cast<float>(epoch) /
                                 static_cast<float>(hp.search_epochs - 1)
                           : 1.0f;
    model.SetTemperature(hp.gumbel_temp_start +
                         frac * (hp.gumbel_temp_end -
                                 hp.gumbel_temp_start));
    batcher.StartEpoch();
    double loss_sum = 0.0;
    size_t batches = 0;
    for (;;) {
      Batch b = batcher.Next();
      if (b.size == 0) break;
      loss_sum += model.TrainStep(b);
      ++batches;
      ++global_step;
      if (dynamics.sample_every > 0 &&
          global_step % dynamics.sample_every == 0) {
        const Architecture cur = model.ExtractArchitecture();
        if (!sampled_arch.empty()) {
          for (size_t q = 0; q < cur.size(); ++q) {
            if (cur[q] == sampled_arch[q]) continue;
            obs::AlphaFlipEvent ev;
            ev.epoch = epoch;
            ev.step = global_step;
            ev.pair = q;
            ev.from = static_cast<int>(sampled_arch[q]);
            ev.to = static_cast<int>(cur[q]);
            if (obs::Timeline::Enabled()) {
              char detail[obs::Timeline::kDetailCapacity];
              std::snprintf(detail, sizeof(detail), "pair=%zu %s->%s", q,
                            obs::AlphaMethodName(ev.from),
                            obs::AlphaMethodName(ev.to));
              obs::Timeline::RecordInstant("alpha_flip", detail);
            }
            dynamics.flip_events.push_back(ev);
          }
        }
        sampled_arch = cur;
      }
    }
    std::printf("epoch %zu (tau %.2f): train loss %.4f\n", epoch,
                model.temperature(), loss_sum / batches);
    for (int k = 0; k < 3; ++k) {
      if (track[k] != SIZE_MAX) PrintProbRow(model, track[k], tags[k]);
    }
    const Architecture epoch_arch = model.ExtractArchitecture();
    obs::SearchEpochDynamics dyn =
        SnapshotSearchDynamics(model, epoch, prev_arch, epoch_arch);
    std::printf("  mean H(alpha) %.4f  argmax [%zu,%zu,%zu]  flips %zu\n",
                dyn.mean_alpha_entropy, dyn.argmax_counts[0],
                dyn.argmax_counts[1], dyn.argmax_counts[2],
                dyn.argmax_flips);
    dynamics.epochs.push_back(std::move(dyn));
    prev_arch = epoch_arch;
  }

  Architecture arch = model.ExtractArchitecture();
  std::printf("\nfinal architecture: %s\n",
              ArchCountsToString(CountArchitecture(arch)).c_str());
  if (dynamics.sample_every > 0) {
    std::printf("within-epoch argmax flips (sampled every %zu steps): %zu\n",
                dynamics.sample_every, dynamics.flip_events.size());
  }

  // Recall vs planted ground truth.
  size_t mem_total = 0, mem_hit = 0, noise_total = 0, noise_not_mem = 0;
  for (size_t q = 0; q < kinds.size(); ++q) {
    if (kinds[q] == PlantedKind::kMemorize) {
      ++mem_total;
      mem_hit += arch[q] == InterMethod::kMemorize;
    } else if (kinds[q] == PlantedKind::kNoise) {
      ++noise_total;
      noise_not_mem += arch[q] != InterMethod::kMemorize;
    }
  }
  std::printf("planted memorize pairs recalled as memorize: %zu/%zu\n",
              mem_hit, mem_total);
  std::printf("planted noise pairs not memorized: %zu/%zu\n", noise_not_mem,
              noise_total);

  // MI of memorized vs naive selections.
  const auto mi = AllPairMutualInformation(p.data, p.splits.train);
  double mi_mem = 0.0, mi_naive = 0.0;
  size_t n_mem = 0, n_naive = 0;
  for (size_t q = 0; q < arch.size(); ++q) {
    if (arch[q] == InterMethod::kMemorize) {
      mi_mem += mi[q];
      ++n_mem;
    } else if (arch[q] == InterMethod::kNaive) {
      mi_naive += mi[q];
      ++n_naive;
    }
  }
  if (n_mem > 0 && n_naive > 0) {
    std::printf("mean MI: memorized %.4f vs naive %.4f nats\n",
                mi_mem / n_mem, mi_naive / n_naive);
  }

  const std::string report_path = flags.GetString("report");
  if (!report_path.empty()) {
    obs::RunReport report("architecture_search");
    report.SetMeta("dataset", obs::JsonValue::Str(p.config.name));
    report.SetMeta("search_epochs", obs::JsonValue::Uint(hp.search_epochs));
    report.AddSection("search_dynamics",
                      obs::SearchDynamicsToJson(dynamics));
    obs::JsonValue recall = obs::JsonValue::MakeObject();
    recall.Set("planted_memorize_recalled", obs::JsonValue::Uint(mem_hit));
    recall.Set("planted_memorize_total", obs::JsonValue::Uint(mem_total));
    recall.Set("planted_noise_not_memorized",
               obs::JsonValue::Uint(noise_not_mem));
    recall.Set("planted_noise_total", obs::JsonValue::Uint(noise_total));
    report.AddSection("planted_recall", std::move(recall));
    report.CaptureMetrics();
    report.CaptureSpans();
    std::string error;
    if (!report.WriteFile(report_path, &error)) {
      std::fprintf(stderr, "failed to write report %s: %s\n",
                   report_path.c_str(), error.c_str());
      return 1;
    }
    std::printf("run report written to %s\n", report_path.c_str());
  }
  return 0;
}
