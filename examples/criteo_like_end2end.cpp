// End-to-end walkthrough on the criteo_like profile: dataset statistics,
// a naïve / factorized / memorized baseline each, and the full OptInter
// two-stage pipeline — a miniature of the paper's Table V on one dataset.
//
//   ./build/examples/criteo_like_end2end [--rows_scale=0.5] [--epochs=4]

#include <cstdio>

#include "common/flags.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/pipeline.h"
#include "core/zoo.h"
#include "obs/run_report.h"
#include "synth/prepare.h"

using namespace optinter;

int main(int argc, char** argv) {
  FlagParser flags;
  flags.AddDouble("rows_scale", 0.5, "row-count multiplier");
  flags.AddInt("epochs", 0, "override epochs (0 = profile default)");
  flags.AddBool("verbose", false, "per-epoch logs");
  flags.AddString("report", "",
                  "write a JSON run report (telemetry + metrics + span "
                  "profile + search dynamics) to this path");
  Status st = flags.Parse(argc, argv);
  if (!st.ok()) return st.code() == StatusCode::kFailedPrecondition ? 0 : 1;

  PrepareOptions popts;
  popts.rows_scale = flags.GetDouble("rows_scale");
  auto prepared = PrepareProfile("criteo_like", popts);
  CHECK(prepared.ok()) << prepared.status().ToString();
  const PreparedDataset& p = *prepared;

  std::printf("criteo_like: %zu rows | %zu cate + %zu cont fields | %zu "
              "pairs | %zu orig values | %zu cross values | pos %.3f\n",
              p.data.num_rows, p.data.num_categorical(),
              p.data.num_continuous(), p.data.num_pairs(),
              p.data.TotalOrigVocab(), p.data.TotalCrossVocab(),
              p.data.PositiveRatio());

  HyperParams hp = DefaultHyperParams("criteo_like");
  if (flags.GetInt("epochs") > 0) {
    hp.epochs = static_cast<size_t>(flags.GetInt("epochs"));
  }
  TrainOptions topts;
  topts.epochs = hp.epochs;
  topts.batch_size = hp.batch_size;
  topts.seed = hp.seed;
  topts.patience = hp.early_stop_patience;
  topts.verbose = flags.GetBool("verbose");

  obs::JsonValue baseline_rows = obs::JsonValue::MakeArray();
  std::printf("\n%-12s %8s %9s %10s %8s\n", "model", "AUC", "logloss",
              "params", "sec");
  for (const auto& name : {"FNN", "IPNN", "OptInter-F", "Poly2",
                           "OptInter-M"}) {
    auto model = CreateBaseline(name, p.data, hp);
    CHECK(model.ok()) << model.status().ToString();
    TrainSummary s = TrainModel(model->get(), p.data, p.splits, topts);
    std::printf("%-12s %8.4f %9.4f %10s %8.1f\n", name, s.final_test.auc,
                s.final_test.logloss,
                HumanCount((*model)->ParamCount()).c_str(), s.seconds);
    obs::JsonValue row = obs::JsonValue::MakeObject();
    row.Set("model", obs::JsonValue::Str(name));
    row.Set("params", obs::JsonValue::Uint((*model)->ParamCount()));
    row.Set("summary", TrainSummaryToJson(s));
    baseline_rows.Push(std::move(row));
  }

  Stopwatch timer;
  SearchOptions sopts;
  sopts.search_epochs = hp.search_epochs;
  sopts.verbose = flags.GetBool("verbose");
  OptInterResult r = RunOptInter(p.data, p.splits, hp, sopts, topts);
  std::printf("%-12s %8.4f %9.4f %10s %8.1f  arch %s (search %.1fs)\n",
              "OptInter", r.retrain.final_test.auc,
              r.retrain.final_test.logloss,
              HumanCount(r.param_count).c_str(), timer.Elapsed(),
              ArchCountsToString(CountArchitecture(r.search.arch)).c_str(),
              r.search.seconds);

  std::printf("\nThe searched architecture memorizes %zu of %zu pairs; "
              "compare its parameter count with OptInter-M above.\n",
              CountArchitecture(r.search.arch).memorize,
              p.data.num_pairs());

  const std::string report_path = flags.GetString("report");
  if (!report_path.empty()) {
    obs::RunReport report("criteo_like_end2end");
    report.SetMeta("dataset", obs::JsonValue::Str("criteo_like"));
    report.SetMeta("rows_scale",
                   obs::JsonValue::Double(flags.GetDouble("rows_scale")));
    report.AddSection("baselines", std::move(baseline_rows));
    obs::JsonValue optinter = obs::JsonValue::MakeObject();
    optinter.Set("params", obs::JsonValue::Uint(r.param_count));
    optinter.Set("retrain", TrainSummaryToJson(r.retrain));
    optinter.Set("search_telemetry", TelemetryToJson(r.search.telemetry));
    optinter.Set("search_dynamics",
                 obs::SearchDynamicsToJson(r.search.dynamics));
    report.AddSection("optinter", std::move(optinter));
    report.CaptureMetrics();
    report.CaptureSpans();
    std::string error;
    if (!report.WriteFile(report_path, &error)) {
      std::fprintf(stderr, "failed to write report %s: %s\n",
                   report_path.c_str(), error.c_str());
      return 1;
    }
    std::printf("run report written to %s\n", report_path.c_str());
  }
  return 0;
}
