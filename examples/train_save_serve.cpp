// Production-flavoured walkthrough: load a CSV click log, encode it,
// run the OptInter pipeline, persist the searched architecture and the
// re-trained model, then reload everything into a PredictServer (the
// low-latency serving layer) and verify the served predictions match —
// including across a live hot-swap.
//
// Generates its own demo CSV so the example is self-contained:
//   ./build/examples/train_save_serve [--rows=8000]

#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <numeric>

#include "common/flags.h"
#include "common/rng.h"
#include "core/fixed_arch_model.h"
#include "core/pipeline.h"
#include "data/csv_loader.h"
#include "data/fitted_encoder.h"
#include "io/serialize.h"
#include "serve/request.h"
#include "serve/server.h"

using namespace optinter;

namespace {

// Writes a synthetic click log in CSV form: three categorical fields and
// one continuous, with a planted (site, device) interaction.
std::string WriteDemoCsv(size_t rows, uint64_t seed) {
  const std::string path = "/tmp/optinter_demo_clicks.csv";
  std::ofstream out(path);
  out << "site,device,slot,hour,label\n";
  Rng rng(seed);
  const char* sites[] = {"news", "video", "shop", "mail", "maps"};
  const char* devices[] = {"phone", "tablet", "desktop"};
  const char* slots[] = {"top", "side", "feed", "footer"};
  for (size_t r = 0; r < rows; ++r) {
    const size_t s = rng.UniformInt(5);
    const size_t d = rng.UniformInt(3);
    const size_t sl = rng.UniformInt(4);
    const double hour = rng.Uniform(0, 24);
    // Planted interaction: some (site, device) combos click far more.
    double logit = -1.2 + 0.05 * (hour > 18.0 ? 1.0 : -1.0);
    logit += ((s * 3 + d) % 4 == 0) ? 1.4 : -0.4;
    const bool y = rng.Bernoulli(1.0 / (1.0 + std::exp(-logit)));
    out << sites[s] << "," << devices[d] << "," << slots[sl] << "," << hour
        << "," << (y ? 1 : 0) << "\n";
  }
  return path;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  flags.AddInt("rows", 8000, "demo CSV rows");
  Status st = flags.Parse(argc, argv);
  if (!st.ok()) return st.code() == StatusCode::kFailedPrecondition ? 0 : 1;

  // 1. Load the CSV.
  const std::string csv =
      WriteDemoCsv(static_cast<size_t>(flags.GetInt("rows")), 42);
  DatasetSchema schema({{"site", FieldType::kCategorical},
                        {"device", FieldType::kCategorical},
                        {"slot", FieldType::kCategorical},
                        {"hour", FieldType::kContinuous}});
  auto raw = LoadCsvDataset(csv, schema);
  CHECK(raw.ok()) << raw.status().ToString();
  std::printf("loaded %zu rows from %s\n", raw->num_rows, csv.c_str());

  // 2. Fit a reusable encoder on the train rows and transform the log.
  Rng rng(7);
  Splits splits = MakeSplits(raw->num_rows, 0.7, 0.1, &rng);
  EncoderOptions eopts;
  eopts.cat_min_count = 2;
  eopts.cross_min_count = 2;
  auto encoder = FittedEncoder::Fit(*raw, splits.train, eopts);
  CHECK(encoder.ok()) << encoder.status().ToString();
  auto enc = encoder->Transform(*raw);
  CHECK(enc.ok()) << enc.status().ToString();
  EncodedDataset data = std::move(enc).value();

  // 3. Search + re-train.
  HyperParams hp = DefaultHyperParams("tiny");
  hp.epochs = 4;
  hp.seed = 7;
  SearchOptions sopts;
  sopts.search_epochs = 3;
  TrainOptions topts;
  topts.epochs = hp.epochs;
  topts.batch_size = hp.batch_size;
  topts.seed = hp.seed;
  SearchResult search = RunSearchStage(data, splits, hp, sopts);
  FixedArchModel model(data, search.arch, hp);
  TrainSummary summary = TrainModel(&model, data, splits, topts);
  std::printf("trained OptInter %s: test AUC %.4f, logloss %.4f\n",
              ArchCountsToString(CountArchitecture(search.arch)).c_str(),
              summary.final_test.auc, summary.final_test.logloss);

  // 4. Persist the full deployment artifact set: encoder (so serving
  // ids line up with the embedding tables), architecture, and weights.
  const std::string enc_path = "/tmp/optinter_demo.encoder";
  const std::string arch_path = "/tmp/optinter_demo.arch";
  const std::string ckpt_path = "/tmp/optinter_demo.ckpt";
  CHECK_OK(encoder->Save(enc_path));
  CHECK_OK(SaveArchitecture(search.arch, arch_path));
  CHECK_OK(SaveModel(&model, ckpt_path));
  std::printf("saved %s, %s and %s\n", enc_path.c_str(),
              arch_path.c_str(), ckpt_path.c_str());

  // 5. Serve: reload all three artifacts and stand up a PredictServer.
  // Requests arrive as encoded PredictRequests and flow through either
  // the adaptive micro-batcher (Submit → future) or the synchronous
  // fused batch-1 path (PredictNow); both pin the live model snapshot.
  auto served_encoder = FittedEncoder::Load(enc_path);
  CHECK(served_encoder.ok()) << served_encoder.status().ToString();
  auto served_data = served_encoder->Transform(*raw);
  CHECK(served_data.ok()) << served_data.status().ToString();
  auto arch = LoadArchitecture(arch_path);
  CHECK(arch.ok()) << arch.status().ToString();
  auto served = std::make_shared<FixedArchModel>(*served_data, *arch, hp);
  CHECK_OK(LoadModel(served.get(), ckpt_path));

  serve::PredictServer server(*served_data);
  CHECK_OK(server.Deploy(served));
  std::printf("deployed model generation %llu\n",
              static_cast<unsigned long long>(server.DeployedVersion()));

  const size_t n_demo = std::min<size_t>(8, splits.test.size());
  std::printf("\nrow  trained  PredictNow  Submit\n");
  bool all_match = true;
  for (size_t k = 0; k < n_demo; ++k) {
    const size_t row = splits.test[k];
    Batch b;
    b.data = &data;
    b.rows = &row;
    b.size = 1;
    std::vector<float> fresh;
    model.Predict(b, &fresh);

    const serve::PredictRequest req =
        serve::RequestFromRow(*served_data, row);
    auto now = server.PredictNow(req);
    CHECK(now.ok()) << now.status().ToString();
    auto fut = server.Submit(req);
    CHECK(fut.ok()) << fut.status().ToString();
    const float batched = fut->get();
    std::printf("%3zu  %.5f  %.5f  %.5f\n", row, fresh[0], *now, batched);
    // The batch-1 path is bit-identical to the trained model; the
    // micro-batched answer may differ by float-summation jitter only.
    all_match &= fresh[0] == *now;
    all_match &= std::fabs(batched - fresh[0]) < 1e-6f;
  }
  std::printf("served predictions %s the trained model's.\n",
              all_match ? "match" : "DIVERGE from");

  // 6. Hot-swap: publish a freshly-restored generation while the server
  // is live. In-flight requests keep the old snapshot; new ones see the
  // new generation — and since it restores the same checkpoint, its
  // predictions are bitwise unchanged.
  CHECK_OK(server.DeployCheckpoint(
      [&]() -> std::unique_ptr<CtrModel> {
        return std::make_unique<FixedArchModel>(*served_data, *arch, hp);
      },
      ckpt_path));
  std::printf("hot-swapped to generation %llu\n",
              static_cast<unsigned long long>(server.DeployedVersion()));
  {
    const size_t row = splits.test[0];
    Batch b;
    b.data = &data;
    b.rows = &row;
    b.size = 1;
    std::vector<float> fresh;
    model.Predict(b, &fresh);
    auto now = server.PredictNow(serve::RequestFromRow(*served_data, row));
    CHECK(now.ok()) << now.status().ToString();
    all_match &= fresh[0] == *now;
  }
  std::printf("post-swap predictions %s.\n",
              all_match ? "still match" : "DIVERGE");
  return all_match ? 0 : 1;
}
