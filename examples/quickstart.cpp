// Quickstart: generate a tiny synthetic CTR dataset, run the OptInter
// two-stage pipeline (search + re-train), and compare it against FNN and
// the all-memorize / all-factorize instances.
//
//   ./build/examples/quickstart [--rows=6000] [--epochs=2]

#include <cstdio>

#include "common/flags.h"
#include "common/string_util.h"
#include "core/fixed_arch_model.h"
#include "core/pipeline.h"
#include "data/encoder.h"
#include "synth/profiles.h"

using namespace optinter;

int main(int argc, char** argv) {
  FlagParser flags;
  flags.AddInt("rows", 6000, "number of synthetic rows");
  flags.AddInt("epochs", 2, "training epochs");
  flags.AddInt("seed", 7, "random seed");
  Status st = flags.Parse(argc, argv);
  if (!st.ok()) return st.code() == StatusCode::kFailedPrecondition ? 0 : 1;

  // 1. Generate data with planted interaction structure.
  SynthConfig cfg = TinyConfig();
  cfg.num_rows = static_cast<size_t>(flags.GetInt("rows"));
  cfg.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  RawDataset raw = GenerateSynthetic(cfg);
  std::printf("dataset: %zu rows, %zu categorical + %zu continuous fields, "
              "%zu pairs\n",
              raw.num_rows, raw.schema.num_categorical(),
              raw.schema.num_continuous(), raw.schema.num_pairs());

  // 2. Encode: split, fit vocabs on train, build cross-product features.
  Rng rng(cfg.seed);
  Splits splits = MakeSplits(raw.num_rows, 0.7, 0.1, &rng);
  EncoderOptions enc_opts;
  auto encoded = EncodeDataset(raw, splits.train, enc_opts);
  if (!encoded.ok()) {
    std::fprintf(stderr, "encode failed: %s\n",
                 encoded.status().ToString().c_str());
    return 1;
  }
  EncodedDataset data = std::move(encoded).value();
  CHECK_OK(BuildCrossFeatures(&data, splits.train, enc_opts));
  std::printf("encoded: %zu orig values, %zu cross values, pos ratio %.3f\n",
              data.TotalOrigVocab(), data.TotalCrossVocab(),
              data.PositiveRatio());

  // 3. Train baselines and OptInter.
  HyperParams hp = DefaultHyperParams("tiny");
  hp.epochs = static_cast<size_t>(flags.GetInt("epochs"));
  hp.seed = cfg.seed;
  TrainOptions topts;
  topts.epochs = hp.epochs;
  topts.batch_size = hp.batch_size;
  topts.seed = hp.seed;

  std::printf("\n%-12s %8s %9s %10s  %s\n", "model", "AUC", "logloss",
              "params", "architecture");
  auto report = [&](const std::string& name, const TrainSummary& s,
                    size_t params, const std::string& arch) {
    std::printf("%-12s %8.4f %9.4f %10s  %s\n", name.c_str(),
                s.final_test.auc, s.final_test.logloss,
                HumanCount(params).c_str(), arch.c_str());
  };

  {
    auto fnn = FixedArchModel::MakeFnn(data, hp);
    TrainSummary s = TrainModel(fnn.get(), data, splits, topts);
    report("FNN", s, fnn->ParamCount(),
           ArchCountsToString(CountArchitecture(fnn->arch())));
  }
  {
    auto m = FixedArchModel::MakeOptInterM(data, hp);
    TrainSummary s = TrainModel(m.get(), data, splits, topts);
    report("OptInter-M", s, m->ParamCount(),
           ArchCountsToString(CountArchitecture(m->arch())));
  }
  {
    auto f = FixedArchModel::MakeOptInterF(data, hp);
    TrainSummary s = TrainModel(f.get(), data, splits, topts);
    report("OptInter-F", s, f->ParamCount(),
           ArchCountsToString(CountArchitecture(f->arch())));
  }
  {
    SearchOptions sopts;
    sopts.search_epochs = hp.epochs;
    OptInterResult r = RunOptInter(data, splits, hp, sopts, topts);
    report("OptInter", r.retrain, r.param_count,
           ArchCountsToString(CountArchitecture(r.search.arch)));
    std::printf("\nplanted structure: %zu memorize, %zu factorize pairs\n",
                cfg.memorize_pairs.size(), cfg.factorize_pairs.size());
  }
  return 0;
}
