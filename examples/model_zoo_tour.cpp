// Tour of the full model zoo (paper Table III): every baseline the
// framework unifies — naïve, memorized, factorized (five flavours of
// factorization function) and hybrid — trained on one small dataset.
//
//   ./build/examples/model_zoo_tour [--dataset=tiny] [--epochs=3]

#include <cstdio>

#include "common/flags.h"
#include "common/string_util.h"
#include "core/pipeline.h"
#include "core/zoo.h"
#include "synth/prepare.h"

using namespace optinter;

int main(int argc, char** argv) {
  FlagParser flags;
  flags.AddString("dataset", "tiny", "profile to train on");
  flags.AddInt("epochs", 3, "training epochs");
  flags.AddDouble("rows_scale", 1.0, "row-count multiplier");
  Status st = flags.Parse(argc, argv);
  if (!st.ok()) return st.code() == StatusCode::kFailedPrecondition ? 0 : 1;

  PrepareOptions popts;
  popts.rows_scale = flags.GetDouble("rows_scale");
  auto prepared = PrepareProfile(flags.GetString("dataset"), popts);
  CHECK(prepared.ok()) << prepared.status().ToString();
  const PreparedDataset& p = *prepared;

  HyperParams hp = DefaultHyperParams(flags.GetString("dataset"));
  hp.epochs = static_cast<size_t>(flags.GetInt("epochs"));
  TrainOptions topts;
  topts.epochs = hp.epochs;
  topts.batch_size = hp.batch_size;
  topts.seed = hp.seed;
  topts.patience = hp.early_stop_patience;

  struct GroupEntry {
    const char* group;
    const char* model;
  };
  // Paper Table III's taxonomy: category × model × factorization function.
  const GroupEntry kZoo[] = {
      {"naive", "LR"},          {"naive", "FNN"},
      {"memorized", "Poly2"},   {"memorized", "OptInter-M"},
      {"factorized", "FM"},     {"factorized", "FFM"},
      {"factorized", "FwFM"},
      {"factorized", "FmFM"},   {"factorized", "IPNN"},
      {"factorized", "OPNN"},   {"factorized", "DeepFM"},
      {"factorized", "PIN"},    {"factorized", "OptInter-F"},
  };

  std::printf("%-11s %-12s %8s %9s %10s\n", "category", "model", "AUC",
              "logloss", "params");
  for (const auto& entry : kZoo) {
    auto model = CreateBaseline(entry.model, p.data, hp);
    CHECK(model.ok()) << model.status().ToString();
    TrainSummary s = TrainModel(model->get(), p.data, p.splits, topts);
    std::printf("%-11s %-12s %8.4f %9.4f %10s\n", entry.group, entry.model,
                s.final_test.auc, s.final_test.logloss,
                HumanCount((*model)->ParamCount()).c_str());
  }

  // Hybrid methods run their two-stage pipelines.
  {
    AutoFisResult r = RunAutoFis(p.data, p.splits, hp, topts);
    std::printf("%-11s %-12s %8.4f %9.4f %10s  %s\n", "hybrid", "AutoFIS",
                r.retrain.final_test.auc, r.retrain.final_test.logloss,
                HumanCount(r.param_count).c_str(),
                ArchCountsToString(CountArchitecture(r.arch)).c_str());
  }
  {
    SearchOptions sopts;
    sopts.search_epochs = hp.search_epochs;
    OptInterResult r = RunOptInter(p.data, p.splits, hp, sopts, topts);
    std::printf("%-11s %-12s %8.4f %9.4f %10s  %s\n", "hybrid", "OptInter",
                r.retrain.final_test.auc, r.retrain.final_test.logloss,
                HumanCount(r.param_count).c_str(),
                ArchCountsToString(CountArchitecture(r.search.arch))
                    .c_str());
  }
  return 0;
}
