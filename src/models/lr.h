// Logistic regression (paper baseline "LR", Richardson et al. 2007):
// the naïve method with a shallow classifier — no feature interactions.
//
//   logit = b + Σ_f w_f(v_f) + Σ_c w_c · x_c

#pragma once

#include <memory>

#include "models/feature_embedding.h"
#include "models/hyperparams.h"
#include "models/model.h"

namespace optinter {

class LrModel : public CtrModel {
 public:
  LrModel(const EncodedDataset& data, const HyperParams& hp);

  std::string Name() const override { return "LR"; }
  float TrainStep(const Batch& batch) override;
  void Predict(const Batch& batch, std::vector<float>* probs) override;
  size_t ParamCount() const override;
  void CollectState(std::vector<Tensor*>* out) override;

 private:
  void Logits(const Batch& batch, Tensor* features,
              std::vector<float>* logits);

  Rng rng_;
  FeatureEmbedding weights_;  // dim-1 "embeddings" are the LR weights
  DenseParam bias_;
  Adam dense_opt_;
  Tensor features_;
  std::vector<float> logits_;
  std::vector<float> labels_;
  std::vector<float> dlogits_;
};

}  // namespace optinter
