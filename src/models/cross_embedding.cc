#include "models/cross_embedding.h"

#include <cstring>

#include "common/thread_pool.h"
#include "models/backend_resolve.h"
#include "obs/trace.h"

namespace optinter {

CrossEmbedding::CrossEmbedding(const EncodedDataset& data,
                               std::vector<size_t> pairs, size_t dim,
                               float lr, float l2, Rng* rng,
                               const EmbeddingBackendConfig& backend)
    : data_(data), pairs_(std::move(pairs)), dim_(dim) {
  // Metadata-only datasets (streaming: vocab sizes without row payload)
  // are fine here; only the per-batch datasets need actual cross ids.
  CHECK(!data.cross_vocab_sizes.empty()) << "call BuildCrossFeatures first";
  CHECK_GT(dim, 0u);
  tables_.reserve(pairs_.size());
  for (size_t p : pairs_) {
    CHECK_LT(p, data.num_pairs());
    auto table = std::make_unique<EmbeddingTable>(
        "cross_emb/pair" + std::to_string(p), data.cross_vocab_sizes[p],
        dim, lr, l2,
        ResolveTableBackend(backend, data.cross_vocab_sizes[p],
                            data.cross_hot_ids, p));
    table->Init(rng);
    tables_.push_back(std::move(table));
  }
}

void CrossEmbedding::Forward(const Batch& batch, Tensor* out) {
  // Any compatibly-encoded dataset is accepted (Gather checks layout);
  // it must stay valid through Backward, which re-reads ids from it.
  Gather(batch, out);
  batch_data_ = batch.data;
  batch_rows_.assign(batch.rows, batch.rows + batch.size);
}

void CrossEmbedding::Gather(const Batch& batch, Tensor* out) const {
  OPTINTER_TRACE_SPAN("cross_gather");
  const EncodedDataset& data = *batch.data;
  CHECK(data.has_cross());
  CHECK_EQ(data.num_pairs(), data_.num_pairs());
  out->Resize({batch.size, output_dim()});
  auto gather = [&](size_t lo, size_t hi) {
    for (size_t k = lo; k < hi; ++k) {
      const size_t r = batch.rows[k];
      float* dst = out->row(k);
      for (size_t t = 0; t < pairs_.size(); ++t) {
        tables_[t]->CopyRow(data.cross(r, pairs_[t]), dst + t * dim_);
      }
    }
  };
  // Disjoint per-row writes: fan-out is bit-identical to the serial loop.
  if (batch.size * output_dim() >= (1u << 15)) {
    ParallelForChunks(0, batch.size, gather, /*min_chunk=*/64);
  } else {
    gather(0, batch.size);
  }
}

void CrossEmbedding::CopyRow(const EncodedDataset& data, size_t row,
                             size_t t, float* dst) const {
  tables_[t]->CopyRow(data.cross(row, pairs_[t]), dst);
}

void CrossEmbedding::Backward(const Tensor& d_out) {
  OPTINTER_TRACE_SPAN("cross_scatter");
  CHECK_EQ(d_out.rows(), batch_rows_.size());
  CHECK_EQ(d_out.cols(), output_dim());
  const size_t rows = batch_rows_.size();
  // Row-bucketed scatter: one bucket per (table, backing-row shard), each
  // scanning rows in ascending order — shard contents match the serial
  // loop bit for bit, and distinct buckets never share a gradient slot.
  // The table routes each id's backing parts to their owning shard.
  auto scatter_bucket = [&](size_t t, size_t shard) {
    EmbeddingTable& table = *tables_[t];
    for (size_t k = 0; k < rows; ++k) {
      const int32_t id = batch_data_->cross(batch_rows_[k], pairs_[t]);
      table.AccumulateGradForShard(shard, id, d_out.row(k) + t * dim_);
    }
  };
  const size_t num_buckets = pairs_.size() * EmbeddingTable::kGradShards;
  auto run_buckets = [&](size_t lo, size_t hi) {
    for (size_t b = lo; b < hi; ++b) {
      scatter_bucket(b / EmbeddingTable::kGradShards,
                     b % EmbeddingTable::kGradShards);
    }
  };
  if (d_out.size() >= (1u << 15) && num_buckets > 1) {
    ParallelForChunks(0, num_buckets, run_buckets, /*min_chunk=*/1);
  } else {
    run_buckets(0, num_buckets);
  }
}

void CrossEmbedding::Prepare(const Batch& batch, IdDedupScratch* dedup,
                             std::vector<PreparedTable>* tables) const {
  OPTINTER_TRACE_SPAN("cross_prepare");
  // Copies everything downstream phases need; the batch's dataset (which
  // may be a recycled streaming buffer) is not retained.
  const EncodedDataset& data = *batch.data;
  CHECK(data.has_cross());
  CHECK_EQ(data.num_pairs(), data_.num_pairs());
  tables->resize(pairs_.size());
  for (size_t t = 0; t < pairs_.size(); ++t) {
    PrepareTableIds(
        *tables_[t], batch.size,
        [&](size_t k) { return data.cross(batch.rows[k], pairs_[t]); },
        dedup, &(*tables)[t]);
  }
}

void CrossEmbedding::ForwardPrepared(const std::vector<PreparedTable>& tables,
                                     size_t batch_size, Tensor* out) {
  OPTINTER_TRACE_SPAN("cross_gather");
  CHECK_EQ(tables.size(), pairs_.size());
  out->Resize({batch_size, output_dim()});
  auto gather = [&](size_t lo, size_t hi) {
    for (size_t k = lo; k < hi; ++k) {
      float* dst = out->row(k);
      for (size_t t = 0; t < pairs_.size(); ++t) {
        tables_[t]->CopyRow(tables[t].ids[k], dst + t * dim_);
      }
    }
  };
  if (batch_size * output_dim() >= (1u << 15)) {
    ParallelForChunks(0, batch_size, gather, /*min_chunk=*/64);
  } else {
    gather(0, batch_size);
  }
  for (size_t t = 0; t < pairs_.size(); ++t) {
    tables_[t]->BeginPreparedScatter(tables[t].unique_rows.data(),
                                     tables[t].unique_rows.size());
  }
}

void CrossEmbedding::BackwardPrepared(
    const Tensor& d_out, const std::vector<PreparedTable>& tables) {
  OPTINTER_TRACE_SPAN("cross_scatter");
  CHECK_EQ(tables.size(), pairs_.size());
  CHECK_EQ(d_out.cols(), output_dim());
  auto scatter_bucket = [&](size_t t, size_t shard) {
    EmbeddingTable& table = *tables_[t];
    const PreparedTable& pt = tables[t];
    for (const int32_t k : pt.shard_rows[shard]) {
      table.AccumulatePreparedGradPrimary(
          static_cast<size_t>(pt.slots[k]), pt.ids[static_cast<size_t>(k)],
          d_out.row(static_cast<size_t>(k)) + t * dim_);
    }
    if (table.HasSecondary()) {
      for (const int32_t k : pt.shard_rows2[shard]) {
        table.AccumulatePreparedGradSecondary(
            static_cast<size_t>(pt.slots2[k]),
            pt.ids[static_cast<size_t>(k)],
            d_out.row(static_cast<size_t>(k)) + t * dim_);
      }
    }
  };
  const size_t num_buckets = pairs_.size() * EmbeddingTable::kGradShards;
  auto run_buckets = [&](size_t lo, size_t hi) {
    for (size_t b = lo; b < hi; ++b) {
      scatter_bucket(b / EmbeddingTable::kGradShards,
                     b % EmbeddingTable::kGradShards);
    }
  };
  if (d_out.size() >= (1u << 15) && num_buckets > 1) {
    ParallelForChunks(0, num_buckets, run_buckets, /*min_chunk=*/1);
  } else {
    run_buckets(0, num_buckets);
  }
}

void CrossEmbedding::StepPrepared(const AdamConfig& config) {
  for (auto& t : tables_) t->SparseAdamStepPrepared(config);
}

void CrossEmbedding::Step(const AdamConfig& config) {
  for (auto& t : tables_) t->SparseAdamStep(config);
}

void CrossEmbedding::ClearGrads() {
  for (auto& t : tables_) t->ClearGrads();
}

void CrossEmbedding::CollectState(std::vector<Tensor*>* out) {
  for (auto& t : tables_) out->push_back(&t->mutable_values());
}

size_t CrossEmbedding::ParamCount() const {
  size_t total = 0;
  for (const auto& t : tables_) total += t->ParamCount();
  return total;
}

}  // namespace optinter
