// Original-feature embedding layer E^o (paper §II-B2).
//
// One embedding table per categorical field; one single-row table per
// continuous field whose row is scaled by the normalized value (the
// paper's Criteo treatment: min-max normalize, then multiply with the
// corresponding embedding). Forward produces the concatenated
// e^o = [e^o_1, ..., e^o_M] batch matrix; Backward scatters gradients
// into the tables' sparse accumulators.

#pragma once

#include <memory>
#include <vector>

#include "data/batch.h"
#include "models/prepared_batch.h"
#include "nn/embedding.h"
#include "tensor/tensor.h"

namespace optinter {

/// Batched embedding lookup over all original fields.
class FeatureEmbedding {
 public:
  /// `dim` = s1; lr/l2 = paper lr_o / l2_o. `backend` is the per-table
  /// storage policy for the categorical tables (resolved per vocab, see
  /// backend_resolve.h); continuous tables are single-row and always
  /// dense.
  FeatureEmbedding(const EncodedDataset& data, size_t dim, float lr,
                   float l2, Rng* rng,
                   const EmbeddingBackendConfig& backend = {});

  /// out: [B × (num_fields * dim)] with categorical fields first (in
  /// categorical order) followed by continuous fields. Caches the batch
  /// for Backward.
  void Forward(const Batch& batch, Tensor* out);

  /// Inference-only lookup: same output as Forward but touches no mutable
  /// state, so concurrent calls on different batches are safe. The batch
  /// may reference any dataset encoded with the same encoder as the
  /// construction dataset (same field layout and vocabularies) — the
  /// serving layer predicts from request arenas this way.
  void Gather(const Batch& batch, Tensor* out) const;

  /// Single-row gather straight into `dst` (length output_dim()), the
  /// fused batch-1 serving path: same values and op order as one row of
  /// Gather, no intermediate tensor.
  void GatherRow(const EncodedDataset& data, size_t row, float* dst) const;

  /// Scatters d_out (same shape as Forward's out) into table gradients.
  void Backward(const Tensor& d_out);

  // --- Phase-split path (see prepared_batch.h / DESIGN.md) -------------

  /// Fills prep->cat (per-field id/slot/dedup lists) and prep->cont (the
  /// stitched continuous values). Reads only the dataset and row ids —
  /// never weights — so it may run ahead of the current step's ApplyGrads.
  void Prepare(const Batch& batch, PreparedBatch* prep) const;

  /// Forward from a prepared batch (same output as Gather) and arms every
  /// table's prepared scatter for BackwardPrepared.
  void ForwardPrepared(const PreparedBatch& prep, Tensor* out);

  /// Slot-addressed scatter of d_out into the prepared gradient buffers.
  /// Bit-identical accumulation order to Backward.
  void BackwardPrepared(const Tensor& d_out, const PreparedBatch& prep);

  /// Sparse-Adam over the prepared slots of every table.
  void StepPrepared(const AdamConfig& config = {});

  /// Applies sparse-Adam to all tables.
  void Step(const AdamConfig& config = {});

  /// Discards pending gradients.
  void ClearGrads();

  size_t ParamCount() const;

  /// Appends pointers to each table's value tensor (checkpointing).
  void CollectState(std::vector<Tensor*>* out);

  size_t dim() const { return dim_; }
  size_t num_categorical() const { return cat_tables_.size(); }
  size_t num_continuous() const { return cont_tables_.size(); }
  /// Total fields embedded (categorical + continuous).
  size_t num_fields() const { return cat_tables_.size() + cont_tables_.size(); }
  size_t output_dim() const { return num_fields() * dim_; }

  /// Column offset of categorical field `f`'s embedding in the output.
  size_t CatOffset(size_t f) const { return f * dim_; }

  EmbeddingTable& cat_table(size_t f) { return *cat_tables_[f]; }
  const EmbeddingTable& cat_table(size_t f) const { return *cat_tables_[f]; }
  /// Single-row table of continuous field `f` (serving-time conversion).
  const EmbeddingTable& cont_table(size_t f) const { return *cont_tables_[f]; }

 private:
  const EncodedDataset& data_;
  size_t dim_;
  std::vector<std::unique_ptr<EmbeddingTable>> cat_tables_;
  std::vector<std::unique_ptr<EmbeddingTable>> cont_tables_;
  // Cached batch (dataset + rows) for the backward scatter. The dataset a
  // Forward batch references must stay valid until Backward runs.
  const EncodedDataset* batch_data_ = nullptr;
  std::vector<size_t> batch_rows_;
};

}  // namespace optinter
