// Feature-interaction modelling methods (paper §II-A2).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace optinter {

/// The three ways to model one feature interaction. Enum order matches
/// the paper's "[x, y, z] = #memorize, #factorize, #naïve" reporting
/// convention (Tables VI and VIII).
enum class InterMethod : uint8_t {
  kMemorize = 0,
  kFactorize = 1,
  kNaive = 2,
};

inline const char* InterMethodName(InterMethod m) {
  switch (m) {
    case InterMethod::kMemorize:
      return "memorize";
    case InterMethod::kFactorize:
      return "factorize";
    case InterMethod::kNaive:
      return "naive";
  }
  return "?";
}

/// Per-pair method assignment in canonical pair order — an "architecture"
/// in the paper's sense.
using Architecture = std::vector<InterMethod>;

/// Factorization functions for the factorized method (paper §II-C1 lists
/// Hadamard Product ⊗, Pointwise-Addition ⊕ and generalized products; the
/// paper uses Hadamard as the representative and notes the framework
/// "can be extended easily" — this enum is that extension).
enum class FactorizeFn : uint8_t {
  kHadamard = 0,       // e_i ⊙ e_j, width s1 (paper Eq. 14)
  kInnerProduct = 1,   // ⟨e_i, e_j⟩, width 1 (IPNN-style)
  kPointwiseSum = 2,   // e_i + e_j, width s1
};

const char* FactorizeFnName(FactorizeFn fn);

/// Parses "hadamard" / "inner" / "sum".
bool ParseFactorizeFn(const std::string& name, FactorizeFn* fn);

/// Output width of a factorized interaction embedding.
size_t FactorizedWidth(FactorizeFn fn, size_t embed_dim);

/// out[0:width] = fn(e_i, e_j).
void FactorizedForward(FactorizeFn fn, size_t embed_dim, const float* ei,
                       const float* ej, float* out);

/// Accumulates d e_i / d e_j given scale * d(out).
void FactorizedBackward(FactorizeFn fn, size_t embed_dim, const float* ei,
                        const float* ej, const float* dout, float scale,
                        float* dei, float* dej);

/// Counts per method: {#memorize, #factorize, #naive} — the paper's
/// "[x, y, z]" architecture summaries.
struct ArchCounts {
  size_t memorize = 0;
  size_t factorize = 0;
  size_t naive = 0;
};

ArchCounts CountArchitecture(const Architecture& arch);

/// "[x,y,z]" string as printed in the paper's tables.
std::string ArchCountsToString(const ArchCounts& counts);

/// Uniform architecture helpers.
Architecture AllMemorize(size_t num_pairs);
Architecture AllFactorize(size_t num_pairs);
Architecture AllNaive(size_t num_pairs);

}  // namespace optinter
