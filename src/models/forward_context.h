// Per-call forward state for CtrModel inference.
//
// Models that support re-entrant prediction keep every batch-sized
// activation of one Predict call inside a ForwardContext owned by the
// caller instead of in model members. Two Predict calls with distinct
// contexts then share only immutable parameters, so they may run
// concurrently on different batches (the batch-parallel evaluation path
// in train/trainer.cc). The training path reuses one long-lived context
// as its activation cache between forward and backward.

#pragma once

#include <cstdint>
#include <vector>

#include "nn/workspace.h"
#include "tensor/aligned.h"
#include "tensor/tensor.h"

namespace optinter {

/// Scratch for the int8 MLP forward of a quantized serving model
/// (serve/quantized_model.h): per-row quantized activations with their
/// dynamic scales/zero points. Empty (and cost-free) for fp32 models.
struct QuantScratch {
  AlignedVector<uint8_t> qa;    // [B × k] quantized activation rows
  std::vector<float> a_scale;   // [B]
  std::vector<int32_t> a_zp;    // [B]
};

/// Scratch for one forward pass of an OptInter-style model. Buffers are
/// resized by the model and keep their capacity across calls, so reusing
/// one context per evaluation task amortizes allocation.
struct ForwardContext {
  Tensor emb_out;     // [B × emb_cols] original-feature embeddings
  Tensor cross_out;   // [B × pairs·s2] memorized pair embeddings
  Tensor triple_out;  // [B × triples·s2] memorized triple embeddings
  Tensor z;           // [B × mlp_in] assembled classifier input
  Tensor mlp_out;     // [B × 1] classifier output
  MlpWorkspace mlp;   // per-layer activation caches of the MLP tower
  QuantScratch quant;  // int8-MLP scratch (quantized serving models only)
  std::vector<float> logits;  // [B]
};

}  // namespace optinter
