// Third-order cross-product embedding layer — the higher-order analogue
// of CrossEmbedding (paper §II-B1 extension). One embedding table per
// selected field triple, keyed by the encoded triple cross id.

#pragma once

#include <memory>
#include <vector>

#include "data/batch.h"
#include "models/prepared_batch.h"
#include "nn/embedding.h"
#include "tensor/tensor.h"

namespace optinter {

/// Batched triple-cross embedding lookup over a chosen set of triples.
class TripleEmbedding {
 public:
  /// `triples` holds indices into the dataset's built triple set. The
  /// dataset must already have triple cross features built. `backend` is
  /// the per-table storage policy (resolved per triple vocab, see
  /// backend_resolve.h).
  TripleEmbedding(const EncodedDataset& data, std::vector<size_t> triples,
                  size_t dim, float lr, float l2, Rng* rng,
                  const EmbeddingBackendConfig& backend = {});

  /// out: [B × (triples.size() * dim)].
  void Forward(const Batch& batch, Tensor* out);
  /// Inference-only lookup: touches no mutable state, so concurrent calls
  /// on different batches are safe. The batch may reference any dataset
  /// with the same triple layout as the construction dataset.
  void Gather(const Batch& batch, Tensor* out) const;
  /// Single-row gather into `dst` (length output_dim()) — the fused
  /// batch-1 serving path. Same values and op order as one row of Gather.
  void GatherRow(const EncodedDataset& data, size_t row, float* dst) const;
  void Backward(const Tensor& d_out);
  // Phase-split path (see prepared_batch.h / DESIGN.md); mirrors
  // Gather/Backward/Step bit for bit from prepared id lists.
  void Prepare(const Batch& batch, IdDedupScratch* dedup,
               std::vector<PreparedTable>* tables) const;
  void ForwardPrepared(const std::vector<PreparedTable>& tables,
                       size_t batch_size, Tensor* out);
  void BackwardPrepared(const Tensor& d_out,
                        const std::vector<PreparedTable>& tables);
  void StepPrepared(const AdamConfig& config = {});
  void Step(const AdamConfig& config = {});
  void ClearGrads();

  size_t ParamCount() const;
  void CollectState(std::vector<Tensor*>* out);

  size_t dim() const { return dim_; }
  size_t num_triples() const { return triples_.size(); }
  const EmbeddingTable& table(size_t k) const { return *tables_[k]; }
  size_t output_dim() const { return triples_.size() * dim_; }
  const std::vector<size_t>& triples() const { return triples_; }

 private:
  const EncodedDataset& data_;
  std::vector<size_t> triples_;
  size_t dim_;
  std::vector<std::unique_ptr<EmbeddingTable>> tables_;
  // Cached batch (dataset + rows) for the backward scatter; the dataset a
  // Forward batch references must stay valid until Backward runs.
  const EncodedDataset* batch_data_ = nullptr;
  std::vector<size_t> batch_rows_;
};

}  // namespace optinter
