#include "models/poly2.h"

#include "nn/layers.h"
#include "tensor/kernels.h"

namespace optinter {

namespace {
std::vector<size_t> AllPairIndices(const EncodedDataset& data) {
  std::vector<size_t> pairs(data.num_pairs());
  std::iota(pairs.begin(), pairs.end(), 0);
  return pairs;
}
}  // namespace

Poly2Model::Poly2Model(const EncodedDataset& data, const HyperParams& hp)
    : rng_(hp.seed),
      weights_(data, /*dim=*/1, hp.lr_orig, hp.l2_orig, &rng_),
      cross_weights_(data, AllPairIndices(data), /*dim=*/1, hp.lr_cross,
                     hp.l2_cross, &rng_) {
  bias_.name = "poly2/bias";
  bias_.Resize({1});
  bias_.lr = hp.lr_orig;
  dense_opt_.AddParam(&bias_);
}

void Poly2Model::Logits(const Batch& batch, std::vector<float>* logits) {
  weights_.Forward(batch, &features_);
  cross_weights_.Forward(batch, &cross_features_);
  logits->resize(batch.size);
  for (size_t k = 0; k < batch.size; ++k) {
    (*logits)[k] = Sum(features_.cols(), features_.row(k)) +
                   Sum(cross_features_.cols(), cross_features_.row(k)) +
                   bias_.value[0];
  }
}

float Poly2Model::TrainStep(const Batch& batch) {
  Logits(batch, &logits_);
  labels_.resize(batch.size);
  dlogits_.resize(batch.size);
  for (size_t k = 0; k < batch.size; ++k) labels_[k] = batch.label(k);
  const float loss = BceWithLogitsLoss(logits_.data(), labels_.data(),
                                       batch.size, dlogits_.data());
  Tensor dfeat({batch.size, features_.cols()});
  Tensor dcross({batch.size, cross_features_.cols()});
  for (size_t k = 0; k < batch.size; ++k) {
    const float g = dlogits_[k];
    float* df = dfeat.row(k);
    for (size_t c = 0; c < features_.cols(); ++c) df[c] = g;
    float* dc = dcross.row(k);
    for (size_t c = 0; c < cross_features_.cols(); ++c) dc[c] = g;
    bias_.grad[0] += g;
  }
  weights_.Backward(dfeat);
  cross_weights_.Backward(dcross);
  weights_.Step();
  cross_weights_.Step();
  dense_opt_.Step();
  dense_opt_.ZeroGrad();
  return loss;
}

void Poly2Model::Predict(const Batch& batch, std::vector<float>* probs) {
  Logits(batch, &logits_);
  probs->resize(batch.size);
  SigmoidForward(logits_.data(), batch.size, probs->data());
}

void Poly2Model::CollectState(std::vector<Tensor*>* out) {
  weights_.CollectState(out);
  cross_weights_.CollectState(out);
  for (DenseParam* p : dense_opt_.params()) out->push_back(&p->value);
}

size_t Poly2Model::ParamCount() const {
  return weights_.ParamCount() + cross_weights_.ParamCount() + bias_.size();
}

}  // namespace optinter
