#include "models/interaction.h"

#include "common/logging.h"
#include "common/string_util.h"
#include "tensor/kernels.h"
#include "tensor/simd.h"

namespace optinter {

namespace {
constexpr size_t kL = simd::kLanes;
}  // namespace

const char* FactorizeFnName(FactorizeFn fn) {
  switch (fn) {
    case FactorizeFn::kHadamard:
      return "hadamard";
    case FactorizeFn::kInnerProduct:
      return "inner";
    case FactorizeFn::kPointwiseSum:
      return "sum";
  }
  return "?";
}

bool ParseFactorizeFn(const std::string& name, FactorizeFn* fn) {
  if (name == "hadamard") {
    *fn = FactorizeFn::kHadamard;
  } else if (name == "inner") {
    *fn = FactorizeFn::kInnerProduct;
  } else if (name == "sum") {
    *fn = FactorizeFn::kPointwiseSum;
  } else {
    return false;
  }
  return true;
}

size_t FactorizedWidth(FactorizeFn fn, size_t embed_dim) {
  return fn == FactorizeFn::kInnerProduct ? 1 : embed_dim;
}

void FactorizedForward(FactorizeFn fn, size_t embed_dim, const float* ei,
                       const float* ej, float* out) {
  switch (fn) {
    case FactorizeFn::kHadamard:
      Hadamard(embed_dim, ei, ej, out);
      break;
    case FactorizeFn::kInnerProduct:
      out[0] = Dot(embed_dim, ei, ej);
      break;
    case FactorizeFn::kPointwiseSum:
      for (size_t t = 0; t < embed_dim; ++t) out[t] = ei[t] + ej[t];
      break;
  }
}

void FactorizedBackward(FactorizeFn fn, size_t embed_dim, const float* ei,
                        const float* ej, const float* dout, float scale,
                        float* dei, float* dej) {
  switch (fn) {
    case FactorizeFn::kHadamard: {
      // dei += (scale·dout) ⊙ ej and symmetrically for dej; the scaled
      // gradient is formed once and reused by both muladds.
      const simd::VecF scale_v = simd::Set1(scale);
      size_t t = 0;
      for (; t + kL <= embed_dim; t += kL) {
        const simd::VecF sd = simd::Mul(scale_v, simd::LoadU(dout + t));
        simd::StoreU(dei + t, simd::MulAdd(sd, simd::LoadU(ej + t),
                                           simd::LoadU(dei + t)));
        simd::StoreU(dej + t, simd::MulAdd(sd, simd::LoadU(ei + t),
                                           simd::LoadU(dej + t)));
      }
      for (; t < embed_dim; ++t) {
        const float sd = scale * dout[t];
        dei[t] = simd::MulAddScalar(sd, ej[t], dei[t]);
        dej[t] = simd::MulAddScalar(sd, ei[t], dej[t]);
      }
      break;
    }
    case FactorizeFn::kInnerProduct: {
      const float g = scale * dout[0];
      Axpy(embed_dim, g, ej, dei);
      Axpy(embed_dim, g, ei, dej);
      break;
    }
    case FactorizeFn::kPointwiseSum:
      for (size_t t = 0; t < embed_dim; ++t) {
        dei[t] += scale * dout[t];
        dej[t] += scale * dout[t];
      }
      break;
  }
}

ArchCounts CountArchitecture(const Architecture& arch) {
  ArchCounts c;
  for (InterMethod m : arch) {
    switch (m) {
      case InterMethod::kMemorize:
        ++c.memorize;
        break;
      case InterMethod::kFactorize:
        ++c.factorize;
        break;
      case InterMethod::kNaive:
        ++c.naive;
        break;
    }
  }
  return c;
}

std::string ArchCountsToString(const ArchCounts& counts) {
  return StrFormat("[%zu,%zu,%zu]", counts.memorize, counts.factorize,
                   counts.naive);
}

Architecture AllMemorize(size_t num_pairs) {
  return Architecture(num_pairs, InterMethod::kMemorize);
}

Architecture AllFactorize(size_t num_pairs) {
  return Architecture(num_pairs, InterMethod::kFactorize);
}

Architecture AllNaive(size_t num_pairs) {
  return Architecture(num_pairs, InterMethod::kNaive);
}

}  // namespace optinter
