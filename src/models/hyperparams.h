// Hyper-parameters shared by every model (paper Table IV, scaled for the
// CPU substrate). Names follow the paper's notation: s1 = embedding size
// for original features, s2 = embedding size for cross-product transformed
// features, lr_o / lr_c / lr_a = learning rates for original embeddings
// (and net), cross embeddings, and architecture parameters.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "models/interaction.h"
#include "nn/embedding.h"
#include "nn/optimizer.h"

namespace optinter {

struct HyperParams {
  /// Embedding size for original features (paper s1).
  size_t embed_dim = 16;
  /// Embedding size for cross-product transformed features (paper s2).
  size_t cross_embed_dim = 8;

  /// Factorization function for the factorized method (paper uses
  /// Hadamard as the representative; see FactorizeFn).
  FactorizeFn factorize_fn = FactorizeFn::kHadamard;

  /// MLP hidden widths (paper net=[700×5] etc., scaled).
  std::vector<size_t> mlp_hidden = {64, 32};
  bool layer_norm = true;

  /// Learning rates (paper lr_o, lr_c, lr_a).
  float lr_orig = 5e-3f;
  float lr_cross = 5e-3f;
  float lr_arch = 1e-2f;
  /// Weight decay on the architecture logits. At the paper's data scale,
  /// cross embeddings of rare values barely train during search, so pairs
  /// without persistent signal keep near-uniform α; at our scale a small
  /// decay recreates that regime by pulling drifting logits back to the
  /// indifferent zone unless the loss gradient consistently fights it.
  float l2_arch = 1e-2f;
  /// Learning rate for AutoFIS GRDA gates. The GRDA threshold grows as
  /// c·lr^(1/2+mu)·t^mu, so at our step counts (hundreds per epoch rather
  /// than the paper's hundreds of thousands) the gate lr and c must be
  /// larger than Table IV's to reach the same pruning regime.
  float lr_gate = 0.05f;
  /// L2 regularization (paper l2_o, l2_c).
  float l2_orig = 0.0f;
  float l2_cross = 1e-4f;

  /// Storage backend policy for original-feature embedding tables
  /// (resolved per table vocab; small vocabs fall back to dense — see
  /// nn/embedding.h and DESIGN.md §12). Default: dense.
  EmbeddingBackendConfig orig_backend;
  /// Storage backend policy for cross/triple embedding tables — the
  /// memorized method's parameter store, which dominates model size.
  /// QR or tiered here trades a controlled AUC delta for 4–10× less
  /// memory (bench/embedding_tradeoff.cc measures the frontier).
  EmbeddingBackendConfig cross_backend;

  size_t batch_size = 512;
  size_t epochs = 3;
  /// Epochs for the search stage (shorter than re-train: architecture
  /// signal separates early; longer search lets overfit drift pull
  /// indifferent pairs toward memorize).
  size_t search_epochs = 3;
  /// Early-stopping patience on validation AUC (0 disables).
  size_t early_stop_patience = 2;

  /// Gumbel-softmax temperature schedule for the search stage: linear
  /// anneal from start to end over the search epochs (paper Eq. 17).
  float gumbel_temp_start = 1.0f;
  float gumbel_temp_end = 0.2f;

  /// GRDA settings for AutoFIS gates (paper Table IV: mu, c; c scaled up
  /// for the shorter training runs, see lr_gate).
  GrdaConfig grda{/*c=*/0.02f, /*mu=*/0.8f};

  uint64_t seed = 2022;
};

/// Per-dataset presets mirroring the structure of Table IV (scaled).
HyperParams DefaultHyperParams(const std::string& profile_name);

}  // namespace optinter
