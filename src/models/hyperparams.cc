#include "models/hyperparams.h"

namespace optinter {

HyperParams DefaultHyperParams(const std::string& profile_name) {
  HyperParams hp;
  if (profile_name == "criteo_like") {
    hp.embed_dim = 16;
    hp.cross_embed_dim = 8;
    hp.mlp_hidden = {128, 64};
    hp.epochs = 8;
  } else if (profile_name == "avazu_like") {
    hp.embed_dim = 16;
    hp.cross_embed_dim = 4;
    hp.mlp_hidden = {128, 64};
    hp.epochs = 8;
  } else if (profile_name == "ipinyou_like") {
    hp.embed_dim = 16;
    hp.cross_embed_dim = 8;
    hp.mlp_hidden = {128, 64};
    hp.l2_orig = 1e-6f;
    hp.epochs = 8;
    // Mirrors the paper's distinct GRDA setting on iPinYou
    // (mu=0.535, c=5e-3 → scaled: weaker exponent, larger c).
    hp.grda.mu = 0.535f;
    hp.grda.c = 0.04f;
  } else if (profile_name == "private_like") {
    hp.embed_dim = 8;
    hp.cross_embed_dim = 4;
    hp.mlp_hidden = {64, 32};
    hp.epochs = 8;
  } else {  // "tiny" and anything unknown: small and fast.
    hp.embed_dim = 8;
    hp.cross_embed_dim = 4;
    hp.mlp_hidden = {16};
    hp.epochs = 2;
    hp.batch_size = 256;
  }
  return hp;
}

}  // namespace optinter
