// Per-table embedding-backend resolution shared by the embedding layers
// (FeatureEmbedding / CrossEmbedding / TripleEmbedding).
//
// A layer receives ONE backend policy for all its tables; each table then
// resolves it against its own vocab (min-vocab dense fallback, the
// OPTINTER_EMBED_BACKEND parity override) and — for tiered tables — builds
// its tier plan from the best available frequency source:
//
//   1. explicit policy.tier_hot_ids (unit tests, hand-tuned plans),
//   2. the dataset's per-field hot-id metadata (attached by the encoder:
//      exact ranked counts for in-RAM EncodeDataset, Misra-Gries streaming
//      stats carried through the shard MANIFEST — see DESIGN.md §12),
//   3. nothing — EmbeddingTable falls back to the {1..K} hot set, which
//      matches the hashed encoder's id layout exactly.
//
// There is deliberately NO "scan the in-RAM rows" source: the tier plan
// must be a function of the dataset's metadata alone so that a model built
// from a metadata-only streaming dataset and one built from the same data
// fully in RAM resolve identical plans (the streamed-vs-RAM bitwise
// determinism contract, tests/concurrency_test.cc).

#pragma once

#include <vector>

#include "data/dataset.h"
#include "nn/embedding.h"

namespace optinter {

/// Resolves `policy` for one table of `vocab` ids. `hot_meta[field]` is
/// the dataset's optional frequency-ranked id list for this table (empty
/// or absent = use the table's {1..K} fallback).
inline EmbeddingBackendConfig ResolveTableBackend(
    const EmbeddingBackendConfig& policy, size_t vocab,
    const std::vector<std::vector<int32_t>>& hot_meta, size_t field) {
  EmbeddingBackendConfig cfg = ResolveBackendForVocab(policy, vocab);
  if (cfg.kind == EmbeddingBackendKind::kTiered && cfg.tier_hot_ids.empty() &&
      field < hot_meta.size()) {
    cfg.tier_hot_ids = hot_meta[field];
  }
  return cfg;
}

}  // namespace optinter
