#include "models/deep_models.h"

#include <cstring>

#include "nn/layers.h"
#include "tensor/kernels.h"

namespace optinter {

DeepBaselineModel::DeepBaselineModel(const EncodedDataset& data,
                                     const HyperParams& hp,
                                     DeepVariant variant)
    : variant_(variant),
      dim_(hp.embed_dim),
      rng_(hp.seed),
      emb_(data, hp.embed_dim, hp.lr_orig, hp.l2_orig, &rng_,
           hp.orig_backend) {
  num_fields_ = emb_.num_fields();
  num_pairs_ = num_fields_ * (num_fields_ - 1) / 2;
  for (size_t i = 0; i < num_fields_; ++i) {
    for (size_t j = i + 1; j < num_fields_; ++j) {
      field_pairs_.emplace_back(i, j);
    }
  }

  size_t mlp_in = emb_.output_dim();
  switch (variant_) {
    case DeepVariant::kFnn:
      break;
    case DeepVariant::kIpnn:
      mlp_in += num_pairs_;
      break;
    case DeepVariant::kOpnn: {
      mlp_in += num_pairs_;
      kernels_.name = "opnn/kernels";
      kernels_.Resize({num_pairs_, dim_ * dim_});
      for (size_t p = 0; p < num_pairs_; ++p) {
        float* w = kernels_.value.row(p);
        for (size_t t = 0; t < dim_; ++t) w[t * dim_ + t] = 1.0f;
      }
      kernels_.lr = hp.lr_orig;
      kernels_.l2 = hp.l2_orig;
      dense_opt_.AddParam(&kernels_);
      break;
    }
    case DeepVariant::kDeepFm: {
      linear_ = std::make_unique<FeatureEmbedding>(data, 1, hp.lr_orig,
                                                   hp.l2_orig, &rng_);
      fm_bias_.name = "deepfm/bias";
      fm_bias_.Resize({1});
      fm_bias_.lr = hp.lr_orig;
      dense_opt_.AddParam(&fm_bias_);
      break;
    }
    case DeepVariant::kPin: {
      mlp_in += num_pairs_ * kPinSubnetOut;
      MlpConfig sub;
      sub.hidden = {kPinSubnetHidden};
      sub.out_dim = kPinSubnetOut;
      sub.layer_norm = false;
      sub.lr = hp.lr_orig;
      sub.l2 = hp.l2_orig;
      subnets_.reserve(num_pairs_);
      for (size_t p = 0; p < num_pairs_; ++p) {
        subnets_.push_back(std::make_unique<Mlp>(
            "pin/sub" + std::to_string(p), 3 * dim_, sub, &rng_));
        subnets_.back()->RegisterParams(&dense_opt_);
      }
      break;
    }
  }

  MlpConfig cfg;
  cfg.hidden = hp.mlp_hidden;
  cfg.out_dim = 1;
  cfg.layer_norm = hp.layer_norm;
  cfg.lr = hp.lr_orig;
  cfg.l2 = hp.l2_orig;
  mlp_ = std::make_unique<Mlp>("mlp", mlp_in, cfg, &rng_);
  mlp_->RegisterParams(&dense_opt_);
}

std::string DeepBaselineModel::Name() const {
  switch (variant_) {
    case DeepVariant::kFnn:
      return "FNN";
    case DeepVariant::kIpnn:
      return "IPNN";
    case DeepVariant::kOpnn:
      return "OPNN";
    case DeepVariant::kDeepFm:
      return "DeepFM";
    case DeepVariant::kPin:
      return "PIN";
  }
  return "Deep?";
}

void DeepBaselineModel::Forward(const Batch& batch) {
  emb_.Forward(batch, &emb_out_);
  const size_t b = batch.size;
  const size_t d = dim_;
  const size_t emb_cols = emb_out_.cols();

  size_t extra = 0;
  if (variant_ == DeepVariant::kIpnn || variant_ == DeepVariant::kOpnn) {
    extra = num_pairs_;
  } else if (variant_ == DeepVariant::kPin) {
    extra = num_pairs_ * kPinSubnetOut;
  }
  z_.Resize({b, emb_cols + extra});
  for (size_t k = 0; k < b; ++k) {
    std::memcpy(z_.row(k), emb_out_.row(k), emb_cols * sizeof(float));
  }

  switch (variant_) {
    case DeepVariant::kFnn:
    case DeepVariant::kDeepFm:
      break;
    case DeepVariant::kIpnn: {
      for (size_t k = 0; k < b; ++k) {
        const float* e = emb_out_.row(k);
        float* zp = z_.row(k) + emb_cols;
        for (size_t p = 0; p < num_pairs_; ++p) {
          const auto [i, j] = field_pairs_[p];
          zp[p] = Dot(d, e + i * d, e + j * d);
        }
      }
      break;
    }
    case DeepVariant::kOpnn: {
      for (size_t k = 0; k < b; ++k) {
        const float* e = emb_out_.row(k);
        float* zp = z_.row(k) + emb_cols;
        for (size_t p = 0; p < num_pairs_; ++p) {
          const auto [i, j] = field_pairs_[p];
          const float* w = kernels_.value.row(p);
          const float* ei = e + i * d;
          const float* ej = e + j * d;
          float term = 0.0f;
          for (size_t a = 0; a < d; ++a) term += ei[a] * Dot(d, w + a * d, ej);
          zp[p] = term;
        }
      }
      break;
    }
    case DeepVariant::kPin: {
      subnet_in_.resize(num_pairs_);
      subnet_out_.resize(num_pairs_);
      for (size_t p = 0; p < num_pairs_; ++p) {
        const auto [i, j] = field_pairs_[p];
        Tensor& in = subnet_in_[p];
        in.Resize({b, 3 * d});
        for (size_t k = 0; k < b; ++k) {
          const float* e = emb_out_.row(k);
          float* dst = in.row(k);
          std::memcpy(dst, e + i * d, d * sizeof(float));
          std::memcpy(dst + d, e + j * d, d * sizeof(float));
          Hadamard(d, e + i * d, e + j * d, dst + 2 * d);
        }
        subnets_[p]->Forward(in, &subnet_out_[p]);
        for (size_t k = 0; k < b; ++k) {
          std::memcpy(z_.row(k) + emb_cols + p * kPinSubnetOut,
                      subnet_out_[p].row(k), kPinSubnetOut * sizeof(float));
        }
      }
      break;
    }
  }

  mlp_->Forward(z_, &mlp_out_);
  logits_.resize(b);
  for (size_t k = 0; k < b; ++k) logits_[k] = mlp_out_.at(k, 0);

  if (variant_ == DeepVariant::kDeepFm) {
    linear_->Forward(batch, &linear_out_);
    std::vector<float> sum_t(d);
    for (size_t k = 0; k < b; ++k) {
      float fm = fm_bias_.value[0] +
                 Sum(linear_out_.cols(), linear_out_.row(k));
      const float* e = emb_out_.row(k);
      for (size_t t = 0; t < d; ++t) sum_t[t] = 0.0f;
      float sq = 0.0f;
      for (size_t f = 0; f < num_fields_; ++f) {
        const float* ef = e + f * d;
        for (size_t t = 0; t < d; ++t) {
          sum_t[t] += ef[t];
          sq += ef[t] * ef[t];
        }
      }
      float s2 = 0.0f;
      for (size_t t = 0; t < d; ++t) s2 += sum_t[t] * sum_t[t];
      fm += 0.5f * (s2 - sq);
      logits_[k] += fm;
    }
  }
}

float DeepBaselineModel::TrainStep(const Batch& batch) {
  Forward(batch);
  const size_t b = batch.size;
  const size_t d = dim_;
  labels_.resize(b);
  dlogits_.resize(b);
  for (size_t k = 0; k < b; ++k) labels_[k] = batch.label(k);
  const float loss = BceWithLogitsLoss(logits_.data(), labels_.data(), b,
                                       dlogits_.data());

  Tensor dmlp_out({b, 1});
  for (size_t k = 0; k < b; ++k) dmlp_out.at(k, 0) = dlogits_[k];
  Tensor dz;
  mlp_->Backward(dmlp_out, &dz);

  const size_t emb_cols = emb_out_.cols();
  Tensor demb({b, emb_cols});
  for (size_t k = 0; k < b; ++k) {
    std::memcpy(demb.row(k), dz.row(k), emb_cols * sizeof(float));
  }

  switch (variant_) {
    case DeepVariant::kFnn:
      break;
    case DeepVariant::kIpnn: {
      for (size_t k = 0; k < b; ++k) {
        const float* e = emb_out_.row(k);
        const float* dzp = dz.row(k) + emb_cols;
        float* de = demb.row(k);
        for (size_t p = 0; p < num_pairs_; ++p) {
          const auto [i, j] = field_pairs_[p];
          Axpy(d, dzp[p], e + j * d, de + i * d);
          Axpy(d, dzp[p], e + i * d, de + j * d);
        }
      }
      break;
    }
    case DeepVariant::kOpnn: {
      for (size_t k = 0; k < b; ++k) {
        const float* e = emb_out_.row(k);
        const float* dzp = dz.row(k) + emb_cols;
        float* de = demb.row(k);
        for (size_t p = 0; p < num_pairs_; ++p) {
          const float g = dzp[p];
          if (g == 0.0f) continue;
          const auto [i, j] = field_pairs_[p];
          const float* w = kernels_.value.row(p);
          float* dw = kernels_.grad.row(p);
          const float* ei = e + i * d;
          const float* ej = e + j * d;
          float* dei = de + i * d;
          float* dej = de + j * d;
          for (size_t a = 0; a < d; ++a) {
            const float* wa = w + a * d;
            dei[a] += g * Dot(d, wa, ej);
            Axpy(d, g * ei[a], ej, dw + a * d);
            Axpy(d, g * ei[a], wa, dej);
          }
        }
      }
      break;
    }
    case DeepVariant::kDeepFm: {
      // FM-logit path adds gradients on top of the MLP path.
      Tensor dlinear({b, linear_out_.cols()});
      std::vector<float> sum_t(d);
      for (size_t k = 0; k < b; ++k) {
        const float g = dlogits_[k];
        fm_bias_.grad[0] += g;
        float* dl = dlinear.row(k);
        for (size_t c = 0; c < linear_out_.cols(); ++c) dl[c] = g;
        const float* e = emb_out_.row(k);
        float* de = demb.row(k);
        for (size_t t = 0; t < d; ++t) sum_t[t] = 0.0f;
        for (size_t f = 0; f < num_fields_; ++f) {
          const float* ef = e + f * d;
          for (size_t t = 0; t < d; ++t) sum_t[t] += ef[t];
        }
        for (size_t f = 0; f < num_fields_; ++f) {
          const float* ef = e + f * d;
          float* def = de + f * d;
          for (size_t t = 0; t < d; ++t) def[t] += g * (sum_t[t] - ef[t]);
        }
      }
      linear_->Backward(dlinear);
      linear_->Step();
      break;
    }
    case DeepVariant::kPin: {
      Tensor dsub_out({b, kPinSubnetOut});
      Tensor dsub_in;
      for (size_t p = 0; p < num_pairs_; ++p) {
        const auto [i, j] = field_pairs_[p];
        for (size_t k = 0; k < b; ++k) {
          std::memcpy(dsub_out.row(k),
                      dz.row(k) + emb_cols + p * kPinSubnetOut,
                      kPinSubnetOut * sizeof(float));
        }
        subnets_[p]->Backward(dsub_out, &dsub_in);
        for (size_t k = 0; k < b; ++k) {
          const float* e = emb_out_.row(k);
          const float* din = dsub_in.row(k);
          float* de = demb.row(k);
          const float* ei = e + i * d;
          const float* ej = e + j * d;
          float* dei = de + i * d;
          float* dej = de + j * d;
          for (size_t t = 0; t < d; ++t) {
            dei[t] += din[t] + din[2 * d + t] * ej[t];
            dej[t] += din[d + t] + din[2 * d + t] * ei[t];
          }
        }
      }
      break;
    }
  }

  emb_.Backward(demb);
  emb_.Step();
  dense_opt_.Step();
  dense_opt_.ZeroGrad();
  return loss;
}

void DeepBaselineModel::Predict(const Batch& batch,
                                std::vector<float>* probs) {
  Forward(batch);
  probs->resize(batch.size);
  SigmoidForward(logits_.data(), batch.size, probs->data());
}

void DeepBaselineModel::CollectState(std::vector<Tensor*>* out) {
  emb_.CollectState(out);
  if (linear_) linear_->CollectState(out);
  for (DenseParam* p : dense_opt_.params()) out->push_back(&p->value);
}

size_t DeepBaselineModel::ParamCount() const {
  size_t total = emb_.ParamCount() + mlp_->ParamCount();
  if (variant_ == DeepVariant::kOpnn) total += kernels_.size();
  if (variant_ == DeepVariant::kDeepFm) {
    total += linear_->ParamCount() + fm_bias_.size();
  }
  for (const auto& s : subnets_) total += s->ParamCount();
  return total;
}

}  // namespace optinter
