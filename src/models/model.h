// Abstract CTR model interface.
//
// Every baseline and every OptInter instance implements this. TrainStep
// performs forward + loss + backward + optimizer update for one batch and
// returns the batch loss; Predict produces click probabilities.

#pragma once

#include <string>
#include <vector>

#include "common/logging.h"
#include "data/batch.h"
#include "models/forward_context.h"
#include "tensor/tensor.h"

namespace optinter {

struct PreparedBatch;

/// A trainable CTR predictor.
class CtrModel {
 public:
  virtual ~CtrModel() = default;

  /// Model name as used in the paper's tables ("IPNN", "OptInter-M", ...).
  virtual std::string Name() const = 0;

  /// One optimization step on `batch`; returns the mean batch loss.
  virtual float TrainStep(const Batch& batch) = 0;

  // --- Phase-split training protocol (pipelined executor) --------------
  //
  // Models that opt in (SupportsPhasedTrainStep) decompose TrainStep into
  //   PrepareBatch -> ForwardBackward -> ApplyGrads
  // with the invariant that calling the three phases back to back is
  // EXACTLY TrainStep (the model's own TrainStep must be implemented that
  // way). PrepareBatch is const and must read only the dataset and the
  // batch's row ids — never weights or optimizer state — unless the model
  // overrides PrepareIsWeightIndependent() to false, in which case the
  // executor fences each prepare behind the previous step's ApplyGrads.
  // See src/train/pipeline_executor.h and DESIGN.md for the full contract.

  /// True when the three phase methods below are implemented.
  virtual bool SupportsPhasedTrainStep() const { return false; }

  /// True (default) when PrepareBatch never reads weights, so batch t+1's
  /// prepare may overlap batch t's compute without fencing.
  virtual bool PrepareIsWeightIndependent() const { return true; }

  /// Phase 1: weight-independent batch preparation into `prep`.
  virtual void PrepareBatch(const Batch& batch, PreparedBatch* prep) const {
    (void)batch;
    (void)prep;
    CHECK(false) << Name() << " does not support phased TrainStep";
  }

  /// Phase 2: forward + loss + backward from a prepared batch; returns
  /// the mean batch loss. Gradients are left accumulated for ApplyGrads.
  virtual float ForwardBackward(const PreparedBatch& prep) {
    (void)prep;
    CHECK(false) << Name() << " does not support phased TrainStep";
    return 0.0f;
  }

  /// Phase 3: applies the accumulated gradients and clears them.
  virtual void ApplyGrads() {
    CHECK(false) << Name() << " does not support phased TrainStep";
  }

  /// Predicted probabilities for the rows of `batch` (no grads).
  virtual void Predict(const Batch& batch, std::vector<float>* probs) = 0;

  /// True when the const Predict overload below is implemented, i.e.
  /// concurrent Predict calls on different batches with distinct contexts
  /// are safe (parameters must be quiescent — no concurrent TrainStep).
  virtual bool SupportsReentrantPredict() const { return false; }

  /// Re-entrant prediction: all per-call state lives in `ctx`. Only valid
  /// when SupportsReentrantPredict() returns true.
  virtual void Predict(const Batch& batch, std::vector<float>* probs,
                       ForwardContext* ctx) const {
    (void)batch;
    (void)probs;
    (void)ctx;
    CHECK(false) << Name() << " does not support re-entrant Predict";
  }

  /// Total trainable parameters (the paper's "Param." column).
  virtual size_t ParamCount() const = 0;

  /// Appends non-owning pointers to every trainable value tensor, enabling
  /// best-checkpoint snapshot/restore in the trainer. Models that return
  /// nothing simply don't participate in checkpointing.
  virtual void CollectState(std::vector<Tensor*>* out) { (void)out; }
};

}  // namespace optinter
