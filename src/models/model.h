// Abstract CTR model interface.
//
// Every baseline and every OptInter instance implements this. TrainStep
// performs forward + loss + backward + optimizer update for one batch and
// returns the batch loss; Predict produces click probabilities.

#pragma once

#include <string>
#include <vector>

#include "common/logging.h"
#include "data/batch.h"
#include "models/forward_context.h"
#include "tensor/tensor.h"

namespace optinter {

/// A trainable CTR predictor.
class CtrModel {
 public:
  virtual ~CtrModel() = default;

  /// Model name as used in the paper's tables ("IPNN", "OptInter-M", ...).
  virtual std::string Name() const = 0;

  /// One optimization step on `batch`; returns the mean batch loss.
  virtual float TrainStep(const Batch& batch) = 0;

  /// Predicted probabilities for the rows of `batch` (no grads).
  virtual void Predict(const Batch& batch, std::vector<float>* probs) = 0;

  /// True when the const Predict overload below is implemented, i.e.
  /// concurrent Predict calls on different batches with distinct contexts
  /// are safe (parameters must be quiescent — no concurrent TrainStep).
  virtual bool SupportsReentrantPredict() const { return false; }

  /// Re-entrant prediction: all per-call state lives in `ctx`. Only valid
  /// when SupportsReentrantPredict() returns true.
  virtual void Predict(const Batch& batch, std::vector<float>* probs,
                       ForwardContext* ctx) const {
    (void)batch;
    (void)probs;
    (void)ctx;
    CHECK(false) << Name() << " does not support re-entrant Predict";
  }

  /// Total trainable parameters (the paper's "Param." column).
  virtual size_t ParamCount() const = 0;

  /// Appends non-owning pointers to every trainable value tensor, enabling
  /// best-checkpoint snapshot/restore in the trainer. Models that return
  /// nothing simply don't participate in checkpointing.
  virtual void CollectState(std::vector<Tensor*>* out) { (void)out; }
};

}  // namespace optinter
