#include "models/fm_family.h"

#include "nn/layers.h"
#include "tensor/kernels.h"

namespace optinter {

FmFamilyModel::FmFamilyModel(const EncodedDataset& data,
                             const HyperParams& hp, FmVariant variant)
    : variant_(variant),
      dim_(hp.embed_dim),
      rng_(hp.seed),
      linear_(data, /*dim=*/1, hp.lr_orig, hp.l2_orig, &rng_),
      latent_(data,
              variant == FmVariant::kFfm
                  ? hp.embed_dim * (data.num_categorical() +
                                    data.num_continuous())
                  : hp.embed_dim,
              hp.lr_orig, hp.l2_orig, &rng_) {
  num_fields_ = latent_.num_fields();
  num_pairs_ = num_fields_ * (num_fields_ - 1) / 2;
  for (size_t i = 0; i < num_fields_; ++i) {
    for (size_t j = i + 1; j < num_fields_; ++j) {
      field_pairs_.emplace_back(i, j);
    }
  }
  bias_.name = "fm/bias";
  bias_.Resize({1});
  bias_.lr = hp.lr_orig;
  dense_opt_.AddParam(&bias_);
  if (variant_ == FmVariant::kFwFm) {
    pair_weights_.name = "fwfm/pair_weights";
    pair_weights_.Resize({num_pairs_});
    pair_weights_.value.Fill(1.0f);  // start at plain FM
    pair_weights_.lr = hp.lr_orig;
    pair_weights_.l2 = hp.l2_orig;
    dense_opt_.AddParam(&pair_weights_);
  } else if (variant_ == FmVariant::kFmFm) {
    pair_matrices_.name = "fmfm/pair_matrices";
    pair_matrices_.Resize({num_pairs_, dim_ * dim_});
    // Identity init: starts at plain FM.
    for (size_t p = 0; p < num_pairs_; ++p) {
      float* w = pair_matrices_.value.row(p);
      for (size_t t = 0; t < dim_; ++t) w[t * dim_ + t] = 1.0f;
    }
    pair_matrices_.lr = hp.lr_orig;
    pair_matrices_.l2 = hp.l2_orig;
    dense_opt_.AddParam(&pair_matrices_);
  }
}

std::string FmFamilyModel::Name() const {
  switch (variant_) {
    case FmVariant::kFm:
      return "FM";
    case FmVariant::kFfm:
      return "FFM";
    case FmVariant::kFwFm:
      return "FwFM";
    case FmVariant::kFmFm:
      return "FmFM";
  }
  return "FM?";
}

void FmFamilyModel::Forward(const Batch& batch) {
  linear_.Forward(batch, &linear_out_);
  latent_.Forward(batch, &latent_out_);
  logits_.resize(batch.size);
  const size_t d = dim_;
  std::vector<float> tmp(d);
  for (size_t k = 0; k < batch.size; ++k) {
    float logit = bias_.value[0] + Sum(linear_out_.cols(),
                                       linear_out_.row(k));
    const float* e = latent_out_.row(k);
    switch (variant_) {
      case FmVariant::kFm: {
        // 0.5 * Σ_t [(Σ_f e_ft)² − Σ_f e_ft²].
        for (size_t t = 0; t < d; ++t) tmp[t] = 0.0f;
        float sq = 0.0f;
        for (size_t f = 0; f < num_fields_; ++f) {
          const float* ef = e + f * d;
          for (size_t t = 0; t < d; ++t) {
            tmp[t] += ef[t];
            sq += ef[t] * ef[t];
          }
        }
        float s2 = 0.0f;
        for (size_t t = 0; t < d; ++t) s2 += tmp[t] * tmp[t];
        logit += 0.5f * (s2 - sq);
        break;
      }
      case FmVariant::kFfm: {
        // Row layout per field: F slices of width d; slice t of field i is
        // its latent vector against opponent field t.
        const size_t stride = num_fields_ * d;
        for (size_t p = 0; p < num_pairs_; ++p) {
          const auto [i, j] = field_pairs_[p];
          logit += Dot(d, e + i * stride + j * d, e + j * stride + i * d);
        }
        break;
      }
      case FmVariant::kFwFm: {
        const float* r = pair_weights_.value.data();
        for (size_t p = 0; p < num_pairs_; ++p) {
          const auto [i, j] = field_pairs_[p];
          logit += r[p] * Dot(d, e + i * d, e + j * d);
        }
        break;
      }
      case FmVariant::kFmFm: {
        for (size_t p = 0; p < num_pairs_; ++p) {
          const auto [i, j] = field_pairs_[p];
          const float* w = pair_matrices_.value.row(p);
          const float* ei = e + i * d;
          const float* ej = e + j * d;
          // e_i^T W e_j.
          float term = 0.0f;
          for (size_t a = 0; a < d; ++a) {
            term += ei[a] * Dot(d, w + a * d, ej);
          }
          logit += term;
        }
        break;
      }
    }
    logits_[k] = logit;
  }
}

float FmFamilyModel::TrainStep(const Batch& batch) {
  Forward(batch);
  labels_.resize(batch.size);
  dlogits_.resize(batch.size);
  for (size_t k = 0; k < batch.size; ++k) labels_[k] = batch.label(k);
  const float loss = BceWithLogitsLoss(logits_.data(), labels_.data(),
                                       batch.size, dlogits_.data());

  const size_t d = dim_;
  Tensor dlinear({batch.size, linear_out_.cols()});
  Tensor dlatent({batch.size, latent_out_.cols()});
  std::vector<float> sum_t(d);
  for (size_t k = 0; k < batch.size; ++k) {
    const float g = dlogits_[k];
    bias_.grad[0] += g;
    float* dl = dlinear.row(k);
    for (size_t c = 0; c < linear_out_.cols(); ++c) dl[c] = g;
    const float* e = latent_out_.row(k);
    float* de = dlatent.row(k);
    switch (variant_) {
      case FmVariant::kFm: {
        for (size_t t = 0; t < d; ++t) sum_t[t] = 0.0f;
        for (size_t f = 0; f < num_fields_; ++f) {
          const float* ef = e + f * d;
          for (size_t t = 0; t < d; ++t) sum_t[t] += ef[t];
        }
        for (size_t f = 0; f < num_fields_; ++f) {
          const float* ef = e + f * d;
          float* def = de + f * d;
          for (size_t t = 0; t < d; ++t) {
            def[t] = g * (sum_t[t] - ef[t]);
          }
        }
        break;
      }
      case FmVariant::kFfm: {
        const size_t stride = num_fields_ * d;
        for (size_t p = 0; p < num_pairs_; ++p) {
          const auto [i, j] = field_pairs_[p];
          const float* eij = e + i * stride + j * d;
          const float* eji = e + j * stride + i * d;
          Axpy(d, g, eji, de + i * stride + j * d);
          Axpy(d, g, eij, de + j * stride + i * d);
        }
        break;
      }
      case FmVariant::kFwFm: {
        const float* r = pair_weights_.value.data();
        float* dr = pair_weights_.grad.data();
        for (size_t p = 0; p < num_pairs_; ++p) {
          const auto [i, j] = field_pairs_[p];
          const float* ei = e + i * d;
          const float* ej = e + j * d;
          dr[p] += g * Dot(d, ei, ej);
          Axpy(d, g * r[p], ej, de + i * d);
          Axpy(d, g * r[p], ei, de + j * d);
        }
        break;
      }
      case FmVariant::kFmFm: {
        for (size_t p = 0; p < num_pairs_; ++p) {
          const auto [i, j] = field_pairs_[p];
          const float* w = pair_matrices_.value.row(p);
          float* dw = pair_matrices_.grad.row(p);
          const float* ei = e + i * d;
          const float* ej = e + j * d;
          float* dei = de + i * d;
          float* dej = de + j * d;
          for (size_t a = 0; a < d; ++a) {
            const float* wa = w + a * d;
            // d e_i[a] += g * (W e_j)[a]; dW[a,:] += g*e_i[a]*e_j;
            dei[a] += g * Dot(d, wa, ej);
            Axpy(d, g * ei[a], ej, dw + a * d);
            // d e_j += g * W^T e_i: add g*e_i[a]*W[a,:].
            Axpy(d, g * ei[a], wa, dej);
          }
        }
        break;
      }
    }
  }
  linear_.Backward(dlinear);
  latent_.Backward(dlatent);
  linear_.Step();
  latent_.Step();
  dense_opt_.Step();
  dense_opt_.ZeroGrad();
  return loss;
}

void FmFamilyModel::Predict(const Batch& batch, std::vector<float>* probs) {
  Forward(batch);
  probs->resize(batch.size);
  SigmoidForward(logits_.data(), batch.size, probs->data());
}

void FmFamilyModel::CollectState(std::vector<Tensor*>* out) {
  linear_.CollectState(out);
  latent_.CollectState(out);
  for (DenseParam* p : dense_opt_.params()) out->push_back(&p->value);
}

size_t FmFamilyModel::ParamCount() const {
  size_t total = linear_.ParamCount() + latent_.ParamCount() + bias_.size();
  if (variant_ == FmVariant::kFwFm) total += pair_weights_.size();
  if (variant_ == FmVariant::kFmFm) total += pair_matrices_.size();
  return total;
}

}  // namespace optinter
