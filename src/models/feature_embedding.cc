#include "models/feature_embedding.h"

#include <cstring>

#include "common/thread_pool.h"
#include "models/backend_resolve.h"
#include "obs/trace.h"

namespace optinter {

namespace {
// Rows × floats below which the gather loops stay serial; gathers are
// memory-bound, so only sizeable batches amortize the pool handoff.
constexpr size_t kParallelGatherFloats = 1u << 15;
}  // namespace

FeatureEmbedding::FeatureEmbedding(const EncodedDataset& data, size_t dim,
                                   float lr, float l2, Rng* rng,
                                   const EmbeddingBackendConfig& backend)
    : data_(data), dim_(dim) {
  CHECK_GT(dim, 0u);
  const size_t num_cat = data.num_categorical();
  cat_tables_.reserve(num_cat);
  for (size_t f = 0; f < num_cat; ++f) {
    auto table = std::make_unique<EmbeddingTable>(
        "orig_emb/cat" + std::to_string(f), data.cat_vocab_sizes[f], dim,
        lr, l2,
        ResolveTableBackend(backend, data.cat_vocab_sizes[f],
                            data.cat_hot_ids, f));
    table->Init(rng);
    cat_tables_.push_back(std::move(table));
  }
  for (size_t f = 0; f < data.num_continuous(); ++f) {
    auto table = std::make_unique<EmbeddingTable>(
        "orig_emb/cont" + std::to_string(f), /*vocab_size=*/1, dim, lr, l2);
    table->Init(rng);
    cont_tables_.push_back(std::move(table));
  }
}

void FeatureEmbedding::Forward(const Batch& batch, Tensor* out) {
  // Backward re-reads ids for the cached rows through the batch's dataset,
  // which must therefore stay valid through the whole train step. Any
  // dataset encoded compatibly with the construction one is accepted
  // (batch-local streaming buffers included); Gather checks the layout.
  Gather(batch, out);
  batch_data_ = batch.data;
  batch_rows_.assign(batch.rows, batch.rows + batch.size);
}

void FeatureEmbedding::Gather(const Batch& batch, Tensor* out) const {
  OPTINTER_TRACE_SPAN("embedding_gather");
  // Inference may read any schema-compatible dataset (e.g. the serving
  // layer's request arenas), not just the one the layer was built from;
  // ids must come from the same encoder so the vocabularies line up.
  const EncodedDataset& data = *batch.data;
  CHECK_EQ(data.num_categorical(), cat_tables_.size());
  CHECK_EQ(data.num_continuous(), cont_tables_.size());
  const size_t num_cat = cat_tables_.size();
  const size_t num_cont = cont_tables_.size();
  out->Resize({batch.size, output_dim()});
  auto gather = [&](size_t lo, size_t hi) {
    for (size_t k = lo; k < hi; ++k) {
      const size_t r = batch.rows[k];
      float* dst = out->row(k);
      for (size_t f = 0; f < num_cat; ++f) {
        cat_tables_[f]->CopyRow(data.cat(r, f), dst + f * dim_);
      }
      for (size_t f = 0; f < num_cont; ++f) {
        const float v = data.cont(r, f);
        const float* src = cont_tables_[f]->Row(0);
        float* d = dst + (num_cat + f) * dim_;
        for (size_t t = 0; t < dim_; ++t) d[t] = src[t] * v;
      }
    }
  };
  // Rows write disjoint output ranges, so the fan-out is bit-identical to
  // the serial loop.
  if (batch.size * output_dim() >= kParallelGatherFloats) {
    ParallelForChunks(0, batch.size, gather, /*min_chunk=*/64);
  } else {
    gather(0, batch.size);
  }
}

void FeatureEmbedding::GatherRow(const EncodedDataset& data, size_t row,
                                 float* dst) const {
  const size_t num_cat = cat_tables_.size();
  const size_t num_cont = cont_tables_.size();
  CHECK_EQ(data.num_categorical(), num_cat);
  CHECK_EQ(data.num_continuous(), num_cont);
  for (size_t f = 0; f < num_cat; ++f) {
    cat_tables_[f]->CopyRow(data.cat(row, f), dst + f * dim_);
  }
  for (size_t f = 0; f < num_cont; ++f) {
    const float v = data.cont(row, f);
    const float* src = cont_tables_[f]->Row(0);
    float* d = dst + (num_cat + f) * dim_;
    for (size_t t = 0; t < dim_; ++t) d[t] = src[t] * v;
  }
}

void FeatureEmbedding::Backward(const Tensor& d_out) {
  OPTINTER_TRACE_SPAN("embedding_scatter");
  const size_t num_cat = cat_tables_.size();
  const size_t num_cont = cont_tables_.size();
  CHECK_EQ(d_out.rows(), batch_rows_.size());
  CHECK_EQ(d_out.cols(), output_dim());
  const size_t rows = batch_rows_.size();
  // One scatter bucket per (table, backing-row shard). Buckets own
  // disjoint gradient shards, so they can run concurrently without locks;
  // each bucket scans the batch rows in ascending order, so every backing
  // row's accumulation order — and therefore the shard contents — match
  // the serial loop bit for bit. The table routes each id's backing parts
  // to their owning shard (AccumulateGradForShard filters internally).
  auto scatter_bucket = [&](size_t f, size_t shard) {
    if (f < num_cat) {
      EmbeddingTable& table = *cat_tables_[f];
      for (size_t k = 0; k < rows; ++k) {
        const int32_t id = batch_data_->cat(batch_rows_[k], f);
        table.AccumulateGradForShard(shard, id, d_out.row(k) + f * dim_);
      }
    } else {
      // Continuous tables have a single row: id 0, one shard. The scaled
      // accumulate shares its rounding with the prepared path
      // (AccumulatePreparedGradScaled), keeping the two bit-identical.
      if (shard != EmbeddingTable::ShardOf(0)) return;
      const size_t fc = f - num_cat;
      EmbeddingTable& table = *cont_tables_[fc];
      for (size_t k = 0; k < rows; ++k) {
        const float v = batch_data_->cont(batch_rows_[k], fc);
        table.AccumulateScaledGradForShard(shard, 0, d_out.row(k) + f * dim_,
                                           v);
      }
    }
  };
  const size_t num_buckets =
      (num_cat + num_cont) * EmbeddingTable::kGradShards;
  auto run_buckets = [&](size_t lo, size_t hi) {
    for (size_t b = lo; b < hi; ++b) {
      scatter_bucket(b / EmbeddingTable::kGradShards,
                     b % EmbeddingTable::kGradShards);
    }
  };
  if (d_out.size() >= kParallelGatherFloats && num_buckets > 1) {
    ParallelForChunks(0, num_buckets, run_buckets, /*min_chunk=*/1);
  } else {
    run_buckets(0, num_buckets);
  }
}

void FeatureEmbedding::Prepare(const Batch& batch, PreparedBatch* prep) const {
  OPTINTER_TRACE_SPAN("embedding_prepare");
  // Prepared buffers copy everything the step needs, so the batch may
  // point at any compatibly-encoded dataset — including a streaming
  // batcher's reusable buffer that is recycled right after this call.
  const EncodedDataset& data = *batch.data;
  const size_t num_cat = cat_tables_.size();
  const size_t num_cont = cont_tables_.size();
  CHECK_EQ(data.num_categorical(), num_cat);
  CHECK_EQ(data.num_continuous(), num_cont);
  prep->cat.resize(num_cat);
  for (size_t f = 0; f < num_cat; ++f) {
    PrepareTableIds(
        *cat_tables_[f], batch.size,
        [&](size_t k) { return data.cat(batch.rows[k], f); }, &prep->dedup,
        &prep->cat[f]);
  }
  prep->cont.clear();
  for (size_t k = 0; k < batch.size; ++k) {
    const size_t r = batch.rows[k];
    for (size_t f = 0; f < num_cont; ++f) {
      prep->cont.push_back(data.cont(r, f));
    }
  }
}

void FeatureEmbedding::ForwardPrepared(const PreparedBatch& prep,
                                       Tensor* out) {
  OPTINTER_TRACE_SPAN("embedding_gather");
  // prep is self-contained (ids, slots, cont values all copied); prep.data
  // may already be stale — e.g. a recycled streaming buffer — and is
  // deliberately not dereferenced here.
  const size_t num_cat = cat_tables_.size();
  const size_t num_cont = cont_tables_.size();
  CHECK_EQ(prep.cat.size(), num_cat);
  const size_t batch_size = prep.size;
  out->Resize({batch_size, output_dim()});
  auto gather = [&](size_t lo, size_t hi) {
    for (size_t k = lo; k < hi; ++k) {
      float* dst = out->row(k);
      for (size_t f = 0; f < num_cat; ++f) {
        cat_tables_[f]->CopyRow(prep.cat[f].ids[k], dst + f * dim_);
      }
      for (size_t f = 0; f < num_cont; ++f) {
        const float v = prep.cont[k * num_cont + f];
        const float* src = cont_tables_[f]->Row(0);
        float* d = dst + (num_cat + f) * dim_;
        for (size_t t = 0; t < dim_; ++t) d[t] = src[t] * v;
      }
    }
  };
  if (batch_size * output_dim() >= kParallelGatherFloats) {
    ParallelForChunks(0, batch_size, gather, /*min_chunk=*/64);
  } else {
    gather(0, batch_size);
  }
  // Arm the slot-addressed scatters for BackwardPrepared.
  for (size_t f = 0; f < num_cat; ++f) {
    cat_tables_[f]->BeginPreparedScatter(prep.cat[f].unique_rows.data(),
                                         prep.cat[f].unique_rows.size());
  }
  static constexpr int32_t kContId[1] = {0};
  for (auto& t : cont_tables_) t->BeginPreparedScatter(kContId, 1);
}

void FeatureEmbedding::BackwardPrepared(const Tensor& d_out,
                                        const PreparedBatch& prep) {
  OPTINTER_TRACE_SPAN("embedding_scatter");
  const size_t num_cat = cat_tables_.size();
  const size_t num_cont = cont_tables_.size();
  CHECK_EQ(d_out.rows(), prep.size);
  CHECK_EQ(d_out.cols(), output_dim());
  // Same (table, backing-row-shard) bucket fan-out as Backward, but rows
  // come pre-bucketed from PrepareBatch (ascending within each bucket, so
  // the per-row accumulation order still matches the serial loop bit for
  // bit) and gradients land in the slot-addressed prepared buffers. QR
  // tables have a second row list (shard_rows2) for the remainder-factor
  // rows, which live in their own backing range.
  auto scatter_bucket = [&](size_t f, size_t shard) {
    if (f < num_cat) {
      EmbeddingTable& table = *cat_tables_[f];
      const PreparedTable& pt = prep.cat[f];
      for (const int32_t k : pt.shard_rows[shard]) {
        table.AccumulatePreparedGradPrimary(
            static_cast<size_t>(pt.slots[k]), pt.ids[static_cast<size_t>(k)],
            d_out.row(static_cast<size_t>(k)) + f * dim_);
      }
      if (table.HasSecondary()) {
        for (const int32_t k : pt.shard_rows2[shard]) {
          table.AccumulatePreparedGradSecondary(
              static_cast<size_t>(pt.slots2[k]),
              pt.ids[static_cast<size_t>(k)],
              d_out.row(static_cast<size_t>(k)) + f * dim_);
        }
      }
    } else {
      // Continuous tables have a single row: id 0, one shard.
      if (shard != EmbeddingTable::ShardOf(0)) return;
      const size_t fc = f - num_cat;
      EmbeddingTable& table = *cont_tables_[fc];
      for (size_t k = 0; k < prep.size; ++k) {
        table.AccumulatePreparedGradScaled(0, d_out.row(k) + f * dim_,
                                           prep.cont[k * num_cont + fc]);
      }
    }
  };
  const size_t num_buckets =
      (num_cat + num_cont) * EmbeddingTable::kGradShards;
  auto run_buckets = [&](size_t lo, size_t hi) {
    for (size_t b = lo; b < hi; ++b) {
      scatter_bucket(b / EmbeddingTable::kGradShards,
                     b % EmbeddingTable::kGradShards);
    }
  };
  if (d_out.size() >= kParallelGatherFloats && num_buckets > 1) {
    ParallelForChunks(0, num_buckets, run_buckets, /*min_chunk=*/1);
  } else {
    run_buckets(0, num_buckets);
  }
}

void FeatureEmbedding::StepPrepared(const AdamConfig& config) {
  for (auto& t : cat_tables_) t->SparseAdamStepPrepared(config);
  for (auto& t : cont_tables_) t->SparseAdamStepPrepared(config);
}

void FeatureEmbedding::Step(const AdamConfig& config) {
  for (auto& t : cat_tables_) t->SparseAdamStep(config);
  for (auto& t : cont_tables_) t->SparseAdamStep(config);
}

void FeatureEmbedding::ClearGrads() {
  for (auto& t : cat_tables_) t->ClearGrads();
  for (auto& t : cont_tables_) t->ClearGrads();
}

void FeatureEmbedding::CollectState(std::vector<Tensor*>* out) {
  for (auto& t : cat_tables_) out->push_back(&t->mutable_values());
  for (auto& t : cont_tables_) out->push_back(&t->mutable_values());
}

size_t FeatureEmbedding::ParamCount() const {
  size_t total = 0;
  for (const auto& t : cat_tables_) total += t->ParamCount();
  for (const auto& t : cont_tables_) total += t->ParamCount();
  return total;
}

}  // namespace optinter
