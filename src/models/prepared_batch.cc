#include "models/prepared_batch.h"

namespace optinter {

void PreparedBatch::BeginFill(const Batch& batch) {
  data = batch.data;
  size = batch.size;
  rows.assign(batch.rows, batch.rows + batch.size);
  labels.clear();
  for (size_t k = 0; k < batch.size; ++k) labels.push_back(batch.label(k));
}

size_t PreparedBatch::CapacityBytes() const {
  size_t total = rows.capacity() * sizeof(size_t) +
                 labels.capacity() * sizeof(float) +
                 cont.capacity() * sizeof(float) + dedup.CapacityBytes();
  for (const auto& pt : cat) total += pt.CapacityBytes();
  for (const auto& pt : cross) total += pt.CapacityBytes();
  for (const auto& pt : triple) total += pt.CapacityBytes();
  return total;
}

}  // namespace optinter
