// Poly2 (paper baseline, Chang et al. 2010): logistic regression over
// original features plus *all* second-order cross-product transformed
// features — the memorized method with a shallow classifier.
//
//   logit = b + Σ_f w_f(v_f) + Σ_c w_c · x_c + Σ_(i,j) w_(i,j)(v_i × v_j)

#pragma once

#include <numeric>

#include "models/cross_embedding.h"
#include "models/feature_embedding.h"
#include "models/hyperparams.h"
#include "models/model.h"

namespace optinter {

class Poly2Model : public CtrModel {
 public:
  Poly2Model(const EncodedDataset& data, const HyperParams& hp);

  std::string Name() const override { return "Poly2"; }
  float TrainStep(const Batch& batch) override;
  void Predict(const Batch& batch, std::vector<float>* probs) override;
  size_t ParamCount() const override;
  void CollectState(std::vector<Tensor*>* out) override;

 private:
  void Logits(const Batch& batch, std::vector<float>* logits);

  Rng rng_;
  FeatureEmbedding weights_;
  CrossEmbedding cross_weights_;
  DenseParam bias_;
  Adam dense_opt_;
  Tensor features_;
  Tensor cross_features_;
  std::vector<float> logits_;
  std::vector<float> labels_;
  std::vector<float> dlogits_;
};

}  // namespace optinter
