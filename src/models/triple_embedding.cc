#include "models/triple_embedding.h"

#include <cstring>

#include "common/thread_pool.h"
#include "models/backend_resolve.h"
#include "obs/trace.h"

namespace optinter {

TripleEmbedding::TripleEmbedding(const EncodedDataset& data,
                                 std::vector<size_t> triples, size_t dim,
                                 float lr, float l2, Rng* rng,
                                 const EmbeddingBackendConfig& backend)
    : data_(data), triples_(std::move(triples)), dim_(dim) {
  // Metadata-only datasets (streaming: vocab sizes without row payload)
  // are fine here; only the per-batch datasets need actual triple ids.
  CHECK(!data.triple_vocab_sizes.empty())
      << "call BuildTripleCrossFeatures first";
  CHECK_GT(dim, 0u);
  tables_.reserve(triples_.size());
  // Triples carry no frequency metadata; tiered tables use the {1..K}
  // fallback (exact for hashed triple encodings) or explicit policy ids.
  const std::vector<std::vector<int32_t>> no_hot_meta;
  for (size_t t : triples_) {
    CHECK_LT(t, data.num_triples());
    auto table = std::make_unique<EmbeddingTable>(
        "triple_emb/" + std::to_string(t), data.triple_vocab_sizes[t], dim,
        lr, l2,
        ResolveTableBackend(backend, data.triple_vocab_sizes[t], no_hot_meta,
                            t));
    table->Init(rng);
    tables_.push_back(std::move(table));
  }
}

void TripleEmbedding::Forward(const Batch& batch, Tensor* out) {
  // Any compatibly-encoded dataset is accepted (Gather checks layout);
  // it must stay valid through Backward, which re-reads ids from it.
  Gather(batch, out);
  batch_data_ = batch.data;
  batch_rows_.assign(batch.rows, batch.rows + batch.size);
}

void TripleEmbedding::Gather(const Batch& batch, Tensor* out) const {
  OPTINTER_TRACE_SPAN("triple_gather");
  const EncodedDataset& data = *batch.data;
  CHECK(data.has_triples());
  CHECK_EQ(data.num_triples(), data_.num_triples());
  out->Resize({batch.size, output_dim()});
  auto gather = [&](size_t lo, size_t hi) {
    for (size_t k = lo; k < hi; ++k) {
      const size_t r = batch.rows[k];
      float* dst = out->row(k);
      for (size_t t = 0; t < triples_.size(); ++t) {
        tables_[t]->CopyRow(data.triple(r, triples_[t]), dst + t * dim_);
      }
    }
  };
  // Disjoint per-row writes: fan-out is bit-identical to the serial loop.
  if (batch.size * output_dim() >= (1u << 15)) {
    ParallelForChunks(0, batch.size, gather, /*min_chunk=*/64);
  } else {
    gather(0, batch.size);
  }
}

void TripleEmbedding::GatherRow(const EncodedDataset& data, size_t row,
                                float* dst) const {
  for (size_t t = 0; t < triples_.size(); ++t) {
    tables_[t]->CopyRow(data.triple(row, triples_[t]), dst + t * dim_);
  }
}

void TripleEmbedding::Backward(const Tensor& d_out) {
  OPTINTER_TRACE_SPAN("triple_scatter");
  CHECK_EQ(d_out.rows(), batch_rows_.size());
  CHECK_EQ(d_out.cols(), output_dim());
  const size_t rows = batch_rows_.size();
  // Row-bucketed scatter: one bucket per (table, backing-row shard), each
  // scanning rows in ascending order — shard contents match the serial
  // loop bit for bit, and distinct buckets never share a gradient slot.
  // The table routes each id's backing parts to their owning shard.
  auto scatter_bucket = [&](size_t t, size_t shard) {
    EmbeddingTable& table = *tables_[t];
    for (size_t k = 0; k < rows; ++k) {
      const int32_t id = batch_data_->triple(batch_rows_[k], triples_[t]);
      table.AccumulateGradForShard(shard, id, d_out.row(k) + t * dim_);
    }
  };
  const size_t num_buckets = triples_.size() * EmbeddingTable::kGradShards;
  auto run_buckets = [&](size_t lo, size_t hi) {
    for (size_t b = lo; b < hi; ++b) {
      scatter_bucket(b / EmbeddingTable::kGradShards,
                     b % EmbeddingTable::kGradShards);
    }
  };
  if (d_out.size() >= (1u << 15) && num_buckets > 1) {
    ParallelForChunks(0, num_buckets, run_buckets, /*min_chunk=*/1);
  } else {
    run_buckets(0, num_buckets);
  }
}

void TripleEmbedding::Prepare(const Batch& batch, IdDedupScratch* dedup,
                              std::vector<PreparedTable>* tables) const {
  OPTINTER_TRACE_SPAN("triple_prepare");
  // Copies everything downstream phases need; the batch's dataset (which
  // may be a recycled streaming buffer) is not retained.
  const EncodedDataset& data = *batch.data;
  CHECK(data.has_triples());
  CHECK_EQ(data.num_triples(), data_.num_triples());
  tables->resize(triples_.size());
  for (size_t t = 0; t < triples_.size(); ++t) {
    PrepareTableIds(
        *tables_[t], batch.size,
        [&](size_t k) { return data.triple(batch.rows[k], triples_[t]); },
        dedup, &(*tables)[t]);
  }
}

void TripleEmbedding::ForwardPrepared(const std::vector<PreparedTable>& tables,
                                      size_t batch_size, Tensor* out) {
  OPTINTER_TRACE_SPAN("triple_gather");
  CHECK_EQ(tables.size(), triples_.size());
  out->Resize({batch_size, output_dim()});
  auto gather = [&](size_t lo, size_t hi) {
    for (size_t k = lo; k < hi; ++k) {
      float* dst = out->row(k);
      for (size_t t = 0; t < triples_.size(); ++t) {
        tables_[t]->CopyRow(tables[t].ids[k], dst + t * dim_);
      }
    }
  };
  if (batch_size * output_dim() >= (1u << 15)) {
    ParallelForChunks(0, batch_size, gather, /*min_chunk=*/64);
  } else {
    gather(0, batch_size);
  }
  for (size_t t = 0; t < triples_.size(); ++t) {
    tables_[t]->BeginPreparedScatter(tables[t].unique_rows.data(),
                                     tables[t].unique_rows.size());
  }
}

void TripleEmbedding::BackwardPrepared(
    const Tensor& d_out, const std::vector<PreparedTable>& tables) {
  OPTINTER_TRACE_SPAN("triple_scatter");
  CHECK_EQ(tables.size(), triples_.size());
  CHECK_EQ(d_out.cols(), output_dim());
  auto scatter_bucket = [&](size_t t, size_t shard) {
    EmbeddingTable& table = *tables_[t];
    const PreparedTable& pt = tables[t];
    for (const int32_t k : pt.shard_rows[shard]) {
      table.AccumulatePreparedGradPrimary(
          static_cast<size_t>(pt.slots[k]), pt.ids[static_cast<size_t>(k)],
          d_out.row(static_cast<size_t>(k)) + t * dim_);
    }
    if (table.HasSecondary()) {
      for (const int32_t k : pt.shard_rows2[shard]) {
        table.AccumulatePreparedGradSecondary(
            static_cast<size_t>(pt.slots2[k]),
            pt.ids[static_cast<size_t>(k)],
            d_out.row(static_cast<size_t>(k)) + t * dim_);
      }
    }
  };
  const size_t num_buckets = triples_.size() * EmbeddingTable::kGradShards;
  auto run_buckets = [&](size_t lo, size_t hi) {
    for (size_t b = lo; b < hi; ++b) {
      scatter_bucket(b / EmbeddingTable::kGradShards,
                     b % EmbeddingTable::kGradShards);
    }
  };
  if (d_out.size() >= (1u << 15) && num_buckets > 1) {
    ParallelForChunks(0, num_buckets, run_buckets, /*min_chunk=*/1);
  } else {
    run_buckets(0, num_buckets);
  }
}

void TripleEmbedding::StepPrepared(const AdamConfig& config) {
  for (auto& t : tables_) t->SparseAdamStepPrepared(config);
}

void TripleEmbedding::Step(const AdamConfig& config) {
  for (auto& t : tables_) t->SparseAdamStep(config);
}

void TripleEmbedding::ClearGrads() {
  for (auto& t : tables_) t->ClearGrads();
}

size_t TripleEmbedding::ParamCount() const {
  size_t total = 0;
  for (const auto& t : tables_) total += t->ParamCount();
  return total;
}

void TripleEmbedding::CollectState(std::vector<Tensor*>* out) {
  for (auto& t : tables_) out->push_back(&t->mutable_values());
}

}  // namespace optinter
