#include "models/triple_embedding.h"

#include <cstring>

namespace optinter {

TripleEmbedding::TripleEmbedding(const EncodedDataset& data,
                                 std::vector<size_t> triples, size_t dim,
                                 float lr, float l2, Rng* rng)
    : data_(data), triples_(std::move(triples)), dim_(dim) {
  CHECK(data.has_triples()) << "call BuildTripleCrossFeatures first";
  CHECK_GT(dim, 0u);
  tables_.reserve(triples_.size());
  for (size_t t : triples_) {
    CHECK_LT(t, data.num_triples());
    auto table = std::make_unique<EmbeddingTable>(
        "triple_emb/" + std::to_string(t), data.triple_vocab_sizes[t], dim,
        lr, l2);
    table->Init(rng);
    tables_.push_back(std::move(table));
  }
}

void TripleEmbedding::Forward(const Batch& batch, Tensor* out) {
  CHECK(batch.data == &data_);
  out->Resize({batch.size, output_dim()});
  batch_rows_.assign(batch.rows, batch.rows + batch.size);
  for (size_t k = 0; k < batch.size; ++k) {
    const size_t r = batch.rows[k];
    float* dst = out->row(k);
    for (size_t t = 0; t < triples_.size(); ++t) {
      std::memcpy(dst + t * dim_,
                  tables_[t]->Row(data_.triple(r, triples_[t])),
                  dim_ * sizeof(float));
    }
  }
}

void TripleEmbedding::Backward(const Tensor& d_out) {
  CHECK_EQ(d_out.rows(), batch_rows_.size());
  CHECK_EQ(d_out.cols(), output_dim());
  for (size_t k = 0; k < batch_rows_.size(); ++k) {
    const size_t r = batch_rows_[k];
    const float* g = d_out.row(k);
    for (size_t t = 0; t < triples_.size(); ++t) {
      tables_[t]->AccumulateGrad(data_.triple(r, triples_[t]), g + t * dim_);
    }
  }
}

void TripleEmbedding::Step(const AdamConfig& config) {
  for (auto& t : tables_) t->SparseAdamStep(config);
}

void TripleEmbedding::ClearGrads() {
  for (auto& t : tables_) t->ClearGrads();
}

size_t TripleEmbedding::ParamCount() const {
  size_t total = 0;
  for (const auto& t : tables_) total += t->ParamCount();
  return total;
}

void TripleEmbedding::CollectState(std::vector<Tensor*>* out) {
  for (auto& t : tables_) out->push_back(&t->mutable_values());
}

}  // namespace optinter
