// Deep baselines (paper Table III / §III-A3), all instances of the
// OptInter framework with a fixed feature-interaction method:
//
//   FNN    (Zhang 2016):  naïve — MLP over original embeddings only.
//   IPNN   (Qu 2016):     factorized, inner product ⟨e_i, e_j⟩ per pair.
//   OPNN   (Qu 2016):     factorized, kernel product e_i K_(i,j) e_jᵀ.
//   DeepFM (Guo 2017):    factorized, FM logit + MLP logit, shared E^o.
//   PIN    (Qu 2019):     factorized, per-pair sub-network
//                         net([e_i, e_j, e_i ⊙ e_j]).
//
// Pairs range over all embedded fields (categorical + continuous).

#pragma once

#include <memory>

#include "models/feature_embedding.h"
#include "models/hyperparams.h"
#include "models/model.h"
#include "nn/mlp.h"

namespace optinter {

enum class DeepVariant { kFnn, kIpnn, kOpnn, kDeepFm, kPin };

/// Output width of each PIN sub-network (paper: sub-net=[40,5]; scaled).
inline constexpr size_t kPinSubnetOut = 4;
/// Hidden width of each PIN sub-network.
inline constexpr size_t kPinSubnetHidden = 16;

class DeepBaselineModel : public CtrModel {
 public:
  DeepBaselineModel(const EncodedDataset& data, const HyperParams& hp,
                    DeepVariant variant);

  std::string Name() const override;
  float TrainStep(const Batch& batch) override;
  void Predict(const Batch& batch, std::vector<float>* probs) override;
  size_t ParamCount() const override;
  void CollectState(std::vector<Tensor*>* out) override;

 private:
  void Forward(const Batch& batch);

  DeepVariant variant_;
  size_t dim_;
  size_t num_fields_ = 0;
  size_t num_pairs_ = 0;
  Rng rng_;
  FeatureEmbedding emb_;
  std::unique_ptr<FeatureEmbedding> linear_;  // DeepFM first-order part
  DenseParam fm_bias_;                        // DeepFM
  DenseParam kernels_;                        // OPNN: [P × d·d]
  std::vector<std::unique_ptr<Mlp>> subnets_; // PIN: one per pair
  std::unique_ptr<Mlp> mlp_;
  Adam dense_opt_;

  std::vector<std::pair<size_t, size_t>> field_pairs_;

  // Forward caches.
  Tensor emb_out_;
  Tensor linear_out_;
  Tensor z_;        // MLP input
  Tensor mlp_out_;  // [B × 1]
  std::vector<Tensor> subnet_in_;
  std::vector<Tensor> subnet_out_;
  std::vector<float> logits_;
  std::vector<float> labels_;
  std::vector<float> dlogits_;
};

}  // namespace optinter
