// Weight-independent per-batch preparation for the phase-split TrainStep.
//
// PrepareBatch (phase 1 of the pipelined training executor, DESIGN.md) does
// everything a step needs that depends only on the dataset and the batch's
// row ids — label gather, per-table cross-product id lookup, and per-table
// unique-id dedup with slot assignment — so it can run on the pool for
// batch t+1 while batch t is still in ForwardBackward. The dedup output
// feeds EmbeddingTable's prepared scatter: the backward pass writes into a
// flat slot-addressed buffer (no hashing, no per-new-id allocation) and the
// sparse optimizer walks (unique_rows, slots) directly.
//
// All buffers retain capacity across steps: a PreparedBatch reused for
// same-shaped batches performs zero heap allocations after warmup.

#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "data/batch.h"
#include "nn/embedding.h"

namespace optinter {

/// Reusable open-addressing id→slot map (linear probing, power-of-two
/// capacity, generation stamps instead of per-round clearing). One scratch
/// instance serves every table of a PreparedBatch sequentially.
class IdDedupScratch {
 public:
  /// Starts a new dedup round expecting up to `expected` inserts. Grows
  /// the table to keep load factor <= 0.5; never shrinks.
  void Begin(size_t expected) {
    size_t want = 16;
    const size_t target = expected < 8 ? 16 : expected * 2;
    while (want < target) want <<= 1;
    if (want > keys_.size()) {
      keys_.assign(want, 0);
      slot_of_.assign(want, 0);
      stamps_.assign(want, 0);
      round_ = 0;
    }
    mask_ = keys_.size() - 1;
    if (++round_ == 0) {
      // uint32 wraparound: stale stamps could collide with a reused round
      // value, so wipe once every ~4 billion rounds.
      std::fill(stamps_.begin(), stamps_.end(), 0u);
      round_ = 1;
    }
  }

  /// Slot of `id` this round; assigns the next slot (appending to
  /// `unique`) on first sight.
  int32_t SlotFor(int32_t id, std::vector<int32_t>* unique) {
    size_t h = (static_cast<uint32_t>(id) * 2654435761u) & mask_;
    for (;;) {
      if (stamps_[h] != round_) {
        stamps_[h] = round_;
        keys_[h] = id;
        const int32_t slot = static_cast<int32_t>(unique->size());
        slot_of_[h] = slot;
        unique->push_back(id);
        return slot;
      }
      if (keys_[h] == id) return slot_of_[h];
      h = (h + 1) & mask_;
    }
  }

  size_t CapacityBytes() const {
    return keys_.capacity() * sizeof(int32_t) +
           slot_of_.capacity() * sizeof(int32_t) +
           stamps_.capacity() * sizeof(uint32_t);
  }

 private:
  std::vector<int32_t> keys_;
  std::vector<int32_t> slot_of_;
  std::vector<uint32_t> stamps_;
  uint32_t round_ = 0;
  size_t mask_ = 0;
};

/// Per-(batch, embedding table) id preparation: the raw per-row logical
/// ids, each row's dedup slot, the unique BACKING-row list (slot order),
/// and the batch rows bucketed by gradient shard. Dedup runs in backing
/// space — the table's logical→backing mapping is static configuration,
/// never weights, so the weight-independent Prepare contract holds — and
/// shards are keyed on backing rows, so logical ids that collide on a
/// backing row (QR remainder reuse, tiered bucket sharing) share one slot
/// and accumulate deterministically. QR tables contribute two parts per
/// row: the primary (quotient) part through slots/shard_rows and the
/// secondary (remainder) part through slots2/shard_rows2; Q- and R-space
/// backing rows are disjoint, so the two streams never alias a slot.
/// Shard buckets hold rows in ascending order, so a prepared scatter that
/// walks one bucket accumulates every backing row's gradient in the same
/// order as the serial row loop — bit for bit.
struct PreparedTable {
  std::vector<int32_t> ids;          // [batch_size] logical id of row k
  std::vector<int32_t> slots;        // [batch_size] primary-part slot
  std::vector<int32_t> slots2;       // [batch_size] secondary slot (QR only)
  std::vector<int32_t> unique_rows;  // [num_unique] backing row of each slot
  std::array<std::vector<int32_t>, EmbeddingTable::kGradShards> shard_rows;
  std::array<std::vector<int32_t>, EmbeddingTable::kGradShards> shard_rows2;

  void Clear() {
    ids.clear();
    slots.clear();
    slots2.clear();
    unique_rows.clear();
    for (auto& v : shard_rows) v.clear();
    for (auto& v : shard_rows2) v.clear();
  }

  size_t CapacityBytes() const {
    size_t total = (ids.capacity() + slots.capacity() + slots2.capacity() +
                    unique_rows.capacity()) *
                   sizeof(int32_t);
    for (const auto& v : shard_rows) total += v.capacity() * sizeof(int32_t);
    for (const auto& v : shard_rows2) {
      total += v.capacity() * sizeof(int32_t);
    }
    return total;
  }
};

/// Fills `pt` for `table` from `id_of(k)` (the logical id of batch row k).
template <typename IdFn>
void PrepareTableIds(const EmbeddingTable& table, size_t batch_size,
                     IdFn&& id_of, IdDedupScratch* dedup, PreparedTable* pt) {
  pt->Clear();
  const bool two_part = table.HasSecondary();
  dedup->Begin(two_part ? 2 * batch_size : batch_size);
  for (size_t k = 0; k < batch_size; ++k) {
    const int32_t id = id_of(k);
    table.CheckId(id, "Prepare");
    pt->ids.push_back(id);
    const int32_t b1 = table.PrimaryRowOf(id);
    pt->slots.push_back(dedup->SlotFor(b1, &pt->unique_rows));
    pt->shard_rows[EmbeddingTable::ShardOf(b1)].push_back(
        static_cast<int32_t>(k));
    if (two_part) {
      const int32_t b2 = table.SecondaryRowOf(id);
      pt->slots2.push_back(dedup->SlotFor(b2, &pt->unique_rows));
      pt->shard_rows2[EmbeddingTable::ShardOf(b2)].push_back(
          static_cast<int32_t>(k));
    }
  }
}

/// Everything PrepareBatch produces for one batch. Owned by a
/// StepWorkspace in the pipelined executor (or by the model for plain
/// serial TrainStep calls) and reused across steps.
struct PreparedBatch {
  const EncodedDataset* data = nullptr;
  size_t size = 0;
  std::vector<size_t> rows;    // copy of the batch's row indices
  std::vector<float> labels;   // [size]
  std::vector<PreparedTable> cat;     // per categorical field
  std::vector<float> cont;            // [size × num_cont] feature values
  std::vector<PreparedTable> cross;   // per embedded pair
  std::vector<PreparedTable> triple;  // per embedded triple
  IdDedupScratch dedup;

  /// Copies the batch's identity (rows + labels). The batch's row pointer
  /// may be invalidated afterwards (e.g. by Batcher::StartEpoch) — the
  /// prepared copy is self-contained.
  void BeginFill(const Batch& batch);

  /// Batch view over the copied rows (for code that still takes a Batch).
  Batch AsBatch() const {
    Batch b;
    b.data = data;
    b.rows = rows.data();
    b.size = size;
    return b;
  }

  /// Total heap capacity held (workspace gauge; growth here after warmup
  /// signals an allocation regression).
  size_t CapacityBytes() const;
};

}  // namespace optinter
