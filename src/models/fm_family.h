// Shallow factorized baselines (paper Table III):
//
//   FM    (Rendle 2010):        logit += Σ_(i<j) ⟨e_i, e_j⟩
//   FFM   (Juan et al. 2016):   logit += Σ_(i<j) ⟨e_(i,f_j), e_(j,f_i)⟩
//                               (field-aware: one latent vector per
//                               opponent field, stored as an F·k-wide
//                               embedding sliced per pair)
//   FwFM  (Pan et al. 2018):    logit += Σ_(i<j) ⟨e_i, e_j⟩ · r_(i,j)
//   FmFM  (Sun et al. 2021):    logit += Σ_(i<j) e_i W_(i,j) e_jᵀ
//
// each on top of the LR first-order part. Pairs range over all embedded
// fields (categorical + continuous), matching the original formulations
// which treat every feature symmetrically.

#pragma once

#include "models/feature_embedding.h"
#include "models/hyperparams.h"
#include "models/model.h"
#include "nn/param.h"

namespace optinter {

/// Which second-order form the model uses.
enum class FmVariant { kFm, kFfm, kFwFm, kFmFm };

/// FM / FwFM / FmFM with a shallow (sigmoid) classifier.
class FmFamilyModel : public CtrModel {
 public:
  FmFamilyModel(const EncodedDataset& data, const HyperParams& hp,
                FmVariant variant);

  std::string Name() const override;
  float TrainStep(const Batch& batch) override;
  void Predict(const Batch& batch, std::vector<float>* probs) override;
  size_t ParamCount() const override;
  void CollectState(std::vector<Tensor*>* out) override;

 private:
  /// Forward pass; fills logits_ and (for training) interaction caches.
  void Forward(const Batch& batch);

  FmVariant variant_;
  size_t dim_;
  size_t num_fields_;
  size_t num_pairs_;
  Rng rng_;
  FeatureEmbedding linear_;  // dim-1 first-order weights
  FeatureEmbedding latent_;  // dim-s1 latent vectors
  DenseParam bias_;
  DenseParam pair_weights_;   // FwFM: [P]
  DenseParam pair_matrices_;  // FmFM: [P × d × d] flattened
  Adam dense_opt_;

  // Caches.
  Tensor linear_out_;
  Tensor latent_out_;
  std::vector<float> logits_;
  std::vector<float> labels_;
  std::vector<float> dlogits_;
  std::vector<std::pair<size_t, size_t>> field_pairs_;
};

}  // namespace optinter
