#include "models/lr.h"

#include "nn/layers.h"
#include "tensor/kernels.h"

namespace optinter {

LrModel::LrModel(const EncodedDataset& data, const HyperParams& hp)
    : rng_(hp.seed),
      weights_(data, /*dim=*/1, hp.lr_orig, hp.l2_orig, &rng_) {
  bias_.name = "lr/bias";
  bias_.Resize({1});
  bias_.lr = hp.lr_orig;
  dense_opt_.AddParam(&bias_);
}

void LrModel::Logits(const Batch& batch, Tensor* features,
                     std::vector<float>* logits) {
  weights_.Forward(batch, features);
  logits->resize(batch.size);
  for (size_t k = 0; k < batch.size; ++k) {
    (*logits)[k] = Sum(features->cols(), features->row(k)) + bias_.value[0];
  }
}

float LrModel::TrainStep(const Batch& batch) {
  Logits(batch, &features_, &logits_);
  labels_.resize(batch.size);
  dlogits_.resize(batch.size);
  for (size_t k = 0; k < batch.size; ++k) labels_[k] = batch.label(k);
  const float loss = BceWithLogitsLoss(logits_.data(), labels_.data(),
                                       batch.size, dlogits_.data());
  // d(logit)/d(weight column) = 1 for every embedded column.
  Tensor dfeat({batch.size, features_.cols()});
  for (size_t k = 0; k < batch.size; ++k) {
    float* g = dfeat.row(k);
    for (size_t c = 0; c < features_.cols(); ++c) g[c] = dlogits_[k];
    bias_.grad[0] += dlogits_[k];
  }
  weights_.Backward(dfeat);
  weights_.Step();
  dense_opt_.Step();
  dense_opt_.ZeroGrad();
  return loss;
}

void LrModel::Predict(const Batch& batch, std::vector<float>* probs) {
  Logits(batch, &features_, &logits_);
  probs->resize(batch.size);
  SigmoidForward(logits_.data(), batch.size, probs->data());
}

void LrModel::CollectState(std::vector<Tensor*>* out) {
  weights_.CollectState(out);
  for (DenseParam* p : dense_opt_.params()) out->push_back(&p->value);
}

size_t LrModel::ParamCount() const {
  return weights_.ParamCount() + bias_.size();
}

}  // namespace optinter
