// Cross-product-feature embedding layer E^m (paper §II-B2, Eq. 4 path).
//
// One embedding table per categorical field pair, keyed by the encoded
// cross-product transformed feature id. This is the memorized method's
// parameter store and dominates model size (paper Table V: OptInter-M is
// 10–20× larger than factorized baselines).
//
// Supports embedding a subset of pairs, which is how the re-train stage
// instantiates tables only for pairs the search selected to memorize.

#pragma once

#include <memory>
#include <vector>

#include "data/batch.h"
#include "models/prepared_batch.h"
#include "nn/embedding.h"
#include "tensor/tensor.h"

namespace optinter {

/// Batched cross-product embedding lookup over a chosen set of pairs.
class CrossEmbedding {
 public:
  /// Builds tables for each pair index in `pairs` (canonical pair order
  /// indices). `dim` = s2; lr/l2 = paper lr_c / l2_c. The dataset must
  /// already have cross features built. `backend` is the per-table storage
  /// policy (resolved per pair vocab, see backend_resolve.h) — cross
  /// tables dominate model size, so this is where QR/tiered compression
  /// pays off.
  CrossEmbedding(const EncodedDataset& data, std::vector<size_t> pairs,
                 size_t dim, float lr, float l2, Rng* rng,
                 const EmbeddingBackendConfig& backend = {});

  /// out: [B × (pairs.size() * dim)], pair blocks in the order given at
  /// construction. Caches the batch for Backward.
  void Forward(const Batch& batch, Tensor* out);

  /// Inference-only lookup: same output as Forward but touches no mutable
  /// state, so concurrent calls on different batches are safe. The batch
  /// may reference any dataset with the same pair layout as the
  /// construction dataset (serving-arena batches qualify).
  void Gather(const Batch& batch, Tensor* out) const;

  /// Embedding row for pair-block `t` of dataset row `row`, written into
  /// `dst` (length dim()) — the fused batch-1 serving path reads cross
  /// blocks through this. A copy API (not a pointer) because QR tables
  /// compose their rows on the fly.
  void CopyRow(const EncodedDataset& data, size_t row, size_t t,
               float* dst) const;

  /// Scatters d_out into table gradients.
  void Backward(const Tensor& d_out);

  // Phase-split path (see prepared_batch.h / DESIGN.md): id prep reads
  // only the dataset, ForwardPrepared arms the slot-addressed scatter,
  // BackwardPrepared/StepPrepared mirror Backward/Step bit for bit.
  void Prepare(const Batch& batch, IdDedupScratch* dedup,
               std::vector<PreparedTable>* tables) const;
  void ForwardPrepared(const std::vector<PreparedTable>& tables,
                       size_t batch_size, Tensor* out);
  void BackwardPrepared(const Tensor& d_out,
                        const std::vector<PreparedTable>& tables);
  void StepPrepared(const AdamConfig& config = {});

  void Step(const AdamConfig& config = {});
  void ClearGrads();

  size_t ParamCount() const;

  /// Appends pointers to each table's value tensor (checkpointing).
  void CollectState(std::vector<Tensor*>* out);

  size_t dim() const { return dim_; }
  size_t num_pairs() const { return pairs_.size(); }
  size_t output_dim() const { return pairs_.size() * dim_; }
  const std::vector<size_t>& pairs() const { return pairs_; }

  EmbeddingTable& table(size_t k) { return *tables_[k]; }
  const EmbeddingTable& table(size_t k) const { return *tables_[k]; }

 private:
  const EncodedDataset& data_;
  std::vector<size_t> pairs_;
  size_t dim_;
  std::vector<std::unique_ptr<EmbeddingTable>> tables_;
  // Cached batch (dataset + rows) for the backward scatter; the dataset a
  // Forward batch references must stay valid until Backward runs.
  const EncodedDataset* batch_data_ = nullptr;
  std::vector<size_t> batch_rows_;
};

}  // namespace optinter
