// The OptInter two-stage learning pipeline (paper §II-C):
// search stage (Algorithm 1) → architecture freeze (Eq. 19) →
// re-train from scratch (Algorithm 2). Also the ablation machinery:
// bi-level search, random architectures, no-retrain evaluation, and the
// AutoFIS search/re-train pipeline.

#pragma once

#include "core/search_model.h"
#include "models/hyperparams.h"
#include "models/interaction.h"
#include "obs/search_dynamics.h"
#include "train/trainer.h"

namespace optinter {

/// Options for the search stage.
struct SearchOptions {
  size_t search_epochs = 2;
  UpdateMode mode = UpdateMode::kJoint;
  /// Anneal the Gumbel-softmax temperature linearly across epochs from
  /// HyperParams::gumbel_temp_start to gumbel_temp_end.
  bool anneal_temperature = true;
  bool verbose = false;
  /// Run joint-mode search epochs through the pipelined executor
  /// (bit-identical to the serial loop; see src/train/pipeline_executor.h).
  /// Bi-level mode always runs serially: every train step interleaves an
  /// ArchStep on a validation batch, so there is no prepare to overlap.
  bool pipeline = true;
  /// Sample the argmax architecture every this many train steps and record
  /// per-pair flips between consecutive samples in
  /// SearchResult::dynamics.flip_events (and as timeline instant events
  /// when OPTINTER_OBS_TIMELINE is set). 0 = off (default): the per-epoch
  /// snapshots alone cannot show oscillation inside an epoch. Samples run
  /// at step quiescent points, so they never perturb training math.
  size_t alpha_sample_every = 0;
};

/// Outcome of the search stage.
struct SearchResult {
  Architecture arch;
  /// Metrics of the (mixed-weights) search model itself — what you get if
  /// you skip re-training (Table IX "w.o." column).
  EvalMetrics search_val;
  EvalMetrics search_test;
  double seconds = 0.0;
  /// Per-epoch wall-clock / throughput of the search loop (train fields
  /// cover the joint Θ+α steps; eval fields the final search-model evals).
  TrainTelemetry telemetry;
  /// Per-epoch α dynamics: entropy of softmax(α/τ) per pair, argmax-method
  /// histogram, argmax flips vs the previous epoch, temperature.
  obs::SearchDynamics dynamics;
};

/// Runs the search stage only (joint or bi-level).
SearchResult RunSearchStage(const EncodedDataset& data, const Splits& splits,
                            const HyperParams& hp,
                            const SearchOptions& options);

/// α-dynamics snapshot for one epoch: per-pair entropy of softmax(α/τ),
/// the argmax-method histogram over `arch`, and flips vs `prev_arch`
/// (pass an empty prev_arch for the first epoch). `arch` must be the
/// model's current ExtractArchitecture(). Used by RunSearchStage per
/// epoch; exposed for drivers that run their own search loop.
obs::SearchEpochDynamics SnapshotSearchDynamics(const SearchModel& model,
                                                size_t epoch,
                                                const Architecture& prev_arch,
                                                const Architecture& arch);

/// Full OptInter run: search + re-train from scratch.
struct OptInterResult {
  SearchResult search;
  TrainSummary retrain;
  size_t param_count = 0;
};
OptInterResult RunOptInter(const EncodedDataset& data, const Splits& splits,
                           const HyperParams& hp,
                           const SearchOptions& search_options,
                           const TrainOptions& train_options);

/// Uniformly random per-pair method assignment (Table VIII "Random").
Architecture RandomArchitecture(size_t num_pairs, Rng* rng);

/// Trains a FixedArchModel with the given architecture; returns the
/// summary and parameter count.
struct FixedArchRun {
  TrainSummary summary;
  size_t param_count = 0;
};
FixedArchRun TrainFixedArch(const EncodedDataset& data, const Splits& splits,
                            const Architecture& arch, const HyperParams& hp,
                            const TrainOptions& options,
                            const std::string& name = "OptInter");

/// Ranks the dataset's built third-order triples by the *interaction
/// lift* of their MI over the best constituent pair, and returns the
/// indices of the top `k` — a simple MI-guided selector for the paper's
/// higher-order extension.
std::vector<size_t> SelectTopTriplesByMiLift(const EncodedDataset& data,
                                             const std::vector<size_t>& rows,
                                             size_t k);

/// AutoFIS pipeline: GRDA-gated search, then re-train the selected
/// {factorize, naïve} architecture.
struct AutoFisResult {
  Architecture arch;
  TrainSummary retrain;
  size_t param_count = 0;
};
AutoFisResult RunAutoFis(const EncodedDataset& data, const Splits& splits,
                         const HyperParams& hp,
                         const TrainOptions& train_options);

}  // namespace optinter
