#include "core/zoo.h"

#include "core/fixed_arch_model.h"
#include "models/deep_models.h"
#include "models/fm_family.h"
#include "models/lr.h"
#include "models/poly2.h"

namespace optinter {

Result<std::unique_ptr<CtrModel>> CreateBaseline(const std::string& name,
                                                 const EncodedDataset& data,
                                                 const HyperParams& hp) {
  if (BaselineNeedsCross(name) && !data.has_cross()) {
    return Status::FailedPrecondition(
        name + " requires cross-product features; call BuildCrossFeatures");
  }
  // Shallow models take larger steps (the paper's Table IV also trains
  // LR/FM with their own learning rates): with no MLP to adapt, the raw
  // weights need to travel further in the same epoch budget.
  HyperParams shallow = hp;
  shallow.lr_orig = 1e-2f;
  shallow.lr_cross = 1e-2f;

  std::unique_ptr<CtrModel> model;
  if (name == "LR") {
    model = std::make_unique<LrModel>(data, shallow);
  } else if (name == "Poly2") {
    model = std::make_unique<Poly2Model>(data, shallow);
  } else if (name == "FM") {
    model = std::make_unique<FmFamilyModel>(data, shallow, FmVariant::kFm);
  } else if (name == "FFM") {
    model = std::make_unique<FmFamilyModel>(data, shallow, FmVariant::kFfm);
  } else if (name == "FwFM") {
    model = std::make_unique<FmFamilyModel>(data, shallow, FmVariant::kFwFm);
  } else if (name == "FmFM") {
    model = std::make_unique<FmFamilyModel>(data, shallow, FmVariant::kFmFm);
  } else if (name == "FNN") {
    model = FixedArchModel::MakeFnn(data, hp);
  } else if (name == "IPNN") {
    model = std::make_unique<DeepBaselineModel>(data, hp,
                                                DeepVariant::kIpnn);
  } else if (name == "OPNN") {
    model = std::make_unique<DeepBaselineModel>(data, hp,
                                                DeepVariant::kOpnn);
  } else if (name == "DeepFM") {
    model = std::make_unique<DeepBaselineModel>(data, hp,
                                                DeepVariant::kDeepFm);
  } else if (name == "PIN") {
    model = std::make_unique<DeepBaselineModel>(data, hp, DeepVariant::kPin);
  } else if (name == "OptInter-F") {
    model = FixedArchModel::MakeOptInterF(data, hp);
  } else if (name == "OptInter-M") {
    model = FixedArchModel::MakeOptInterM(data, hp);
  } else {
    return Status::NotFound("unknown baseline '" + name + "'");
  }
  return model;
}

std::vector<std::string> TableVBaselineNames() {
  return {"LR",   "FNN",   "FM",         "IPNN",       "DeepFM", "PIN",
          "OptInter-F", "Poly2", "OptInter-M"};
}

bool BaselineNeedsCross(const std::string& name) {
  return name == "Poly2" || name == "OptInter-M";
}

}  // namespace optinter
