// Model zoo: construct any fixed-architecture model from the paper's
// tables by name. Search-based methods (AutoFIS, OptInter) have their own
// pipelines in pipeline.h because they are two-stage.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "models/hyperparams.h"
#include "models/model.h"

namespace optinter {

/// Creates a baseline by table name. Recognized names: "LR", "Poly2",
/// "FM", "FFM", "FwFM", "FmFM", "FNN", "IPNN", "OPNN", "DeepFM", "PIN",
/// "OptInter-F", "OptInter-M". The dataset must have cross features built
/// for Poly2 / OptInter-M.
Result<std::unique_ptr<CtrModel>> CreateBaseline(const std::string& name,
                                                 const EncodedDataset& data,
                                                 const HyperParams& hp);

/// Names of the Table V baselines, in the paper's row order.
std::vector<std::string> TableVBaselineNames();

/// True when the named model requires cross-product features.
bool BaselineNeedsCross(const std::string& name);

}  // namespace optinter
