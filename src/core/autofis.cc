#include "core/autofis.h"

#include <cstring>

#include "nn/layers.h"
#include "tensor/kernels.h"

namespace optinter {

AutoFisSearchModel::AutoFisSearchModel(const EncodedDataset& data,
                                       const HyperParams& hp)
    : data_(data),
      s1_(hp.embed_dim),
      rng_(hp.seed),
      emb_(data, hp.embed_dim, hp.lr_orig, hp.l2_orig, &rng_,
           hp.orig_backend),
      gate_opt_(hp.grda) {
  cat_pairs_ = EnumeratePairs(data.num_categorical());
  gates_.name = "autofis/gates";
  gates_.Resize({data.num_pairs()});
  // All interactions start switched on, small enough that the GRDA
  // threshold can overtake unsupported gates within our training budget.
  gates_.value.Fill(0.1f);
  gates_.lr = hp.lr_gate;
  gate_opt_.AddParam(&gates_);

  MlpConfig cfg;
  cfg.hidden = hp.mlp_hidden;
  cfg.out_dim = 1;
  cfg.layer_norm = hp.layer_norm;
  cfg.lr = hp.lr_orig;
  cfg.l2 = hp.l2_orig;
  mlp_ = std::make_unique<Mlp>(
      "mlp", emb_.output_dim() + data.num_pairs() * s1_, cfg, &rng_);
  mlp_->RegisterParams(&theta_opt_);
}

void AutoFisSearchModel::Forward(const Batch& batch) {
  emb_.Forward(batch, &emb_out_);
  const size_t b = batch.size;
  const size_t emb_cols = emb_out_.cols();
  const size_t num_pairs = data_.num_pairs();
  z_.Resize({b, emb_cols + num_pairs * s1_});
  const float* g = gates_.value.data();
  for (size_t k = 0; k < b; ++k) {
    float* zr = z_.row(k);
    std::memcpy(zr, emb_out_.row(k), emb_cols * sizeof(float));
    const float* e = emb_out_.row(k);
    for (size_t p = 0; p < num_pairs; ++p) {
      const auto [i, j] = cat_pairs_[p];
      const float* ei = e + i * s1_;
      const float* ej = e + j * s1_;
      float* block = zr + emb_cols + p * s1_;
      for (size_t t = 0; t < s1_; ++t) block[t] = g[p] * ei[t] * ej[t];
    }
  }
  mlp_->Forward(z_, &mlp_out_);
  logits_.resize(b);
  for (size_t k = 0; k < b; ++k) logits_[k] = mlp_out_.at(k, 0);
}

float AutoFisSearchModel::TrainStep(const Batch& batch) {
  Forward(batch);
  const size_t b = batch.size;
  labels_.resize(b);
  dlogits_.resize(b);
  for (size_t k = 0; k < b; ++k) labels_[k] = batch.label(k);
  const float loss = BceWithLogitsLoss(logits_.data(), labels_.data(), b,
                                       dlogits_.data());

  Tensor dmlp_out({b, 1});
  for (size_t k = 0; k < b; ++k) dmlp_out.at(k, 0) = dlogits_[k];
  Tensor dz;
  mlp_->Backward(dmlp_out, &dz);

  const size_t emb_cols = emb_out_.cols();
  const size_t num_pairs = data_.num_pairs();
  Tensor demb({b, emb_cols});
  const float* g = gates_.value.data();
  float* dg = gates_.grad.data();
  for (size_t k = 0; k < b; ++k) {
    const float* dzr = dz.row(k);
    std::memcpy(demb.row(k), dzr, emb_cols * sizeof(float));
    const float* e = emb_out_.row(k);
    float* de = demb.row(k);
    for (size_t p = 0; p < num_pairs; ++p) {
      const auto [i, j] = cat_pairs_[p];
      const float* ei = e + i * s1_;
      const float* ej = e + j * s1_;
      float* dei = de + i * s1_;
      float* dej = de + j * s1_;
      const float* dblock = dzr + emb_cols + p * s1_;
      double dgp = 0.0;
      for (size_t t = 0; t < s1_; ++t) {
        const float had = ei[t] * ej[t];
        dgp += static_cast<double>(dblock[t]) * had;
        dei[t] += g[p] * dblock[t] * ej[t];
        dej[t] += g[p] * dblock[t] * ei[t];
      }
      dg[p] += static_cast<float>(dgp);
    }
  }
  emb_.Backward(demb);
  emb_.Step();
  theta_opt_.Step();
  theta_opt_.ZeroGrad();
  gate_opt_.Step();
  gate_opt_.ZeroGrad();
  return loss;
}

void AutoFisSearchModel::Predict(const Batch& batch,
                                 std::vector<float>* probs) {
  Forward(batch);
  probs->resize(batch.size);
  SigmoidForward(logits_.data(), batch.size, probs->data());
}

void AutoFisSearchModel::CollectState(std::vector<Tensor*>* out) {
  emb_.CollectState(out);
  for (DenseParam* p : theta_opt_.params()) out->push_back(&p->value);
  out->push_back(&gates_.value);
}

size_t AutoFisSearchModel::ParamCount() const {
  return emb_.ParamCount() + mlp_->ParamCount() + gates_.size();
}

Architecture AutoFisSearchModel::ExtractArchitecture() const {
  Architecture arch(data_.num_pairs(), InterMethod::kNaive);
  for (size_t p = 0; p < data_.num_pairs(); ++p) {
    if (gates_.value[p] != 0.0f) arch[p] = InterMethod::kFactorize;
  }
  return arch;
}

}  // namespace optinter
