// Multi-operation search space (paper §II-C1): "Our framework can be
// extended easily to taking multiple operations into account as
// factorized methods."
//
// Where SearchModel relaxes over exactly {memorize, Hadamard, naïve},
// MultiOpSearchModel relaxes over {memorize} ∪ F ∪ {naïve} for a
// configurable set F of factorization functions — each pair can end up
// memorized, factorized *with its own operator*, or dropped. The
// mechanics are the same Gumbel-softmax / joint-update machinery
// (Eq. 16-18), with K = |F| + 2 candidates per pair.

#pragma once

#include <memory>

#include "models/cross_embedding.h"
#include "models/feature_embedding.h"
#include "models/hyperparams.h"
#include "models/interaction.h"
#include "models/model.h"
#include "nn/mlp.h"

namespace optinter {

/// A searched multi-operation architecture: the method per pair plus,
/// for factorized pairs, the chosen operator.
struct MultiOpArchitecture {
  Architecture methods;
  /// Valid where methods[p] == kFactorize; kHadamard elsewhere.
  std::vector<FactorizeFn> fns;
};

/// Gumbel-softmax search over {memorize} ∪ fns ∪ {naïve} per pair.
class MultiOpSearchModel : public CtrModel {
 public:
  MultiOpSearchModel(const EncodedDataset& data, const HyperParams& hp,
                     std::vector<FactorizeFn> fns = {
                         FactorizeFn::kHadamard,
                         FactorizeFn::kInnerProduct});

  std::string Name() const override { return "OptInter-multiop-search"; }
  float TrainStep(const Batch& batch) override;
  void Predict(const Batch& batch, std::vector<float>* probs) override;
  size_t ParamCount() const override;
  void CollectState(std::vector<Tensor*>* out) override;

  void SetTemperature(float tau) {
    CHECK_GT(tau, 0.0f);
    tau_ = tau;
  }

  /// Argmax selection per pair.
  MultiOpArchitecture ExtractArchitecture() const;

  size_t num_candidates() const { return fns_.size() + 2; }

 private:
  void SampleProbs(std::vector<float>* probs);
  void ForwardWithProbs(const Batch& batch, const std::vector<float>& probs);

  const EncodedDataset& data_;
  std::vector<FactorizeFn> fns_;
  size_t s1_;
  size_t s2_;
  size_t db_;  // max candidate width
  float tau_ = 1.0f;
  Rng rng_;
  FeatureEmbedding emb_;
  std::unique_ptr<CrossEmbedding> cross_emb_;
  std::unique_ptr<Mlp> mlp_;
  DenseParam alpha_;  // [P × K], order: memorize, fns..., naive
  Adam theta_opt_;
  Adam arch_opt_;

  std::vector<std::pair<size_t, size_t>> cat_pairs_;

  Tensor emb_out_;
  Tensor cross_out_;
  Tensor z_;
  Tensor mlp_out_;
  std::vector<float> probs_cache_;
  std::vector<float> scratch_;
  std::vector<float> logits_;
  std::vector<float> labels_;
  std::vector<float> dlogits_;
};

}  // namespace optinter
