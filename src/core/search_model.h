// OptInter search-stage model (paper §II-C, Algorithm 1).
//
// Every categorical pair owns architecture logits a_(i,j) ∈ R³ over
// {memorize, factorize, naïve}. During training the discrete choice is
// relaxed with the Gumbel-softmax trick (Eq. 16–17):
//
//   p_k = softmax_k( (a_k + g_k) / τ ),  g_k ~ Gumbel(0,1) i.i.d.
//
// and the combination block outputs the p-weighted sum of the three
// candidate embeddings (Eq. 18), zero-padded to a common width
// d_b = max(s1, s2) so the sum is well-typed (the naïve candidate is the
// zero vector, matching the paper's e^n).
//
// Model parameters Θ and architecture parameters α are optimized
// *jointly* by default (the paper's choice); the bi-level alternative
// (DARTS-style alternation, §III-E ablation) is supported via
// ArchStep() + UpdateMode::kBilevel.

#pragma once

#include <array>
#include <memory>

#include "models/cross_embedding.h"
#include "models/feature_embedding.h"
#include "models/hyperparams.h"
#include "models/interaction.h"
#include "models/model.h"
#include "nn/mlp.h"

namespace optinter {

/// How Θ and α are updated during search.
enum class UpdateMode {
  /// One gradient step updates both Θ and α (paper Algorithm 1).
  kJoint,
  /// TrainStep updates Θ only; ArchStep (on validation batches) updates α
  /// only — the bi-level baseline of the §III-E ablation.
  kBilevel,
};

/// The differentiable search-stage model.
class SearchModel : public CtrModel {
 public:
  SearchModel(const EncodedDataset& data, const HyperParams& hp,
              UpdateMode mode = UpdateMode::kJoint);

  std::string Name() const override {
    return mode_ == UpdateMode::kJoint ? "OptInter-search"
                                       : "OptInter-search-bilevel";
  }

  /// One step on a training batch. Joint mode updates Θ and α; bi-level
  /// mode updates Θ only. Implemented as exactly PrepareBatch +
  /// ForwardBackward + ApplyGrads, so the serial loop and the pipelined
  /// executor produce bit-identical training (including the Gumbel noise
  /// stream, which is consumed inside ForwardBackward in step order).
  float TrainStep(const Batch& batch) override;

  bool SupportsPhasedTrainStep() const override { return true; }
  void PrepareBatch(const Batch& batch, PreparedBatch* prep) const override;
  float ForwardBackward(const PreparedBatch& prep) override;
  void ApplyGrads() override;

  /// Bi-level only: one α-update step (typically on a validation batch).
  float ArchStep(const Batch& batch);

  /// Eval-time prediction: expectation under softmax(α/τ), no noise.
  void Predict(const Batch& batch, std::vector<float>* probs) override;

  /// Re-entrant prediction into a caller-owned context (same math as
  /// Predict above); safe to run concurrently on different batches.
  bool SupportsReentrantPredict() const override { return true; }
  void Predict(const Batch& batch, std::vector<float>* probs,
               ForwardContext* ctx) const override;

  size_t ParamCount() const override;
  void CollectState(std::vector<Tensor*>* out) override;

  /// Gumbel-softmax temperature (annealed by the search driver).
  void SetTemperature(float tau) {
    CHECK_GT(tau, 0.0f);
    tau_ = tau;
  }
  float temperature() const { return tau_; }

  /// Selected method per pair: argmax_k α_(i,j)^k (paper Eq. 19).
  Architecture ExtractArchitecture() const;

  /// Current selection probabilities softmax(α/τ) for pair `p`.
  std::array<float, 3> PairProbabilities(size_t p) const;

  /// Raw architecture logits (tests / diagnostics).
  const DenseParam& alpha() const { return alpha_; }
  DenseParam& mutable_alpha() { return alpha_; }

 private:
  /// Shared tail of the forward pass: assembles z from ctx->emb_out /
  /// ctx->cross_out, runs the MLP, fills ctx->logits. Touches only `ctx`.
  void AssembleForward(const Batch& batch, const std::vector<float>& probs,
                       ForwardContext* ctx) const;

  /// Computes per-pair probabilities with fresh Gumbel noise.
  void SampleProbs(std::vector<float>* probs);

  /// Gumbel sample + forward + loss + backward (Θ and α gradients left
  /// accumulated). With `prep` non-null the prepared gather/scatter path
  /// is used; otherwise the legacy batch path (ArchStep).
  float ComputeForwardBackward(const Batch& batch, const PreparedBatch* prep);

  const EncodedDataset& data_;
  UpdateMode mode_;
  size_t s1_;
  size_t s2_;
  FactorizeFn fn_;
  size_t fact_width_;
  size_t db_;  // candidate width max(factorized width, s2)
  float tau_ = 1.0f;
  Rng rng_;
  FeatureEmbedding emb_;
  std::unique_ptr<CrossEmbedding> cross_emb_;  // all pairs
  std::unique_ptr<Mlp> mlp_;
  DenseParam alpha_;  // [P × 3] logits, order {m, f, n}
  Adam theta_opt_;
  Adam arch_opt_;

  std::vector<std::pair<size_t, size_t>> cat_pairs_;

  // Training-path caches: activations live in ctx_ so forward state has a
  // single home shared with the re-entrant Predict machinery. Gradient
  // tensors and reduction buffers are members so their heap capacity
  // persists across steps (steady-state zero-allocation contract,
  // DESIGN.md).
  ForwardContext ctx_;
  PreparedBatch own_prep_;  // used by the plain (serial) TrainStep
  std::vector<float> probs_cache_;
  std::vector<float> labels_;
  std::vector<float> dlogits_;
  Tensor dmlp_out_;
  Tensor dz_;
  Tensor demb_;
  Tensor dcross_;
  std::vector<double> dp_;
  std::vector<double> dp_partials_;
};

}  // namespace optinter
