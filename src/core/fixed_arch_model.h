// The OptInter framework with a *fixed* per-pair method assignment —
// the re-train-stage model (paper Algorithm 2, Eq. 19), and by choosing
// uniform architectures, also the FNN / OptInter-M / OptInter-F instances
// of the framework (paper Table III).
//
// Feature interaction layer (paper §II-B3): for every categorical field
// pair (i, j), the interaction embedding e^b_(i,j) is
//   memorize:  E^m_(i,j)[cross id]                (width s2)
//   factorize: e^o_i ⊙ e^o_j  (Hadamard, Eq. 14)  (width s1)
//   naïve:     omitted                            (width 0)
// The classifier (§II-B4) is an MLP with LayerNorm+ReLU over
// e = [e^o, e^b], ending in a sigmoid (applied inside the loss).

#pragma once

#include <memory>

#include "models/cross_embedding.h"
#include "models/feature_embedding.h"
#include "models/triple_embedding.h"
#include "models/hyperparams.h"
#include "models/interaction.h"
#include "models/model.h"
#include "nn/mlp.h"

namespace optinter {

/// OptInter with a frozen architecture.
class FixedArchModel : public CtrModel {
 public:
  /// `arch` assigns a method to each categorical pair (canonical order).
  /// The dataset must have cross features built if any pair memorizes.
  /// `memorized_triples` (optional) lists indices into the dataset's
  /// built third-order triples to memorize alongside the pairwise
  /// architecture — the paper's higher-order extension. The dataset must
  /// have triple features built when non-empty.
  ///
  /// `pair_fns` (optional) assigns each factorized pair its own
  /// factorization function (multi-operation search space, §II-C1);
  /// empty means hp.factorize_fn for every pair.
  FixedArchModel(const EncodedDataset& data, const Architecture& arch,
                 const HyperParams& hp, std::string name = "OptInter",
                 std::vector<size_t> memorized_triples = {},
                 std::vector<FactorizeFn> pair_fns = {});

  std::string Name() const override { return name_; }

  /// Exactly PrepareBatch + ForwardBackward + ApplyGrads, so the serial
  /// loop and the pipelined executor produce bit-identical training.
  float TrainStep(const Batch& batch) override;

  bool SupportsPhasedTrainStep() const override { return true; }
  void PrepareBatch(const Batch& batch, PreparedBatch* prep) const override;
  float ForwardBackward(const PreparedBatch& prep) override;
  void ApplyGrads() override;

  void Predict(const Batch& batch, std::vector<float>* probs) override;

  /// Re-entrant prediction into a caller-owned context; safe to run
  /// concurrently on different batches.
  bool SupportsReentrantPredict() const override { return true; }
  void Predict(const Batch& batch, std::vector<float>* probs,
               ForwardContext* ctx) const override;

  size_t ParamCount() const override;
  void CollectState(std::vector<Tensor*>* out) override;

  const Architecture& arch() const { return arch_; }

  // --- Read-only structure access ---------------------------------------
  //
  // The serving-time quantizer (serve/quantized_model.h) rebuilds this
  // model's forward pass over quantized weights; these accessors expose
  // the frozen layout and the fp32 layers it converts or reuses.

  /// block_offsets()/mem_slots() value for pairs without a block.
  static constexpr size_t kNoBlock = static_cast<size_t>(-1);

  const FeatureEmbedding& feature_embedding() const { return emb_; }
  /// nullptr when no pair memorizes.
  const CrossEmbedding* cross_embedding() const { return cross_emb_.get(); }
  /// nullptr when no triple is memorized.
  const TripleEmbedding* triple_embedding() const { return triple_emb_.get(); }
  const Mlp& mlp() const { return *mlp_; }
  size_t s1() const { return s1_; }
  size_t s2() const { return s2_; }
  size_t inter_dim() const { return inter_dim_; }
  const std::vector<FactorizeFn>& pair_fns() const { return pair_fns_; }
  const std::vector<std::pair<size_t, size_t>>& cat_pairs() const {
    return cat_pairs_;
  }
  /// Per-pair MLP-input column offset of the interaction block (kNoBlock
  /// for naïve pairs).
  const std::vector<size_t>& block_offsets() const { return block_offset_; }
  /// Per-pair block index within cross_embedding() (kNoBlock unless the
  /// pair memorizes).
  const std::vector<size_t>& mem_slots() const { return mem_slot_; }

  /// Test hook: disable the fused batch-1 predict path so tests can
  /// compare it against the generic path. On by default.
  void set_fuse_single_row(bool on) { fuse_single_row_ = on; }

  /// Instances of the framework with uniform methods (paper Table III).
  static std::unique_ptr<FixedArchModel> MakeFnn(const EncodedDataset& data,
                                                 const HyperParams& hp);
  static std::unique_ptr<FixedArchModel> MakeOptInterM(
      const EncodedDataset& data, const HyperParams& hp);
  static std::unique_ptr<FixedArchModel> MakeOptInterF(
      const EncodedDataset& data, const HyperParams& hp);

 private:
  /// Shared tail of the forward pass: assembles z from the gathered
  /// embeddings in `ctx`, runs the MLP, fills ctx->logits.
  void AssembleForward(const Batch& batch, ForwardContext* ctx) const;

  /// Fused batch-1 predict: gathers embeddings straight into the z row and
  /// computes interactions in place. Bit-identical to the generic path.
  void PredictSingleRow(const EncodedDataset& data, size_t row,
                        std::vector<float>* probs, ForwardContext* ctx) const;

  std::string name_;
  Architecture arch_;
  size_t s1_;
  size_t s2_;
  std::vector<FactorizeFn> pair_fns_;  // one per pair
  Rng rng_;
  FeatureEmbedding emb_;
  std::unique_ptr<CrossEmbedding> cross_emb_;  // memorized pairs only
  std::unique_ptr<TripleEmbedding> triple_emb_;  // higher-order extension
  std::unique_ptr<Mlp> mlp_;
  Adam dense_opt_;

  // Categorical-pair bookkeeping: for each pair, the MLP-input column
  // offset of its interaction block (or kNone for naïve pairs), and for
  // memorized pairs the block index within cross_emb_.
  static constexpr size_t kNone = kNoBlock;
  std::vector<std::pair<size_t, size_t>> cat_pairs_;
  std::vector<size_t> block_offset_;  // into z_ columns
  std::vector<size_t> mem_slot_;      // into cross_emb_ blocks
  size_t inter_dim_ = 0;              // total interaction columns
  bool fuse_single_row_ = true;       // batch-1 fast path (test toggle)

  // Training-path caches: activations live in ctx_ so forward state has a
  // single home shared with the re-entrant Predict machinery. The prepared
  // batch and gradient tensors are members (not step locals) so their
  // buffers persist across steps — part of the steady-state
  // zero-allocation contract (DESIGN.md).
  ForwardContext ctx_;
  PreparedBatch own_prep_;  // used by the plain (serial) TrainStep
  std::vector<float> dlogits_;
  Tensor dmlp_out_;
  Tensor dz_;
  Tensor demb_;
  Tensor dcross_;
  Tensor dtriple_;
};

}  // namespace optinter
