#include "core/pipeline.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <numeric>

#include "common/stopwatch.h"
#include "metrics/mutual_information.h"
#include "core/autofis.h"
#include "core/fixed_arch_model.h"
#include "obs/timeline.h"
#include "train/pipeline_executor.h"

namespace optinter {

obs::SearchEpochDynamics SnapshotSearchDynamics(
    const SearchModel& model, size_t epoch, const Architecture& prev_arch,
    const Architecture& arch) {
  const size_t num_pairs = arch.size();
  obs::SearchEpochDynamics d;
  d.epoch = epoch;
  d.temperature = model.temperature();
  d.alpha_entropy_per_pair.resize(num_pairs);
  for (size_t p = 0; p < num_pairs; ++p) {
    const std::array<float, 3> probs = model.PairProbabilities(p);
    double h = 0.0;
    for (const float q : probs) {
      if (q > 0.0f) h -= static_cast<double>(q) * std::log(q);
    }
    d.alpha_entropy_per_pair[p] = h;
  }
  if (num_pairs > 0) {
    double sum = 0.0;
    d.min_alpha_entropy = d.alpha_entropy_per_pair[0];
    d.max_alpha_entropy = d.alpha_entropy_per_pair[0];
    for (const double h : d.alpha_entropy_per_pair) {
      sum += h;
      d.min_alpha_entropy = std::min(d.min_alpha_entropy, h);
      d.max_alpha_entropy = std::max(d.max_alpha_entropy, h);
    }
    d.mean_alpha_entropy = sum / static_cast<double>(num_pairs);
  }
  for (size_t p = 0; p < num_pairs; ++p) {
    d.argmax_counts[static_cast<size_t>(arch[p])]++;
    if (!prev_arch.empty() && arch[p] != prev_arch[p]) ++d.argmax_flips;
  }
  return d;
}

SearchResult RunSearchStage(const EncodedDataset& data, const Splits& splits,
                            const HyperParams& hp,
                            const SearchOptions& options) {
  CHECK(!splits.train.empty());
  Stopwatch timer;
  SearchModel model(data, hp, options.mode);
  Batcher train_batcher(&data, splits.train, hp.batch_size, hp.seed);
  // Bi-level updates α on validation batches (DARTS-style); fall back to
  // train rows if no val split exists.
  Batcher arch_batcher(&data, splits.val.empty() ? splits.train : splits.val,
                       hp.batch_size, hp.seed ^ 0xa5c3ULL);
  arch_batcher.StartEpoch();

  SearchResult result;
  Architecture prev_arch;  // empty until the first epoch snapshot
  const size_t epochs = std::max<size_t>(1, options.search_epochs);
  // Joint mode pipelines Θ+α steps; bi-level interleaves a serial ArchStep
  // per batch, so overlapping the next prepare would change nothing and
  // complicate the fence story.
  const bool use_pipeline = options.pipeline &&
                            options.mode == UpdateMode::kJoint &&
                            model.SupportsPhasedTrainStep();
  std::unique_ptr<PipelinedTrainExecutor> executor;
  if (use_pipeline) executor = std::make_unique<PipelinedTrainExecutor>(&model);
  // Within-epoch α sampling: every K steps, diff the argmax architecture
  // against the previous sample and record flips. Runs at step quiescent
  // points (on_step on the pipelined path, between steps on the serial
  // one), so it observes the same α state a checkpoint would.
  result.dynamics.sample_every = options.alpha_sample_every;
  size_t global_step = 0;
  size_t current_epoch = 0;
  Architecture sampled_arch;
  auto sample_alpha = [&] {
    ++global_step;
    if (options.alpha_sample_every == 0 ||
        global_step % options.alpha_sample_every != 0) {
      return;
    }
    const Architecture cur = model.ExtractArchitecture();
    if (!sampled_arch.empty()) {
      for (size_t p = 0; p < cur.size(); ++p) {
        if (cur[p] == sampled_arch[p]) continue;
        obs::AlphaFlipEvent ev;
        ev.epoch = current_epoch;
        ev.step = global_step;
        ev.pair = p;
        ev.from = static_cast<int>(sampled_arch[p]);
        ev.to = static_cast<int>(cur[p]);
        if (obs::Timeline::Enabled()) {
          char detail[obs::Timeline::kDetailCapacity];
          std::snprintf(detail, sizeof(detail), "pair=%zu %s->%s", p,
                        obs::AlphaMethodName(ev.from),
                        obs::AlphaMethodName(ev.to));
          obs::Timeline::RecordInstant("alpha_flip", detail);
        }
        result.dynamics.flip_events.push_back(ev);
      }
    }
    sampled_arch = cur;
  };
  for (size_t epoch = 0; epoch < epochs; ++epoch) {
    current_epoch = epoch;
    if (options.anneal_temperature) {
      const float frac =
          epochs > 1 ? static_cast<float>(epoch) /
                           static_cast<float>(epochs - 1)
                     : 1.0f;
      model.SetTemperature(hp.gumbel_temp_start +
                           frac * (hp.gumbel_temp_end -
                                   hp.gumbel_temp_start));
    }
    Stopwatch epoch_timer;
    train_batcher.StartEpoch();
    double loss_sum = 0.0;
    size_t batches = 0;
    size_t rows_seen = 0;
    if (use_pipeline) {
      const PipelinedTrainExecutor::EpochStats stats =
          executor->RunEpoch(&train_batcher, sample_alpha);
      loss_sum = stats.loss_sum;
      batches = stats.batches;
      rows_seen = stats.rows;
    } else {
      for (;;) {
        Batch b = train_batcher.Next();
        if (b.size == 0) break;
        loss_sum += model.TrainStep(b);
        rows_seen += b.size;
        ++batches;
        if (options.mode == UpdateMode::kBilevel) {
          Batch vb = arch_batcher.Next();
          if (vb.size == 0) {
            arch_batcher.StartEpoch();
            vb = arch_batcher.Next();
          }
          model.ArchStep(vb);
        }
        sample_alpha();
      }
    }
    EpochTelemetry et;
    et.epoch = epoch;
    et.train_seconds = epoch_timer.Elapsed();
    et.train_rows_per_sec =
        et.train_seconds > 0.0
            ? static_cast<double>(rows_seen) / et.train_seconds
            : 0.0;
    et.mean_train_loss =
        batches ? loss_sum / static_cast<double>(batches) : 0.0;
    result.telemetry.train_seconds_total += et.train_seconds;
    result.telemetry.epochs.push_back(et);

    const Architecture epoch_arch = model.ExtractArchitecture();
    obs::SearchEpochDynamics dyn =
        SnapshotSearchDynamics(model, epoch, prev_arch, epoch_arch);
    if (options.verbose) {
      LOG_INFO() << model.Name() << " search epoch " << epoch
                 << " loss=" << et.mean_train_loss
                 << " tau=" << model.temperature()
                 << " train_s=" << et.train_seconds
                 << " rows/s=" << et.train_rows_per_sec
                 << " mean_H(alpha)=" << dyn.mean_alpha_entropy
                 << " argmax[mem/fact/naive]=" << dyn.argmax_counts[0] << "/"
                 << dyn.argmax_counts[1] << "/" << dyn.argmax_counts[2]
                 << " flips=" << dyn.argmax_flips;
    }
    result.dynamics.epochs.push_back(std::move(dyn));
    prev_arch = epoch_arch;
  }

  result.arch = model.ExtractArchitecture();
  {
    Stopwatch eval_timer;
    if (!splits.val.empty()) {
      result.search_val = EvaluateModel(&model, data, splits.val);
    }
    if (!splits.test.empty()) {
      result.search_test = EvaluateModel(&model, data, splits.test);
    }
    result.telemetry.eval_seconds_total = eval_timer.Elapsed();
  }
  if (result.telemetry.train_seconds_total > 0.0) {
    double rows_total = 0.0;
    for (const EpochTelemetry& et : result.telemetry.epochs) {
      rows_total += et.train_rows_per_sec * et.train_seconds;
    }
    result.telemetry.train_rows_per_sec =
        rows_total / result.telemetry.train_seconds_total;
  }
  result.seconds = timer.Elapsed();
  return result;
}

OptInterResult RunOptInter(const EncodedDataset& data, const Splits& splits,
                           const HyperParams& hp,
                           const SearchOptions& search_options,
                           const TrainOptions& train_options) {
  OptInterResult result;
  result.search = RunSearchStage(data, splits, hp, search_options);
  FixedArchRun run = TrainFixedArch(data, splits, result.search.arch, hp,
                                    train_options, "OptInter");
  result.retrain = std::move(run.summary);
  result.param_count = run.param_count;
  return result;
}

Architecture RandomArchitecture(size_t num_pairs, Rng* rng) {
  Architecture arch(num_pairs);
  for (size_t p = 0; p < num_pairs; ++p) {
    arch[p] = static_cast<InterMethod>(rng->UniformInt(3));
  }
  return arch;
}

FixedArchRun TrainFixedArch(const EncodedDataset& data, const Splits& splits,
                            const Architecture& arch, const HyperParams& hp,
                            const TrainOptions& options,
                            const std::string& name) {
  FixedArchModel model(data, arch, hp, name);
  FixedArchRun run;
  run.summary = TrainModel(&model, data, splits, options);
  run.param_count = model.ParamCount();
  return run;
}

std::vector<size_t> SelectTopTriplesByMiLift(const EncodedDataset& data,
                                             const std::vector<size_t>& rows,
                                             size_t k) {
  CHECK(data.has_triples());
  const size_t n = data.num_triples();
  std::vector<double> lift(n);
  const size_t m = data.num_categorical();
  for (size_t t = 0; t < n; ++t) {
    const auto& tr = data.triple_fields[t];
    // OOV-collapsed MI on both sides keeps the comparison on one scale
    // (raw-id plug-in MI is inflated for sparse features).
    const double tri_mi = TripleLabelMutualInformation(data, t, rows);
    double best_pair = 0.0;
    best_pair = std::max(
        best_pair, CrossLabelMutualInformation(
                       data, PairIndex(tr[0], tr[1], m), rows));
    best_pair = std::max(
        best_pair, CrossLabelMutualInformation(
                       data, PairIndex(tr[0], tr[2], m), rows));
    best_pair = std::max(
        best_pair, CrossLabelMutualInformation(
                       data, PairIndex(tr[1], tr[2], m), rows));
    lift[t] = tri_mi - best_pair;
  }
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return lift[a] > lift[b]; });
  order.resize(std::min(k, n));
  return order;
}

AutoFisResult RunAutoFis(const EncodedDataset& data, const Splits& splits,
                         const HyperParams& hp,
                         const TrainOptions& train_options) {
  AutoFisResult result;
  {
    AutoFisSearchModel search(data, hp);
    TrainOptions search_options = train_options;
    search_options.patience = 0;  // let GRDA prune for the full budget
    TrainModel(&search, data, splits, search_options);
    result.arch = search.ExtractArchitecture();
  }
  FixedArchRun run =
      TrainFixedArch(data, splits, result.arch, hp, train_options, "AutoFIS");
  result.retrain = std::move(run.summary);
  result.param_count = run.param_count;
  return result;
}

}  // namespace optinter
