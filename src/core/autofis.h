// AutoFIS baseline (Liu et al., KDD 2020; paper §II-D and §III).
//
// AutoFIS is the hybrid-{factorize, naïve} predecessor of OptInter: a
// scalar gate g_(i,j) multiplies each factorized interaction embedding,
// and the gates are trained with the sparsity-inducing GRDA optimizer.
// Gates driven exactly to zero mark interactions to drop (naïve); the
// survivors stay factorized. The search space is a strict subset of
// OptInter's (no memorized option) — Table VI reports its selections as
// [0, y, z].

#pragma once

#include <memory>

#include "models/feature_embedding.h"
#include "models/hyperparams.h"
#include "models/interaction.h"
#include "models/model.h"
#include "nn/mlp.h"

namespace optinter {

/// AutoFIS search-stage model: gated Hadamard interactions + MLP.
class AutoFisSearchModel : public CtrModel {
 public:
  AutoFisSearchModel(const EncodedDataset& data, const HyperParams& hp);

  std::string Name() const override { return "AutoFIS-search"; }
  float TrainStep(const Batch& batch) override;
  void Predict(const Batch& batch, std::vector<float>* probs) override;
  size_t ParamCount() const override;
  void CollectState(std::vector<Tensor*>* out) override;

  /// Gate values (exactly zero = pruned).
  const DenseParam& gates() const { return gates_; }

  /// {factorize if gate != 0, else naïve} per pair.
  Architecture ExtractArchitecture() const;

 private:
  void Forward(const Batch& batch);

  const EncodedDataset& data_;
  size_t s1_;
  Rng rng_;
  FeatureEmbedding emb_;
  std::unique_ptr<Mlp> mlp_;
  DenseParam gates_;  // [P]
  Adam theta_opt_;
  Grda gate_opt_;

  std::vector<std::pair<size_t, size_t>> cat_pairs_;

  Tensor emb_out_;
  Tensor z_;
  Tensor mlp_out_;
  std::vector<float> logits_;
  std::vector<float> labels_;
  std::vector<float> dlogits_;
};

}  // namespace optinter
