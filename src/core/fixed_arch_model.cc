#include "core/fixed_arch_model.h"

#include <cstring>

#include "common/thread_pool.h"
#include "nn/layers.h"
#include "obs/trace.h"
#include "tensor/kernels.h"

namespace optinter {

FixedArchModel::FixedArchModel(const EncodedDataset& data,
                               const Architecture& arch,
                               const HyperParams& hp, std::string name,
                               std::vector<size_t> memorized_triples,
                               std::vector<FactorizeFn> pair_fns)
    : name_(std::move(name)),
      arch_(arch),
      s1_(hp.embed_dim),
      s2_(hp.cross_embed_dim),
      pair_fns_(std::move(pair_fns)),
      rng_(hp.seed),
      emb_(data, hp.embed_dim, hp.lr_orig, hp.l2_orig, &rng_,
           hp.orig_backend) {
  CHECK_EQ(arch_.size(), data.num_pairs());
  if (pair_fns_.empty()) {
    pair_fns_.assign(arch_.size(), hp.factorize_fn);
  }
  CHECK_EQ(pair_fns_.size(), arch_.size());
  cat_pairs_ = EnumeratePairs(data.num_categorical());

  // Lay out interaction blocks and collect memorized pairs.
  std::vector<size_t> mem_pairs;
  block_offset_.assign(arch_.size(), kNone);
  mem_slot_.assign(arch_.size(), kNone);
  size_t offset = 0;
  for (size_t p = 0; p < arch_.size(); ++p) {
    switch (arch_[p]) {
      case InterMethod::kMemorize:
        block_offset_[p] = offset;
        mem_slot_[p] = mem_pairs.size();
        mem_pairs.push_back(p);
        offset += s2_;
        break;
      case InterMethod::kFactorize:
        block_offset_[p] = offset;
        offset += FactorizedWidth(pair_fns_[p], s1_);
        break;
      case InterMethod::kNaive:
        break;
    }
  }
  inter_dim_ = offset;
  if (!mem_pairs.empty()) {
    cross_emb_ = std::make_unique<CrossEmbedding>(
        data, mem_pairs, s2_, hp.lr_cross, hp.l2_cross, &rng_,
        hp.cross_backend);
  }
  if (!memorized_triples.empty()) {
    triple_emb_ = std::make_unique<TripleEmbedding>(
        data, std::move(memorized_triples), s2_, hp.lr_cross, hp.l2_cross,
        &rng_, hp.cross_backend);
    inter_dim_ += triple_emb_->output_dim();
  }

  MlpConfig cfg;
  cfg.hidden = hp.mlp_hidden;
  cfg.out_dim = 1;
  cfg.layer_norm = hp.layer_norm;
  cfg.lr = hp.lr_orig;
  cfg.l2 = hp.l2_orig;
  mlp_ = std::make_unique<Mlp>("mlp", emb_.output_dim() + inter_dim_, cfg,
                               &rng_);
  mlp_->RegisterParams(&dense_opt_);
}

void FixedArchModel::AssembleForward(const Batch& batch,
                                     ForwardContext* ctx) const {
  const size_t b = batch.size;
  const size_t emb_cols = ctx->emb_out.cols();
  Tensor& z = ctx->z;
  z.Resize({b, emb_cols + inter_dim_});
  auto assemble = [&](size_t lo, size_t hi) {
    for (size_t k = lo; k < hi; ++k) {
      float* zr = z.row(k);
      std::memcpy(zr, ctx->emb_out.row(k), emb_cols * sizeof(float));
      const float* e = ctx->emb_out.row(k);
      for (size_t p = 0; p < arch_.size(); ++p) {
        switch (arch_[p]) {
          case InterMethod::kMemorize:
            std::memcpy(zr + emb_cols + block_offset_[p],
                        ctx->cross_out.row(k) + mem_slot_[p] * s2_,
                        s2_ * sizeof(float));
            break;
          case InterMethod::kFactorize: {
            const auto [i, j] = cat_pairs_[p];
            FactorizedForward(pair_fns_[p], s1_, e + i * s1_, e + j * s1_,
                              zr + emb_cols + block_offset_[p]);
            break;
          }
          case InterMethod::kNaive:
            break;
        }
      }
      if (triple_emb_) {
        std::memcpy(zr + emb_cols + inter_dim_ - triple_emb_->output_dim(),
                    ctx->triple_out.row(k),
                    triple_emb_->output_dim() * sizeof(float));
      }
    }
  };
  // Each row assembles into its own z row, so fanning across the pool is
  // bit-identical to the serial loop.
  if (b * (emb_cols + inter_dim_) >= (1u << 15)) {
    ParallelForChunks(0, b, assemble, /*min_chunk=*/32);
  } else {
    assemble(0, b);
  }
  mlp_->Forward(z, &ctx->mlp_out, &ctx->mlp);
  ctx->logits.resize(b);
  for (size_t k = 0; k < b; ++k) ctx->logits[k] = ctx->mlp_out.at(k, 0);
}

float FixedArchModel::TrainStep(const Batch& batch) {
  PrepareBatch(batch, &own_prep_);
  const float loss = ForwardBackward(own_prep_);
  ApplyGrads();
  return loss;
}

void FixedArchModel::PrepareBatch(const Batch& batch,
                                  PreparedBatch* prep) const {
  OPTINTER_TRACE_SPAN("prepare_batch");
  prep->BeginFill(batch);
  emb_.Prepare(batch, prep);
  if (cross_emb_) cross_emb_->Prepare(batch, &prep->dedup, &prep->cross);
  if (triple_emb_) triple_emb_->Prepare(batch, &prep->dedup, &prep->triple);
}

float FixedArchModel::ForwardBackward(const PreparedBatch& prep) {
  emb_.ForwardPrepared(prep, &ctx_.emb_out);
  if (cross_emb_) {
    cross_emb_->ForwardPrepared(prep.cross, prep.size, &ctx_.cross_out);
  }
  if (triple_emb_) {
    triple_emb_->ForwardPrepared(prep.triple, prep.size, &ctx_.triple_out);
  }
  AssembleForward(prep.AsBatch(), &ctx_);

  const size_t b = prep.size;
  dlogits_.resize(b);
  const float loss = BceWithLogitsLoss(ctx_.logits.data(),
                                       prep.labels.data(), b,
                                       dlogits_.data());

  dmlp_out_.Resize({b, 1});
  for (size_t k = 0; k < b; ++k) dmlp_out_.at(k, 0) = dlogits_[k];
  mlp_->Backward(dmlp_out_, &dz_, &ctx_.mlp);

  const size_t emb_cols = ctx_.emb_out.cols();
  demb_.Resize({b, emb_cols});
  if (cross_emb_) dcross_.Resize({b, ctx_.cross_out.cols()});
  auto bwd_rows = [&](size_t lo, size_t hi) {
    for (size_t k = lo; k < hi; ++k) {
      const float* dzr = dz_.row(k);
      std::memcpy(demb_.row(k), dzr, emb_cols * sizeof(float));
      const float* e = ctx_.emb_out.row(k);
      float* de = demb_.row(k);
      for (size_t p = 0; p < arch_.size(); ++p) {
        switch (arch_[p]) {
          case InterMethod::kMemorize:
            std::memcpy(dcross_.row(k) + mem_slot_[p] * s2_,
                        dzr + emb_cols + block_offset_[p],
                        s2_ * sizeof(float));
            break;
          case InterMethod::kFactorize: {
            const auto [i, j] = cat_pairs_[p];
            const float* dblock = dzr + emb_cols + block_offset_[p];
            FactorizedBackward(pair_fns_[p], s1_, e + i * s1_, e + j * s1_,
                               dblock, 1.0f, de + i * s1_, de + j * s1_);
            break;
          }
          case InterMethod::kNaive:
            break;
        }
      }
    }
  };
  {
    OPTINTER_TRACE_SPAN("interaction_bwd");
    // Each row writes its own demb/dcross rows → bit-identical to the
    // serial loop under any chunking.
    if (b * (emb_cols + inter_dim_) >= (1u << 15)) {
      ParallelForChunks(0, b, bwd_rows, /*min_chunk=*/32);
    } else {
      bwd_rows(0, b);
    }
  }
  emb_.BackwardPrepared(demb_, prep);
  if (cross_emb_) cross_emb_->BackwardPrepared(dcross_, prep.cross);
  if (triple_emb_) {
    dtriple_.Resize({b, triple_emb_->output_dim()});
    const size_t triple_off =
        emb_cols + inter_dim_ - triple_emb_->output_dim();
    for (size_t k = 0; k < b; ++k) {
      std::memcpy(dtriple_.row(k), dz_.row(k) + triple_off,
                  triple_emb_->output_dim() * sizeof(float));
    }
    triple_emb_->BackwardPrepared(dtriple_, prep.triple);
  }
  return loss;
}

void FixedArchModel::ApplyGrads() {
  OPTINTER_TRACE_SPAN("apply_grads");
  emb_.StepPrepared();
  if (cross_emb_) cross_emb_->StepPrepared();
  if (triple_emb_) triple_emb_->StepPrepared();
  dense_opt_.Step();
  dense_opt_.ZeroGrad();
}

void FixedArchModel::Predict(const Batch& batch, std::vector<float>* probs) {
  Predict(batch, probs, &ctx_);
}

void FixedArchModel::Predict(const Batch& batch, std::vector<float>* probs,
                             ForwardContext* ctx) const {
  if (batch.size == 1 && fuse_single_row_) {
    PredictSingleRow(*batch.data, batch.rows[0], probs, ctx);
    return;
  }
  // Gather (not Forward): eval never scatters gradients, so the embedding
  // layers' batch-row caches stay untouched and concurrent calls with
  // distinct contexts share only immutable parameters.
  emb_.Gather(batch, &ctx->emb_out);
  if (cross_emb_) cross_emb_->Gather(batch, &ctx->cross_out);
  if (triple_emb_) triple_emb_->Gather(batch, &ctx->triple_out);
  AssembleForward(batch, ctx);
  probs->resize(batch.size);
  SigmoidForward(ctx->logits.data(), batch.size, probs->data());
}

void FixedArchModel::PredictSingleRow(const EncodedDataset& data, size_t row,
                                      std::vector<float>* probs,
                                      ForwardContext* ctx) const {
  // Batch-1 serving fast path: gather every embedding block straight into
  // the z row and compute interactions in place — no emb_out / cross_out /
  // triple_out intermediates. Each block holds bitwise the same values the
  // generic path would memcpy there, and the interaction kernels run on
  // identical inputs in identical order, so the result is bit-identical to
  // the generic path at batch size 1.
  const size_t emb_cols = emb_.output_dim();
  Tensor& z = ctx->z;
  z.Resize({1, emb_cols + inter_dim_});
  float* zr = z.row(0);
  emb_.GatherRow(data, row, zr);
  for (size_t p = 0; p < arch_.size(); ++p) {
    switch (arch_[p]) {
      case InterMethod::kMemorize:
        cross_emb_->CopyRow(data, row, mem_slot_[p],
                            zr + emb_cols + block_offset_[p]);
        break;
      case InterMethod::kFactorize: {
        const auto [i, j] = cat_pairs_[p];
        FactorizedForward(pair_fns_[p], s1_, zr + i * s1_, zr + j * s1_,
                          zr + emb_cols + block_offset_[p]);
        break;
      }
      case InterMethod::kNaive:
        break;
    }
  }
  if (triple_emb_) {
    triple_emb_->GatherRow(
        data, row, zr + emb_cols + inter_dim_ - triple_emb_->output_dim());
  }
  mlp_->Forward(z, &ctx->mlp_out, &ctx->mlp);
  ctx->logits.resize(1);
  ctx->logits[0] = ctx->mlp_out.at(0, 0);
  probs->resize(1);
  SigmoidForward(ctx->logits.data(), 1, probs->data());
}

void FixedArchModel::CollectState(std::vector<Tensor*>* out) {
  emb_.CollectState(out);
  if (cross_emb_) cross_emb_->CollectState(out);
  if (triple_emb_) triple_emb_->CollectState(out);
  for (DenseParam* p : dense_opt_.params()) out->push_back(&p->value);
}

size_t FixedArchModel::ParamCount() const {
  size_t total = emb_.ParamCount() + mlp_->ParamCount();
  if (cross_emb_) total += cross_emb_->ParamCount();
  if (triple_emb_) total += triple_emb_->ParamCount();
  return total;
}

std::unique_ptr<FixedArchModel> FixedArchModel::MakeFnn(
    const EncodedDataset& data, const HyperParams& hp) {
  return std::make_unique<FixedArchModel>(data, AllNaive(data.num_pairs()),
                                          hp, "FNN");
}

std::unique_ptr<FixedArchModel> FixedArchModel::MakeOptInterM(
    const EncodedDataset& data, const HyperParams& hp) {
  return std::make_unique<FixedArchModel>(
      data, AllMemorize(data.num_pairs()), hp, "OptInter-M");
}

std::unique_ptr<FixedArchModel> FixedArchModel::MakeOptInterF(
    const EncodedDataset& data, const HyperParams& hp) {
  return std::make_unique<FixedArchModel>(
      data, AllFactorize(data.num_pairs()), hp, "OptInter-F");
}

}  // namespace optinter
