#include "core/multi_op_search.h"

#include <cstring>
#include <numeric>

#include "nn/init.h"
#include "nn/layers.h"
#include "tensor/kernels.h"

namespace optinter {

namespace {
std::vector<size_t> AllPairIndices(const EncodedDataset& data) {
  std::vector<size_t> pairs(data.num_pairs());
  std::iota(pairs.begin(), pairs.end(), 0);
  return pairs;
}
}  // namespace

MultiOpSearchModel::MultiOpSearchModel(const EncodedDataset& data,
                                       const HyperParams& hp,
                                       std::vector<FactorizeFn> fns)
    : data_(data),
      fns_(std::move(fns)),
      s1_(hp.embed_dim),
      s2_(hp.cross_embed_dim),
      tau_(hp.gumbel_temp_start),
      rng_(hp.seed),
      emb_(data, hp.embed_dim, hp.lr_orig, hp.l2_orig, &rng_,
           hp.orig_backend) {
  CHECK(data.has_cross()) << "search requires cross features";
  CHECK(!fns_.empty());
  cross_emb_ = std::make_unique<CrossEmbedding>(
      data, AllPairIndices(data), s2_, hp.lr_cross, hp.l2_cross, &rng_,
      hp.cross_backend);
  cat_pairs_ = EnumeratePairs(data.num_categorical());

  db_ = s2_;
  for (FactorizeFn fn : fns_) {
    db_ = std::max(db_, FactorizedWidth(fn, s1_));
  }
  scratch_.resize(db_);

  alpha_.name = "arch/alpha_multiop";
  alpha_.Resize({data.num_pairs(), num_candidates()});
  UniformInit(&alpha_.value, -0.05, 0.05, &rng_);
  alpha_.lr = hp.lr_arch;
  alpha_.l2 = hp.l2_arch;
  arch_opt_.AddParam(&alpha_);

  MlpConfig cfg;
  cfg.hidden = hp.mlp_hidden;
  cfg.out_dim = 1;
  cfg.layer_norm = hp.layer_norm;
  cfg.lr = hp.lr_orig;
  cfg.l2 = hp.l2_orig;
  mlp_ = std::make_unique<Mlp>(
      "mlp", emb_.output_dim() + data.num_pairs() * db_, cfg, &rng_);
  mlp_->RegisterParams(&theta_opt_);
}

void MultiOpSearchModel::SampleProbs(std::vector<float>* probs) {
  const size_t num_pairs = data_.num_pairs();
  const size_t k = num_candidates();
  probs->resize(num_pairs * k);
  std::vector<float> noisy(k);
  for (size_t p = 0; p < num_pairs; ++p) {
    const float* a = alpha_.value.row(p);
    for (size_t c = 0; c < k; ++c) {
      noisy[c] = (a[c] + static_cast<float>(rng_.Gumbel())) / tau_;
    }
    Softmax(k, noisy.data(), probs->data() + p * k);
  }
}

void MultiOpSearchModel::ForwardWithProbs(const Batch& batch,
                                          const std::vector<float>& probs) {
  emb_.Forward(batch, &emb_out_);
  cross_emb_->Forward(batch, &cross_out_);
  const size_t b = batch.size;
  const size_t emb_cols = emb_out_.cols();
  const size_t num_pairs = data_.num_pairs();
  const size_t k = num_candidates();
  z_.Resize({b, emb_cols + num_pairs * db_});
  for (size_t row = 0; row < b; ++row) {
    float* zr = z_.row(row);
    std::memcpy(zr, emb_out_.row(row), emb_cols * sizeof(float));
    const float* e = emb_out_.row(row);
    const float* cr = cross_out_.row(row);
    float* blocks = zr + emb_cols;
    std::memset(blocks, 0, num_pairs * db_ * sizeof(float));
    for (size_t p = 0; p < num_pairs; ++p) {
      const float* pr = probs.data() + p * k;
      float* block = blocks + p * db_;
      const float* mem = cr + p * s2_;
      for (size_t t = 0; t < s2_; ++t) block[t] += pr[0] * mem[t];
      const auto [i, j] = cat_pairs_[p];
      for (size_t f = 0; f < fns_.size(); ++f) {
        const size_t w = FactorizedWidth(fns_[f], s1_);
        FactorizedForward(fns_[f], s1_, e + i * s1_, e + j * s1_,
                          scratch_.data());
        for (size_t t = 0; t < w; ++t) block[t] += pr[1 + f] * scratch_[t];
      }
      // Last candidate (naive) contributes nothing.
    }
  }
  mlp_->Forward(z_, &mlp_out_);
  logits_.resize(b);
  for (size_t row = 0; row < b; ++row) logits_[row] = mlp_out_.at(row, 0);
}

float MultiOpSearchModel::TrainStep(const Batch& batch) {
  SampleProbs(&probs_cache_);
  ForwardWithProbs(batch, probs_cache_);
  const size_t b = batch.size;
  const size_t k = num_candidates();
  labels_.resize(b);
  dlogits_.resize(b);
  for (size_t row = 0; row < b; ++row) labels_[row] = batch.label(row);
  const float loss = BceWithLogitsLoss(logits_.data(), labels_.data(), b,
                                       dlogits_.data());

  Tensor dmlp_out({b, 1});
  for (size_t row = 0; row < b; ++row) dmlp_out.at(row, 0) = dlogits_[row];
  Tensor dz;
  mlp_->Backward(dmlp_out, &dz);

  const size_t emb_cols = emb_out_.cols();
  const size_t num_pairs = data_.num_pairs();
  Tensor demb({b, emb_cols});
  Tensor dcross({b, cross_out_.cols()});
  std::vector<double> dp(num_pairs * k, 0.0);
  for (size_t row = 0; row < b; ++row) {
    const float* dzr = dz.row(row);
    std::memcpy(demb.row(row), dzr, emb_cols * sizeof(float));
    const float* e = emb_out_.row(row);
    const float* cr = cross_out_.row(row);
    float* de = demb.row(row);
    float* dcr = dcross.row(row);
    const float* dblocks = dzr + emb_cols;
    for (size_t p = 0; p < num_pairs; ++p) {
      const float* pr = probs_cache_.data() + p * k;
      const float* dblock = dblocks + p * db_;
      const float* mem = cr + p * s2_;
      float* dmem = dcr + p * s2_;
      double dpm = 0.0;
      for (size_t t = 0; t < s2_; ++t) {
        dpm += static_cast<double>(dblock[t]) * mem[t];
        dmem[t] = pr[0] * dblock[t];
      }
      dp[p * k + 0] += dpm;
      const auto [i, j] = cat_pairs_[p];
      const float* ei = e + i * s1_;
      const float* ej = e + j * s1_;
      for (size_t f = 0; f < fns_.size(); ++f) {
        const size_t w = FactorizedWidth(fns_[f], s1_);
        FactorizedForward(fns_[f], s1_, ei, ej, scratch_.data());
        double dpf = 0.0;
        for (size_t t = 0; t < w; ++t) {
          dpf += static_cast<double>(dblock[t]) * scratch_[t];
        }
        dp[p * k + 1 + f] += dpf;
        FactorizedBackward(fns_[f], s1_, ei, ej, dblock, pr[1 + f],
                           de + i * s1_, de + j * s1_);
      }
    }
  }

  for (size_t p = 0; p < num_pairs; ++p) {
    const float* pr = probs_cache_.data() + p * k;
    const double* dpr = dp.data() + p * k;
    double weighted = 0.0;
    for (size_t c = 0; c < k; ++c) weighted += pr[c] * dpr[c];
    float* da = alpha_.grad.row(p);
    for (size_t c = 0; c < k; ++c) {
      da[c] += static_cast<float>(pr[c] * (dpr[c] - weighted) / tau_);
    }
  }

  emb_.Backward(demb);
  cross_emb_->Backward(dcross);
  emb_.Step();
  cross_emb_->Step();
  theta_opt_.Step();
  theta_opt_.ZeroGrad();
  arch_opt_.Step();
  arch_opt_.ZeroGrad();
  return loss;
}

void MultiOpSearchModel::Predict(const Batch& batch,
                                 std::vector<float>* probs) {
  const size_t num_pairs = data_.num_pairs();
  const size_t k = num_candidates();
  std::vector<float> p(num_pairs * k);
  std::vector<float> scaled(k);
  for (size_t q = 0; q < num_pairs; ++q) {
    const float* a = alpha_.value.row(q);
    for (size_t c = 0; c < k; ++c) scaled[c] = a[c] / tau_;
    Softmax(k, scaled.data(), p.data() + q * k);
  }
  ForwardWithProbs(batch, p);
  probs->resize(batch.size);
  SigmoidForward(logits_.data(), batch.size, probs->data());
}

size_t MultiOpSearchModel::ParamCount() const {
  return emb_.ParamCount() + cross_emb_->ParamCount() +
         mlp_->ParamCount() + alpha_.size();
}

void MultiOpSearchModel::CollectState(std::vector<Tensor*>* out) {
  emb_.CollectState(out);
  cross_emb_->CollectState(out);
  for (DenseParam* p : theta_opt_.params()) out->push_back(&p->value);
  out->push_back(&alpha_.value);
}

MultiOpArchitecture MultiOpSearchModel::ExtractArchitecture() const {
  const size_t k = num_candidates();
  MultiOpArchitecture out;
  out.methods.resize(data_.num_pairs());
  out.fns.assign(data_.num_pairs(), FactorizeFn::kHadamard);
  for (size_t p = 0; p < data_.num_pairs(); ++p) {
    const float* a = alpha_.value.row(p);
    size_t best = 0;
    for (size_t c = 1; c < k; ++c) {
      if (a[c] > a[best]) best = c;
    }
    if (best == 0) {
      out.methods[p] = InterMethod::kMemorize;
    } else if (best == k - 1) {
      out.methods[p] = InterMethod::kNaive;
    } else {
      out.methods[p] = InterMethod::kFactorize;
      out.fns[p] = fns_[best - 1];
    }
  }
  return out;
}

}  // namespace optinter
