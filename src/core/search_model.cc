#include "core/search_model.h"

#include <cstring>
#include <numeric>

#include "common/thread_pool.h"
#include "obs/trace.h"
#include "nn/init.h"
#include "nn/layers.h"
#include "tensor/kernels.h"

namespace optinter {

namespace {
std::vector<size_t> AllPairIndices(const EncodedDataset& data) {
  std::vector<size_t> pairs(data.num_pairs());
  std::iota(pairs.begin(), pairs.end(), 0);
  return pairs;
}
}  // namespace

SearchModel::SearchModel(const EncodedDataset& data, const HyperParams& hp,
                         UpdateMode mode)
    : data_(data),
      mode_(mode),
      s1_(hp.embed_dim),
      s2_(hp.cross_embed_dim),
      fn_(hp.factorize_fn),
      fact_width_(FactorizedWidth(hp.factorize_fn, hp.embed_dim)),
      db_(std::max(FactorizedWidth(hp.factorize_fn, hp.embed_dim),
                   hp.cross_embed_dim)),
      tau_(hp.gumbel_temp_start),
      rng_(hp.seed),
      emb_(data, hp.embed_dim, hp.lr_orig, hp.l2_orig, &rng_,
           hp.orig_backend) {
  // Metadata-only datasets (vocab sizes without row payload) are fine.
  CHECK(!data.cross_vocab_sizes.empty()) << "search requires cross features";
  cross_emb_ = std::make_unique<CrossEmbedding>(
      data, AllPairIndices(data), s2_, hp.lr_cross, hp.l2_cross, &rng_,
      hp.cross_backend);
  cat_pairs_ = EnumeratePairs(data.num_categorical());

  alpha_.name = "arch/alpha";
  alpha_.Resize({data.num_pairs(), 3});
  // Near-uniform start with a tiny symmetric perturbation: pairs whose
  // gradients never separate the candidates resolve to an arbitrary
  // method, mirroring the paper's behaviour on uninformative pairs.
  UniformInit(&alpha_.value, -0.05, 0.05, &rng_);
  alpha_.lr = hp.lr_arch;
  alpha_.l2 = hp.l2_arch;
  arch_opt_.AddParam(&alpha_);

  MlpConfig cfg;
  cfg.hidden = hp.mlp_hidden;
  cfg.out_dim = 1;
  cfg.layer_norm = hp.layer_norm;
  cfg.lr = hp.lr_orig;
  cfg.l2 = hp.l2_orig;
  mlp_ = std::make_unique<Mlp>(
      "mlp", emb_.output_dim() + data.num_pairs() * db_, cfg, &rng_);
  mlp_->RegisterParams(&theta_opt_);
}

void SearchModel::SampleProbs(std::vector<float>* probs) {
  OPTINTER_TRACE_SPAN("gumbel_sample");
  const size_t num_pairs = data_.num_pairs();
  probs->resize(num_pairs * 3);
  float noisy[3];
  for (size_t p = 0; p < num_pairs; ++p) {
    const float* a = alpha_.value.row(p);
    for (int k = 0; k < 3; ++k) {
      noisy[k] = (a[k] + static_cast<float>(rng_.Gumbel())) / tau_;
    }
    Softmax(3, noisy, probs->data() + p * 3);
  }
}

void SearchModel::AssembleForward(const Batch& batch,
                                  const std::vector<float>& probs,
                                  ForwardContext* ctx) const {
  const size_t b = batch.size;
  const size_t emb_cols = ctx->emb_out.cols();
  const size_t num_pairs = data_.num_pairs();
  Tensor& z = ctx->z;
  z.Resize({b, emb_cols + num_pairs * db_});
  auto assemble = [&](size_t lo, size_t hi) {
    // Thread-local factorization scratch: per-thread so concurrent chunks
    // (and concurrent Predict calls) never race, and capacity survives
    // across steps so steady-state steps don't allocate.
    static thread_local std::vector<float> fact;
    fact.resize(fact_width_);
    for (size_t k = lo; k < hi; ++k) {
      float* zr = z.row(k);
      std::memcpy(zr, ctx->emb_out.row(k), emb_cols * sizeof(float));
      const float* e = ctx->emb_out.row(k);
      const float* cr = ctx->cross_out.row(k);
      float* blocks = zr + emb_cols;
      std::memset(blocks, 0, num_pairs * db_ * sizeof(float));
      for (size_t p = 0; p < num_pairs; ++p) {
        const float pm = probs[p * 3 + 0];
        const float pf = probs[p * 3 + 1];
        float* block = blocks + p * db_;
        const float* mem = cr + p * s2_;
        for (size_t t = 0; t < s2_; ++t) block[t] += pm * mem[t];
        const auto [i, j] = cat_pairs_[p];
        FactorizedForward(fn_, s1_, e + i * s1_, e + j * s1_, fact.data());
        for (size_t t = 0; t < fact_width_; ++t) {
          block[t] += pf * fact[t];
        }
        // Naïve candidate is the zero vector: contributes nothing.
      }
    }
  };
  {
    OPTINTER_TRACE_SPAN("z_assemble");
    // Rows write disjoint z rows → bit-identical to the serial loop.
    if (b * (emb_cols + num_pairs * db_) >= (1u << 15)) {
      ParallelForChunks(0, b, assemble, /*min_chunk=*/32);
    } else {
      assemble(0, b);
    }
  }
  mlp_->Forward(z, &ctx->mlp_out, &ctx->mlp);
  ctx->logits.resize(b);
  for (size_t k = 0; k < b; ++k) ctx->logits[k] = ctx->mlp_out.at(k, 0);
}

float SearchModel::ComputeForwardBackward(const Batch& batch,
                                          const PreparedBatch* prep) {
  SampleProbs(&probs_cache_);
  if (prep != nullptr) {
    emb_.ForwardPrepared(*prep, &ctx_.emb_out);
    cross_emb_->ForwardPrepared(prep->cross, prep->size, &ctx_.cross_out);
  } else {
    emb_.Forward(batch, &ctx_.emb_out);
    cross_emb_->Forward(batch, &ctx_.cross_out);
  }
  AssembleForward(batch, probs_cache_, &ctx_);
  const size_t b = batch.size;
  const float* labels;
  if (prep != nullptr) {
    labels = prep->labels.data();
  } else {
    labels_.resize(b);
    for (size_t k = 0; k < b; ++k) labels_[k] = batch.label(k);
    labels = labels_.data();
  }
  dlogits_.resize(b);
  const float loss = BceWithLogitsLoss(ctx_.logits.data(), labels, b,
                                       dlogits_.data());

  dmlp_out_.Resize({b, 1});
  for (size_t k = 0; k < b; ++k) dmlp_out_.at(k, 0) = dlogits_[k];
  mlp_->Backward(dmlp_out_, &dz_, &ctx_.mlp);

  const size_t emb_cols = ctx_.emb_out.cols();
  const size_t num_pairs = data_.num_pairs();
  demb_.Resize({b, emb_cols});
  dcross_.Resize({b, ctx_.cross_out.cols()});
  // d(loss)/d(candidate probability), accumulated over the batch.
  dp_.assign(num_pairs * 3, 0.0);
  // Per-row demb/dcross writes are disjoint; dp is a reduction over rows
  // accumulated into `dp_acc` (the shared vector on the serial path,
  // per-chunk partials on the parallel one).
  auto body = [&](size_t lo, size_t hi, double* dp_acc) {
    static thread_local std::vector<float> fact;
    fact.resize(fact_width_);
    for (size_t k = lo; k < hi; ++k) {
      const float* dzr = dz_.row(k);
      std::memcpy(demb_.row(k), dzr, emb_cols * sizeof(float));
      const float* e = ctx_.emb_out.row(k);
      const float* cr = ctx_.cross_out.row(k);
      float* de = demb_.row(k);
      float* dcr = dcross_.row(k);
      const float* dblocks = dzr + emb_cols;
      for (size_t p = 0; p < num_pairs; ++p) {
        const float pm = probs_cache_[p * 3 + 0];
        const float pf = probs_cache_[p * 3 + 1];
        const float* dblock = dblocks + p * db_;
        const float* mem = cr + p * s2_;
        float* dmem = dcr + p * s2_;
        double dpm = 0.0;
        for (size_t t = 0; t < s2_; ++t) {
          dpm += static_cast<double>(dblock[t]) * mem[t];
          dmem[t] = pm * dblock[t];
        }
        const auto [i, j] = cat_pairs_[p];
        const float* ei = e + i * s1_;
        const float* ej = e + j * s1_;
        FactorizedForward(fn_, s1_, ei, ej, fact.data());
        double dpf = 0.0;
        for (size_t t = 0; t < fact_width_; ++t) {
          dpf += static_cast<double>(dblock[t]) * fact[t];
        }
        FactorizedBackward(fn_, s1_, ei, ej, dblock, pf, de + i * s1_,
                           de + j * s1_);
        dp_acc[p * 3 + 0] += dpm;
        dp_acc[p * 3 + 1] += dpf;
        // dp for naïve stays 0: its candidate embedding is the zero vector.
      }
    }
  };
  {
    OPTINTER_TRACE_SPAN("interaction_bwd");
    const FixedChunks grid = MakeFixedChunks(b, /*min_chunk=*/32);
    if (b * (emb_cols + num_pairs * db_) >= (1u << 15) && grid.count > 1) {
      // Per-chunk dp partials merged in chunk order: the fixed grid keeps
      // the summation tree independent of the thread count.
      dp_partials_.assign(grid.count * num_pairs * 3, 0.0);
      ParallelForEachChunk(grid, [&](size_t i) {
        body(grid.lo(i), grid.hi(i),
             dp_partials_.data() + i * num_pairs * 3);
      });
      for (size_t i = 0; i < grid.count; ++i) {
        const double* part = dp_partials_.data() + i * num_pairs * 3;
        for (size_t idx = 0; idx < num_pairs * 3; ++idx) {
          dp_[idx] += part[idx];
        }
      }
    } else {
      body(0, b, dp_.data());
    }
  }

  // Softmax backward into the architecture logits:
  //   da_k = (1/τ) · p_k · (dp_k − Σ_l p_l · dp_l).
  {
    OPTINTER_TRACE_SPAN("alpha_bwd");
    for (size_t p = 0; p < num_pairs; ++p) {
      const float* pr = probs_cache_.data() + p * 3;
      const double* dpr = dp_.data() + p * 3;
      double weighted = 0.0;
      for (int k = 0; k < 3; ++k) weighted += pr[k] * dpr[k];
      float* da = alpha_.grad.row(p);
      for (int k = 0; k < 3; ++k) {
        da[k] += static_cast<float>(pr[k] * (dpr[k] - weighted) / tau_);
      }
    }
  }

  if (prep != nullptr) {
    emb_.BackwardPrepared(demb_, *prep);
    cross_emb_->BackwardPrepared(dcross_, prep->cross);
  } else {
    emb_.Backward(demb_);
    cross_emb_->Backward(dcross_);
  }
  return loss;
}

float SearchModel::TrainStep(const Batch& batch) {
  PrepareBatch(batch, &own_prep_);
  const float loss = ForwardBackward(own_prep_);
  ApplyGrads();
  return loss;
}

void SearchModel::PrepareBatch(const Batch& batch,
                               PreparedBatch* prep) const {
  OPTINTER_TRACE_SPAN("prepare_batch");
  prep->BeginFill(batch);
  emb_.Prepare(batch, prep);
  cross_emb_->Prepare(batch, &prep->dedup, &prep->cross);
}

float SearchModel::ForwardBackward(const PreparedBatch& prep) {
  OPTINTER_TRACE_SPAN("search_step");
  return ComputeForwardBackward(prep.AsBatch(), &prep);
}

void SearchModel::ApplyGrads() {
  OPTINTER_TRACE_SPAN("apply_grads");
  emb_.StepPrepared();
  cross_emb_->StepPrepared();
  theta_opt_.Step();
  theta_opt_.ZeroGrad();
  if (mode_ == UpdateMode::kJoint) arch_opt_.Step();
  arch_opt_.ZeroGrad();
}

float SearchModel::ArchStep(const Batch& batch) {
  OPTINTER_TRACE_SPAN("search_step");
  // α-only update on the legacy (unprepared) path: Θ gradients are
  // computed but discarded.
  const float loss = ComputeForwardBackward(batch, nullptr);
  emb_.ClearGrads();
  cross_emb_->ClearGrads();
  theta_opt_.ZeroGrad();
  arch_opt_.Step();
  arch_opt_.ZeroGrad();
  return loss;
}

void SearchModel::Predict(const Batch& batch, std::vector<float>* probs) {
  Predict(batch, probs, &ctx_);
}

void SearchModel::Predict(const Batch& batch, std::vector<float>* probs,
                          ForwardContext* ctx) const {
  // Noise-free expectation: p = softmax(α/τ).
  const size_t num_pairs = data_.num_pairs();
  std::vector<float> p(num_pairs * 3);
  float scaled[3];
  for (size_t q = 0; q < num_pairs; ++q) {
    const float* a = alpha_.value.row(q);
    for (int k = 0; k < 3; ++k) scaled[k] = a[k] / tau_;
    Softmax(3, scaled, p.data() + q * 3);
  }
  // Gather (not Forward): eval never scatters gradients, so the embedding
  // layers' batch-row caches stay untouched and concurrent calls with
  // distinct contexts share only immutable parameters.
  emb_.Gather(batch, &ctx->emb_out);
  cross_emb_->Gather(batch, &ctx->cross_out);
  AssembleForward(batch, p, ctx);
  probs->resize(batch.size);
  SigmoidForward(ctx->logits.data(), batch.size, probs->data());
}

void SearchModel::CollectState(std::vector<Tensor*>* out) {
  emb_.CollectState(out);
  cross_emb_->CollectState(out);
  for (DenseParam* p : theta_opt_.params()) out->push_back(&p->value);
  out->push_back(&alpha_.value);
}

size_t SearchModel::ParamCount() const {
  return emb_.ParamCount() + cross_emb_->ParamCount() +
         mlp_->ParamCount() + alpha_.size();
}

Architecture SearchModel::ExtractArchitecture() const {
  Architecture arch(data_.num_pairs());
  for (size_t p = 0; p < data_.num_pairs(); ++p) {
    const float* a = alpha_.value.row(p);
    int best = 0;
    for (int k = 1; k < 3; ++k) {
      if (a[k] > a[best]) best = k;
    }
    arch[p] = static_cast<InterMethod>(best);
  }
  return arch;
}

std::array<float, 3> SearchModel::PairProbabilities(size_t p) const {
  CHECK_LT(p, data_.num_pairs());
  const float* a = alpha_.value.row(p);
  float scaled[3];
  for (int k = 0; k < 3; ++k) scaled[k] = a[k] / tau_;
  std::array<float, 3> out;
  Softmax(3, scaled, out.data());
  return out;
}

}  // namespace optinter
