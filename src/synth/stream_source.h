// RowSource over the synthetic generator: rows are re-drawn from the RNG
// stream on every pass instead of being materialized, so a 50M-row
// encode's working set is the label bitmap plus one row.
//
// Labels need the whole logit vector (the bias is calibrated globally),
// so construction runs one generation pass that keeps only the logits,
// calibrates the bias, draws the labels, and drops the logits — after
// which each encode pass replays the feature stream via
// synth_internal::RowStream. Replay is bit-identical to GenerateSynthetic
// by construction: both consume the exact same draw sequence.

#pragma once

#include <vector>

#include "data/stream_encode.h"
#include "synth/generator.h"

namespace optinter {

class SynthRowSource : public RowSource {
 public:
  /// Runs the label-calibration pass (one full stream generation; O(rows)
  /// time, 8 bytes/row transient + 1 bit/row retained).
  explicit SynthRowSource(const SynthConfig& config);

  const DatasetSchema& schema() const override { return schema_; }
  size_t num_rows() const override { return config_.num_rows; }
  Status Restart() override;
  Status NextRow(int64_t* cat, float* cont, float* label) override;

 private:
  SynthConfig config_;
  DatasetSchema schema_;
  synth_internal::RowStream stream_;
  std::vector<uint8_t> label_bits_;  // 1 bit per row
  size_t next_ = 0;
};

}  // namespace optinter
