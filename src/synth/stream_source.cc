#include "synth/stream_source.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace optinter {

namespace {

DatasetSchema SynthSchema(const SynthConfig& config) {
  // Field naming must match GenerateSynthetic so both paths produce
  // interchangeable datasets.
  std::vector<FieldSpec> fields;
  fields.reserve(config.num_categorical() + config.num_continuous);
  for (size_t f = 0; f < config.num_categorical(); ++f) {
    fields.push_back({"cat" + std::to_string(f), FieldType::kCategorical});
  }
  for (size_t f = 0; f < config.num_continuous; ++f) {
    fields.push_back({"cont" + std::to_string(f), FieldType::kContinuous});
  }
  return DatasetSchema(std::move(fields));
}

}  // namespace

SynthRowSource::SynthRowSource(const SynthConfig& config)
    : config_(config), schema_(SynthSchema(config)), stream_(config_) {
  const size_t n = config_.num_rows;
  std::vector<int64_t> cat(config_.num_categorical());
  std::vector<float> cont(std::max<size_t>(config_.num_continuous, 1));
  std::vector<double> logits(n);
  for (size_t r = 0; r < n; ++r) {
    logits[r] = stream_.NextRow(cat.data(), cont.data());
  }

  // Same bias bisection as GenerateSynthetic.
  double lo = -30.0, hi = 30.0;
  for (int iter = 0; iter < 60; ++iter) {
    const double mid = 0.5 * (lo + hi);
    double mean = 0.0;
    for (double z : logits) {
      mean += 1.0 / (1.0 + std::exp(-(z + mid)));
    }
    mean /= static_cast<double>(n);
    if (mean < config_.target_pos_ratio) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const double bias = 0.5 * (lo + hi);

  // Label draws continue the feature stream's RNG, exactly as in
  // GenerateSynthetic.
  label_bits_.assign((n + 7) / 8, 0);
  Rng& rng = stream_.rng();
  for (size_t r = 0; r < n; ++r) {
    const double p = 1.0 / (1.0 + std::exp(-(logits[r] + bias)));
    if (rng.Bernoulli(p)) label_bits_[r / 8] |= uint8_t{1} << (r % 8);
  }

  stream_.Restart();
}

Status SynthRowSource::Restart() {
  stream_.Restart();
  next_ = 0;
  return Status::OK();
}

Status SynthRowSource::NextRow(int64_t* cat, float* cont, float* label) {
  if (next_ >= config_.num_rows) {
    return Status::OutOfRange("synthetic row source exhausted");
  }
  stream_.NextRow(cat, cont);
  *label = (label_bits_[next_ / 8] >> (next_ % 8)) & 1 ? 1.0f : 0.0f;
  ++next_;
  return Status::OK();
}

}  // namespace optinter
