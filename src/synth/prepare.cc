#include "synth/prepare.h"

namespace optinter {

PreparedDataset PrepareFromConfig(const SynthConfig& config,
                                  const PrepareOptions& options) {
  PreparedDataset out;
  out.config = config;
  RawDataset raw = GenerateSynthetic(out.config);
  Rng rng(out.config.seed ^ 0x5917715ULL);
  out.splits = MakeSplits(raw.num_rows, options.train_frac,
                          options.val_frac, &rng);
  auto encoded = EncodeDataset(raw, out.splits.train, options.encoder);
  CHECK(encoded.ok()) << encoded.status().ToString();
  out.data = std::move(encoded).value();
  if (options.build_cross) {
    CHECK_OK(BuildCrossFeatures(&out.data, out.splits.train,
                                options.encoder));
  }
  return out;
}

Result<PreparedDataset> PrepareProfile(const std::string& name,
                                       const PrepareOptions& options) {
  auto config = GetProfile(name);
  if (!config.ok()) return config.status();
  SynthConfig cfg = std::move(config).value();
  if (options.rows_scale != 1.0) ScaleRows(&cfg, options.rows_scale);
  return PrepareFromConfig(cfg, options);
}

}  // namespace optinter
