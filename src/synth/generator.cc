#include "synth/generator.h"

#include <algorithm>
#include <cmath>

#include "tensor/kernels.h"

namespace optinter {

std::vector<PlantedKind> SynthConfig::PlantedKinds() const {
  std::vector<PlantedKind> kinds(num_pairs(), PlantedKind::kNoise);
  const size_t m = num_categorical();
  for (const auto& [i, j] : factorize_pairs) {
    kinds[PairIndex(i, j, m)] = PlantedKind::kFactorize;
  }
  for (const auto& [i, j] : memorize_pairs) {
    kinds[PairIndex(i, j, m)] = PlantedKind::kMemorize;
  }
  return kinds;
}

namespace synth_internal {

double HashGaussian(uint64_t seed, uint64_t a, uint64_t b, uint64_t c,
                    uint64_t d) {
  // Mix the cell coordinates through SplitMix64 and approximate a standard
  // normal as the (scaled) sum of four uniforms (Irwin–Hall, variance 4/12).
  uint64_t key = seed;
  key = key * 0x9e3779b97f4a7c15ULL + a;
  key ^= key >> 29;
  key = key * 0xbf58476d1ce4e5b9ULL + b;
  key ^= key >> 31;
  key = key * 0x94d049bb133111ebULL + c;
  key ^= key >> 27;
  key = key * 0x2545f4914f6cdd1dULL + d;
  SplitMix64 sm(key);
  double s = 0.0;
  for (int k = 0; k < 4; ++k) {
    s += static_cast<double>(sm.Next() >> 11) * 0x1.0p-53;
  }
  return (s - 2.0) * std::sqrt(3.0);  // mean 0, variance 1
}

}  // namespace synth_internal

namespace {

using synth_internal::HashGaussian;

// Effect-family tags folded into the hash so the same (field, value) cell
// yields independent draws for different effect kinds.
constexpr uint64_t kUnaryTag = 0x11;
constexpr uint64_t kMemTag = 0x22;
constexpr uint64_t kFacTag = 0x33;
constexpr uint64_t kTripleTag = 0x44;

double UnaryEffect(const SynthConfig& cfg, size_t field, int64_t value) {
  return cfg.unary_scale *
         HashGaussian(cfg.seed, kUnaryTag, field, static_cast<uint64_t>(value), 0);
}

double MemorizeEffect(const SynthConfig& cfg, size_t i, size_t j,
                      int64_t vi, int64_t vj) {
  return cfg.memorize_scale *
         HashGaussian(cfg.seed, kMemTag ^ (i << 8) ^ (j << 20),
                      static_cast<uint64_t>(vi), static_cast<uint64_t>(vj),
                      1);
}

double FactorizeEffect(const SynthConfig& cfg, size_t i, size_t j,
                       int64_t vi, int64_t vj) {
  // ⟨a_i(v_i), a_j(v_j)⟩ with hash-derived rank-R latent vectors, scaled
  // so the dot product has roughly unit variance before factorize_scale.
  double dot = 0.0;
  for (size_t k = 0; k < cfg.factor_rank; ++k) {
    const double ai = HashGaussian(cfg.seed, kFacTag, i,
                                   static_cast<uint64_t>(vi), k);
    const double aj = HashGaussian(cfg.seed, kFacTag, j,
                                   static_cast<uint64_t>(vj), k);
    dot += ai * aj;
  }
  return cfg.factorize_scale * dot /
         std::sqrt(static_cast<double>(cfg.factor_rank));
}

double TripleEffect(const SynthConfig& cfg, const std::array<size_t, 3>& t,
                    int64_t vi, int64_t vj, int64_t vk) {
  const uint64_t tag =
      kTripleTag ^ (t[0] << 8) ^ (t[1] << 20) ^ (t[2] << 32);
  return cfg.triple_scale *
         HashGaussian(cfg.seed ^ tag, static_cast<uint64_t>(vi),
                      static_cast<uint64_t>(vj),
                      static_cast<uint64_t>(vk), 2);
}

}  // namespace

namespace synth_internal {

RowStream::RowStream(const SynthConfig& config)
    : config_(&config), rng_(config.seed) {
  CHECK_GE(config.num_categorical(), 2u);
  CHECK_GT(config.num_rows, 0u);
  for (const auto& [i, j] : config.memorize_pairs) {
    CHECK_LT(i, j);
    CHECK_LT(j, config.num_categorical());
  }
  for (const auto& [i, j] : config.factorize_pairs) {
    CHECK_LT(i, j);
    CHECK_LT(j, config.num_categorical());
  }
  for (const auto& t : config.memorize_triples) {
    CHECK_LT(t[0], t[1]);
    CHECK_LT(t[1], t[2]);
    CHECK_LT(t[2], config.num_categorical());
  }
  // Precompute zipf CDF tables per field for fast popularity-skewed draws.
  const size_t num_cat = config.num_categorical();
  cdfs_.resize(num_cat);
  for (size_t f = 0; f < num_cat; ++f) {
    const size_t v = config.cardinalities[f];
    CHECK_GT(v, 1u);
    cdfs_[f].resize(v);
    double total = 0.0;
    for (size_t k = 0; k < v; ++k) {
      total += 1.0 / std::pow(static_cast<double>(k + 1),
                              config.zipf_exponent);
      cdfs_[f][k] = total;
    }
    for (size_t k = 0; k < v; ++k) cdfs_[f][k] /= total;
  }
  ConsumeSetupDraws();
}

void RowStream::ConsumeSetupDraws() {
  // Random value permutation offset per field so "popular" raw ids are not
  // always the small integers (exercises vocab ordering independence).
  const size_t num_cat = config_->num_categorical();
  perm_salt_.resize(num_cat);
  for (size_t f = 0; f < num_cat; ++f) perm_salt_[f] = rng_.NextUint64();

  cont_weights_.resize(config_->num_continuous);
  for (size_t f = 0; f < config_->num_continuous; ++f) {
    cont_weights_[f] = rng_.Gaussian(0.0, config_->cont_scale);
  }
}

void RowStream::Restart() {
  // A fresh Rng also clears the Gaussian pair cache, which is part of the
  // draw-order contract.
  rng_ = Rng(config_->seed);
  ConsumeSetupDraws();
}

double RowStream::NextRow(int64_t* cat, float* cont) {
  const SynthConfig& config = *config_;
  double logit = 0.0;
  for (size_t f = 0; f < config.num_categorical(); ++f) {
    const auto& cdf = cdfs_[f];
    const double u = rng_.Uniform();
    const size_t rank = static_cast<size_t>(
        std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
    // Permute rank -> raw value deterministically within the field domain.
    const int64_t value = static_cast<int64_t>(
        (rank * 0x9e3779b97f4a7c15ULL + perm_salt_[f]) %
        config.cardinalities[f]);
    cat[f] = value;
    logit += UnaryEffect(config, f, value);
  }
  for (size_t f = 0; f < config.num_continuous; ++f) {
    const double u = rng_.Uniform();
    cont[f] = static_cast<float>(std::exp(3.0 * u));  // skewed raw scale
    logit += cont_weights_[f] * u;
  }
  double pair_sum = 0.0;
  double group_a = 0.0;  // alternate planted terms between two groups
  double group_b = 0.0;
  size_t planted_idx = 0;
  for (const auto& [i, j] : config.memorize_pairs) {
    const double t = MemorizeEffect(config, i, j, cat[i], cat[j]);
    pair_sum += t;
    ((planted_idx++ % 2 == 0) ? group_a : group_b) += t;
  }
  for (const auto& [i, j] : config.factorize_pairs) {
    const double t = FactorizeEffect(config, i, j, cat[i], cat[j]);
    pair_sum += t;
    ((planted_idx++ % 2 == 0) ? group_a : group_b) += t;
  }
  logit += pair_sum +
           config.synergy_scale * std::tanh(group_a) * std::tanh(group_b);
  for (const auto& t : config.memorize_triples) {
    logit += TripleEffect(config, t, cat[t[0]], cat[t[1]], cat[t[2]]);
  }
  logit += rng_.Gaussian(0.0, config.noise_scale);
  return logit;
}

}  // namespace synth_internal

RawDataset GenerateSynthetic(const SynthConfig& config) {
  const size_t num_cat = config.num_categorical();
  const size_t num_cont = config.num_continuous;

  RawDataset raw;
  std::vector<FieldSpec> fields;
  fields.reserve(num_cat + num_cont);
  for (size_t f = 0; f < num_cat; ++f) {
    fields.push_back({"cat" + std::to_string(f), FieldType::kCategorical});
  }
  for (size_t f = 0; f < num_cont; ++f) {
    fields.push_back({"cont" + std::to_string(f), FieldType::kContinuous});
  }
  raw.schema = DatasetSchema(std::move(fields));
  raw.num_rows = config.num_rows;
  raw.cat_values.resize(config.num_rows * num_cat);
  raw.cont_values.resize(config.num_rows * num_cont);
  raw.labels.resize(config.num_rows);

  // First pass: draw features and raw (uncalibrated) logits.
  synth_internal::RowStream stream(config);
  std::vector<double> logits(config.num_rows);
  for (size_t r = 0; r < config.num_rows; ++r) {
    logits[r] = stream.NextRow(raw.cat_values.data() + r * num_cat,
                               raw.cont_values.data() + r * num_cont);
  }

  // Calibrate a global bias so the mean click probability matches the
  // target positive ratio (bisection on a monotone function).
  double lo = -30.0, hi = 30.0;
  for (int iter = 0; iter < 60; ++iter) {
    const double mid = 0.5 * (lo + hi);
    double mean = 0.0;
    for (double z : logits) {
      mean += 1.0 / (1.0 + std::exp(-(z + mid)));
    }
    mean /= static_cast<double>(config.num_rows);
    if (mean < config.target_pos_ratio) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const double bias = 0.5 * (lo + hi);

  // The label pass continues the same RNG stream the rows came from.
  Rng& rng = stream.rng();
  for (size_t r = 0; r < config.num_rows; ++r) {
    const double p = 1.0 / (1.0 + std::exp(-(logits[r] + bias)));
    raw.labels[r] = rng.Bernoulli(p) ? 1.0f : 0.0f;
  }
  return raw;
}

}  // namespace optinter
