// One-call dataset preparation used by benches and examples:
// generate profile → split → fit/encode → (optionally) build cross
// features.

#pragma once

#include <string>

#include "common/status.h"
#include "data/batch.h"
#include "data/encoder.h"
#include "synth/profiles.h"

namespace optinter {

/// A fully-prepared experiment dataset.
struct PreparedDataset {
  SynthConfig config;
  EncodedDataset data;
  Splits splits;
};

/// Options for PrepareProfile.
struct PrepareOptions {
  /// Multiplier on the profile's row count (benches' quick/full knob).
  double rows_scale = 1.0;
  /// Build cross-product transformed features (needed by Poly2,
  /// OptInter-M and every search run).
  bool build_cross = true;
  /// Fractions (paper: 80% train+val / 20% test; val carved from train).
  double train_frac = 0.7;
  double val_frac = 0.1;
  EncoderOptions encoder;
};

/// Generates + encodes the named profile ("criteo_like", ..., "tiny").
Result<PreparedDataset> PrepareProfile(const std::string& name,
                                       const PrepareOptions& options = {});

/// Same, starting from an explicit generator config.
PreparedDataset PrepareFromConfig(const SynthConfig& config,
                                  const PrepareOptions& options = {});

}  // namespace optinter
