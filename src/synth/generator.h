// Synthetic multi-field CTR data with *planted* feature-interaction
// structure.
//
// Stand-in for the paper's Criteo / Avazu / iPinYou / Private datasets
// (Table II), which are either unavailable offline or too large for this
// substrate. The ground-truth click probability is
//
//   logit = bias + Σ_f  θ_f(v_f)                     (unary effects)
//               + Σ_f  w_f · u_f                     (continuous effects)
//               + Σ_(i,j)∈S_mem  T_ij(v_i, v_j)      (full-rank pair tables)
//               + Σ_(i,j)∈S_fac  ⟨a_i(v_i), a_j(v_j)⟩ (low-rank pair terms)
//               + ε
//
// Pairs in S_mem carry signal that is NOT factorizable from per-value
// latent vectors (an i.i.d. random table is full rank with probability 1),
// so the memorized method is required to capture it; pairs in S_fac are
// exactly rank-`factor_rank` and are captured by factorized modelling;
// all remaining pairs are independent of the label, so the naïve method is
// optimal for them. This reproduces the mechanism behind the paper's
// findings (OptInter-M strongest baseline; OptInter matches it with far
// fewer parameters by memorizing only S_mem).
//
// All per-value effects are hash-derived (no tables stored), so huge
// Device_ID-like cardinalities cost nothing to plant.

#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "data/dataset.h"

namespace optinter {

/// Which planted mechanism (if any) a pair carries; used as ground truth
/// by tests and the interpretability benches.
enum class PlantedKind { kNoise = 0, kFactorize = 1, kMemorize = 2 };

/// Full generator specification; profiles.h provides per-dataset presets.
struct SynthConfig {
  std::string name = "synthetic";
  uint64_t seed = 1;

  size_t num_rows = 10000;
  /// Raw cardinality per categorical field; length = #categorical fields.
  std::vector<size_t> cardinalities;
  size_t num_continuous = 0;
  /// Popularity skew of value draws (zipf exponent; > 0 for head-heavy).
  double zipf_exponent = 1.05;

  /// Planted pairs, as (i, j) positions among categorical fields, i < j.
  std::vector<std::pair<size_t, size_t>> memorize_pairs;
  std::vector<std::pair<size_t, size_t>> factorize_pairs;
  /// Planted third-order effects (i < j < k): full-rank random tables
  /// over value triples, capturable only by third-order memorization.
  std::vector<std::array<size_t, 3>> memorize_triples;
  double triple_scale = 1.0;
  /// Rank of planted factorized terms.
  size_t factor_rank = 4;

  /// Effect scales.
  double unary_scale = 0.35;
  double cont_scale = 0.4;
  double memorize_scale = 0.9;
  double factorize_scale = 0.9;
  double noise_scale = 0.25;
  /// Strength of a non-additive synergy between the two halves of the
  /// planted pairs: logit += synergy_scale · tanh(sum_A) · tanh(sum_B).
  /// A product of effect groups is representable by a deep classifier
  /// over the interaction embeddings but by no shallow additive model
  /// (LR / Poly2 / FM), preserving the paper's deep-over-shallow
  /// ordering. (A monotone distortion would not do: AUC is invariant to
  /// monotone transforms of the logit.)
  double synergy_scale = 2.5;

  /// Desired Bernoulli positive ratio; the bias is calibrated to hit it.
  double target_pos_ratio = 0.2;

  /// Ground-truth kind of each pair in canonical pair order.
  std::vector<PlantedKind> PlantedKinds() const;
  size_t num_categorical() const { return cardinalities.size(); }
  size_t num_pairs() const {
    const size_t m = num_categorical();
    return m * (m - 1) / 2;
  }
};

/// Generates the dataset. Deterministic in config.seed.
RawDataset GenerateSynthetic(const SynthConfig& config);

namespace synth_internal {
/// Hash-derived approximately-N(0,1) value for an effect cell; exposed for
/// tests (distributional checks).
double HashGaussian(uint64_t seed, uint64_t a, uint64_t b, uint64_t c,
                    uint64_t d);

/// Row-at-a-time view of the generator's RNG stream. GenerateSynthetic is
/// implemented on top of this, and the streaming encoder uses it to
/// produce rows without materializing the dataset: the draw order is part
/// of the generator's determinism contract, so a RowStream replay is
/// bit-identical to the in-RAM pass at the same seed.
///
/// `config` must outlive the stream.
class RowStream {
 public:
  explicit RowStream(const SynthConfig& config);

  /// Draws the next row: fills `cat` (num_categorical values) and `cont`
  /// (num_continuous raw values) and returns the row's uncalibrated logit,
  /// planted noise included.
  double NextRow(int64_t* cat, float* cont);

  /// Rewinds to row 0; the feature/logit stream replays bit-identically.
  void Restart();

  /// The underlying stream, positioned after the rows drawn so far. The
  /// label pass continues drawing from it (Bernoulli per row).
  Rng& rng() { return rng_; }

 private:
  void ConsumeSetupDraws();

  const SynthConfig* config_;
  Rng rng_;
  std::vector<std::vector<double>> cdfs_;
  std::vector<uint64_t> perm_salt_;
  std::vector<double> cont_weights_;
};
}  // namespace synth_internal

}  // namespace optinter
