#include "synth/profiles.h"

#include <algorithm>

#include "common/rng.h"
#include "data/schema.h"

namespace optinter {

namespace {

// Deterministically plants n_mem memorize-only and n_fac factorize-only
// pairs by shuffling the canonical pair list with the config seed.
void AssignPlantedPairs(SynthConfig* cfg, size_t n_mem, size_t n_fac) {
  auto pairs = EnumeratePairs(cfg->num_categorical());
  CHECK_GE(pairs.size(), n_mem + n_fac);
  Rng rng(cfg->seed ^ 0xfeedfacecafebeefULL);
  rng.Shuffle(&pairs);
  cfg->memorize_pairs.assign(pairs.begin(), pairs.begin() + n_mem);
  cfg->factorize_pairs.assign(pairs.begin() + n_mem,
                              pairs.begin() + n_mem + n_fac);
}

}  // namespace

SynthConfig CriteoLikeConfig() {
  SynthConfig cfg;
  cfg.name = "criteo_like";
  cfg.seed = 20220601;
  cfg.num_rows = 60000;
  // Large zipf-skewed vocabularies, as in real CTR traffic: most
  // cross-product values are rare, so memorization only pays off where a
  // pair carries genuine joint signal concentrated in head combinations.
  cfg.cardinalities = {8000, 5000, 3000, 2000, 1200, 800, 500,
                       300,  200,  120,  80,   50,   30};
  cfg.zipf_exponent = 1.15;
  cfg.num_continuous = 4;
  cfg.target_pos_ratio = 0.23;
  AssignPlantedPairs(&cfg, /*n_mem=*/12, /*n_fac=*/20);
  return cfg;
}

SynthConfig AvazuLikeConfig() {
  SynthConfig cfg;
  cfg.name = "avazu_like";
  cfg.seed = 20220602;
  cfg.num_rows = 60000;
  // First field plays the paper's Device_ID: far more distinct values than
  // any other field, so crosses involving it dominate the model size
  // (the paper's §III-B observation on Avazu).
  cfg.cardinalities = {30000, 8000, 4000, 2000, 1200, 800, 500, 300,
                       200,   120,  80,   50};
  cfg.zipf_exponent = 1.15;
  cfg.num_continuous = 0;
  cfg.target_pos_ratio = 0.17;
  AssignPlantedPairs(&cfg, /*n_mem=*/10, /*n_fac=*/14);
  return cfg;
}

SynthConfig IpinyouLikeConfig() {
  SynthConfig cfg;
  cfg.name = "ipinyou_like";
  cfg.seed = 20220603;
  cfg.num_rows = 50000;
  cfg.cardinalities = {6000, 3000, 1500, 800, 400, 250, 150, 80, 50, 30};
  cfg.zipf_exponent = 1.1;
  cfg.num_continuous = 0;
  cfg.target_pos_ratio = 0.08;
  AssignPlantedPairs(&cfg, /*n_mem=*/5, /*n_fac=*/8);
  return cfg;
}

SynthConfig PrivateLikeConfig() {
  SynthConfig cfg;
  cfg.name = "private_like";
  cfg.seed = 20220604;
  cfg.num_rows = 70000;
  cfg.cardinalities = {10000, 4000, 1500, 800, 400, 200, 100, 60, 30};
  cfg.zipf_exponent = 1.15;
  cfg.num_continuous = 0;
  cfg.target_pos_ratio = 0.17;
  AssignPlantedPairs(&cfg, /*n_mem=*/6, /*n_fac=*/10);
  return cfg;
}

SynthConfig TinyConfig() {
  SynthConfig cfg;
  cfg.name = "tiny";
  cfg.seed = 7;
  cfg.num_rows = 6000;
  cfg.cardinalities = {50, 30, 20, 12, 8, 6};
  cfg.num_continuous = 1;
  cfg.target_pos_ratio = 0.3;
  AssignPlantedPairs(&cfg, /*n_mem=*/2, /*n_fac=*/3);
  return cfg;
}

SynthConfig Criteo3LikeConfig() {
  SynthConfig cfg = CriteoLikeConfig();
  cfg.name = "criteo3_like";
  // Plant third-order structure among mid-cardinality fields so the
  // triple crosses are frequent enough to survive OOV thresholding.
  cfg.memorize_triples = {{6, 8, 10}, {7, 9, 11}};
  cfg.triple_scale = 1.2;
  return cfg;
}

Result<SynthConfig> GetProfile(const std::string& name) {
  if (name == "criteo3_like") return Criteo3LikeConfig();
  if (name == "criteo_like") return CriteoLikeConfig();
  if (name == "avazu_like") return AvazuLikeConfig();
  if (name == "ipinyou_like") return IpinyouLikeConfig();
  if (name == "private_like") return PrivateLikeConfig();
  if (name == "tiny") return TinyConfig();
  return Status::NotFound("unknown dataset profile '" + name + "'");
}

std::vector<std::string> PaperProfileNames() {
  return {"criteo_like", "avazu_like", "ipinyou_like", "private_like"};
}

void ScaleRows(SynthConfig* config, double factor) {
  CHECK_GT(factor, 0.0);
  config->num_rows = std::max<size_t>(
      1000, static_cast<size_t>(config->num_rows * factor));
}

}  // namespace optinter
