// Per-dataset generator presets mirroring the shape of the paper's four
// datasets (Table II), scaled to CPU-trainable size. EXPERIMENTS.md
// documents the scaling factors.

#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "synth/generator.h"

namespace optinter {

/// Criteo-like: continuous + categorical mix, pos ratio 0.23.
SynthConfig CriteoLikeConfig();

/// Avazu-like: categorical only, one huge Device_ID-like field,
/// pos ratio 0.17.
SynthConfig AvazuLikeConfig();

/// iPinYou-like: categorical only, rare positives (scaled up from the
/// paper's 0.0008 to 0.03 so tens-of-thousands of rows still contain
/// enough positives to learn from).
SynthConfig IpinyouLikeConfig();

/// Private-like: 9 categorical fields (paper's Huawei App Store data).
SynthConfig PrivateLikeConfig();

/// Tiny profile for unit tests and the quickstart example.
SynthConfig TinyConfig();

/// criteo_like plus planted third-order effects, for the higher-order
/// extension bench (bench_ext_third_order).
SynthConfig Criteo3LikeConfig();

/// Look up a profile by name ("criteo_like", "avazu_like", "ipinyou_like",
/// "private_like", "tiny").
Result<SynthConfig> GetProfile(const std::string& name);

/// All four paper-analogue profile names, in the paper's table order.
std::vector<std::string> PaperProfileNames();

/// Scales a profile's row count by `factor` (benches' --rows-scale knob).
void ScaleRows(SynthConfig* config, double factor);

}  // namespace optinter
