// Binary tensor / model / architecture persistence.
//
// Format (little-endian):
//   magic "OPTI" | u32 version | u64 tensor count |
//   per tensor: u32 ndim | u64 dims[ndim] | f32 data[prod(dims)]
//
// Model checkpoints reuse CtrModel::CollectState: the same non-owning
// tensor list that drives best-checkpoint restore also defines the
// on-disk state, so every model gets save/load for free. Loading
// validates shapes against the receiving model — the receiver must be
// constructed with the same dataset, hyper-parameters and architecture.

#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "models/interaction.h"
#include "models/model.h"
#include "tensor/tensor.h"

namespace optinter {

/// Writes tensors to `path`. Overwrites existing files.
Status SaveTensors(const std::string& path,
                   const std::vector<const Tensor*>& tensors);

/// Reads tensors from `path` into the given (pre-shaped) tensors.
/// The ENTIRE file is validated first — magic, version, tensor count,
/// every shape, and the exact byte length — so a truncated, corrupt, or
/// configuration-mismatched checkpoint fails with a clear message and the
/// output tensors completely untouched. Safe to call on a live model: on
/// error the previous weights remain intact.
Status LoadTensors(const std::string& path,
                   const std::vector<Tensor*>& tensors);

/// Saves every trainable tensor of `model`.
Status SaveModel(CtrModel* model, const std::string& path);

/// Restores a checkpoint into `model`; the model must have been
/// constructed identically to the one that saved it.
Status LoadModel(CtrModel* model, const std::string& path);

/// Saves a searched architecture as a text file: one
/// "pair_index method_name" line per pair, so results are
/// human-inspectable and diffable.
Status SaveArchitecture(const Architecture& arch, const std::string& path);

/// Loads an architecture saved by SaveArchitecture.
Result<Architecture> LoadArchitecture(const std::string& path);

}  // namespace optinter
