#include "io/serialize.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace optinter {

namespace {

constexpr char kMagic[4] = {'O', 'P', 'T', 'I'};
constexpr uint32_t kVersion = 1;

template <typename T>
void WritePod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

}  // namespace

Status SaveTensors(const std::string& path,
                   const std::vector<const Tensor*>& tensors) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open '" + path + "' for write");
  out.write(kMagic, sizeof(kMagic));
  WritePod(out, kVersion);
  WritePod(out, static_cast<uint64_t>(tensors.size()));
  for (const Tensor* t : tensors) {
    CHECK(t != nullptr);
    WritePod(out, static_cast<uint32_t>(t->ndim()));
    for (size_t d : t->shape()) {
      WritePod(out, static_cast<uint64_t>(d));
    }
    out.write(reinterpret_cast<const char*>(t->data()),
              static_cast<std::streamsize>(t->size() * sizeof(float)));
  }
  if (!out) return Status::IoError("short write to '" + path + "'");
  return Status::OK();
}

Status LoadTensors(const std::string& path,
                   const std::vector<Tensor*>& tensors) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open '" + path + "'");
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Invalid("'" + path + "' is not an OptInter checkpoint");
  }
  uint32_t version = 0;
  if (!ReadPod(in, &version) || version != kVersion) {
    return Status::Invalid(
        StrFormat("unsupported checkpoint version %u", version));
  }
  uint64_t count = 0;
  if (!ReadPod(in, &count)) return Status::IoError("truncated header");
  if (count != tensors.size()) {
    return Status::Invalid(StrFormat(
        "checkpoint holds %llu tensors, model expects %zu",
        static_cast<unsigned long long>(count), tensors.size()));
  }
  for (size_t i = 0; i < tensors.size(); ++i) {
    Tensor* t = tensors[i];
    CHECK(t != nullptr);
    uint32_t ndim = 0;
    if (!ReadPod(in, &ndim)) return Status::IoError("truncated tensor");
    std::vector<size_t> shape(ndim);
    for (uint32_t d = 0; d < ndim; ++d) {
      uint64_t dim = 0;
      if (!ReadPod(in, &dim)) return Status::IoError("truncated shape");
      shape[d] = static_cast<size_t>(dim);
    }
    if (shape != t->shape()) {
      return Status::Invalid(StrFormat(
          "tensor %zu shape mismatch: checkpoint %s vs model %s", i,
          Tensor(shape).ShapeString().c_str(), t->ShapeString().c_str()));
    }
    in.read(reinterpret_cast<char*>(t->data()),
            static_cast<std::streamsize>(t->size() * sizeof(float)));
    if (!in) return Status::IoError("truncated tensor data");
  }
  return Status::OK();
}

Status SaveModel(CtrModel* model, const std::string& path) {
  CHECK(model != nullptr);
  std::vector<Tensor*> state;
  model->CollectState(&state);
  if (state.empty()) {
    return Status::FailedPrecondition(
        model->Name() + " exposes no state to checkpoint");
  }
  std::vector<const Tensor*> const_state(state.begin(), state.end());
  return SaveTensors(path, const_state);
}

Status LoadModel(CtrModel* model, const std::string& path) {
  CHECK(model != nullptr);
  std::vector<Tensor*> state;
  model->CollectState(&state);
  if (state.empty()) {
    return Status::FailedPrecondition(
        model->Name() + " exposes no state to checkpoint");
  }
  return LoadTensors(path, state);
}

Status SaveArchitecture(const Architecture& arch, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("cannot open '" + path + "' for write");
  for (size_t p = 0; p < arch.size(); ++p) {
    out << p << " " << InterMethodName(arch[p]) << "\n";
  }
  if (!out) return Status::IoError("short write to '" + path + "'");
  return Status::OK();
}

Result<Architecture> LoadArchitecture(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open '" + path + "'");
  Architecture arch;
  std::string line;
  size_t expected = 0;
  while (std::getline(in, line)) {
    std::string_view trimmed = Trim(line);
    if (trimmed.empty()) continue;
    std::istringstream is{std::string(trimmed)};
    size_t index = 0;
    std::string method;
    if (!(is >> index >> method)) {
      return Status::Invalid("malformed architecture line: '" + line + "'");
    }
    if (index != expected) {
      return Status::Invalid(
          StrFormat("architecture lines out of order at %zu", index));
    }
    if (method == "memorize") {
      arch.push_back(InterMethod::kMemorize);
    } else if (method == "factorize") {
      arch.push_back(InterMethod::kFactorize);
    } else if (method == "naive") {
      arch.push_back(InterMethod::kNaive);
    } else {
      return Status::Invalid("unknown method '" + method + "'");
    }
    ++expected;
  }
  if (arch.empty()) return Status::Invalid("empty architecture file");
  return arch;
}

}  // namespace optinter
