#include "io/serialize.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace optinter {

namespace {

constexpr char kMagic[4] = {'O', 'P', 'T', 'I'};
constexpr uint32_t kVersion = 1;

template <typename T>
void WritePod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

}  // namespace

Status SaveTensors(const std::string& path,
                   const std::vector<const Tensor*>& tensors) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open '" + path + "' for write");
  out.write(kMagic, sizeof(kMagic));
  WritePod(out, kVersion);
  WritePod(out, static_cast<uint64_t>(tensors.size()));
  for (const Tensor* t : tensors) {
    CHECK(t != nullptr);
    WritePod(out, static_cast<uint32_t>(t->ndim()));
    for (size_t d : t->shape()) {
      WritePod(out, static_cast<uint64_t>(d));
    }
    out.write(reinterpret_cast<const char*>(t->data()),
              static_cast<std::streamsize>(t->size() * sizeof(float)));
  }
  if (!out) return Status::IoError("short write to '" + path + "'");
  return Status::OK();
}

namespace {

/// "[d0, d1, ...]" without constructing a Tensor — a corrupt checkpoint
/// can claim absurd dims, and building a Tensor just to print them would
/// try to allocate them.
std::string FormatShape(const std::vector<size_t>& shape) {
  std::string s = "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) s += ", ";
    s += std::to_string(shape[i]);
  }
  s += "]";
  return s;
}

}  // namespace

Status LoadTensors(const std::string& path,
                   const std::vector<Tensor*>& tensors) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open '" + path + "'");
  in.seekg(0, std::ios::end);
  const uint64_t file_size = static_cast<uint64_t>(in.tellg());
  in.seekg(0, std::ios::beg);

  // Pass 1 — validate the ENTIRE file (magic, version, tensor count,
  // every shape, and the exact payload size) before touching a single
  // model weight. A truncated, corrupted, or field-config-mismatched
  // checkpoint must fail cleanly with the model untouched, never leave it
  // half-overwritten with garbage.
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Invalid("'" + path + "' is not an OptInter checkpoint");
  }
  uint32_t version = 0;
  if (!ReadPod(in, &version)) {
    return Status::Invalid("'" + path + "' truncated in header");
  }
  if (version != kVersion) {
    return Status::Invalid(StrFormat(
        "'%s' has unsupported checkpoint version %u (this build reads %u)",
        path.c_str(), version, kVersion));
  }
  uint64_t count = 0;
  if (!ReadPod(in, &count)) {
    return Status::Invalid("'" + path + "' truncated in header");
  }
  if (count != tensors.size()) {
    return Status::Invalid(StrFormat(
        "'%s' holds %llu tensors but the model expects %zu — checkpoint "
        "was written by a model with a different architecture or feature "
        "configuration",
        path.c_str(), static_cast<unsigned long long>(count),
        tensors.size()));
  }
  // A serialized shape can legitimately have at most a handful of dims;
  // anything larger means the stream is garbage, not a real tensor.
  constexpr uint32_t kMaxDims = 8;
  std::vector<uint64_t> data_offsets(tensors.size());
  std::vector<size_t> shape;
  for (size_t i = 0; i < tensors.size(); ++i) {
    Tensor* t = tensors[i];
    CHECK(t != nullptr);
    uint32_t ndim = 0;
    if (!ReadPod(in, &ndim)) {
      return Status::Invalid(
          StrFormat("'%s' truncated before tensor %zu of %zu", path.c_str(),
                    i, tensors.size()));
    }
    if (ndim == 0 || ndim > kMaxDims) {
      return Status::Invalid(StrFormat(
          "'%s' tensor %zu claims %u dimensions — corrupt checkpoint",
          path.c_str(), i, ndim));
    }
    shape.assign(ndim, 0);
    for (uint32_t d = 0; d < ndim; ++d) {
      uint64_t dim = 0;
      if (!ReadPod(in, &dim)) {
        return Status::Invalid(StrFormat(
            "'%s' truncated in tensor %zu shape", path.c_str(), i));
      }
      shape[d] = static_cast<size_t>(dim);
    }
    if (shape != t->shape()) {
      return Status::Invalid(StrFormat(
          "'%s' tensor %zu shape mismatch: checkpoint %s vs model %s — "
          "checkpoint was written against a different field configuration",
          path.c_str(), i, FormatShape(shape).c_str(),
          t->ShapeString().c_str()));
    }
    const uint64_t bytes = static_cast<uint64_t>(t->size()) * sizeof(float);
    data_offsets[i] = static_cast<uint64_t>(in.tellg());
    if (data_offsets[i] + bytes > file_size) {
      return Status::Invalid(StrFormat(
          "'%s' truncated: tensor %zu needs %llu data bytes at offset "
          "%llu but the file ends at %llu",
          path.c_str(), i, static_cast<unsigned long long>(bytes),
          static_cast<unsigned long long>(data_offsets[i]),
          static_cast<unsigned long long>(file_size)));
    }
    in.seekg(static_cast<std::streamoff>(bytes), std::ios::cur);
  }
  if (static_cast<uint64_t>(in.tellg()) != file_size) {
    return Status::Invalid(StrFormat(
        "'%s' has %llu trailing bytes after the last tensor — corrupt or "
        "mismatched checkpoint",
        path.c_str(),
        static_cast<unsigned long long>(
            file_size - static_cast<uint64_t>(in.tellg()))));
  }

  // Pass 2 — the whole file checked out; now (and only now) overwrite the
  // model's weights.
  for (size_t i = 0; i < tensors.size(); ++i) {
    Tensor* t = tensors[i];
    in.seekg(static_cast<std::streamoff>(data_offsets[i]), std::ios::beg);
    in.read(reinterpret_cast<char*>(t->data()),
            static_cast<std::streamsize>(t->size() * sizeof(float)));
    if (!in) {
      return Status::IoError(
          StrFormat("'%s' read failed at tensor %zu after validation — "
                    "file changed mid-load?",
                    path.c_str(), i));
    }
  }
  return Status::OK();
}

Status SaveModel(CtrModel* model, const std::string& path) {
  CHECK(model != nullptr);
  std::vector<Tensor*> state;
  model->CollectState(&state);
  if (state.empty()) {
    return Status::FailedPrecondition(
        model->Name() + " exposes no state to checkpoint");
  }
  std::vector<const Tensor*> const_state(state.begin(), state.end());
  return SaveTensors(path, const_state);
}

Status LoadModel(CtrModel* model, const std::string& path) {
  CHECK(model != nullptr);
  std::vector<Tensor*> state;
  model->CollectState(&state);
  if (state.empty()) {
    return Status::FailedPrecondition(
        model->Name() + " exposes no state to checkpoint");
  }
  return LoadTensors(path, state);
}

Status SaveArchitecture(const Architecture& arch, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("cannot open '" + path + "' for write");
  for (size_t p = 0; p < arch.size(); ++p) {
    out << p << " " << InterMethodName(arch[p]) << "\n";
  }
  if (!out) return Status::IoError("short write to '" + path + "'");
  return Status::OK();
}

Result<Architecture> LoadArchitecture(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open '" + path + "'");
  Architecture arch;
  std::string line;
  size_t expected = 0;
  while (std::getline(in, line)) {
    std::string_view trimmed = Trim(line);
    if (trimmed.empty()) continue;
    std::istringstream is{std::string(trimmed)};
    size_t index = 0;
    std::string method;
    if (!(is >> index >> method)) {
      return Status::Invalid("malformed architecture line: '" + line + "'");
    }
    if (index != expected) {
      return Status::Invalid(
          StrFormat("architecture lines out of order at %zu", index));
    }
    if (method == "memorize") {
      arch.push_back(InterMethod::kMemorize);
    } else if (method == "factorize") {
      arch.push_back(InterMethod::kFactorize);
    } else if (method == "naive") {
      arch.push_back(InterMethod::kNaive);
    } else {
      return Status::Invalid("unknown method '" + method + "'");
    }
    ++expected;
  }
  if (arch.empty()) return Status::Invalid("empty architecture file");
  return arch;
}

}  // namespace optinter
