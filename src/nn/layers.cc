#include "nn/layers.h"

#include <cmath>

#include "common/thread_pool.h"
#include "obs/trace.h"
#include "nn/init.h"
#include "tensor/kernels.h"

namespace optinter {

namespace {
// Element count above which the forward elementwise/per-row loops fan out
// across the pool (disjoint writes keep them bit-identical to serial).
constexpr size_t kParallelElems = 1u << 15;
}  // namespace

Linear::Linear(std::string name, size_t in_dim, size_t out_dim, float lr,
               float l2, Rng* rng)
    : in_dim_(in_dim), out_dim_(out_dim) {
  weight.name = name + "/weight";
  weight.Resize({out_dim, in_dim});
  weight.lr = lr;
  weight.l2 = l2;
  XavierUniform(&weight.value, in_dim, out_dim, rng);
  bias.name = name + "/bias";
  bias.Resize({out_dim});
  bias.lr = lr;
  bias.l2 = 0.0f;  // biases are conventionally not decayed
}

void Linear::Forward(const Tensor& x, Tensor* y) {
  OPTINTER_TRACE_SPAN("linear_fwd");
  CHECK_EQ(x.cols(), in_dim_);
  x_cache_ = x;
  y->Resize({x.rows(), out_dim_});
  GemmNT(x.data(), weight.value.data(), y->data(), x.rows(), in_dim_,
         out_dim_);
  for (size_t r = 0; r < y->rows(); ++r) {
    float* yr = y->row(r);
    const float* b = bias.value.data();
    for (size_t j = 0; j < out_dim_; ++j) yr[j] += b[j];
  }
}

void Linear::Backward(const Tensor& dy, Tensor* dx) {
  OPTINTER_TRACE_SPAN("linear_bwd");
  CHECK_EQ(dy.cols(), out_dim_);
  CHECK_EQ(dy.rows(), x_cache_.rows());
  // dW[out×in] += dy^T x  : GemmTN with A=dy [B×out], B=x [B×in].
  GemmTN(dy.data(), x_cache_.data(), weight.grad.data(), dy.rows(),
         out_dim_, in_dim_, 1.0f, 1.0f);
  // db += column sums of dy.
  float* db = bias.grad.data();
  for (size_t r = 0; r < dy.rows(); ++r) {
    const float* dyr = dy.row(r);
    for (size_t j = 0; j < out_dim_; ++j) db[j] += dyr[j];
  }
  if (dx != nullptr) {
    // dx[B×in] = dy[B×out] * W[out×in].
    dx->Resize({dy.rows(), in_dim_});
    GemmNN(dy.data(), weight.value.data(), dx->data(), dy.rows(), out_dim_,
           in_dim_);
  }
}

void Linear::RegisterParams(Optimizer* opt) {
  opt->AddParam(&weight);
  opt->AddParam(&bias);
}

void Relu::Forward(const Tensor& x, Tensor* y) {
  y->Resize(x.shape());
  mask_.Resize(x.shape());
  auto body = [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      const bool pos = x[i] > 0.0f;
      (*y)[i] = pos ? x[i] : 0.0f;
      mask_[i] = pos ? 1.0f : 0.0f;
    }
  };
  if (x.size() >= kParallelElems) {
    ParallelForChunks(0, x.size(), body, /*min_chunk=*/4096);
  } else {
    body(0, x.size());
  }
}

void Relu::Backward(const Tensor& dy, Tensor* dx) {
  CHECK(dy.SameShape(mask_));
  dx->Resize(dy.shape());
  for (size_t i = 0; i < dy.size(); ++i) (*dx)[i] = dy[i] * mask_[i];
}

LayerNorm::LayerNorm(std::string name, size_t dim, float lr, float l2)
    : dim_(dim) {
  gamma.name = name + "/gamma";
  gamma.Resize({dim});
  gamma.value.Fill(1.0f);
  gamma.lr = lr;
  gamma.l2 = l2;
  beta.name = name + "/beta";
  beta.Resize({dim});
  beta.lr = lr;
  beta.l2 = 0.0f;
}

void LayerNorm::Forward(const Tensor& x, Tensor* y) {
  OPTINTER_TRACE_SPAN("layernorm_fwd");
  CHECK_EQ(x.cols(), dim_);
  const size_t batch = x.rows();
  y->Resize({batch, dim_});
  xhat_cache_.Resize({batch, dim_});
  inv_std_cache_.Resize({batch});
  const float* g = gamma.value.data();
  const float* b = beta.value.data();
  auto body = [&](size_t lo, size_t hi) {
    for (size_t r = lo; r < hi; ++r) {
      const float* xr = x.row(r);
      float mean = Sum(dim_, xr) / static_cast<float>(dim_);
      float var = 0.0f;
      for (size_t j = 0; j < dim_; ++j) {
        const float d = xr[j] - mean;
        var += d * d;
      }
      var /= static_cast<float>(dim_);
      const float inv_std = 1.0f / std::sqrt(var + kEps);
      inv_std_cache_[r] = inv_std;
      float* xh = xhat_cache_.row(r);
      float* yr = y->row(r);
      for (size_t j = 0; j < dim_; ++j) {
        xh[j] = (xr[j] - mean) * inv_std;
        yr[j] = xh[j] * g[j] + b[j];
      }
    }
  };
  if (batch * dim_ >= kParallelElems) {
    ParallelForChunks(0, batch, body, /*min_chunk=*/64);
  } else {
    body(0, batch);
  }
}

void LayerNorm::Backward(const Tensor& dy, Tensor* dx) {
  OPTINTER_TRACE_SPAN("layernorm_bwd");
  CHECK_EQ(dy.cols(), dim_);
  const size_t batch = dy.rows();
  CHECK_EQ(batch, xhat_cache_.rows());
  dx->Resize({batch, dim_});
  const float* g = gamma.value.data();
  float* dg = gamma.grad.data();
  float* db = beta.grad.data();
  const float inv_n = 1.0f / static_cast<float>(dim_);
  for (size_t r = 0; r < batch; ++r) {
    const float* dyr = dy.row(r);
    const float* xh = xhat_cache_.row(r);
    const float inv_std = inv_std_cache_[r];
    float sum_dxhat = 0.0f;
    float sum_dxhat_xhat = 0.0f;
    for (size_t j = 0; j < dim_; ++j) {
      const float dxhat = dyr[j] * g[j];
      sum_dxhat += dxhat;
      sum_dxhat_xhat += dxhat * xh[j];
      dg[j] += dyr[j] * xh[j];
      db[j] += dyr[j];
    }
    float* dxr = dx->row(r);
    for (size_t j = 0; j < dim_; ++j) {
      const float dxhat = dyr[j] * g[j];
      dxr[j] = inv_std *
               (dxhat - inv_n * sum_dxhat - xh[j] * inv_n * sum_dxhat_xhat);
    }
  }
}

void LayerNorm::RegisterParams(Optimizer* opt) {
  opt->AddParam(&gamma);
  opt->AddParam(&beta);
}

float BceWithLogitsLoss(const float* logits, const float* labels, size_t n,
                        float* dlogits) {
  CHECK_GT(n, 0u);
  double total = 0.0;
  const float inv_n = 1.0f / static_cast<float>(n);
  for (size_t i = 0; i < n; ++i) {
    const float z = logits[i];
    const float y = labels[i];
    total += std::max(z, 0.0f) - z * y + std::log1p(std::exp(-std::fabs(z)));
    dlogits[i] = (SigmoidScalar(z) - y) * inv_n;
  }
  return static_cast<float>(total / static_cast<double>(n));
}

void SigmoidForward(const float* z, size_t n, float* out) {
  for (size_t i = 0; i < n; ++i) out[i] = SigmoidScalar(z[i]);
}

}  // namespace optinter
