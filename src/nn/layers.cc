#include "nn/layers.h"

#include <cmath>

#include "common/thread_pool.h"
#include "obs/trace.h"
#include "nn/init.h"
#include "tensor/aligned.h"
#include "tensor/dispatch.h"
#include "tensor/kernels.h"
#include "tensor/simd.h"

namespace optinter {

namespace {
// Element count above which the elementwise/per-row loops fan out across
// the pool. Forward loops write disjoint elements (bit-identical to serial
// under any chunking); backward reductions use fixed chunk grids so the
// summation tree depends only on the shape.
constexpr size_t kParallelElems = 1u << 15;

constexpr size_t kL = simd::kLanes;
}  // namespace

Linear::Linear(std::string name, size_t in_dim, size_t out_dim, float lr,
               float l2, Rng* rng)
    : in_dim_(in_dim), out_dim_(out_dim) {
  weight.name = name + "/weight";
  weight.Resize({out_dim, in_dim});
  weight.lr = lr;
  weight.l2 = l2;
  XavierUniform(&weight.value, in_dim, out_dim, rng);
  bias.name = name + "/bias";
  bias.Resize({out_dim});
  bias.lr = lr;
  bias.l2 = 0.0f;  // biases are conventionally not decayed
}

void Linear::Forward(const Tensor& x, Tensor* y, LinearWorkspace* ws) const {
  OPTINTER_TRACE_SPAN("linear_fwd");
  CHECK_EQ(x.cols(), in_dim_);
  ws->x_cache = x;
  y->Resize({x.rows(), out_dim_});
  GemmNT(x.data(), weight.value.data(), y->data(), x.rows(), in_dim_,
         out_dim_);
  const float* b = bias.value.data();
  const size_t out_dim = out_dim_;
  auto add_bias = [&](size_t lo, size_t hi) {
    for (size_t r = lo; r < hi; ++r) {
      float* yr = y->row(r);
      size_t j = 0;
      for (; j + kL <= out_dim; j += kL) {
        simd::StoreU(yr + j,
                     simd::Add(simd::LoadU(yr + j), simd::LoadU(b + j)));
      }
      for (; j < out_dim; ++j) yr[j] += b[j];
    }
  };
  if (y->size() >= kParallelElems) {
    ParallelForChunks(0, y->rows(), add_bias, /*min_chunk=*/64);
  } else {
    add_bias(0, y->rows());
  }
}

void Linear::Backward(const Tensor& dy, Tensor* dx,
                      const LinearWorkspace& ws) {
  OPTINTER_TRACE_SPAN("linear_bwd");
  CHECK_EQ(dy.cols(), out_dim_);
  CHECK_EQ(dy.rows(), ws.x_cache.rows());
  // dW[out×in] += dy^T x  : GemmTN with A=dy [B×out], B=x [B×in].
  GemmTN(dy.data(), ws.x_cache.data(), weight.grad.data(), dy.rows(),
         out_dim_, in_dim_, 1.0f, 1.0f);
  // db += column sums of dy — a reduction over rows. The fixed chunk grid
  // and chunk-ordered merge keep the sum bit-identical at any thread
  // count (the path choice depends only on the shape).
  const size_t rows = dy.rows();
  const size_t out_dim = out_dim_;
  float* db = bias.grad.data();
  auto col_sums = [&](size_t lo, size_t hi, float* acc) {
    for (size_t r = lo; r < hi; ++r) {
      const float* dyr = dy.row(r);
      size_t j = 0;
      for (; j + kL <= out_dim; j += kL) {
        simd::StoreU(acc + j,
                     simd::Add(simd::LoadU(acc + j), simd::LoadU(dyr + j)));
      }
      for (; j < out_dim; ++j) acc[j] += dyr[j];
    }
  };
  const FixedChunks grid = MakeFixedChunks(rows, /*min_chunk=*/64);
  if (dy.size() >= kParallelElems && grid.count > 1) {
    // Caller-thread-local partial buffer: assign() reuses capacity, so
    // steady-state steps don't allocate. Workers must write the CALLER's
    // buffer, and lambdas don't capture thread_locals (each worker would
    // silently get its own empty vector) — hence the hoisted pointer.
    static thread_local AlignedVector<float> partials_tls;
    partials_tls.assign(grid.count * out_dim_, 0.0f);
    float* const partials = partials_tls.data();
    ParallelForEachChunk(grid, [&, partials](size_t i) {
      col_sums(grid.lo(i), grid.hi(i), partials + i * out_dim_);
    });
    for (size_t i = 0; i < grid.count; ++i) {
      const float* p = partials + i * out_dim_;
      for (size_t j = 0; j < out_dim_; ++j) db[j] += p[j];
    }
  } else {
    col_sums(0, rows, db);
  }
  if (dx != nullptr) {
    // dx[B×in] = dy[B×out] * W[out×in].
    dx->Resize({dy.rows(), in_dim_});
    GemmNN(dy.data(), weight.value.data(), dx->data(), dy.rows(), out_dim_,
           in_dim_);
  }
}

void Linear::RegisterParams(Optimizer* opt) {
  opt->AddParam(&weight);
  opt->AddParam(&bias);
}

void Relu::Forward(const Tensor& x, Tensor* y, ReluWorkspace* ws) const {
  y->Resize(x.shape());
  ws->mask.Resize(x.shape());
  Tensor& mask = ws->mask;
  const float* xp = x.data();
  auto body = [&](size_t lo, size_t hi) {
    float* yp = y->data();
    float* mp = mask.data();
    const simd::VecF zero = simd::Zero();
    const simd::VecF one = simd::Set1(1.0f);
    size_t i = lo;
    // The vector and scalar forms are exact (compare + select), so an
    // element's bits never depend on which side of a group boundary it
    // lands on — chunking stays bit-invariant.
    for (; i + kL <= hi; i += kL) {
      const simd::VecF xv = simd::LoadU(xp + i);
      const simd::VecF pos = simd::GtMask(xv, zero);
      simd::StoreU(yp + i, simd::Select(pos, xv, zero));
      simd::StoreU(mp + i, simd::And(pos, one));
    }
    for (; i < hi; ++i) {
      const bool pos = xp[i] > 0.0f;
      yp[i] = pos ? xp[i] : 0.0f;
      mp[i] = pos ? 1.0f : 0.0f;
    }
  };
  if (x.size() >= kParallelElems) {
    ParallelForChunks(0, x.size(), body, /*min_chunk=*/4096);
  } else {
    body(0, x.size());
  }
}

void Relu::Backward(const Tensor& dy, Tensor* dx,
                    const ReluWorkspace& ws) const {
  OPTINTER_TRACE_SPAN("relu_bwd");
  const Tensor& mask = ws.mask;
  CHECK(dy.SameShape(mask));
  dx->Resize(dy.shape());
  const float* dyp = dy.data();
  const float* mp = mask.data();
  auto body = [&](size_t lo, size_t hi) {
    float* dxp = dx->data();
    size_t i = lo;
    for (; i + kL <= hi; i += kL) {
      simd::StoreU(dxp + i,
                   simd::Mul(simd::LoadU(dyp + i), simd::LoadU(mp + i)));
    }
    for (; i < hi; ++i) dxp[i] = dyp[i] * mp[i];
  };
  // Disjoint elementwise writes; a single multiply rounds identically in
  // vector and scalar form, so the fan-out is bit-identical to serial
  // under any chunking.
  if (dy.size() >= kParallelElems) {
    ParallelForChunks(0, dy.size(), body, /*min_chunk=*/4096);
  } else {
    body(0, dy.size());
  }
}

LayerNorm::LayerNorm(std::string name, size_t dim, float lr, float l2)
    : dim_(dim) {
  gamma.name = name + "/gamma";
  gamma.Resize({dim});
  gamma.value.Fill(1.0f);
  gamma.lr = lr;
  gamma.l2 = l2;
  beta.name = name + "/beta";
  beta.Resize({dim});
  beta.lr = lr;
  beta.l2 = 0.0f;
}

void LayerNorm::Forward(const Tensor& x, Tensor* y,
                        LayerNormWorkspace* ws) const {
  OPTINTER_TRACE_SPAN("layernorm_fwd");
  CHECK_EQ(x.cols(), dim_);
  const size_t batch = x.rows();
  const size_t dim = dim_;
  y->Resize({batch, dim_});
  ws->xhat.Resize({batch, dim_});
  ws->inv_std.Resize({batch});
  Tensor& xhat = ws->xhat;
  Tensor& inv_std_cache = ws->inv_std;
  const float* g = gamma.value.data();
  const float* b = beta.value.data();
  // Rows are whole per chunk and each row's reductions use a vector-group
  // layout that depends only on dim_, so results are chunking-invariant.
  auto body = [&](size_t lo, size_t hi) {
    for (size_t r = lo; r < hi; ++r) {
      const float* xr = x.row(r);
      const float mean = Sum(dim, xr) / static_cast<float>(dim);
      const simd::VecF mean_v = simd::Set1(mean);
      simd::VecF vacc = simd::Zero();
      size_t j = 0;
      for (; j + kL <= dim; j += kL) {
        const simd::VecF d = simd::Sub(simd::LoadU(xr + j), mean_v);
        vacc = simd::MulAdd(d, d, vacc);
      }
      float var = simd::ReduceAdd(vacc);
      for (; j < dim; ++j) {
        const float d = xr[j] - mean;
        var = simd::MulAddScalar(d, d, var);
      }
      var /= static_cast<float>(dim);
      const float inv_std = 1.0f / std::sqrt(var + kEps);
      inv_std_cache[r] = inv_std;
      const simd::VecF is_v = simd::Set1(inv_std);
      float* xh = xhat.row(r);
      float* yr = y->row(r);
      j = 0;
      for (; j + kL <= dim; j += kL) {
        const simd::VecF xhv =
            simd::Mul(simd::Sub(simd::LoadU(xr + j), mean_v), is_v);
        simd::StoreU(xh + j, xhv);
        simd::StoreU(yr + j,
                     simd::MulAdd(xhv, simd::LoadU(g + j), simd::LoadU(b + j)));
      }
      for (; j < dim; ++j) {
        xh[j] = (xr[j] - mean) * inv_std;
        yr[j] = simd::MulAddScalar(xh[j], g[j], b[j]);
      }
    }
  };
  if (batch * dim_ >= kParallelElems) {
    ParallelForChunks(0, batch, body, /*min_chunk=*/64);
  } else {
    body(0, batch);
  }
}

void LayerNorm::Backward(const Tensor& dy, Tensor* dx,
                         const LayerNormWorkspace& ws) {
  OPTINTER_TRACE_SPAN("layernorm_bwd");
  CHECK_EQ(dy.cols(), dim_);
  const size_t batch = dy.rows();
  const size_t dim = dim_;
  CHECK_EQ(batch, ws.xhat.rows());
  dx->Resize({batch, dim_});
  const float* g = gamma.value.data();
  float* dg = gamma.grad.data();
  float* db = beta.grad.data();
  const float inv_n = 1.0f / static_cast<float>(dim_);
  // Per-row dx writes are disjoint; dgamma/dbeta are reductions over rows
  // accumulated into `dg_acc`/`db_acc` (the shared grads on the serial
  // path, per-chunk partials on the parallel one).
  auto body = [&](size_t lo, size_t hi, float* dg_acc, float* db_acc) {
    for (size_t r = lo; r < hi; ++r) {
      const float* dyr = dy.row(r);
      const float* xh = ws.xhat.row(r);
      const float inv_std = ws.inv_std[r];
      simd::VecF sum1_v = simd::Zero();  // Σ dxhat
      simd::VecF sum2_v = simd::Zero();  // Σ dxhat·xhat
      size_t j = 0;
      for (; j + kL <= dim; j += kL) {
        const simd::VecF dyv = simd::LoadU(dyr + j);
        const simd::VecF xhv = simd::LoadU(xh + j);
        const simd::VecF dxhat = simd::Mul(dyv, simd::LoadU(g + j));
        sum1_v = simd::Add(sum1_v, dxhat);
        sum2_v = simd::MulAdd(dxhat, xhv, sum2_v);
        simd::StoreU(dg_acc + j,
                     simd::MulAdd(dyv, xhv, simd::LoadU(dg_acc + j)));
        simd::StoreU(db_acc + j, simd::Add(simd::LoadU(db_acc + j), dyv));
      }
      float sum_dxhat = simd::ReduceAdd(sum1_v);
      float sum_dxhat_xhat = simd::ReduceAdd(sum2_v);
      for (; j < dim; ++j) {
        const float dxhat = dyr[j] * g[j];
        sum_dxhat += dxhat;
        sum_dxhat_xhat = simd::MulAddScalar(dxhat, xh[j], sum_dxhat_xhat);
        dg_acc[j] = simd::MulAddScalar(dyr[j], xh[j], dg_acc[j]);
        db_acc[j] += dyr[j];
      }
      const float c1 = inv_n * sum_dxhat;
      const float c2 = inv_n * sum_dxhat_xhat;
      const simd::VecF c1_v = simd::Set1(c1);
      const simd::VecF c2_v = simd::Set1(c2);
      const simd::VecF is_v = simd::Set1(inv_std);
      float* dxr = dx->row(r);
      j = 0;
      for (; j + kL <= dim; j += kL) {
        const simd::VecF dxhat =
            simd::Mul(simd::LoadU(dyr + j), simd::LoadU(g + j));
        const simd::VecF t = simd::Sub(
            simd::Sub(dxhat, c1_v), simd::Mul(simd::LoadU(xh + j), c2_v));
        simd::StoreU(dxr + j, simd::Mul(is_v, t));
      }
      for (; j < dim; ++j) {
        const float dxhat = dyr[j] * g[j];
        dxr[j] = inv_std * ((dxhat - c1) - xh[j] * c2);
      }
    }
  };
  const FixedChunks grid = MakeFixedChunks(batch, /*min_chunk=*/64);
  if (batch * dim_ >= kParallelElems && grid.count > 1) {
    // Per-chunk gradient partials merged in chunk order: the fixed grid
    // keeps the summation tree — and therefore every bit of dg/db —
    // independent of the thread count. Caller-thread-local so capacity
    // survives across steps (zero-allocation contract); the pointer is
    // hoisted because lambdas don't capture thread_locals and workers must
    // write the caller's buffer, not their own.
    static thread_local AlignedVector<float> partials_tls;
    partials_tls.assign(grid.count * 2 * dim_, 0.0f);
    float* const partials = partials_tls.data();
    ParallelForEachChunk(grid, [&, partials](size_t i) {
      float* p = partials + i * 2 * dim_;
      body(grid.lo(i), grid.hi(i), p, p + dim_);
    });
    for (size_t i = 0; i < grid.count; ++i) {
      const float* p = partials + i * 2 * dim_;
      for (size_t j = 0; j < dim_; ++j) {
        dg[j] += p[j];
        db[j] += p[dim_ + j];
      }
    }
  } else {
    body(0, batch, dg, db);
  }
}

void LayerNorm::RegisterParams(Optimizer* opt) {
  opt->AddParam(&gamma);
  opt->AddParam(&beta);
}

float BceWithLogitsLoss(const float* logits, const float* labels, size_t n,
                        float* dlogits) {
  CHECK_GT(n, 0u);
  double total = 0.0;
  const float inv_n = 1.0f / static_cast<float>(n);
  for (size_t i = 0; i < n; ++i) {
    const float z = logits[i];
    const float y = labels[i];
    total += std::max(z, 0.0f) - z * y + std::log1p(std::exp(-std::fabs(z)));
    dlogits[i] = (SigmoidScalar(z) - y) * inv_n;
  }
  return static_cast<float>(total / static_cast<double>(n));
}

void SigmoidForward(const float* z, size_t n, float* out) {
  // The element math lives in the dispatch table's sigmoid range kernel
  // (gemm_body.inc): every element — including the sub-vector remainder
  // of a chunk — goes through the selected backend's lane function via a
  // zero-padded tail vector, so chunk boundaries (which depend on the
  // pool size) cannot affect any element's bits and the fan-out below
  // stays bit-identical to serial. (On the scalar backend the lane
  // function IS SigmoidScalar, bit for bit.)
  const KernelTable& table = ActiveKernels();
  auto body = [&table, z, out](size_t lo, size_t hi) {
    table.sigmoid(z + lo, hi - lo, out + lo);
  };
  if (n >= kParallelElems) {
    ParallelForChunks(0, n, body, /*min_chunk=*/4096);
  } else {
    body(0, n);
  }
}

}  // namespace optinter
