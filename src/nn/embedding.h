// Embedding table with lazy sparse-Adam updates.
//
// CTR embedding tables (especially the cross-product tables E^m of the
// memorized method) hold the overwhelming majority of model parameters;
// per-step dense moment updates would dominate training cost. Gradients
// are therefore accumulated only for rows touched by the current batch,
// and the Adam update runs over exactly those rows (sparse Adam: moments
// of untouched rows are left stale, bias correction uses the table-global
// step count).

#pragma once

#include <array>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "nn/optimizer.h"
#include "tensor/tensor.h"

namespace optinter {

/// One [vocab × dim] embedding table with sparse-Adam state.
class EmbeddingTable {
 public:
  /// Creates a zeroed table; call Init() to randomize.
  EmbeddingTable(std::string name, size_t vocab_size, size_t dim,
                 float lr, float l2);

  /// Initializes entries with N(0, stddev); the conventional small-variance
  /// embedding init used by CTR models.
  void Init(Rng* rng, double stddev = 0.01);

  /// Read-only pointer to the embedding row of `id`.
  const float* Row(int32_t id) const {
    CHECK_GE(id, 0);
    CHECK_LT(static_cast<size_t>(id), vocab_size_);
    return value_.data() + static_cast<size_t>(id) * dim_;
  }

  /// Mutable row pointer (tests / manual surgery).
  float* MutableRow(int32_t id) {
    CHECK_GE(id, 0);
    CHECK_LT(static_cast<size_t>(id), vocab_size_);
    return value_.data() + static_cast<size_t>(id) * dim_;
  }

  /// Number of id-keyed gradient shards. Fixed (never a function of the
  /// thread count), so shard contents — and therefore the optimizer step —
  /// are identical however the scatter was parallelized.
  static constexpr size_t kGradShards = 4;

  /// Shard owning `id`'s gradient slot.
  static size_t ShardOf(int32_t id) {
    return static_cast<size_t>(static_cast<uint32_t>(id)) % kGradShards;
  }

  /// Adds `grad` (length dim) into the sparse gradient slot for `id`.
  void AccumulateGrad(int32_t id, const float* grad) {
    AccumulateGradInShard(ShardOf(id), id, grad);
  }

  /// Shard-targeted accumulate: `shard` must equal ShardOf(id). Concurrent
  /// calls are safe iff they target distinct shards — the id-bucketed
  /// sharding used by the parallel embedding scatter (each task owns one
  /// (table, shard) bucket and scans the batch rows in order, so every
  /// id's accumulation order matches the serial loop bit for bit).
  void AccumulateGradInShard(size_t shard, int32_t id, const float* grad);

  /// Applies one sparse-Adam step over the rows touched since the last
  /// step, then clears the touched set.
  void SparseAdamStep(const AdamConfig& config = {});

  // --- Prepared (pre-deduped) gradient scatter -------------------------
  //
  // The phase-split TrainStep (DESIGN.md) dedupes each batch's ids during
  // PrepareBatch, before any weights are read. The backward pass then
  // scatters into a flat slot-addressed buffer sized by the unique-id
  // count — no hashing, no per-new-id allocation — and the optimizer
  // walks (unique_ids, slots) directly. Buffer capacity is retained
  // across steps, so steady-state steps allocate nothing. The prepared
  // path and the legacy AccumulateGrad path share the same Adam state and
  // step counter and produce bit-identical updates (each touched id is
  // updated exactly once from its summed gradient, and per-id updates are
  // independent, so iteration order is immaterial).

  /// Starts a prepared scatter over `count` unique ids. `unique_ids` must
  /// stay valid until the matching SparseAdamStepPrepared/
  /// ClearPreparedGrads. Zeroes (and if needed grows) the slot buffer.
  void BeginPreparedScatter(const int32_t* unique_ids, size_t count) {
    prep_ids_ = unique_ids;
    prep_count_ = count;
    prep_grads_.assign(count * dim_, 0.0f);
  }

  /// Adds `grad` (length dim) into slot `slot` — the dedup index assigned
  /// to the target id during PrepareBatch. Concurrent calls are safe iff
  /// they target ids of distinct shards (same contract as
  /// AccumulateGradInShard; slots of different ids never alias).
  void AccumulatePreparedGrad(size_t slot, const float* grad) {
    float* dst = prep_grads_.data() + slot * dim_;
    for (size_t i = 0; i < dim_; ++i) dst[i] += grad[i];
  }

  /// Fused scale-and-accumulate: slot += grad * scale. Used by continuous
  /// feature tables, whose gradient is d_out scaled by the feature value.
  void AccumulatePreparedGradScaled(size_t slot, const float* grad,
                                    float scale) {
    float* dst = prep_grads_.data() + slot * dim_;
    for (size_t i = 0; i < dim_; ++i) dst[i] += grad[i] * scale;
  }

  /// Sparse-Adam step over the prepared slots (same math/state as
  /// SparseAdamStep), then ends the prepared scatter keeping capacity.
  void SparseAdamStepPrepared(const AdamConfig& config = {});

  /// Ends a prepared scatter without updating (keeps capacity).
  void ClearPreparedGrads() {
    prep_ids_ = nullptr;
    prep_count_ = 0;
    prep_grads_.clear();
  }

  /// Prepared gradient slot (length dim) for `slot` (tests/diagnostics).
  const float* PreparedGrad(size_t slot) const {
    CHECK_LT(slot, prep_count_);
    return prep_grads_.data() + slot * dim_;
  }

  /// Applies plain SGD over touched rows (used in gradient-check tests).
  void SparseSgdStep();

  /// Discards accumulated gradients without updating.
  void ClearGrads();

  /// Accumulated gradient slot (length dim) for `id`, or nullptr if the
  /// id is untouched since the last step/clear (tests / diagnostics).
  const float* AccumulatedGrad(int32_t id) const;

  /// Raw value tensor (checkpoint snapshot/restore).
  Tensor& mutable_values() { return value_; }
  const Tensor& values() const { return value_; }

  size_t vocab_size() const { return vocab_size_; }
  size_t dim() const { return dim_; }
  const std::string& name() const { return name_; }
  size_t ParamCount() const { return vocab_size_ * dim_; }
  size_t touched_count() const;

  float lr = 1e-3f;
  float l2 = 0.0f;

 private:
  // Sparse gradient accumulator for one id shard: touched row ids
  // (deduped) and their gradient rows, parallel arrays. Ids land in shard
  // ShardOf(id), so shards never share an id and tasks owning distinct
  // shards can accumulate without synchronization.
  struct GradShard {
    std::unordered_map<int32_t, size_t> index;
    std::vector<int32_t> ids;
    std::vector<float> grads;
  };

  std::string name_;
  size_t vocab_size_;
  size_t dim_;
  Tensor value_;
  Tensor m_;
  Tensor v_;
  int64_t step_ = 0;
  std::array<GradShard, kGradShards> shards_;

  // Prepared-scatter state (see BeginPreparedScatter). The id list is
  // owned by the caller's PreparedBatch; only the slot buffer lives here.
  const int32_t* prep_ids_ = nullptr;
  size_t prep_count_ = 0;
  std::vector<float> prep_grads_;
};

}  // namespace optinter
