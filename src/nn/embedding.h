// Embedding table with pluggable storage backends and lazy sparse-Adam.
//
// CTR embedding tables (especially the cross-product tables E^m of the
// memorized method) hold the overwhelming majority of model parameters;
// per-step dense moment updates would dominate training cost. Gradients
// are therefore accumulated only for rows touched by the current batch,
// and the Adam update runs over exactly those rows (sparse Adam: moments
// of untouched rows are left stale, bias correction uses the table-global
// step count).
//
// Storage backends (DESIGN.md §12). A table always owns ONE backing
// tensor of [BackingRows() × dim] rows; backends differ only in how a
// logical id maps onto backing rows:
//
//  * kDense — identity: backing row == logical id. The seed behavior.
//  * kQR — quotient–remainder compositional rows (Shi et al., "QR trick"):
//    row(id) = combine(Q[id / r], R[num_q + id % r]) with combine either
//    element-wise sum or element-wise product. Memory is num_q + r rows
//    (≈ 2·sqrt(vocab) at the default r = ceil(sqrt(vocab))) instead of
//    vocab rows. Q rows occupy backing [0, num_q), R rows
//    [num_q, num_q + r) — the two spaces are disjoint, which is what
//    keeps the sharded gradient scatter deterministic (see below).
//  * kTiered — frequency-tiered rows: the top-K hot ids each own a
//    private backing row; every other (cold) id shares one of B hashed
//    bucket rows via ShardStableHash64(id, salt) % B. The hot set comes
//    from the encoder's Misra-Gries frequency stats (shard MANIFEST), an
//    exact scan of the construction dataset, or — matching the hashed
//    encoder's id layout, where ids 1..K are the most frequent values —
//    the fallback hot set {1..K}.
//
// Determinism with shared backing rows: gradient shards are keyed on the
// BACKING row, not the logical id, so two logical ids that collide on a
// backing row (QR remainder reuse, tiered bucket sharing) accumulate into
// one slot in ascending batch-row order — exactly the serial order — and
// the optimizer updates that row once per step from the summed gradient.
// Q-space and R-space backing rows are disjoint, so a backing row only
// ever receives primary-part or secondary-part contributions, never an
// interleaving of both.

#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "nn/optimizer.h"
#include "tensor/tensor.h"

namespace optinter {

/// Storage backend of an EmbeddingTable.
enum class EmbeddingBackendKind : uint8_t { kDense = 0, kQR = 1, kTiered = 2 };

/// How a QR table combines its quotient and remainder rows.
enum class QrCombine : uint8_t { kSum = 0, kMul = 1 };

const char* EmbeddingBackendKindName(EmbeddingBackendKind kind);

/// Per-table backend selection + knobs. Default-constructed = dense (the
/// seed behavior). Zero-valued knobs mean "derive from the vocab size".
struct EmbeddingBackendConfig {
  EmbeddingBackendKind kind = EmbeddingBackendKind::kDense;

  /// Tables with vocab below this stay dense when the config is applied
  /// through ResolveBackendForVocab (compressing tiny tables saves
  /// nothing and costs AUC). Applied at the embedding-layer level, not by
  /// the EmbeddingTable constructor, which honors the config literally.
  size_t min_vocab = 16;

  /// QR remainder count r. 0 = ceil(sqrt(vocab)), the memory-optimal
  /// square split.
  size_t qr_rem = 0;
  QrCombine qr_combine = QrCombine::kSum;

  /// Tiered: private rows for the top `tier_hot` ids and `tier_buckets`
  /// shared rows for the cold tail. 0 = vocab/16 each (≥ 1), an 8×
  /// row reduction.
  size_t tier_hot = 0;
  size_t tier_buckets = 0;
  /// Salt for the cold-tail bucket hash (ShardStableHash64).
  uint64_t tier_salt = 0x0e17b3d5u;
  /// Explicit hot ids (frequency-ranked, most frequent first). Empty =
  /// derive: dataset frequency stats if available, else ids 1..K (the
  /// hashed encoder places the most frequent values there).
  std::vector<int32_t> tier_hot_ids;

  /// Hot-row count a tiered table of `vocab_size` ids would use — the
  /// vocab/16 default rule, shared with tier-plan builders that need to
  /// know how many ranked ids to collect.
  size_t ResolvedTierHot(size_t vocab_size) const {
    return tier_hot != 0 ? tier_hot
                         : (vocab_size < 16 ? size_t{1} : vocab_size / 16);
  }

  static EmbeddingBackendConfig Dense() { return {}; }
  static EmbeddingBackendConfig QR(size_t rem = 0,
                                   QrCombine combine = QrCombine::kSum) {
    EmbeddingBackendConfig c;
    c.kind = EmbeddingBackendKind::kQR;
    c.qr_rem = rem;
    c.qr_combine = combine;
    return c;
  }
  static EmbeddingBackendConfig Tiered(size_t hot = 0, size_t buckets = 0,
                                       std::vector<int32_t> hot_ids = {}) {
    EmbeddingBackendConfig c;
    c.kind = EmbeddingBackendKind::kTiered;
    c.tier_hot = hot;
    c.tier_buckets = buckets;
    c.tier_hot_ids = std::move(hot_ids);
    return c;
  }
};

/// Applies a layer-level backend policy to one table's vocab: tables
/// below policy.min_vocab stay dense, and a dense policy is overridden by
/// the OPTINTER_EMBED_BACKEND environment variable ("qr" / "qr_sum",
/// "qr_mul", "tiered") — the CI drop-in-parity hook that flips every
/// sizeable embedding-layer table to a compositional backend. Raw
/// EmbeddingTable construction (LR/FM/Poly2 weight stores, unit tests)
/// never goes through this resolution and is unaffected.
EmbeddingBackendConfig ResolveBackendForVocab(
    const EmbeddingBackendConfig& policy, size_t vocab_size);

/// One [vocab × dim] logical embedding table with sparse-Adam state,
/// stored through the configured backend.
class EmbeddingTable {
 public:
  /// Creates a zeroed table; call Init() to randomize. The config is
  /// honored literally (apply ResolveBackendForVocab first for
  /// min-vocab/env-policy resolution).
  EmbeddingTable(std::string name, size_t vocab_size, size_t dim, float lr,
                 float l2, EmbeddingBackendConfig config = {});

  /// Initializes backing entries with N(0, stddev); the conventional
  /// small-variance embedding init used by CTR models. QR-mul tables use
  /// sqrt(stddev) per factor so the combined row keeps magnitude ~stddev.
  void Init(Rng* rng, double stddev = 0.01);

  /// Read-only pointer to the single backing row of `id`. Valid for
  /// dense and tiered backends (tiered: cold ids alias their bucket row);
  /// QR rows are composed on the fly and have no backing pointer — use
  /// CopyRow.
  const float* Row(int32_t id) const {
    CheckId(id, "Row");
    CHECK(kind_ != EmbeddingBackendKind::kQR)
        << "embedding table '" << name_ << "': Row(" << id
        << ") on a QR backend — QR rows are composed from quotient and "
           "remainder factors and have no single backing row; use "
           "CopyRow(id, dst)";
    return value_.data() + static_cast<size_t>(PrimaryRowOf(id)) * dim_;
  }

  /// Mutable row pointer (tests / manual surgery). Same backend
  /// restrictions as Row; tiered cold ids alias their shared bucket row.
  float* MutableRow(int32_t id) {
    return const_cast<float*>(Row(id));
  }

  /// Materializes the embedding row of `id` into dst[0:dim] — the one
  /// gather primitive every backend supports (dense/tiered: copy; QR:
  /// combine the two factor rows). All forward/gather paths go through
  /// this, so combine order is identical everywhere.
  void CopyRow(int32_t id, float* dst) const;

  /// Number of backing-row-keyed gradient shards. Fixed (never a function
  /// of the thread count), so shard contents — and therefore the
  /// optimizer step — are identical however the scatter was parallelized.
  static constexpr size_t kGradShards = 4;

  /// Shard owning backing row `row`'s gradient slot. NOTE: keyed on the
  /// backing row, not the logical id (they coincide only for dense).
  static size_t ShardOf(int32_t row) {
    return static_cast<size_t>(static_cast<uint32_t>(row)) % kGradShards;
  }

  /// Backing row holding `id`'s primary part (dense: id; tiered: hot or
  /// bucket row; QR: the quotient row).
  int32_t PrimaryRowOf(int32_t id) const {
    switch (kind_) {
      case EmbeddingBackendKind::kDense:
        return id;
      case EmbeddingBackendKind::kTiered:
        return (*remap_)[static_cast<size_t>(id)];
      case EmbeddingBackendKind::kQR:
        return static_cast<int32_t>(static_cast<size_t>(id) / qr_rem_);
    }
    return id;
  }

  /// Backing row of `id`'s secondary part — QR only (the remainder row).
  int32_t SecondaryRowOf(int32_t id) const {
    return static_cast<int32_t>(qr_num_q_ + static_cast<size_t>(id) % qr_rem_);
  }

  /// True when ids decompose into two backing parts (QR).
  bool HasSecondary() const { return kind_ == EmbeddingBackendKind::kQR; }

  /// Adds `grad` (length dim) into the sparse gradient slot(s) of every
  /// backing part of `id` — the serial scatter path.
  void AccumulateGrad(int32_t id, const float* grad);

  /// Shard-targeted accumulate: adds `grad` into whichever backing parts
  /// of `id` land in gradient shard `shard` (possibly none). Concurrent
  /// calls are safe iff they target distinct shards — the id-bucketed
  /// sharding used by the parallel embedding scatter (each task owns one
  /// (table, shard) bucket and scans the batch rows in order, so every
  /// backing row's accumulation order matches the serial loop bit for
  /// bit; Q/R backing spaces are disjoint, so no row sees interleaved
  /// primary/secondary contributions).
  void AccumulateGradForShard(size_t shard, int32_t id, const float* grad);

  /// Shard-targeted scaled accumulate: slot(id) += grad * scale. The
  /// continuous-feature gradient (d_out scaled by the feature value),
  /// sharing one rounding with AccumulatePreparedGradScaled. Dense
  /// tables only — continuous tables never resolve to a compressed
  /// backend.
  void AccumulateScaledGradForShard(size_t shard, int32_t id,
                                    const float* grad, float scale);

  /// Applies one sparse-Adam step over the backing rows touched since the
  /// last step, then clears the touched set.
  void SparseAdamStep(const AdamConfig& config = {});

  // --- Prepared (pre-deduped) gradient scatter -------------------------
  //
  // The phase-split TrainStep (DESIGN.md) dedupes each batch's BACKING
  // rows during PrepareBatch, before any weights are read. The backward
  // pass then scatters into a flat slot-addressed buffer sized by the
  // unique-row count — no hashing, no per-new-row allocation — and the
  // optimizer walks (unique_rows, slots) directly. Buffer capacity is
  // retained across steps, so steady-state steps allocate nothing. The
  // prepared path and the legacy AccumulateGrad path share the same Adam
  // state and step counter and produce bit-identical updates (each
  // touched backing row is updated exactly once from its summed gradient,
  // and per-row updates are independent, so iteration order is
  // immaterial).

  /// Starts a prepared scatter over `count` unique backing rows.
  /// `unique_rows` must stay valid until the matching
  /// SparseAdamStepPrepared/ClearPreparedGrads. Zeroes (and if needed
  /// grows) the slot buffer.
  void BeginPreparedScatter(const int32_t* unique_rows, size_t count) {
    prep_rows_ = unique_rows;
    prep_count_ = count;
    prep_grads_.assign(count * dim_, 0.0f);
  }

  /// Adds `grad` (length dim) into slot `slot` — the dedup index assigned
  /// to the target backing row during PrepareBatch. Concurrent calls are
  /// safe iff they target rows of distinct shards (same contract as
  /// AccumulateGradForShard; slots of different rows never alias).
  void AccumulatePreparedGrad(size_t slot, const float* grad) {
    float* dst = prep_grads_.data() + slot * dim_;
    for (size_t i = 0; i < dim_; ++i) dst[i] += grad[i];
  }

  /// Fused scale-and-accumulate: slot += grad * scale. Used by continuous
  /// feature tables, whose gradient is d_out scaled by the feature value.
  /// Shares one out-of-line body with AccumulateScaledGradForShard so the
  /// legacy and prepared scatters round identically (a header-inlined loop
  /// here and a separately compiled loop there can disagree by one ULP
  /// under FMA contraction).
  void AccumulatePreparedGradScaled(size_t slot, const float* grad,
                                    float scale);

  /// Scatters the PRIMARY-part gradient of `id` into `slot`. Dense,
  /// tiered, and QR-sum: plain accumulate; QR-mul: the product rule adds
  /// grad ⊙ R-row(id) (weights are frozen during a backward pass, so the
  /// read is race-free).
  void AccumulatePreparedGradPrimary(size_t slot, int32_t id,
                                     const float* grad);

  /// Scatters the SECONDARY-part gradient of `id` (QR only) into `slot`:
  /// plain accumulate for sum-combine, grad ⊙ Q-row(id) for mul.
  void AccumulatePreparedGradSecondary(size_t slot, int32_t id,
                                       const float* grad);

  /// Sparse-Adam step over the prepared slots (same math/state as
  /// SparseAdamStep), then ends the prepared scatter keeping capacity.
  void SparseAdamStepPrepared(const AdamConfig& config = {});

  /// Ends a prepared scatter without updating (keeps capacity).
  void ClearPreparedGrads() {
    prep_rows_ = nullptr;
    prep_count_ = 0;
    prep_grads_.clear();
  }

  /// Prepared gradient slot (length dim) for `slot` (tests/diagnostics).
  const float* PreparedGrad(size_t slot) const {
    CHECK_LT(slot, prep_count_);
    return prep_grads_.data() + slot * dim_;
  }

  /// Applies plain SGD over touched rows (used in gradient-check tests).
  void SparseSgdStep();

  /// Discards accumulated gradients without updating.
  void ClearGrads();

  /// Accumulated gradient slot (length dim) for `id`'s PRIMARY backing
  /// row, or nullptr if untouched since the last step/clear
  /// (tests / diagnostics). See AccumulatedGradForRow for QR remainder
  /// parts.
  const float* AccumulatedGrad(int32_t id) const;

  /// Accumulated gradient slot for a raw backing row (tests).
  const float* AccumulatedGradForRow(int32_t row) const;

  /// Raw backing value tensor (checkpoint snapshot/restore). Shape
  /// [BackingRows() × dim] — backend-dependent, so checkpoints only load
  /// back into a table constructed with the same backend config.
  Tensor& mutable_values() { return value_; }
  const Tensor& values() const { return value_; }

  size_t vocab_size() const { return vocab_size_; }
  size_t dim() const { return dim_; }
  const std::string& name() const { return name_; }
  EmbeddingBackendKind backend_kind() const { return kind_; }
  QrCombine qr_combine() const { return qr_combine_; }
  size_t qr_rem() const { return qr_rem_; }
  size_t qr_num_q() const { return qr_num_q_; }
  size_t tier_hot_rows() const { return tier_hot_rows_; }
  size_t tier_buckets() const { return tier_buckets_; }
  /// Rows actually stored (== vocab_size only for dense).
  size_t BackingRows() const { return backing_rows_; }
  /// Trainable parameter count: backing rows × dim — the honest number
  /// for parameter/AUC trade-off curves.
  size_t ParamCount() const { return backing_rows_ * dim_; }
  /// Non-trainable mapping overhead (tiered remap) in bytes.
  size_t AuxBytes() const {
    return remap_ ? remap_->size() * sizeof(int32_t) : 0;
  }
  /// Human-readable backend summary, e.g. "qr_mul(q=64,r=63)".
  std::string BackendDesc() const;
  /// Shared logical→backing remap (tiered; null otherwise). Shared with
  /// quantized snapshots so the mapping is never duplicated.
  std::shared_ptr<const std::vector<int32_t>> remap() const { return remap_; }
  size_t touched_count() const;

  float lr = 1e-3f;
  float l2 = 0.0f;

  /// Bounds check with an actionable failure message (table name,
  /// backend, offending id, vocab size). `op` names the calling
  /// operation. Public so id-prep code can validate before mapping.
  void CheckId(int32_t id, const char* op) const {
    CHECK(id >= 0 && static_cast<size_t>(id) < vocab_size_)
        << "embedding table '" << name_ << "' (" << BackendDesc()
        << ", vocab " << vocab_size_ << "): " << op << " id " << id
        << " is outside [0, " << vocab_size_
        << ") — id from a foreign/stale encoder?";
  }

 private:
  const float* BackingRowPtr(int32_t row) const {
    return value_.data() + static_cast<size_t>(row) * dim_;
  }

  // Adds grad into the shard slot of backing row `row`; shard must equal
  // ShardOf(row). `mul_by` != nullptr applies the QR-mul product rule:
  // slot += grad ⊙ mul_by.
  void AccumulateRow(size_t shard, int32_t row, const float* grad,
                     const float* mul_by);

  // Finds (allocating on first touch) the gradient slot of backing row
  // `row` in shard `shard`.
  float* GradSlotFor(size_t shard, int32_t row);

  // Sparse gradient accumulator for one backing-row shard: touched rows
  // (deduped) and their gradient rows, parallel arrays. Rows land in
  // shard ShardOf(row), so shards never share a row and tasks owning
  // distinct shards can accumulate without synchronization.
  struct GradShard {
    std::unordered_map<int32_t, size_t> index;
    std::vector<int32_t> rows;
    std::vector<float> grads;
  };

  std::string name_;
  size_t vocab_size_;
  size_t dim_;
  EmbeddingBackendKind kind_ = EmbeddingBackendKind::kDense;
  QrCombine qr_combine_ = QrCombine::kSum;
  size_t qr_num_q_ = 0;
  size_t qr_rem_ = 1;
  size_t tier_hot_rows_ = 0;
  size_t tier_buckets_ = 0;
  size_t backing_rows_ = 0;
  std::shared_ptr<const std::vector<int32_t>> remap_;  // tiered only
  Tensor value_;
  Tensor m_;
  Tensor v_;
  int64_t step_ = 0;
  std::array<GradShard, kGradShards> shards_;

  // Prepared-scatter state (see BeginPreparedScatter). The row list is
  // owned by the caller's PreparedBatch; only the slot buffer lives here.
  const int32_t* prep_rows_ = nullptr;
  size_t prep_count_ = 0;
  std::vector<float> prep_grads_;
};

}  // namespace optinter
