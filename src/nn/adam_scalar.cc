#include "nn/adam_scalar.h"

#include <cmath>

#if defined(OPTINTER_SIMD_SCALAR)

namespace optinter {

// Built with -fno-math-errno (set per-file in CMakeLists.txt): sqrtf has
// no observable side effect here, so the loop is a clean vectorization
// candidate at -O3. Same per-element op sequence as the lane/tail path.
void AdamScalarBody(float* w, const float* g, float* m, float* v, float lr,
                    float l2, float b1, float b2, float bc1, float bc2,
                    float eps, size_t lo, size_t hi) {
#pragma GCC ivdep
  for (size_t i = lo; i < hi; ++i) {
    const float gi = l2 * w[i] + g[i];
    m[i] = b1 * m[i] + (1.0f - b1) * gi;
    v[i] = b2 * v[i] + ((1.0f - b2) * gi) * gi;
    const float m_hat = m[i] / bc1;
    const float v_hat = v[i] / bc2;
    w[i] -= lr * m_hat / (std::sqrt(v_hat) + eps);
  }
}

}  // namespace optinter

#endif  // OPTINTER_SIMD_SCALAR
