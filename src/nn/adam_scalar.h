#ifndef OPTINTER_NN_ADAM_SCALAR_H_
#define OPTINTER_NN_ADAM_SCALAR_H_

#include <cstddef>

#include "tensor/simd.h"

#if defined(OPTINTER_SIMD_SCALAR)

namespace optinter {

/// Scalar-backend dense Adam update over [lo, hi). With kLanes == 1 the
/// generic lane loop in Adam::Step degenerates to one element per
/// iteration through the VecF wrappers, and std::sqrt's errno side effect
/// blocks GCC from auto-vectorizing it — a ~25% throughput loss against
/// the old plain loop. This body lives in its own translation unit built
/// with -fno-math-errno (see src/nn/CMakeLists.txt) so the compiler may
/// vectorize the sqrt; every per-element operation and rounding matches
/// the lane/tail path exactly (MulAddScalar is a*b+c on the scalar
/// backend, sqrtf is correctly rounded with or without errno), so results
/// stay bit-identical.
void AdamScalarBody(float* w, const float* g, float* m, float* v, float lr,
                    float l2, float b1, float b2, float bc1, float bc2,
                    float eps, size_t lo, size_t hi);

}  // namespace optinter

#endif  // OPTINTER_SIMD_SCALAR

#endif  // OPTINTER_NN_ADAM_SCALAR_H_
