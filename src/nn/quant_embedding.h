// Read-only quantized views of EmbeddingTable for the serving path.
//
// A QuantizedTable is built once from a trained (fp32) EmbeddingTable —
// the one-shot QuantizeSnapshot conversion (serve/snapshot.h) — and then
// only ever read. Two storage formats:
//
//  * int8: per-row affine quantization q = round(x/scale) + zp with an
//    int8 zero point, so a row costs dim + 5 bytes (dim int8 values,
//    one float scale, one int8 zero point) against 4·dim fp32 — a 3.05×
//    reduction at dim 16. Row-wise scales track each embedding row's own
//    range, which is what keeps the AUC hit negligible: CTR embedding
//    rows differ in magnitude by orders of magnitude across ids.
//  * bf16: the top 16 bits of the fp32 pattern, round-to-nearest-even.
//    2× reduction, essentially lossless for CTR embeddings (8-bit
//    mantissa ≈ the noise floor of Adam-trained weights).
//
// Quantization operates on the source table's BACKING rows, so the
// compression composes with the storage backends of nn/embedding.h: a QR
// or tiered table quantizes its num_q + r (or hot + bucket) rows, not the
// full logical vocab, and the logical→backing mapping is replicated here
// (the tiered remap is shared by pointer, never copied). QR logical rows
// are composed at dequant time from the two dequantized factor rows, in
// the same combine order as EmbeddingTable::CopyRow.
//
// Dequantization goes through the runtime dispatch table
// (KernelTable::dequant_row_i8 / dequant_row_bf16). Both kernels are
// bitwise backend-invariant — int8 dequant is an integer subtract plus
// ONE fp32 multiply per element, bf16 dequant is a pure bit shift — so a
// quantized model's predictions do not depend on the selected backend.

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "nn/embedding.h"
#include "tensor/aligned.h"

namespace optinter {

/// Serving-time numeric format for a quantized snapshot.
enum class QuantMode : uint8_t { kInt8, kBf16 };

inline const char* QuantModeName(QuantMode mode) {
  return mode == QuantMode::kInt8 ? "int8" : "bf16";
}

/// Immutable quantized [vocab × dim] logical table stored as quantized
/// backing rows; all methods are const and concurrent reads are safe (the
/// serving hot-swap publishes these inside an immutable snapshot).
class QuantizedTable {
 public:
  QuantizedTable(const EmbeddingTable& source, QuantMode mode);

  /// Dequantizes logical row `id` into dst[0:dim] via the active kernel
  /// table, composing QR factor rows exactly as EmbeddingTable::CopyRow.
  void DequantRow(int32_t id, float* dst) const;

  size_t vocab_size() const { return vocab_; }
  size_t dim() const { return dim_; }
  QuantMode mode() const { return mode_; }
  EmbeddingBackendKind backend_kind() const { return kind_; }
  /// Rows actually stored (== vocab_size only for dense sources).
  size_t backing_rows() const { return backing_rows_; }

  /// Storage bytes per BACKING row, counting per-row metadata
  /// (scale/zero point).
  size_t RowBytes() const {
    return mode_ == QuantMode::kInt8 ? dim_ + sizeof(float) + 1 : 2 * dim_;
  }

  /// Total storage: quantized backing rows plus the replicated
  /// logical→backing mapping (tiered remap bytes; QR needs none).
  size_t StorageBytes() const {
    return backing_rows_ * RowBytes() +
           (remap_ ? remap_->size() * sizeof(int32_t) : 0);
  }

  /// int8 quantization step of `id`'s primary backing row (kBf16: 0).
  /// For dense and tiered tables the round-trip error of any element of
  /// the row is bounded by 1.5 · RowScale(id): half a step from rounding
  /// plus at most one step lost to edge clamping. QR rows are composed
  /// from two quantized factors, so the sum-combine bound is
  /// 1.5 · (RowScale(id) + SecondaryRowScale(id)).
  float RowScale(int32_t id) const {
    if (mode_ != QuantMode::kInt8) return 0.0f;
    return scale_[static_cast<size_t>(PrimaryRowOf(id))];
  }

  /// int8 step of `id`'s QR remainder row (0 for non-QR or kBf16).
  float SecondaryRowScale(int32_t id) const {
    if (mode_ != QuantMode::kInt8 || kind_ != EmbeddingBackendKind::kQR) {
      return 0.0f;
    }
    return scale_[qr_num_q_ + static_cast<size_t>(id) % qr_rem_];
  }

 private:
  int32_t PrimaryRowOf(int32_t id) const {
    switch (kind_) {
      case EmbeddingBackendKind::kDense:
        return id;
      case EmbeddingBackendKind::kTiered:
        return (*remap_)[static_cast<size_t>(id)];
      case EmbeddingBackendKind::kQR:
        return static_cast<int32_t>(static_cast<size_t>(id) / qr_rem_);
    }
    return id;
  }

  /// Dequantizes one backing row.
  void DequantBackingRow(size_t row, float* dst) const;

  size_t vocab_;
  size_t dim_;
  QuantMode mode_;
  // Backend mapping replicated from the source table (remap shared, not
  // copied — see EmbeddingTable::remap()).
  EmbeddingBackendKind kind_ = EmbeddingBackendKind::kDense;
  QrCombine qr_combine_ = QrCombine::kSum;
  size_t qr_num_q_ = 0;
  size_t qr_rem_ = 1;
  size_t backing_rows_ = 0;
  std::shared_ptr<const std::vector<int32_t>> remap_;
  // int8 storage.
  AlignedVector<int8_t> q_;
  std::vector<float> scale_;
  std::vector<int8_t> zp_;
  // bf16 storage.
  AlignedVector<uint16_t> b_;
};

/// Round-to-nearest-even fp32 → bf16 (exposed for tests).
uint16_t FloatToBf16(float x);

}  // namespace optinter
