// Read-only quantized views of EmbeddingTable for the serving path.
//
// A QuantizedTable is built once from a trained (fp32) EmbeddingTable —
// the one-shot QuantizeSnapshot conversion (serve/snapshot.h) — and then
// only ever read. Two storage formats:
//
//  * int8: per-row affine quantization q = round(x/scale) + zp with an
//    int8 zero point, so a row costs dim + 5 bytes (dim int8 values,
//    one float scale, one int8 zero point) against 4·dim fp32 — a 3.05×
//    reduction at dim 16. Row-wise scales track each embedding row's own
//    range, which is what keeps the AUC hit negligible: CTR embedding
//    rows differ in magnitude by orders of magnitude across ids.
//  * bf16: the top 16 bits of the fp32 pattern, round-to-nearest-even.
//    2× reduction, essentially lossless for CTR embeddings (8-bit
//    mantissa ≈ the noise floor of Adam-trained weights).
//
// Dequantization goes through the runtime dispatch table
// (KernelTable::dequant_row_i8 / dequant_row_bf16). Both kernels are
// bitwise backend-invariant — int8 dequant is an integer subtract plus
// ONE fp32 multiply per element, bf16 dequant is a pure bit shift — so a
// quantized model's predictions do not depend on the selected backend.

#pragma once

#include <cstdint>
#include <vector>

#include "nn/embedding.h"
#include "tensor/aligned.h"

namespace optinter {

/// Serving-time numeric format for a quantized snapshot.
enum class QuantMode : uint8_t { kInt8, kBf16 };

inline const char* QuantModeName(QuantMode mode) {
  return mode == QuantMode::kInt8 ? "int8" : "bf16";
}

/// Immutable quantized [vocab × dim] table; all methods are const and
/// concurrent reads are safe (the serving hot-swap publishes these inside
/// an immutable snapshot).
class QuantizedTable {
 public:
  QuantizedTable(const EmbeddingTable& source, QuantMode mode);

  /// Dequantizes row `id` into dst[0:dim] via the active kernel table.
  void DequantRow(int32_t id, float* dst) const;

  size_t vocab_size() const { return vocab_; }
  size_t dim() const { return dim_; }
  QuantMode mode() const { return mode_; }

  /// Storage bytes per row, counting per-row metadata (scale/zero point).
  size_t RowBytes() const {
    return mode_ == QuantMode::kInt8 ? dim_ + sizeof(float) + 1 : 2 * dim_;
  }

  /// int8 quantization step of row `id` (kBf16: 0). The round-trip error
  /// of any element of the row is bounded by 1.5 · RowScale(id): half a
  /// step from rounding plus at most one step lost to edge clamping.
  float RowScale(int32_t id) const {
    return mode_ == QuantMode::kInt8 ? scale_[static_cast<size_t>(id)] : 0.0f;
  }

 private:
  size_t vocab_;
  size_t dim_;
  QuantMode mode_;
  // int8 storage.
  AlignedVector<int8_t> q_;
  std::vector<float> scale_;
  std::vector<int8_t> zp_;
  // bf16 storage.
  AlignedVector<uint16_t> b_;
};

/// Round-to-nearest-even fp32 → bf16 (exposed for tests).
uint16_t FloatToBf16(float x);

}  // namespace optinter
