// Dense-parameter optimizers: SGD, Adam, and GRDA.
//
// Adam is the workhorse (paper Table IV, opt=Adam). GRDA (generalized
// regularized dual averaging, Chao et al. 2020) is the sparsity-inducing
// optimizer AutoFIS uses for its interaction gates; it drives gate values
// exactly to zero via an accumulating soft threshold.
//
// Embedding tables implement their own lazy sparse-Adam update (see
// embedding.h) because dense moment updates over multi-million-row tables
// would dominate the step cost.

#pragma once

#include <memory>
#include <vector>

#include "nn/param.h"

namespace optinter {

/// Interface for dense-parameter optimizers.
///
/// Parameters are registered once (non-owning pointers; the model owns
/// them) and updated together at each Step(). Per-parameter learning rate
/// and L2 come from the DenseParam itself.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Registers a parameter. Must outlive the optimizer.
  virtual void AddParam(DenseParam* param) = 0;

  /// Applies one update from the accumulated gradients.
  virtual void Step() = 0;

  /// Clears gradients of every registered parameter.
  void ZeroGrad();

  const std::vector<DenseParam*>& params() const { return params_; }

 protected:
  std::vector<DenseParam*> params_;
};

/// Plain SGD: w -= lr * (g + l2 * w).
class Sgd : public Optimizer {
 public:
  void AddParam(DenseParam* param) override;
  void Step() override;
};

/// Adam hyper-parameters shared across parameters; the learning rate is
/// per-parameter (DenseParam::lr).
struct AdamConfig {
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
};

/// Adam (Kingma & Ba) with bias correction and decoupled L2.
class Adam : public Optimizer {
 public:
  explicit Adam(AdamConfig config = {}) : config_(config) {}

  void AddParam(DenseParam* param) override;
  void Step() override;

  int64_t step_count() const { return step_; }

 private:
  struct State {
    Tensor m;
    Tensor v;
  };
  AdamConfig config_;
  std::vector<State> state_;
  int64_t step_ = 0;
};

/// GRDA configuration (mu and c follow the AutoFIS notation, paper
/// Table IV: "mu and c are parameters in GRDA optimizer").
struct GrdaConfig {
  float c = 5e-4f;
  float mu = 0.8f;
};

/// Generalized regularized dual averaging.
///
/// Maintains an accumulator initialized to the initial weights; each step
/// subtracts lr * grad and soft-thresholds with the growing penalty
/// l1(t) = c * lr^(1/2 + mu) * t^mu, which prunes small weights to exactly
/// zero — the mechanism AutoFIS relies on for interaction selection.
class Grda : public Optimizer {
 public:
  explicit Grda(GrdaConfig config = {}) : config_(config) {}

  void AddParam(DenseParam* param) override;
  void Step() override;

 private:
  GrdaConfig config_;
  std::vector<Tensor> accumulators_;
  int64_t step_ = 0;
};

}  // namespace optinter
