#include "nn/optimizer.h"

#include <cmath>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "nn/adam_scalar.h"
#include "obs/trace.h"
#include "tensor/simd.h"

namespace optinter {

namespace {
// Parameter size above which the per-element update loops fan out across
// the pool. Updates touch disjoint (w, m, v) slots per index, so chunking
// never changes any bit of the result.
constexpr size_t kParallelElems = 1u << 15;

constexpr size_t kL = simd::kLanes;

}  // namespace

void Optimizer::ZeroGrad() {
  for (DenseParam* p : params_) p->ZeroGrad();
}

void Sgd::AddParam(DenseParam* param) {
  CHECK(param != nullptr);
  params_.push_back(param);
}

void Sgd::Step() {
  OPTINTER_TRACE_SPAN("sgd_step");
  for (DenseParam* p : params_) {
    float* w = p->value.data();
    const float* g = p->grad.data();
    const float lr = p->lr;
    const float l2 = p->l2;
    // w -= lr·(g + l2·w), as two fused muladds. The scalar tail mirrors the
    // vector lanes op-for-op (MulAddScalar == MulAdd per element), so the
    // update is bit-identical wherever the chunk/group boundaries fall.
    auto body = [&](size_t lo, size_t hi) {
      const simd::VecF l2_v = simd::Set1(l2);
      const simd::VecF neg_lr_v = simd::Set1(-lr);
      size_t i = lo;
      for (; i + kL <= hi; i += kL) {
        const simd::VecF wv = simd::LoadU(w + i);
        const simd::VecF t = simd::MulAdd(l2_v, wv, simd::LoadU(g + i));
        simd::StoreU(w + i, simd::MulAdd(neg_lr_v, t, wv));
      }
      for (; i < hi; ++i) {
        const float t = simd::MulAddScalar(l2, w[i], g[i]);
        w[i] = simd::MulAddScalar(-lr, t, w[i]);
      }
    };
    if (p->size() >= kParallelElems) {
      ParallelForChunks(0, p->size(), body, /*min_chunk=*/4096);
    } else {
      body(0, p->size());
    }
  }
}

void Adam::AddParam(DenseParam* param) {
  CHECK(param != nullptr);
  params_.push_back(param);
  State s;
  s.m.Resize(param->value.shape());
  s.v.Resize(param->value.shape());
  state_.push_back(std::move(s));
}

void Adam::Step() {
  OPTINTER_TRACE_SPAN("adam_step");
  ++step_;
  const float b1 = config_.beta1;
  const float b2 = config_.beta2;
  const float bc1 =
      1.0f - std::pow(b1, static_cast<float>(step_));
  const float bc2 =
      1.0f - std::pow(b2, static_cast<float>(step_));
  for (size_t pi = 0; pi < params_.size(); ++pi) {
    DenseParam* p = params_[pi];
    State& s = state_[pi];
    float* w = p->value.data();
    const float* g = p->grad.data();
    float* m = s.m.data();
    float* v = s.v.data();
    const float lr = p->lr;
    const float l2 = p->l2;
    const float eps = config_.eps;
    // Vector lanes and the scalar tail compute each slot with the same op
    // sequence and rounding (MulAddScalar == MulAdd, Div/Sqrt correctly
    // rounded on every backend), so the update is bit-identical wherever
    // the chunk/group boundaries fall.
    auto body = [&](size_t lo, size_t hi) {
#if defined(OPTINTER_SIMD_SCALAR)
      AdamScalarBody(w, g, m, v, lr, l2, b1, b2, bc1, bc2, eps, lo, hi);
#else
      const simd::VecF l2_v = simd::Set1(l2);
      const simd::VecF b1_v = simd::Set1(b1);
      const simd::VecF b2_v = simd::Set1(b2);
      const simd::VecF omb1_v = simd::Set1(1.0f - b1);
      const simd::VecF omb2_v = simd::Set1(1.0f - b2);
      const simd::VecF bc1_v = simd::Set1(bc1);
      const simd::VecF bc2_v = simd::Set1(bc2);
      const simd::VecF lr_v = simd::Set1(lr);
      const simd::VecF eps_v = simd::Set1(eps);
      size_t i = lo;
      for (; i + kL <= hi; i += kL) {
        const simd::VecF wv = simd::LoadU(w + i);
        const simd::VecF gi = simd::MulAdd(l2_v, wv, simd::LoadU(g + i));
        const simd::VecF mv =
            simd::MulAdd(b1_v, simd::LoadU(m + i), simd::Mul(omb1_v, gi));
        const simd::VecF vv = simd::MulAdd(
            b2_v, simd::LoadU(v + i), simd::Mul(simd::Mul(omb2_v, gi), gi));
        simd::StoreU(m + i, mv);
        simd::StoreU(v + i, vv);
        const simd::VecF m_hat = simd::Div(mv, bc1_v);
        const simd::VecF v_hat = simd::Div(vv, bc2_v);
        const simd::VecF denom = simd::Add(simd::Sqrt(v_hat), eps_v);
        simd::StoreU(
            w + i, simd::Sub(wv, simd::Div(simd::Mul(lr_v, m_hat), denom)));
      }
      for (; i < hi; ++i) {
        const float gi = simd::MulAddScalar(l2, w[i], g[i]);
        m[i] = simd::MulAddScalar(b1, m[i], (1.0f - b1) * gi);
        v[i] = simd::MulAddScalar(b2, v[i], ((1.0f - b2) * gi) * gi);
        const float m_hat = m[i] / bc1;
        const float v_hat = v[i] / bc2;
        w[i] -= lr * m_hat / (std::sqrt(v_hat) + eps);
      }
#endif  // OPTINTER_SIMD_SCALAR
    };
    if (p->size() >= kParallelElems) {
      ParallelForChunks(0, p->size(), body, /*min_chunk=*/4096);
    } else {
      body(0, p->size());
    }
  }
}

void Grda::AddParam(DenseParam* param) {
  CHECK(param != nullptr);
  params_.push_back(param);
  // The accumulator starts at the initial weights, so a parameter only
  // survives if its accumulated gradient signal outgrows the threshold.
  Tensor acc = param->value;
  accumulators_.push_back(std::move(acc));
}

void Grda::Step() {
  OPTINTER_TRACE_SPAN("grda_step");
  ++step_;
  for (size_t pi = 0; pi < params_.size(); ++pi) {
    DenseParam* p = params_[pi];
    Tensor& acc = accumulators_[pi];
    const float lr = p->lr;
    const float l1 =
        config_.c * std::pow(lr, 0.5f + config_.mu) *
        std::pow(static_cast<float>(step_), config_.mu);
    float* w = p->value.data();
    const float* g = p->grad.data();
    float* a = acc.data();
    for (size_t i = 0; i < p->size(); ++i) {
      a[i] -= lr * g[i];
      const float mag = std::fabs(a[i]) - l1;
      w[i] = mag > 0.0f ? (a[i] > 0.0f ? mag : -mag) : 0.0f;
    }
  }
}

}  // namespace optinter
