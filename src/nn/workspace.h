// Per-call activation workspaces for the nn layers.
//
// Each layer's Forward caches what its Backward needs (inputs, masks,
// normalization statistics). Historically those caches were layer members,
// which made Forward non-re-entrant: two concurrent Predict calls on
// different batches clobbered each other's activations, forcing evaluation
// to run batches serially. The structs below move that per-call state into
// a caller-owned workspace threaded through Forward/Backward, so a shared
// (read-only) layer can serve any number of concurrent calls, each with
// its own workspace. Every layer keeps one private default workspace
// behind its workspace-less overloads for the single-caller training path,
// so existing call sites are unchanged.

#pragma once

#include <vector>

#include "tensor/tensor.h"

namespace optinter {

/// Forward-pass state of one Linear call (input cached for the dW GEMM).
struct LinearWorkspace {
  Tensor x_cache;
};

/// Forward-pass state of one Relu call.
struct ReluWorkspace {
  Tensor mask;
};

/// Forward-pass state of one LayerNorm call.
struct LayerNormWorkspace {
  Tensor xhat;     // [B × D]
  Tensor inv_std;  // [B]
};

/// Workspaces for every sub-layer of an Mlp plus the inter-layer
/// activation / gradient scratch tensors.
struct MlpWorkspace {
  std::vector<LinearWorkspace> linears;
  std::vector<ReluWorkspace> relus;
  std::vector<LayerNormWorkspace> norms;
  std::vector<Tensor> acts;
  std::vector<Tensor> grads;
};

}  // namespace optinter
