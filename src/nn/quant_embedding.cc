#include "nn/quant_embedding.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "tensor/dispatch.h"

namespace optinter {

uint16_t FloatToBf16(float x) {
  uint32_t bits;
  std::memcpy(&bits, &x, sizeof(bits));
  // Round-to-nearest-even on the truncated 16 bits.
  const uint32_t rounding = ((bits >> 16) & 1u) + 0x7fffu;
  return static_cast<uint16_t>((bits + rounding) >> 16);
}

namespace {

/// Affine int8 quantization of one row: q = round(x/scale) + zp with
/// q, zp ∈ [-128, 127] and scale = (max − min)/255. Dequant is
/// scale · (q − zp), so rounding costs ≤ scale/2 and the zero-point
/// rounding can clamp at most one step at the range edges (the 1.5·scale
/// bound documented on QuantizedTable::RowScale).
void QuantizeRowI8(const float* x, size_t dim, int8_t* q, float* scale,
                   int8_t* zp) {
  float lo = x[0], hi = x[0];
  for (size_t t = 1; t < dim; ++t) {
    lo = std::min(lo, x[t]);
    hi = std::max(hi, x[t]);
  }
  const float range = hi - lo;
  if (range == 0.0f) {
    // Constant row: represent it exactly with zp = 0.
    if (lo == 0.0f) {
      *scale = 1.0f;
      *zp = 0;
      std::fill(q, q + dim, static_cast<int8_t>(0));
    } else {
      *scale = std::fabs(lo) / 127.0f;
      *zp = 0;
      std::fill(q, q + dim, static_cast<int8_t>(lo > 0.0f ? 127 : -127));
    }
    return;
  }
  const float s = range / 255.0f;
  const int32_t zpoint =
      std::clamp(-128 - static_cast<int32_t>(std::lrintf(lo / s)), -128, 127);
  *scale = s;
  *zp = static_cast<int8_t>(zpoint);
  for (size_t t = 0; t < dim; ++t) {
    const int32_t v =
        static_cast<int32_t>(std::lrintf(x[t] / s)) + zpoint;
    q[t] = static_cast<int8_t>(std::clamp(v, -128, 127));
  }
}

}  // namespace

QuantizedTable::QuantizedTable(const EmbeddingTable& source, QuantMode mode)
    : vocab_(source.vocab_size()),
      dim_(source.dim()),
      mode_(mode),
      kind_(source.backend_kind()),
      qr_combine_(source.qr_combine()),
      qr_num_q_(source.qr_num_q()),
      qr_rem_(source.qr_rem()),
      backing_rows_(source.BackingRows()),
      remap_(source.remap()) {
  // Quantize the backing rows, not the logical vocab: a QR or tiered
  // source keeps its compression through the snapshot.
  const float* values = source.values().data();
  if (mode_ == QuantMode::kInt8) {
    q_.resize(backing_rows_ * dim_);
    scale_.resize(backing_rows_);
    zp_.resize(backing_rows_);
    for (size_t r = 0; r < backing_rows_; ++r) {
      QuantizeRowI8(values + r * dim_, dim_, q_.data() + r * dim_,
                    &scale_[r], &zp_[r]);
    }
  } else {
    b_.resize(backing_rows_ * dim_);
    for (size_t r = 0; r < backing_rows_; ++r) {
      const float* src = values + r * dim_;
      uint16_t* dst = b_.data() + r * dim_;
      for (size_t t = 0; t < dim_; ++t) dst[t] = FloatToBf16(src[t]);
    }
  }
}

void QuantizedTable::DequantBackingRow(size_t row, float* dst) const {
  const KernelTable& table = ActiveKernels();
  if (mode_ == QuantMode::kInt8) {
    table.dequant_row_i8(q_.data() + row * dim_, scale_[row],
                         static_cast<int32_t>(zp_[row]), dim_, dst);
  } else {
    table.dequant_row_bf16(b_.data() + row * dim_, dim_, dst);
  }
}

void QuantizedTable::DequantRow(int32_t id, float* dst) const {
  CHECK_GE(id, 0);
  CHECK_LT(static_cast<size_t>(id), vocab_);
  if (kind_ != EmbeddingBackendKind::kQR) {
    DequantBackingRow(static_cast<size_t>(PrimaryRowOf(id)), dst);
    return;
  }
  // QR: dequantize both factor rows and combine in the same order as
  // EmbeddingTable::CopyRow. Scratch is thread-local so concurrent
  // serving reads never share it.
  static thread_local std::vector<float> scratch;
  if (scratch.size() < dim_) scratch.resize(dim_);
  DequantBackingRow(static_cast<size_t>(PrimaryRowOf(id)), dst);
  DequantBackingRow(qr_num_q_ + static_cast<size_t>(id) % qr_rem_,
                    scratch.data());
  if (qr_combine_ == QrCombine::kSum) {
    for (size_t t = 0; t < dim_; ++t) dst[t] += scratch[t];
  } else {
    for (size_t t = 0; t < dim_; ++t) dst[t] *= scratch[t];
  }
}

}  // namespace optinter
