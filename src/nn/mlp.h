// MLP classifier used by all deep models in the paper (§II-B4):
// a stack of Linear → ReLU → LayerNorm blocks followed by a final Linear
// projection (to the logit, or to a vector for PIN sub-nets).

#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "nn/layers.h"

namespace optinter {

/// Configuration of an Mlp tower.
struct MlpConfig {
  /// Hidden layer widths, e.g. {64, 32}; empty means a single Linear.
  std::vector<size_t> hidden;
  /// Output width (1 for a CTR logit).
  size_t out_dim = 1;
  /// Apply LayerNorm after each hidden activation (paper: LN=true).
  bool layer_norm = true;
  float lr = 1e-3f;
  float l2 = 0.0f;
};

/// Feed-forward tower with hand-derived backprop.
class Mlp {
 public:
  Mlp(std::string name, size_t in_dim, const MlpConfig& config, Rng* rng);

  /// y: [B × out_dim].
  void Forward(const Tensor& x, Tensor* y);

  /// Accumulates parameter grads; writes dx unless nullptr.
  void Backward(const Tensor& dy, Tensor* dx);

  void RegisterParams(Optimizer* opt);
  size_t ParamCount() const;

  size_t in_dim() const { return in_dim_; }
  size_t out_dim() const { return config_.out_dim; }

 private:
  size_t in_dim_;
  MlpConfig config_;
  std::vector<Linear> linears_;       // hidden layers + output layer
  std::vector<Relu> relus_;           // one per hidden layer
  std::vector<LayerNorm> norms_;      // one per hidden layer (if enabled)
  // Per-layer activation caches for the backward pass.
  std::vector<Tensor> acts_;
  std::vector<Tensor> grads_;
};

}  // namespace optinter
