// MLP classifier used by all deep models in the paper (§II-B4):
// a stack of Linear → ReLU → LayerNorm blocks followed by a final Linear
// projection (to the logit, or to a vector for PIN sub-nets).

#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "nn/layers.h"

namespace optinter {

/// Configuration of an Mlp tower.
struct MlpConfig {
  /// Hidden layer widths, e.g. {64, 32}; empty means a single Linear.
  std::vector<size_t> hidden;
  /// Output width (1 for a CTR logit).
  size_t out_dim = 1;
  /// Apply LayerNorm after each hidden activation (paper: LN=true).
  bool layer_norm = true;
  float lr = 1e-3f;
  float l2 = 0.0f;
};

/// Feed-forward tower with hand-derived backprop.
///
/// The workspace-taking Forward overload is const and re-entrant:
/// concurrent calls on different batches with distinct workspaces are
/// safe as long as parameters are quiescent (no concurrent optimizer
/// step). The workspace-less overloads use a private default workspace
/// (single caller, the training path).
class Mlp {
 public:
  Mlp(std::string name, size_t in_dim, const MlpConfig& config, Rng* rng);

  /// y: [B × out_dim]. All per-call state lives in `ws`.
  void Forward(const Tensor& x, Tensor* y, MlpWorkspace* ws) const;
  void Forward(const Tensor& x, Tensor* y) { Forward(x, y, &ws_); }

  /// Accumulates parameter grads; writes dx unless nullptr. `ws` must
  /// come from the matching Forward call.
  void Backward(const Tensor& dy, Tensor* dx, MlpWorkspace* ws);
  void Backward(const Tensor& dy, Tensor* dx) { Backward(dy, dx, &ws_); }

  void RegisterParams(Optimizer* opt);
  size_t ParamCount() const;

  size_t in_dim() const { return in_dim_; }
  size_t out_dim() const { return config_.out_dim; }

  // Read-only layer access (serving-time quantization): the converter
  // quantizes each Linear's weights and reuses the LayerNorms in place.
  const MlpConfig& config() const { return config_; }
  const std::vector<Linear>& linears() const { return linears_; }
  const std::vector<LayerNorm>& norms() const { return norms_; }

 private:
  size_t in_dim_;
  MlpConfig config_;
  std::vector<Linear> linears_;       // hidden layers + output layer
  std::vector<Relu> relus_;           // one per hidden layer
  std::vector<LayerNorm> norms_;      // one per hidden layer (if enabled)
  MlpWorkspace ws_;                   // default workspace (training path)
};

}  // namespace optinter
