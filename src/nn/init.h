// Weight initializers.
//
// The paper (§III-A4) uses Xavier initialization throughout: uniform in
// [-sqrt(6/(fan_in+fan_out)), +sqrt(6/(fan_in+fan_out))].

#pragma once

#include "common/rng.h"
#include "tensor/tensor.h"

namespace optinter {

/// Xavier/Glorot uniform initialization with explicit fan sizes.
void XavierUniform(Tensor* t, size_t fan_in, size_t fan_out, Rng* rng);

/// Fills with N(mean, stddev) draws.
void NormalInit(Tensor* t, double mean, double stddev, Rng* rng);

/// Fills with U(lo, hi) draws.
void UniformInit(Tensor* t, double lo, double hi, Rng* rng);

/// Fills with a constant.
void ConstantInit(Tensor* t, float value);

}  // namespace optinter
