#include "nn/embedding.h"

#include <cmath>

#include "nn/init.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace optinter {

namespace {
// Rows touched per sparse step; handle cached once (registry never
// invalidates it).
obs::Counter* RowsUpdatedCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("emb.rows_updated");
  return c;
}

// Per-row AccumulateGrad call volume, sampled 1-in-64: the call itself is
// too hot for a span (it runs per (row, field) in every backward pass),
// but the sampled count makes the scatter volume visible in --report
// output next to the gather/scatter spans.
constexpr uint64_t kAccumSampleMask = 63;
obs::Counter* AccumRowsSampledCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("emb.accum_rows_sampled");
  return c;
}
}  // namespace

EmbeddingTable::EmbeddingTable(std::string name, size_t vocab_size,
                               size_t dim, float lr_in, float l2_in)
    : lr(lr_in), l2(l2_in), name_(std::move(name)), vocab_size_(vocab_size),
      dim_(dim) {
  CHECK_GT(vocab_size_, 0u);
  CHECK_GT(dim_, 0u);
  value_.Resize({vocab_size_, dim_});
  m_.Resize({vocab_size_, dim_});
  v_.Resize({vocab_size_, dim_});
}

void EmbeddingTable::Init(Rng* rng, double stddev) {
  NormalInit(&value_, 0.0, stddev, rng);
}

void EmbeddingTable::AccumulateGradInShard(size_t shard, int32_t id,
                                           const float* grad) {
  CHECK_GE(id, 0);
  CHECK_LT(static_cast<size_t>(id), vocab_size_);
  CHECK_EQ(shard, ShardOf(id));
  if (obs::Enabled()) {
    thread_local uint64_t calls = 0;
    if ((++calls & kAccumSampleMask) == 0) {
      AccumRowsSampledCounter()->Add(kAccumSampleMask + 1);
    }
  }
  GradShard& s = shards_[shard];
  auto [it, inserted] = s.index.try_emplace(id, s.ids.size());
  if (inserted) {
    s.ids.push_back(id);
    s.grads.resize(s.grads.size() + dim_, 0.0f);
  }
  float* slot = s.grads.data() + it->second * dim_;
  for (size_t i = 0; i < dim_; ++i) slot[i] += grad[i];
}

const float* EmbeddingTable::AccumulatedGrad(int32_t id) const {
  const GradShard& s = shards_[ShardOf(id)];
  const auto it = s.index.find(id);
  if (it == s.index.end()) return nullptr;
  return s.grads.data() + it->second * dim_;
}

size_t EmbeddingTable::touched_count() const {
  size_t total = 0;
  for (const GradShard& s : shards_) total += s.ids.size();
  return total;
}

void EmbeddingTable::SparseAdamStep(const AdamConfig& config) {
  OPTINTER_TRACE_SPAN("sparse_adam_step");
  RowsUpdatedCounter()->Add(touched_count());
  ++step_;
  const float b1 = config.beta1;
  const float b2 = config.beta2;
  const float bc1 = 1.0f - std::pow(b1, static_cast<float>(step_));
  const float bc2 = 1.0f - std::pow(b2, static_cast<float>(step_));
  // Each touched id is updated exactly once from its accumulated gradient,
  // so iteration order (shard-by-shard here vs interleaved serially) never
  // changes the resulting parameters.
  for (GradShard& s : shards_) {
    for (size_t t = 0; t < s.ids.size(); ++t) {
      const int32_t id = s.ids[t];
      const float* g_row = s.grads.data() + t * dim_;
      float* w = value_.data() + static_cast<size_t>(id) * dim_;
      float* m = m_.data() + static_cast<size_t>(id) * dim_;
      float* v = v_.data() + static_cast<size_t>(id) * dim_;
      for (size_t i = 0; i < dim_; ++i) {
        const float gi = g_row[i] + l2 * w[i];
        m[i] = b1 * m[i] + (1.0f - b1) * gi;
        v[i] = b2 * v[i] + (1.0f - b2) * gi * gi;
        w[i] -= lr * (m[i] / bc1) / (std::sqrt(v[i] / bc2) + config.eps);
      }
    }
  }
  ClearGrads();
}

void EmbeddingTable::SparseAdamStepPrepared(const AdamConfig& config) {
  OPTINTER_TRACE_SPAN("sparse_adam_step");
  RowsUpdatedCounter()->Add(prep_count_);
  ++step_;
  const float b1 = config.beta1;
  const float b2 = config.beta2;
  const float bc1 = 1.0f - std::pow(b1, static_cast<float>(step_));
  const float bc2 = 1.0f - std::pow(b2, static_cast<float>(step_));
  for (size_t t = 0; t < prep_count_; ++t) {
    const int32_t id = prep_ids_[t];
    const float* g_row = prep_grads_.data() + t * dim_;
    float* w = value_.data() + static_cast<size_t>(id) * dim_;
    float* m = m_.data() + static_cast<size_t>(id) * dim_;
    float* v = v_.data() + static_cast<size_t>(id) * dim_;
    for (size_t i = 0; i < dim_; ++i) {
      const float gi = g_row[i] + l2 * w[i];
      m[i] = b1 * m[i] + (1.0f - b1) * gi;
      v[i] = b2 * v[i] + (1.0f - b2) * gi * gi;
      w[i] -= lr * (m[i] / bc1) / (std::sqrt(v[i] / bc2) + config.eps);
    }
  }
  ClearPreparedGrads();
}

void EmbeddingTable::SparseSgdStep() {
  OPTINTER_TRACE_SPAN("sparse_sgd_step");
  RowsUpdatedCounter()->Add(touched_count());
  for (GradShard& s : shards_) {
    for (size_t t = 0; t < s.ids.size(); ++t) {
      const int32_t id = s.ids[t];
      const float* g_row = s.grads.data() + t * dim_;
      float* w = value_.data() + static_cast<size_t>(id) * dim_;
      for (size_t i = 0; i < dim_; ++i) {
        w[i] -= lr * (g_row[i] + l2 * w[i]);
      }
    }
  }
  ClearGrads();
}

void EmbeddingTable::ClearGrads() {
  for (GradShard& s : shards_) {
    s.index.clear();
    s.ids.clear();
    s.grads.clear();
  }
}

}  // namespace optinter
