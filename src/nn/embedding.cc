#include "nn/embedding.h"

#include <cmath>
#include <cstdlib>
#include <cstring>

#include "common/string_util.h"
#include "data/hash_encoder.h"
#include "nn/init.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "tensor/simd.h"

namespace optinter {

namespace {

constexpr size_t kL = simd::kLanes;

// One Adam row update over dim slots, vectorized. Rows are updated serially
// (each touched backing row exactly once), so there is no chunk-boundary
// concern — the helpers are shared by the shard and prepared paths so both
// produce identical bits for identical accumulated gradients.
inline void AdamUpdateRow(float* w, float* m, float* v, const float* g,
                          size_t dim, float lr, float l2, float b1, float b2,
                          float bc1, float bc2, float eps) {
  const simd::VecF l2_v = simd::Set1(l2);
  const simd::VecF b1_v = simd::Set1(b1);
  const simd::VecF b2_v = simd::Set1(b2);
  const simd::VecF omb1_v = simd::Set1(1.0f - b1);
  const simd::VecF omb2_v = simd::Set1(1.0f - b2);
  const simd::VecF bc1_v = simd::Set1(bc1);
  const simd::VecF bc2_v = simd::Set1(bc2);
  const simd::VecF lr_v = simd::Set1(lr);
  const simd::VecF eps_v = simd::Set1(eps);
  size_t i = 0;
  for (; i + kL <= dim; i += kL) {
    const simd::VecF wv = simd::LoadU(w + i);
    const simd::VecF gi = simd::MulAdd(l2_v, wv, simd::LoadU(g + i));
    const simd::VecF mv =
        simd::MulAdd(b1_v, simd::LoadU(m + i), simd::Mul(omb1_v, gi));
    const simd::VecF vv = simd::MulAdd(b2_v, simd::LoadU(v + i),
                                       simd::Mul(simd::Mul(omb2_v, gi), gi));
    simd::StoreU(m + i, mv);
    simd::StoreU(v + i, vv);
    const simd::VecF denom =
        simd::Add(simd::Sqrt(simd::Div(vv, bc2_v)), eps_v);
    const simd::VecF upd =
        simd::Div(simd::Mul(lr_v, simd::Div(mv, bc1_v)), denom);
    simd::StoreU(w + i, simd::Sub(wv, upd));
  }
  for (; i < dim; ++i) {
    const float gi = simd::MulAddScalar(l2, w[i], g[i]);
    m[i] = simd::MulAddScalar(b1, m[i], (1.0f - b1) * gi);
    v[i] = simd::MulAddScalar(b2, v[i], ((1.0f - b2) * gi) * gi);
    w[i] -= lr * (m[i] / bc1) / (std::sqrt(v[i] / bc2) + eps);
  }
}

// One SGD row update: w -= lr·(g + l2·w) as two fused muladds.
inline void SgdUpdateRow(float* w, const float* g, size_t dim, float lr,
                         float l2) {
  const simd::VecF l2_v = simd::Set1(l2);
  const simd::VecF neg_lr_v = simd::Set1(-lr);
  size_t i = 0;
  for (; i + kL <= dim; i += kL) {
    const simd::VecF wv = simd::LoadU(w + i);
    const simd::VecF t = simd::MulAdd(l2_v, wv, simd::LoadU(g + i));
    simd::StoreU(w + i, simd::MulAdd(neg_lr_v, t, wv));
  }
  for (; i < dim; ++i) {
    const float t = simd::MulAddScalar(l2, w[i], g[i]);
    w[i] = simd::MulAddScalar(-lr, t, w[i]);
  }
}

// dst += a (plain accumulate), shared by serial and sharded scatters.
inline void AddRow(float* dst, const float* a, size_t dim) {
  size_t i = 0;
  for (; i + kL <= dim; i += kL) {
    simd::StoreU(dst + i, simd::Add(simd::LoadU(dst + i), simd::LoadU(a + i)));
  }
  for (; i < dim; ++i) dst[i] += a[i];
}

// dst += a ⊙ b — the QR-mul product rule. One shared body so the serial,
// sharded, and prepared scatters produce identical bits.
inline void AddProductRow(float* dst, const float* a, const float* b,
                          size_t dim) {
  size_t i = 0;
  for (; i + kL <= dim; i += kL) {
    simd::StoreU(dst + i, simd::MulAdd(simd::LoadU(a + i), simd::LoadU(b + i),
                                       simd::LoadU(dst + i)));
  }
  for (; i < dim; ++i) dst[i] = simd::MulAddScalar(a[i], b[i], dst[i]);
}

// dst += a * scale — the continuous-feature gradient. The ONE body behind
// both the legacy shard scatter and the prepared slot scatter: a
// header-inlined loop in one path and a separately compiled loop in the
// other can round differently under FMA contraction, silently breaking
// legacy/prepared bit parity.
inline void AddScaledRow(float* dst, const float* a, float scale,
                         size_t dim) {
  const simd::VecF s = simd::Set1(scale);
  size_t i = 0;
  for (; i + kL <= dim; i += kL) {
    simd::StoreU(dst + i,
                 simd::MulAdd(simd::LoadU(a + i), s, simd::LoadU(dst + i)));
  }
  for (; i < dim; ++i) dst[i] = simd::MulAddScalar(a[i], scale, dst[i]);
}

// Rows touched per sparse step; handle cached once (registry never
// invalidates it).
obs::Counter* RowsUpdatedCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("emb.rows_updated");
  return c;
}

// Per-row AccumulateGrad call volume, sampled 1-in-64: the call itself is
// too hot for a span (it runs per (row, field) in every backward pass),
// but the sampled count makes the scatter volume visible in --report
// output next to the gather/scatter spans.
constexpr uint64_t kAccumSampleMask = 63;
obs::Counter* AccumRowsSampledCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("emb.accum_rows_sampled");
  return c;
}

size_t CeilSqrt(size_t v) {
  size_t r = static_cast<size_t>(std::ceil(std::sqrt(static_cast<double>(v))));
  while (r > 1 && (r - 1) * (r - 1) >= v) --r;
  while (r * r < v) ++r;
  return r;
}

}  // namespace

const char* EmbeddingBackendKindName(EmbeddingBackendKind kind) {
  switch (kind) {
    case EmbeddingBackendKind::kDense:
      return "dense";
    case EmbeddingBackendKind::kQR:
      return "qr";
    case EmbeddingBackendKind::kTiered:
      return "tiered";
  }
  return "?";
}

EmbeddingBackendConfig ResolveBackendForVocab(
    const EmbeddingBackendConfig& policy, size_t vocab_size) {
  EmbeddingBackendConfig cfg = policy;
  if (cfg.kind == EmbeddingBackendKind::kDense) {
    // CI drop-in-parity hook: flip dense-by-default embedding-layer
    // tables to a compressed backend without touching any call site.
    static const char* env = std::getenv("OPTINTER_EMBED_BACKEND");
    if (env != nullptr && env[0] != '\0') {
      const std::string v(env);
      if (v == "qr" || v == "qr_sum") {
        cfg.kind = EmbeddingBackendKind::kQR;
        cfg.qr_combine = QrCombine::kSum;
      } else if (v == "qr_mul") {
        cfg.kind = EmbeddingBackendKind::kQR;
        cfg.qr_combine = QrCombine::kMul;
      } else if (v == "tiered") {
        cfg.kind = EmbeddingBackendKind::kTiered;
      } else {
        CHECK(false) << "OPTINTER_EMBED_BACKEND='" << v
                     << "' is not one of: qr, qr_sum, qr_mul, tiered";
      }
    }
  }
  if (vocab_size < cfg.min_vocab) {
    cfg.kind = EmbeddingBackendKind::kDense;
  }
  return cfg;
}

EmbeddingTable::EmbeddingTable(std::string name, size_t vocab_size,
                               size_t dim, float lr_in, float l2_in,
                               EmbeddingBackendConfig config)
    : lr(lr_in), l2(l2_in), name_(std::move(name)), vocab_size_(vocab_size),
      dim_(dim), kind_(config.kind), qr_combine_(config.qr_combine) {
  CHECK_GT(vocab_size_, 0u);
  CHECK_GT(dim_, 0u);
  switch (kind_) {
    case EmbeddingBackendKind::kDense:
      backing_rows_ = vocab_size_;
      break;
    case EmbeddingBackendKind::kQR: {
      qr_rem_ = config.qr_rem != 0 ? config.qr_rem : CeilSqrt(vocab_size_);
      if (qr_rem_ > vocab_size_) qr_rem_ = vocab_size_;
      CHECK_GT(qr_rem_, 0u);
      qr_num_q_ = (vocab_size_ + qr_rem_ - 1) / qr_rem_;
      backing_rows_ = qr_num_q_ + qr_rem_;
      break;
    }
    case EmbeddingBackendKind::kTiered: {
      const size_t want_hot =
          config.tier_hot != 0 ? config.tier_hot
                               : std::max<size_t>(1, vocab_size_ / 16);
      tier_buckets_ = config.tier_buckets != 0
                          ? config.tier_buckets
                          : std::max<size_t>(1, vocab_size_ / 16);
      auto remap = std::make_shared<std::vector<int32_t>>(vocab_size_, -1);
      int32_t next_hot = 0;
      auto claim = [&](int32_t id) {
        if (id < 0 || static_cast<size_t>(id) >= vocab_size_) return;
        int32_t& slot = (*remap)[static_cast<size_t>(id)];
        if (slot >= 0) return;  // duplicate hot id
        slot = next_hot++;
      };
      if (!config.tier_hot_ids.empty()) {
        for (int32_t id : config.tier_hot_ids) {
          if (static_cast<size_t>(next_hot) >= want_hot) break;
          claim(id);
        }
      } else {
        // Fallback hot set {1..K}: the hashed encoder assigns ids 1..K to
        // the K most frequent values, so this is exact for hash-encoded
        // fields and a frequency-agnostic prior otherwise.
        for (size_t id = 1;
             id < vocab_size_ && static_cast<size_t>(next_hot) < want_hot;
             ++id) {
          claim(static_cast<int32_t>(id));
        }
      }
      tier_hot_rows_ = static_cast<size_t>(next_hot);
      for (size_t id = 0; id < vocab_size_; ++id) {
        int32_t& slot = (*remap)[id];
        if (slot >= 0) continue;
        slot = static_cast<int32_t>(
            tier_hot_rows_ +
            ShardStableHash64(id, config.tier_salt) % tier_buckets_);
      }
      remap_ = std::move(remap);
      backing_rows_ = tier_hot_rows_ + tier_buckets_;
      break;
    }
  }
  value_.Resize({backing_rows_, dim_});
  m_.Resize({backing_rows_, dim_});
  v_.Resize({backing_rows_, dim_});
}

void EmbeddingTable::Init(Rng* rng, double stddev) {
  // QR-mul rows are the element-wise product of two factors, so each
  // factor takes std sqrt(stddev) to keep the combined row's magnitude
  // near the conventional scale (E|q·r| ≈ stddev for q,r ~ N(0, √stddev)).
  const double s = (kind_ == EmbeddingBackendKind::kQR &&
                    qr_combine_ == QrCombine::kMul)
                       ? std::sqrt(stddev)
                       : stddev;
  NormalInit(&value_, 0.0, s, rng);
}

std::string EmbeddingTable::BackendDesc() const {
  switch (kind_) {
    case EmbeddingBackendKind::kDense:
      return "dense";
    case EmbeddingBackendKind::kQR:
      return StrFormat("%s(q=%zu,r=%zu)",
                       qr_combine_ == QrCombine::kMul ? "qr_mul" : "qr_sum",
                       qr_num_q_, qr_rem_);
    case EmbeddingBackendKind::kTiered:
      return StrFormat("tiered(hot=%zu,buckets=%zu)", tier_hot_rows_,
                       tier_buckets_);
  }
  return "?";
}

void EmbeddingTable::CopyRow(int32_t id, float* dst) const {
  CheckId(id, "CopyRow");
  switch (kind_) {
    case EmbeddingBackendKind::kDense:
      std::memcpy(dst, BackingRowPtr(id), dim_ * sizeof(float));
      return;
    case EmbeddingBackendKind::kTiered:
      std::memcpy(dst, BackingRowPtr((*remap_)[static_cast<size_t>(id)]),
                  dim_ * sizeof(float));
      return;
    case EmbeddingBackendKind::kQR: {
      const float* q = BackingRowPtr(PrimaryRowOf(id));
      const float* r = BackingRowPtr(SecondaryRowOf(id));
      size_t i = 0;
      if (qr_combine_ == QrCombine::kMul) {
        for (; i + kL <= dim_; i += kL) {
          simd::StoreU(dst + i,
                       simd::Mul(simd::LoadU(q + i), simd::LoadU(r + i)));
        }
        for (; i < dim_; ++i) dst[i] = q[i] * r[i];
      } else {
        for (; i + kL <= dim_; i += kL) {
          simd::StoreU(dst + i,
                       simd::Add(simd::LoadU(q + i), simd::LoadU(r + i)));
        }
        for (; i < dim_; ++i) dst[i] = q[i] + r[i];
      }
      return;
    }
  }
}

float* EmbeddingTable::GradSlotFor(size_t shard, int32_t row) {
  if (obs::Enabled()) {
    thread_local uint64_t calls = 0;
    if ((++calls & kAccumSampleMask) == 0) {
      AccumRowsSampledCounter()->Add(kAccumSampleMask + 1);
    }
  }
  GradShard& s = shards_[shard];
  auto [it, inserted] = s.index.try_emplace(row, s.rows.size());
  if (inserted) {
    s.rows.push_back(row);
    s.grads.resize(s.grads.size() + dim_, 0.0f);
  }
  return s.grads.data() + it->second * dim_;
}

void EmbeddingTable::AccumulateRow(size_t shard, int32_t row,
                                   const float* grad, const float* mul_by) {
  float* slot = GradSlotFor(shard, row);
  if (mul_by != nullptr) {
    AddProductRow(slot, grad, mul_by, dim_);
  } else {
    AddRow(slot, grad, dim_);
  }
}

void EmbeddingTable::AccumulateGrad(int32_t id, const float* grad) {
  CheckId(id, "AccumulateGrad");
  switch (kind_) {
    case EmbeddingBackendKind::kDense: {
      AccumulateRow(ShardOf(id), id, grad, nullptr);
      return;
    }
    case EmbeddingBackendKind::kTiered: {
      const int32_t row = (*remap_)[static_cast<size_t>(id)];
      AccumulateRow(ShardOf(row), row, grad, nullptr);
      return;
    }
    case EmbeddingBackendKind::kQR: {
      const int32_t q = PrimaryRowOf(id);
      const int32_t r = SecondaryRowOf(id);
      if (qr_combine_ == QrCombine::kMul) {
        AccumulateRow(ShardOf(q), q, grad, BackingRowPtr(r));
        AccumulateRow(ShardOf(r), r, grad, BackingRowPtr(q));
      } else {
        AccumulateRow(ShardOf(q), q, grad, nullptr);
        AccumulateRow(ShardOf(r), r, grad, nullptr);
      }
      return;
    }
  }
}

void EmbeddingTable::AccumulateGradForShard(size_t shard, int32_t id,
                                            const float* grad) {
  CheckId(id, "AccumulateGradForShard");
  switch (kind_) {
    case EmbeddingBackendKind::kDense: {
      if (ShardOf(id) == shard) AccumulateRow(shard, id, grad, nullptr);
      return;
    }
    case EmbeddingBackendKind::kTiered: {
      const int32_t row = (*remap_)[static_cast<size_t>(id)];
      if (ShardOf(row) == shard) AccumulateRow(shard, row, grad, nullptr);
      return;
    }
    case EmbeddingBackendKind::kQR: {
      const int32_t q = PrimaryRowOf(id);
      const int32_t r = SecondaryRowOf(id);
      const bool mul = qr_combine_ == QrCombine::kMul;
      if (ShardOf(q) == shard) {
        AccumulateRow(shard, q, grad, mul ? BackingRowPtr(r) : nullptr);
      }
      if (ShardOf(r) == shard) {
        AccumulateRow(shard, r, grad, mul ? BackingRowPtr(q) : nullptr);
      }
      return;
    }
  }
}

void EmbeddingTable::AccumulateScaledGradForShard(size_t shard, int32_t id,
                                                  const float* grad,
                                                  float scale) {
  CheckId(id, "AccumulateScaledGradForShard");
  CHECK(kind_ == EmbeddingBackendKind::kDense)
      << "embedding table '" << name_
      << "': scaled gradients are a continuous-feature path; table "
         "resolved to backend "
      << BackendDesc();
  if (ShardOf(id) == shard) {
    AddScaledRow(GradSlotFor(shard, id), grad, scale, dim_);
  }
}

void EmbeddingTable::AccumulatePreparedGradScaled(size_t slot,
                                                  const float* grad,
                                                  float scale) {
  AddScaledRow(prep_grads_.data() + slot * dim_, grad, scale, dim_);
}

void EmbeddingTable::AccumulatePreparedGradPrimary(size_t slot, int32_t id,
                                                   const float* grad) {
  float* dst = prep_grads_.data() + slot * dim_;
  if (kind_ == EmbeddingBackendKind::kQR &&
      qr_combine_ == QrCombine::kMul) {
    AddProductRow(dst, grad, BackingRowPtr(SecondaryRowOf(id)), dim_);
  } else {
    AddRow(dst, grad, dim_);
  }
}

void EmbeddingTable::AccumulatePreparedGradSecondary(size_t slot, int32_t id,
                                                     const float* grad) {
  float* dst = prep_grads_.data() + slot * dim_;
  if (qr_combine_ == QrCombine::kMul) {
    AddProductRow(dst, grad, BackingRowPtr(PrimaryRowOf(id)), dim_);
  } else {
    AddRow(dst, grad, dim_);
  }
}

const float* EmbeddingTable::AccumulatedGrad(int32_t id) const {
  CheckId(id, "AccumulatedGrad");
  return AccumulatedGradForRow(PrimaryRowOf(id));
}

const float* EmbeddingTable::AccumulatedGradForRow(int32_t row) const {
  const GradShard& s = shards_[ShardOf(row)];
  const auto it = s.index.find(row);
  if (it == s.index.end()) return nullptr;
  return s.grads.data() + it->second * dim_;
}

size_t EmbeddingTable::touched_count() const {
  size_t total = 0;
  for (const GradShard& s : shards_) total += s.rows.size();
  return total;
}

void EmbeddingTable::SparseAdamStep(const AdamConfig& config) {
  OPTINTER_TRACE_SPAN("sparse_adam_step");
  RowsUpdatedCounter()->Add(touched_count());
  ++step_;
  const float b1 = config.beta1;
  const float b2 = config.beta2;
  const float bc1 = 1.0f - std::pow(b1, static_cast<float>(step_));
  const float bc2 = 1.0f - std::pow(b2, static_cast<float>(step_));
  // Each touched backing row is updated exactly once from its accumulated
  // gradient, so iteration order (shard-by-shard here vs interleaved
  // serially) never changes the resulting parameters.
  for (GradShard& s : shards_) {
    for (size_t t = 0; t < s.rows.size(); ++t) {
      const int32_t row = s.rows[t];
      const float* g_row = s.grads.data() + t * dim_;
      float* w = value_.data() + static_cast<size_t>(row) * dim_;
      float* m = m_.data() + static_cast<size_t>(row) * dim_;
      float* v = v_.data() + static_cast<size_t>(row) * dim_;
      AdamUpdateRow(w, m, v, g_row, dim_, lr, l2, b1, b2, bc1, bc2,
                    config.eps);
    }
  }
  ClearGrads();
}

void EmbeddingTable::SparseAdamStepPrepared(const AdamConfig& config) {
  OPTINTER_TRACE_SPAN("sparse_adam_step");
  RowsUpdatedCounter()->Add(prep_count_);
  ++step_;
  const float b1 = config.beta1;
  const float b2 = config.beta2;
  const float bc1 = 1.0f - std::pow(b1, static_cast<float>(step_));
  const float bc2 = 1.0f - std::pow(b2, static_cast<float>(step_));
  for (size_t t = 0; t < prep_count_; ++t) {
    const int32_t row = prep_rows_[t];
    const float* g_row = prep_grads_.data() + t * dim_;
    float* w = value_.data() + static_cast<size_t>(row) * dim_;
    float* m = m_.data() + static_cast<size_t>(row) * dim_;
    float* v = v_.data() + static_cast<size_t>(row) * dim_;
    AdamUpdateRow(w, m, v, g_row, dim_, lr, l2, b1, b2, bc1, bc2, config.eps);
  }
  ClearPreparedGrads();
}

void EmbeddingTable::SparseSgdStep() {
  OPTINTER_TRACE_SPAN("sparse_sgd_step");
  RowsUpdatedCounter()->Add(touched_count());
  for (GradShard& s : shards_) {
    for (size_t t = 0; t < s.rows.size(); ++t) {
      const int32_t row = s.rows[t];
      const float* g_row = s.grads.data() + t * dim_;
      float* w = value_.data() + static_cast<size_t>(row) * dim_;
      SgdUpdateRow(w, g_row, dim_, lr, l2);
    }
  }
  ClearGrads();
}

void EmbeddingTable::ClearGrads() {
  for (GradShard& s : shards_) {
    s.index.clear();
    s.rows.clear();
    s.grads.clear();
  }
}

}  // namespace optinter
