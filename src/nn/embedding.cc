#include "nn/embedding.h"

#include <cmath>

#include "nn/init.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "tensor/simd.h"

namespace optinter {

namespace {

constexpr size_t kL = simd::kLanes;

// One Adam row update over dim slots, vectorized. Rows are updated serially
// (each touched id exactly once), so there is no chunk-boundary concern —
// the helpers are shared by the shard and prepared paths so both produce
// identical bits for identical accumulated gradients.
inline void AdamUpdateRow(float* w, float* m, float* v, const float* g,
                          size_t dim, float lr, float l2, float b1, float b2,
                          float bc1, float bc2, float eps) {
  const simd::VecF l2_v = simd::Set1(l2);
  const simd::VecF b1_v = simd::Set1(b1);
  const simd::VecF b2_v = simd::Set1(b2);
  const simd::VecF omb1_v = simd::Set1(1.0f - b1);
  const simd::VecF omb2_v = simd::Set1(1.0f - b2);
  const simd::VecF bc1_v = simd::Set1(bc1);
  const simd::VecF bc2_v = simd::Set1(bc2);
  const simd::VecF lr_v = simd::Set1(lr);
  const simd::VecF eps_v = simd::Set1(eps);
  size_t i = 0;
  for (; i + kL <= dim; i += kL) {
    const simd::VecF wv = simd::LoadU(w + i);
    const simd::VecF gi = simd::MulAdd(l2_v, wv, simd::LoadU(g + i));
    const simd::VecF mv =
        simd::MulAdd(b1_v, simd::LoadU(m + i), simd::Mul(omb1_v, gi));
    const simd::VecF vv = simd::MulAdd(b2_v, simd::LoadU(v + i),
                                       simd::Mul(simd::Mul(omb2_v, gi), gi));
    simd::StoreU(m + i, mv);
    simd::StoreU(v + i, vv);
    const simd::VecF denom =
        simd::Add(simd::Sqrt(simd::Div(vv, bc2_v)), eps_v);
    const simd::VecF upd =
        simd::Div(simd::Mul(lr_v, simd::Div(mv, bc1_v)), denom);
    simd::StoreU(w + i, simd::Sub(wv, upd));
  }
  for (; i < dim; ++i) {
    const float gi = simd::MulAddScalar(l2, w[i], g[i]);
    m[i] = simd::MulAddScalar(b1, m[i], (1.0f - b1) * gi);
    v[i] = simd::MulAddScalar(b2, v[i], ((1.0f - b2) * gi) * gi);
    w[i] -= lr * (m[i] / bc1) / (std::sqrt(v[i] / bc2) + eps);
  }
}

// One SGD row update: w -= lr·(g + l2·w) as two fused muladds.
inline void SgdUpdateRow(float* w, const float* g, size_t dim, float lr,
                         float l2) {
  const simd::VecF l2_v = simd::Set1(l2);
  const simd::VecF neg_lr_v = simd::Set1(-lr);
  size_t i = 0;
  for (; i + kL <= dim; i += kL) {
    const simd::VecF wv = simd::LoadU(w + i);
    const simd::VecF t = simd::MulAdd(l2_v, wv, simd::LoadU(g + i));
    simd::StoreU(w + i, simd::MulAdd(neg_lr_v, t, wv));
  }
  for (; i < dim; ++i) {
    const float t = simd::MulAddScalar(l2, w[i], g[i]);
    w[i] = simd::MulAddScalar(-lr, t, w[i]);
  }
}
// Rows touched per sparse step; handle cached once (registry never
// invalidates it).
obs::Counter* RowsUpdatedCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("emb.rows_updated");
  return c;
}

// Per-row AccumulateGrad call volume, sampled 1-in-64: the call itself is
// too hot for a span (it runs per (row, field) in every backward pass),
// but the sampled count makes the scatter volume visible in --report
// output next to the gather/scatter spans.
constexpr uint64_t kAccumSampleMask = 63;
obs::Counter* AccumRowsSampledCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("emb.accum_rows_sampled");
  return c;
}
}  // namespace

EmbeddingTable::EmbeddingTable(std::string name, size_t vocab_size,
                               size_t dim, float lr_in, float l2_in)
    : lr(lr_in), l2(l2_in), name_(std::move(name)), vocab_size_(vocab_size),
      dim_(dim) {
  CHECK_GT(vocab_size_, 0u);
  CHECK_GT(dim_, 0u);
  value_.Resize({vocab_size_, dim_});
  m_.Resize({vocab_size_, dim_});
  v_.Resize({vocab_size_, dim_});
}

void EmbeddingTable::Init(Rng* rng, double stddev) {
  NormalInit(&value_, 0.0, stddev, rng);
}

void EmbeddingTable::AccumulateGradInShard(size_t shard, int32_t id,
                                           const float* grad) {
  CHECK_GE(id, 0);
  CHECK_LT(static_cast<size_t>(id), vocab_size_);
  CHECK_EQ(shard, ShardOf(id));
  if (obs::Enabled()) {
    thread_local uint64_t calls = 0;
    if ((++calls & kAccumSampleMask) == 0) {
      AccumRowsSampledCounter()->Add(kAccumSampleMask + 1);
    }
  }
  GradShard& s = shards_[shard];
  auto [it, inserted] = s.index.try_emplace(id, s.ids.size());
  if (inserted) {
    s.ids.push_back(id);
    s.grads.resize(s.grads.size() + dim_, 0.0f);
  }
  float* slot = s.grads.data() + it->second * dim_;
  size_t i = 0;
  for (; i + kL <= dim_; i += kL) {
    simd::StoreU(slot + i,
                 simd::Add(simd::LoadU(slot + i), simd::LoadU(grad + i)));
  }
  for (; i < dim_; ++i) slot[i] += grad[i];
}

const float* EmbeddingTable::AccumulatedGrad(int32_t id) const {
  const GradShard& s = shards_[ShardOf(id)];
  const auto it = s.index.find(id);
  if (it == s.index.end()) return nullptr;
  return s.grads.data() + it->second * dim_;
}

size_t EmbeddingTable::touched_count() const {
  size_t total = 0;
  for (const GradShard& s : shards_) total += s.ids.size();
  return total;
}

void EmbeddingTable::SparseAdamStep(const AdamConfig& config) {
  OPTINTER_TRACE_SPAN("sparse_adam_step");
  RowsUpdatedCounter()->Add(touched_count());
  ++step_;
  const float b1 = config.beta1;
  const float b2 = config.beta2;
  const float bc1 = 1.0f - std::pow(b1, static_cast<float>(step_));
  const float bc2 = 1.0f - std::pow(b2, static_cast<float>(step_));
  // Each touched id is updated exactly once from its accumulated gradient,
  // so iteration order (shard-by-shard here vs interleaved serially) never
  // changes the resulting parameters.
  for (GradShard& s : shards_) {
    for (size_t t = 0; t < s.ids.size(); ++t) {
      const int32_t id = s.ids[t];
      const float* g_row = s.grads.data() + t * dim_;
      float* w = value_.data() + static_cast<size_t>(id) * dim_;
      float* m = m_.data() + static_cast<size_t>(id) * dim_;
      float* v = v_.data() + static_cast<size_t>(id) * dim_;
      AdamUpdateRow(w, m, v, g_row, dim_, lr, l2, b1, b2, bc1, bc2,
                    config.eps);
    }
  }
  ClearGrads();
}

void EmbeddingTable::SparseAdamStepPrepared(const AdamConfig& config) {
  OPTINTER_TRACE_SPAN("sparse_adam_step");
  RowsUpdatedCounter()->Add(prep_count_);
  ++step_;
  const float b1 = config.beta1;
  const float b2 = config.beta2;
  const float bc1 = 1.0f - std::pow(b1, static_cast<float>(step_));
  const float bc2 = 1.0f - std::pow(b2, static_cast<float>(step_));
  for (size_t t = 0; t < prep_count_; ++t) {
    const int32_t id = prep_ids_[t];
    const float* g_row = prep_grads_.data() + t * dim_;
    float* w = value_.data() + static_cast<size_t>(id) * dim_;
    float* m = m_.data() + static_cast<size_t>(id) * dim_;
    float* v = v_.data() + static_cast<size_t>(id) * dim_;
    AdamUpdateRow(w, m, v, g_row, dim_, lr, l2, b1, b2, bc1, bc2, config.eps);
  }
  ClearPreparedGrads();
}

void EmbeddingTable::SparseSgdStep() {
  OPTINTER_TRACE_SPAN("sparse_sgd_step");
  RowsUpdatedCounter()->Add(touched_count());
  for (GradShard& s : shards_) {
    for (size_t t = 0; t < s.ids.size(); ++t) {
      const int32_t id = s.ids[t];
      const float* g_row = s.grads.data() + t * dim_;
      float* w = value_.data() + static_cast<size_t>(id) * dim_;
      SgdUpdateRow(w, g_row, dim_, lr, l2);
    }
  }
  ClearGrads();
}

void EmbeddingTable::ClearGrads() {
  for (GradShard& s : shards_) {
    s.index.clear();
    s.ids.clear();
    s.grads.clear();
  }
}

}  // namespace optinter
