#include "nn/embedding.h"

#include <cmath>

#include "nn/init.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace optinter {

namespace {
// Rows touched per sparse step; handle cached once (registry never
// invalidates it).
obs::Counter* RowsUpdatedCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("emb.rows_updated");
  return c;
}
}  // namespace

EmbeddingTable::EmbeddingTable(std::string name, size_t vocab_size,
                               size_t dim, float lr_in, float l2_in)
    : lr(lr_in), l2(l2_in), name_(std::move(name)), vocab_size_(vocab_size),
      dim_(dim) {
  CHECK_GT(vocab_size_, 0u);
  CHECK_GT(dim_, 0u);
  value_.Resize({vocab_size_, dim_});
  m_.Resize({vocab_size_, dim_});
  v_.Resize({vocab_size_, dim_});
}

void EmbeddingTable::Init(Rng* rng, double stddev) {
  NormalInit(&value_, 0.0, stddev, rng);
}

void EmbeddingTable::AccumulateGrad(int32_t id, const float* grad) {
  CHECK_GE(id, 0);
  CHECK_LT(static_cast<size_t>(id), vocab_size_);
  auto [it, inserted] = touched_index_.try_emplace(id, touched_ids_.size());
  if (inserted) {
    touched_ids_.push_back(id);
    touched_grads_.resize(touched_grads_.size() + dim_, 0.0f);
  }
  float* slot = touched_grads_.data() + it->second * dim_;
  for (size_t i = 0; i < dim_; ++i) slot[i] += grad[i];
}

void EmbeddingTable::SparseAdamStep(const AdamConfig& config) {
  OPTINTER_TRACE_SPAN("sparse_adam_step");
  RowsUpdatedCounter()->Add(touched_ids_.size());
  ++step_;
  const float b1 = config.beta1;
  const float b2 = config.beta2;
  const float bc1 = 1.0f - std::pow(b1, static_cast<float>(step_));
  const float bc2 = 1.0f - std::pow(b2, static_cast<float>(step_));
  for (size_t t = 0; t < touched_ids_.size(); ++t) {
    const int32_t id = touched_ids_[t];
    const float* g_row = touched_grads_.data() + t * dim_;
    float* w = value_.data() + static_cast<size_t>(id) * dim_;
    float* m = m_.data() + static_cast<size_t>(id) * dim_;
    float* v = v_.data() + static_cast<size_t>(id) * dim_;
    for (size_t i = 0; i < dim_; ++i) {
      const float gi = g_row[i] + l2 * w[i];
      m[i] = b1 * m[i] + (1.0f - b1) * gi;
      v[i] = b2 * v[i] + (1.0f - b2) * gi * gi;
      w[i] -= lr * (m[i] / bc1) / (std::sqrt(v[i] / bc2) + config.eps);
    }
  }
  ClearGrads();
}

void EmbeddingTable::SparseSgdStep() {
  OPTINTER_TRACE_SPAN("sparse_sgd_step");
  RowsUpdatedCounter()->Add(touched_ids_.size());
  for (size_t t = 0; t < touched_ids_.size(); ++t) {
    const int32_t id = touched_ids_[t];
    const float* g_row = touched_grads_.data() + t * dim_;
    float* w = value_.data() + static_cast<size_t>(id) * dim_;
    for (size_t i = 0; i < dim_; ++i) {
      w[i] -= lr * (g_row[i] + l2 * w[i]);
    }
  }
  ClearGrads();
}

void EmbeddingTable::ClearGrads() {
  touched_index_.clear();
  touched_ids_.clear();
  touched_grads_.clear();
}

}  // namespace optinter
