// Dense trainable parameter: value + gradient + per-parameter hyperparams.
//
// The paper trains different parameter families with different learning
// rates and L2 strengths (Table IV: lr_o / lr_c / lr_a, l2_o / l2_c), so
// the learning rate and weight decay live on the parameter itself and the
// optimizer honours them.

#pragma once

#include <string>

#include "tensor/tensor.h"

namespace optinter {

/// A dense trainable tensor with its gradient buffer.
struct DenseParam {
  /// Human-readable name for diagnostics ("mlp/linear0/weight").
  std::string name;
  Tensor value;
  Tensor grad;
  /// Per-parameter learning rate (absolute, not a scale).
  float lr = 1e-3f;
  /// L2 regularization strength applied by the optimizer (decoupled).
  float l2 = 0.0f;

  /// Allocates value/grad with the given shape (zero-filled).
  void Resize(std::vector<size_t> shape) {
    value.Resize(shape);
    grad.Resize(std::move(shape));
  }

  void ZeroGrad() { grad.Zero(); }

  size_t size() const { return value.size(); }
};

}  // namespace optinter
