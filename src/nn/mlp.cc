#include "nn/mlp.h"
#include "obs/trace.h"

namespace optinter {

Mlp::Mlp(std::string name, size_t in_dim, const MlpConfig& config, Rng* rng)
    : in_dim_(in_dim), config_(config) {
  CHECK_GT(in_dim, 0u);
  CHECK_GT(config.out_dim, 0u);
  size_t prev = in_dim;
  for (size_t li = 0; li < config.hidden.size(); ++li) {
    const size_t width = config.hidden[li];
    linears_.emplace_back(name + "/linear" + std::to_string(li), prev, width,
                          config.lr, config.l2, rng);
    relus_.emplace_back();
    if (config.layer_norm) {
      norms_.emplace_back(name + "/ln" + std::to_string(li), width,
                          config.lr, config.l2);
    }
    prev = width;
  }
  linears_.emplace_back(name + "/out", prev, config.out_dim, config.lr,
                        config.l2, rng);
}

void Mlp::Forward(const Tensor& x, Tensor* y, MlpWorkspace* ws) const {
  OPTINTER_TRACE_SPAN("mlp_forward");
  const size_t n_hidden = config_.hidden.size();
  ws->linears.resize(linears_.size());
  ws->relus.resize(relus_.size());
  ws->norms.resize(norms_.size());
  // Per-hidden slots: post-linear, post-relu, and (with layer_norm) the
  // normed output in its own workspace slot — a local temporary here would
  // reallocate every call and break the steady-state zero-allocation
  // contract for TrainStep.
  const size_t per_hidden = config_.layer_norm ? 3 : 2;
  ws->acts.resize(per_hidden * n_hidden + 1);
  const Tensor* cur = &x;
  size_t slot = 0;
  for (size_t li = 0; li < n_hidden; ++li) {
    Tensor& lin_out = ws->acts[slot++];
    linears_[li].Forward(*cur, &lin_out, &ws->linears[li]);
    Tensor& act_out = ws->acts[slot++];
    relus_[li].Forward(lin_out, &act_out, &ws->relus[li]);
    cur = &act_out;
    if (config_.layer_norm) {
      Tensor& normed = ws->acts[slot++];
      norms_[li].Forward(act_out, &normed, &ws->norms[li]);
      cur = &normed;
    }
  }
  linears_[n_hidden].Forward(*cur, y, &ws->linears[n_hidden]);
}

void Mlp::Backward(const Tensor& dy, Tensor* dx, MlpWorkspace* ws) {
  OPTINTER_TRACE_SPAN("mlp_backward");
  const size_t n_hidden = config_.hidden.size();
  CHECK_EQ(ws->linears.size(), linears_.size())
      << "Backward without a matching Forward on this workspace";
  ws->grads.resize(2 * n_hidden + 2);
  const Tensor* cur_grad = &dy;
  size_t slot = 0;
  // Output layer.
  {
    Tensor& g = ws->grads[slot++];
    Tensor* target = (n_hidden == 0) ? dx : &g;
    linears_[n_hidden].Backward(*cur_grad, target, ws->linears[n_hidden]);
    if (n_hidden == 0) return;
    cur_grad = &g;
  }
  for (size_t li = n_hidden; li-- > 0;) {
    if (config_.layer_norm) {
      Tensor& g = ws->grads[slot++];
      norms_[li].Backward(*cur_grad, &g, ws->norms[li]);
      cur_grad = &g;
    }
    Tensor& g_relu = ws->grads[slot++];
    relus_[li].Backward(*cur_grad, &g_relu, ws->relus[li]);
    cur_grad = &g_relu;
    Tensor* target = (li == 0) ? dx : &ws->grads[slot++];
    linears_[li].Backward(*cur_grad, target, ws->linears[li]);
    if (li != 0) cur_grad = target;
  }
}

void Mlp::RegisterParams(Optimizer* opt) {
  for (auto& l : linears_) l.RegisterParams(opt);
  for (auto& n : norms_) n.RegisterParams(opt);
}

size_t Mlp::ParamCount() const {
  size_t total = 0;
  for (const auto& l : linears_) total += l.ParamCount();
  for (const auto& n : norms_) total += n.ParamCount();
  return total;
}

}  // namespace optinter
