// Batch-oriented layers with explicit forward/backward.
//
// Every layer caches what its backward pass needs during Forward(); calling
// Backward() without a preceding Forward() on the same batch is a
// programmer error. Parameter gradients accumulate (ZeroGrad between
// steps); input gradients are overwritten.

#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "nn/optimizer.h"
#include "nn/param.h"
#include "tensor/tensor.h"

namespace optinter {

/// Fully connected layer: y = x W^T + b with W of shape [out × in].
class Linear {
 public:
  Linear(std::string name, size_t in_dim, size_t out_dim, float lr,
         float l2, Rng* rng);

  /// y: [B × out]. Caches x for the backward pass.
  void Forward(const Tensor& x, Tensor* y);

  /// Accumulates dW, db; writes dx (pass nullptr to skip input grads,
  /// e.g. for the first layer).
  void Backward(const Tensor& dy, Tensor* dx);

  void RegisterParams(Optimizer* opt);
  size_t ParamCount() const { return weight.size() + bias.size(); }

  size_t in_dim() const { return in_dim_; }
  size_t out_dim() const { return out_dim_; }

  DenseParam weight;  // [out × in]
  DenseParam bias;    // [out]

 private:
  size_t in_dim_;
  size_t out_dim_;
  Tensor x_cache_;
};

/// Elementwise ReLU.
class Relu {
 public:
  void Forward(const Tensor& x, Tensor* y);
  void Backward(const Tensor& dy, Tensor* dx);

 private:
  Tensor mask_;
};

/// Layer normalization over the feature dimension of a [B × D] batch,
/// with learnable gain/bias (paper Eq. 11).
class LayerNorm {
 public:
  LayerNorm(std::string name, size_t dim, float lr, float l2);

  void Forward(const Tensor& x, Tensor* y);
  void Backward(const Tensor& dy, Tensor* dx);

  void RegisterParams(Optimizer* opt);
  size_t ParamCount() const { return gamma.size() + beta.size(); }

  DenseParam gamma;  // [D], init 1
  DenseParam beta;   // [D], init 0

 private:
  size_t dim_;
  static constexpr float kEps = 1e-5f;
  Tensor xhat_cache_;    // [B × D]
  Tensor inv_std_cache_; // [B]
};

/// Binary cross-entropy from logits (paper Eq. 13), mean over the batch.
///
/// Writes d(loss)/d(logit) into `dlogits` (length n) and returns the mean
/// loss. Numerically stable: loss_i = max(z,0) - z*y + log(1+exp(-|z|)).
float BceWithLogitsLoss(const float* logits, const float* labels, size_t n,
                        float* dlogits);

/// Convenience: sigmoid over a buffer.
void SigmoidForward(const float* z, size_t n, float* out);

}  // namespace optinter
