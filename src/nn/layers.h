// Batch-oriented layers with explicit forward/backward.
//
// Every layer caches what its backward pass needs during Forward();
// calling Backward() without a preceding Forward() on the same batch is a
// programmer error. Parameter gradients accumulate (ZeroGrad between
// steps); input gradients are overwritten.
//
// Re-entrancy: the workspace-taking Forward overloads are const and keep
// all per-call state in the caller's workspace, so one layer can serve
// concurrent forward passes on different batches (parameters must be
// quiescent, i.e. no concurrent optimizer step). The workspace-less
// overloads use a private default workspace and are single-caller, like
// the original API. Backward accumulates into shared parameter gradients
// and must not run concurrently with another Backward on the same layer.
//
// Determinism: the parallel paths inside Backward use fixed chunk grids
// (a function of the batch shape only, never the pool size) with ordered
// reductions, so results are bit-identical at any thread count.

#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "nn/optimizer.h"
#include "nn/param.h"
#include "nn/workspace.h"
#include "tensor/tensor.h"

namespace optinter {

/// Fully connected layer: y = x W^T + b with W of shape [out × in].
class Linear {
 public:
  Linear(std::string name, size_t in_dim, size_t out_dim, float lr,
         float l2, Rng* rng);

  /// y: [B × out]. Caches x in `ws` for the backward pass. Re-entrant:
  /// concurrent calls with distinct workspaces are safe.
  void Forward(const Tensor& x, Tensor* y, LinearWorkspace* ws) const;

  /// Single-caller convenience using the layer's default workspace.
  void Forward(const Tensor& x, Tensor* y) { Forward(x, y, &ws_); }

  /// Accumulates dW, db; writes dx (pass nullptr to skip input grads,
  /// e.g. for the first layer). `ws` must come from the matching Forward.
  void Backward(const Tensor& dy, Tensor* dx, const LinearWorkspace& ws);

  void Backward(const Tensor& dy, Tensor* dx) { Backward(dy, dx, ws_); }

  void RegisterParams(Optimizer* opt);
  size_t ParamCount() const { return weight.size() + bias.size(); }

  size_t in_dim() const { return in_dim_; }
  size_t out_dim() const { return out_dim_; }

  DenseParam weight;  // [out × in]
  DenseParam bias;    // [out]

 private:
  size_t in_dim_;
  size_t out_dim_;
  LinearWorkspace ws_;
};

/// Elementwise ReLU.
class Relu {
 public:
  void Forward(const Tensor& x, Tensor* y, ReluWorkspace* ws) const;
  void Forward(const Tensor& x, Tensor* y) { Forward(x, y, &ws_); }

  void Backward(const Tensor& dy, Tensor* dx, const ReluWorkspace& ws) const;
  void Backward(const Tensor& dy, Tensor* dx) { Backward(dy, dx, ws_); }

 private:
  ReluWorkspace ws_;
};

/// Layer normalization over the feature dimension of a [B × D] batch,
/// with learnable gain/bias (paper Eq. 11).
class LayerNorm {
 public:
  LayerNorm(std::string name, size_t dim, float lr, float l2);

  void Forward(const Tensor& x, Tensor* y, LayerNormWorkspace* ws) const;
  void Forward(const Tensor& x, Tensor* y) { Forward(x, y, &ws_); }

  void Backward(const Tensor& dy, Tensor* dx, const LayerNormWorkspace& ws);
  void Backward(const Tensor& dy, Tensor* dx) { Backward(dy, dx, ws_); }

  void RegisterParams(Optimizer* opt);
  size_t ParamCount() const { return gamma.size() + beta.size(); }

  DenseParam gamma;  // [D], init 1
  DenseParam beta;   // [D], init 0

 private:
  size_t dim_;
  static constexpr float kEps = 1e-5f;
  LayerNormWorkspace ws_;
};

/// Binary cross-entropy from logits (paper Eq. 13), mean over the batch.
///
/// Writes d(loss)/d(logit) into `dlogits` (length n) and returns the mean
/// loss. Numerically stable: loss_i = max(z,0) - z*y + log(1+exp(-|z|)).
float BceWithLogitsLoss(const float* logits, const float* labels, size_t n,
                        float* dlogits);

/// Convenience: sigmoid over a buffer.
void SigmoidForward(const float* z, size_t n, float* out);

}  // namespace optinter
