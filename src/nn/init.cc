#include "nn/init.h"

#include <cmath>

namespace optinter {

void XavierUniform(Tensor* t, size_t fan_in, size_t fan_out, Rng* rng) {
  CHECK_GT(fan_in + fan_out, 0u);
  const double bound =
      std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  UniformInit(t, -bound, bound, rng);
}

void NormalInit(Tensor* t, double mean, double stddev, Rng* rng) {
  for (size_t i = 0; i < t->size(); ++i) {
    (*t)[i] = static_cast<float>(rng->Gaussian(mean, stddev));
  }
}

void UniformInit(Tensor* t, double lo, double hi, Rng* rng) {
  for (size_t i = 0; i < t->size(); ++i) {
    (*t)[i] = static_cast<float>(rng->Uniform(lo, hi));
  }
}

void ConstantInit(Tensor* t, float value) { t->Fill(value); }

}  // namespace optinter
