// Generic training / evaluation loop for CtrModel instances.

#pragma once

#include <string>
#include <vector>

#include "data/batch.h"
#include "models/model.h"

namespace optinter {

/// Which validation metric gates early stopping.
enum class StopMetric {
  /// Minimize validation log loss (guards calibration drift — memorized
  /// cross tables overfit in confidence before they overfit in ranking).
  kLogLoss,
  /// Maximize validation AUC.
  kAuc,
};

/// Options for TrainModel.
struct TrainOptions {
  size_t epochs = 3;
  size_t batch_size = 512;
  uint64_t seed = 1;
  /// Stop after this many epochs without validation improvement
  /// (0 disables early stopping; requires a non-empty val split).
  size_t patience = 1;
  StopMetric stop_metric = StopMetric::kLogLoss;
  bool verbose = false;
};

/// AUC + log loss of one evaluation pass.
struct EvalMetrics {
  double auc = 0.0;
  double logloss = 0.0;
};

/// Outcome of a full training run.
struct TrainSummary {
  EvalMetrics final_val;
  EvalMetrics final_test;
  std::vector<double> epoch_train_losses;
  std::vector<double> epoch_val_aucs;
  size_t epochs_run = 0;
  double seconds = 0.0;
};

/// Evaluates `model` on the given rows (batched, no gradient work).
EvalMetrics EvaluateModel(CtrModel* model, const EncodedDataset& data,
                          const std::vector<size_t>& rows,
                          size_t batch_size = 2048);

/// Trains `model` on splits.train with per-epoch validation on
/// splits.val, early stopping, and a final test evaluation on
/// splits.test.
TrainSummary TrainModel(CtrModel* model, const EncodedDataset& data,
                        const Splits& splits, const TrainOptions& options);

}  // namespace optinter
