// Generic training / evaluation loop for CtrModel instances.

#pragma once

#include <string>
#include <vector>

#include "data/batch.h"
#include "models/model.h"
#include "obs/json.h"

namespace optinter {

namespace obs {
class RunReport;
}  // namespace obs

/// Which validation metric gates early stopping.
enum class StopMetric {
  /// Minimize validation log loss (guards calibration drift — memorized
  /// cross tables overfit in confidence before they overfit in ranking).
  kLogLoss,
  /// Maximize validation AUC.
  kAuc,
};

/// True when `score` beats `best_score` by more than the metric-aware
/// improvement tolerance used for early stopping. Scores are oriented so
/// larger is better (AUC, or -logloss). AUC is bounded in [0, 1], so a
/// genuine gain on a large validation set can be far below the 1e-6 that
/// is a sensible noise floor for log loss; a single absolute threshold
/// for both metrics silently converted real AUC gains into stale epochs.
bool ScoreImproved(double score, double best_score, StopMetric metric);

/// Options for TrainModel.
struct TrainOptions {
  size_t epochs = 3;
  size_t batch_size = 512;
  uint64_t seed = 1;
  /// Stop after this many epochs without validation improvement
  /// (0 disables early stopping; requires a non-empty val split).
  size_t patience = 1;
  StopMetric stop_metric = StopMetric::kLogLoss;
  bool verbose = false;
  /// Run the epoch loop through the pipelined executor (batch t+1's
  /// PrepareBatch overlaps batch t's compute) when the model supports the
  /// phased TrainStep protocol; other models fall back to the serial loop.
  /// Bit-identical to the serial loop at any thread count — see
  /// src/train/pipeline_executor.h.
  bool pipeline = true;
  /// Optional: a report armed with RunReport::WriteEvery is ticked at
  /// quiescent points (after each step on the pipelined path, each batch
  /// on the serial path, and after every epoch) so long runs flush
  /// progress without waiting for the final write. Not owned.
  obs::RunReport* report = nullptr;
  /// Live scrape endpoint for the duration of the TrainModel call
  /// (obs/http_exporter.h): -1 = none (default), 0 = ephemeral port,
  /// >0 = that port on loopback. Serves /metrics, /healthz, and /varz.
  int metrics_port = -1;
};

/// AUC + log loss of one evaluation pass.
struct EvalMetrics {
  double auc = 0.0;
  double logloss = 0.0;
};

/// Options for EvaluateModel.
struct EvalOptions {
  size_t batch_size = 2048;
  /// Run evaluation batch-parallel: the label gather fans across the
  /// thread pool, and when the model supports re-entrant Predict
  /// (CtrModel::SupportsReentrantPredict) whole batches are predicted
  /// concurrently, each task owning a private ForwardContext. Every batch
  /// writes a disjoint slice of the stitched result at an offset fixed by
  /// the batch grid, so the metrics are bit-identical to the serial path.
  /// Models without re-entrant Predict fall back to in-order batches on
  /// the calling thread (the kernels inside Predict still use the pool).
  bool parallel = true;
  /// When false, a parallel evaluation of a model WITHOUT re-entrant
  /// Predict fails up front (CHECK with an actionable message) instead of
  /// silently degrading to the serial path — callers that depend on
  /// batch-parallel eval throughput (the serving layer, latency benches)
  /// set this to make the degradation loud.
  bool allow_serial_fallback = true;
};

/// Per-epoch wall-clock and throughput record. TrainStep fuses forward,
/// backward and the optimizer update, so train_seconds covers all three;
/// eval_seconds is the validation pass.
struct EpochTelemetry {
  size_t epoch = 0;
  double train_seconds = 0.0;
  double eval_seconds = 0.0;
  /// Training rows consumed this epoch / train_seconds.
  double train_rows_per_sec = 0.0;
  double mean_train_loss = 0.0;
  /// Whether this epoch improved the early-stopping score (and therefore
  /// refreshed the best-checkpoint snapshot).
  bool improved = false;
};

/// Run-level observability for one TrainModel call (fields documented in
/// DESIGN.md).
struct TrainTelemetry {
  std::vector<EpochTelemetry> epochs;
  double train_seconds_total = 0.0;
  double eval_seconds_total = 0.0;
  /// Aggregate training throughput over all epochs.
  double train_rows_per_sec = 0.0;
  /// Epoch whose snapshot was restored as the final weights (0 when no
  /// validation split / no snapshot).
  size_t best_epoch = 0;
  bool early_stopped = false;
  bool restored_best_snapshot = false;
};

/// Outcome of a full training run.
struct TrainSummary {
  EvalMetrics final_val;
  EvalMetrics final_test;
  std::vector<double> epoch_train_losses;
  std::vector<double> epoch_val_aucs;
  size_t epochs_run = 0;
  double seconds = 0.0;
  TrainTelemetry telemetry;
};

/// Evaluates `model` on the given rows (batched, no gradient work).
EvalMetrics EvaluateModel(CtrModel* model, const EncodedDataset& data,
                          const std::vector<size_t>& rows,
                          const EvalOptions& options);

/// Back-compat overload: batch size only, parallel path.
EvalMetrics EvaluateModel(CtrModel* model, const EncodedDataset& data,
                          const std::vector<size_t>& rows,
                          size_t batch_size = 2048);

/// Trains `model` on splits.train with per-epoch validation on
/// splits.val, early stopping, and a final test evaluation on
/// splits.test.
TrainSummary TrainModel(CtrModel* model, const EncodedDataset& data,
                        const Splits& splits, const TrainOptions& options);

/// JSON forms for run reports (obs/run_report.h). Field names mirror the
/// struct members.
obs::JsonValue EvalMetricsToJson(const EvalMetrics& metrics);
obs::JsonValue TelemetryToJson(const TrainTelemetry& telemetry);
obs::JsonValue TrainSummaryToJson(const TrainSummary& summary);

}  // namespace optinter
