#include "train/trainer.h"

#include "common/logging.h"
#include "common/stopwatch.h"
#include "metrics/metrics.h"

namespace optinter {

EvalMetrics EvaluateModel(CtrModel* model, const EncodedDataset& data,
                          const std::vector<size_t>& rows,
                          size_t batch_size) {
  CHECK(!rows.empty());
  std::vector<float> all_probs;
  std::vector<float> all_labels;
  all_probs.reserve(rows.size());
  all_labels.reserve(rows.size());
  std::vector<float> probs;
  for (size_t start = 0; start < rows.size(); start += batch_size) {
    Batch b;
    b.data = &data;
    b.rows = rows.data() + start;
    b.size = std::min(batch_size, rows.size() - start);
    model->Predict(b, &probs);
    for (size_t k = 0; k < b.size; ++k) {
      all_probs.push_back(probs[k]);
      all_labels.push_back(b.label(k));
    }
  }
  EvalMetrics m;
  m.auc = Auc(all_probs, all_labels);
  m.logloss = LogLoss(all_probs, all_labels);
  return m;
}

TrainSummary TrainModel(CtrModel* model, const EncodedDataset& data,
                        const Splits& splits, const TrainOptions& options) {
  CHECK(!splits.train.empty());
  Stopwatch timer;
  TrainSummary summary;
  Batcher batcher(&data, splits.train, options.batch_size, options.seed);
  // "Score" is oriented so larger is better regardless of metric.
  double best_val_score = -1e300;
  size_t stale_epochs = 0;
  // Best-checkpoint snapshot: the final evaluation uses the weights from
  // the best validation epoch, not the (possibly overfit) last one.
  std::vector<Tensor*> state;
  model->CollectState(&state);
  std::vector<Tensor> best_state;
  bool have_snapshot = false;
  for (size_t epoch = 0; epoch < options.epochs; ++epoch) {
    batcher.StartEpoch();
    double loss_sum = 0.0;
    size_t batches = 0;
    for (;;) {
      Batch b = batcher.Next();
      if (b.size == 0) break;
      loss_sum += model->TrainStep(b);
      ++batches;
    }
    const double mean_loss =
        batches > 0 ? loss_sum / static_cast<double>(batches) : 0.0;
    summary.epoch_train_losses.push_back(mean_loss);
    ++summary.epochs_run;

    if (!splits.val.empty()) {
      const EvalMetrics val = EvaluateModel(model, data, splits.val);
      summary.epoch_val_aucs.push_back(val.auc);
      summary.final_val = val;
      if (options.verbose) {
        LOG_INFO() << model->Name() << " epoch " << epoch
                   << " loss=" << mean_loss << " val_auc=" << val.auc
                   << " val_logloss=" << val.logloss;
      }
      const double score = options.stop_metric == StopMetric::kAuc
                               ? val.auc
                               : -val.logloss;
      if (score > best_val_score + 1e-6) {
        best_val_score = score;
        stale_epochs = 0;
        if (!state.empty()) {
          best_state.resize(state.size());
          for (size_t i = 0; i < state.size(); ++i) {
            best_state[i] = *state[i];
          }
          have_snapshot = true;
        }
      } else if (options.patience > 0 && ++stale_epochs >= options.patience) {
        if (options.verbose) {
          LOG_INFO() << model->Name() << " early stop at epoch " << epoch;
        }
        break;
      }
    } else if (options.verbose) {
      LOG_INFO() << model->Name() << " epoch " << epoch
                 << " loss=" << mean_loss;
    }
  }
  if (have_snapshot) {
    for (size_t i = 0; i < state.size(); ++i) {
      *state[i] = std::move(best_state[i]);
    }
    if (!splits.val.empty()) {
      summary.final_val = EvaluateModel(model, data, splits.val);
    }
  }
  if (!splits.test.empty()) {
    summary.final_test = EvaluateModel(model, data, splits.test);
  }
  summary.seconds = timer.Elapsed();
  return summary;
}

}  // namespace optinter
