#include "train/trainer.h"

#include <cstring>
#include <memory>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "metrics/metrics.h"
#include "obs/http_exporter.h"
#include "obs/registry.h"
#include "obs/run_report.h"
#include "obs/trace.h"
#include "train/pipeline_executor.h"

namespace optinter {

namespace {
obs::Counter* TrainRowsCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("train.rows");
  return c;
}

obs::Counter* EvalRowsCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("eval.rows");
  return c;
}
}  // namespace

bool ScoreImproved(double score, double best_score, StopMetric metric) {
  // Log loss: 1e-6 absolute is below any meaningful calibration change at
  // this scale. AUC: gains on a large validation set are quantized by
  // ~1/(P·N) pair swaps and can be genuine well below 1e-6, so the bar is
  // only there to reject float-summation jitter.
  const double tol = metric == StopMetric::kAuc ? 1e-9 : 1e-6;
  return score > best_score + tol;
}

EvalMetrics EvaluateModel(CtrModel* model, const EncodedDataset& data,
                          const std::vector<size_t>& rows,
                          const EvalOptions& options) {
  OPTINTER_TRACE_SPAN("evaluate");
  CHECK(!rows.empty());
  CHECK_GT(options.batch_size, 0u);
  // Fail at the call site, not deep inside a worker: a model without the
  // const re-entrant Predict overload cannot be evaluated batch-parallel,
  // and callers that opted out of the silent serial fallback want to know
  // immediately.
  if (options.parallel && !options.allow_serial_fallback) {
    CHECK(model->SupportsReentrantPredict())
        << model->Name()
        << " does not implement the const re-entrant Predict(batch, probs, "
           "ctx) overload, so parallel evaluation would silently fall back "
           "to the serial path; set EvalOptions::allow_serial_fallback or "
           "implement the overload";
  }
  const size_t n = rows.size();
  EvalRowsCounter()->Add(n);
  std::vector<float> all_probs(n);
  std::vector<float> all_labels(n);
  // Labels are pure dataset reads, independent of the model — gather them
  // across the pool while prediction owns the calling thread.
  auto gather_labels = [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) all_labels[i] = data.label(rows[i]);
  };
  if (options.parallel) {
    ParallelForChunks(0, n, gather_labels, /*min_chunk=*/1024);
  } else {
    gather_labels(0, n);
  }
  // Batch-parallel prediction when the model supports re-entrant Predict:
  // each task owns a ForwardContext and writes its slice of all_probs at a
  // deterministic offset, so the stitched result — and therefore
  // AUC/log-loss — is bit-identical to the serial path whatever the
  // batch-to-task assignment. Models without re-entrant Predict (layers
  // cache activations in members) run batches in order on this thread; the
  // kernels inside Predict still row-block across the pool on their own.
  const size_t num_batches = (n + options.batch_size - 1) / options.batch_size;
  auto predict_range = [&](size_t lo, size_t hi, std::vector<float>* probs,
                           ForwardContext* ctx) {
    const CtrModel* cm = model;
    for (size_t bi = lo; bi < hi; ++bi) {
      const size_t start = bi * options.batch_size;
      Batch b;
      b.data = &data;
      b.rows = rows.data() + start;
      b.size = std::min(options.batch_size, n - start);
      if (ctx != nullptr) {
        cm->Predict(b, probs, ctx);
      } else {
        model->Predict(b, probs);
      }
      std::memcpy(all_probs.data() + start, probs->data(),
                  b.size * sizeof(float));
    }
  };
  if (options.parallel && model->SupportsReentrantPredict() &&
      num_batches > 1) {
    OPTINTER_TRACE_SPAN("eval_batch_parallel");
    ParallelForChunks(0, num_batches,
                      [&](size_t lo, size_t hi) {
                        // Task-local context and scratch, reused across the
                        // task's batches.
                        std::vector<float> probs;
                        ForwardContext ctx;
                        predict_range(lo, hi, &probs, &ctx);
                      },
                      /*min_chunk=*/1);
  } else {
    std::vector<float> probs;  // per-batch scratch, reused across batches
    predict_range(0, num_batches, &probs, nullptr);
  }
  EvalMetrics m;
  m.auc = Auc(all_probs, all_labels);
  m.logloss = LogLoss(all_probs, all_labels);
  return m;
}

EvalMetrics EvaluateModel(CtrModel* model, const EncodedDataset& data,
                          const std::vector<size_t>& rows,
                          size_t batch_size) {
  EvalOptions options;
  options.batch_size = batch_size;
  return EvaluateModel(model, data, rows, options);
}

TrainSummary TrainModel(CtrModel* model, const EncodedDataset& data,
                        const Splits& splits, const TrainOptions& options) {
  CHECK(!splits.train.empty());
  Stopwatch timer;
  // Optional live scrape endpoint for the duration of the run. Failure to
  // bind must never abort training.
  std::unique_ptr<obs::HttpExporter> metrics_exporter;
  if (options.metrics_port >= 0) {
    obs::HttpExporterOptions exporter_options;
    exporter_options.port = options.metrics_port;
    metrics_exporter =
        std::make_unique<obs::HttpExporter>(std::move(exporter_options));
    std::string error;
    if (!metrics_exporter->Start(&error)) {
      LOG_WARNING() << "metrics exporter disabled: " << error;
      metrics_exporter.reset();
    } else if (options.verbose) {
      LOG_INFO() << "metrics exporter on 127.0.0.1:"
                 << metrics_exporter->port();
    }
  }
  TrainSummary summary;
  TrainTelemetry& telemetry = summary.telemetry;
  Batcher batcher(&data, splits.train, options.batch_size, options.seed);
  // "Score" is oriented so larger is better regardless of metric.
  double best_val_score = -1e300;
  size_t stale_epochs = 0;
  // Best-checkpoint snapshot: the final evaluation uses the weights from
  // the best validation epoch, not the (possibly overfit) last one.
  std::vector<Tensor*> state;
  model->CollectState(&state);
  std::vector<Tensor> best_state;
  bool have_snapshot = false;
  // One executor for the whole run so workspace capacity persists across
  // epochs (only the first epoch's first steps may allocate).
  const bool use_pipeline = options.pipeline && model->SupportsPhasedTrainStep();
  std::unique_ptr<PipelinedTrainExecutor> executor;
  if (use_pipeline) executor = std::make_unique<PipelinedTrainExecutor>(model);
  auto tick_report = [&] {
    if (options.report != nullptr) options.report->MaybeWriteEvery();
  };
  for (size_t epoch = 0; epoch < options.epochs; ++epoch) {
    Stopwatch epoch_timer;
    batcher.StartEpoch();
    double loss_sum = 0.0;
    size_t batches = 0;
    size_t rows_seen = 0;
    {
      OPTINTER_TRACE_SPAN("train_epoch");
      if (use_pipeline) {
        const PipelinedTrainExecutor::EpochStats stats =
            executor->RunEpoch(&batcher, tick_report);
        loss_sum = stats.loss_sum;
        batches = stats.batches;
        rows_seen = stats.rows;
      } else {
        for (;;) {
          Batch b = batcher.Next();
          if (b.size == 0) break;
          {
            OPTINTER_TRACE_SPAN("train_step");
            loss_sum += model->TrainStep(b);
          }
          rows_seen += b.size;
          ++batches;
          tick_report();
        }
      }
    }
    TrainRowsCounter()->Add(rows_seen);
    const double mean_loss =
        batches > 0 ? loss_sum / static_cast<double>(batches) : 0.0;
    summary.epoch_train_losses.push_back(mean_loss);
    ++summary.epochs_run;

    EpochTelemetry et;
    et.epoch = epoch;
    et.train_seconds = epoch_timer.Elapsed();
    et.train_rows_per_sec =
        et.train_seconds > 0.0
            ? static_cast<double>(rows_seen) / et.train_seconds
            : 0.0;
    et.mean_train_loss = mean_loss;
    telemetry.train_seconds_total += et.train_seconds;

    bool stop = false;
    if (!splits.val.empty()) {
      Stopwatch eval_timer;
      const EvalMetrics val = EvaluateModel(model, data, splits.val);
      et.eval_seconds = eval_timer.Elapsed();
      telemetry.eval_seconds_total += et.eval_seconds;
      summary.epoch_val_aucs.push_back(val.auc);
      summary.final_val = val;
      const double score = options.stop_metric == StopMetric::kAuc
                               ? val.auc
                               : -val.logloss;
      if (ScoreImproved(score, best_val_score, options.stop_metric)) {
        best_val_score = score;
        stale_epochs = 0;
        et.improved = true;
        telemetry.best_epoch = epoch;
        if (!state.empty()) {
          best_state.resize(state.size());
          for (size_t i = 0; i < state.size(); ++i) {
            best_state[i] = *state[i];
          }
          have_snapshot = true;
        }
      } else if (options.patience > 0 && ++stale_epochs >= options.patience) {
        telemetry.early_stopped = true;
        stop = true;
      }
      if (options.verbose) {
        LOG_INFO() << model->Name() << " epoch " << epoch
                   << " loss=" << mean_loss << " val_auc=" << val.auc
                   << " val_logloss=" << val.logloss << " train_s="
                   << et.train_seconds << " eval_s=" << et.eval_seconds
                   << " rows/s=" << et.train_rows_per_sec
                   << (et.improved ? " [improved]" : " [stale]");
        if (stop) {
          LOG_INFO() << model->Name() << " early stop at epoch " << epoch;
        }
      }
    } else if (options.verbose) {
      LOG_INFO() << model->Name() << " epoch " << epoch
                 << " loss=" << mean_loss << " train_s=" << et.train_seconds
                 << " rows/s=" << et.train_rows_per_sec;
    }
    telemetry.epochs.push_back(et);
    tick_report();
    if (stop) break;
  }
  if (have_snapshot) {
    for (size_t i = 0; i < state.size(); ++i) {
      *state[i] = std::move(best_state[i]);
    }
    telemetry.restored_best_snapshot = true;
    if (!splits.val.empty()) {
      Stopwatch eval_timer;
      summary.final_val = EvaluateModel(model, data, splits.val);
      telemetry.eval_seconds_total += eval_timer.Elapsed();
    }
  }
  if (!splits.test.empty()) {
    Stopwatch eval_timer;
    summary.final_test = EvaluateModel(model, data, splits.test);
    telemetry.eval_seconds_total += eval_timer.Elapsed();
  }
  if (telemetry.train_seconds_total > 0.0) {
    double rows_total = 0.0;
    for (const EpochTelemetry& et : telemetry.epochs) {
      rows_total += et.train_rows_per_sec * et.train_seconds;
    }
    telemetry.train_rows_per_sec =
        rows_total / telemetry.train_seconds_total;
  }
  summary.seconds = timer.Elapsed();
  return summary;
}

obs::JsonValue EvalMetricsToJson(const EvalMetrics& metrics) {
  obs::JsonValue out = obs::JsonValue::MakeObject();
  out.Set("auc", obs::JsonValue::Double(metrics.auc));
  out.Set("logloss", obs::JsonValue::Double(metrics.logloss));
  return out;
}

obs::JsonValue TelemetryToJson(const TrainTelemetry& telemetry) {
  obs::JsonValue epochs = obs::JsonValue::MakeArray();
  for (const EpochTelemetry& et : telemetry.epochs) {
    obs::JsonValue e = obs::JsonValue::MakeObject();
    e.Set("epoch", obs::JsonValue::Uint(et.epoch));
    e.Set("train_seconds", obs::JsonValue::Double(et.train_seconds));
    e.Set("eval_seconds", obs::JsonValue::Double(et.eval_seconds));
    e.Set("train_rows_per_sec",
          obs::JsonValue::Double(et.train_rows_per_sec));
    e.Set("mean_train_loss", obs::JsonValue::Double(et.mean_train_loss));
    e.Set("improved", obs::JsonValue::Bool(et.improved));
    epochs.Push(std::move(e));
  }
  obs::JsonValue out = obs::JsonValue::MakeObject();
  out.Set("epochs", std::move(epochs));
  out.Set("train_seconds_total",
          obs::JsonValue::Double(telemetry.train_seconds_total));
  out.Set("eval_seconds_total",
          obs::JsonValue::Double(telemetry.eval_seconds_total));
  out.Set("train_rows_per_sec",
          obs::JsonValue::Double(telemetry.train_rows_per_sec));
  out.Set("best_epoch", obs::JsonValue::Uint(telemetry.best_epoch));
  out.Set("early_stopped", obs::JsonValue::Bool(telemetry.early_stopped));
  out.Set("restored_best_snapshot",
          obs::JsonValue::Bool(telemetry.restored_best_snapshot));
  return out;
}

obs::JsonValue TrainSummaryToJson(const TrainSummary& summary) {
  obs::JsonValue out = obs::JsonValue::MakeObject();
  out.Set("final_val", EvalMetricsToJson(summary.final_val));
  out.Set("final_test", EvalMetricsToJson(summary.final_test));
  obs::JsonValue losses = obs::JsonValue::MakeArray();
  for (double v : summary.epoch_train_losses) {
    losses.Push(obs::JsonValue::Double(v));
  }
  out.Set("epoch_train_losses", std::move(losses));
  obs::JsonValue aucs = obs::JsonValue::MakeArray();
  for (double v : summary.epoch_val_aucs) {
    aucs.Push(obs::JsonValue::Double(v));
  }
  out.Set("epoch_val_aucs", std::move(aucs));
  out.Set("epochs_run", obs::JsonValue::Uint(summary.epochs_run));
  out.Set("seconds", obs::JsonValue::Double(summary.seconds));
  out.Set("telemetry", TelemetryToJson(summary.telemetry));
  return out;
}

}  // namespace optinter
