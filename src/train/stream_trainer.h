// Out-of-core training: TrainModel's epoch loop driven by streamed
// batches from a sharded on-disk dataset (data/stream_reader.h) instead
// of an in-RAM EncodedDataset.
//
// Splits are contiguous row ranges of the shard directory: train =
// [0, train_frac*N), val = the next val_frac*N rows, test = the rest.
// This matches the streaming encoder's convention (stream_encode.h fits
// vocabularies on the train prefix), and makes the in-RAM control arm
// trivial: TrainModel over the materialized dataset with the same
// contiguous index ranges and the same seed is bit-identical to
// TrainModelStreamed with Order::kGlobalShuffle — both paths produce the
// same epoch row order (see stream_reader.h) and run the same executor,
// kernels and evaluation grid. concurrency_test.cc pins this.
//
// Errors: a shard that fails validation mid-epoch (corruption, missing
// file) surfaces as the returned Status — never as a partial batch or a
// silently shortened epoch.

#pragma once

#include "data/stream_reader.h"
#include "train/trainer.h"

namespace optinter {

/// Options for TrainModelStreamed.
struct StreamTrainOptions {
  size_t epochs = 3;
  size_t batch_size = 512;
  uint64_t seed = 1;
  /// Stop after this many epochs without validation improvement
  /// (0 disables early stopping; requires a non-empty val range).
  size_t patience = 1;
  StopMetric stop_metric = StopMetric::kLogLoss;
  bool verbose = false;
  /// Same role as TrainOptions::pipeline.
  bool pipeline = true;
  /// Contiguous split fractions over the shard directory's rows. test is
  /// the remainder; val (and test) may be empty.
  double train_frac = 0.7;
  double val_frac = 0.15;
  /// Train-epoch row order. kGlobalShuffle is bit-identical to in-RAM
  /// TrainModel but touches every shard each epoch; kWindowShuffle keeps
  /// the working set near `window_blocks` shards (bounded RSS).
  StreamingBatcher::Order order = StreamingBatcher::Order::kGlobalShuffle;
  size_t prefetch_batches = 2;
  size_t window_blocks = 8;
  size_t block_rows = 0;  // 0 = the manifest's rows_per_shard
  size_t eval_batch_size = 2048;
  /// Optional report ticked at quiescent points (see TrainOptions).
  obs::RunReport* report = nullptr;
};

/// Sequential streamed evaluation over global rows [begin, end):
/// bit-identical metrics to EvaluateModel over the same rows of the
/// materialized dataset with the same batch size (same batch grid, same
/// serial prediction order).
Result<EvalMetrics> EvaluateModelStreamed(CtrModel* model,
                                          StreamingReader* reader,
                                          size_t begin, size_t end,
                                          size_t batch_size = 2048);

/// Trains `model` (constructed against reader->meta()) on the streamed
/// train range with per-epoch validation, early stopping and a final
/// test evaluation — the streamed counterpart of TrainModel.
Result<TrainSummary> TrainModelStreamed(CtrModel* model,
                                        StreamingReader* reader,
                                        const StreamTrainOptions& options);

/// In-RAM control arm: the same epoch/eval structure and the same order
/// generation (StreamingBatcher's ram backend) over a materialized
/// dataset. With equal options — for Order::kWindowShuffle set
/// options.block_rows to the shard dir's rows_per_shard — this is
/// bitwise-identical to TrainModelStreamed over the shard directory,
/// which isolates the streaming data path in parity runs
/// (bench/stream_train.cc).
Result<TrainSummary> TrainModelStreamed(CtrModel* model,
                                        const EncodedDataset& data,
                                        const StreamTrainOptions& options);

}  // namespace optinter
