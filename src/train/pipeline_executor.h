// Pipelined training executor: overlaps batch t+1's weight-independent
// PrepareBatch (on the thread pool) with batch t's ForwardBackward +
// ApplyGrads (on the calling thread).
//
// Phase protocol (CtrModel): models that SupportsPhasedTrainStep()
// decompose TrainStep into PrepareBatch -> ForwardBackward -> ApplyGrads,
// with TrainStep itself implemented as exactly that sequence. The executor
// therefore cannot change the math: compute (including the search model's
// Gumbel noise stream) runs on the calling thread in batch order, and
// PrepareBatch is a pure function of the dataset and row ids, so the
// pipelined loop is bit-identical to the serial loop at any thread count —
// the same determinism contract as the parallel kernels (DESIGN.md).
//
// Fencing rule: when a model's PrepareIsWeightIndependent() is false, its
// prepare for batch t+1 first waits on the ApplyFence until batch t's
// ApplyGrads has been signalled, restoring the serial order for
// weight-dependent reads. At most one prefetch is in flight, and the
// executor joins it (TaskGroup) before touching the prepared buffers, so
// the handoff is data-race-free in both directions.
//
// Workspaces: two StepWorkspaces ping-pong between "being computed" and
// "being prefetched". All buffers retain capacity across steps and epochs,
// so steady-state steps perform zero heap allocations (tested); the
// "pipeline.workspace_bytes" gauge tracks held capacity and
// "pipeline.workspace_growth_steps" counts post-warmup growth events.
//
// Obs: spans `train_step` (ForwardBackward + ApplyGrads), `pipeline_stall`
// (waiting on the prefetch) and `apply_fence_wait` (inside a fenced
// prepare task), plus the `pipeline.stall_us` counter.

#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>

#include "data/batch.h"
#include "models/model.h"
#include "models/prepared_batch.h"

namespace optinter {

/// Monotonic grad-apply fence: the compute thread signals the number of
/// completed ApplyGrads; fenced prepare tasks wait until their target
/// step's update is visible.
class ApplyFence {
 public:
  void Signal(uint64_t applied) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      applied_ = applied;
    }
    cv_.notify_all();
  }

  void WaitFor(uint64_t target) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return applied_ >= target; });
  }

  uint64_t applied() {
    std::lock_guard<std::mutex> lock(mutex_);
    return applied_;
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  uint64_t applied_ = 0;
};

/// Reusable per-step buffers. One workspace is being computed while the
/// other receives the prefetched next batch.
struct StepWorkspace {
  PreparedBatch prep;
};

/// Drives one model's training epochs through the phase-split pipeline.
/// Reuse one executor across epochs so workspace capacity persists.
class PipelinedTrainExecutor {
 public:
  /// `model` must outlive the executor and SupportsPhasedTrainStep().
  explicit PipelinedTrainExecutor(CtrModel* model);

  struct EpochStats {
    double loss_sum = 0.0;
    size_t batches = 0;
    size_t rows = 0;
  };

  /// Runs one epoch over `source` (the caller StartEpoch()s it first);
  /// works with any BatchSource — in-RAM Batcher or StreamingBatcher.
  /// `on_step`, when set, fires after every step at a quiescent point (the
  /// step's prefetch joined, no executor work in flight) — safe for
  /// Tracer::Collect-based periodic reporting. Returns with no work in
  /// flight; outstanding Batch views are dropped, so the caller may
  /// StartEpoch() again immediately.
  EpochStats RunEpoch(BatchSource* source,
                      const std::function<void()>& on_step = {});

  /// Completed ApplyGrads count over the executor's lifetime.
  uint64_t steps_done() const { return steps_done_; }

 private:
  void UpdateWorkspaceStats();

  CtrModel* model_;
  StepWorkspace ws_[2];
  ApplyFence fence_;
  uint64_t steps_done_ = 0;
  size_t last_capacity_bytes_ = 0;
  bool warmed_up_ = false;
};

}  // namespace optinter
