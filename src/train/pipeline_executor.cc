#include "train/pipeline_executor.h"

#include <chrono>
#include <utility>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace optinter {

namespace {

obs::Counter* StallMicrosCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("pipeline.stall_us");
  return c;
}

obs::Counter* StepsCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("pipeline.steps");
  return c;
}

obs::Counter* WorkspaceGrowthCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "pipeline.workspace_growth_steps");
  return c;
}

obs::Gauge* WorkspaceBytesGauge() {
  static obs::Gauge* g =
      obs::MetricsRegistry::Global().GetGauge("pipeline.workspace_bytes");
  return g;
}

}  // namespace

PipelinedTrainExecutor::PipelinedTrainExecutor(CtrModel* model)
    : model_(model) {
  CHECK(model != nullptr);
  CHECK(model->SupportsPhasedTrainStep())
      << "PipelinedTrainExecutor needs the PrepareBatch/ForwardBackward/"
         "ApplyGrads protocol";
}

PipelinedTrainExecutor::EpochStats PipelinedTrainExecutor::RunEpoch(
    BatchSource* source, const std::function<void()>& on_step) {
  EpochStats stats;
  Batch batch = source->Next();
  if (batch.size == 0) return stats;

  ThreadPool& pool = ThreadPool::Global();
  const bool fenced = !model_->PrepareIsWeightIndependent();
  StepWorkspace* cur = &ws_[0];
  StepWorkspace* nxt = &ws_[1];

  // First prepare runs synchronously: there is no batch t-1 to overlap.
  model_->PrepareBatch(batch, &cur->prep);

  for (;;) {
    // Launch batch t+1's prepare before computing batch t. The TaskGroup
    // doubles as the join latch; at most one prefetch is ever in flight.
    TaskGroup prefetch;
    Batch next = source->Next();
    const bool has_next = next.size != 0;
    if (has_next) {
      // Weight-dependent prepares must observe batch t's update, so the
      // task first blocks on the fence. Safe at any pool size: the fence
      // is signalled by the calling thread (never a pool task), and with
      // a single worker the compute below runs its parallel loops inline
      // rather than queueing behind the parked prefetch.
      const uint64_t fence_target = steps_done_ + 1;
      PreparedBatch* dst = &nxt->prep;
      pool.Submit(
          [this, next, dst, fenced, fence_target] {
            if (fenced) {
              OPTINTER_TRACE_SPAN("apply_fence_wait");
              fence_.WaitFor(fence_target);
            }
            model_->PrepareBatch(next, dst);
          },
          &prefetch);
    }

    float loss;
    {
      OPTINTER_TRACE_SPAN("train_step");
      loss = model_->ForwardBackward(cur->prep);
      model_->ApplyGrads();
    }
    fence_.Signal(++steps_done_);
    StepsCounter()->Increment();
    stats.loss_sum += static_cast<double>(loss);
    stats.rows += cur->prep.size;
    ++stats.batches;

    // Join the prefetch. Past this wait nothing the executor started is
    // running, so the on_step hook below observes a quiescent pipeline.
    if (has_next) {
      OPTINTER_TRACE_SPAN("pipeline_stall");
      const bool timed = obs::Enabled();
      const auto t0 = timed ? std::chrono::steady_clock::now()
                            : std::chrono::steady_clock::time_point{};
      prefetch.Wait();
      if (timed) {
        const auto waited = std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0);
        StallMicrosCounter()->Add(static_cast<uint64_t>(waited.count()));
      }
    }
    UpdateWorkspaceStats();
    if (on_step) on_step();
    if (!has_next) break;
    std::swap(cur, nxt);
  }
  return stats;
}

void PipelinedTrainExecutor::UpdateWorkspaceStats() {
  if (!obs::Enabled()) return;
  const size_t cap = ws_[0].prep.CapacityBytes() + ws_[1].prep.CapacityBytes();
  WorkspaceBytesGauge()->Set(static_cast<double>(cap));
  // The first two steps size both workspaces (warmup); growth after that
  // means a steady-state step allocated, which the zero-allocation tests
  // treat as a regression.
  if (warmed_up_ && cap > last_capacity_bytes_) {
    WorkspaceGrowthCounter()->Increment();
  }
  if (steps_done_ >= 2) warmed_up_ = true;
  last_capacity_bytes_ = cap;
}

}  // namespace optinter
