#include "train/stream_trainer.h"

#include <memory>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "metrics/metrics.h"
#include "obs/registry.h"
#include "obs/run_report.h"
#include "obs/trace.h"
#include "train/pipeline_executor.h"

namespace optinter {

namespace {

obs::Counter* TrainRowsCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("train.rows");
  return c;
}

obs::Counter* EvalRowsCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("eval.rows");
  return c;
}

}  // namespace

Result<EvalMetrics> EvaluateModelStreamed(CtrModel* model,
                                          StreamingReader* reader,
                                          size_t begin, size_t end,
                                          size_t batch_size) {
  OPTINTER_TRACE_SPAN("evaluate");
  CHECK_LT(begin, end);
  CHECK_GT(batch_size, 0u);
  const size_t n = end - begin;
  EvalRowsCounter()->Add(n);

  StreamingBatcher::Options bo;
  bo.batch_size = batch_size;
  bo.order = StreamingBatcher::Order::kSequential;
  StreamingBatcher source(reader, begin, end, bo);

  std::vector<float> all_probs;
  std::vector<float> all_labels;
  all_probs.reserve(n);
  all_labels.reserve(n);
  std::vector<float> probs;  // per-batch scratch
  source.StartEpoch();
  for (;;) {
    Batch b = source.Next();
    if (b.size == 0) break;
    // Serial, in-range order: the same batch grid and prediction order as
    // EvaluateModel's serial path over the materialized rows, so the
    // stitched metrics are bit-identical to the in-RAM evaluation.
    model->Predict(b, &probs);
    all_probs.insert(all_probs.end(), probs.begin(), probs.begin() + b.size);
    for (size_t k = 0; k < b.size; ++k) all_labels.push_back(b.label(k));
  }
  OPTINTER_RETURN_NOT_OK(source.status());
  CHECK_EQ(all_probs.size(), n);

  EvalMetrics m;
  m.auc = Auc(all_probs, all_labels);
  m.logloss = LogLoss(all_probs, all_labels);
  return m;
}

namespace {

/// Contiguous split boundaries over `n` rows.
struct StreamSplits {
  size_t train_end = 0;
  size_t val_end = 0;
};

StreamSplits ComputeSplits(size_t n, const StreamTrainOptions& options) {
  CHECK_GT(options.train_frac, 0.0);
  CHECK_LE(options.train_frac + options.val_frac, 1.0);
  StreamSplits s;
  s.train_end = std::max<size_t>(
      1, static_cast<size_t>(static_cast<double>(n) * options.train_frac));
  s.val_end = std::min(
      n, s.train_end + static_cast<size_t>(
                           static_cast<double>(n) * options.val_frac));
  return s;
}

StreamingBatcher::Options BatcherOptions(const StreamTrainOptions& options) {
  StreamingBatcher::Options bo;
  bo.batch_size = options.batch_size;
  bo.order = options.order;
  bo.seed = options.seed;
  bo.prefetch_batches = options.prefetch_batches;
  bo.window_blocks = options.window_blocks;
  bo.block_rows = options.block_rows;
  return bo;
}

/// The shared epoch loop: TrainModel's structure over a StreamingBatcher
/// (reader- or RAM-backed) with pluggable evaluation closures (null when
/// the corresponding range is empty). Both public entry points route
/// through here, so the two arms of a parity run execute the same code.
Result<TrainSummary> RunStreamedLoop(
    CtrModel* model, StreamingBatcher* batcher,
    const std::function<Result<EvalMetrics>()>& eval_val,
    const std::function<Result<EvalMetrics>()>& eval_test,
    const StreamTrainOptions& options) {
  Stopwatch timer;
  TrainSummary summary;
  TrainTelemetry& telemetry = summary.telemetry;
  const bool has_val = static_cast<bool>(eval_val);
  const bool has_test = static_cast<bool>(eval_test);

  double best_val_score = -1e300;
  size_t stale_epochs = 0;
  std::vector<Tensor*> state;
  model->CollectState(&state);
  std::vector<Tensor> best_state;
  bool have_snapshot = false;
  const bool use_pipeline =
      options.pipeline && model->SupportsPhasedTrainStep();
  std::unique_ptr<PipelinedTrainExecutor> executor;
  if (use_pipeline) executor = std::make_unique<PipelinedTrainExecutor>(model);
  auto tick_report = [&] {
    if (options.report != nullptr) options.report->MaybeWriteEvery();
  };

  for (size_t epoch = 0; epoch < options.epochs; ++epoch) {
    Stopwatch epoch_timer;
    batcher->StartEpoch();
    double loss_sum = 0.0;
    size_t batches = 0;
    size_t rows_seen = 0;
    {
      OPTINTER_TRACE_SPAN("train_epoch");
      if (use_pipeline) {
        const PipelinedTrainExecutor::EpochStats stats =
            executor->RunEpoch(batcher, tick_report);
        loss_sum = stats.loss_sum;
        batches = stats.batches;
        rows_seen = stats.rows;
      } else {
        for (;;) {
          Batch b = batcher->Next();
          if (b.size == 0) break;
          {
            OPTINTER_TRACE_SPAN("train_step");
            loss_sum += model->TrainStep(b);
          }
          rows_seen += b.size;
          ++batches;
          tick_report();
        }
      }
    }
    // An empty batch ends the epoch both at exhaustion and on a data
    // error; only the status tells them apart. Fail the run rather than
    // report metrics from a silently shortened epoch.
    OPTINTER_RETURN_NOT_OK(batcher->status());
    TrainRowsCounter()->Add(rows_seen);
    const double mean_loss =
        batches > 0 ? loss_sum / static_cast<double>(batches) : 0.0;
    summary.epoch_train_losses.push_back(mean_loss);
    ++summary.epochs_run;

    EpochTelemetry et;
    et.epoch = epoch;
    et.train_seconds = epoch_timer.Elapsed();
    et.train_rows_per_sec =
        et.train_seconds > 0.0
            ? static_cast<double>(rows_seen) / et.train_seconds
            : 0.0;
    et.mean_train_loss = mean_loss;
    telemetry.train_seconds_total += et.train_seconds;

    bool stop = false;
    if (has_val) {
      Stopwatch eval_timer;
      OPTINTER_ASSIGN_OR_RETURN(const EvalMetrics val, eval_val());
      et.eval_seconds = eval_timer.Elapsed();
      telemetry.eval_seconds_total += et.eval_seconds;
      summary.epoch_val_aucs.push_back(val.auc);
      summary.final_val = val;
      const double score = options.stop_metric == StopMetric::kAuc
                               ? val.auc
                               : -val.logloss;
      if (ScoreImproved(score, best_val_score, options.stop_metric)) {
        best_val_score = score;
        stale_epochs = 0;
        et.improved = true;
        telemetry.best_epoch = epoch;
        if (!state.empty()) {
          best_state.resize(state.size());
          for (size_t i = 0; i < state.size(); ++i) {
            best_state[i] = *state[i];
          }
          have_snapshot = true;
        }
      } else if (options.patience > 0 && ++stale_epochs >= options.patience) {
        telemetry.early_stopped = true;
        stop = true;
      }
      if (options.verbose) {
        LOG_INFO() << model->Name() << " epoch " << epoch
                   << " loss=" << mean_loss << " val_auc=" << val.auc
                   << " val_logloss=" << val.logloss << " train_s="
                   << et.train_seconds << " eval_s=" << et.eval_seconds
                   << " rows/s=" << et.train_rows_per_sec
                   << (et.improved ? " [improved]" : " [stale]");
        if (stop) {
          LOG_INFO() << model->Name() << " early stop at epoch " << epoch;
        }
      }
    } else if (options.verbose) {
      LOG_INFO() << model->Name() << " epoch " << epoch
                 << " loss=" << mean_loss << " train_s=" << et.train_seconds
                 << " rows/s=" << et.train_rows_per_sec;
    }
    telemetry.epochs.push_back(et);
    tick_report();
    if (stop) break;
  }
  if (have_snapshot) {
    for (size_t i = 0; i < state.size(); ++i) {
      *state[i] = std::move(best_state[i]);
    }
    telemetry.restored_best_snapshot = true;
    if (has_val) {
      Stopwatch eval_timer;
      OPTINTER_ASSIGN_OR_RETURN(summary.final_val, eval_val());
      telemetry.eval_seconds_total += eval_timer.Elapsed();
    }
  }
  if (has_test) {
    Stopwatch eval_timer;
    OPTINTER_ASSIGN_OR_RETURN(summary.final_test, eval_test());
    telemetry.eval_seconds_total += eval_timer.Elapsed();
  }
  if (telemetry.train_seconds_total > 0.0) {
    double rows_total = 0.0;
    for (const EpochTelemetry& et : telemetry.epochs) {
      rows_total += et.train_rows_per_sec * et.train_seconds;
    }
    telemetry.train_rows_per_sec =
        rows_total / telemetry.train_seconds_total;
  }
  summary.seconds = timer.Elapsed();
  return summary;
}

}  // namespace

Result<TrainSummary> TrainModelStreamed(CtrModel* model,
                                        StreamingReader* reader,
                                        const StreamTrainOptions& options) {
  const size_t n = reader->num_rows();
  const StreamSplits s = ComputeSplits(n, options);
  StreamingBatcher batcher(reader, 0, s.train_end, BatcherOptions(options));
  std::function<Result<EvalMetrics>()> eval_val;
  std::function<Result<EvalMetrics>()> eval_test;
  if (s.val_end > s.train_end) {
    eval_val = [=] {
      return EvaluateModelStreamed(model, reader, s.train_end, s.val_end,
                                   options.eval_batch_size);
    };
  }
  if (n > s.val_end) {
    eval_test = [=] {
      return EvaluateModelStreamed(model, reader, s.val_end, n,
                                   options.eval_batch_size);
    };
  }
  return RunStreamedLoop(model, &batcher, eval_val, eval_test, options);
}

Result<TrainSummary> TrainModelStreamed(CtrModel* model,
                                        const EncodedDataset& data,
                                        const StreamTrainOptions& options) {
  const size_t n = data.num_rows;
  const StreamSplits s = ComputeSplits(n, options);
  StreamingBatcher batcher(&data, 0, s.train_end, BatcherOptions(options));
  // Evaluation over contiguous in-RAM rows with the same batch grid and
  // metric math as the streamed evaluation — bit-identical results.
  auto eval_range = [&data, model, &options](size_t begin, size_t end) {
    return [=, &data]() -> Result<EvalMetrics> {
      std::vector<size_t> rows(end - begin);
      for (size_t i = 0; i < rows.size(); ++i) rows[i] = begin + i;
      EvalOptions eo;
      eo.batch_size = options.eval_batch_size;
      return EvaluateModel(model, data, rows, eo);
    };
  };
  std::function<Result<EvalMetrics>()> eval_val;
  std::function<Result<EvalMetrics>()> eval_test;
  if (s.val_end > s.train_end) eval_val = eval_range(s.train_end, s.val_end);
  if (n > s.val_end) eval_test = eval_range(s.val_end, n);
  return RunStreamedLoop(model, &batcher, eval_val, eval_test, options);
}

}  // namespace optinter
