#include "data/encoder.h"

#include <algorithm>
#include <limits>

namespace optinter {

Result<EncodedDataset> EncodeDataset(const RawDataset& raw,
                                     const std::vector<size_t>& fit_rows,
                                     const EncoderOptions& options) {
  if (raw.num_rows == 0) {
    return Status::Invalid("cannot encode an empty dataset");
  }
  if (fit_rows.empty()) {
    return Status::Invalid("fit_rows must be non-empty");
  }
  for (size_t r : fit_rows) {
    if (r >= raw.num_rows) {
      return Status::OutOfRange("fit row index out of range");
    }
  }
  if (raw.labels.size() != raw.num_rows) {
    return Status::Invalid("label count does not match num_rows");
  }

  const size_t num_cat = raw.schema.num_categorical();
  const size_t num_cont = raw.schema.num_continuous();

  EncodedDataset out;
  out.schema = raw.schema;
  out.num_rows = raw.num_rows;
  out.labels = raw.labels;

  // --- Categorical fields: fit vocabs on fit_rows, encode everything.
  std::vector<Vocab> vocabs(num_cat);
  for (size_t r : fit_rows) {
    for (size_t f = 0; f < num_cat; ++f) {
      vocabs[f].Add(raw.cat(r, f));
    }
  }
  out.cat_vocab_sizes.resize(num_cat);
  for (size_t f = 0; f < num_cat; ++f) {
    vocabs[f].Finalize(options.cat_min_count);
    out.cat_vocab_sizes[f] = vocabs[f].size();
  }
  out.cat_ids.resize(raw.num_rows * num_cat);
  for (size_t r = 0; r < raw.num_rows; ++r) {
    for (size_t f = 0; f < num_cat; ++f) {
      out.cat_ids[r * num_cat + f] = vocabs[f].Encode(raw.cat(r, f));
    }
  }
  // Frequency-stats metadata for tiered embedding backends, fitted on the
  // fit rows like every other statistic.
  if (options.freq_stats_topk > 0) {
    out.cat_hot_ids.resize(num_cat);
    for (size_t f = 0; f < num_cat; ++f) {
      out.cat_hot_ids[f] =
          TopIdsByFrequency(out.cat_ids, num_cat, f, out.cat_vocab_sizes[f],
                            options.freq_stats_topk, fit_rows);
    }
  }

  // --- Continuous fields: min-max fit on fit_rows (paper Eq. 20), clamp
  // out-of-range transform values into [0, 1].
  if (num_cont > 0) {
    std::vector<float> mins(num_cont, std::numeric_limits<float>::max());
    std::vector<float> maxs(num_cont, std::numeric_limits<float>::lowest());
    for (size_t r : fit_rows) {
      for (size_t f = 0; f < num_cont; ++f) {
        const float v = raw.cont(r, f);
        mins[f] = std::min(mins[f], v);
        maxs[f] = std::max(maxs[f], v);
      }
    }
    out.cont_values.resize(raw.num_rows * num_cont);
    for (size_t r = 0; r < raw.num_rows; ++r) {
      for (size_t f = 0; f < num_cont; ++f) {
        const float range = maxs[f] - mins[f];
        float v = range > 0.0f ? (raw.cont(r, f) - mins[f]) / range : 0.0f;
        out.cont_values[r * num_cont + f] = std::clamp(v, 0.0f, 1.0f);
      }
    }
  }

  return out;
}

Status BuildCrossFeatures(EncodedDataset* data,
                          const std::vector<size_t>& fit_rows,
                          const EncoderOptions& options) {
  CHECK(data != nullptr);
  if (data->has_cross()) {
    return Status::FailedPrecondition("cross features already built");
  }
  const size_t num_cat = data->num_categorical();
  if (num_cat < 2) {
    return Status::Invalid("need at least two categorical fields");
  }
  const auto pairs = EnumeratePairs(num_cat);
  const size_t num_pairs = pairs.size();

  // Key for a cross value: (id_i << 32) | id_j on already-encoded ids, so
  // an OOV original feature yields OOV-involving cross keys, as in the
  // paper's pipeline where transforms run after original-feature OOV.
  auto key = [](int32_t a, int32_t b) {
    return (static_cast<int64_t>(a) << 32) |
           static_cast<int64_t>(static_cast<uint32_t>(b));
  };

  std::vector<Vocab> vocabs(num_pairs);
  for (size_t r : fit_rows) {
    if (r >= data->num_rows) {
      return Status::OutOfRange("fit row index out of range");
    }
    for (size_t p = 0; p < num_pairs; ++p) {
      const auto [i, j] = pairs[p];
      vocabs[p].Add(key(data->cat(r, i), data->cat(r, j)));
    }
  }
  data->cross_vocab_sizes.resize(num_pairs);
  for (size_t p = 0; p < num_pairs; ++p) {
    vocabs[p].Finalize(options.cross_min_count);
    data->cross_vocab_sizes[p] = vocabs[p].size();
  }
  data->cross_ids.resize(data->num_rows * num_pairs);
  for (size_t r = 0; r < data->num_rows; ++r) {
    for (size_t p = 0; p < num_pairs; ++p) {
      const auto [i, j] = pairs[p];
      data->cross_ids[r * num_pairs + p] =
          vocabs[p].Encode(key(data->cat(r, i), data->cat(r, j)));
    }
  }
  if (options.freq_stats_topk > 0) {
    data->cross_hot_ids.resize(num_pairs);
    for (size_t p = 0; p < num_pairs; ++p) {
      data->cross_hot_ids[p] = TopIdsByFrequency(
          data->cross_ids, num_pairs, p, data->cross_vocab_sizes[p],
          options.freq_stats_topk, fit_rows);
    }
  }
  return Status::OK();
}

Status BuildTripleCrossFeatures(
    EncodedDataset* data, const std::vector<size_t>& fit_rows,
    const EncoderOptions& options,
    const std::vector<std::array<size_t, 3>>& triples) {
  CHECK(data != nullptr);
  if (data->has_triples()) {
    return Status::FailedPrecondition("triple features already built");
  }
  if (triples.empty()) {
    return Status::Invalid("no triples requested");
  }
  const size_t num_cat = data->num_categorical();
  for (const auto& t : triples) {
    if (!(t[0] < t[1] && t[1] < t[2] && t[2] < num_cat)) {
      return Status::Invalid("triples must satisfy i < j < k < #cate");
    }
  }

  // Encoded per-field ids stay well below 2^21 at this substrate's scale,
  // so three ids pack into one 64-bit key.
  auto key = [](int32_t a, int32_t b, int32_t c) -> int64_t {
    CHECK_LT(a, 1 << 21);
    CHECK_LT(b, 1 << 21);
    CHECK_LT(c, 1 << 21);
    return (static_cast<int64_t>(a) << 42) |
           (static_cast<int64_t>(b) << 21) | static_cast<int64_t>(c);
  };

  std::vector<Vocab> vocabs(triples.size());
  for (size_t r : fit_rows) {
    if (r >= data->num_rows) {
      return Status::OutOfRange("fit row index out of range");
    }
    for (size_t t = 0; t < triples.size(); ++t) {
      const auto& tr = triples[t];
      vocabs[t].Add(key(data->cat(r, tr[0]), data->cat(r, tr[1]),
                        data->cat(r, tr[2])));
    }
  }
  data->triple_fields = triples;
  data->triple_vocab_sizes.resize(triples.size());
  for (size_t t = 0; t < triples.size(); ++t) {
    vocabs[t].Finalize(options.cross_min_count);
    data->triple_vocab_sizes[t] = vocabs[t].size();
  }
  data->triple_ids.resize(data->num_rows * triples.size());
  for (size_t r = 0; r < data->num_rows; ++r) {
    for (size_t t = 0; t < triples.size(); ++t) {
      const auto& tr = triples[t];
      data->triple_ids[r * triples.size() + t] =
          vocabs[t].Encode(key(data->cat(r, tr[0]), data->cat(r, tr[1]),
                               data->cat(r, tr[2])));
    }
  }
  return Status::OK();
}

}  // namespace optinter
