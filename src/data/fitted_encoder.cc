#include "data/fitted_encoder.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <limits>

#include "common/string_util.h"

namespace optinter {

namespace {

int64_t PairKey(int32_t a, int32_t b) {
  return (static_cast<int64_t>(a) << 32) |
         static_cast<int64_t>(static_cast<uint32_t>(b));
}

constexpr char kMagic[4] = {'O', 'E', 'N', 'C'};
constexpr uint32_t kVersion = 1;

template <typename T>
void WritePod(std::ofstream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(T));
  return static_cast<bool>(in);
}

void WriteString(std::ofstream& out, const std::string& s) {
  WritePod(out, static_cast<uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

bool ReadString(std::ifstream& in, std::string* s) {
  uint32_t n = 0;
  if (!ReadPod(in, &n)) return false;
  s->resize(n);
  in.read(s->data(), n);
  return static_cast<bool>(in);
}

void WriteVocab(std::ofstream& out, const Vocab& v) {
  const auto items = v.Items();
  WritePod(out, static_cast<uint64_t>(items.size()));
  for (const auto& [value, id] : items) {
    WritePod(out, value);
    // id is implicit (dense, in order); stored size suffices.
  }
}

bool ReadVocab(std::ifstream& in, Vocab* v) {
  uint64_t n = 0;
  if (!ReadPod(in, &n)) return false;
  std::vector<std::pair<int64_t, int32_t>> items;
  items.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    int64_t value = 0;
    if (!ReadPod(in, &value)) return false;
    items.emplace_back(value, static_cast<int32_t>(i + 1));
  }
  *v = Vocab::FromItems(items);
  return true;
}

}  // namespace

Result<FittedEncoder> FittedEncoder::Fit(const RawDataset& raw,
                                         const std::vector<size_t>& fit_rows,
                                         const EncoderOptions& options,
                                         bool with_cross) {
  if (raw.num_rows == 0) return Status::Invalid("empty dataset");
  if (fit_rows.empty()) return Status::Invalid("fit_rows must be non-empty");
  for (size_t r : fit_rows) {
    if (r >= raw.num_rows) {
      return Status::OutOfRange("fit row index out of range");
    }
  }

  FittedEncoder enc;
  enc.schema_ = raw.schema;
  const size_t num_cat = raw.schema.num_categorical();
  const size_t num_cont = raw.schema.num_continuous();

  enc.cat_vocabs_.resize(num_cat);
  for (size_t r : fit_rows) {
    for (size_t f = 0; f < num_cat; ++f) {
      enc.cat_vocabs_[f].Add(raw.cat(r, f));
    }
  }
  for (size_t f = 0; f < num_cat; ++f) {
    enc.cat_vocabs_[f].Finalize(options.cat_min_count);
  }

  enc.cont_stats_.resize(num_cont);
  for (size_t f = 0; f < num_cont; ++f) {
    enc.cont_stats_[f].min = std::numeric_limits<float>::max();
    enc.cont_stats_[f].max = std::numeric_limits<float>::lowest();
  }
  for (size_t r : fit_rows) {
    for (size_t f = 0; f < num_cont; ++f) {
      const float v = raw.cont(r, f);
      enc.cont_stats_[f].min = std::min(enc.cont_stats_[f].min, v);
      enc.cont_stats_[f].max = std::max(enc.cont_stats_[f].max, v);
    }
  }

  if (with_cross && num_cat >= 2) {
    const auto pairs = EnumeratePairs(num_cat);
    enc.cross_vocabs_.resize(pairs.size());
    for (size_t r : fit_rows) {
      for (size_t p = 0; p < pairs.size(); ++p) {
        const auto [i, j] = pairs[p];
        enc.cross_vocabs_[p].Add(
            PairKey(enc.cat_vocabs_[i].Encode(raw.cat(r, i)),
                    enc.cat_vocabs_[j].Encode(raw.cat(r, j))));
      }
    }
    for (auto& v : enc.cross_vocabs_) v.Finalize(options.cross_min_count);
  }
  return enc;
}

Result<EncodedDataset> FittedEncoder::Transform(const RawDataset& raw) const {
  if (raw.schema.num_fields() != schema_.num_fields()) {
    return Status::Invalid("schema field count mismatch");
  }
  for (size_t f = 0; f < schema_.num_fields(); ++f) {
    if (raw.schema.field(f).name != schema_.field(f).name ||
        raw.schema.field(f).type != schema_.field(f).type) {
      return Status::Invalid("schema mismatch at field '" +
                             schema_.field(f).name + "'");
    }
  }
  if (raw.num_rows == 0) return Status::Invalid("empty dataset");

  const size_t num_cat = schema_.num_categorical();
  const size_t num_cont = schema_.num_continuous();

  EncodedDataset out;
  out.schema = schema_;
  out.num_rows = raw.num_rows;
  out.labels = raw.labels;
  out.cat_vocab_sizes.resize(num_cat);
  for (size_t f = 0; f < num_cat; ++f) {
    out.cat_vocab_sizes[f] = cat_vocabs_[f].size();
  }
  out.cat_ids.resize(raw.num_rows * num_cat);
  for (size_t r = 0; r < raw.num_rows; ++r) {
    for (size_t f = 0; f < num_cat; ++f) {
      out.cat_ids[r * num_cat + f] = cat_vocabs_[f].Encode(raw.cat(r, f));
    }
  }
  if (num_cont > 0) {
    out.cont_values.resize(raw.num_rows * num_cont);
    for (size_t r = 0; r < raw.num_rows; ++r) {
      for (size_t f = 0; f < num_cont; ++f) {
        const float range = cont_stats_[f].max - cont_stats_[f].min;
        const float v =
            range > 0.0f
                ? (raw.cont(r, f) - cont_stats_[f].min) / range
                : 0.0f;
        out.cont_values[r * num_cont + f] = std::clamp(v, 0.0f, 1.0f);
      }
    }
  }
  if (!cross_vocabs_.empty()) {
    const auto pairs = EnumeratePairs(num_cat);
    out.cross_vocab_sizes.resize(pairs.size());
    for (size_t p = 0; p < pairs.size(); ++p) {
      out.cross_vocab_sizes[p] = cross_vocabs_[p].size();
    }
    out.cross_ids.resize(raw.num_rows * pairs.size());
    for (size_t r = 0; r < raw.num_rows; ++r) {
      for (size_t p = 0; p < pairs.size(); ++p) {
        const auto [i, j] = pairs[p];
        out.cross_ids[r * pairs.size() + p] = cross_vocabs_[p].Encode(
            PairKey(out.cat(r, i), out.cat(r, j)));
      }
    }
  }
  return out;
}

Status FittedEncoder::Save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open '" + path + "' for write");
  out.write(kMagic, sizeof(kMagic));
  WritePod(out, kVersion);
  WritePod(out, static_cast<uint32_t>(schema_.num_fields()));
  for (size_t f = 0; f < schema_.num_fields(); ++f) {
    WriteString(out, schema_.field(f).name);
    WritePod(out, static_cast<uint8_t>(schema_.field(f).type));
  }
  WritePod(out, static_cast<uint32_t>(cat_vocabs_.size()));
  for (const auto& v : cat_vocabs_) WriteVocab(out, v);
  WritePod(out, static_cast<uint32_t>(cont_stats_.size()));
  for (const auto& s : cont_stats_) {
    WritePod(out, s.min);
    WritePod(out, s.max);
  }
  WritePod(out, static_cast<uint32_t>(cross_vocabs_.size()));
  for (const auto& v : cross_vocabs_) WriteVocab(out, v);
  if (!out) return Status::IoError("short write to '" + path + "'");
  return Status::OK();
}

Result<FittedEncoder> FittedEncoder::Load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open '" + path + "'");
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Invalid("'" + path + "' is not a fitted-encoder file");
  }
  uint32_t version = 0;
  if (!ReadPod(in, &version) || version != kVersion) {
    return Status::Invalid("unsupported encoder version");
  }
  uint32_t num_fields = 0;
  if (!ReadPod(in, &num_fields)) return Status::IoError("truncated");
  std::vector<FieldSpec> fields(num_fields);
  for (auto& f : fields) {
    uint8_t type = 0;
    if (!ReadString(in, &f.name) || !ReadPod(in, &type)) {
      return Status::IoError("truncated schema");
    }
    f.type = static_cast<FieldType>(type);
  }
  FittedEncoder enc;
  enc.schema_ = DatasetSchema(std::move(fields));

  uint32_t n = 0;
  if (!ReadPod(in, &n)) return Status::IoError("truncated");
  enc.cat_vocabs_.resize(n);
  for (auto& v : enc.cat_vocabs_) {
    if (!ReadVocab(in, &v)) return Status::IoError("truncated vocab");
  }
  if (!ReadPod(in, &n)) return Status::IoError("truncated");
  enc.cont_stats_.resize(n);
  for (auto& s : enc.cont_stats_) {
    if (!ReadPod(in, &s.min) || !ReadPod(in, &s.max)) {
      return Status::IoError("truncated stats");
    }
  }
  if (!ReadPod(in, &n)) return Status::IoError("truncated");
  enc.cross_vocabs_.resize(n);
  for (auto& v : enc.cross_vocabs_) {
    if (!ReadVocab(in, &v)) return Status::IoError("truncated vocab");
  }
  if (enc.cat_vocabs_.size() != enc.schema_.num_categorical() ||
      enc.cont_stats_.size() != enc.schema_.num_continuous()) {
    return Status::Invalid("inconsistent encoder file");
  }
  return enc;
}

}  // namespace optinter
