// libsvm-format loader for one-hot-encoded CTR logs.
//
// CTR datasets are commonly distributed as libsvm lines over a global
// one-hot index space:
//
//   <label> <index>:<value> <index>:<value> ...
//
// with contiguous per-field index ranges (e.g. indices [0, 1000) are
// field 0's values, [1000, 1400) field 1's, ...). Given those ranges,
// each line maps back to one categorical value per field; continuous
// fields carry their value directly.

#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"

namespace optinter {

/// One field of the libsvm index space.
struct LibsvmFieldSpec {
  std::string name;
  FieldType type = FieldType::kCategorical;
  /// First global index of this field (categorical fields only; the
  /// categorical value is `index - begin`). Continuous fields occupy a
  /// single index and take their value from the `:value` part.
  size_t begin = 0;
  /// One-past-last global index.
  size_t end = 0;
};

/// Options for LoadLibsvmDataset.
struct LibsvmOptions {
  /// Value assumed for a categorical field with no active index on a
  /// line (missing feature).
  int64_t missing_value = -1;
  size_t max_rows = 0;  // 0 = all
};

/// Loads `path` into a RawDataset laid out per `fields` (in order).
/// Field ranges must be disjoint and sorted by `begin`.
Result<RawDataset> LoadLibsvmDataset(const std::string& path,
                                     const std::vector<LibsvmFieldSpec>& fields,
                                     const LibsvmOptions& options = {});

}  // namespace optinter
