// Out-of-core shard reading and streamed mini-batch production.
//
// StreamingReader mmaps shard files lazily, keeps a bounded resident set
// (pin-counted LRU; shards are unmapped when evicted, so RSS stays
// bounded even over multi-epoch random access), and verifies each shard's
// header + payload CRC once per reader lifetime, on first touch. Any
// mismatch — truncation, bit flips, garbage appended, a shard swapped in
// from another dataset — surfaces as a Status naming the file and the
// failing check; a batch is never half-filled.
//
// StreamingBatcher is the BatchSource over a row range of a reader (or,
// for apples-to-apples comparisons, over a materialized EncodedDataset —
// same order generation, in-RAM copies). Batches are filled into a small
// ring of reusable buffers by background thread-pool tasks,
// `prefetch_batches` ahead of the consumer, so shard IO overlaps with
// training compute on top of the pipeline executor's prepare/compute
// overlap.
//
// Determinism: epoch row order is generated on the calling thread only
// (StartEpoch), from the batcher's own Rng — background tasks just copy
// rows — so the order depends on (seed, order mode, row range) and
// nothing else. kGlobalShuffle reproduces the in-RAM Batcher exactly:
// given the same seed and the same initial index vector, both apply the
// same cumulative Fisher-Yates reshuffle per epoch, so streamed training
// is bit-identical to in-RAM training (concurrency_test.cc pins this).
// kWindowShuffle trades global uniformity for shard locality: block order
// is shuffled globally, rows are shuffled within windows of
// `window_blocks` blocks, keeping the working set near
// window_blocks shards.

#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "data/batch.h"
#include "data/shard_format.h"

namespace optinter {

class StreamingReader {
 public:
  struct Options {
    /// Resident-set bound: mapped, unpinned shards above this count are
    /// evicted (LRU). Pinned shards never are, so a single batch touching
    /// more shards than the bound overshoots temporarily.
    size_t max_resident_shards = 32;
    /// Verify each shard's payload CRC on first map. Costs one pass over
    /// the shard's bytes, once per reader lifetime.
    bool verify_crc = true;
  };

  /// Opens a shard directory: reads + fully validates the manifest
  /// (shard files are validated lazily, on first touch).
  static Result<std::unique_ptr<StreamingReader>> Open(
      const std::string& dir, const Options& options);
  static Result<std::unique_ptr<StreamingReader>> Open(
      const std::string& dir) {
    return Open(dir, Options());
  }

  ~StreamingReader();

  const ShardManifest& manifest() const { return manifest_; }
  size_t num_rows() const { return manifest_.num_rows; }

  /// Metadata-only EncodedDataset (schema + vocab sizes, num_rows, no row
  /// payload). Models are constructed against this; batch buffers carry
  /// the actual rows.
  const EncodedDataset& meta() const { return meta_; }

  /// Copies `n` global rows into `dst` as a batch-local EncodedDataset
  /// (row k of dst = rows[k] of the dataset). Thread-safe; buffers in
  /// `dst` are resized but retain capacity across calls. On error `dst`
  /// is truncated to zero rows — never half-filled.
  Status FillBatch(const size_t* rows, size_t n, EncodedDataset* dst);

  /// Reads the whole dataset into RAM (sequential, CRC-verified). For
  /// parity harnesses and small datasets.
  Result<EncodedDataset> Materialize();

  /// Shards currently mmapped (test hook for the residency bound).
  size_t resident_shards() const;

 private:
  struct MappedShard {
    const uint8_t* payload = nullptr;  // into the mapping, past the header
    void* map_base = nullptr;
    size_t map_bytes = 0;
    size_t pins = 0;
    uint64_t last_use = 0;
    bool verified = false;
  };

  StreamingReader(std::string dir, ShardManifest manifest, Options options);

  /// Pins shard `index`, mapping + validating it first if needed.
  /// Caller must Unpin. Called under no lock; locks internally.
  Result<const uint8_t*> Pin(size_t index);
  void Unpin(size_t index);
  Status MapAndValidateLocked(size_t index);
  void EvictIfNeededLocked();

  std::string dir_;
  ShardManifest manifest_;
  Options options_;
  EncodedDataset meta_;
  size_t row_width_ = 0;

  mutable std::mutex mutex_;
  std::vector<MappedShard> shards_;
  size_t resident_ = 0;
  uint64_t use_clock_ = 0;
};

/// BatchSource over a row range of a sharded (or materialized) dataset,
/// with background prefetch. See file comment for the determinism and
/// ordering contract.
class StreamingBatcher : public BatchSource {
 public:
  enum class Order {
    /// Rows in range order, every epoch. For eval splits.
    kSequential,
    /// Cumulative full-range Fisher-Yates per epoch; order-identical to
    /// an in-RAM Batcher seeded the same over the same index range.
    kGlobalShuffle,
    /// Shuffled block order + within-window row shuffle; working set is
    /// about `window_blocks` shards instead of the whole dataset.
    kWindowShuffle,
  };

  struct Options {
    size_t batch_size = 256;
    Order order = Order::kSequential;
    uint64_t seed = 0;
    /// Fill tasks kept in flight ahead of the consumer (>= 1).
    size_t prefetch_batches = 2;
    /// kWindowShuffle: blocks per shuffle window.
    size_t window_blocks = 8;
    /// kWindowShuffle: rows per block; 0 = the manifest's rows_per_shard
    /// (one block == one shard, the locality sweet spot).
    size_t block_rows = 0;
  };

  /// Batches over global rows [begin, end) of `reader`. The reader must
  /// outlive the batcher and may be shared between batchers (it is
  /// thread-safe), but one batcher instance is single-consumer.
  StreamingBatcher(StreamingReader* reader, size_t begin, size_t end,
                   const Options& options);

  /// Same order generation and buffer ring, but rows are copied from an
  /// in-RAM dataset: the control arm for streamed-vs-RAM parity runs.
  StreamingBatcher(const EncodedDataset* data, size_t begin, size_t end,
                   const Options& options);

  ~StreamingBatcher() override;

  void StartEpoch() override;
  Batch Next() override;
  size_t num_rows() const override { return end_ - begin_; }

  /// Sticky error. Next() returns an empty batch both at epoch end and on
  /// failure; callers distinguish the two here. Once set, subsequent
  /// epochs refuse to start.
  const Status& status() const { return status_; }

 private:
  struct Slot {
    EncodedDataset buffer;
    TaskGroup group;
    Status status;
    size_t rows = 0;
  };

  void Init(size_t total_rows, const Options& options);
  void BuildEpochOrder();
  void ScheduleFill(size_t batch_index);
  Status Fill(const size_t* rows, size_t n, EncodedDataset* dst);

  StreamingReader* reader_ = nullptr;       // exactly one of these two
  const EncodedDataset* ram_data_ = nullptr;
  size_t begin_ = 0;
  size_t end_ = 0;
  Options options_;
  Rng rng_;
  size_t block_rows_ = 0;

  std::vector<size_t> order_;      // epoch row order (global row ids)
  std::vector<size_t> iota_rows_;  // 0..batch_size-1; Batch.rows target
  std::vector<std::unique_ptr<Slot>> slots_;  // Slot holds a TaskGroup (immovable)
  size_t num_batches_ = 0;
  size_t next_return_ = 0;   // batch index the next Next() yields
  size_t next_schedule_ = 0; // first batch not yet handed to the pool
  bool epoch_open_ = false;
  Status status_;
};

}  // namespace optinter
