// Vocabulary building with min-count OOV thresholding.
//
// The paper's preprocessing (§III-A1) maps both categorical features and
// cross-product transformed features that appear fewer than a threshold
// number of times (20 on Criteo, 5 on Avazu) to a single out-of-vocabulary
// dummy feature. Vocab reserves id 0 for OOV; real values get ids >= 1.

#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

namespace optinter {

/// Frequency-thresholded dictionary from raw 64-bit values to dense ids.
class Vocab {
 public:
  /// Id reserved for out-of-vocabulary / infrequent values.
  static constexpr int32_t kOovId = 0;

  /// Counts one occurrence of `value` (fit phase).
  void Add(int64_t value) { ++counts_[value]; }

  /// Freezes the vocabulary: values with count >= min_count receive dense
  /// ids 1..K in first-seen-by-map-order; everything else maps to kOovId.
  /// Counting data is released.
  void Finalize(size_t min_count);

  /// Encodes a value; unseen or infrequent values map to kOovId.
  /// Must be called after Finalize().
  int32_t Encode(int64_t value) const;

  /// Total number of ids including OOV (i.e. max id + 1).
  size_t size() const { return next_id_; }

  bool finalized() const { return finalized_; }

  /// (value, id) entries of a finalized vocab, sorted by id. For
  /// serialization.
  std::vector<std::pair<int64_t, int32_t>> Items() const;

  /// Rebuilds a finalized vocab from Items() output. Ids must be the
  /// dense range 1..items.size() in order.
  static Vocab FromItems(
      const std::vector<std::pair<int64_t, int32_t>>& items);

 private:
  std::unordered_map<int64_t, size_t> counts_;
  std::unordered_map<int64_t, int32_t> ids_;
  size_t next_id_ = 1;  // 0 is OOV
  bool finalized_ = false;
};

}  // namespace optinter
