#include "data/shard_format.h"

#include <cstring>

#include "common/string_util.h"

namespace optinter {

namespace {

// ---------------------------------------------------------------------------
// CRC-32 (software, table-driven; the format's integrity needs are modest
// and this keeps the reader dependency-free).

const uint32_t* Crc32Table() {
  static const auto table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

// ---------------------------------------------------------------------------
// Little byte-buffer codec for the manifest. The manifest is small (a few
// KB), so it is serialized into memory and written in one shot; the reader
// loads the whole file and decodes with bounds checks so a truncated or
// garbage manifest produces a clean error, never a crash.

class ByteWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(v); }
  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    Raw(s.data(), s.size());
  }
  void Raw(const void* p, size_t n) {
    const auto* b = static_cast<const uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }
  const std::vector<uint8_t>& bytes() const { return buf_; }

 private:
  std::vector<uint8_t> buf_;
};

class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size, std::string file)
      : data_(data), size_(size), file_(std::move(file)) {}

  Status U8(uint8_t* v) { return Raw(v, 1, "u8"); }
  Status U32(uint32_t* v) { return Raw(v, sizeof(*v), "u32"); }
  Status U64(uint64_t* v) { return Raw(v, sizeof(*v), "u64"); }
  Status Str(std::string* s) {
    uint32_t len = 0;
    OPTINTER_RETURN_NOT_OK(U32(&len));
    if (len > size_ - pos_) return Truncated("string");
    s->assign(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return Status::OK();
  }
  Status Raw(void* p, size_t n, const char* what) {
    if (n > size_ - pos_) return Truncated(what);
    std::memcpy(p, data_ + pos_, n);
    pos_ += n;
    return Status::OK();
  }
  size_t pos() const { return pos_; }
  size_t remaining() const { return size_ - pos_; }

 private:
  Status Truncated(const char* what) const {
    return Status::Corruption(StrFormat(
        "'%s' is truncated: needed a %s at offset %zu but the file has "
        "%zu bytes",
        file_.c_str(), what, pos_, size_));
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  std::string file_;
};

Status ReadWholeFile(const std::string& path, std::vector<uint8_t>* out) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::IoError("cannot open '" + path + "'");
  const std::streamsize size = in.tellg();
  in.seekg(0);
  out->resize(static_cast<size_t>(size));
  if (size > 0 &&
      !in.read(reinterpret_cast<char*>(out->data()), size)) {
    return Status::IoError("failed reading '" + path + "'");
  }
  return Status::OK();
}

Status WriteWholeFile(const std::string& path,
                      const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot create '" + path + "'");
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) return Status::IoError("failed writing '" + path + "'");
  return Status::OK();
}

bool FileExists(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return static_cast<bool>(in);
}

void HashBytes(uint64_t* h, const void* p, size_t n) {
  const auto* b = static_cast<const uint8_t*>(p);
  for (size_t i = 0; i < n; ++i) {
    *h ^= b[i];
    *h *= 1099511628211ULL;  // FNV-1a 64
  }
}

void HashU64(uint64_t* h, uint64_t v) { HashBytes(h, &v, sizeof(v)); }

}  // namespace

uint32_t Crc32(const void* data, size_t len, uint32_t seed) {
  const uint32_t* table = Crc32Table();
  uint32_t c = seed ^ 0xFFFFFFFFu;
  const auto* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < len; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

size_t ShardDatasetMeta::RowWidthBytes() const {
  const size_t ints = schema.num_categorical() +
                      (has_cross() ? schema.num_pairs() : 0) +
                      num_triples();
  const size_t floats = schema.num_continuous() + 1;  // + label
  return ints * sizeof(int32_t) + floats * sizeof(float);
}

uint64_t ShardDatasetMeta::SchemaHash() const {
  uint64_t h = 1469598103934665603ULL;  // FNV-1a offset basis
  HashU64(&h, schema.num_fields());
  for (const auto& f : schema.fields()) {
    HashU64(&h, f.name.size());
    HashBytes(&h, f.name.data(), f.name.size());
    HashU64(&h, f.type == FieldType::kCategorical ? 0 : 1);
  }
  HashU64(&h, cat_vocab_sizes.size());
  for (size_t v : cat_vocab_sizes) HashU64(&h, v);
  HashU64(&h, cross_vocab_sizes.size());
  for (size_t v : cross_vocab_sizes) HashU64(&h, v);
  HashU64(&h, triple_fields.size());
  for (const auto& t : triple_fields) {
    HashU64(&h, t[0]);
    HashU64(&h, t[1]);
    HashU64(&h, t[2]);
  }
  for (size_t v : triple_vocab_sizes) HashU64(&h, v);
  return h;
}

ShardDatasetMeta ShardDatasetMeta::FromDataset(const EncodedDataset& data) {
  ShardDatasetMeta meta;
  meta.schema = data.schema;
  meta.cat_vocab_sizes = data.cat_vocab_sizes;
  if (data.has_cross()) meta.cross_vocab_sizes = data.cross_vocab_sizes;
  if (data.has_triples()) {
    meta.triple_fields = data.triple_fields;
    meta.triple_vocab_sizes = data.triple_vocab_sizes;
  }
  meta.cat_hot_ids = data.cat_hot_ids;
  meta.cross_hot_ids = data.cross_hot_ids;
  return meta;
}

EncodedDataset ShardDatasetMeta::MetaDataset(size_t num_rows) const {
  EncodedDataset out;
  out.schema = schema;
  out.num_rows = num_rows;
  out.cat_vocab_sizes = cat_vocab_sizes;
  out.cross_vocab_sizes = cross_vocab_sizes;
  out.triple_fields = triple_fields;
  out.triple_vocab_sizes = triple_vocab_sizes;
  out.cat_hot_ids = cat_hot_ids;
  out.cross_hot_ids = cross_hot_ids;
  return out;
}

std::string ShardFileName(size_t index) {
  return StrFormat("shard_%05zu.bin", index);
}

std::string ManifestPath(const std::string& dir) { return dir + "/MANIFEST"; }

std::string ShardPath(const std::string& dir, size_t index) {
  return dir + "/" + ShardFileName(index);
}

// ---------------------------------------------------------------------------
// ShardWriter

ShardWriter::ShardWriter(std::string dir, ShardDatasetMeta meta,
                         size_t rows_per_shard)
    : dir_(std::move(dir)),
      meta_(std::move(meta)),
      rows_per_shard_(rows_per_shard),
      row_width_(meta_.RowWidthBytes()),
      schema_hash_(meta_.SchemaHash()) {
  buffer_.reserve(rows_per_shard_ * row_width_);
}

ShardWriter::~ShardWriter() = default;

Result<std::unique_ptr<ShardWriter>> ShardWriter::Open(
    const std::string& dir, ShardDatasetMeta meta, size_t rows_per_shard) {
  if (rows_per_shard == 0) {
    return Status::Invalid("rows_per_shard must be positive");
  }
  if (meta.schema.num_categorical() == 0) {
    return Status::Invalid("shard schema has no categorical fields");
  }
  if (meta.cat_vocab_sizes.size() != meta.schema.num_categorical()) {
    return Status::Invalid(StrFormat(
        "schema has %zu categorical fields but %zu vocab sizes",
        meta.schema.num_categorical(), meta.cat_vocab_sizes.size()));
  }
  if (meta.has_cross() &&
      meta.cross_vocab_sizes.size() != meta.schema.num_pairs()) {
    return Status::Invalid(StrFormat(
        "schema has %zu pairs but %zu cross vocab sizes",
        meta.schema.num_pairs(), meta.cross_vocab_sizes.size()));
  }
  if (meta.triple_vocab_sizes.size() != meta.triple_fields.size()) {
    return Status::Invalid(StrFormat(
        "meta has %zu triples but %zu triple vocab sizes",
        meta.triple_fields.size(), meta.triple_vocab_sizes.size()));
  }
  if (!meta.cat_hot_ids.empty() &&
      meta.cat_hot_ids.size() != meta.schema.num_categorical()) {
    return Status::Invalid(StrFormat(
        "meta has %zu categorical hot-id lists, schema implies 0 or %zu",
        meta.cat_hot_ids.size(), meta.schema.num_categorical()));
  }
  if (!meta.cross_hot_ids.empty() &&
      meta.cross_hot_ids.size() != meta.cross_vocab_sizes.size()) {
    return Status::Invalid(StrFormat(
        "meta has %zu cross hot-id lists, expected 0 or %zu",
        meta.cross_hot_ids.size(), meta.cross_vocab_sizes.size()));
  }
  if (FileExists(ManifestPath(dir))) {
    return Status::Invalid("'" + dir +
                           "' already holds a sharded dataset (MANIFEST "
                           "present); refusing to overwrite");
  }
  // Probe writability now so a bad path fails at Open, not mid-stream.
  {
    std::ofstream probe(ShardPath(dir, 0), std::ios::binary);
    if (!probe) {
      return Status::IoError("cannot create files in '" + dir +
                             "' (does the directory exist?)");
    }
  }
  return std::unique_ptr<ShardWriter>(
      new ShardWriter(dir, std::move(meta), rows_per_shard));
}

Status ShardWriter::Append(const int32_t* cat, const int32_t* cross,
                           const int32_t* triple, const float* cont,
                           float label) {
  CHECK(!finished_);
  const size_t old = buffer_.size();
  buffer_.resize(old + row_width_);
  uint8_t* p = buffer_.data() + old;
  auto put = [&p](const void* src, size_t n) {
    if (n > 0) std::memcpy(p, src, n);
    p += n;
  };
  put(cat, meta_.schema.num_categorical() * sizeof(int32_t));
  if (meta_.has_cross()) {
    CHECK(cross != nullptr);
    put(cross, meta_.schema.num_pairs() * sizeof(int32_t));
  }
  if (meta_.num_triples() > 0) {
    CHECK(triple != nullptr);
    put(triple, meta_.num_triples() * sizeof(int32_t));
  }
  put(cont, meta_.schema.num_continuous() * sizeof(float));
  put(&label, sizeof(float));
  ++buffered_rows_;
  ++rows_written_;
  if (buffered_rows_ == rows_per_shard_) {
    return FlushShard();
  }
  return Status::OK();
}

Status ShardWriter::FlushShard() {
  const size_t index = shards_.size();
  ShardInfo info;
  info.row_count = buffered_rows_;
  info.payload_bytes = buffer_.size();
  info.payload_crc = Crc32(buffer_.data(), buffer_.size());

  ByteWriter header;
  header.U64(kShardMagic);
  header.U32(kShardFormatVersion);
  header.U32(static_cast<uint32_t>(index));
  header.U64(schema_hash_);
  header.U64(info.row_count);
  header.U32(info.payload_crc);
  header.U32(0);  // reserved
  CHECK_EQ(header.bytes().size(), kShardHeaderBytes);

  std::ofstream out(ShardPath(dir_, index),
                    std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IoError("cannot create '" + ShardPath(dir_, index) + "'");
  }
  out.write(reinterpret_cast<const char*>(header.bytes().data()),
            static_cast<std::streamsize>(header.bytes().size()));
  out.write(reinterpret_cast<const char*>(buffer_.data()),
            static_cast<std::streamsize>(buffer_.size()));
  out.flush();
  if (!out) {
    return Status::IoError("failed writing '" + ShardPath(dir_, index) +
                           "'");
  }
  shards_.push_back(info);
  buffer_.clear();
  buffered_rows_ = 0;
  return Status::OK();
}

Status ShardWriter::SetFreqStats(
    std::vector<std::vector<int32_t>> cat_hot_ids,
    std::vector<std::vector<int32_t>> cross_hot_ids) {
  CHECK(!finished_);
  if (!cat_hot_ids.empty() &&
      cat_hot_ids.size() != meta_.schema.num_categorical()) {
    return Status::Invalid(StrFormat(
        "%zu categorical hot-id lists, schema implies 0 or %zu",
        cat_hot_ids.size(), meta_.schema.num_categorical()));
  }
  if (!cross_hot_ids.empty() &&
      cross_hot_ids.size() != meta_.cross_vocab_sizes.size()) {
    return Status::Invalid(StrFormat(
        "%zu cross hot-id lists, expected 0 or %zu", cross_hot_ids.size(),
        meta_.cross_vocab_sizes.size()));
  }
  meta_.cat_hot_ids = std::move(cat_hot_ids);
  meta_.cross_hot_ids = std::move(cross_hot_ids);
  return Status::OK();
}

Status ShardWriter::Finish() {
  CHECK(!finished_);
  finished_ = true;
  if (buffered_rows_ > 0) {
    OPTINTER_RETURN_NOT_OK(FlushShard());
  }
  if (rows_written_ == 0) {
    return Status::Invalid("no rows written; refusing to finalize an empty "
                           "sharded dataset");
  }

  ByteWriter w;
  w.U64(kManifestMagic);
  w.U32(kShardFormatVersion);
  w.U32(static_cast<uint32_t>(meta_.schema.num_fields()));
  for (const auto& f : meta_.schema.fields()) {
    w.Str(f.name);
    w.U8(f.type == FieldType::kCategorical ? 0 : 1);
  }
  w.U64(meta_.cat_vocab_sizes.size());
  for (size_t v : meta_.cat_vocab_sizes) w.U64(v);
  w.U64(meta_.cross_vocab_sizes.size());
  for (size_t v : meta_.cross_vocab_sizes) w.U64(v);
  w.U64(meta_.triple_fields.size());
  for (size_t t = 0; t < meta_.triple_fields.size(); ++t) {
    w.U64(meta_.triple_fields[t][0]);
    w.U64(meta_.triple_fields[t][1]);
    w.U64(meta_.triple_fields[t][2]);
    w.U64(meta_.triple_vocab_sizes[t]);
  }
  w.U64(schema_hash_);
  w.U64(rows_written_);
  w.U64(rows_per_shard_);
  w.U64(row_width_);
  w.U64(shards_.size());
  for (const auto& s : shards_) {
    w.U64(s.row_count);
    w.U64(s.payload_bytes);
    w.U32(s.payload_crc);
  }
  // Optional frequency-stats section (tiered-embedding hot-id metadata).
  if (!meta_.cat_hot_ids.empty() || !meta_.cross_hot_ids.empty()) {
    w.U64(kManifestFreqStatsTag);
    auto write_stats = [&w](const std::vector<std::vector<int32_t>>& stats) {
      w.U64(stats.size());
      for (const auto& ids : stats) {
        w.U64(ids.size());
        for (int32_t id : ids) w.U32(static_cast<uint32_t>(id));
      }
    };
    write_stats(meta_.cat_hot_ids);
    write_stats(meta_.cross_hot_ids);
  }
  w.U32(Crc32(w.bytes().data(), w.bytes().size()));
  return WriteWholeFile(ManifestPath(dir_), w.bytes());
}

Status WriteShardedDataset(const EncodedDataset& data,
                           const std::string& dir, size_t rows_per_shard) {
  OPTINTER_ASSIGN_OR_RETURN(
      auto writer, ShardWriter::Open(dir, ShardDatasetMeta::FromDataset(data),
                                     rows_per_shard));
  const size_t num_cat = data.num_categorical();
  const size_t num_pairs = data.num_pairs();
  const size_t num_triples = data.num_triples();
  const size_t num_cont = data.num_continuous();
  for (size_t r = 0; r < data.num_rows; ++r) {
    OPTINTER_RETURN_NOT_OK(writer->Append(
        data.cat_ids.data() + r * num_cat,
        data.has_cross() ? data.cross_ids.data() + r * num_pairs : nullptr,
        data.has_triples() ? data.triple_ids.data() + r * num_triples
                           : nullptr,
        num_cont > 0 ? data.cont_values.data() + r * num_cont : nullptr,
        data.labels[r]));
  }
  return writer->Finish();
}

Result<ShardManifest> ReadShardManifest(const std::string& dir) {
  const std::string path = ManifestPath(dir);
  std::vector<uint8_t> bytes;
  OPTINTER_RETURN_NOT_OK(ReadWholeFile(path, &bytes));
  if (bytes.size() < sizeof(uint64_t) + 2 * sizeof(uint32_t)) {
    return Status::Corruption(StrFormat(
        "'%s' is too small to be a manifest (%zu bytes)", path.c_str(),
        bytes.size()));
  }
  // Trailing CRC covers everything before it; check first so every later
  // field can be trusted.
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, bytes.data() + bytes.size() - sizeof(uint32_t),
              sizeof(uint32_t));
  const uint32_t actual_crc =
      Crc32(bytes.data(), bytes.size() - sizeof(uint32_t));
  if (stored_crc != actual_crc) {
    return Status::Corruption(StrFormat(
        "'%s' failed its CRC check (stored 0x%08x, computed 0x%08x); the "
        "manifest is corrupt or truncated",
        path.c_str(), stored_crc, actual_crc));
  }

  ByteReader r(bytes.data(), bytes.size() - sizeof(uint32_t), path);
  uint64_t magic = 0;
  OPTINTER_RETURN_NOT_OK(r.U64(&magic));
  if (magic != kManifestMagic) {
    return Status::Corruption(StrFormat(
        "'%s' has magic 0x%016llx, expected 0x%016llx; not a shard "
        "manifest",
        path.c_str(), static_cast<unsigned long long>(magic),
        static_cast<unsigned long long>(kManifestMagic)));
  }
  uint32_t version = 0;
  OPTINTER_RETURN_NOT_OK(r.U32(&version));
  if (version != kShardFormatVersion) {
    return Status::Invalid(StrFormat(
        "'%s' is format version %u; this build reads version %u",
        path.c_str(), version, kShardFormatVersion));
  }

  ShardManifest m;
  uint32_t num_fields = 0;
  OPTINTER_RETURN_NOT_OK(r.U32(&num_fields));
  if (num_fields == 0 || num_fields > 1u << 20) {
    return Status::Corruption(StrFormat(
        "'%s' declares %u schema fields (implausible)", path.c_str(),
        num_fields));
  }
  std::vector<FieldSpec> specs;
  specs.reserve(num_fields);
  for (uint32_t f = 0; f < num_fields; ++f) {
    FieldSpec spec;
    OPTINTER_RETURN_NOT_OK(r.Str(&spec.name));
    uint8_t type = 0;
    OPTINTER_RETURN_NOT_OK(r.U8(&type));
    if (type > 1) {
      return Status::Corruption(StrFormat(
          "'%s': field '%s' has unknown type tag %u", path.c_str(),
          spec.name.c_str(), type));
    }
    spec.type = type == 0 ? FieldType::kCategorical : FieldType::kContinuous;
    specs.push_back(std::move(spec));
  }
  m.meta.schema = DatasetSchema(std::move(specs));

  auto read_sizes = [&](const char* what, std::vector<size_t>* out,
                        size_t expected) -> Status {
    uint64_t n = 0;
    OPTINTER_RETURN_NOT_OK(r.U64(&n));
    if (n != expected) {
      return Status::Corruption(StrFormat(
          "'%s' declares %llu %s vocab sizes, schema implies %zu",
          path.c_str(), static_cast<unsigned long long>(n), what, expected));
    }
    out->resize(n);
    for (uint64_t i = 0; i < n; ++i) {
      uint64_t v = 0;
      OPTINTER_RETURN_NOT_OK(r.U64(&v));
      (*out)[i] = static_cast<size_t>(v);
    }
    return Status::OK();
  };
  OPTINTER_RETURN_NOT_OK(read_sizes("categorical", &m.meta.cat_vocab_sizes,
                                    m.meta.schema.num_categorical()));
  {
    // Cross vocabularies are optional: either zero, or one per pair.
    uint64_t n = 0;
    OPTINTER_RETURN_NOT_OK(r.U64(&n));
    if (n != 0 && n != m.meta.schema.num_pairs()) {
      return Status::Corruption(StrFormat(
          "'%s' declares %llu cross vocab sizes, schema implies 0 or %zu",
          path.c_str(), static_cast<unsigned long long>(n),
          m.meta.schema.num_pairs()));
    }
    m.meta.cross_vocab_sizes.resize(n);
    for (uint64_t i = 0; i < n; ++i) {
      uint64_t v = 0;
      OPTINTER_RETURN_NOT_OK(r.U64(&v));
      m.meta.cross_vocab_sizes[i] = static_cast<size_t>(v);
    }
  }
  {
    uint64_t n = 0;
    OPTINTER_RETURN_NOT_OK(r.U64(&n));
    if (n > 1u << 20) {
      return Status::Corruption(StrFormat(
          "'%s' declares %llu triples (implausible)", path.c_str(),
          static_cast<unsigned long long>(n)));
    }
    m.meta.triple_fields.resize(n);
    m.meta.triple_vocab_sizes.resize(n);
    for (uint64_t t = 0; t < n; ++t) {
      for (int k = 0; k < 3; ++k) {
        uint64_t v = 0;
        OPTINTER_RETURN_NOT_OK(r.U64(&v));
        m.meta.triple_fields[t][k] = static_cast<size_t>(v);
      }
      uint64_t v = 0;
      OPTINTER_RETURN_NOT_OK(r.U64(&v));
      m.meta.triple_vocab_sizes[t] = static_cast<size_t>(v);
    }
  }

  uint64_t stored_hash = 0;
  OPTINTER_RETURN_NOT_OK(r.U64(&stored_hash));
  const uint64_t actual_hash = m.meta.SchemaHash();
  if (stored_hash != actual_hash) {
    return Status::Corruption(StrFormat(
        "'%s': stored schema hash 0x%016llx does not match the schema "
        "content (0x%016llx)",
        path.c_str(), static_cast<unsigned long long>(stored_hash),
        static_cast<unsigned long long>(actual_hash)));
  }

  OPTINTER_RETURN_NOT_OK(r.U64(&m.num_rows));
  OPTINTER_RETURN_NOT_OK(r.U64(&m.rows_per_shard));
  if (m.num_rows == 0) {
    return Status::Corruption("'" + path + "' declares zero rows");
  }
  if (m.rows_per_shard == 0) {
    return Status::Corruption("'" + path + "' declares zero rows per shard");
  }
  uint64_t row_width = 0;
  OPTINTER_RETURN_NOT_OK(r.U64(&row_width));
  if (row_width != m.meta.RowWidthBytes()) {
    return Status::Corruption(StrFormat(
        "'%s' declares row width %llu bytes, schema implies %zu",
        path.c_str(), static_cast<unsigned long long>(row_width),
        m.meta.RowWidthBytes()));
  }

  uint64_t num_shards = 0;
  OPTINTER_RETURN_NOT_OK(r.U64(&num_shards));
  const uint64_t expected_shards =
      (m.num_rows + m.rows_per_shard - 1) / m.rows_per_shard;
  if (num_shards != expected_shards) {
    return Status::Corruption(StrFormat(
        "'%s' declares %llu shards; %llu rows at %llu rows/shard implies "
        "%llu",
        path.c_str(), static_cast<unsigned long long>(num_shards),
        static_cast<unsigned long long>(m.num_rows),
        static_cast<unsigned long long>(m.rows_per_shard),
        static_cast<unsigned long long>(expected_shards)));
  }
  m.shards.resize(num_shards);
  uint64_t total_rows = 0;
  for (uint64_t s = 0; s < num_shards; ++s) {
    ShardInfo& info = m.shards[s];
    OPTINTER_RETURN_NOT_OK(r.U64(&info.row_count));
    OPTINTER_RETURN_NOT_OK(r.U64(&info.payload_bytes));
    OPTINTER_RETURN_NOT_OK(r.U32(&info.payload_crc));
    const uint64_t expected_rows = s + 1 < num_shards
                                       ? m.rows_per_shard
                                       : m.num_rows - s * m.rows_per_shard;
    if (info.row_count != expected_rows) {
      return Status::Corruption(StrFormat(
          "'%s': shard %llu declares %llu rows, expected %llu",
          path.c_str(), static_cast<unsigned long long>(s),
          static_cast<unsigned long long>(info.row_count),
          static_cast<unsigned long long>(expected_rows)));
    }
    if (info.payload_bytes != info.row_count * row_width) {
      return Status::Corruption(StrFormat(
          "'%s': shard %llu declares %llu payload bytes, %llu rows at "
          "%llu bytes/row implies %llu",
          path.c_str(), static_cast<unsigned long long>(s),
          static_cast<unsigned long long>(info.payload_bytes),
          static_cast<unsigned long long>(info.row_count),
          static_cast<unsigned long long>(row_width),
          static_cast<unsigned long long>(info.row_count * row_width)));
    }
    total_rows += info.row_count;
  }
  if (total_rows != m.num_rows) {
    return Status::Corruption(StrFormat(
        "'%s': shard row counts sum to %llu, manifest declares %llu",
        path.c_str(), static_cast<unsigned long long>(total_rows),
        static_cast<unsigned long long>(m.num_rows)));
  }
  // Optional tagged sections. Only the frequency-stats section exists
  // today; an unknown tag is corruption (not skippable — the CRC already
  // vouched for the bytes, so an unknown tag means a newer writer, and
  // silently dropping its data could change model behavior).
  if (r.remaining() > 0) {
    uint64_t tag = 0;
    OPTINTER_RETURN_NOT_OK(r.U64(&tag));
    if (tag != kManifestFreqStatsTag) {
      return Status::Corruption(StrFormat(
          "'%s' has an unknown optional section tag 0x%016llx",
          path.c_str(), static_cast<unsigned long long>(tag)));
    }
    auto read_stats = [&](const char* what,
                          std::vector<std::vector<int32_t>>* out,
                          const std::vector<size_t>& vocabs) -> Status {
      uint64_t n = 0;
      OPTINTER_RETURN_NOT_OK(r.U64(&n));
      if (n != 0 && n != vocabs.size()) {
        return Status::Corruption(StrFormat(
            "'%s': frequency-stats section has %llu %s hot-id lists, "
            "expected 0 or %zu",
            path.c_str(), static_cast<unsigned long long>(n), what,
            vocabs.size()));
      }
      out->resize(n);
      for (uint64_t f = 0; f < n; ++f) {
        uint64_t count = 0;
        OPTINTER_RETURN_NOT_OK(r.U64(&count));
        if (count > vocabs[f]) {
          return Status::Corruption(StrFormat(
              "'%s': %s field %llu lists %llu hot ids but its vocab has "
              "only %zu values",
              path.c_str(), what, static_cast<unsigned long long>(f),
              static_cast<unsigned long long>(count), vocabs[f]));
        }
        (*out)[f].resize(count);
        for (uint64_t i = 0; i < count; ++i) {
          uint32_t id = 0;
          OPTINTER_RETURN_NOT_OK(r.U32(&id));
          if (id >= vocabs[f]) {
            return Status::Corruption(StrFormat(
                "'%s': %s field %llu hot id %u is outside its vocab "
                "(size %zu)",
                path.c_str(), what, static_cast<unsigned long long>(f), id,
                vocabs[f]));
          }
          (*out)[f][i] = static_cast<int32_t>(id);
        }
      }
      return Status::OK();
    };
    OPTINTER_RETURN_NOT_OK(read_stats("categorical", &m.meta.cat_hot_ids,
                                      m.meta.cat_vocab_sizes));
    OPTINTER_RETURN_NOT_OK(read_stats("cross", &m.meta.cross_hot_ids,
                                      m.meta.cross_vocab_sizes));
  }
  if (r.remaining() != 0) {
    return Status::Corruption(StrFormat(
        "'%s' has %zu unexpected trailing bytes before its CRC",
        path.c_str(), r.remaining()));
  }
  return m;
}

}  // namespace optinter
