#include "data/stream_reader.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>

#include "common/string_util.h"

namespace optinter {

// ---------------------------------------------------------------------------
// StreamingReader

StreamingReader::StreamingReader(std::string dir, ShardManifest manifest,
                                 Options options)
    : dir_(std::move(dir)),
      manifest_(std::move(manifest)),
      options_(options),
      meta_(manifest_.meta.MetaDataset(manifest_.num_rows)),
      row_width_(manifest_.meta.RowWidthBytes()),
      shards_(manifest_.shards.size()) {}

Result<std::unique_ptr<StreamingReader>> StreamingReader::Open(
    const std::string& dir, const Options& options) {
  if (options.max_resident_shards == 0) {
    return Status::Invalid("max_resident_shards must be positive");
  }
  OPTINTER_ASSIGN_OR_RETURN(auto manifest, ReadShardManifest(dir));
  return std::unique_ptr<StreamingReader>(
      new StreamingReader(dir, std::move(manifest), options));
}

StreamingReader::~StreamingReader() {
  for (MappedShard& s : shards_) {
    if (s.map_base != nullptr) {
      ::munmap(s.map_base, s.map_bytes);
    }
  }
}

size_t StreamingReader::resident_shards() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return resident_;
}

Status StreamingReader::MapAndValidateLocked(size_t index) {
  const std::string path = ShardPath(dir_, index);
  const ShardInfo& info = manifest_.shards[index];
  const size_t expected_bytes =
      kShardHeaderBytes + static_cast<size_t>(info.payload_bytes);

  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError("cannot open '" + path +
                           "' (missing shard file?)");
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IoError("fstat failed on '" + path + "'");
  }
  if (static_cast<size_t>(st.st_size) != expected_bytes) {
    ::close(fd);
    return Status::Corruption(StrFormat(
        "'%s' is %lld bytes, manifest expects %zu (truncated or "
        "garbage appended)",
        path.c_str(), static_cast<long long>(st.st_size), expected_bytes));
  }
  void* base =
      ::mmap(nullptr, expected_bytes, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (base == MAP_FAILED) {
    return Status::IoError("mmap failed on '" + path + "'");
  }

  const auto* bytes = static_cast<const uint8_t*>(base);
  auto read_u32 = [&](size_t off) {
    uint32_t v;
    std::memcpy(&v, bytes + off, sizeof(v));
    return v;
  };
  auto read_u64 = [&](size_t off) {
    uint64_t v;
    std::memcpy(&v, bytes + off, sizeof(v));
    return v;
  };
  auto fail = [&](Status st_out) {
    ::munmap(base, expected_bytes);
    return st_out;
  };

  // Header layout: magic u64, version u32, shard_index u32, schema_hash
  // u64, row_count u64, payload_crc u32, reserved u32 (DESIGN.md §10).
  if (read_u64(0) != kShardMagic) {
    return fail(Status::Corruption(
        "'" + path + "' has a bad magic number; not a shard file"));
  }
  if (read_u32(8) != kShardFormatVersion) {
    return fail(Status::Invalid(StrFormat(
        "'%s' is shard format version %u; this build reads version %u",
        path.c_str(), read_u32(8), kShardFormatVersion)));
  }
  if (read_u32(12) != index) {
    return fail(Status::Corruption(StrFormat(
        "'%s' declares shard index %u, expected %zu (file renamed or "
        "copied from elsewhere?)",
        path.c_str(), read_u32(12), index)));
  }
  if (read_u64(16) != manifest_.meta.SchemaHash()) {
    return fail(Status::Corruption(
        "'" + path +
        "' carries a different schema hash than the manifest; it belongs "
        "to another dataset"));
  }
  if (read_u64(24) != info.row_count) {
    return fail(Status::Corruption(StrFormat(
        "'%s' declares %llu rows, manifest expects %llu", path.c_str(),
        static_cast<unsigned long long>(read_u64(24)),
        static_cast<unsigned long long>(info.row_count))));
  }
  if (read_u32(32) != info.payload_crc) {
    return fail(Status::Corruption(StrFormat(
        "'%s' header CRC 0x%08x does not match the manifest's 0x%08x",
        path.c_str(), read_u32(32), info.payload_crc)));
  }

  MappedShard& shard = shards_[index];
  if (options_.verify_crc && !shard.verified) {
    const uint32_t crc =
        Crc32(bytes + kShardHeaderBytes, info.payload_bytes);
    if (crc != info.payload_crc) {
      return fail(Status::Corruption(StrFormat(
          "'%s' payload failed its CRC check (stored 0x%08x, computed "
          "0x%08x): the shard is corrupt",
          path.c_str(), info.payload_crc, crc)));
    }
  }
  shard.verified = true;
  shard.map_base = base;
  shard.map_bytes = expected_bytes;
  shard.payload = bytes + kShardHeaderBytes;
  ++resident_;
  return Status::OK();
}

void StreamingReader::EvictIfNeededLocked() {
  while (resident_ > options_.max_resident_shards) {
    size_t victim = shards_.size();
    uint64_t oldest = UINT64_MAX;
    for (size_t i = 0; i < shards_.size(); ++i) {
      const MappedShard& s = shards_[i];
      if (s.map_base != nullptr && s.pins == 0 && s.last_use < oldest) {
        oldest = s.last_use;
        victim = i;
      }
    }
    if (victim == shards_.size()) return;  // everything pinned: overshoot
    MappedShard& s = shards_[victim];
    ::munmap(s.map_base, s.map_bytes);
    s.map_base = nullptr;
    s.payload = nullptr;
    s.map_bytes = 0;
    --resident_;
  }
}

Result<const uint8_t*> StreamingReader::Pin(size_t index) {
  CHECK_LT(index, shards_.size());
  std::lock_guard<std::mutex> lock(mutex_);
  MappedShard& shard = shards_[index];
  if (shard.map_base == nullptr) {
    OPTINTER_RETURN_NOT_OK(MapAndValidateLocked(index));
  }
  ++shard.pins;
  shard.last_use = ++use_clock_;
  EvictIfNeededLocked();
  return shard.payload;
}

void StreamingReader::Unpin(size_t index) {
  std::lock_guard<std::mutex> lock(mutex_);
  CHECK_GT(shards_[index].pins, 0u);
  --shards_[index].pins;
}

namespace {

/// Sizes `dst` for an n-row batch-local payload, stamping schema/vocab
/// metadata from `meta` on first use. Capacity is retained across calls.
void ResizeBatchBuffer(const EncodedDataset& meta, size_t n,
                       EncodedDataset* dst) {
  if (dst->schema.num_fields() == 0) {
    dst->schema = meta.schema;
    dst->cat_vocab_sizes = meta.cat_vocab_sizes;
    dst->cross_vocab_sizes = meta.cross_vocab_sizes;
    dst->triple_fields = meta.triple_fields;
    dst->triple_vocab_sizes = meta.triple_vocab_sizes;
  }
  dst->num_rows = n;
  dst->cat_ids.resize(n * meta.schema.num_categorical());
  if (!meta.cross_vocab_sizes.empty()) {
    dst->cross_ids.resize(n * meta.schema.num_pairs());
  }
  if (!meta.triple_vocab_sizes.empty()) {
    dst->triple_ids.resize(n * meta.triple_fields.size());
  }
  dst->cont_values.resize(n * meta.schema.num_continuous());
  dst->labels.resize(n);
}

}  // namespace

Status StreamingReader::FillBatch(const size_t* rows, size_t n,
                                  EncodedDataset* dst) {
  ResizeBatchBuffer(meta_, n, dst);
  const size_t num_cat = meta_.schema.num_categorical();
  const size_t num_pairs =
      manifest_.meta.has_cross() ? meta_.schema.num_pairs() : 0;
  const size_t num_triples = manifest_.meta.num_triples();
  const size_t num_cont = meta_.schema.num_continuous();
  const size_t rps = manifest_.rows_per_shard;

  size_t pinned = shards_.size();  // sentinel: nothing pinned
  const uint8_t* payload = nullptr;
  auto bail = [&](Status st) {
    if (pinned != shards_.size()) Unpin(pinned);
    ResizeBatchBuffer(meta_, 0, dst);  // never hand out a partial batch
    return st;
  };

  for (size_t k = 0; k < n; ++k) {
    const size_t row = rows[k];
    if (row >= manifest_.num_rows) {
      return bail(Status::OutOfRange(StrFormat(
          "row %zu outside dataset of %llu rows", row,
          static_cast<unsigned long long>(manifest_.num_rows))));
    }
    const size_t shard = row / rps;
    if (shard != pinned) {
      auto p = Pin(shard);
      if (!p.ok()) return bail(p.status());
      if (pinned != shards_.size()) Unpin(pinned);
      pinned = shard;
      payload = *p;
    }
    const uint8_t* src = payload + (row % rps) * row_width_;
    std::memcpy(dst->cat_ids.data() + k * num_cat, src,
                num_cat * sizeof(int32_t));
    src += num_cat * sizeof(int32_t);
    if (num_pairs > 0) {
      std::memcpy(dst->cross_ids.data() + k * num_pairs, src,
                  num_pairs * sizeof(int32_t));
      src += num_pairs * sizeof(int32_t);
    }
    if (num_triples > 0) {
      std::memcpy(dst->triple_ids.data() + k * num_triples, src,
                  num_triples * sizeof(int32_t));
      src += num_triples * sizeof(int32_t);
    }
    if (num_cont > 0) {
      std::memcpy(dst->cont_values.data() + k * num_cont, src,
                  num_cont * sizeof(float));
      src += num_cont * sizeof(float);
    }
    std::memcpy(&dst->labels[k], src, sizeof(float));
  }
  if (pinned != shards_.size()) Unpin(pinned);
  return Status::OK();
}

Result<EncodedDataset> StreamingReader::Materialize() {
  EncodedDataset out = manifest_.meta.MetaDataset(manifest_.num_rows);
  const size_t n = manifest_.num_rows;
  const size_t num_cat = out.schema.num_categorical();
  const size_t num_pairs =
      manifest_.meta.has_cross() ? out.schema.num_pairs() : 0;
  const size_t num_triples = manifest_.meta.num_triples();
  const size_t num_cont = out.schema.num_continuous();
  out.cat_ids.resize(n * num_cat);
  out.cross_ids.resize(n * num_pairs);
  out.triple_ids.resize(n * num_triples);
  out.cont_values.resize(n * num_cont);
  out.labels.resize(n);

  size_t row = 0;
  for (size_t s = 0; s < manifest_.shards.size(); ++s) {
    OPTINTER_ASSIGN_OR_RETURN(const uint8_t* payload, Pin(s));
    const uint8_t* src = payload;
    for (uint64_t r = 0; r < manifest_.shards[s].row_count; ++r, ++row) {
      std::memcpy(out.cat_ids.data() + row * num_cat, src,
                  num_cat * sizeof(int32_t));
      src += num_cat * sizeof(int32_t);
      if (num_pairs > 0) {
        std::memcpy(out.cross_ids.data() + row * num_pairs, src,
                    num_pairs * sizeof(int32_t));
        src += num_pairs * sizeof(int32_t);
      }
      if (num_triples > 0) {
        std::memcpy(out.triple_ids.data() + row * num_triples, src,
                    num_triples * sizeof(int32_t));
        src += num_triples * sizeof(int32_t);
      }
      if (num_cont > 0) {
        std::memcpy(out.cont_values.data() + row * num_cont, src,
                    num_cont * sizeof(float));
        src += num_cont * sizeof(float);
      }
      std::memcpy(&out.labels[row], src, sizeof(float));
      src += sizeof(float);
    }
    Unpin(s);
  }
  CHECK_EQ(row, n);
  return out;
}

// ---------------------------------------------------------------------------
// StreamingBatcher

StreamingBatcher::StreamingBatcher(StreamingReader* reader, size_t begin,
                                   size_t end, const Options& options)
    : reader_(reader), begin_(begin), end_(end), rng_(options.seed) {
  CHECK(reader != nullptr);
  Init(reader->num_rows(), options);
}

StreamingBatcher::StreamingBatcher(const EncodedDataset* data, size_t begin,
                                   size_t end, const Options& options)
    : ram_data_(data), begin_(begin), end_(end), rng_(options.seed) {
  CHECK(data != nullptr);
  Init(data->num_rows, options);
}

StreamingBatcher::~StreamingBatcher() {
  for (auto& slot : slots_) slot->group.Wait();
}

void StreamingBatcher::Init(size_t total_rows, const Options& options) {
  CHECK_LE(begin_, end_);
  CHECK_LE(end_, total_rows);
  CHECK_GT(options.batch_size, 0u);
  options_ = options;
  options_.prefetch_batches = std::max<size_t>(1, options.prefetch_batches);
  block_rows_ = options.block_rows;
  if (block_rows_ == 0) {
    block_rows_ = reader_ != nullptr
                      ? static_cast<size_t>(
                            reader_->manifest().rows_per_shard)
                      : size_t{1} << 17;
  }
  iota_rows_.resize(options_.batch_size);
  for (size_t i = 0; i < iota_rows_.size(); ++i) iota_rows_[i] = i;
  slots_.resize(options_.prefetch_batches + 1);
  const EncodedDataset& meta =
      reader_ != nullptr ? reader_->meta() : *ram_data_;
  for (auto& slot : slots_) {
    slot = std::make_unique<Slot>();
    // Stamp schema/vocab metadata now; fills only resize payload vectors.
    ResizeBatchBuffer(meta, 0, &slot->buffer);
  }
  if (options_.order == Order::kGlobalShuffle) {
    // The persistent permutation: StartEpoch reshuffles it in place, the
    // same cumulative scheme as the in-RAM Batcher.
    order_.resize(end_ - begin_);
    for (size_t i = 0; i < order_.size(); ++i) order_[i] = begin_ + i;
  }
}

void StreamingBatcher::BuildEpochOrder() {
  switch (options_.order) {
    case Order::kSequential:
      order_.resize(end_ - begin_);
      for (size_t i = 0; i < order_.size(); ++i) order_[i] = begin_ + i;
      break;
    case Order::kGlobalShuffle:
      rng_.Shuffle(&order_);
      break;
    case Order::kWindowShuffle: {
      const size_t total = end_ - begin_;
      const size_t num_blocks = (total + block_rows_ - 1) / block_rows_;
      std::vector<size_t> blocks(num_blocks);
      for (size_t b = 0; b < num_blocks; ++b) blocks[b] = b;
      rng_.Shuffle(&blocks);
      order_.clear();
      order_.reserve(total);
      for (size_t b : blocks) {
        const size_t lo = begin_ + b * block_rows_;
        const size_t hi = std::min(lo + block_rows_, end_);
        for (size_t r = lo; r < hi; ++r) order_.push_back(r);
      }
      const size_t window_rows = options_.window_blocks * block_rows_;
      for (size_t w = 0; w < total; w += window_rows) {
        const size_t len = std::min(window_rows, total - w);
        // Fisher-Yates over the window, same scheme as Rng::Shuffle.
        for (size_t i = len - 1; i > 0; --i) {
          const size_t j = static_cast<size_t>(
              rng_.UniformInt(static_cast<uint64_t>(i + 1)));
          std::swap(order_[w + i], order_[w + j]);
        }
      }
      break;
    }
  }
}

void StreamingBatcher::ScheduleFill(size_t batch_index) {
  Slot* slot = slots_[batch_index % slots_.size()].get();
  const size_t start = batch_index * options_.batch_size;
  const size_t rows =
      std::min(options_.batch_size, order_.size() - start);
  slot->rows = rows;
  slot->status = Status::OK();
  const size_t* row_ids = order_.data() + start;
  ThreadPool::Global().Submit(
      [this, slot, row_ids, rows] {
        slot->status = Fill(row_ids, rows, &slot->buffer);
      },
      &slot->group);
}

Status StreamingBatcher::Fill(const size_t* rows, size_t n,
                              EncodedDataset* dst) {
  if (reader_ != nullptr) return reader_->FillBatch(rows, n, dst);

  const EncodedDataset& src = *ram_data_;
  ResizeBatchBuffer(src, n, dst);
  const size_t num_cat = src.num_categorical();
  const size_t num_pairs = src.has_cross() ? src.num_pairs() : 0;
  const size_t num_triples = src.has_triples() ? src.num_triples() : 0;
  const size_t num_cont = src.num_continuous();
  for (size_t k = 0; k < n; ++k) {
    const size_t row = rows[k];
    std::memcpy(dst->cat_ids.data() + k * num_cat,
                src.cat_ids.data() + row * num_cat,
                num_cat * sizeof(int32_t));
    if (num_pairs > 0) {
      std::memcpy(dst->cross_ids.data() + k * num_pairs,
                  src.cross_ids.data() + row * num_pairs,
                  num_pairs * sizeof(int32_t));
    }
    if (num_triples > 0) {
      std::memcpy(dst->triple_ids.data() + k * num_triples,
                  src.triple_ids.data() + row * num_triples,
                  num_triples * sizeof(int32_t));
    }
    if (num_cont > 0) {
      std::memcpy(dst->cont_values.data() + k * num_cont,
                  src.cont_values.data() + row * num_cont,
                  num_cont * sizeof(float));
    }
    dst->labels[k] = src.labels[row];
  }
  return Status::OK();
}

void StreamingBatcher::StartEpoch() {
  // Join stragglers from a previous (possibly aborted) epoch before
  // touching the order array they read from.
  for (auto& slot : slots_) slot->group.Wait();
  epoch_open_ = false;
  if (!status_.ok()) return;  // sticky: a failed source stays failed

  BuildEpochOrder();
  num_batches_ =
      (order_.size() + options_.batch_size - 1) / options_.batch_size;
  next_return_ = 0;
  next_schedule_ = 0;
  epoch_open_ = true;
  const size_t ahead = std::min(options_.prefetch_batches, num_batches_);
  while (next_schedule_ < ahead) ScheduleFill(next_schedule_++);
}

Batch StreamingBatcher::Next() {
  Batch b;
  b.rows = iota_rows_.data();
  if (!epoch_open_ || next_return_ >= num_batches_) {
    epoch_open_ = false;
    return b;  // size 0: epoch end (or sticky error; see status())
  }
  const size_t idx = next_return_++;
  // Top up the prefetch window. The slot this lands in belonged to batch
  // idx-1, which the consumer finished with before calling Next() again
  // (BatchSource contract), and whose fill task was joined when it was
  // returned.
  if (next_schedule_ < num_batches_) ScheduleFill(next_schedule_++);

  Slot* slot = slots_[idx % slots_.size()].get();
  slot->group.Wait();
  if (!slot->status.ok()) {
    status_ = slot->status;
    epoch_open_ = false;
    return b;
  }
  b.data = &slot->buffer;
  b.size = slot->rows;
  return b;
}

}  // namespace optinter
