#include "data/libsvm_loader.h"

#include <cstdlib>
#include <fstream>

#include "common/string_util.h"

namespace optinter {

Result<RawDataset> LoadLibsvmDataset(
    const std::string& path, const std::vector<LibsvmFieldSpec>& fields,
    const LibsvmOptions& options) {
  if (fields.empty()) return Status::Invalid("no fields specified");
  for (size_t f = 0; f < fields.size(); ++f) {
    if (fields[f].begin >= fields[f].end) {
      return Status::Invalid("field '" + fields[f].name +
                             "' has an empty index range");
    }
    if (f > 0 && fields[f].begin < fields[f - 1].end) {
      return Status::Invalid("field ranges must be disjoint and sorted");
    }
  }
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open '" + path + "'");

  std::vector<FieldSpec> schema_fields;
  schema_fields.reserve(fields.size());
  for (const auto& f : fields) {
    schema_fields.push_back({f.name, f.type});
  }
  RawDataset raw;
  raw.schema = DatasetSchema(std::move(schema_fields));
  const size_t num_cat = raw.schema.num_categorical();
  const size_t num_cont = raw.schema.num_continuous();

  // Map a global index to its field position (linear scan: field counts
  // are small).
  auto field_of = [&](size_t index) -> int {
    for (size_t f = 0; f < fields.size(); ++f) {
      if (index >= fields[f].begin && index < fields[f].end) {
        return static_cast<int>(f);
      }
    }
    return -1;
  };
  // Position of each schema field within its type group.
  std::vector<size_t> slot_of(fields.size());
  {
    size_t cat_slot = 0, cont_slot = 0;
    for (size_t f = 0; f < fields.size(); ++f) {
      slot_of[f] = fields[f].type == FieldType::kCategorical ? cat_slot++
                                                             : cont_slot++;
    }
  }

  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    std::string_view trimmed = Trim(line);
    if (trimmed.empty()) continue;
    const auto tokens = Split(trimmed, ' ');
    if (tokens.empty()) continue;

    char* end = nullptr;
    const double label = std::strtod(tokens[0].c_str(), &end);
    // The whole token must parse: a partially-consumed label means an
    // unexpected delimiter glued the label to its features (e.g. a
    // tab-separated file split on ' ' yields one token "1\t5:2"), and the
    // old lenient parse silently dropped every feature on the line.
    if (end == tokens[0].c_str() || *end != '\0') {
      return Status::Invalid(
          StrFormat("line %zu: bad label '%s' (token not fully numeric; "
                    "tab-delimited file loaded as space-delimited?)",
                    line_number, tokens[0].c_str()));
    }
    raw.labels.push_back(label > 0.5 ? 1.0f : 0.0f);

    raw.cat_values.resize(raw.cat_values.size() + num_cat,
                          options.missing_value);
    raw.cont_values.resize(raw.cont_values.size() + num_cont, 0.0f);
    int64_t* cat_row = raw.cat_values.data() + raw.num_rows * num_cat;
    float* cont_row = raw.cont_values.data() + raw.num_rows * num_cont;

    for (size_t t = 1; t < tokens.size(); ++t) {
      if (tokens[t].empty()) continue;
      const size_t colon = tokens[t].find(':');
      if (colon == std::string::npos) {
        return Status::Invalid(StrFormat(
            "line %zu: token '%s' is not index:value", line_number,
            tokens[t].c_str()));
      }
      // Strict index:value parse — both halves must consume their span
      // exactly. strtoull on a non-numeric index returns 0 without error,
      // which previously aliased garbage tokens onto feature index 0.
      char* idx_end = nullptr;
      const size_t index = static_cast<size_t>(
          std::strtoull(tokens[t].c_str(), &idx_end, 10));
      if (idx_end != tokens[t].c_str() + colon) {
        return Status::Invalid(StrFormat(
            "line %zu: token '%s' has a non-numeric index", line_number,
            tokens[t].c_str()));
      }
      char* val_end = nullptr;
      const double value =
          std::strtod(tokens[t].c_str() + colon + 1, &val_end);
      if (val_end == tokens[t].c_str() + colon + 1 || *val_end != '\0') {
        return Status::Invalid(StrFormat(
            "line %zu: token '%s' has a non-numeric value", line_number,
            tokens[t].c_str()));
      }
      const int f = field_of(index);
      if (f < 0) {
        return Status::OutOfRange(StrFormat(
            "line %zu: index %zu outside every field range", line_number,
            index));
      }
      if (fields[f].type == FieldType::kCategorical) {
        cat_row[slot_of[f]] =
            static_cast<int64_t>(index - fields[f].begin);
      } else {
        cont_row[slot_of[f]] = static_cast<float>(value);
      }
    }
    ++raw.num_rows;
    if (options.max_rows > 0 && raw.num_rows >= options.max_rows) break;
  }
  if (raw.num_rows == 0) {
    return Status::Invalid("'" + path + "' contains no data rows");
  }
  return raw;
}

}  // namespace optinter
