#include "data/hash_encoder.h"

#include <algorithm>

#include "common/logging.h"

namespace optinter {

uint64_t ShardStableHash64(uint64_t value, uint64_t salt) {
  // SplitMix64 finalizer over value xor a salt spread by the golden
  // gamma. Pinned by the golden test in hash_encoder_test.cc.
  uint64_t z = value ^ (salt * 0x9E3779B97F4A7C15ULL);
  z += 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

HashedVocab::HashedVocab(const HashEncoderOptions& options)
    : options_(options),
      summary_capacity_(std::max<size_t>(4 * options.hot_values, 64)) {
  CHECK_GT(options_.num_buckets, 0u);
}

void HashedVocab::Observe(uint64_t value) {
  CHECK(!finalized_);
  if (options_.hot_values == 0) return;
  auto it = summary_.find(value);
  if (it != summary_.end()) {
    ++it->second;
    return;
  }
  if (summary_.size() < summary_capacity_) {
    summary_.emplace(value, 1);
    return;
  }
  // Misra-Gries decrement step: no free slot, so every tracked count
  // pays one; zeros are evicted. Heavy hitters (freq > N / capacity)
  // are guaranteed to survive the stream.
  for (auto st = summary_.begin(); st != summary_.end();) {
    if (--st->second == 0) {
      st = summary_.erase(st);
    } else {
      ++st;
    }
  }
}

void HashedVocab::Finalize() {
  CHECK(!finalized_);
  finalized_ = true;
  if (options_.hot_values == 0 || summary_.empty()) {
    summary_.clear();
    return;
  }
  std::vector<std::pair<uint64_t, size_t>> items(summary_.begin(),
                                                 summary_.end());
  summary_.clear();
  std::sort(items.begin(), items.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  const size_t k = std::min(options_.hot_values, items.size());
  hot_ids_.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    hot_ids_.emplace(items[i].first, static_cast<int32_t>(1 + i));
  }
}

int32_t HashedVocab::Encode(uint64_t value) const {
  CHECK(finalized_);
  auto it = hot_ids_.find(value);
  if (it != hot_ids_.end()) return it->second;
  const uint64_t h = ShardStableHash64(value, options_.salt);
  return static_cast<int32_t>(1 + hot_ids_.size() +
                              h % options_.num_buckets);
}

BucketCollisionTracker::BucketCollisionTracker(const HashedVocab& vocab)
    : first_bucket_id_(1 + vocab.num_hot()),
      claimant_(vocab.vocab_size() - first_bucket_id_),
      occupied_(claimant_.size(), 0) {}

void BucketCollisionTracker::Record(int32_t id, uint64_t value,
                                    HashEncodeStats* stats) {
  if (static_cast<size_t>(id) < first_bucket_id_) {
    ++stats->hot_rows;
    return;
  }
  ++stats->hashed_rows;
  const size_t bucket = static_cast<size_t>(id) - first_bucket_id_;
  if (!occupied_[bucket]) {
    occupied_[bucket] = 1;
    claimant_[bucket] = value;
  } else if (claimant_[bucket] != value) {
    ++stats->collision_rows;
  }
}

}  // namespace optinter
