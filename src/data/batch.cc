#include "data/batch.h"

#include <numeric>

namespace optinter {

Splits MakeSplits(size_t num_rows, double train_frac, double val_frac,
                  Rng* rng) {
  CHECK_GT(num_rows, 0u);
  CHECK_GT(train_frac, 0.0);
  CHECK_GE(val_frac, 0.0);
  CHECK_LT(train_frac + val_frac, 1.0 + 1e-12);
  std::vector<size_t> order(num_rows);
  std::iota(order.begin(), order.end(), 0);
  rng->Shuffle(&order);
  const size_t n_train = static_cast<size_t>(num_rows * train_frac);
  const size_t n_val = static_cast<size_t>(num_rows * val_frac);
  // Fail here, at split creation, rather than deep inside TrainModel: with
  // few rows the independent truncations above can floor the train split
  // to zero even though train_frac > 0.
  CHECK_GT(n_train, 0u)
      << "MakeSplits: empty train split (num_rows=" << num_rows
      << ", train_frac=" << train_frac
      << "); increase num_rows or train_frac";
  CHECK_LE(n_train + n_val, num_rows)
      << "MakeSplits: train+val splits exceed num_rows=" << num_rows;
  Splits s;
  s.train.assign(order.begin(), order.begin() + n_train);
  s.val.assign(order.begin() + n_train, order.begin() + n_train + n_val);
  s.test.assign(order.begin() + n_train + n_val, order.end());
  return s;
}

std::vector<size_t> DownsampleNegatives(const EncodedDataset& data,
                                        const std::vector<size_t>& rows,
                                        double keep_rate, Rng* rng) {
  CHECK_GT(keep_rate, 0.0);
  CHECK_LE(keep_rate, 1.0);
  std::vector<size_t> kept;
  kept.reserve(rows.size());
  for (size_t r : rows) {
    if (data.label(r) > 0.5f || rng->Bernoulli(keep_rate)) {
      kept.push_back(r);
    }
  }
  return kept;
}

float RecalibrateProbability(float p, double keep_rate) {
  CHECK_GT(keep_rate, 0.0);
  CHECK_LE(keep_rate, 1.0);
  const double q = static_cast<double>(p);
  return static_cast<float>(q / (q + (1.0 - q) / keep_rate));
}

}  // namespace optinter
