// Sharded fixed-width binary dataset format (DESIGN.md §10).
//
// A shard directory holds one MANIFEST file plus N fixed-width shard
// files ("shard_00000.bin", ...). The manifest is self-describing —
// magic, version, schema (field names/types), per-field vocabulary
// sizes, row counts, and a per-shard payload CRC — and is itself
// CRC-protected, so a reader can validate everything up front (two-pass
// validate-then-read, the same contract as the checkpoint loader).
//
// Shard payloads are row-major fixed-width records:
//
//   [cat ids   : i32 × num_categorical]
//   [cross ids : i32 × num_pairs]        (only when the manifest has
//                                         cross vocabularies)
//   [triple ids: i32 × num_triples]      (only with triple vocabularies)
//   [cont      : f32 × num_continuous]
//   [label     : f32]
//
// i.e. exactly the per-row slice of an EncodedDataset, so shards mmap
// straight into batch buffers with no decode step. Every shard except the
// last holds exactly `rows_per_shard` rows; global row id r lives in
// shard r / rows_per_shard at row r % rows_per_shard.
//
// All integers are little-endian host layout (the substrate's other
// serialized artifacts share this assumption).

#pragma once

#include <array>
#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "data/schema.h"

namespace optinter {

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320) over `len` bytes, chainable
/// through `seed` (pass the previous return value to extend).
uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0);

/// File-format constants. Bump kShardFormatVersion on any layout change.
inline constexpr uint64_t kManifestMagic = 0x314d5346524e4954ULL;  // "TINRFSM1"
inline constexpr uint64_t kShardMagic = 0x3144485352544e49ULL;     // "INTRSHD1"
inline constexpr uint32_t kShardFormatVersion = 1;
/// Tag of the optional frequency-stats manifest section ("FRQSTAT1").
/// Written between the shard table and the manifest CRC when the dataset
/// carries per-field hot-id stats; older manifests simply omit it.
inline constexpr uint64_t kManifestFreqStatsTag = 0x3154415453515246ULL;
/// Byte offset of a shard file's payload (header size); multiple of 4 so
/// mmapped i32/f32 rows stay naturally aligned.
inline constexpr size_t kShardHeaderBytes = 40;

/// Everything about a sharded dataset except the rows: the schema and the
/// fitted vocabulary sizes models need for construction.
struct ShardDatasetMeta {
  DatasetSchema schema;
  std::vector<size_t> cat_vocab_sizes;
  /// Per canonical pair; empty = no cross features in the rows.
  std::vector<size_t> cross_vocab_sizes;
  std::vector<std::array<size_t, 3>> triple_fields;
  std::vector<size_t> triple_vocab_sizes;

  /// Optional per-field frequency-ranked hot-id lists (most frequent
  /// first): EncodedDataset::cat_hot_ids / cross_hot_ids carried through
  /// the manifest so a metadata-only streaming dataset resolves the same
  /// frequency-tiered embedding plans as the in-RAM encode it came from.
  /// Serialized as a tagged optional section; SchemaHash excludes them,
  /// so stats never invalidate existing shard pairings.
  std::vector<std::vector<int32_t>> cat_hot_ids;
  std::vector<std::vector<int32_t>> cross_hot_ids;

  bool has_cross() const { return !cross_vocab_sizes.empty(); }
  size_t num_triples() const { return triple_fields.size(); }

  /// Fixed per-row byte width implied by the schema.
  size_t RowWidthBytes() const;

  /// Deterministic hash over the schema + vocab metadata. Stored in the
  /// manifest and in every shard header; readers recompute and compare so
  /// shards cannot be paired with a foreign manifest.
  uint64_t SchemaHash() const;

  /// Builds the metadata from an in-RAM encoded dataset.
  static ShardDatasetMeta FromDataset(const EncodedDataset& data);

  /// Stamps a metadata-only EncodedDataset (schema + vocab sizes, no row
  /// payload): what StreamingReader::meta() hands to model constructors,
  /// and the template for batch buffers.
  EncodedDataset MetaDataset(size_t num_rows) const;
};

/// Per-shard entry of the manifest.
struct ShardInfo {
  uint64_t row_count = 0;
  uint64_t payload_bytes = 0;
  uint32_t payload_crc = 0;
};

/// Parsed, validated manifest.
struct ShardManifest {
  ShardDatasetMeta meta;
  uint64_t num_rows = 0;
  uint64_t rows_per_shard = 0;
  std::vector<ShardInfo> shards;
};

/// "shard_00042.bin".
std::string ShardFileName(size_t index);
/// `dir`/MANIFEST.
std::string ManifestPath(const std::string& dir);
/// `dir`/ShardFileName(index).
std::string ShardPath(const std::string& dir, size_t index);

/// Streaming writer: append rows one at a time; rows are buffered per
/// shard and flushed with their CRC as each shard fills. Finish() writes
/// the manifest — a directory without a manifest is unreadable by design,
/// so an interrupted encode never yields a half-valid dataset.
class ShardWriter {
 public:
  /// `dir` must exist (the encoder CLI creates it). Fails if a manifest
  /// is already present.
  static Result<std::unique_ptr<ShardWriter>> Open(
      const std::string& dir, ShardDatasetMeta meta, size_t rows_per_shard);

  ~ShardWriter();

  /// Appends one row. `cross`/`triple` may be null when the meta has no
  /// cross/triple vocabularies; `cont` may be null with zero continuous
  /// fields. Pointers reference num_pairs / num_triples / num_continuous
  /// elements respectively.
  Status Append(const int32_t* cat, const int32_t* cross,
                const int32_t* triple, const float* cont, float label);

  /// Attaches frequency-stats metadata (per-field hot-id lists, most
  /// frequent first) to be written as the manifest's optional stats
  /// section. Call before Finish(); each list vector must be empty or
  /// match the field/pair count.
  Status SetFreqStats(std::vector<std::vector<int32_t>> cat_hot_ids,
                      std::vector<std::vector<int32_t>> cross_hot_ids);

  /// Flushes the tail shard and writes the manifest. Must be called
  /// exactly once; no Append after.
  Status Finish();

  size_t rows_written() const { return rows_written_; }

 private:
  ShardWriter(std::string dir, ShardDatasetMeta meta, size_t rows_per_shard);

  Status FlushShard();

  std::string dir_;
  ShardDatasetMeta meta_;
  size_t rows_per_shard_;
  size_t row_width_;
  uint64_t schema_hash_;
  std::vector<uint8_t> buffer_;  // current shard payload
  size_t buffered_rows_ = 0;
  size_t rows_written_ = 0;
  std::vector<ShardInfo> shards_;
  bool finished_ = false;
};

/// One-call convenience: writes an in-RAM encoded dataset (including any
/// built cross/triple features) as a shard directory.
Status WriteShardedDataset(const EncodedDataset& data, const std::string& dir,
                           size_t rows_per_shard);

/// Reads + fully validates a manifest: magic, version, structural sanity,
/// manifest CRC, recomputed schema hash, and row-count consistency.
/// Error messages name the file and the failing field.
Result<ShardManifest> ReadShardManifest(const std::string& dir);

}  // namespace optinter
