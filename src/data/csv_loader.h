// CSV → RawDataset loader, the bring-your-own-data entry point.
//
// The file must have a header row; schema fields are matched to columns
// by name. Categorical cells are mapped to stable 64-bit hashes of their
// string value (the downstream Vocab assigns dense ids and handles
// OOV/min-count exactly as for synthetic data); continuous cells are
// parsed as floats. Labels accept "0"/"1" or any numeric value
// (> 0.5 → positive).

#pragma once

#include <string>

#include "common/status.h"
#include "data/dataset.h"

namespace optinter {

/// Options for LoadCsvDataset.
struct CsvOptions {
  char delimiter = ',';
  /// Header name of the label column.
  std::string label_column = "label";
  /// Treat empty categorical cells as this sentinel value.
  std::string missing_token = "__missing__";
  /// Value used when a continuous cell is empty or unparseable.
  float missing_value = 0.0f;
  /// Maximum rows to read (0 = all).
  size_t max_rows = 0;
};

/// Stable 64-bit FNV-1a hash used for categorical string values; exposed
/// for tests.
uint64_t HashCategorical(std::string_view value);

/// Loads rows from `path` into a RawDataset laid out per `schema`.
/// Columns present in the file but absent from the schema are ignored.
Result<RawDataset> LoadCsvDataset(const std::string& path,
                                  const DatasetSchema& schema,
                                  const CsvOptions& options = {});

}  // namespace optinter
