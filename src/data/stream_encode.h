// Out-of-core encoding: RowSource -> fitted vocabularies -> shard dir.
//
// The in-RAM pipeline (EncodeDataset + BuildCrossFeatures) needs the whole
// RawDataset resident. StreamEncodeToShards only ever holds one row plus
// the fitting state: it makes multiple sequential passes over a restartable
// RowSource (fit categorical vocabs + continuous min-max on the fit
// prefix; optionally fit cross vocabs on the encoded prefix; then encode
// and append every row to a ShardWriter).
//
// Exact mode reproduces EncodeDataset bit-for-bit — same Vocab semantics
// (min-count thresholding, sorted dense ids), same float min-max
// normalization — when its fit rows are the same prefix, which the
// round-trip test in shard_format_test.cc pins. Memory is O(distinct
// values), so it suits bounded vocabularies.
//
// Hashed mode (`hashed = true`) bounds memory for unbounded vocabularies
// with frequency-capped hashing (hash_encoder.h): the top `hash_hot_values`
// values per field get collision-free ids, the tail shares
// `hash_buckets` slots. Collision statistics are accumulated per encode
// and published to the obs counters encode.hash_rows /
// encode.hash_hot_rows / encode.hash_collision_rows, so the run report
// shows how much signal the trick destroyed.
//
// Fitting uses the stream PREFIX (first fit_fraction of rows) rather than
// a shuffled sample: the streaming trainer splits train/val/test
// contiguously in stream order, so the prefix is exactly the training
// split and unseen values in val/test fall into OOV, as in the in-RAM
// pipeline.

#pragma once

#include <cstdint>
#include <string>

#include "common/status.h"
#include "data/encoder.h"
#include "data/hash_encoder.h"
#include "data/schema.h"

namespace optinter {

/// A restartable, sequential producer of raw rows. Implementations:
/// MaterializedRowSource (below) over an in-RAM RawDataset, and
/// SynthRowSource (synth/stream_source.h) which regenerates rows from the
/// generator's RNG stream without materializing them.
class RowSource {
 public:
  virtual ~RowSource() = default;

  virtual const DatasetSchema& schema() const = 0;
  virtual size_t num_rows() const = 0;

  /// Rewinds to row 0. Rows must replay identically across passes.
  virtual Status Restart() = 0;

  /// Produces the next row: `cat` receives num_categorical() raw values,
  /// `cont` num_continuous() raw values, `label` the 0/1 label.
  virtual Status NextRow(int64_t* cat, float* cont, float* label) = 0;
};

/// RowSource view of a materialized RawDataset (CSV / libsvm loads).
class MaterializedRowSource : public RowSource {
 public:
  /// `raw` must outlive the source.
  explicit MaterializedRowSource(const RawDataset* raw) : raw_(raw) {}

  const DatasetSchema& schema() const override { return raw_->schema; }
  size_t num_rows() const override { return raw_->num_rows; }
  Status Restart() override {
    next_ = 0;
    return Status::OK();
  }
  Status NextRow(int64_t* cat, float* cont, float* label) override;

 private:
  const RawDataset* raw_;
  size_t next_ = 0;
};

struct StreamEncodeOptions {
  /// Exact-mode min-count thresholds (mirrors the in-RAM pipeline).
  EncoderOptions encoder;
  /// Prefix fraction of the stream used for fitting; must match the
  /// training split fraction used later.
  double fit_fraction = 0.7;
  /// Also fit + materialize cross-product features (one extra fit pass).
  bool build_cross = false;
  size_t rows_per_shard = 1 << 17;

  /// Hash-trick mode for unbounded vocabularies.
  bool hashed = false;
  /// Per-field dedicated ids for the most frequent values (hashed mode).
  size_t hash_hot_values = 1024;
  /// Shared tail buckets per field (hashed mode).
  size_t hash_buckets = 1 << 16;
};

/// What the encode did; hash stats are zero in exact mode.
struct StreamEncodeStats {
  size_t rows = 0;
  size_t fit_rows = 0;
  HashEncodeStats cat_hash;
  HashEncodeStats cross_hash;
};

/// Encodes `source` into shard directory `dir` (which must exist and hold
/// no dataset). Makes 2 sequential passes (3 with build_cross).
Result<StreamEncodeStats> StreamEncodeToShards(
    RowSource* source, const std::string& dir,
    const StreamEncodeOptions& options);

}  // namespace optinter
