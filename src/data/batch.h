// Train/val/test splits and shuffled mini-batch iteration.

#pragma once

#include <vector>

#include "common/rng.h"
#include "data/dataset.h"

namespace optinter {

/// Row-index partition of a dataset.
struct Splits {
  std::vector<size_t> train;
  std::vector<size_t> val;
  std::vector<size_t> test;
};

/// Randomly shuffles row ids and splits them by the given fractions
/// (paper: 80% train+val / 20% test; we carve val out of the 80%).
/// CHECK-fails if the truncated train split would be empty (possible for
/// small num_rows even with train_frac > 0).
Splits MakeSplits(size_t num_rows, double train_frac, double val_frac,
                  Rng* rng);

/// A view over a contiguous run of (shuffled) row indices.
struct Batch {
  const EncodedDataset* data = nullptr;
  const size_t* rows = nullptr;
  size_t size = 0;

  size_t row(size_t k) const { return rows[k]; }
  float label(size_t k) const { return data->label(rows[k]); }
};

/// Keeps every positive row and a `keep_rate` fraction of negatives —
/// the standard CTR training trick for heavily imbalanced logs (paper's
/// iPinYou regime). Predicted probabilities on downsampled-trained
/// models must be recalibrated with RecalibrateProbability.
std::vector<size_t> DownsampleNegatives(const EncodedDataset& data,
                                        const std::vector<size_t>& rows,
                                        double keep_rate, Rng* rng);

/// Undoes negative downsampling in probability space:
/// p' = p / (p + (1 - p) / keep_rate).
float RecalibrateProbability(float p, double keep_rate);

/// Abstract mini-batch producer. Batcher (below, in-RAM) and
/// StreamingBatcher (stream_reader.h, out-of-core) implement it; the
/// pipeline executor and trainers consume it.
///
/// Contract: StartEpoch() begins an epoch; Next() yields batches until an
/// empty one (size == 0) ends the epoch. The most recent batch — its
/// row-id array and the dataset payload it points into — stays valid
/// until the following Next()/StartEpoch() call on the same source, after
/// which its backing buffers may be reused. (The pipeline executor
/// honours this: a batch's PrepareBatch copies everything it needs and is
/// always joined before the executor asks for the next batch.)
class BatchSource {
 public:
  virtual ~BatchSource() = default;

  virtual void StartEpoch() = 0;
  /// Returns the next batch; Batch.size == 0 signals epoch end.
  virtual Batch Next() = 0;
  /// Rows per full epoch.
  virtual size_t num_rows() const = 0;
};

/// Yields shuffled mini-batches over a fixed index set, reshuffling each
/// epoch.
class Batcher : public BatchSource {
 public:
  Batcher(const EncodedDataset* data, std::vector<size_t> indices,
          size_t batch_size, uint64_t seed)
      : data_(data), indices_(std::move(indices)), batch_size_(batch_size),
        rng_(seed) {
    CHECK_GT(batch_size_, 0u);
  }

  /// Starts a new epoch (reshuffles).
  void StartEpoch() override {
    rng_.Shuffle(&indices_);
    cursor_ = 0;
  }

  /// Returns the next batch; Batch.size == 0 signals epoch end.
  Batch Next() override {
    Batch b;
    b.data = data_;
    if (cursor_ >= indices_.size()) return b;
    b.rows = indices_.data() + cursor_;
    b.size = std::min(batch_size_, indices_.size() - cursor_);
    cursor_ += b.size;
    return b;
  }

  size_t num_rows() const override { return indices_.size(); }

 private:
  const EncodedDataset* data_;
  std::vector<size_t> indices_;
  size_t batch_size_;
  Rng rng_;
  size_t cursor_ = 0;
};

}  // namespace optinter
