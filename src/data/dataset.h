// Raw and encoded dataset containers.
//
// RawDataset holds generator/loader output: per-row raw categorical values
// (64-bit, in each field's natural domain), raw continuous values, and
// labels. EncodedDataset is what models consume: dense per-field ids
// (0 = OOV), min-max-normalized continuous values, and — once
// BuildCrossFeatures has run — encoded cross-product transformed feature
// ids for every categorical field pair (paper Eq. 4 / §II-B1).

#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/logging.h"
#include "data/schema.h"

namespace optinter {

/// Un-encoded dataset as produced by a generator or file loader.
struct RawDataset {
  DatasetSchema schema;
  size_t num_rows = 0;
  /// Row-major [num_rows × num_categorical] raw values.
  std::vector<int64_t> cat_values;
  /// Row-major [num_rows × num_continuous] raw values.
  std::vector<float> cont_values;
  std::vector<float> labels;

  int64_t cat(size_t row, size_t cat_field) const {
    return cat_values[row * schema.num_categorical() + cat_field];
  }
  float cont(size_t row, size_t cont_field) const {
    return cont_values[row * schema.num_continuous() + cont_field];
  }
};

/// Fully encoded dataset ready for model consumption.
class EncodedDataset {
 public:
  DatasetSchema schema;
  size_t num_rows = 0;

  /// Row-major [num_rows × num_categorical] encoded ids (0 = OOV).
  std::vector<int32_t> cat_ids;
  /// Vocab size (including OOV) per categorical field.
  std::vector<size_t> cat_vocab_sizes;

  /// Row-major [num_rows × num_continuous], normalized to [0, 1].
  std::vector<float> cont_values;

  std::vector<float> labels;

  /// Row-major [num_rows × num_pairs] encoded cross ids (0 = OOV).
  /// Empty until the cross transform has been applied.
  std::vector<int32_t> cross_ids;
  /// Vocab size (including OOV) per pair, in canonical pair order.
  std::vector<size_t> cross_vocab_sizes;

  /// Third-order extension (paper §II-B1: "our methods could easily be
  /// extended to higher-order"): cross-product transformed features for a
  /// chosen set of categorical field triples. Row-major
  /// [num_rows × triple_fields.size()].
  std::vector<std::array<size_t, 3>> triple_fields;
  std::vector<int32_t> triple_ids;
  std::vector<size_t> triple_vocab_sizes;

  /// Optional per-field frequency-ranked id lists (most frequent first),
  /// attached by the encoder: exact ranked counts over the fit rows for
  /// in-RAM encoding, Misra-Gries streaming stats carried through the
  /// shard MANIFEST. Tier plans for frequency-tiered embedding backends
  /// read ONLY this metadata (never the rows), so a model built from a
  /// metadata-only streaming dataset resolves the same plan as one built
  /// from the same data in RAM. Empty (or shorter than the field count)
  /// when no stats exist.
  std::vector<std::vector<int32_t>> cat_hot_ids;
  std::vector<std::vector<int32_t>> cross_hot_ids;

  size_t num_categorical() const { return schema.num_categorical(); }
  size_t num_continuous() const { return schema.num_continuous(); }
  size_t num_pairs() const { return schema.num_pairs(); }
  bool has_cross() const { return !cross_ids.empty(); }
  size_t num_triples() const { return triple_fields.size(); }
  bool has_triples() const { return !triple_ids.empty(); }

  int32_t cat(size_t row, size_t cat_field) const {
    return cat_ids[row * num_categorical() + cat_field];
  }
  float cont(size_t row, size_t cont_field) const {
    return cont_values[row * num_continuous() + cont_field];
  }
  int32_t cross(size_t row, size_t pair) const {
    return cross_ids[row * num_pairs() + pair];
  }
  int32_t triple(size_t row, size_t t) const {
    return triple_ids[row * num_triples() + t];
  }
  float label(size_t row) const { return labels[row]; }

  /// Total distinct values across original categorical fields
  /// (Table II "#orig value").
  size_t TotalOrigVocab() const;
  /// Total distinct values across cross-product transformed features
  /// (Table II "#cross value").
  size_t TotalCrossVocab() const;
  /// Fraction of positive labels (Table II "pos ratio").
  double PositiveRatio() const;
};

/// Exact frequency ranking of one id column of a row-major [N × stride]
/// id matrix: the ids of column `column` sorted by (count desc, id asc),
/// zero-count ids omitted, truncated to `k`. Counts only the rows in
/// `rows` when non-empty (stat fitting on train rows), all rows
/// otherwise. O(vocab) memory — used by the encoder to attach
/// frequency-stats metadata (EncodedDataset::cat_hot_ids).
std::vector<int32_t> TopIdsByFrequency(const std::vector<int32_t>& ids,
                                       size_t stride, size_t column,
                                       size_t vocab, size_t k,
                                       const std::vector<size_t>& rows = {});

/// The ranking step of TopIdsByFrequency on a prebuilt per-id count
/// array: ids sorted by (count desc, id asc), zero-count ids omitted,
/// truncated to `k`. The streaming encoder accumulates counts on the fly
/// and ranks with this, so in-RAM and streamed encodes of the same rows
/// produce identical stats.
std::vector<int32_t> RankTopIdsFromCounts(const std::vector<size_t>& counts,
                                          size_t k);

}  // namespace optinter
