#include "data/dataset.h"

namespace optinter {

size_t EncodedDataset::TotalOrigVocab() const {
  size_t total = 0;
  for (size_t v : cat_vocab_sizes) total += v;
  return total;
}

size_t EncodedDataset::TotalCrossVocab() const {
  size_t total = 0;
  for (size_t v : cross_vocab_sizes) total += v;
  return total;
}

double EncodedDataset::PositiveRatio() const {
  if (labels.empty()) return 0.0;
  double pos = 0.0;
  for (float y : labels) pos += y;
  return pos / static_cast<double>(labels.size());
}

}  // namespace optinter
