#include "data/dataset.h"

#include <algorithm>

namespace optinter {

std::vector<int32_t> TopIdsByFrequency(const std::vector<int32_t>& ids,
                                       size_t stride, size_t column,
                                       size_t vocab, size_t k,
                                       const std::vector<size_t>& rows) {
  std::vector<size_t> counts(vocab, 0);
  auto count = [&](size_t i) {
    const int32_t id = ids[i];
    if (id >= 0 && static_cast<size_t>(id) < vocab) {
      ++counts[static_cast<size_t>(id)];
    }
  };
  if (rows.empty()) {
    for (size_t i = column; i < ids.size(); i += stride) count(i);
  } else {
    for (size_t r : rows) count(r * stride + column);
  }
  return RankTopIdsFromCounts(counts, k);
}

std::vector<int32_t> RankTopIdsFromCounts(const std::vector<size_t>& counts,
                                          size_t k) {
  std::vector<int32_t> ranked;
  ranked.reserve(counts.size());
  for (size_t id = 0; id < counts.size(); ++id) {
    if (counts[id] > 0) ranked.push_back(static_cast<int32_t>(id));
  }
  std::sort(ranked.begin(), ranked.end(), [&](int32_t a, int32_t b) {
    const size_t ca = counts[static_cast<size_t>(a)];
    const size_t cb = counts[static_cast<size_t>(b)];
    if (ca != cb) return ca > cb;
    return a < b;
  });
  if (ranked.size() > k) ranked.resize(k);
  return ranked;
}

size_t EncodedDataset::TotalOrigVocab() const {
  size_t total = 0;
  for (size_t v : cat_vocab_sizes) total += v;
  return total;
}

size_t EncodedDataset::TotalCrossVocab() const {
  size_t total = 0;
  for (size_t v : cross_vocab_sizes) total += v;
  return total;
}

double EncodedDataset::PositiveRatio() const {
  if (labels.empty()) return 0.0;
  double pos = 0.0;
  for (float y : labels) pos += y;
  return pos / static_cast<double>(labels.size());
}

}  // namespace optinter
