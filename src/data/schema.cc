#include "data/schema.h"

namespace optinter {

std::vector<std::pair<size_t, size_t>> EnumeratePairs(size_t num_cat) {
  std::vector<std::pair<size_t, size_t>> pairs;
  pairs.reserve(num_cat * (num_cat - 1) / 2);
  for (size_t i = 0; i < num_cat; ++i) {
    for (size_t j = i + 1; j < num_cat; ++j) {
      pairs.emplace_back(i, j);
    }
  }
  return pairs;
}

size_t PairIndex(size_t i, size_t j, size_t num_cat) {
  CHECK_LT(i, j);
  CHECK_LT(j, num_cat);
  // Offset of row i in the upper triangle plus column offset.
  // Row i contributes (num_cat - 1 - i) entries.
  size_t offset = 0;
  for (size_t r = 0; r < i; ++r) offset += num_cat - 1 - r;
  return offset + (j - i - 1);
}

std::vector<std::array<size_t, 3>> EnumerateTriples(size_t num_cat) {
  std::vector<std::array<size_t, 3>> triples;
  for (size_t i = 0; i < num_cat; ++i) {
    for (size_t j = i + 1; j < num_cat; ++j) {
      for (size_t k = j + 1; k < num_cat; ++k) {
        triples.push_back({i, j, k});
      }
    }
  }
  return triples;
}

}  // namespace optinter
