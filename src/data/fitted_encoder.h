// Stateful, serializable encoder: fit once on training data, transform
// any number of datasets (including single serving batches) with the
// identical vocabulary / normalization / cross-product state.
//
// EncodeDataset + BuildCrossFeatures (encoder.h) remain the one-shot
// experiment path; FittedEncoder is the deployment path — its state can
// be saved next to a model checkpoint and reloaded in a serving process
// so that ids line up with the embedding tables.

#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "data/encoder.h"
#include "data/vocab.h"

namespace optinter {

/// Fitted encoding state (categorical vocabularies, continuous min/max,
/// optional cross-product vocabularies).
class FittedEncoder {
 public:
  /// Min/max of one continuous field, fitted on training rows.
  struct ContStats {
    float min = 0.0f;
    float max = 1.0f;
  };

  /// Fits on `fit_rows` of `raw`. With `with_cross`, also fits the
  /// cross-product vocabularies (on the encoded fit rows).
  static Result<FittedEncoder> Fit(const RawDataset& raw,
                                   const std::vector<size_t>& fit_rows,
                                   const EncoderOptions& options,
                                   bool with_cross = true);

  /// Encodes a dataset with the fitted state; unseen values map to OOV.
  /// The dataset's schema must match the fitted schema (field names and
  /// types, in order). Cross features are produced iff they were fitted.
  Result<EncodedDataset> Transform(const RawDataset& raw) const;

  /// Persists the fitted state (binary).
  Status Save(const std::string& path) const;
  /// Restores a fitted encoder saved by Save().
  static Result<FittedEncoder> Load(const std::string& path);

  const DatasetSchema& schema() const { return schema_; }
  bool has_cross() const { return !cross_vocabs_.empty(); }
  size_t cat_vocab_size(size_t f) const { return cat_vocabs_[f].size(); }

 private:
  DatasetSchema schema_;
  std::vector<Vocab> cat_vocabs_;
  std::vector<ContStats> cont_stats_;
  std::vector<Vocab> cross_vocabs_;  // canonical pair order; may be empty
};

}  // namespace optinter
