#include "data/stream_encode.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "common/string_util.h"
#include "data/dataset.h"
#include "data/shard_format.h"
#include "data/vocab.h"
#include "obs/registry.h"

namespace optinter {

Status MaterializedRowSource::NextRow(int64_t* cat, float* cont,
                                      float* label) {
  if (next_ >= raw_->num_rows) {
    return Status::OutOfRange("row source exhausted");
  }
  const size_t num_cat = raw_->schema.num_categorical();
  const size_t num_cont = raw_->schema.num_continuous();
  std::memcpy(cat, raw_->cat_values.data() + next_ * num_cat,
              num_cat * sizeof(int64_t));
  if (num_cont > 0) {
    std::memcpy(cont, raw_->cont_values.data() + next_ * num_cont,
                num_cont * sizeof(float));
  }
  *label = raw_->labels[next_];
  ++next_;
  return Status::OK();
}

namespace {

int64_t CrossKey(int32_t a, int32_t b) {
  // Same key as BuildCrossFeatures: encoded pair ids packed into 64 bits.
  return (static_cast<int64_t>(a) << 32) |
         static_cast<int64_t>(static_cast<uint32_t>(b));
}

}  // namespace

Result<StreamEncodeStats> StreamEncodeToShards(
    RowSource* source, const std::string& dir,
    const StreamEncodeOptions& options) {
  CHECK(source != nullptr);
  const DatasetSchema& schema = source->schema();
  const size_t num_cat = schema.num_categorical();
  const size_t num_cont = schema.num_continuous();
  const size_t num_rows = source->num_rows();
  if (num_cat == 0) {
    return Status::Invalid("stream encoding needs categorical fields");
  }
  if (num_rows == 0) {
    return Status::Invalid("row source has no rows");
  }
  if (options.fit_fraction <= 0.0 || options.fit_fraction > 1.0) {
    return Status::Invalid(StrFormat(
        "fit_fraction %.3f outside (0, 1]", options.fit_fraction));
  }
  if (options.build_cross && num_cat < 2) {
    return Status::Invalid("need at least two categorical fields to cross");
  }
  const size_t fit_count = std::max<size_t>(
      1, static_cast<size_t>(static_cast<double>(num_rows) *
                             options.fit_fraction));

  StreamEncodeStats stats;
  stats.rows = num_rows;
  stats.fit_rows = fit_count;

  std::vector<int64_t> cat_row(num_cat);
  std::vector<float> cont_row(std::max<size_t>(num_cont, 1));
  float label = 0.0f;

  // --- Pass 1 (fit prefix): categorical vocabularies + continuous min-max.
  std::vector<Vocab> vocabs;
  std::vector<HashedVocab> hashed;
  if (options.hashed) {
    hashed.reserve(num_cat);
    for (size_t f = 0; f < num_cat; ++f) {
      HashEncoderOptions ho;
      ho.hot_values = options.hash_hot_values;
      ho.num_buckets = options.hash_buckets;
      ho.salt = f;  // per-field salt decorrelates identical raw values
      hashed.emplace_back(ho);
    }
  } else {
    vocabs.resize(num_cat);
  }
  std::vector<float> mins(num_cont, std::numeric_limits<float>::max());
  std::vector<float> maxs(num_cont, std::numeric_limits<float>::lowest());

  OPTINTER_RETURN_NOT_OK(source->Restart());
  for (size_t r = 0; r < fit_count; ++r) {
    OPTINTER_RETURN_NOT_OK(
        source->NextRow(cat_row.data(), cont_row.data(), &label));
    for (size_t f = 0; f < num_cat; ++f) {
      if (options.hashed) {
        hashed[f].Observe(static_cast<uint64_t>(cat_row[f]));
      } else {
        vocabs[f].Add(cat_row[f]);
      }
    }
    for (size_t f = 0; f < num_cont; ++f) {
      mins[f] = std::min(mins[f], cont_row[f]);
      maxs[f] = std::max(maxs[f], cont_row[f]);
    }
  }

  ShardDatasetMeta meta;
  meta.schema = schema;
  meta.cat_vocab_sizes.resize(num_cat);
  for (size_t f = 0; f < num_cat; ++f) {
    if (options.hashed) {
      hashed[f].Finalize();
      meta.cat_vocab_sizes[f] = hashed[f].vocab_size();
    } else {
      vocabs[f].Finalize(options.encoder.cat_min_count);
      meta.cat_vocab_sizes[f] = vocabs[f].size();
    }
  }
  auto encode_cat = [&](size_t f, int64_t value) -> int32_t {
    return options.hashed
               ? hashed[f].Encode(static_cast<uint64_t>(value))
               : vocabs[f].Encode(value);
  };

  // --- Pass 2 (fit prefix, optional): cross vocabularies over encoded ids.
  const auto pairs = EnumeratePairs(num_cat);
  std::vector<Vocab> cross_vocabs;
  std::vector<HashedVocab> cross_hashed;
  std::vector<int32_t> ids_row(num_cat);
  if (options.build_cross) {
    if (options.hashed) {
      cross_hashed.reserve(pairs.size());
      for (size_t p = 0; p < pairs.size(); ++p) {
        HashEncoderOptions ho;
        ho.hot_values = options.hash_hot_values;
        ho.num_buckets = options.hash_buckets;
        ho.salt = num_cat + p;
        cross_hashed.emplace_back(ho);
      }
    } else {
      cross_vocabs.resize(pairs.size());
    }
    OPTINTER_RETURN_NOT_OK(source->Restart());
    for (size_t r = 0; r < fit_count; ++r) {
      OPTINTER_RETURN_NOT_OK(
          source->NextRow(cat_row.data(), cont_row.data(), &label));
      for (size_t f = 0; f < num_cat; ++f) {
        ids_row[f] = encode_cat(f, cat_row[f]);
      }
      for (size_t p = 0; p < pairs.size(); ++p) {
        const int64_t key = CrossKey(ids_row[pairs[p].first],
                                     ids_row[pairs[p].second]);
        if (options.hashed) {
          cross_hashed[p].Observe(static_cast<uint64_t>(key));
        } else {
          cross_vocabs[p].Add(key);
        }
      }
    }
    meta.cross_vocab_sizes.resize(pairs.size());
    for (size_t p = 0; p < pairs.size(); ++p) {
      if (options.hashed) {
        cross_hashed[p].Finalize();
        meta.cross_vocab_sizes[p] = cross_hashed[p].vocab_size();
      } else {
        cross_vocabs[p].Finalize(options.encoder.cross_min_count);
        meta.cross_vocab_sizes[p] = cross_vocabs[p].size();
      }
    }
  }

  // Frequency-stats metadata for tiered embedding backends. Hashed
  // vocabularies place the Misra-Gries top-K at ids 1..K (most frequent
  // first), so their hot lists need no counting; exact vocabularies
  // count encoded ids over the fit prefix during the final pass and rank
  // afterwards — the same counts EncodeDataset's in-RAM stats rank, so
  // both paths attach identical metadata for the same rows.
  const size_t freq_topk = options.encoder.freq_stats_topk;
  const bool count_freq = freq_topk > 0 && !options.hashed;
  std::vector<std::vector<size_t>> cat_counts;
  std::vector<std::vector<size_t>> cross_counts;
  if (count_freq) {
    cat_counts.resize(num_cat);
    for (size_t f = 0; f < num_cat; ++f) {
      cat_counts[f].assign(meta.cat_vocab_sizes[f], 0);
    }
    cross_counts.resize(meta.cross_vocab_sizes.size());
    for (size_t p = 0; p < cross_counts.size(); ++p) {
      cross_counts[p].assign(meta.cross_vocab_sizes[p], 0);
    }
  }

  // --- Final pass (all rows): encode + write shards, tracking collisions.
  OPTINTER_ASSIGN_OR_RETURN(
      auto writer, ShardWriter::Open(dir, meta, options.rows_per_shard));
  std::vector<BucketCollisionTracker> cat_trackers;
  std::vector<BucketCollisionTracker> cross_trackers;
  if (options.hashed) {
    cat_trackers.reserve(num_cat);
    for (size_t f = 0; f < num_cat; ++f) cat_trackers.emplace_back(hashed[f]);
    cross_trackers.reserve(cross_hashed.size());
    for (const auto& hv : cross_hashed) cross_trackers.emplace_back(hv);
  }
  std::vector<int32_t> cross_row(options.build_cross ? pairs.size() : 0);
  std::vector<float> norm_row(std::max<size_t>(num_cont, 1));
  OPTINTER_RETURN_NOT_OK(source->Restart());
  for (size_t r = 0; r < num_rows; ++r) {
    OPTINTER_RETURN_NOT_OK(
        source->NextRow(cat_row.data(), cont_row.data(), &label));
    for (size_t f = 0; f < num_cat; ++f) {
      ids_row[f] = encode_cat(f, cat_row[f]);
      if (options.hashed) {
        cat_trackers[f].Record(ids_row[f],
                               static_cast<uint64_t>(cat_row[f]),
                               &stats.cat_hash);
      }
    }
    for (size_t p = 0; p < cross_row.size(); ++p) {
      const int64_t key =
          CrossKey(ids_row[pairs[p].first], ids_row[pairs[p].second]);
      if (options.hashed) {
        cross_row[p] = cross_hashed[p].Encode(static_cast<uint64_t>(key));
        cross_trackers[p].Record(cross_row[p], static_cast<uint64_t>(key),
                                 &stats.cross_hash);
      } else {
        cross_row[p] = cross_vocabs[p].Encode(key);
      }
    }
    if (count_freq && r < fit_count) {
      for (size_t f = 0; f < num_cat; ++f) {
        ++cat_counts[f][static_cast<size_t>(ids_row[f])];
      }
      for (size_t p = 0; p < cross_row.size(); ++p) {
        ++cross_counts[p][static_cast<size_t>(cross_row[p])];
      }
    }
    for (size_t f = 0; f < num_cont; ++f) {
      // Same float math as EncodeDataset, for bit parity with the in-RAM
      // pipeline.
      const float range = maxs[f] - mins[f];
      const float v =
          range > 0.0f ? (cont_row[f] - mins[f]) / range : 0.0f;
      norm_row[f] = std::clamp(v, 0.0f, 1.0f);
    }
    OPTINTER_RETURN_NOT_OK(writer->Append(
        ids_row.data(), options.build_cross ? cross_row.data() : nullptr,
        nullptr, num_cont > 0 ? norm_row.data() : nullptr, label));
  }
  if (freq_topk > 0) {
    std::vector<std::vector<int32_t>> cat_hot(num_cat);
    std::vector<std::vector<int32_t>> cross_hot(meta.cross_vocab_sizes.size());
    if (options.hashed) {
      auto mg_hot = [&](const HashedVocab& hv) {
        std::vector<int32_t> ids(std::min(freq_topk, hv.num_hot()));
        for (size_t i = 0; i < ids.size(); ++i) {
          ids[i] = static_cast<int32_t>(i + 1);
        }
        return ids;
      };
      for (size_t f = 0; f < num_cat; ++f) cat_hot[f] = mg_hot(hashed[f]);
      for (size_t p = 0; p < cross_hot.size(); ++p) {
        cross_hot[p] = mg_hot(cross_hashed[p]);
      }
    } else {
      for (size_t f = 0; f < num_cat; ++f) {
        cat_hot[f] = RankTopIdsFromCounts(cat_counts[f], freq_topk);
      }
      for (size_t p = 0; p < cross_hot.size(); ++p) {
        cross_hot[p] = RankTopIdsFromCounts(cross_counts[p], freq_topk);
      }
    }
    OPTINTER_RETURN_NOT_OK(
        writer->SetFreqStats(std::move(cat_hot), std::move(cross_hot)));
  }
  OPTINTER_RETURN_NOT_OK(writer->Finish());

  if (options.hashed) {
    auto& reg = obs::MetricsRegistry::Global();
    reg.GetCounter("encode.hash_rows")
        ->Add(stats.cat_hash.hashed_rows + stats.cross_hash.hashed_rows);
    reg.GetCounter("encode.hash_hot_rows")
        ->Add(stats.cat_hash.hot_rows + stats.cross_hash.hot_rows);
    reg.GetCounter("encode.hash_collision_rows")
        ->Add(stats.cat_hash.collision_rows +
              stats.cross_hash.collision_rows);
  }
  return stats;
}

}  // namespace optinter
