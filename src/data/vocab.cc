#include "data/vocab.h"

#include <algorithm>

#include "common/logging.h"

namespace optinter {

void Vocab::Finalize(size_t min_count) {
  CHECK(!finalized_);
  // Deterministic id assignment: sort surviving values.
  std::vector<int64_t> kept;
  kept.reserve(counts_.size());
  for (const auto& [value, count] : counts_) {
    if (count >= min_count) kept.push_back(value);
  }
  std::sort(kept.begin(), kept.end());
  ids_.reserve(kept.size());
  for (int64_t v : kept) {
    ids_.emplace(v, static_cast<int32_t>(next_id_++));
  }
  counts_.clear();
  finalized_ = true;
}

std::vector<std::pair<int64_t, int32_t>> Vocab::Items() const {
  CHECK(finalized_);
  std::vector<std::pair<int64_t, int32_t>> items(ids_.begin(), ids_.end());
  std::sort(items.begin(), items.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  return items;
}

Vocab Vocab::FromItems(
    const std::vector<std::pair<int64_t, int32_t>>& items) {
  Vocab v;
  for (const auto& [value, id] : items) {
    CHECK_EQ(static_cast<size_t>(id), v.next_id_);
    v.ids_.emplace(value, id);
    ++v.next_id_;
  }
  v.finalized_ = true;
  return v;
}

int32_t Vocab::Encode(int64_t value) const {
  CHECK(finalized_);
  auto it = ids_.find(value);
  return it == ids_.end() ? kOovId : it->second;
}

}  // namespace optinter
