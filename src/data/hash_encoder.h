// Hash-trick categorical encoding for unbounded vocabularies.
//
// The exact Vocab path (vocab.h) needs every distinct value in memory,
// which breaks down on unbounded id spaces (ad ids, device ids). The
// hashed path bounds the table instead:
//
//   * a frequency-capped "hot set": the top-K most frequent values get
//     dedicated collision-free ids (tracked online with Misra-Gries, so
//     one streaming pass suffices);
//   * everything else hashes into `num_buckets` shared slots.
//
// Encoded id layout: 0 = reserved OOV (never produced, kept so hashed
// vocabularies compose with the exact path's 0-is-OOV convention),
// 1..K = hot values, K+1..K+B = hash buckets. vocab_size() = 1 + K + B.
//
// Collisions are observable, not silent: EncodeWithStats counts rows
// whose bucket was first claimed by a *different* value, and the
// streaming encoder surfaces the totals through src/obs and the run
// report. The expected collision mass is the classic balls-in-bins bound
// — V distinct tail values into B buckets leaves B(1 - (1 - 1/B)^V)
// occupied — which the statistical test checks against.

#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace optinter {

/// Deterministic 64-bit mix of (value, salt); SplitMix64 finalizer.
/// Stability matters: encoded datasets persist across builds, so this
/// hash is pinned by a golden test and must never change.
uint64_t ShardStableHash64(uint64_t value, uint64_t salt);

struct HashEncoderOptions {
  /// Dedicated ids for the most frequent values. 0 disables the hot set.
  size_t hot_values = 0;
  /// Shared bucket count for the hashed tail. Must be positive.
  size_t num_buckets = 1 << 16;
  /// Per-field salt so identical raw values in different fields land in
  /// uncorrelated buckets.
  uint64_t salt = 0;
};

/// Per-field accumulated collision statistics from EncodeWithStats.
struct HashEncodeStats {
  /// Rows routed through a shared bucket (not hot).
  size_t hashed_rows = 0;
  /// Hashed rows whose bucket was first claimed by a different value.
  size_t collision_rows = 0;
  /// Rows that hit the hot set.
  size_t hot_rows = 0;

  void Merge(const HashEncodeStats& other) {
    hashed_rows += other.hashed_rows;
    collision_rows += other.collision_rows;
    hot_rows += other.hot_rows;
  }
};

/// One categorical field's hashed vocabulary. Build in two phases:
/// stream values through Observe(), then Finalize() to freeze the hot
/// set, then Encode() — same shape as Vocab's Add/Finalize/Encode.
class HashedVocab {
 public:
  explicit HashedVocab(const HashEncoderOptions& options);

  /// Frequency-tracking pass (Misra-Gries summary with capacity
  /// max(4 * hot_values, 64); deterministic given the value stream).
  void Observe(uint64_t value);

  /// Freezes the hot set: top hot_values survivors of the summary,
  /// ordered by (count desc, value asc) for determinism.
  void Finalize();

  /// Encodes one value. Must be Finalize()d first.
  int32_t Encode(uint64_t value) const;

  /// Total id space: 1 (reserved OOV) + hot set + buckets.
  size_t vocab_size() const { return 1 + hot_ids_.size() + options_.num_buckets; }
  size_t num_hot() const { return hot_ids_.size(); }

  bool IsHot(uint64_t value) const {
    return hot_ids_.find(value) != hot_ids_.end();
  }

 private:
  HashEncoderOptions options_;
  bool finalized_ = false;
  // Misra-Gries summary: value -> approximate count.
  std::unordered_map<uint64_t, size_t> summary_;
  size_t summary_capacity_;
  // value -> dedicated id (1-based), populated by Finalize().
  std::unordered_map<uint64_t, int32_t> hot_ids_;
};

/// Tracks first-claimant collisions for one field's bucket range: a row
/// counts as colliding when its bucket was first claimed by a *different*
/// raw value (so repeated rows of one value never count). Flat arrays —
/// O(num_buckets) memory per field — so tracking stays cheap at
/// tens-of-millions-of-rows encode scale.
class BucketCollisionTracker {
 public:
  explicit BucketCollisionTracker(const HashedVocab& vocab);

  /// Accounts one encoded row; `id` must come from vocab.Encode(value).
  void Record(int32_t id, uint64_t value, HashEncodeStats* stats);

 private:
  size_t first_bucket_id_;  // 1 + num_hot; ids below it are hot
  std::vector<uint64_t> claimant_;
  std::vector<uint8_t> occupied_;
};

}  // namespace optinter
