#include "data/csv_loader.h"

#include <cstdlib>
#include <fstream>

#include "common/string_util.h"

namespace optinter {

uint64_t HashCategorical(std::string_view value) {
  // FNV-1a, 64-bit.
  uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : value) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

Result<RawDataset> LoadCsvDataset(const std::string& path,
                                  const DatasetSchema& schema,
                                  const CsvOptions& options) {
  if (schema.num_fields() == 0) {
    return Status::Invalid("schema has no fields");
  }
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open '" + path + "'");

  std::string line;
  if (!std::getline(in, line)) {
    return Status::Invalid("'" + path + "' is empty");
  }
  // Strip only the line ending, never delimiter-significant whitespace: a
  // whole-line Trim on a tab- or space-delimited file silently removes
  // leading/trailing EMPTY cells (Criteo-style TSV rows with missing last
  // fields), shifting or rejecting otherwise-valid rows. Individual cells
  // are still trimmed below.
  const auto header = Split(StripLineEnding(line), options.delimiter);

  auto column_of = [&](const std::string& name) -> int {
    for (size_t c = 0; c < header.size(); ++c) {
      if (Trim(header[c]) == name) return static_cast<int>(c);
    }
    return -1;
  };

  const int label_col = column_of(options.label_column);
  if (label_col < 0) {
    return Status::NotFound("label column '" + options.label_column +
                            "' not in header");
  }
  std::vector<int> field_cols(schema.num_fields());
  for (size_t f = 0; f < schema.num_fields(); ++f) {
    field_cols[f] = column_of(schema.field(f).name);
    if (field_cols[f] < 0) {
      return Status::NotFound("schema field '" + schema.field(f).name +
                              "' not in header");
    }
  }

  RawDataset raw;
  raw.schema = schema;
  const size_t num_cat = schema.num_categorical();
  const size_t num_cont = schema.num_continuous();

  size_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    std::string_view stripped = StripLineEnding(line);
    // Skip blank separator lines: empty, or all-whitespace with no
    // delimiter in sight (a whitespace-delimited line consisting only of
    // delimiters is a row of empty cells, not a blank line).
    if (stripped.empty()) continue;
    if (stripped.find(options.delimiter) == std::string_view::npos &&
        Trim(stripped).empty()) {
      continue;
    }
    const auto cells = Split(stripped, options.delimiter);
    if (cells.size() != header.size()) {
      return Status::Invalid(StrFormat(
          "line %zu has %zu cells, header has %zu", line_number,
          cells.size(), header.size()));
    }

    // Label.
    {
      const std::string_view cell = Trim(cells[label_col]);
      char* end = nullptr;
      const std::string cell_str(cell);
      const double v = std::strtod(cell_str.c_str(), &end);
      if (end == cell_str.c_str()) {
        return Status::Invalid(StrFormat(
            "line %zu: unparseable label '%s'", line_number,
            cell_str.c_str()));
      }
      raw.labels.push_back(v > 0.5 ? 1.0f : 0.0f);
    }

    // Fields, in schema order partitioned into categorical / continuous.
    size_t cat_slot = 0;
    size_t cont_slot = 0;
    raw.cat_values.resize(raw.cat_values.size() + num_cat);
    raw.cont_values.resize(raw.cont_values.size() + num_cont);
    int64_t* cat_row = raw.cat_values.data() + raw.num_rows * num_cat;
    float* cont_row = raw.cont_values.data() + raw.num_rows * num_cont;
    for (size_t f = 0; f < schema.num_fields(); ++f) {
      const std::string cell(Trim(cells[field_cols[f]]));
      if (schema.field(f).type == FieldType::kCategorical) {
        const std::string& token =
            cell.empty() ? options.missing_token : cell;
        cat_row[cat_slot++] =
            static_cast<int64_t>(HashCategorical(token) >> 1);
      } else {
        float v = options.missing_value;
        if (!cell.empty()) {
          char* end = nullptr;
          const double parsed = std::strtod(cell.c_str(), &end);
          if (end != cell.c_str() && *end == '\0') {
            v = static_cast<float>(parsed);
          }
        }
        cont_row[cont_slot++] = v;
      }
    }
    ++raw.num_rows;
    if (options.max_rows > 0 && raw.num_rows >= options.max_rows) break;
  }
  if (raw.num_rows == 0) {
    return Status::Invalid("'" + path + "' contains no data rows");
  }
  return raw;
}

}  // namespace optinter
