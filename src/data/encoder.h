// Dataset encoding: vocab fitting, min-max normalization, and the
// cross-product transformation.
//
// Statistics (vocabularies, continuous min/max) are fitted on the training
// rows only; validation/test rows are transformed with the fitted state so
// unseen values fall into OOV — mirroring deployment conditions.

#pragma once

#include <array>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "data/vocab.h"

namespace optinter {

/// Options controlling encoding.
struct EncoderOptions {
  /// Min occurrences for an original categorical value to escape OOV
  /// (paper: 20 on Criteo, 5 on Avazu).
  size_t cat_min_count = 4;
  /// Min occurrences for a cross-product value to escape OOV.
  size_t cross_min_count = 10;
  /// Ids per field kept in the frequency-stats metadata
  /// (EncodedDataset::cat_hot_ids / cross_hot_ids), fitted on the fit
  /// rows — the hot-set source for frequency-tiered embedding backends.
  /// 0 disables stats.
  size_t freq_stats_topk = 128;
};

/// Fits vocabularies / normalization on `fit_rows` of `raw` and encodes the
/// whole dataset. Cross features are NOT built here (call
/// BuildCrossFeatures on the result); models that never touch crosses
/// avoid the cost.
Result<EncodedDataset> EncodeDataset(const RawDataset& raw,
                                     const std::vector<size_t>& fit_rows,
                                     const EncoderOptions& options);

/// Adds cross-product transformed features to an encoded dataset
/// (paper Eq. 4): for every categorical pair (i, j), the pair of encoded
/// ids becomes a new categorical value with its own frequency-thresholded
/// vocabulary, fitted on `fit_rows`.
Status BuildCrossFeatures(EncodedDataset* data,
                          const std::vector<size_t>& fit_rows,
                          const EncoderOptions& options);

/// Adds third-order cross-product transformed features for the given
/// categorical field triples (each {i, j, k} with i < j < k), with
/// per-triple frequency-thresholded vocabularies fitted on `fit_rows`
/// (threshold = options.cross_min_count). The paper's higher-order
/// extension (§II-B1).
Status BuildTripleCrossFeatures(
    EncodedDataset* data, const std::vector<size_t>& fit_rows,
    const EncoderOptions& options,
    const std::vector<std::array<size_t, 3>>& triples);

}  // namespace optinter
