// Dataset schema: multi-field layout of a CTR dataset (paper §II-A1).
//
// Fields are either categorical (one-hot encoded values) or continuous
// (min-max normalized to [0,1] and multiplied with a single learned
// embedding, following the paper's Criteo preprocessing, Eq. 20).
// Cross-product transformed features exist only between categorical
// fields — Table II counts #cross = C(#cate, 2).

#pragma once

#include <array>
#include <cstddef>
#include <utility>
#include <string>
#include <vector>

#include "common/logging.h"

namespace optinter {

enum class FieldType { kCategorical, kContinuous };

/// One original feature field.
struct FieldSpec {
  std::string name;
  FieldType type = FieldType::kCategorical;
};

/// Ordered collection of fields plus derived index maps.
class DatasetSchema {
 public:
  DatasetSchema() = default;
  explicit DatasetSchema(std::vector<FieldSpec> fields)
      : fields_(std::move(fields)) {
    for (size_t f = 0; f < fields_.size(); ++f) {
      if (fields_[f].type == FieldType::kCategorical) {
        cat_fields_.push_back(f);
      } else {
        cont_fields_.push_back(f);
      }
    }
  }

  const std::vector<FieldSpec>& fields() const { return fields_; }
  size_t num_fields() const { return fields_.size(); }
  size_t num_categorical() const { return cat_fields_.size(); }
  size_t num_continuous() const { return cont_fields_.size(); }

  /// Field indices (into fields()) of the categorical fields, in order.
  const std::vector<size_t>& categorical_fields() const {
    return cat_fields_;
  }
  const std::vector<size_t>& continuous_fields() const {
    return cont_fields_;
  }

  /// Number of second-order interactions among categorical fields:
  /// C(num_categorical, 2).
  size_t num_pairs() const {
    const size_t m = num_categorical();
    return m * (m - 1) / 2;
  }

  const FieldSpec& field(size_t i) const {
    CHECK_LT(i, fields_.size());
    return fields_[i];
  }

 private:
  std::vector<FieldSpec> fields_;
  std::vector<size_t> cat_fields_;
  std::vector<size_t> cont_fields_;
};

/// Enumerates categorical-field pairs (i, j), i < j, in the canonical
/// order used throughout: (0,1), (0,2), ..., (0,M-1), (1,2), ...
/// Indices are positions within the categorical fields, not raw field ids.
std::vector<std::pair<size_t, size_t>> EnumeratePairs(size_t num_cat);

/// Maps a categorical-field pair (i, j), i < j, to its index in the
/// canonical pair order.
size_t PairIndex(size_t i, size_t j, size_t num_cat);

/// Enumerates categorical-field triples {i, j, k}, i < j < k, in
/// lexicographic order (the higher-order analogue of EnumeratePairs).
std::vector<std::array<size_t, 3>> EnumerateTriples(size_t num_cat);

}  // namespace optinter
