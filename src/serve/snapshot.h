// Lock-free model hot-swap for the serving layer.
//
// The live model is published as an immutable ModelSnapshot behind an
// atomic shared_ptr (RCU idiom): readers Acquire() a reference-counted
// pointer, predict against it, and drop it; a swap atomically exchanges
// the pointer to a fully-built replacement. The two generations are
// therefore double-buffered — the outgoing snapshot stays alive (and
// keeps serving its in-flight requests) until the last reader releases
// it, so every request sees one whole snapshot's weights: no torn reads,
// no pause, no reader-side lock.
//
// Swap safety rules:
//  * A snapshot's model is NEVER mutated after Publish. Hot-swapping a
//    retrained checkpoint means building a FRESH model instance, loading
//    the checkpoint into it (io/serialize validates the byte stream
//    before touching any weight), and publishing that instance.
//  * Only models with a const re-entrant Predict can be published;
//    Publish rejects anything else up front with an actionable error
//    instead of letting requests die on the CHECK inside
//    CtrModel::Predict(batch, probs, ctx).
//  * The model's backing objects (the EncodedDataset it was constructed
//    against) must outlive the snapshot; bundle them into the deleter or
//    keep them process-lifetime, as the examples do.

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/status.h"
#include "models/model.h"
#include "nn/quant_embedding.h"

namespace optinter {
namespace serve {

/// Actionable up-front guard: OK iff `model` implements the const
/// re-entrant Predict overload (CtrModel::SupportsReentrantPredict).
Status CheckServable(const CtrModel& model);

/// One immutable published model generation.
struct ModelSnapshot {
  std::shared_ptr<const CtrModel> model;
  /// Monotonic generation id (1 = first Publish).
  uint64_t version = 0;
};

/// Atomic publication slot for the live snapshot.
///
/// Thread-safe: any number of Acquire()ing readers may run concurrently
/// with Publish. Readers never block a swap and a swap never blocks
/// readers — the exchange is a single atomic shared_ptr store.
class SnapshotSlot {
 public:
  /// Publishes `model` as the new live snapshot, replacing any previous
  /// one. Fails (leaving the previous snapshot live) when the model does
  /// not support re-entrant Predict.
  Status Publish(std::shared_ptr<const CtrModel> model);

  /// The current snapshot, pinned for the caller's lifetime of the
  /// returned pointer; nullptr before the first Publish.
  std::shared_ptr<const ModelSnapshot> Acquire() const {
    return current_.load(std::memory_order_acquire);
  }

  /// Generation id of the live snapshot (0 before the first Publish).
  uint64_t version() const {
    auto snap = Acquire();
    return snap ? snap->version : 0;
  }

 private:
  std::atomic<std::shared_ptr<const ModelSnapshot>> current_{nullptr};
  std::atomic<uint64_t> generations_{0};
};

/// Builds a fresh model via `factory`, restores `checkpoint_path` into it
/// (full-file validation first — a truncated or mismatched checkpoint is
/// rejected without publishing), and publishes it into `slot`. The
/// previous snapshot keeps serving until its last in-flight request
/// completes. On any failure the slot is untouched and the old model
/// stays live.
Status SwapFromCheckpoint(
    SnapshotSlot* slot,
    const std::function<std::unique_ptr<CtrModel>()>& factory,
    const std::string& checkpoint_path);

/// One-shot conversion of a trained FixedArchModel into an inference-only
/// quantized view (serve/quantized_model.h): int8 or bf16 embedding
/// tables, and in int8 mode a dynamic-activation int8 MLP. The returned
/// model supports re-entrant Predict and can be Publish()ed into a
/// SnapshotSlot like any other generation; `model` is retained inside it
/// so the reused fp32 layers stay alive. Fails (without touching `out`)
/// when `model` is not a FixedArchModel.
Status QuantizeSnapshot(std::shared_ptr<const CtrModel> model,
                        QuantMode mode,
                        std::shared_ptr<const CtrModel>* out);

}  // namespace serve
}  // namespace optinter
