// Low-latency prediction server: adaptive micro-batching over the
// re-entrant Predict path, with lock-free model hot-swap.
//
// Two request paths share one SnapshotSlot:
//
//  * Submit(request) enqueues into the micro-batcher. A dedicated
//    flusher thread coalesces concurrent requests into one Predict call
//    (amortizing the per-call fixed costs and letting the GEMMs see real
//    batch sizes) and scatters the probabilities back to per-request
//    futures. A flush triggers when `max_batch` requests are pending OR
//    when the OLDEST pending request has waited `flush_deadline_us` —
//    so an idle server stays at one-request latency while a loaded one
//    converges to full batches (the adaptive policy; DESIGN.md §8).
//
//  * PredictNow(request) scores synchronously on the calling thread via
//    the batch-1 fused path (FixedArchModel fuses gather → interaction →
//    MLP for single rows), bypassing the queue entirely. This is the
//    lowest-latency path; use it when the caller cannot tolerate
//    coalescing delay.
//
// Both paths pin the live snapshot for the duration of the request, so a
// concurrent hot-swap (Deploy / SwapFromCheckpoint on any thread) never
// tears a prediction across two weight generations.
//
// Per-request state lives in pooled arenas (RequestArena + ForwardContext
// + probability scratch) that keep capacity across requests: the steady
// state allocates nothing.
//
// Latency/throughput observability (src/obs):
//   serve.requests / serve.rejected (counters)
//   serve.flushes (counter), serve.batch_size (histogram)
//   serve.latency_us (histogram; Submit measures enqueue→future-set,
//                     PredictNow measures call duration)
//   serve.swaps (counter, incremented by SnapshotSlot::Publish)

#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "models/forward_context.h"
#include "obs/http_exporter.h"
#include "serve/request.h"
#include "serve/snapshot.h"

namespace optinter {
namespace serve {

/// Tuning knobs for the micro-batcher.
struct ServeOptions {
  /// Flush as soon as this many requests are pending.
  size_t max_batch = 64;
  /// Flush once the oldest pending request has waited this long, even if
  /// the batch is not full. 0 = flush immediately (degenerates to batch-1
  /// unless requests race in faster than the flusher drains them).
  uint64_t flush_deadline_us = 200;
  /// Reject Submit when this many requests are already pending
  /// (backpressure instead of unbounded queue growth). 0 = unbounded.
  size_t max_pending = 4096;
  /// Live scrape endpoint (obs/http_exporter.h): -1 = no exporter
  /// (default), 0 = bind an ephemeral port (read it back from
  /// PredictServer::metrics_port()), >0 = bind that port. Serves /metrics
  /// (Prometheus text), /healthz, and /varz (RunReport JSON snapshot) for
  /// the server's lifetime.
  int metrics_port = -1;
  /// Interface the metrics exporter binds. Default loopback; set
  /// "0.0.0.0" to let an external Prometheus scrape a serving host —
  /// an explicit opt-in, since /varz exposes run internals.
  std::string metrics_bind_addr = "127.0.0.1";
};

/// A deployed model serving requests. Thread-safe.
class PredictServer {
 public:
  /// `reference` defines the feature space (schema, vocab sizes); every
  /// deployed model must have been constructed against a dataset encoded
  /// with the same FittedEncoder. Not owned; must outlive the server.
  explicit PredictServer(const EncodedDataset& reference,
                         ServeOptions options = {});

  /// Drains pending requests and joins the flusher.
  ~PredictServer();

  PredictServer(const PredictServer&) = delete;
  PredictServer& operator=(const PredictServer&) = delete;

  /// Publishes `model` as the live snapshot (first deploy or hot-swap).
  /// Rejects models without re-entrant Predict up front.
  Status Deploy(std::shared_ptr<const CtrModel> model);

  /// Hot-swap: build a fresh model via `factory`, restore the checkpoint
  /// into it, publish. In-flight and concurrent requests keep the old
  /// snapshot until they finish; on failure the old model stays live.
  Status DeployCheckpoint(
      const std::function<std::unique_ptr<CtrModel>()>& factory,
      const std::string& checkpoint_path);

  /// Generation id of the live model (0 = nothing deployed).
  uint64_t DeployedVersion() const { return slot_.version(); }

  /// Enqueues a request for micro-batched scoring. Validation failures
  /// and backpressure are reported synchronously; the future is fulfilled
  /// by the flusher thread.
  Result<std::future<float>> Submit(PredictRequest request);

  /// Synchronous batch-1 scoring on the calling thread (fused single-row
  /// path). Concurrent calls are safe.
  Result<float> PredictNow(const PredictRequest& request);

  /// Blocks until every request submitted before the call has been
  /// answered. Test/shutdown helper.
  void Drain();

  size_t pending() const;

  /// Bound /metrics port when ServeOptions::metrics_port >= 0 and the
  /// exporter started; -1 otherwise.
  int metrics_port() const;

 private:
  struct PendingRequest {
    PredictRequest request;
    std::promise<float> promise;
    std::chrono::steady_clock::time_point enqueued;
  };

  /// Pooled per-request scratch for the batch-1 path.
  struct Batch1Slot {
    explicit Batch1Slot(const EncodedDataset& reference)
        : arena(reference) {}
    RequestArena arena;
    ForwardContext ctx;
    std::vector<float> probs;
  };

  void FlusherLoop();
  /// Scores `batch` (moved-out pending requests) and fulfills promises.
  void RunFlush(std::vector<PendingRequest>* batch);

  const EncodedDataset& reference_;
  const ServeOptions options_;
  SnapshotSlot slot_;

  mutable std::mutex mutex_;
  std::condition_variable wake_flusher_;
  std::condition_variable drained_;
  std::deque<PendingRequest> queue_;
  size_t in_flight_ = 0;  // requests moved out of queue_, not yet answered
  bool stopping_ = false;

  // Flusher-owned scratch (only the flusher thread touches these).
  RequestArena flush_arena_;
  ForwardContext flush_ctx_;
  std::vector<float> flush_probs_;
  std::vector<PendingRequest> flush_batch_;

  std::mutex batch1_mutex_;
  std::vector<std::unique_ptr<Batch1Slot>> batch1_pool_;

  std::unique_ptr<obs::HttpExporter> metrics_exporter_;
  std::thread flusher_;
};

}  // namespace serve
}  // namespace optinter
