#include "serve/request.h"

#include "common/string_util.h"

namespace optinter {
namespace serve {

PredictRequest RequestFromRow(const EncodedDataset& data, size_t row) {
  CHECK_LT(row, data.num_rows);
  PredictRequest req;
  req.cat_ids.resize(data.num_categorical());
  for (size_t f = 0; f < data.num_categorical(); ++f) {
    req.cat_ids[f] = data.cat(row, f);
  }
  req.cont_values.resize(data.num_continuous());
  for (size_t f = 0; f < data.num_continuous(); ++f) {
    req.cont_values[f] = data.cont(row, f);
  }
  if (data.has_cross()) {
    req.cross_ids.resize(data.num_pairs());
    for (size_t p = 0; p < data.num_pairs(); ++p) {
      req.cross_ids[p] = data.cross(row, p);
    }
  }
  if (data.has_triples()) {
    req.triple_ids.resize(data.num_triples());
    for (size_t t = 0; t < data.num_triples(); ++t) {
      req.triple_ids[t] = data.triple(row, t);
    }
  }
  return req;
}

RequestArena::RequestArena(const EncodedDataset& reference) {
  data_.schema = reference.schema;
  data_.cat_vocab_sizes = reference.cat_vocab_sizes;
  data_.cross_vocab_sizes = reference.cross_vocab_sizes;
  data_.triple_fields = reference.triple_fields;
  data_.triple_vocab_sizes = reference.triple_vocab_sizes;
  expect_cross_ = reference.has_cross();
  expect_triples_ = reference.has_triples();
}

void RequestArena::Clear() {
  data_.num_rows = 0;
  data_.cat_ids.clear();
  data_.cont_values.clear();
  data_.cross_ids.clear();
  data_.triple_ids.clear();
  data_.labels.clear();
  rows_.clear();
}

Status RequestArena::Append(const PredictRequest& request) {
  const size_t num_cat = data_.num_categorical();
  const size_t num_cont = data_.num_continuous();
  const size_t num_pairs = expect_cross_ ? data_.num_pairs() : 0;
  const size_t num_triples = expect_triples_ ? data_.num_triples() : 0;
  if (request.cat_ids.size() != num_cat) {
    return Status::Invalid(StrFormat(
        "request has %zu categorical ids, schema expects %zu",
        request.cat_ids.size(), num_cat));
  }
  if (request.cont_values.size() != num_cont) {
    return Status::Invalid(StrFormat(
        "request has %zu continuous values, schema expects %zu",
        request.cont_values.size(), num_cont));
  }
  if (request.cross_ids.size() != num_pairs) {
    return Status::Invalid(StrFormat(
        "request has %zu cross ids, deployed feature space expects %zu",
        request.cross_ids.size(), num_pairs));
  }
  if (request.triple_ids.size() != num_triples) {
    return Status::Invalid(StrFormat(
        "request has %zu triple ids, deployed feature space expects %zu",
        request.triple_ids.size(), num_triples));
  }
  // Range-check every id against the deployed vocabularies so a stale or
  // mis-encoded request surfaces as a rejected request, not as a CHECK
  // abort inside an embedding lookup.
  for (size_t f = 0; f < num_cat; ++f) {
    const int32_t id = request.cat_ids[f];
    if (id < 0 || static_cast<size_t>(id) >= data_.cat_vocab_sizes[f]) {
      return Status::OutOfRange(StrFormat(
          "categorical field %zu id %d outside vocab [0, %zu)", f,
          static_cast<int>(id), data_.cat_vocab_sizes[f]));
    }
  }
  for (size_t p = 0; p < num_pairs; ++p) {
    const int32_t id = request.cross_ids[p];
    if (id < 0 || static_cast<size_t>(id) >= data_.cross_vocab_sizes[p]) {
      return Status::OutOfRange(StrFormat(
          "cross pair %zu id %d outside vocab [0, %zu)", p,
          static_cast<int>(id), data_.cross_vocab_sizes[p]));
    }
  }
  for (size_t t = 0; t < num_triples; ++t) {
    const int32_t id = request.triple_ids[t];
    if (id < 0 || static_cast<size_t>(id) >= data_.triple_vocab_sizes[t]) {
      return Status::OutOfRange(StrFormat(
          "triple %zu id %d outside vocab [0, %zu)", t,
          static_cast<int>(id), data_.triple_vocab_sizes[t]));
    }
  }

  data_.cat_ids.insert(data_.cat_ids.end(), request.cat_ids.begin(),
                       request.cat_ids.end());
  data_.cont_values.insert(data_.cont_values.end(),
                           request.cont_values.begin(),
                           request.cont_values.end());
  if (expect_cross_) {
    data_.cross_ids.insert(data_.cross_ids.end(), request.cross_ids.begin(),
                           request.cross_ids.end());
  }
  if (expect_triples_) {
    data_.triple_ids.insert(data_.triple_ids.end(),
                            request.triple_ids.begin(),
                            request.triple_ids.end());
  }
  data_.labels.push_back(0.0f);  // serving rows carry no label
  rows_.push_back(data_.num_rows);
  ++data_.num_rows;
  return Status::OK();
}

Batch RequestArena::MakeBatch() const {
  Batch b;
  b.data = &data_;
  b.rows = rows_.data();
  b.size = rows_.size();
  return b;
}

}  // namespace serve
}  // namespace optinter
