// Inference-only quantized view of a trained FixedArchModel.
//
// QuantizeSnapshot (snapshot.h) converts a trained fp32 model once into
// this serving-only CtrModel: every embedding table becomes an int8 or
// bf16 QuantizedTable, and in int8 mode the MLP's Linear layers run as
// dynamic-activation int8 GEMMs (tensor/int8.h) with the fp32 ReLU /
// LayerNorm stages reused from the source model. The forward pass
// mirrors FixedArchModel's fused serving path — gather straight into the
// z row, interactions in place — except every gather dequantizes.
//
// Properties the serving layer relies on:
//  * Immutable after construction; Predict is const and re-entrant, so
//    the hot-swap slot can publish a quantized generation like any other
//    snapshot and serve it to concurrent clients.
//  * Backend-invariant output: dequantized gathers are bitwise identical
//    under every dispatch backend, the int8 inner products are exact
//    integer math, and the single fp32 rounding per GEMM output lives in
//    shared non-variant code — so a quantized snapshot predicts the same
//    bits whether dispatch picked avx512, avx2-fma, sse2 or scalar.
//  * TrainStep CHECK-fails: quantization is one-way; retraining happens
//    on the fp32 model and republishes through QuantizeSnapshot.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/fixed_arch_model.h"
#include "nn/quant_embedding.h"

namespace optinter {
namespace serve {

class QuantizedFixedArchModel : public CtrModel {
 public:
  /// `source` must own (or be) the FixedArchModel referenced by `fp32`;
  /// it is retained so the reused fp32 layers (LayerNorm, bf16-mode MLP)
  /// outlive this view. Prefer QuantizeSnapshot over calling this
  /// directly.
  QuantizedFixedArchModel(std::shared_ptr<const CtrModel> source,
                          const FixedArchModel& fp32, QuantMode mode);

  std::string Name() const override { return name_; }
  float TrainStep(const Batch& batch) override;
  void Predict(const Batch& batch, std::vector<float>* probs) override;
  bool SupportsReentrantPredict() const override { return true; }
  void Predict(const Batch& batch, std::vector<float>* probs,
               ForwardContext* ctx) const override;
  size_t ParamCount() const override { return fp32_.ParamCount(); }

  QuantMode mode() const { return mode_; }

  /// Total bytes of quantized embedding storage (per-row metadata
  /// included) and the fp32 bytes of the same tables — the bench's
  /// bytes/row compression ratio is the quotient.
  size_t EmbeddingBytes() const;
  size_t Fp32EmbeddingBytes() const;
  /// Total embedding rows across all quantized tables.
  size_t EmbeddingRows() const;

 private:
  /// Per-output-row int8 weights of one Linear (tensor/int8.h layout).
  struct QuantLinear {
    size_t in = 0;
    size_t out = 0;
    AlignedVector<int8_t> qw;       // [out × in]
    std::vector<float> w_scale;     // [out]
    std::vector<int32_t> w_rowsum;  // [out]
    std::vector<float> bias;        // [out]
  };

  /// Gathers + dequantizes one dataset row directly into its z row and
  /// computes the interaction blocks in place (the fused serving layout).
  void GatherAssembleRow(const EncodedDataset& data, size_t row,
                         float* zr) const;
  /// int8 MLP forward over z (int8 mode only).
  void MlpForwardInt8(const Tensor& z, Tensor* y, ForwardContext* ctx) const;
  void QuantLinearForward(const QuantLinear& layer, const Tensor& x,
                          Tensor* y, QuantScratch* qs) const;

  std::shared_ptr<const CtrModel> source_;  // pins the reused fp32 layers
  const FixedArchModel& fp32_;
  QuantMode mode_;
  std::string name_;

  // Frozen layout (copied, not referenced — cheap and self-describing).
  size_t s1_;
  size_t s2_;
  size_t inter_dim_;
  size_t emb_cols_;
  Architecture arch_;
  std::vector<FactorizeFn> pair_fns_;
  std::vector<std::pair<size_t, size_t>> cat_pairs_;
  std::vector<size_t> block_offset_;
  std::vector<size_t> mem_slot_;
  std::vector<size_t> cross_pairs_;   // dataset pair index per cross block
  std::vector<size_t> triple_idx_;    // dataset triple index per block

  // Quantized parameters.
  std::vector<QuantizedTable> cat_tables_;
  std::vector<std::vector<float>> cont_rows_;  // fp32: one row per field
  std::vector<QuantizedTable> cross_tables_;
  std::vector<QuantizedTable> triple_tables_;
  std::vector<QuantLinear> qlinears_;  // int8 mode only
  std::vector<Relu> relus_;            // stateless fp32 activations

  ForwardContext ctx_;  // non-re-entrant Predict overload only
};

}  // namespace serve
}  // namespace optinter
