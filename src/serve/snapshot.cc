#include "serve/snapshot.h"

#include "io/serialize.h"
#include "obs/registry.h"
#include "serve/quantized_model.h"

namespace optinter {
namespace serve {

namespace {
obs::Counter* SwapCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("serve.swaps");
  return c;
}
}  // namespace

Status CheckServable(const CtrModel& model) {
  if (!model.SupportsReentrantPredict()) {
    return Status::FailedPrecondition(
        model.Name() +
        " does not implement the const re-entrant Predict(batch, probs, "
        "ctx) overload (SupportsReentrantPredict() is false); the serving "
        "layer requires it so concurrent requests can share one immutable "
        "snapshot. Retrain/deploy a FixedArchModel, or implement the "
        "overload.");
  }
  return Status::OK();
}

Status SnapshotSlot::Publish(std::shared_ptr<const CtrModel> model) {
  if (model == nullptr) {
    return Status::Invalid("cannot publish a null model");
  }
  Status st = CheckServable(*model);
  if (!st.ok()) return st;
  auto snap = std::make_shared<ModelSnapshot>();
  snap->model = std::move(model);
  snap->version = generations_.fetch_add(1, std::memory_order_relaxed) + 1;
  // Release store: a reader that acquires the new pointer sees the fully
  // constructed snapshot (and every weight the loader wrote before the
  // Publish call).
  current_.store(std::move(snap), std::memory_order_release);
  SwapCounter()->Increment();
  return Status::OK();
}

Status SwapFromCheckpoint(
    SnapshotSlot* slot,
    const std::function<std::unique_ptr<CtrModel>()>& factory,
    const std::string& checkpoint_path) {
  CHECK(slot != nullptr);
  CHECK(factory != nullptr);
  std::shared_ptr<CtrModel> fresh{factory()};
  if (fresh == nullptr) {
    return Status::Invalid("model factory returned null");
  }
  Status st = CheckServable(*fresh);
  if (!st.ok()) return st;
  // Load into the fresh (unpublished) buffer; the live snapshot is never
  // written to. LoadModel validates the whole checkpoint before writing
  // any tensor, so a bad file cannot leave `fresh` half-initialized
  // either — it is simply discarded.
  st = LoadModel(fresh.get(), checkpoint_path);
  if (!st.ok()) return st;
  return slot->Publish(std::move(fresh));
}

Status QuantizeSnapshot(std::shared_ptr<const CtrModel> model,
                        QuantMode mode,
                        std::shared_ptr<const CtrModel>* out) {
  CHECK(out != nullptr);
  if (model == nullptr) {
    return Status::Invalid("cannot quantize a null model");
  }
  const auto* fixed = dynamic_cast<const FixedArchModel*>(model.get());
  if (fixed == nullptr) {
    return Status::Invalid(
        model->Name() +
        " cannot be quantized: QuantizeSnapshot supports FixedArchModel "
        "(the re-train-stage / serving model family) only");
  }
  *out = std::make_shared<QuantizedFixedArchModel>(std::move(model), *fixed,
                                                   mode);
  return Status::OK();
}

}  // namespace serve
}  // namespace optinter
