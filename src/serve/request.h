// Serving request representation and the per-flush request arena.
//
// A PredictRequest is one fully-encoded feature row — the output of the
// deployment-time FittedEncoder, i.e. exactly the id space the deployed
// model's embedding tables were built against. The serving layer never
// sees raw feature strings; encoding happens at the edge (see
// examples/train_save_serve.cpp) so the hot path is pure id lookups.
//
// A RequestArena is a reusable, schema-locked EncodedDataset holding the
// rows of one micro-batch (or one batch-1 request). Appending validates
// field counts and id ranges against the reference dataset's vocabularies
// and returns a recoverable Status instead of tripping the CHECKs deep
// inside EmbeddingTable::Row — a malformed request must never abort the
// server. Buffers keep their capacity across Clear(), so a steady-state
// serving loop performs no allocations.

#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "data/batch.h"
#include "data/dataset.h"

namespace optinter {
namespace serve {

/// One encoded scoring request: ids/values in dataset column order.
struct PredictRequest {
  /// Encoded categorical ids, one per categorical field (0 = OOV).
  std::vector<int32_t> cat_ids;
  /// Normalized continuous values, one per continuous field.
  std::vector<float> cont_values;
  /// Encoded cross-product ids, one per categorical pair in canonical
  /// order. Required when the reference dataset has cross features built
  /// (models with memorized pairs read them); empty otherwise.
  std::vector<int32_t> cross_ids;
  /// Encoded triple cross ids, one per built triple. Usually empty.
  std::vector<int32_t> triple_ids;
};

/// Extracts row `row` of `data` as a request — the bench/test path, and
/// the template for what an encoder front-end must produce.
PredictRequest RequestFromRow(const EncodedDataset& data, size_t row);

/// Reusable micro-batch storage bound to a reference dataset's schema.
///
/// Not thread-safe; the serving layer owns one arena per flusher /
/// batch-1 slot. The reference dataset must outlive the arena (only its
/// schema and vocab sizes are copied; they are what Append validates
/// against).
class RequestArena {
 public:
  explicit RequestArena(const EncodedDataset& reference);

  /// Drops all rows, keeping buffer capacity.
  void Clear();

  /// Validates and appends one request row. On error the arena is
  /// unchanged and the status names the offending field.
  Status Append(const PredictRequest& request);

  /// View over every appended row, in append order.
  Batch MakeBatch() const;

  size_t size() const { return data_.num_rows; }
  const EncodedDataset& data() const { return data_; }

 private:
  EncodedDataset data_;       // schema + vocabs from the reference
  std::vector<size_t> rows_;  // identity row ids backing MakeBatch
  bool expect_cross_ = false;
  bool expect_triples_ = false;
};

}  // namespace serve
}  // namespace optinter
