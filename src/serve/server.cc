#include "serve/server.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace optinter {
namespace serve {

namespace {

obs::Counter* RequestCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("serve.requests");
  return c;
}

obs::Counter* RejectedCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("serve.rejected");
  return c;
}

obs::Counter* FlushCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("serve.flushes");
  return c;
}

obs::Histogram* LatencyHistogram() {
  // Microsecond buckets from sub-10us (fused batch-1 on warm caches) to
  // 100ms (deep queues / cold swaps); the overflow bucket catches worse.
  static obs::Histogram* h = obs::MetricsRegistry::Global().GetHistogram(
      "serve.latency_us",
      {10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000, 20000, 50000,
       100000});
  return h;
}

obs::Histogram* BatchSizeHistogram() {
  static obs::Histogram* h = obs::MetricsRegistry::Global().GetHistogram(
      "serve.batch_size", {1, 2, 4, 8, 16, 32, 64, 128, 256});
  return h;
}

double MicrosSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

PredictServer::PredictServer(const EncodedDataset& reference,
                             ServeOptions options)
    : reference_(reference),
      options_(options),
      flush_arena_(reference) {
  CHECK_GT(options_.max_batch, 0u);
  if (options_.metrics_port >= 0) {
    obs::HttpExporterOptions exporter_options;
    exporter_options.host = options_.metrics_bind_addr;
    exporter_options.port = options_.metrics_port;
    metrics_exporter_ =
        std::make_unique<obs::HttpExporter>(std::move(exporter_options));
    std::string error;
    if (!metrics_exporter_->Start(&error)) {
      // Telemetry must never take down serving: log and carry on without
      // the scrape endpoint.
      LOG_WARNING() << "metrics exporter disabled: " << error;
      metrics_exporter_.reset();
    }
  }
  flusher_ = std::thread([this] { FlusherLoop(); });
}

PredictServer::~PredictServer() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_flusher_.notify_all();
  flusher_.join();
  // Fail whatever the flusher did not get to (Drain() callers have
  // already seen their futures resolve; this only runs on teardown with
  // requests still queued).
  for (PendingRequest& p : queue_) {
    p.promise.set_value(std::numeric_limits<float>::quiet_NaN());
  }
  if (metrics_exporter_ != nullptr) metrics_exporter_->Stop();
}

int PredictServer::metrics_port() const {
  return metrics_exporter_ != nullptr ? metrics_exporter_->port() : -1;
}

Status PredictServer::Deploy(std::shared_ptr<const CtrModel> model) {
  return slot_.Publish(std::move(model));
}

Status PredictServer::DeployCheckpoint(
    const std::function<std::unique_ptr<CtrModel>()>& factory,
    const std::string& checkpoint_path) {
  return SwapFromCheckpoint(&slot_, factory, checkpoint_path);
}

Result<std::future<float>> PredictServer::Submit(PredictRequest request) {
  if (slot_.Acquire() == nullptr) {
    RejectedCounter()->Increment();
    return Status::FailedPrecondition("no model deployed");
  }
  // Validate outside the lock against a throwaway arena? No — validation
  // needs only schema/vocab data, which RequestArena copies; use a cheap
  // dedicated validator: appending to a 1-row scratch arena would also
  // work but would serialize submitters. The arena validation runs again
  // at flush time via Append, so here we pre-check with the same logic on
  // a thread-local scratch arena to fail fast without holding mutex_.
  thread_local std::unique_ptr<RequestArena> scratch;
  if (scratch == nullptr) {
    scratch = std::make_unique<RequestArena>(reference_);
  }
  scratch->Clear();
  Status st = scratch->Append(request);
  if (!st.ok()) {
    RejectedCounter()->Increment();
    return st;
  }
  std::future<float> future;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (stopping_) {
      RejectedCounter()->Increment();
      return Status::FailedPrecondition("server is shutting down");
    }
    if (options_.max_pending > 0 &&
        queue_.size() + in_flight_ >= options_.max_pending) {
      RejectedCounter()->Increment();
      return Status::FailedPrecondition(StrFormat(
          "serving queue full (%zu pending); retry or raise max_pending",
          queue_.size() + in_flight_));
    }
    queue_.emplace_back();
    PendingRequest& p = queue_.back();
    p.request = std::move(request);
    p.enqueued = std::chrono::steady_clock::now();
    future = p.promise.get_future();
  }
  wake_flusher_.notify_one();
  return future;
}

Result<float> PredictServer::PredictNow(const PredictRequest& request) {
  const auto start = std::chrono::steady_clock::now();
  std::shared_ptr<const ModelSnapshot> snap = slot_.Acquire();
  if (snap == nullptr) {
    RejectedCounter()->Increment();
    return Status::FailedPrecondition("no model deployed");
  }
  // Pinned slot: pop a pooled scratch bundle (or grow the pool on first
  // use / burst peaks); steady state is pop + push of a pointer.
  std::unique_ptr<Batch1Slot> slot;
  {
    std::unique_lock<std::mutex> lock(batch1_mutex_);
    if (!batch1_pool_.empty()) {
      slot = std::move(batch1_pool_.back());
      batch1_pool_.pop_back();
    }
  }
  if (slot == nullptr) {
    slot = std::make_unique<Batch1Slot>(reference_);
  }
  slot->arena.Clear();
  Status st = slot->arena.Append(request);
  if (!st.ok()) {
    RejectedCounter()->Increment();
    std::unique_lock<std::mutex> lock(batch1_mutex_);
    batch1_pool_.push_back(std::move(slot));
    return st;
  }
  {
    OPTINTER_TRACE_SPAN("serve_predict_now");
    const Batch batch = slot->arena.MakeBatch();
    snap->model->Predict(batch, &slot->probs, &slot->ctx);
  }
  const float prob = slot->probs[0];
  {
    std::unique_lock<std::mutex> lock(batch1_mutex_);
    batch1_pool_.push_back(std::move(slot));
  }
  RequestCounter()->Increment();
  BatchSizeHistogram()->Observe(1.0);
  LatencyHistogram()->Observe(MicrosSince(start));
  return prob;
}

void PredictServer::Drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  drained_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

size_t PredictServer::pending() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return queue_.size() + in_flight_;
}

void PredictServer::FlusherLoop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_flusher_.wait(lock,
                         [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      // Adaptive coalescing: a full batch flushes immediately; otherwise
      // wait until the OLDEST request's deadline so its latency is
      // bounded by flush_deadline_us regardless of arrival pattern.
      const auto deadline =
          queue_.front().enqueued +
          std::chrono::microseconds(options_.flush_deadline_us);
      while (!stopping_ && queue_.size() < options_.max_batch &&
             std::chrono::steady_clock::now() < deadline) {
        wake_flusher_.wait_until(lock, deadline);
      }
      const size_t take = std::min(queue_.size(), options_.max_batch);
      flush_batch_.clear();
      for (size_t i = 0; i < take; ++i) {
        flush_batch_.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      in_flight_ = flush_batch_.size();
    }
    RunFlush(&flush_batch_);
    {
      std::unique_lock<std::mutex> lock(mutex_);
      in_flight_ = 0;
    }
    drained_.notify_all();
  }
}

void PredictServer::RunFlush(std::vector<PendingRequest>* batch) {
  OPTINTER_TRACE_SPAN("serve_flush");
  std::shared_ptr<const ModelSnapshot> snap = slot_.Acquire();
  flush_arena_.Clear();
  // Requests were validated at Submit; a failure here means the deployed
  // feature space changed between Submit and flush, which Deploy forbids
  // (same reference dataset for the server's lifetime) — so Append can
  // only fail on programmer error and the CHECK documents that.
  for (PendingRequest& p : *batch) {
    CHECK_OK(flush_arena_.Append(p.request));
  }
  if (snap == nullptr) {
    for (PendingRequest& p : *batch) {
      p.promise.set_value(std::numeric_limits<float>::quiet_NaN());
    }
    return;
  }
  const Batch b = flush_arena_.MakeBatch();
  snap->model->Predict(b, &flush_probs_, &flush_ctx_);
  const auto now = std::chrono::steady_clock::now();
  for (size_t i = 0; i < batch->size(); ++i) {
    (*batch)[i].promise.set_value(flush_probs_[i]);
    LatencyHistogram()->Observe(
        std::chrono::duration<double, std::micro>(now - (*batch)[i].enqueued)
            .count());
  }
  RequestCounter()->Add(batch->size());
  FlushCounter()->Increment();
  BatchSizeHistogram()->Observe(static_cast<double>(batch->size()));
}

}  // namespace serve
}  // namespace optinter
