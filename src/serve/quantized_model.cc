#include "serve/quantized_model.h"

#include <cstring>

#include "models/interaction.h"
#include "nn/layers.h"
#include "obs/trace.h"
#include "tensor/int8.h"

namespace optinter {
namespace serve {

QuantizedFixedArchModel::QuantizedFixedArchModel(
    std::shared_ptr<const CtrModel> source, const FixedArchModel& fp32,
    QuantMode mode)
    : source_(std::move(source)),
      fp32_(fp32),
      mode_(mode),
      name_(fp32.Name() + "-" + QuantModeName(mode)),
      s1_(fp32.s1()),
      s2_(fp32.s2()),
      inter_dim_(fp32.inter_dim()),
      emb_cols_(fp32.feature_embedding().output_dim()),
      arch_(fp32.arch()),
      pair_fns_(fp32.pair_fns()),
      cat_pairs_(fp32.cat_pairs()),
      block_offset_(fp32.block_offsets()),
      mem_slot_(fp32.mem_slots()) {
  const FeatureEmbedding& emb = fp32.feature_embedding();
  cat_tables_.reserve(emb.num_categorical());
  for (size_t f = 0; f < emb.num_categorical(); ++f) {
    cat_tables_.emplace_back(emb.cat_table(f), mode_);
  }
  // Continuous tables are a single fp32 row each — nothing to compress,
  // and keeping them exact means the continuous path loses no precision.
  cont_rows_.resize(emb.num_continuous());
  for (size_t f = 0; f < emb.num_continuous(); ++f) {
    const float* row = emb.cont_table(f).Row(0);
    cont_rows_[f].assign(row, row + s1_);
  }
  if (const CrossEmbedding* cross = fp32.cross_embedding()) {
    cross_pairs_ = cross->pairs();
    cross_tables_.reserve(cross->num_pairs());
    for (size_t t = 0; t < cross->num_pairs(); ++t) {
      cross_tables_.emplace_back(cross->table(t), mode_);
    }
  }
  if (const TripleEmbedding* triple = fp32.triple_embedding()) {
    triple_idx_ = triple->triples();
    triple_tables_.reserve(triple->num_triples());
    for (size_t t = 0; t < triple->num_triples(); ++t) {
      triple_tables_.emplace_back(triple->table(t), mode_);
    }
  }
  if (mode_ == QuantMode::kInt8) {
    const Mlp& mlp = fp32.mlp();
    relus_.resize(mlp.config().hidden.size());
    qlinears_.reserve(mlp.linears().size());
    for (const Linear& lin : mlp.linears()) {
      QuantLinear q;
      q.in = lin.in_dim();
      q.out = lin.out_dim();
      q.qw.resize(q.out * q.in);
      q.w_scale.resize(q.out);
      q.w_rowsum.resize(q.out);
      QuantizeWeightsPerRow(lin.weight.value.data(), q.out, q.in,
                            q.qw.data(), q.w_scale.data(),
                            q.w_rowsum.data());
      q.bias.assign(lin.bias.value.data(),
                    lin.bias.value.data() + lin.bias.value.size());
      qlinears_.push_back(std::move(q));
    }
  }
}

float QuantizedFixedArchModel::TrainStep(const Batch& batch) {
  (void)batch;
  CHECK(false) << name_ << " is an inference-only quantized snapshot; "
                           "retrain the fp32 model and re-quantize";
  return 0.0f;
}

void QuantizedFixedArchModel::Predict(const Batch& batch,
                                      std::vector<float>* probs) {
  Predict(batch, probs, &ctx_);
}

void QuantizedFixedArchModel::GatherAssembleRow(const EncodedDataset& data,
                                                size_t row,
                                                float* zr) const {
  const size_t num_cat = cat_tables_.size();
  for (size_t f = 0; f < num_cat; ++f) {
    cat_tables_[f].DequantRow(data.cat(row, f), zr + f * s1_);
  }
  for (size_t f = 0; f < cont_rows_.size(); ++f) {
    const float v = data.cont(row, f);
    const float* src = cont_rows_[f].data();
    float* d = zr + (num_cat + f) * s1_;
    for (size_t t = 0; t < s1_; ++t) d[t] = src[t] * v;
  }
  for (size_t p = 0; p < arch_.size(); ++p) {
    switch (arch_[p]) {
      case InterMethod::kMemorize: {
        const size_t slot = mem_slot_[p];
        cross_tables_[slot].DequantRow(data.cross(row, cross_pairs_[slot]),
                                       zr + emb_cols_ + block_offset_[p]);
        break;
      }
      case InterMethod::kFactorize: {
        // Interactions run in fp32 over the DEQUANTIZED embeddings, so
        // they match what the MLP sees — same contract as the fp32 fused
        // path (interaction inputs == z's embedding columns).
        const auto [i, j] = cat_pairs_[p];
        FactorizedForward(pair_fns_[p], s1_, zr + i * s1_, zr + j * s1_,
                          zr + emb_cols_ + block_offset_[p]);
        break;
      }
      case InterMethod::kNaive:
        break;
    }
  }
  if (!triple_tables_.empty()) {
    float* dst =
        zr + emb_cols_ + inter_dim_ - triple_tables_.size() * s2_;
    for (size_t t = 0; t < triple_tables_.size(); ++t) {
      triple_tables_[t].DequantRow(data.triple(row, triple_idx_[t]),
                                   dst + t * s2_);
    }
  }
}

void QuantizedFixedArchModel::QuantLinearForward(const QuantLinear& layer,
                                                 const Tensor& x, Tensor* y,
                                                 QuantScratch* qs) const {
  const size_t m = x.rows();
  const size_t k = x.cols();
  CHECK_EQ(k, layer.in);
  qs->qa.resize(m * k);
  qs->a_scale.resize(m);
  qs->a_zp.resize(m);
  QuantizeActivationRows(x.data(), m, k, qs->qa.data(), qs->a_scale.data(),
                         qs->a_zp.data());
  y->Resize({m, layer.out});
  Int8GemmNT(qs->qa.data(), qs->a_scale.data(), qs->a_zp.data(),
             layer.qw.data(), layer.w_scale.data(), layer.w_rowsum.data(),
             layer.bias.data(), y->data(), m, k, layer.out);
}

void QuantizedFixedArchModel::MlpForwardInt8(const Tensor& z, Tensor* y,
                                             ForwardContext* ctx) const {
  OPTINTER_TRACE_SPAN("mlp_forward_int8");
  const Mlp& mlp = fp32_.mlp();
  const MlpConfig& cfg = mlp.config();
  const size_t n_hidden = cfg.hidden.size();
  MlpWorkspace* ws = &ctx->mlp;
  ws->relus.resize(n_hidden);
  ws->norms.resize(mlp.norms().size());
  // Same activation-slot layout as Mlp::Forward so buffer capacity is
  // retained across calls (steady-state zero allocation).
  const size_t per_hidden = cfg.layer_norm ? 3 : 2;
  ws->acts.resize(per_hidden * n_hidden + 1);
  const Tensor* cur = &z;
  size_t slot = 0;
  for (size_t li = 0; li < n_hidden; ++li) {
    Tensor& lin_out = ws->acts[slot++];
    QuantLinearForward(qlinears_[li], *cur, &lin_out, &ctx->quant);
    Tensor& act_out = ws->acts[slot++];
    relus_[li].Forward(lin_out, &act_out, &ws->relus[li]);
    cur = &act_out;
    if (cfg.layer_norm) {
      Tensor& normed = ws->acts[slot++];
      mlp.norms()[li].Forward(act_out, &normed, &ws->norms[li]);
      cur = &normed;
    }
  }
  QuantLinearForward(qlinears_[n_hidden], *cur, y, &ctx->quant);
}

void QuantizedFixedArchModel::Predict(const Batch& batch,
                                      std::vector<float>* probs,
                                      ForwardContext* ctx) const {
  OPTINTER_TRACE_SPAN("quantized_predict");
  const EncodedDataset& data = *batch.data;
  const size_t b = batch.size;
  Tensor& z = ctx->z;
  z.Resize({b, emb_cols_ + inter_dim_});
  for (size_t k = 0; k < b; ++k) {
    GatherAssembleRow(data, batch.rows[k], z.row(k));
  }
  if (mode_ == QuantMode::kInt8) {
    MlpForwardInt8(z, &ctx->mlp_out, ctx);
  } else {
    fp32_.mlp().Forward(z, &ctx->mlp_out, &ctx->mlp);
  }
  ctx->logits.resize(b);
  for (size_t k = 0; k < b; ++k) ctx->logits[k] = ctx->mlp_out.at(k, 0);
  probs->resize(b);
  SigmoidForward(ctx->logits.data(), b, probs->data());
}

size_t QuantizedFixedArchModel::EmbeddingBytes() const {
  // Backing rows, not logical vocab: QR/tiered sources stay compressed
  // through the snapshot, and StorageBytes counts the tiered remap too.
  size_t total = 0;
  for (const auto& t : cat_tables_) total += t.StorageBytes();
  for (const auto& t : cross_tables_) total += t.StorageBytes();
  for (const auto& t : triple_tables_) total += t.StorageBytes();
  return total;
}

size_t QuantizedFixedArchModel::Fp32EmbeddingBytes() const {
  // The fp32 footprint the snapshot replaced: same backing layout at
  // 4 bytes/value (the backend compression is credited separately by
  // comparing against dense layouts in bench/embedding_tradeoff.cc).
  size_t total = 0;
  for (const auto& t : cat_tables_) {
    total += t.backing_rows() * t.dim() * sizeof(float);
  }
  for (const auto& t : cross_tables_) {
    total += t.backing_rows() * t.dim() * sizeof(float);
  }
  for (const auto& t : triple_tables_) {
    total += t.backing_rows() * t.dim() * sizeof(float);
  }
  return total;
}

size_t QuantizedFixedArchModel::EmbeddingRows() const {
  size_t rows = 0;
  for (const auto& t : cat_tables_) rows += t.backing_rows();
  for (const auto& t : cross_tables_) rows += t.backing_rows();
  for (const auto& t : triple_tables_) rows += t.backing_rows();
  return rows;
}

}  // namespace serve
}  // namespace optinter
