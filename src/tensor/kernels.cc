#include "tensor/kernels.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>

#include "common/thread_pool.h"
#include "obs/trace.h"
#include "tensor/aligned.h"
#include "tensor/dispatch.h"
#include "tensor/simd.h"

namespace optinter {

const char* SimdBackendName() { return simd::kBackendName; }

namespace {

using simd::VecF;

constexpr size_t kL = simd::kLanes;

}  // namespace

// The GEMM implementations live in gemm_body.inc, compiled once per ISA
// variant (kernels_dispatch_*.cc) and reached through the runtime
// dispatch table — see dispatch.h for the selection policy. These
// wrappers keep the public API (and its trace spans) unchanged.

void GemmNN(const float* a, const float* b, float* c, size_t m, size_t k,
            size_t n, float alpha, float beta) {
  OPTINTER_TRACE_SPAN("gemm_nn");
  ActiveKernels().gemm_nn(a, b, c, m, k, n, alpha, beta);
}

void GemmNT(const float* a, const float* b, float* c, size_t m, size_t k,
            size_t n, float alpha, float beta) {
  OPTINTER_TRACE_SPAN("gemm_nt");
  ActiveKernels().gemm_nt(a, b, c, m, k, n, alpha, beta);
}

void GemmTN(const float* a, const float* b, float* c, size_t m, size_t k,
            size_t n, float alpha, float beta) {
  OPTINTER_TRACE_SPAN("gemm_tn");
  ActiveKernels().gemm_tn(a, b, c, m, k, n, alpha, beta);
}

namespace internal {

void GemmNNRef(const float* a, const float* b, float* c, size_t m, size_t k,
               size_t n, float alpha, float beta) {
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (size_t p = 0; p < k; ++p) acc += a[i * k + p] * b[p * n + j];
      const float base = beta == 0.0f ? 0.0f : beta * c[i * n + j];
      c[i * n + j] = base + alpha * acc;
    }
  }
}

void GemmNTRef(const float* a, const float* b, float* c, size_t m, size_t k,
               size_t n, float alpha, float beta) {
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (size_t p = 0; p < k; ++p) acc += a[i * k + p] * b[j * k + p];
      const float base = beta == 0.0f ? 0.0f : beta * c[i * n + j];
      c[i * n + j] = base + alpha * acc;
    }
  }
}

void GemmTNRef(const float* a, const float* b, float* c, size_t m, size_t k,
               size_t n, float alpha, float beta) {
  for (size_t p = 0; p < k; ++p) {
    for (size_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (size_t i = 0; i < m; ++i) acc += a[i * k + p] * b[i * n + j];
      const float base = beta == 0.0f ? 0.0f : beta * c[p * n + j];
      c[p * n + j] = base + alpha * acc;
    }
  }
}

}  // namespace internal

void Axpy(size_t n, float alpha, const float* x, float* y) {
  const VecF av = simd::Set1(alpha);
  size_t i = 0;
  for (; i + kL <= n; i += kL) {
    simd::StoreU(y + i,
                 simd::MulAdd(av, simd::LoadU(x + i), simd::LoadU(y + i)));
  }
  for (; i < n; ++i) y[i] = simd::MulAddScalar(alpha, x[i], y[i]);
}

void Scale(size_t n, float alpha, float* x) {
  const VecF av = simd::Set1(alpha);
  size_t i = 0;
  for (; i + kL <= n; i += kL) {
    simd::StoreU(x + i, simd::Mul(av, simd::LoadU(x + i)));
  }
  for (; i < n; ++i) x[i] = alpha * x[i];
}

float Dot(size_t n, const float* x, const float* y) {
  // Four independent accumulator chains hide FMA latency; the combination
  // order (acc0+acc1)+(acc2+acc3) and the lane tree inside ReduceAdd are
  // fixed, so the result depends only on n and the values.
  VecF a0 = simd::Zero(), a1 = simd::Zero(), a2 = simd::Zero(),
       a3 = simd::Zero();
  size_t i = 0;
  for (; i + 4 * kL <= n; i += 4 * kL) {
    a0 = simd::MulAdd(simd::LoadU(x + i), simd::LoadU(y + i), a0);
    a1 = simd::MulAdd(simd::LoadU(x + i + kL), simd::LoadU(y + i + kL), a1);
    a2 = simd::MulAdd(simd::LoadU(x + i + 2 * kL),
                      simd::LoadU(y + i + 2 * kL), a2);
    a3 = simd::MulAdd(simd::LoadU(x + i + 3 * kL),
                      simd::LoadU(y + i + 3 * kL), a3);
  }
  for (; i + kL <= n; i += kL) {
    a0 = simd::MulAdd(simd::LoadU(x + i), simd::LoadU(y + i), a0);
  }
  float acc =
      simd::ReduceAdd(simd::Add(simd::Add(a0, a1), simd::Add(a2, a3)));
  for (; i < n; ++i) acc = simd::MulAddScalar(x[i], y[i], acc);
  return acc;
}

void Hadamard(size_t n, const float* x, const float* y, float* out) {
  size_t i = 0;
  for (; i + kL <= n; i += kL) {
    simd::StoreU(out + i, simd::Mul(simd::LoadU(x + i), simd::LoadU(y + i)));
  }
  for (; i < n; ++i) out[i] = x[i] * y[i];
}

void HadamardAccum(size_t n, const float* x, const float* y, float* out) {
  size_t i = 0;
  for (; i + kL <= n; i += kL) {
    simd::StoreU(out + i, simd::MulAdd(simd::LoadU(x + i), simd::LoadU(y + i),
                                       simd::LoadU(out + i)));
  }
  for (; i < n; ++i) out[i] = simd::MulAddScalar(x[i], y[i], out[i]);
}

float Sum(size_t n, const float* x) {
  VecF a0 = simd::Zero(), a1 = simd::Zero();
  size_t i = 0;
  for (; i + 2 * kL <= n; i += 2 * kL) {
    a0 = simd::Add(a0, simd::LoadU(x + i));
    a1 = simd::Add(a1, simd::LoadU(x + i + kL));
  }
  for (; i + kL <= n; i += kL) a0 = simd::Add(a0, simd::LoadU(x + i));
  float acc = simd::ReduceAdd(simd::Add(a0, a1));
  for (; i < n; ++i) acc += x[i];
  return acc;
}

void Softmax(size_t n, const float* logits, float* probs) {
  // Same contract as LogSumExp: an empty input is a programmer error, not
  // a silent no-op (a silent return here once masked empty-candidate bugs
  // upstream while LogSumExp aborted on the identical input).
  //
  // Deliberately scalar: callers pass interaction-choice distributions
  // (n == 3), far below any width where vectorizing pays.
  CHECK_GT(n, 0u);
  float max_v = logits[0];
  for (size_t i = 1; i < n; ++i) max_v = std::max(max_v, logits[i]);
  float total = 0.0f;
  for (size_t i = 0; i < n; ++i) {
    probs[i] = std::exp(logits[i] - max_v);
    total += probs[i];
  }
  const float inv = 1.0f / total;
  for (size_t i = 0; i < n; ++i) probs[i] *= inv;
}

float LogSumExp(size_t n, const float* x) {
  CHECK_GT(n, 0u);
  float max_v = x[0];
  for (size_t i = 1; i < n; ++i) max_v = std::max(max_v, x[i]);
  float total = 0.0f;
  for (size_t i = 0; i < n; ++i) total += std::exp(x[i] - max_v);
  return max_v + std::log(total);
}

void MatMul(const Tensor& a, const Tensor& b, Tensor* c) {
  CHECK_EQ(a.cols(), b.rows());
  c->Resize({a.rows(), b.cols()});
  GemmNN(a.data(), b.data(), c->data(), a.rows(), a.cols(), b.cols());
}

void MatMulNT(const Tensor& a, const Tensor& b, Tensor* c) {
  CHECK_EQ(a.cols(), b.cols());
  c->Resize({a.rows(), b.rows()});
  GemmNT(a.data(), b.data(), c->data(), a.rows(), a.cols(), b.rows());
}

void MatMulTN(const Tensor& a, const Tensor& b, Tensor* c) {
  CHECK_EQ(a.rows(), b.rows());
  c->Resize({a.cols(), b.cols()});
  GemmTN(a.data(), b.data(), c->data(), a.rows(), a.cols(), b.cols());
}

}  // namespace optinter
