#include "tensor/kernels.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "common/thread_pool.h"
#include "obs/trace.h"

namespace optinter {

namespace {

// Row-block threshold above which GEMMs are parallelized. Tuned for the
// batch sizes used in the benches (hundreds to a few thousand rows).
constexpr size_t kParallelFlops = 1u << 21;

inline void ScaleRows(float* c, size_t m, size_t n, float beta) {
  if (beta == 0.0f) {
    std::memset(c, 0, m * n * sizeof(float));
  } else if (beta != 1.0f) {
    Scale(m * n, beta, c);
  }
}

void GemmNNRange(const float* a, const float* b, float* c, size_t lo,
                 size_t hi, size_t k, size_t n, float alpha) {
  for (size_t i = lo; i < hi; ++i) {
    const float* ai = a + i * k;
    float* ci = c + i * n;
    for (size_t p = 0; p < k; ++p) {
      const float av = alpha * ai[p];
      if (av == 0.0f) continue;
      const float* bp = b + p * n;
      for (size_t j = 0; j < n; ++j) ci[j] += av * bp[j];
    }
  }
}

void GemmNTRange(const float* a, const float* b, float* c, size_t lo,
                 size_t hi, size_t k, size_t n, float alpha) {
  for (size_t i = lo; i < hi; ++i) {
    const float* ai = a + i * k;
    float* ci = c + i * n;
    for (size_t j = 0; j < n; ++j) {
      ci[j] += alpha * Dot(k, ai, b + j * k);
    }
  }
}

/// y += a * x over n elements, 4-way unrolled to match Dot.
inline void AxpyUnrolled(size_t n, float a, const float* x, float* y) {
  size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    y[j] += a * x[j];
    y[j + 1] += a * x[j + 1];
    y[j + 2] += a * x[j + 2];
    y[j + 3] += a * x[j + 3];
  }
  for (; j < n; ++j) y[j] += a * x[j];
}

void GemmTNRange(const float* a, const float* b, float* c, size_t lo,
                 size_t hi, size_t k, size_t n, float alpha) {
  // Accumulates rows [lo, hi) of A/B as outer products into C[k×n].
  for (size_t i = lo; i < hi; ++i) {
    const float* ai = a + i * k;
    const float* bi = b + i * n;
    for (size_t p = 0; p < k; ++p) {
      const float av = alpha * ai[p];
      if (av == 0.0f) continue;
      AxpyUnrolled(n, av, bi, c + p * n);
    }
  }
}

}  // namespace

void GemmNN(const float* a, const float* b, float* c, size_t m, size_t k,
            size_t n, float alpha, float beta) {
  OPTINTER_TRACE_SPAN("gemm_nn");
  ScaleRows(c, m, n, beta);
  if (m * k * n >= kParallelFlops && m > 1) {
    ParallelForChunks(0, m, [&](size_t lo, size_t hi) {
      GemmNNRange(a, b, c, lo, hi, k, n, alpha);
    }, /*min_chunk=*/8);
  } else {
    GemmNNRange(a, b, c, 0, m, k, n, alpha);
  }
}

void GemmNT(const float* a, const float* b, float* c, size_t m, size_t k,
            size_t n, float alpha, float beta) {
  OPTINTER_TRACE_SPAN("gemm_nt");
  ScaleRows(c, m, n, beta);
  if (m * k * n >= kParallelFlops && m > 1) {
    ParallelForChunks(0, m, [&](size_t lo, size_t hi) {
      GemmNTRange(a, b, c, lo, hi, k, n, alpha);
    }, /*min_chunk=*/8);
  } else {
    GemmNTRange(a, b, c, 0, m, k, n, alpha);
  }
}

void GemmTN(const float* a, const float* b, float* c, size_t m, size_t k,
            size_t n, float alpha, float beta) {
  OPTINTER_TRACE_SPAN("gemm_tn");
  // C[k×n] = A^T[k×m] * B[m×n]; accumulate row-of-A outer products.
  //
  // Unlike the NN/NT variants, every row of A touches every row of C, so
  // row-blocking over m uses per-chunk private accumulators. The chunk
  // grid is fixed (a pure function of m) and the partials are combined by
  // a tree whose shape depends only on the chunk count, so the result is
  // bit-identical at any thread count — the determinism contract the
  // train-step identity tests rely on (DESIGN.md §threading).
  ScaleRows(c, k, n, beta);
  if (m * k * n < kParallelFlops || m <= 1) {
    GemmTNRange(a, b, c, 0, m, k, n, alpha);
    return;
  }
  // Few large chunks: every chunk pays O(k·n) to zero its private
  // accumulator and the reduce is O(count·k·n), so many small chunks
  // would drown the O(m·k·n) useful work.
  const FixedChunks grid = MakeFixedChunks(m, /*min_chunk=*/32,
                                           /*max_chunks=*/8);
  if (grid.count == 1) {
    GemmTNRange(a, b, c, 0, m, k, n, alpha);
    return;
  }
  const size_t cells = k * n;
  // Caller-thread-local accumulator buffer: assign() reuses capacity so
  // repeated same-shape GEMMs (steady-state training) never allocate. The
  // raw pointer is hoisted and captured by value because lambdas don't
  // capture thread_locals — workers must write the caller's buffer, not
  // their own empty one.
  static thread_local std::vector<float> partials_tls;
  partials_tls.assign(grid.count * cells, 0.0f);
  float* const partials = partials_tls.data();
  ParallelForEachChunk(grid, [&, partials](size_t i) {
    GemmTNRange(a, b, partials + i * cells, grid.lo(i), grid.hi(i),
                k, n, alpha);
  });
  // Tree reduce: fold partial (i + stride) into partial i, doubling the
  // stride. Each level's folds write disjoint partials, so they can fan
  // out across the pool without changing the summation tree.
  for (size_t stride = 1; stride < grid.count; stride *= 2) {
    const size_t step = 2 * stride;
    const size_t folds = grid.count > stride ? (grid.count - stride + step - 1) / step : 0;
    ParallelFor(0, folds, [&, partials](size_t f) {
      float* dst = partials + f * step * cells;
      const float* src = dst + stride * cells;
      for (size_t idx = 0; idx < cells; ++idx) dst[idx] += src[idx];
    }, /*grain=*/1);
  }
  const float* root = partials;
  for (size_t idx = 0; idx < cells; ++idx) c[idx] += root[idx];
}

void Axpy(size_t n, float alpha, const float* x, float* y) {
  for (size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void Scale(size_t n, float alpha, float* x) {
  for (size_t i = 0; i < n; ++i) x[i] *= alpha;
}

float Dot(size_t n, const float* x, const float* y) {
  float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc0 += x[i] * y[i];
    acc1 += x[i + 1] * y[i + 1];
    acc2 += x[i + 2] * y[i + 2];
    acc3 += x[i + 3] * y[i + 3];
  }
  float acc = acc0 + acc1 + acc2 + acc3;
  for (; i < n; ++i) acc += x[i] * y[i];
  return acc;
}

void Hadamard(size_t n, const float* x, const float* y, float* out) {
  for (size_t i = 0; i < n; ++i) out[i] = x[i] * y[i];
}

void HadamardAccum(size_t n, const float* x, const float* y, float* out) {
  for (size_t i = 0; i < n; ++i) out[i] += x[i] * y[i];
}

float Sum(size_t n, const float* x) {
  float acc = 0.0f;
  for (size_t i = 0; i < n; ++i) acc += x[i];
  return acc;
}

void Softmax(size_t n, const float* logits, float* probs) {
  // Same contract as LogSumExp: an empty input is a programmer error, not
  // a silent no-op (a silent return here once masked empty-candidate bugs
  // upstream while LogSumExp aborted on the identical input).
  CHECK_GT(n, 0u);
  float max_v = logits[0];
  for (size_t i = 1; i < n; ++i) max_v = std::max(max_v, logits[i]);
  float total = 0.0f;
  for (size_t i = 0; i < n; ++i) {
    probs[i] = std::exp(logits[i] - max_v);
    total += probs[i];
  }
  const float inv = 1.0f / total;
  for (size_t i = 0; i < n; ++i) probs[i] *= inv;
}

float LogSumExp(size_t n, const float* x) {
  CHECK_GT(n, 0u);
  float max_v = x[0];
  for (size_t i = 1; i < n; ++i) max_v = std::max(max_v, x[i]);
  float total = 0.0f;
  for (size_t i = 0; i < n; ++i) total += std::exp(x[i] - max_v);
  return max_v + std::log(total);
}

void MatMul(const Tensor& a, const Tensor& b, Tensor* c) {
  CHECK_EQ(a.cols(), b.rows());
  c->Resize({a.rows(), b.cols()});
  GemmNN(a.data(), b.data(), c->data(), a.rows(), a.cols(), b.cols());
}

void MatMulNT(const Tensor& a, const Tensor& b, Tensor* c) {
  CHECK_EQ(a.cols(), b.cols());
  c->Resize({a.rows(), b.rows()});
  GemmNT(a.data(), b.data(), c->data(), a.rows(), a.cols(), b.rows());
}

void MatMulTN(const Tensor& a, const Tensor& b, Tensor* c) {
  CHECK_EQ(a.rows(), b.rows());
  c->Resize({a.cols(), b.cols()});
  GemmTN(a.data(), b.data(), c->data(), a.rows(), a.cols(), b.cols());
}

}  // namespace optinter
