#include "tensor/kernels.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>

#include "common/thread_pool.h"
#include "obs/trace.h"
#include "tensor/aligned.h"
#include "tensor/simd.h"

namespace optinter {

const char* SimdBackendName() { return simd::kBackendName; }

namespace {

using simd::VecF;

// Row-block threshold above which GEMMs are parallelized. Tuned for the
// batch sizes used in the benches (hundreds to a few thousand rows).
constexpr size_t kParallelFlops = 1u << 21;

// Micro-kernel tile: kMR rows of C by kNR columns, held in kMR × kNB vector
// accumulator registers across the whole reduction block. 6×16 on AVX2
// (12 accumulators + 2 B vectors + 1 broadcast = 15 of 16 ymm), 6×8 on the
// 4-lane backends, 4×4 scalar (a plain register-blocked loop nest).
constexpr size_t kL = simd::kLanes;
constexpr size_t kMR = (kL == 1) ? 4 : 6;
constexpr size_t kNR = (kL == 1) ? 4 : 2 * kL;
constexpr size_t kNB = kNR / kL;

// Reduction (k) blocking: bounds the packed A micro-panel (kKC·kMR floats,
// 6 KB) and keeps the active B panel slice (kKC·kNR floats, 16 KB on AVX2)
// L1-resident while C tiles sit in registers. The block grid is a pure
// function of the reduction length, so the per-element accumulation order —
// and therefore every output bit — is independent of threading.
constexpr size_t kKC = 256;

// Packed path pays O(k·n) packing; it wins once panels are full-width and
// the reduction is deep enough to amortize. Shape-only predicate: both the
// packed and fallback paths are deterministic, but they round differently,
// so the choice must never depend on thread count or values.
inline bool UsePackedPath(size_t k, size_t n) { return n >= kNR && k >= 8; }

inline void ScaleRows(float* c, size_t m, size_t n, float beta) {
  if (beta == 0.0f) {
    std::memset(c, 0, m * n * sizeof(float));
  } else if (beta != 1.0f) {
    Scale(m * n, beta, c);
  }
}

// ---------------------------------------------------------------------------
// Packing.
// ---------------------------------------------------------------------------

// Packs rows [r0, r0+kk) of row-major b (row stride ldb, n logical columns)
// into kNR-column panels: panel jp holds columns [jp·kNR, jp·kNR+kNR) as kk
// consecutive rows of kNR floats, zero-padded past column n. Returns the
// calling thread's reusable buffer (capacity is kept across calls, so
// steady-state training never allocates here).
float* PackBPanels(const float* b, size_t ldb, size_t r0, size_t kk,
                   size_t n) {
  static thread_local AlignedVector<float> buf;
  const size_t panels = (n + kNR - 1) / kNR;
  buf.resize(panels * kk * kNR);
  float* dst = buf.data();
  assert(IsTensorAligned(dst));
  for (size_t jp = 0; jp < panels; ++jp) {
    const size_t j0 = jp * kNR;
    const size_t nr = std::min(kNR, n - j0);
    float* pd = dst + jp * kk * kNR;
    if (nr == kNR) {
      for (size_t p = 0; p < kk; ++p) {
        std::memcpy(pd + p * kNR, b + (r0 + p) * ldb + j0,
                    kNR * sizeof(float));
      }
    } else {
      for (size_t p = 0; p < kk; ++p) {
        const float* src = b + (r0 + p) * ldb + j0;
        float* row = pd + p * kNR;
        for (size_t jj = 0; jj < nr; ++jj) row[jj] = src[jj];
        for (size_t jj = nr; jj < kNR; ++jj) row[jj] = 0.0f;
      }
    }
  }
  return dst;
}

// Same panel layout, but the logical B[k×n] is given as its transpose
// b[n×k] (GemmNT's weight matrix). Strided gathers, paid once per call.
float* PackBPanelsFromT(const float* b, size_t ldb, size_t kk, size_t n) {
  static thread_local AlignedVector<float> buf;
  const size_t panels = (n + kNR - 1) / kNR;
  buf.resize(panels * kk * kNR);
  float* dst = buf.data();
  assert(IsTensorAligned(dst));
  for (size_t jp = 0; jp < panels; ++jp) {
    const size_t j0 = jp * kNR;
    const size_t nr = std::min(kNR, n - j0);
    float* pd = dst + jp * kk * kNR;
    for (size_t jj = 0; jj < nr; ++jj) {
      const float* src = b + (j0 + jj) * ldb;
      for (size_t p = 0; p < kk; ++p) pd[p * kNR + jj] = src[p];
    }
    for (size_t jj = nr; jj < kNR; ++jj) {
      for (size_t p = 0; p < kk; ++p) pd[p * kNR + jj] = 0.0f;
    }
  }
  return dst;
}

// A micro-panel for rows [i0, i0+mr) of row-major a (row stride lda),
// reduction slice [p0, p0+kc), with alpha folded in (exact for the common
// alpha == 1). Layout: apack[p·kMR + r]. Rows past mr are zero so the
// micro-kernel always computes a full kMR tile; the garbage rows are never
// stored back.
inline void PackARows(const float* a, size_t lda, size_t i0, size_t mr,
                      size_t p0, size_t kc, float alpha, float* apack) {
  for (size_t r = 0; r < mr; ++r) {
    const float* src = a + (i0 + r) * lda + p0;
    for (size_t p = 0; p < kc; ++p) apack[p * kMR + r] = alpha * src[p];
  }
  for (size_t r = mr; r < kMR; ++r) {
    for (size_t p = 0; p < kc; ++p) apack[p * kMR + r] = 0.0f;
  }
}

// A micro-panel for the transposed case (GemmTN): C's rows are columns of
// a[rows × lda]; reduction runs over a's rows [r0+p0, r0+p0+kc). Reads are
// contiguous per reduction row.
inline void PackACols(const float* a, size_t lda, size_t r0, size_t i0,
                      size_t mr, size_t p0, size_t kc, float alpha,
                      float* apack) {
  for (size_t p = 0; p < kc; ++p) {
    const float* src = a + (r0 + p0 + p) * lda + i0;
    float* dst = apack + p * kMR;
    for (size_t r = 0; r < mr; ++r) dst[r] = alpha * src[r];
    for (size_t r = mr; r < kMR; ++r) dst[r] = 0.0f;
  }
}

// ---------------------------------------------------------------------------
// Register-tiled micro-kernel and the packed-GEMM row driver.
// ---------------------------------------------------------------------------

// acc_out[kMR×kNR] = sum_p apack[p·kMR+r] · bpanel[p·kNR+j]. Accumulators
// stay in registers for the whole kc sweep; each C row's sum is produced by
// its own accumulator chain in ascending-p order, so a row's bits are
// independent of which rows share its tile — the property that makes row
// chunking bit-invariant.
inline void MicroKernel(const float* apack, const float* bpanel, size_t kc,
                        float* acc_out) {
  VecF acc[kMR][kNB];
  for (size_t r = 0; r < kMR; ++r) {
    for (size_t t = 0; t < kNB; ++t) acc[r][t] = simd::Zero();
  }
  for (size_t p = 0; p < kc; ++p) {
    VecF bv[kNB];
    for (size_t t = 0; t < kNB; ++t) {
      bv[t] = simd::LoadU(bpanel + p * kNR + t * kL);
    }
    const float* ap = apack + p * kMR;
    for (size_t r = 0; r < kMR; ++r) {
      const VecF av = simd::Set1(ap[r]);
      for (size_t t = 0; t < kNB; ++t) {
        acc[r][t] = simd::MulAdd(av, bv[t], acc[r][t]);
      }
    }
  }
  for (size_t r = 0; r < kMR; ++r) {
    for (size_t t = 0; t < kNB; ++t) {
      simd::StoreU(acc_out + r * kNR + t * kL, acc[r][t]);
    }
  }
}

// Accumulates alpha·A_slice·B into C rows [lo, hi) (row stride n), with B
// already packed over the full reduction length kk. pack_a(i0, mr, p0, kc,
// apack) fills the A micro-panel for one row group and reduction block.
template <typename PackAFn>
void PackedGemmRows(PackAFn&& pack_a, const float* bpack, float* c, size_t lo,
                    size_t hi, size_t kk, size_t n) {
  static thread_local AlignedVector<float> apack_tls;
  apack_tls.resize(std::min(kk, kKC) * kMR);
  float* const apack = apack_tls.data();
  assert(IsTensorAligned(apack));
  alignas(kTensorAlignment) float acc[kMR * kNR];
  const size_t panels = (n + kNR - 1) / kNR;
  for (size_t i0 = lo; i0 < hi; i0 += kMR) {
    const size_t mr = std::min(kMR, hi - i0);
    for (size_t p0 = 0; p0 < kk; p0 += kKC) {
      const size_t kc = std::min(kKC, kk - p0);
      pack_a(i0, mr, p0, kc, apack);
      for (size_t jp = 0; jp < panels; ++jp) {
        const size_t j0 = jp * kNR;
        const size_t nr = std::min(kNR, n - j0);
        MicroKernel(apack, bpack + (jp * kk + p0) * kNR, kc, acc);
        for (size_t r = 0; r < mr; ++r) {
          float* crow = c + (i0 + r) * n + j0;
          const float* arow = acc + r * kNR;
          if (nr == kNR) {
            for (size_t t = 0; t < kNB; ++t) {
              simd::StoreU(crow + t * kL,
                           simd::Add(simd::LoadU(crow + t * kL),
                                     simd::LoadU(arow + t * kL)));
            }
          } else {
            for (size_t jj = 0; jj < nr; ++jj) crow[jj] += arow[jj];
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Fallback ranges for shapes too small/narrow to pack. Vectorized where the
// access pattern allows; per-row work only, so row chunking stays
// bit-invariant. (The old zero-skip branch is gone: it broke FLOP-count
// predictability and cost a compare per element on dense data for a case —
// exactly-zero activations at k-scale — that ReLU makes rare, not common,
// after the first optimizer step.)
// ---------------------------------------------------------------------------

void SimpleNNRange(const float* a, const float* b, float* c, size_t lo,
                   size_t hi, size_t k, size_t n, float alpha) {
  for (size_t i = lo; i < hi; ++i) {
    const float* ai = a + i * k;
    float* ci = c + i * n;
    for (size_t p = 0; p < k; ++p) {
      const float av = alpha * ai[p];
      const float* bp = b + p * n;
      const VecF avv = simd::Set1(av);
      size_t j = 0;
      for (; j + kL <= n; j += kL) {
        simd::StoreU(ci + j,
                     simd::MulAdd(avv, simd::LoadU(bp + j),
                                  simd::LoadU(ci + j)));
      }
      for (; j < n; ++j) ci[j] = simd::MulAddScalar(av, bp[j], ci[j]);
    }
  }
}

void SimpleNTRange(const float* a, const float* b, float* c, size_t lo,
                   size_t hi, size_t k, size_t n, float alpha) {
  for (size_t i = lo; i < hi; ++i) {
    const float* ai = a + i * k;
    float* ci = c + i * n;
    for (size_t j = 0; j < n; ++j) {
      ci[j] += alpha * Dot(k, ai, b + j * k);
    }
  }
}

void SimpleTNRange(const float* a, const float* b, float* c, size_t lo,
                   size_t hi, size_t k, size_t n, float alpha) {
  // Accumulates rows [lo, hi) of A/B as outer products into C[k×n].
  for (size_t i = lo; i < hi; ++i) {
    const float* ai = a + i * k;
    const float* bi = b + i * n;
    for (size_t p = 0; p < k; ++p) {
      const float av = alpha * ai[p];
      float* cp = c + p * n;
      const VecF avv = simd::Set1(av);
      size_t j = 0;
      for (; j + kL <= n; j += kL) {
        simd::StoreU(cp + j,
                     simd::MulAdd(avv, simd::LoadU(bi + j),
                                  simd::LoadU(cp + j)));
      }
      for (; j < n; ++j) cp[j] = simd::MulAddScalar(av, bi[j], cp[j]);
    }
  }
}

// One GemmTN chunk: accumulate rows [lo, hi) of A/B into dst[k×n] (either C
// itself or a private partial). Path choice depends only on (hi-lo, n) and
// the chunk grid is a pure function of m, so it is thread-count-invariant.
void GemmTNChunk(const float* a, const float* b, float* dst, size_t lo,
                 size_t hi, size_t k, size_t n, float alpha) {
  const size_t kk = hi - lo;
  if (UsePackedPath(kk, n)) {
    const float* bpack = PackBPanels(b, n, lo, kk, n);
    PackedGemmRows(
        [=](size_t i0, size_t mr, size_t p0, size_t kc, float* apack) {
          PackACols(a, k, lo, i0, mr, p0, kc, alpha, apack);
        },
        bpack, dst, 0, k, kk, n);
  } else {
    SimpleTNRange(a, b, dst, lo, hi, k, n, alpha);
  }
}

}  // namespace

void GemmNN(const float* a, const float* b, float* c, size_t m, size_t k,
            size_t n, float alpha, float beta) {
  OPTINTER_TRACE_SPAN("gemm_nn");
  ScaleRows(c, m, n, beta);
  if (m == 0 || n == 0 || k == 0 || alpha == 0.0f) return;
  const bool parallel = m * k * n >= kParallelFlops && m > 1;
  if (UsePackedPath(k, n)) {
    // B is packed once on the calling thread; row chunks share it
    // read-only. A micro-panels live in per-worker thread-local buffers.
    const float* bpack = PackBPanels(b, n, 0, k, n);
    auto rows = [=](size_t lo, size_t hi) {
      PackedGemmRows(
          [=](size_t i0, size_t mr, size_t p0, size_t kc, float* apack) {
            PackARows(a, k, i0, mr, p0, kc, alpha, apack);
          },
          bpack, c, lo, hi, k, n);
    };
    if (parallel) {
      ParallelForChunks(0, m, rows, /*min_chunk=*/8);
    } else {
      rows(0, m);
    }
  } else {
    auto rows = [=](size_t lo, size_t hi) {
      SimpleNNRange(a, b, c, lo, hi, k, n, alpha);
    };
    if (parallel) {
      ParallelForChunks(0, m, rows, /*min_chunk=*/8);
    } else {
      rows(0, m);
    }
  }
}

void GemmNT(const float* a, const float* b, float* c, size_t m, size_t k,
            size_t n, float alpha, float beta) {
  OPTINTER_TRACE_SPAN("gemm_nt");
  ScaleRows(c, m, n, beta);
  if (m == 0 || n == 0 || k == 0 || alpha == 0.0f) return;
  const bool parallel = m * k * n >= kParallelFlops && m > 1;
  if (UsePackedPath(k, n)) {
    // Packing transposes B^T back into k-major panels, so the micro-kernel
    // is identical to the NN case from here on.
    const float* bpack = PackBPanelsFromT(b, k, k, n);
    auto rows = [=](size_t lo, size_t hi) {
      PackedGemmRows(
          [=](size_t i0, size_t mr, size_t p0, size_t kc, float* apack) {
            PackARows(a, k, i0, mr, p0, kc, alpha, apack);
          },
          bpack, c, lo, hi, k, n);
    };
    if (parallel) {
      ParallelForChunks(0, m, rows, /*min_chunk=*/8);
    } else {
      rows(0, m);
    }
  } else {
    auto rows = [=](size_t lo, size_t hi) {
      SimpleNTRange(a, b, c, lo, hi, k, n, alpha);
    };
    if (parallel) {
      ParallelForChunks(0, m, rows, /*min_chunk=*/8);
    } else {
      rows(0, m);
    }
  }
}

void GemmTN(const float* a, const float* b, float* c, size_t m, size_t k,
            size_t n, float alpha, float beta) {
  OPTINTER_TRACE_SPAN("gemm_tn");
  // C[k×n] = A^T[k×m] * B[m×n]; accumulate row-of-A outer products.
  //
  // Unlike the NN/NT variants, every row of A touches every row of C, so
  // row-blocking over m uses per-chunk private accumulators. The chunk
  // grid is fixed (a pure function of m) and the partials are combined by
  // a tree whose shape depends only on the chunk count, so the result is
  // bit-identical at any thread count — the determinism contract the
  // train-step identity tests rely on (DESIGN.md §5).
  ScaleRows(c, k, n, beta);
  if (m == 0 || n == 0 || k == 0 || alpha == 0.0f) return;
  if (m * k * n < kParallelFlops || m <= 1) {
    GemmTNChunk(a, b, c, 0, m, k, n, alpha);
    return;
  }
  // Few large chunks: every chunk pays O(k·n) to zero its private
  // accumulator and the reduce is O(count·k·n), so many small chunks
  // would drown the O(m·k·n) useful work.
  const FixedChunks grid = MakeFixedChunks(m, /*min_chunk=*/32,
                                           /*max_chunks=*/8);
  if (grid.count == 1) {
    GemmTNChunk(a, b, c, 0, m, k, n, alpha);
    return;
  }
  const size_t cells = k * n;
  // Caller-thread-local accumulator buffer: assign() reuses capacity so
  // repeated same-shape GEMMs (steady-state training) never allocate. The
  // raw pointer is hoisted and captured by value because lambdas don't
  // capture thread_locals — workers must write the caller's buffer, not
  // their own empty one.
  static thread_local AlignedVector<float> partials_tls;
  partials_tls.assign(grid.count * cells, 0.0f);
  float* const partials = partials_tls.data();
  ParallelForEachChunk(grid, [&, partials](size_t i) {
    GemmTNChunk(a, b, partials + i * cells, grid.lo(i), grid.hi(i), k, n,
                alpha);
  });
  // Tree reduce: fold partial (i + stride) into partial i, doubling the
  // stride. Each level's folds write disjoint partials, so they can fan
  // out across the pool without changing the summation tree.
  for (size_t stride = 1; stride < grid.count; stride *= 2) {
    const size_t step = 2 * stride;
    const size_t folds = grid.count > stride ? (grid.count - stride + step - 1) / step : 0;
    ParallelFor(0, folds, [&, partials](size_t f) {
      float* dst = partials + f * step * cells;
      const float* src = dst + stride * cells;
      for (size_t idx = 0; idx < cells; ++idx) dst[idx] += src[idx];
    }, /*grain=*/1);
  }
  const float* root = partials;
  for (size_t idx = 0; idx < cells; ++idx) c[idx] += root[idx];
}

namespace internal {

void GemmNNRef(const float* a, const float* b, float* c, size_t m, size_t k,
               size_t n, float alpha, float beta) {
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (size_t p = 0; p < k; ++p) acc += a[i * k + p] * b[p * n + j];
      const float base = beta == 0.0f ? 0.0f : beta * c[i * n + j];
      c[i * n + j] = base + alpha * acc;
    }
  }
}

void GemmNTRef(const float* a, const float* b, float* c, size_t m, size_t k,
               size_t n, float alpha, float beta) {
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (size_t p = 0; p < k; ++p) acc += a[i * k + p] * b[j * k + p];
      const float base = beta == 0.0f ? 0.0f : beta * c[i * n + j];
      c[i * n + j] = base + alpha * acc;
    }
  }
}

void GemmTNRef(const float* a, const float* b, float* c, size_t m, size_t k,
               size_t n, float alpha, float beta) {
  for (size_t p = 0; p < k; ++p) {
    for (size_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (size_t i = 0; i < m; ++i) acc += a[i * k + p] * b[i * n + j];
      const float base = beta == 0.0f ? 0.0f : beta * c[p * n + j];
      c[p * n + j] = base + alpha * acc;
    }
  }
}

}  // namespace internal

void Axpy(size_t n, float alpha, const float* x, float* y) {
  const VecF av = simd::Set1(alpha);
  size_t i = 0;
  for (; i + kL <= n; i += kL) {
    simd::StoreU(y + i,
                 simd::MulAdd(av, simd::LoadU(x + i), simd::LoadU(y + i)));
  }
  for (; i < n; ++i) y[i] = simd::MulAddScalar(alpha, x[i], y[i]);
}

void Scale(size_t n, float alpha, float* x) {
  const VecF av = simd::Set1(alpha);
  size_t i = 0;
  for (; i + kL <= n; i += kL) {
    simd::StoreU(x + i, simd::Mul(av, simd::LoadU(x + i)));
  }
  for (; i < n; ++i) x[i] = alpha * x[i];
}

float Dot(size_t n, const float* x, const float* y) {
  // Four independent accumulator chains hide FMA latency; the combination
  // order (acc0+acc1)+(acc2+acc3) and the lane tree inside ReduceAdd are
  // fixed, so the result depends only on n and the values.
  VecF a0 = simd::Zero(), a1 = simd::Zero(), a2 = simd::Zero(),
       a3 = simd::Zero();
  size_t i = 0;
  for (; i + 4 * kL <= n; i += 4 * kL) {
    a0 = simd::MulAdd(simd::LoadU(x + i), simd::LoadU(y + i), a0);
    a1 = simd::MulAdd(simd::LoadU(x + i + kL), simd::LoadU(y + i + kL), a1);
    a2 = simd::MulAdd(simd::LoadU(x + i + 2 * kL),
                      simd::LoadU(y + i + 2 * kL), a2);
    a3 = simd::MulAdd(simd::LoadU(x + i + 3 * kL),
                      simd::LoadU(y + i + 3 * kL), a3);
  }
  for (; i + kL <= n; i += kL) {
    a0 = simd::MulAdd(simd::LoadU(x + i), simd::LoadU(y + i), a0);
  }
  float acc =
      simd::ReduceAdd(simd::Add(simd::Add(a0, a1), simd::Add(a2, a3)));
  for (; i < n; ++i) acc = simd::MulAddScalar(x[i], y[i], acc);
  return acc;
}

void Hadamard(size_t n, const float* x, const float* y, float* out) {
  size_t i = 0;
  for (; i + kL <= n; i += kL) {
    simd::StoreU(out + i, simd::Mul(simd::LoadU(x + i), simd::LoadU(y + i)));
  }
  for (; i < n; ++i) out[i] = x[i] * y[i];
}

void HadamardAccum(size_t n, const float* x, const float* y, float* out) {
  size_t i = 0;
  for (; i + kL <= n; i += kL) {
    simd::StoreU(out + i, simd::MulAdd(simd::LoadU(x + i), simd::LoadU(y + i),
                                       simd::LoadU(out + i)));
  }
  for (; i < n; ++i) out[i] = simd::MulAddScalar(x[i], y[i], out[i]);
}

float Sum(size_t n, const float* x) {
  VecF a0 = simd::Zero(), a1 = simd::Zero();
  size_t i = 0;
  for (; i + 2 * kL <= n; i += 2 * kL) {
    a0 = simd::Add(a0, simd::LoadU(x + i));
    a1 = simd::Add(a1, simd::LoadU(x + i + kL));
  }
  for (; i + kL <= n; i += kL) a0 = simd::Add(a0, simd::LoadU(x + i));
  float acc = simd::ReduceAdd(simd::Add(a0, a1));
  for (; i < n; ++i) acc += x[i];
  return acc;
}

void Softmax(size_t n, const float* logits, float* probs) {
  // Same contract as LogSumExp: an empty input is a programmer error, not
  // a silent no-op (a silent return here once masked empty-candidate bugs
  // upstream while LogSumExp aborted on the identical input).
  //
  // Deliberately scalar: callers pass interaction-choice distributions
  // (n == 3), far below any width where vectorizing pays.
  CHECK_GT(n, 0u);
  float max_v = logits[0];
  for (size_t i = 1; i < n; ++i) max_v = std::max(max_v, logits[i]);
  float total = 0.0f;
  for (size_t i = 0; i < n; ++i) {
    probs[i] = std::exp(logits[i] - max_v);
    total += probs[i];
  }
  const float inv = 1.0f / total;
  for (size_t i = 0; i < n; ++i) probs[i] *= inv;
}

float LogSumExp(size_t n, const float* x) {
  CHECK_GT(n, 0u);
  float max_v = x[0];
  for (size_t i = 1; i < n; ++i) max_v = std::max(max_v, x[i]);
  float total = 0.0f;
  for (size_t i = 0; i < n; ++i) total += std::exp(x[i] - max_v);
  return max_v + std::log(total);
}

void MatMul(const Tensor& a, const Tensor& b, Tensor* c) {
  CHECK_EQ(a.cols(), b.rows());
  c->Resize({a.rows(), b.cols()});
  GemmNN(a.data(), b.data(), c->data(), a.rows(), a.cols(), b.cols());
}

void MatMulNT(const Tensor& a, const Tensor& b, Tensor* c) {
  CHECK_EQ(a.cols(), b.cols());
  c->Resize({a.rows(), b.rows()});
  GemmNT(a.data(), b.data(), c->data(), a.rows(), a.cols(), b.rows());
}

void MatMulTN(const Tensor& a, const Tensor& b, Tensor* c) {
  CHECK_EQ(a.rows(), b.rows());
  c->Resize({a.cols(), b.cols()});
  GemmTN(a.data(), b.data(), c->data(), a.rows(), a.cols(), b.cols());
}

}  // namespace optinter
