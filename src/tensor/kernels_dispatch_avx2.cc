// AVX2+FMA kernel variant for runtime dispatch. On the stock build the
// whole binary already targets avx2/fma and this duplicates the native
// variant (deduplicated by name in dispatch.cc); under a baseline
// portable build (OPTINTER_PORTABLE_BASELINE) this TU is what lets the
// binary still reach AVX2 kernels on capable hosts.

#include "tensor/kernels_variant.h"

#if OPTINTER_KV_X86_PRAGMA

#pragma GCC push_options
#pragma GCC target("avx2,fma")

#undef OPTINTER_SIMD_AVX512
#undef OPTINTER_SIMD_AVX2
#undef OPTINTER_SIMD_SSE2
#undef OPTINTER_SIMD_NEON
#undef OPTINTER_SIMD_SCALAR
#define OPTINTER_SIMD_AVX2 1

namespace optinter {
namespace kvar_avx2 {

namespace simd {
#include "tensor/simd_ops.inc"
}  // namespace simd

#include "tensor/gemm_body.inc"

}  // namespace kvar_avx2
}  // namespace optinter

#pragma GCC pop_options

namespace optinter {
const KernelTable* GetKernelVariantAvx2() { return &kvar_avx2::kTable; }
}  // namespace optinter

#else  // !OPTINTER_KV_X86_PRAGMA

namespace optinter {
const KernelTable* GetKernelVariantAvx2() { return nullptr; }
}  // namespace optinter

#endif
