// Scalar kernel variant for runtime dispatch. This TU is compiled with
// per-file -mno-avx/-mno-avx2/-mno-fma flags (see src/tensor/CMakeLists),
// so it gets true baseline codegen — no FMA contraction, no VEX — and is
// bitwise identical to an -DOPTINTER_DISABLE_SIMD build of the same
// kernels; the `OPTINTER_SIMD=scalar` parity tests rely on that.
// kernels_variant.h explains why a pragma cannot do this downgrade.

#include "tensor/kernels_variant.h"

#if OPTINTER_KV_X86_BASELINE

#undef OPTINTER_SIMD_AVX512
#undef OPTINTER_SIMD_AVX2
#undef OPTINTER_SIMD_SSE2
#undef OPTINTER_SIMD_NEON
#undef OPTINTER_SIMD_SCALAR
#define OPTINTER_SIMD_SCALAR 1

namespace optinter {
namespace kvar_scalar {

namespace simd {
#include "tensor/simd_ops.inc"
}  // namespace simd

#include "tensor/gemm_body.inc"

}  // namespace kvar_scalar

const KernelTable* GetKernelVariantScalar() { return &kvar_scalar::kTable; }

}  // namespace optinter

#else  // !OPTINTER_KV_X86_BASELINE

namespace optinter {
const KernelTable* GetKernelVariantScalar() { return nullptr; }
}  // namespace optinter

#endif
