#include "tensor/int8.h"

#include <algorithm>
#include <cmath>

#include "tensor/aligned.h"
#include "tensor/dispatch.h"

namespace optinter {

void QuantizeActivationRows(const float* x, size_t m, size_t k, uint8_t* q,
                            float* scale, int32_t* zp) {
  for (size_t i = 0; i < m; ++i) {
    const float* xi = x + i * k;
    uint8_t* qi = q + i * k;
    // Range over [min(row_min, 0), max(row_max, 0)]: min/max are exact and
    // order-independent, so this scan is deterministic under any codegen.
    float lo = 0.0f, hi = 0.0f;
    for (size_t t = 0; t < k; ++t) {
      lo = std::min(lo, xi[t]);
      hi = std::max(hi, xi[t]);
    }
    const float range = hi - lo;
    if (range == 0.0f) {  // all-zero row (the range always includes 0)
      scale[i] = 1.0f;
      zp[i] = 0;
      std::fill(qi, qi + k, static_cast<uint8_t>(0));
      continue;
    }
    const float s = range / static_cast<float>(kInt8ActMax);
    const float inv = static_cast<float>(kInt8ActMax) / range;
    const int32_t z = static_cast<int32_t>(std::lrintf(-lo * inv));
    scale[i] = s;
    zp[i] = z;
    for (size_t t = 0; t < k; ++t) {
      const int32_t v = static_cast<int32_t>(std::lrintf(xi[t] * inv)) + z;
      qi[t] = static_cast<uint8_t>(std::clamp(v, 0, kInt8ActMax));
    }
  }
}

void QuantizeWeightsPerRow(const float* w, size_t n, size_t k, int8_t* q,
                           float* scale, int32_t* rowsum) {
  for (size_t j = 0; j < n; ++j) {
    const float* wj = w + j * k;
    int8_t* qj = q + j * k;
    float amax = 0.0f;
    for (size_t t = 0; t < k; ++t) amax = std::max(amax, std::fabs(wj[t]));
    if (amax == 0.0f) {
      scale[j] = 0.0f;
      rowsum[j] = 0;
      std::fill(qj, qj + k, static_cast<int8_t>(0));
      continue;
    }
    const float inv = static_cast<float>(kInt8WeightMax) / amax;
    scale[j] = amax / static_cast<float>(kInt8WeightMax);
    int32_t sum = 0;
    for (size_t t = 0; t < k; ++t) {
      const int32_t v = static_cast<int32_t>(std::lrintf(wj[t] * inv));
      const int32_t c = std::clamp(v, -kInt8WeightMax, kInt8WeightMax);
      qj[t] = static_cast<int8_t>(c);
      sum += c;
    }
    rowsum[j] = sum;
  }
}

void Int8GemmNT(const uint8_t* a, const float* a_scale, const int32_t* a_zp,
                const int8_t* b, const float* b_scale,
                const int32_t* b_rowsum, const float* bias, float* c,
                size_t m, size_t k, size_t n) {
  static thread_local AlignedVector<int32_t> acc_tls;
  acc_tls.resize(m * n);
  int32_t* const acc = acc_tls.data();
  ActiveKernels().int8_gemm_nt_acc(a, b, acc, m, k, n);
  // The one-and-only float rounding of the quantized product. Shared,
  // non-variant code: every dispatch backend reaches this exact machine
  // code with exact integer accumulators, so the whole output is bitwise
  // backend-invariant.
  for (size_t i = 0; i < m; ++i) {
    const float sa = a_scale[i];
    const int32_t zp = a_zp[i];
    const int32_t* ai = acc + i * n;
    float* ci = c + i * n;
    for (size_t j = 0; j < n; ++j) {
      const float v =
          sa * b_scale[j] *
          static_cast<float>(ai[j] - zp * b_rowsum[j]);
      ci[j] = bias != nullptr ? v + bias[j] : v;
    }
  }
}

}  // namespace optinter
