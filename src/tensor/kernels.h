// Numeric kernels over raw float buffers.
//
// All GEMM variants are expressed with explicit transpose flags so the
// layer backward passes never materialize transposed copies. The GEMMs
// are cache-blocked, panel-packed implementations with register-tiled
// micro-kernels built on the fixed-width SIMD abstraction in simd.h
// (AVX2+FMA / SSE2 / NEON / scalar, chosen at compile time); large GEMMs
// are additionally row-blocked across the global thread pool.
//
// Determinism: for a given build (backend), every kernel is bit-identical
// at any thread count — row chunking never changes a row's accumulation
// order, reductions use fixed chunk grids with fixed-shape merges, and
// elementwise kernels compute each element identically whether a vector
// lane or a scalar tail handles it (see simd.h). Results differ ACROSS
// backends (FMA contracts rounding; Exp is polynomial vs libm), which is
// fine: tests compare against references, not golden floats (DESIGN.md §5).

#pragma once

#include <cmath>
#include <cstddef>

#include "tensor/tensor.h"

namespace optinter {

/// Name of the compiled-in SIMD backend ("avx2-fma", "sse2", "neon",
/// "scalar") — surfaced in benches and reports so recorded numbers are
/// attributable to a backend.
const char* SimdBackendName();

// ---------------------------------------------------------------------------
// GEMM family: C = alpha * op(A) * op(B) + beta * C, all row-major.
// ---------------------------------------------------------------------------

/// C[m×n] += A[m×k] * B[k×n] (beta pre-applied by caller flag).
void GemmNN(const float* a, const float* b, float* c, size_t m, size_t k,
            size_t n, float alpha = 1.0f, float beta = 0.0f);

/// C[m×n] = A[m×k] * B^T where B is [n×k]. The usual Linear forward with a
/// [out×in] weight matrix.
void GemmNT(const float* a, const float* b, float* c, size_t m, size_t k,
            size_t n, float alpha = 1.0f, float beta = 0.0f);

/// C[k×n] = A^T * B where A is [m×k], B is [m×n]. Weight-gradient shape.
/// Large shapes are row-blocked over m with per-chunk private accumulators
/// combined by a fixed-shape tree reduce; the chunk grid depends only on
/// the shape, so the result is bit-identical at any thread count.
void GemmTN(const float* a, const float* b, float* c, size_t m, size_t k,
            size_t n, float alpha = 1.0f, float beta = 0.0f);

namespace internal {

// Naive serial reference GEMMs: plain triple loops, no blocking, packing
// or vectorization. Kept as the ground truth the property tests compare
// the packed/SIMD implementations against (tests/simd_kernels_test.cc).
void GemmNNRef(const float* a, const float* b, float* c, size_t m, size_t k,
               size_t n, float alpha = 1.0f, float beta = 0.0f);
void GemmNTRef(const float* a, const float* b, float* c, size_t m, size_t k,
               size_t n, float alpha = 1.0f, float beta = 0.0f);
void GemmTNRef(const float* a, const float* b, float* c, size_t m, size_t k,
               size_t n, float alpha = 1.0f, float beta = 0.0f);

}  // namespace internal

// ---------------------------------------------------------------------------
// Elementwise / reduction helpers.
// ---------------------------------------------------------------------------

/// y += alpha * x over n elements.
void Axpy(size_t n, float alpha, const float* x, float* y);

/// Scales x by alpha in place.
void Scale(size_t n, float alpha, float* x);

/// Dot product over n elements (vector accumulators combined in a fixed
/// order — deterministic per backend for a given n).
float Dot(size_t n, const float* x, const float* y);

/// out = x ⊙ y (Hadamard), n elements.
void Hadamard(size_t n, const float* x, const float* y, float* out);

/// out += x ⊙ y, n elements.
void HadamardAccum(size_t n, const float* x, const float* y, float* out);

/// Sum of n elements (fixed reduction order, see Dot).
float Sum(size_t n, const float* x);

/// Numerically-stable softmax of `logits` (length n) into `probs`.
/// CHECK-fails on n == 0 (same contract as LogSumExp).
void Softmax(size_t n, const float* logits, float* probs);

/// Numerically-stable log-sum-exp of n values. CHECK-fails on n == 0.
float LogSumExp(size_t n, const float* x);

/// Stable sigmoid.
inline float SigmoidScalar(float z) {
  if (z >= 0.0f) {
    const float e = std::exp(-z);
    return 1.0f / (1.0f + e);
  }
  const float e = std::exp(z);
  return e / (1.0f + e);
}

// ---------------------------------------------------------------------------
// Tensor-level conveniences (shape-checked wrappers over the raw kernels).
// ---------------------------------------------------------------------------

/// c = a * b (2-D, shapes validated).
void MatMul(const Tensor& a, const Tensor& b, Tensor* c);

/// c = a * b^T.
void MatMulNT(const Tensor& a, const Tensor& b, Tensor* c);

/// c = a^T * b.
void MatMulTN(const Tensor& a, const Tensor& b, Tensor* c);

}  // namespace optinter
