// Numeric kernels over raw float buffers.
//
// All GEMM variants are expressed with explicit transpose flags so the
// layer backward passes never materialize transposed copies. Large GEMMs
// are row-blocked across the global thread pool.

#pragma once

#include <cmath>
#include <cstddef>

#include "tensor/tensor.h"

namespace optinter {

// ---------------------------------------------------------------------------
// GEMM family: C = alpha * op(A) * op(B) + beta * C, all row-major.
// ---------------------------------------------------------------------------

/// C[m×n] += A[m×k] * B[k×n] (beta pre-applied by caller flag).
void GemmNN(const float* a, const float* b, float* c, size_t m, size_t k,
            size_t n, float alpha = 1.0f, float beta = 0.0f);

/// C[m×n] = A[m×k] * B^T where B is [n×k]. The usual Linear forward with a
/// [out×in] weight matrix.
void GemmNT(const float* a, const float* b, float* c, size_t m, size_t k,
            size_t n, float alpha = 1.0f, float beta = 0.0f);

/// C[k×n] = A^T * B where A is [m×k], B is [m×n]. Weight-gradient shape.
/// Large shapes are row-blocked over m with per-chunk private accumulators
/// combined by a fixed-shape tree reduce; the chunk grid depends only on
/// the shape, so the result is bit-identical at any thread count.
void GemmTN(const float* a, const float* b, float* c, size_t m, size_t k,
            size_t n, float alpha = 1.0f, float beta = 0.0f);

// ---------------------------------------------------------------------------
// Elementwise / reduction helpers.
// ---------------------------------------------------------------------------

/// y += alpha * x over n elements.
void Axpy(size_t n, float alpha, const float* x, float* y);

/// Scales x by alpha in place.
void Scale(size_t n, float alpha, float* x);

/// Dot product over n elements.
float Dot(size_t n, const float* x, const float* y);

/// out = x ⊙ y (Hadamard), n elements.
void Hadamard(size_t n, const float* x, const float* y, float* out);

/// out += x ⊙ y, n elements.
void HadamardAccum(size_t n, const float* x, const float* y, float* out);

/// Sum of n elements.
float Sum(size_t n, const float* x);

/// Numerically-stable softmax of `logits` (length n) into `probs`.
/// CHECK-fails on n == 0 (same contract as LogSumExp).
void Softmax(size_t n, const float* logits, float* probs);

/// Numerically-stable log-sum-exp of n values. CHECK-fails on n == 0.
float LogSumExp(size_t n, const float* x);

/// Stable sigmoid.
inline float SigmoidScalar(float z) {
  if (z >= 0.0f) {
    const float e = std::exp(-z);
    return 1.0f / (1.0f + e);
  }
  const float e = std::exp(z);
  return e / (1.0f + e);
}

// ---------------------------------------------------------------------------
// Tensor-level conveniences (shape-checked wrappers over the raw kernels).
// ---------------------------------------------------------------------------

/// c = a * b (2-D, shapes validated).
void MatMul(const Tensor& a, const Tensor& b, Tensor* c);

/// c = a * b^T.
void MatMulNT(const Tensor& a, const Tensor& b, Tensor* c);

/// c = a^T * b.
void MatMulTN(const Tensor& a, const Tensor& b, Tensor* c);

}  // namespace optinter
