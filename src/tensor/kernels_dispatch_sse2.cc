// SSE2 kernel variant for runtime dispatch. SSE2 is part of the x86-64
// baseline; this TU is compiled with per-file -mno-avx/-mno-avx2/-mno-fma
// flags (see src/tensor/CMakeLists), matching what a compile-time sse2
// build would generate (no FMA contraction, no VEX). kernels_variant.h
// explains why a pragma cannot do this downgrade.

#include "tensor/kernels_variant.h"

#if OPTINTER_KV_X86_BASELINE

#undef OPTINTER_SIMD_AVX512
#undef OPTINTER_SIMD_AVX2
#undef OPTINTER_SIMD_SSE2
#undef OPTINTER_SIMD_NEON
#undef OPTINTER_SIMD_SCALAR
#define OPTINTER_SIMD_SSE2 1

namespace optinter {
namespace kvar_sse2 {

namespace simd {
#include "tensor/simd_ops.inc"
}  // namespace simd

#include "tensor/gemm_body.inc"

}  // namespace kvar_sse2

const KernelTable* GetKernelVariantSse2() { return &kvar_sse2::kTable; }

}  // namespace optinter

#else  // !OPTINTER_KV_X86_BASELINE

namespace optinter {
const KernelTable* GetKernelVariantSse2() { return nullptr; }
}  // namespace optinter

#endif
