// Dense row-major float tensor.
//
// The NN substrate works almost exclusively with 1-D vectors and 2-D
// (batch × features) matrices, so Tensor keeps a contiguous float32 buffer
// plus a small shape vector; no strides, no views. Kernels that need raw
// speed operate on data() directly (see kernels.h). Storage is 64-byte
// aligned (aligned.h) so vector loads on tensor data never split a cache
// line and packed GEMM panels copied from tensors stay line-aligned.

#pragma once

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/logging.h"
#include "tensor/aligned.h"

namespace optinter {

/// Contiguous row-major float32 tensor with value semantics.
class Tensor {
 public:
  Tensor() = default;

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(const std::vector<size_t>& shape) { Resize(shape); }
  Tensor(std::initializer_list<size_t> shape) { Resize(shape); }

  /// Reshapes (and zero-fills) to `shape`. Both overloads assign into the
  /// existing buffers, so a Tensor resized to the same (or smaller) shape
  /// every step never reallocates — part of the steady-state
  /// zero-allocation contract for TrainStep (DESIGN.md). The braced-list
  /// overload matters: without it `Resize({a, b})` would materialize a
  /// temporary std::vector on the heap at every call site.
  void Resize(const std::vector<size_t>& shape) {
    shape_.assign(shape.begin(), shape.end());
    ResizeDataToShape();
  }
  void Resize(std::initializer_list<size_t> shape) {
    shape_.assign(shape.begin(), shape.end());
    ResizeDataToShape();
  }

  /// Reinterprets the buffer with a new shape of identical element count.
  void Reshape(const std::vector<size_t>& shape) {
    size_t n = 1;
    for (size_t d : shape) n *= d;
    CHECK_EQ(n, data_.size());
    shape_.assign(shape.begin(), shape.end());
  }
  void Reshape(std::initializer_list<size_t> shape) {
    size_t n = 1;
    for (size_t d : shape) n *= d;
    CHECK_EQ(n, data_.size());
    shape_.assign(shape.begin(), shape.end());
  }

  const std::vector<size_t>& shape() const { return shape_; }
  size_t ndim() const { return shape_.size(); }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  /// Dimension `i` of the shape.
  size_t dim(size_t i) const {
    CHECK_LT(i, shape_.size());
    return shape_[i];
  }

  /// Rows / cols accessors for the common 2-D case.
  size_t rows() const {
    CHECK_EQ(ndim(), 2u);
    return shape_[0];
  }
  size_t cols() const {
    CHECK_EQ(ndim(), 2u);
    return shape_[1];
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  /// Row pointer for a 2-D tensor.
  float* row(size_t r) {
    CHECK_LT(r, rows());
    return data_.data() + r * shape_[1];
  }
  const float* row(size_t r) const {
    CHECK_LT(r, rows());
    return data_.data() + r * shape_[1];
  }

  /// Flat element access.
  float& operator[](size_t i) { return data_[i]; }
  float operator[](size_t i) const { return data_[i]; }

  /// 2-D element access (bounds-checked).
  float& at(size_t r, size_t c) {
    CHECK_LT(r, rows());
    CHECK_LT(c, cols());
    return data_[r * shape_[1] + c];
  }
  float at(size_t r, size_t c) const {
    CHECK_LT(r, rows());
    CHECK_LT(c, cols());
    return data_[r * shape_[1] + c];
  }

  /// Fills every element with `value`.
  void Fill(float value) { data_.assign(data_.size(), value); }

  /// Sets all elements to zero (keeps shape).
  void Zero() { Fill(0.0f); }

  /// Shape as "[a, b]" for diagnostics.
  std::string ShapeString() const;

  /// True when shapes match exactly.
  bool SameShape(const Tensor& other) const { return shape_ == other.shape_; }

 private:
  void ResizeDataToShape() {
    size_t n = 1;
    for (size_t d : shape_) n *= d;
    data_.assign(n, 0.0f);
  }

  std::vector<size_t> shape_;
  AlignedVector<float> data_;
};

}  // namespace optinter
