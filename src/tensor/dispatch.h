// Runtime kernel dispatch: one binary, several compiled kernel variants,
// the widest one the host supports selected once at startup.
//
// Historically the SIMD backend was fixed at compile time (simd.h) — a
// binary built with -mavx2 could only ever run its AVX2 kernels. For the
// serving story ("one release binary serves a heterogeneous fleet") the
// hot kernels are now ALSO compiled into per-ISA variant translation
// units (kernels_dispatch_*.cc, built from the shared gemm_body.inc under
// `#pragma GCC target` regions) and reached through the function-pointer
// table below. Covered kernels: the three GEMM drivers, the vectorized
// sigmoid range, the int8 GEMM accumulator, and the quantized-row
// dequantize gathers. Everything else (elementwise kernels, LayerNorm,
// optimizer loops) stays on the compile-time backend — those are
// header-inlined all over the tree and are not serving-critical.
//
// Selection:
//   1. `OPTINTER_SIMD=<name>` env var, if set and the named variant is
//      compiled in AND supported by the host ("avx512", "avx2-fma",
//      "sse2", "scalar", or "auto"). An unknown/unsupported name warns
//      once on stderr and falls back to auto.
//   2. Otherwise auto: avx512 → avx2-fma → native → sse2 → scalar, first
//      variant whose ISA the host supports (CPUID, cpu_features.h).
//
// The "native" variant is the body compiled exactly like the rest of the
// binary (whatever simd.h selected at compile time). It always exists, so
// dispatch can never come up empty — on clang, non-x86, or
// -DOPTINTER_DISABLE_SIMD builds it is the only variant.
//
// Determinism: the contract is per (build, selected backend). For a fixed
// table every kernel keeps the bit-exact any-thread-count guarantee
// documented in kernels.h; switching tables (different host, or
// OPTINTER_SIMD override) changes rounding exactly like recompiling for a
// different backend always did. See DESIGN.md §11.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace optinter {

/// Per-backend kernel function-pointer table. All pointers are non-null
/// in every registered table.
struct KernelTable {
  /// Backend name ("avx512", "avx2-fma", "sse2", "scalar", "neon").
  const char* name;

  /// C[m×n] = alpha·A[m×k]·B[k×n] + beta·C.
  void (*gemm_nn)(const float* a, const float* b, float* c, size_t m,
                  size_t k, size_t n, float alpha, float beta);
  /// C[m×n] = alpha·A[m×k]·B^T + beta·C, B is [n×k].
  void (*gemm_nt)(const float* a, const float* b, float* c, size_t m,
                  size_t k, size_t n, float alpha, float beta);
  /// C[k×n] = alpha·A^T·B + beta·C, A is [m×k], B is [m×n].
  void (*gemm_tn)(const float* a, const float* b, float* c, size_t m,
                  size_t k, size_t n, float alpha, float beta);

  /// out[i] = sigmoid(z[i]) for one contiguous range; every element goes
  /// through the backend's lane function (padded tail), so results are
  /// independent of how callers chunk the range.
  void (*sigmoid)(const float* z, size_t n, float* out);

  /// acc[i·n+j] = Σ_p a[i·k+p]·b[j·k+p], a unsigned (values ≤ 127), b
  /// signed int8. Pure integer arithmetic — exact, so every backend
  /// returns identical accumulators (the fp32 epilogue lives in shared
  /// code; see int8.h).
  void (*int8_gemm_nt_acc)(const uint8_t* a, const int8_t* b, int32_t* acc,
                           size_t m, size_t k, size_t n);

  /// out[t] = scale · (q[t] − zp): the int8 quantized-row gather.
  /// One multiply of exactly-representable integers per element — bitwise
  /// identical across backends.
  void (*dequant_row_i8)(const int8_t* q, float scale, int32_t zp,
                         size_t dim, float* out);
  /// out[t] = bf16→fp32(q[t]) (bit shift): the bf16 quantized-row gather.
  void (*dequant_row_bf16)(const uint16_t* q, size_t dim, float* out);
};

/// The table serving this process, selected on first use (see file
/// comment for the policy). Stable for the process lifetime unless a test
/// swaps it via SelectKernelBackendForTest.
const KernelTable& ActiveKernels();

/// Name of the active table — surfaced in benches/reports so recorded
/// numbers are attributable to a backend.
const char* ActiveKernelBackend();

/// All variants compiled into this binary AND supported by this host, in
/// auto-selection preference order, deduplicated by name.
std::vector<const KernelTable*> AvailableKernelBackends();

/// Test hook: atomically swap the active table to the named backend
/// ("auto" re-runs auto selection). Returns false (no change) when the
/// name is unknown, not compiled in, or unsupported on this host. Not for
/// production use — callers must not race this against in-flight kernels
/// they expect to be bitwise-reproducible.
bool SelectKernelBackendForTest(const char* name);

// Variant registration points, defined by the kernels_dispatch_*.cc
// translation units (nullptr when that variant is not compiled into this
// binary). Internal to the dispatch layer.
const KernelTable* GetKernelVariantNative();
const KernelTable* GetKernelVariantScalar();
const KernelTable* GetKernelVariantSse2();
const KernelTable* GetKernelVariantAvx2();
const KernelTable* GetKernelVariantAvx512();

}  // namespace optinter
