// Portable fixed-width SIMD abstraction for the kernel layer.
//
// One backend is selected at compile time:
//
//   OPTINTER_SIMD_AVX2    x86-64 with AVX2+FMA   (8 lanes, fused muladd)
//   OPTINTER_SIMD_SSE2    x86-64 baseline         (4 lanes, unfused muladd)
//   OPTINTER_SIMD_NEON    aarch64 / ARMv7 NEON    (4 lanes, fused muladd)
//   OPTINTER_SIMD_SCALAR  everything else, or -DOPTINTER_DISABLE_SIMD=ON
//                                                 (1 lane)
//
// The abstraction is deliberately small: lane-wise arithmetic, compare
// masks + select, a correctly-rounded sqrt/div, a polynomial Exp, and one
// horizontal reduction with a FIXED lane-combination order. Everything a
// kernel computes through these ops is deterministic for a given backend:
//
//  * Lane-wise ops (Add/Mul/MulAdd/Div/Sqrt/Min/Max/Select/Exp) produce
//    the same bits for a given element value regardless of which lane —
//    or which scalar tail — processes it, PROVIDED the scalar tail uses
//    the matching `*Scalar` helpers below. This is what lets kernels run
//    under pool-size-dependent chunking (ParallelForChunks) and still be
//    bit-identical at any thread count: an element's result never depends
//    on its position relative to a chunk or vector-group boundary.
//  * ReduceAdd combines lanes in a fixed pairwise tree, so reductions
//    that accumulate vector partials in a shape-determined order are
//    themselves deterministic per backend.
//
// Results DIFFER ACROSS BACKENDS (FMA contracts rounding, Exp is a
// polynomial on the vector backends but libm on the scalar one). The
// repo-wide determinism contract is therefore per-build: see DESIGN.md §5.

#pragma once

#include <cmath>
#include <cstddef>

#if !defined(OPTINTER_DISABLE_SIMD) && defined(__AVX2__) && defined(__FMA__)
#define OPTINTER_SIMD_AVX2 1
#include <immintrin.h>
#elif !defined(OPTINTER_DISABLE_SIMD) && defined(__SSE2__)
#define OPTINTER_SIMD_SSE2 1
#include <emmintrin.h>
#elif !defined(OPTINTER_DISABLE_SIMD) && \
    (defined(__ARM_NEON) || defined(__ARM_NEON__))
#define OPTINTER_SIMD_NEON 1
#include <arm_neon.h>
#else
#define OPTINTER_SIMD_SCALAR 1
#endif

namespace optinter {
namespace simd {

// ---------------------------------------------------------------------------
// AVX2 + FMA backend (8 × f32, fused multiply-add).
// ---------------------------------------------------------------------------
#if defined(OPTINTER_SIMD_AVX2)

inline constexpr size_t kLanes = 8;
inline constexpr const char* kBackendName = "avx2-fma";
inline constexpr bool kFusedMulAdd = true;

struct VecF {
  __m256 v;
};

inline VecF Zero() { return {_mm256_setzero_ps()}; }
inline VecF Set1(float x) { return {_mm256_set1_ps(x)}; }
inline VecF LoadU(const float* p) { return {_mm256_loadu_ps(p)}; }
inline void StoreU(float* p, VecF a) { _mm256_storeu_ps(p, a.v); }
inline VecF Add(VecF a, VecF b) { return {_mm256_add_ps(a.v, b.v)}; }
inline VecF Sub(VecF a, VecF b) { return {_mm256_sub_ps(a.v, b.v)}; }
inline VecF Mul(VecF a, VecF b) { return {_mm256_mul_ps(a.v, b.v)}; }
inline VecF Div(VecF a, VecF b) { return {_mm256_div_ps(a.v, b.v)}; }
inline VecF Min(VecF a, VecF b) { return {_mm256_min_ps(a.v, b.v)}; }
inline VecF Max(VecF a, VecF b) { return {_mm256_max_ps(a.v, b.v)}; }
inline VecF Sqrt(VecF a) { return {_mm256_sqrt_ps(a.v)}; }
/// a*b + c, fused (single rounding).
inline VecF MulAdd(VecF a, VecF b, VecF c) {
  return {_mm256_fmadd_ps(a.v, b.v, c.v)};
}
inline VecF Abs(VecF a) {
  return {_mm256_andnot_ps(_mm256_set1_ps(-0.0f), a.v)};
}
/// All-ones lane mask where a > b (ordered, non-signalling).
inline VecF GtMask(VecF a, VecF b) {
  return {_mm256_cmp_ps(a.v, b.v, _CMP_GT_OQ)};
}
inline VecF GeMask(VecF a, VecF b) {
  return {_mm256_cmp_ps(a.v, b.v, _CMP_GE_OQ)};
}
/// Lane-wise mask ? a : b.
inline VecF Select(VecF mask, VecF a, VecF b) {
  return {_mm256_blendv_ps(b.v, a.v, mask.v)};
}
inline VecF And(VecF a, VecF b) { return {_mm256_and_ps(a.v, b.v)}; }

/// Horizontal sum with a fixed combination tree:
/// ((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7)).
inline float ReduceAdd(VecF a) {
  const __m128 lo = _mm256_castps256_ps128(a.v);
  const __m128 hi = _mm256_extractf128_ps(a.v, 1);
  const __m128 s4 = _mm_add_ps(lo, hi);            // (0+4, 1+5, 2+6, 3+7)
  const __m128 s2 = _mm_add_ps(s4, _mm_movehl_ps(s4, s4));
  const __m128 s1 = _mm_add_ss(s2, _mm_shuffle_ps(s2, s2, 0x1));
  return _mm_cvtss_f32(s1);
}

// ---------------------------------------------------------------------------
// SSE2 backend (4 × f32, unfused multiply-add — plain x86-64 baseline).
// ---------------------------------------------------------------------------
#elif defined(OPTINTER_SIMD_SSE2)

inline constexpr size_t kLanes = 4;
inline constexpr const char* kBackendName = "sse2";
inline constexpr bool kFusedMulAdd = false;

struct VecF {
  __m128 v;
};

inline VecF Zero() { return {_mm_setzero_ps()}; }
inline VecF Set1(float x) { return {_mm_set1_ps(x)}; }
inline VecF LoadU(const float* p) { return {_mm_loadu_ps(p)}; }
inline void StoreU(float* p, VecF a) { _mm_storeu_ps(p, a.v); }
inline VecF Add(VecF a, VecF b) { return {_mm_add_ps(a.v, b.v)}; }
inline VecF Sub(VecF a, VecF b) { return {_mm_sub_ps(a.v, b.v)}; }
inline VecF Mul(VecF a, VecF b) { return {_mm_mul_ps(a.v, b.v)}; }
inline VecF Div(VecF a, VecF b) { return {_mm_div_ps(a.v, b.v)}; }
inline VecF Min(VecF a, VecF b) { return {_mm_min_ps(a.v, b.v)}; }
inline VecF Max(VecF a, VecF b) { return {_mm_max_ps(a.v, b.v)}; }
inline VecF Sqrt(VecF a) { return {_mm_sqrt_ps(a.v)}; }
/// a*b + c, unfused (two roundings — SSE2 has no FMA instruction).
inline VecF MulAdd(VecF a, VecF b, VecF c) {
  return {_mm_add_ps(_mm_mul_ps(a.v, b.v), c.v)};
}
inline VecF Abs(VecF a) {
  return {_mm_andnot_ps(_mm_set1_ps(-0.0f), a.v)};
}
inline VecF GtMask(VecF a, VecF b) { return {_mm_cmpgt_ps(a.v, b.v)}; }
inline VecF GeMask(VecF a, VecF b) { return {_mm_cmpge_ps(a.v, b.v)}; }
inline VecF Select(VecF mask, VecF a, VecF b) {
  return {_mm_or_ps(_mm_and_ps(mask.v, a.v), _mm_andnot_ps(mask.v, b.v))};
}
inline VecF And(VecF a, VecF b) { return {_mm_and_ps(a.v, b.v)}; }

/// Fixed tree: ((l0+l2) + (l1+l3)).
inline float ReduceAdd(VecF a) {
  const __m128 s2 = _mm_add_ps(a.v, _mm_movehl_ps(a.v, a.v));
  const __m128 s1 = _mm_add_ss(s2, _mm_shuffle_ps(s2, s2, 0x1));
  return _mm_cvtss_f32(s1);
}

// ---------------------------------------------------------------------------
// NEON backend (4 × f32, fused multiply-add).
// ---------------------------------------------------------------------------
#elif defined(OPTINTER_SIMD_NEON)

inline constexpr size_t kLanes = 4;
inline constexpr const char* kBackendName = "neon";
inline constexpr bool kFusedMulAdd = true;

struct VecF {
  float32x4_t v;
};

inline VecF Zero() { return {vdupq_n_f32(0.0f)}; }
inline VecF Set1(float x) { return {vdupq_n_f32(x)}; }
inline VecF LoadU(const float* p) { return {vld1q_f32(p)}; }
inline void StoreU(float* p, VecF a) { vst1q_f32(p, a.v); }
inline VecF Add(VecF a, VecF b) { return {vaddq_f32(a.v, b.v)}; }
inline VecF Sub(VecF a, VecF b) { return {vsubq_f32(a.v, b.v)}; }
inline VecF Mul(VecF a, VecF b) { return {vmulq_f32(a.v, b.v)}; }
#if defined(__aarch64__)
inline VecF Div(VecF a, VecF b) { return {vdivq_f32(a.v, b.v)}; }
inline VecF Sqrt(VecF a) { return {vsqrtq_f32(a.v)}; }
#else
// ARMv7 NEON has no IEEE div/sqrt instruction; fall back to scalar lanes
// so rounding matches the scalar helpers exactly.
inline VecF Div(VecF a, VecF b) {
  float xa[4], xb[4];
  vst1q_f32(xa, a.v);
  vst1q_f32(xb, b.v);
  for (int i = 0; i < 4; ++i) xa[i] /= xb[i];
  return {vld1q_f32(xa)};
}
inline VecF Sqrt(VecF a) {
  float xa[4];
  vst1q_f32(xa, a.v);
  for (int i = 0; i < 4; ++i) xa[i] = std::sqrt(xa[i]);
  return {vld1q_f32(xa)};
}
#endif
inline VecF Min(VecF a, VecF b) { return {vminq_f32(a.v, b.v)}; }
inline VecF Max(VecF a, VecF b) { return {vmaxq_f32(a.v, b.v)}; }
/// a*b + c, fused.
inline VecF MulAdd(VecF a, VecF b, VecF c) {
  return {vfmaq_f32(c.v, a.v, b.v)};
}
inline VecF Abs(VecF a) { return {vabsq_f32(a.v)}; }
inline VecF GtMask(VecF a, VecF b) {
  return {vreinterpretq_f32_u32(vcgtq_f32(a.v, b.v))};
}
inline VecF GeMask(VecF a, VecF b) {
  return {vreinterpretq_f32_u32(vcgeq_f32(a.v, b.v))};
}
inline VecF Select(VecF mask, VecF a, VecF b) {
  return {vbslq_f32(vreinterpretq_u32_f32(mask.v), a.v, b.v)};
}
inline VecF And(VecF a, VecF b) {
  return {vreinterpretq_f32_u32(vandq_u32(vreinterpretq_u32_f32(a.v),
                                          vreinterpretq_u32_f32(b.v)))};
}

/// Fixed tree: ((l0+l2) + (l1+l3)) — identical shape to the SSE2 backend.
inline float ReduceAdd(VecF a) {
  const float32x2_t s2 = vadd_f32(vget_low_f32(a.v), vget_high_f32(a.v));
  return vget_lane_f32(s2, 0) + vget_lane_f32(s2, 1);
}

// ---------------------------------------------------------------------------
// Scalar backend (1 lane) — the -DOPTINTER_DISABLE_SIMD escape hatch and
// the fallback for unknown ISAs. Every op is the obvious scalar statement,
// so kernels written against the abstraction compile to clean scalar loops.
// ---------------------------------------------------------------------------
#else

inline constexpr size_t kLanes = 1;
inline constexpr const char* kBackendName = "scalar";
inline constexpr bool kFusedMulAdd = false;

struct VecF {
  float v;
};

namespace detail {
inline float Bitmask(bool b) {
  // All-ones float bit pattern for true (NaN, but only ever used as a
  // mask through Select/And, mirroring the vector backends).
  union {
    unsigned u;
    float f;
  } pun;
  pun.u = b ? 0xffffffffu : 0u;
  return pun.f;
}
inline float BitAnd(float a, float b) {
  union {
    unsigned u;
    float f;
  } pa, pb;
  pa.f = a;
  pb.f = b;
  pa.u &= pb.u;
  return pa.f;
}
}  // namespace detail

inline VecF Zero() { return {0.0f}; }
inline VecF Set1(float x) { return {x}; }
inline VecF LoadU(const float* p) { return {*p}; }
inline void StoreU(float* p, VecF a) { *p = a.v; }
inline VecF Add(VecF a, VecF b) { return {a.v + b.v}; }
inline VecF Sub(VecF a, VecF b) { return {a.v - b.v}; }
inline VecF Mul(VecF a, VecF b) { return {a.v * b.v}; }
inline VecF Div(VecF a, VecF b) { return {a.v / b.v}; }
inline VecF Min(VecF a, VecF b) { return {a.v < b.v ? a.v : b.v}; }
inline VecF Max(VecF a, VecF b) { return {a.v > b.v ? a.v : b.v}; }
inline VecF Sqrt(VecF a) { return {std::sqrt(a.v)}; }
/// a*b + c, unfused (matches MulAddScalar below).
inline VecF MulAdd(VecF a, VecF b, VecF c) { return {a.v * b.v + c.v}; }
inline VecF Abs(VecF a) { return {std::fabs(a.v)}; }
inline VecF GtMask(VecF a, VecF b) { return {detail::Bitmask(a.v > b.v)}; }
inline VecF GeMask(VecF a, VecF b) { return {detail::Bitmask(a.v >= b.v)}; }
inline VecF Select(VecF mask, VecF a, VecF b) {
  union {
    unsigned u;
    float f;
  } pun;
  pun.f = mask.v;
  return {pun.u != 0u ? a.v : b.v};
}
inline VecF And(VecF a, VecF b) { return {detail::BitAnd(a.v, b.v)}; }
inline float ReduceAdd(VecF a) { return a.v; }

#endif  // backend selection

// ---------------------------------------------------------------------------
// Scalar-tail helpers. A kernel that vectorizes the bulk of a range and
// finishes the remainder with scalar code MUST use these for any op whose
// rounding differs between fused and unfused forms — that is what makes an
// element's bits independent of whether a vector lane or the tail computed
// it (the chunking-invariance property documented at the top).
// ---------------------------------------------------------------------------

/// Scalar a*b + c with the SAME rounding as MulAdd's lanes: std::fma on
/// fused backends (correctly rounded, == the hardware FMA), plain
/// mul-then-add on unfused ones.
inline float MulAddScalar(float a, float b, float c) {
  if constexpr (kFusedMulAdd) {
    return std::fma(a, b, c);
  } else {
    return a * b + c;
  }
}

// ---------------------------------------------------------------------------
// Exp: lane-wise e^x.
//
// Vector backends use the Cephes single-precision polynomial (range
// reduction x = n·ln2 + r with a two-term Cody–Waite split, degree-5
// minimax on r, 2^n rebuilt via exponent bits; ~2 ulp). The scalar
// backend uses std::exp. Lane-wise only — no cross-lane interaction — so
// an element's result is independent of its lane position; kernels whose
// tails must match (e.g. SigmoidForward) run the tail through a padded
// vector rather than calling std::exp.
// ---------------------------------------------------------------------------

#if defined(OPTINTER_SIMD_SCALAR)

inline VecF Exp(VecF x) { return {std::exp(x.v)}; }

#else

inline VecF Exp(VecF x) {
  const VecF one = Set1(1.0f);
  x = Min(x, Set1(88.3762626647950f));
  x = Max(x, Set1(-88.3762626647949f));
  // n = round(x / ln2), as floor(x·log2e + 0.5) with an SSE2-safe
  // truncate-and-adjust floor (no SSE4.1 rounding instruction).
  VecF fx = MulAdd(x, Set1(1.44269504088896341f), Set1(0.5f));
#if defined(OPTINTER_SIMD_AVX2)
  const __m256i emm0_trunc = _mm256_cvttps_epi32(fx.v);
  VecF trunc = {_mm256_cvtepi32_ps(emm0_trunc)};
#elif defined(OPTINTER_SIMD_SSE2)
  const __m128i emm0_trunc = _mm_cvttps_epi32(fx.v);
  VecF trunc = {_mm_cvtepi32_ps(emm0_trunc)};
#else  // NEON
  const int32x4_t emm0_trunc = vcvtq_s32_f32(fx.v);
  VecF trunc = {vcvtq_f32_s32(emm0_trunc)};
#endif
  // Truncation rounds toward zero; subtract 1 where it overshot.
  fx = Sub(trunc, And(GtMask(trunc, fx), one));
  // r = x - n·ln2 (split constant keeps r exact to the last bit).
  x = Sub(x, Mul(fx, Set1(0.693359375f)));
  x = Sub(x, Mul(fx, Set1(-2.12194440e-4f)));
  const VecF z = Mul(x, x);
  VecF y = Set1(1.9875691500e-4f);
  y = MulAdd(y, x, Set1(1.3981999507e-3f));
  y = MulAdd(y, x, Set1(8.3334519073e-3f));
  y = MulAdd(y, x, Set1(4.1665795894e-2f));
  y = MulAdd(y, x, Set1(1.6666665459e-1f));
  y = MulAdd(y, x, Set1(5.0000001201e-1f));
  y = MulAdd(y, z, x);
  y = Add(y, one);
  // 2^n via the exponent field.
#if defined(OPTINTER_SIMD_AVX2)
  __m256i emm0 = _mm256_cvttps_epi32(fx.v);
  emm0 = _mm256_add_epi32(emm0, _mm256_set1_epi32(0x7f));
  emm0 = _mm256_slli_epi32(emm0, 23);
  const VecF pow2n = {_mm256_castsi256_ps(emm0)};
#elif defined(OPTINTER_SIMD_SSE2)
  __m128i emm0 = _mm_cvttps_epi32(fx.v);
  emm0 = _mm_add_epi32(emm0, _mm_set1_epi32(0x7f));
  emm0 = _mm_slli_epi32(emm0, 23);
  const VecF pow2n = {_mm_castsi128_ps(emm0)};
#else  // NEON
  int32x4_t emm0 = vcvtq_s32_f32(fx.v);
  emm0 = vaddq_s32(emm0, vdupq_n_s32(0x7f));
  emm0 = vshlq_n_s32(emm0, 23);
  const VecF pow2n = {vreinterpretq_f32_s32(emm0)};
#endif
  return Mul(y, pow2n);
}

#endif  // Exp backends

/// Lane-wise numerically-stable sigmoid, built on Exp:
/// z >= 0: 1/(1+e^-z); z < 0: e^z/(1+e^z). Same branch structure as
/// SigmoidScalar (kernels.h), so the scalar backend matches it bitwise.
inline VecF Sigmoid(VecF z) {
  const VecF one = Set1(1.0f);
  const VecF en = Exp(Sub(Zero(), Abs(z)));  // e^{-|z|}
  const VecF numer = Select(GeMask(z, Zero()), one, en);
  return Div(numer, Add(one, en));
}

}  // namespace simd
}  // namespace optinter
