// Portable fixed-width SIMD abstraction for the kernel layer.
//
// One backend is selected at compile time:
//
//   OPTINTER_SIMD_AVX512  x86-64 with AVX-512 F/BW/DQ/VL+FMA
//                                                 (16 lanes, fused muladd)
//   OPTINTER_SIMD_AVX2    x86-64 with AVX2+FMA   (8 lanes, fused muladd)
//   OPTINTER_SIMD_SSE2    x86-64 baseline         (4 lanes, unfused muladd)
//   OPTINTER_SIMD_NEON    aarch64 / ARMv7 NEON    (4 lanes, fused muladd)
//   OPTINTER_SIMD_SCALAR  everything else, or -DOPTINTER_DISABLE_SIMD=ON
//                                                 (1 lane)
//
// The abstraction is deliberately small: lane-wise arithmetic, compare
// masks + select, a correctly-rounded sqrt/div, a polynomial Exp, and one
// horizontal reduction with a FIXED lane-combination order. Everything a
// kernel computes through these ops is deterministic for a given backend:
//
//  * Lane-wise ops (Add/Mul/MulAdd/Div/Sqrt/Min/Max/Select/Exp) produce
//    the same bits for a given element value regardless of which lane —
//    or which scalar tail — processes it, PROVIDED the scalar tail uses
//    the matching `*Scalar` helpers in simd_ops.inc. This is what lets
//    kernels run under pool-size-dependent chunking (ParallelForChunks)
//    and still be bit-identical at any thread count: an element's result
//    never depends on its position relative to a chunk or vector-group
//    boundary.
//  * ReduceAdd combines lanes in a fixed pairwise tree, so reductions
//    that accumulate vector partials in a shape-determined order are
//    themselves deterministic per backend.
//
// Results DIFFER ACROSS BACKENDS (FMA contracts rounding, Exp is a
// polynomial on the vector backends but libm on the scalar one). The
// repo-wide determinism contract is therefore per (build, selected
// backend): see DESIGN.md §5 and §11.
//
// The op bodies live in simd_ops.inc so the runtime-dispatch layer
// (tensor/dispatch.h, kernels_dispatch_*.cc) can instantiate additional
// copies of the same ops under `#pragma GCC target` regions. This header
// remains the ONE compile-time instantiation every header-level kernel in
// the tree uses; nothing about its interface changed when the bodies
// moved.

#pragma once

#include <cmath>
#include <cstddef>

#if !defined(OPTINTER_DISABLE_SIMD) && defined(__AVX512F__) && \
    defined(__AVX512BW__) && defined(__AVX512DQ__) &&          \
    defined(__AVX512VL__) && defined(__FMA__)
#define OPTINTER_SIMD_AVX512 1
#include <immintrin.h>
#elif !defined(OPTINTER_DISABLE_SIMD) && defined(__AVX2__) && defined(__FMA__)
#define OPTINTER_SIMD_AVX2 1
#include <immintrin.h>
#elif !defined(OPTINTER_DISABLE_SIMD) && defined(__SSE2__)
#define OPTINTER_SIMD_SSE2 1
#include <emmintrin.h>
#elif !defined(OPTINTER_DISABLE_SIMD) && \
    (defined(__ARM_NEON) || defined(__ARM_NEON__))
#define OPTINTER_SIMD_NEON 1
#include <arm_neon.h>
#else
#define OPTINTER_SIMD_SCALAR 1
#endif

namespace optinter {
namespace simd {

#include "tensor/simd_ops.inc"

}  // namespace simd
}  // namespace optinter
