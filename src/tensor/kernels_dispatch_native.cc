// Native kernel variant: gemm_body.inc compiled with the same flags as
// the rest of the binary, reusing the compile-time ::optinter::simd
// backend directly. Always present (every compiler, every arch,
// -DOPTINTER_DISABLE_SIMD included), so runtime dispatch can never come
// up empty; on GCC/x86 builds it usually duplicates one of the pragma
// variants and is deduplicated by name in dispatch.cc.

#include "tensor/kernels_variant.h"

#include "tensor/simd.h"

namespace optinter {
namespace kvar_native {

namespace simd {
using namespace ::optinter::simd;  // NOLINT
}  // namespace simd

#include "tensor/gemm_body.inc"

}  // namespace kvar_native

const KernelTable* GetKernelVariantNative() { return &kvar_native::kTable; }

}  // namespace optinter
