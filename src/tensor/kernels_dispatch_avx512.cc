// AVX-512 kernel variant for runtime dispatch: 16-lane simd backend with
// a re-tuned 8×32 GEMM micro-tile and 512-bit maddubs int8 kernels.
// Requires F+BW+DQ+VL (see simd_ops.inc); additionally gated on a CMake
// compile check (OPTINTER_HAVE_AVX512_VARIANT) so ancient assemblers
// degrade to a binary without this variant instead of a build break.
// dispatch.cc only selects it when CPUID reports all four subsets.

#include "tensor/kernels_variant.h"

#if OPTINTER_KV_X86_PRAGMA && defined(OPTINTER_HAVE_AVX512_VARIANT)

#pragma GCC push_options
#pragma GCC target("avx512f,avx512bw,avx512dq,avx512vl,fma")

#undef OPTINTER_SIMD_AVX512
#undef OPTINTER_SIMD_AVX2
#undef OPTINTER_SIMD_SSE2
#undef OPTINTER_SIMD_NEON
#undef OPTINTER_SIMD_SCALAR
#define OPTINTER_SIMD_AVX512 1

namespace optinter {
namespace kvar_avx512 {

namespace simd {
#include "tensor/simd_ops.inc"
}  // namespace simd

#include "tensor/gemm_body.inc"

}  // namespace kvar_avx512
}  // namespace optinter

#pragma GCC pop_options

namespace optinter {
const KernelTable* GetKernelVariantAvx512() { return &kvar_avx512::kTable; }
}  // namespace optinter

#else  // !OPTINTER_KV_X86_PRAGMA || !OPTINTER_HAVE_AVX512_VARIANT

namespace optinter {
const KernelTable* GetKernelVariantAvx512() { return nullptr; }
}  // namespace optinter

#endif
