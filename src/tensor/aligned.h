// 64-byte-aligned storage for tensor and kernel-workspace buffers.
//
// Vector kernels use unaligned loads (penalty-free on aligned addresses
// for every supported ISA), but keeping every buffer cache-line-aligned
// means packed GEMM panels never straddle a line, streaming accesses hit
// whole lines, and false sharing between per-chunk partial buffers at
// 64-byte granularity is impossible by construction.

#pragma once

#include <cstddef>
#include <new>
#include <vector>

namespace optinter {

/// Cache-line (64-byte) alignment for all float tensor storage.
inline constexpr size_t kTensorAlignment = 64;

/// Minimal std::allocator replacement handing out 64-byte-aligned blocks
/// via the C++17 aligned operator new.
template <typename T>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() = default;
  template <typename U>
  constexpr AlignedAllocator(const AlignedAllocator<U>&) noexcept {}

  T* allocate(size_t n) {
    return static_cast<T*>(::operator new(
        n * sizeof(T), std::align_val_t(kTensorAlignment)));
  }
  void deallocate(T* p, size_t) noexcept {
    ::operator delete(p, std::align_val_t(kTensorAlignment));
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U>&) const noexcept {
    return true;
  }
  template <typename U>
  bool operator!=(const AlignedAllocator<U>&) const noexcept {
    return false;
  }
};

/// std::vector whose data() is always 64-byte aligned.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

/// True when `p` is aligned for kTensorAlignment. Kernels debug-assert
/// this on the buffers they allocate themselves (packing panels).
inline bool IsTensorAligned(const void* p) {
  return (reinterpret_cast<size_t>(p) & (kTensorAlignment - 1)) == 0;
}

}  // namespace optinter
