// Runtime CPU feature detection for the kernel dispatch layer.
//
// Queried exactly once (first use) and cached; the dispatch table in
// dispatch.h is selected from this so one binary can pick the widest
// kernel variant the host actually supports. All fields are false on
// non-x86 targets — dispatch then falls back to the natively compiled
// variant (NEON or scalar).

#pragma once

namespace optinter {

struct CpuFeatures {
  bool sse2 = false;
  bool avx2 = false;
  bool fma = false;
  bool avx512f = false;
  bool avx512bw = false;
  bool avx512dq = false;
  bool avx512vl = false;
};

/// Host features, detected once via CPUID (GCC/clang builtins) and cached.
/// Thread-safe.
const CpuFeatures& GetCpuFeatures();

}  // namespace optinter
