#include "tensor/dispatch.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "tensor/cpu_features.h"
#include "tensor/simd.h"

namespace optinter {

namespace {

// True when the host can execute the named variant. The pragma variants
// have fixed ISA requirements; the native variant requires whatever
// simd.h selected for this whole binary (it is compiled with the same
// flags as every other TU).
bool HostSupports(const KernelTable* t) {
  const CpuFeatures& f = GetCpuFeatures();
  if (t == GetKernelVariantAvx512()) {
    return f.avx512f && f.avx512bw && f.avx512dq && f.avx512vl && f.avx2 &&
           f.fma;
  }
  if (t == GetKernelVariantAvx2()) return f.avx2 && f.fma;
  if (t == GetKernelVariantSse2()) return true;  // x86-64 baseline
  if (t == GetKernelVariantScalar()) return true;
  // Native: gate on the compile-time backend of the binary.
#if defined(OPTINTER_SIMD_AVX512)
  return f.avx512f && f.avx512bw && f.avx512dq && f.avx512vl && f.fma;
#elif defined(OPTINTER_SIMD_AVX2)
  return f.avx2 && f.fma;
#else
  return true;  // sse2 / neon / scalar: the baseline the binary targets
#endif
}

// Compiled-in + host-supported variants in auto-selection preference
// order, deduplicated by name (on a stock GCC build the native variant
// duplicates the pragma avx2-fma one).
std::vector<const KernelTable*> SupportedTables() {
  const KernelTable* candidates[] = {
      GetKernelVariantAvx512(), GetKernelVariantAvx2(),
      GetKernelVariantNative(), GetKernelVariantSse2(),
      GetKernelVariantScalar()};
  std::vector<const KernelTable*> out;
  for (const KernelTable* t : candidates) {
    if (t == nullptr || !HostSupports(t)) continue;
    bool dup = false;
    for (const KernelTable* have : out) {
      if (std::strcmp(have->name, t->name) == 0) dup = true;
    }
    if (!dup) out.push_back(t);
  }
  return out;
}

const KernelTable* SelectStartupTable() {
  const std::vector<const KernelTable*> tables = SupportedTables();
  // SupportedTables is never empty: the native variant always exists and
  // is always host-supported (the whole binary shares its ISA).
  const char* want = std::getenv("OPTINTER_SIMD");
  if (want != nullptr && want[0] != '\0' && std::strcmp(want, "auto") != 0) {
    for (const KernelTable* t : tables) {
      if (std::strcmp(t->name, want) == 0) return t;
    }
    std::fprintf(stderr,
                 "optinter: OPTINTER_SIMD=%s is not available on this "
                 "host/binary; falling back to %s\n",
                 want, tables.front()->name);
  }
  return tables.front();
}

std::atomic<const KernelTable*> g_active{nullptr};
std::once_flag g_select_once;

}  // namespace

const KernelTable& ActiveKernels() {
  const KernelTable* t = g_active.load(std::memory_order_acquire);
  if (t != nullptr) return *t;
  std::call_once(g_select_once, [] {
    g_active.store(SelectStartupTable(), std::memory_order_release);
  });
  return *g_active.load(std::memory_order_acquire);
}

const char* ActiveKernelBackend() { return ActiveKernels().name; }

std::vector<const KernelTable*> AvailableKernelBackends() {
  return SupportedTables();
}

bool SelectKernelBackendForTest(const char* name) {
  ActiveKernels();  // ensure startup selection ran (keeps call_once spent)
  const std::vector<const KernelTable*> tables = SupportedTables();
  if (name != nullptr && std::strcmp(name, "auto") == 0) {
    g_active.store(SelectStartupTable(), std::memory_order_release);
    return true;
  }
  for (const KernelTable* t : tables) {
    if (name != nullptr && std::strcmp(t->name, name) == 0) {
      g_active.store(t, std::memory_order_release);
      return true;
    }
  }
  return false;
}

}  // namespace optinter
