// int8 quantized GEMM for the inference-only serving path.
//
// Scheme (chosen so the OUTPUT of the quantized GEMM is bitwise identical
// under every dispatch backend):
//
//  * Activations are quantized dynamically per ROW to UNSIGNED 7-bit
//    [0, 127] over the range [min(row_min, 0), max(row_max, 0)] with an
//    asymmetric zero-point. Capping at 127 (not 255) makes the AVX2/AVX-512
//    `maddubs` pairwise u8×s8 → i16 sums structurally incapable of
//    saturating (127·127·2 = 32258 < 32767), so the integer accumulation
//    is EXACT — no backend-dependent clamping.
//  * Weights are quantized offline per OUTPUT ROW to symmetric int8
//    [-127, 127], with the per-row sum of quantized weights precomputed
//    so the activation zero-point can be folded out of the inner loop:
//        Σ_p (qa−zp)·qw = Σ_p qa·qw − zp·rowsum.
//  * The inner product runs in pure int32 through the dispatch table
//    (KernelTable::int8_gemm_nt_acc — integer math, associative, exact);
//    the ONLY float rounding happens here in shared non-variant code:
//        c[i,j] = sa[i]·sw[j]·float(acc − zp[i]·rowsum[j]) + bias[j].
//    Identical machine code for every backend ⇒ identical output bits.
//
// Training never touches any of this; see DESIGN.md §11.

#pragma once

#include <cstddef>
#include <cstdint>

namespace optinter {

/// Quantized activation values are capped at this (unsigned 7-bit).
inline constexpr int32_t kInt8ActMax = 127;
/// Symmetric weight quantization range.
inline constexpr int32_t kInt8WeightMax = 127;

/// Per-row dynamic activation quantization of x[m×k]:
///   q[i,t] = clamp(lrintf(x[i,t]/scale[i]) + zp[i], 0, 127).
/// The quantization range always includes 0 so ReLU-sparse rows stay
/// exact at zero. An all-zero row gets scale = 1, zp = 0, q = 0.
void QuantizeActivationRows(const float* x, size_t m, size_t k, uint8_t* q,
                            float* scale, int32_t* zp);

/// Per-output-row symmetric weight quantization of w[n×k]:
///   q[j,t] = clamp(lrintf(w[j,t]·127/max|w[j,·]|), -127, 127),
///   scale[j] = max|w[j,·]|/127, rowsum[j] = Σ_t q[j,t].
/// An all-zero row gets scale = 0 (its dequantized contribution is 0).
void QuantizeWeightsPerRow(const float* w, size_t n, size_t k, int8_t* q,
                           float* scale, int32_t* rowsum);

/// C[m×n] = dequant(Qa[m×k] · Qw[n×k]^T) + bias — the inference Linear
/// forward. `bias` may be null. Integer accumulation goes through the
/// active dispatch table; the fp32 epilogue is shared code (see file
/// comment). Serial: serving shapes are small and the serving layer
/// provides its own request-level parallelism.
void Int8GemmNT(const uint8_t* a, const float* a_scale, const int32_t* a_zp,
                const int8_t* b, const float* b_scale,
                const int32_t* b_rowsum, const float* bias, float* c,
                size_t m, size_t k, size_t n);

}  // namespace optinter
