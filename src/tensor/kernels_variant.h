// Shared prelude for the kernel-variant translation units
// (kernels_dispatch_*.cc). Pulls in — AT BASELINE COMPILE OPTIONS —
// everything gemm_body.inc and simd_ops.inc reference, so the
// `#pragma GCC target` regions in the variant TUs contain only code we
// wrote, never a header parse.
//
// Two properties of GCC's target-option handling make the variant scheme
// sound (both verified against the toolchain this repo builds with):
//
//  * A template defined at baseline (ParallelForChunks, AlignedVector)
//    but instantiated from inside a target region is compiled with its
//    DEFINITION-site options, and GCC refuses to inline across a
//    target mismatch in the dangerous direction (an ISA-richer callee
//    never inlines into a poorer caller). So variant bodies may freely
//    use the pool helpers and aligned buffers.
//  * The reverse inlining direction (baseline callee into an ISA-richer
//    caller) IS allowed and recompiles the inlined body with the
//    caller's options — which is why every float-math worker in
//    gemm_body.inc is OPTINTER_KV_NOINLINE and the lambdas handed to the
//    baseline pool templates only forward arguments: a forwarder picking
//    up foreign codegen cannot change any arithmetic.
//
// Predefined ISA macros (__AVX2__, __AVX512F__) do NOT track the pragma
// region, so variant selection inside simd_ops.inc / gemm_body.inc keys
// exclusively on the OPTINTER_SIMD_<BACKEND> force-macros each variant TU
// defines. This header must therefore NOT include tensor/simd.h (which
// defines those macros globally from the predefined ones).

#pragma once

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <cstring>

#include "common/thread_pool.h"
#include "tensor/aligned.h"
#include "tensor/dispatch.h"

#if defined(__x86_64__) || defined(__i386__) || defined(_M_X64)
#include <immintrin.h>
#endif
#if defined(__ARM_NEON) || defined(__ARM_NEON__)
#include <arm_neon.h>
#endif

// Two variant mechanisms, chosen per TU:
//
//  * DOWN-level variants (scalar, sse2) are compiled with per-file
//    -mno-avx/-mno-avx2/-mno-fma flags from CMake — a pragma cannot be
//    used to REMOVE ISA, because intrinsics already parsed at the richer
//    command-line options refuse to inline into a poorer target region
//    ("target specific option mismatch"). File flags re-parse everything
//    at true baseline, so these TUs are bitwise-equivalent to a
//    compile-time sse2/scalar build. Works on GCC and clang.
#if !defined(OPTINTER_DISABLE_SIMD) && defined(__x86_64__)
#define OPTINTER_KV_X86_BASELINE 1
#else
#define OPTINTER_KV_X86_BASELINE 0
#endif

//  * UP-level variants (avx2, avx512) use `#pragma GCC target` regions —
//    adding ISA is safe because GCC's intrinsic headers wrap
//    not-command-line-enabled intrinsics in their own target pragmas,
//    which inline fine into a richer region. GNU-only: clang rejects
//    intrinsics that only a pragma (not the command line) enables, so
//    under clang these hosts are covered by the native variant instead.
#if !defined(OPTINTER_DISABLE_SIMD) && defined(__x86_64__) && \
    defined(__GNUC__) && !defined(__clang__)
#define OPTINTER_KV_X86_PRAGMA 1
#else
#define OPTINTER_KV_X86_PRAGMA 0
#endif

#if defined(__GNUC__)
#define OPTINTER_KV_NOINLINE __attribute__((noinline))
#else
#define OPTINTER_KV_NOINLINE
#endif
