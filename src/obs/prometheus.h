// Prometheus text exposition (format version 0.0.4) for the metrics
// registry — the body the HTTP exporter serves at /metrics.
//
// Renders from a MetricsRegistry::ToJson() snapshot, so the encoder needs
// no privileged access to the registry and is trivially unit-testable
// against hand-built snapshots. Mapping:
//
//   counters    → `# TYPE <name> counter` + one sample, value as integer
//   gauges      → `# TYPE <name> gauge` + one sample
//   histograms  → `# TYPE <name> histogram` + CUMULATIVE `_bucket{le=...}`
//                 samples (the registry stores per-bucket counts; the
//                 encoder accumulates), a final `le="+Inf"` bucket equal
//                 to `_count`, then `_sum` and `_count`
//
// Metric names are sanitized to the Prometheus grammar
// [a-zA-Z_:][a-zA-Z0-9_:]* — the repo's dotted names ("serve.latency_us")
// become underscored ("serve_latency_us"), with the original recorded in
// the `# HELP` line. Label values are escaped per the spec (backslash,
// double-quote, newline).
//
// This library sits below src/common, so nothing here may include
// common/ headers.

#pragma once

#include <string>
#include <string_view>

#include "obs/json.h"

namespace optinter {
namespace obs {

/// `name` mapped onto the Prometheus metric-name grammar: every character
/// outside [a-zA-Z0-9_:] becomes '_', and a leading digit gets a '_'
/// prefix. Empty input renders as "_".
std::string PrometheusSanitizeName(std::string_view name);

/// `value` escaped for use inside a label-value string literal
/// (backslash, double-quote and newline escapes).
std::string PrometheusEscapeLabelValue(std::string_view value);

/// Renders a MetricsRegistry::ToJson()-shaped snapshot (object with
/// "counters", "gauges", "histograms") as text exposition. Unknown or
/// malformed sections are skipped, never fatal — the scrape endpoint must
/// not take the process down.
std::string RenderPrometheusText(const JsonValue& metrics_snapshot);

/// Convenience: snapshot MetricsRegistry::Global() and render it.
std::string RenderPrometheusText();

}  // namespace obs
}  // namespace optinter
