#include "obs/registry.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace optinter {
namespace obs {

namespace {

// -1 = uninitialized (read env on first use), 0 = off, 1 = on.
std::atomic<int> g_enabled{-1};

bool EnvDisables() {
  const char* v = std::getenv("OPTINTER_OBS");
  if (v == nullptr) return false;
  return std::strcmp(v, "0") == 0 || std::strcmp(v, "off") == 0 ||
         std::strcmp(v, "false") == 0;
}

}  // namespace

bool Enabled() {
  int v = g_enabled.load(std::memory_order_relaxed);
  if (v < 0) {
    // Racing first calls all compute the same answer; last store wins.
    v = EnvDisables() ? 0 : 1;
    g_enabled.store(v, std::memory_order_relaxed);
  }
  return v != 0;
}

void SetEnabled(bool enabled) {
  g_enabled.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

namespace internal {

size_t ThisThreadShard() {
  static std::atomic<size_t> next{0};
  thread_local size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % Counter::kShards;
  return shard;
}

}  // namespace internal

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const Shard& s : shards_) {
    total += s.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (Shard& s : shards_) s.value.store(0, std::memory_order_relaxed);
}

void Gauge::Add(double delta) noexcept {
  double cur = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
  }
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  assert(!bounds_.empty());
  assert(std::is_sorted(bounds_.begin(), bounds_.end()));
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(num_buckets());
  for (size_t i = 0; i < num_buckets(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::Observe(double v) noexcept {
  const size_t idx = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
}

double Histogram::Quantile(double q) const {
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const uint64_t total = count();
  if (total == 0) return 0.0;
  // Rank of the target observation (1-based), then walk the cumulative
  // bucket counts and linearly interpolate inside the covering bucket.
  const double rank = q * static_cast<double>(total);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < num_buckets(); ++i) {
    const uint64_t in_bucket = bucket_count(i);
    if (in_bucket == 0) continue;
    const uint64_t next = cumulative + in_bucket;
    if (static_cast<double>(next) >= rank) {
      // Overflow bucket has no upper edge; report its lower edge (the
      // largest finite bound) — a conservative floor for the quantile.
      if (i == bounds_.size()) return bounds_.back();
      const double lower = i == 0 ? 0.0 : bounds_[i - 1];
      const double upper = bounds_[i];
      const double frac =
          (rank - static_cast<double>(cumulative)) /
          static_cast<double>(in_bucket);
      return lower + (upper - lower) * frac;
    }
    cumulative = next;
  }
  return bounds_.back();
}

void Histogram::Reset() {
  for (size_t i = 0; i < num_buckets(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> upper_bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>(std::move(upper_bounds));
  } else if (slot->bounds() != upper_bounds) {
    // obs sits below common/ and cannot use CHECK; abort directly. A
    // silent bounds mismatch would mis-bucket one call site forever.
    std::fprintf(stderr,
                 "MetricsRegistry::GetHistogram(\"%s\"): re-registration "
                 "with different upper_bounds\n",
                 name.c_str());
    std::abort();
  }
  return slot.get();
}

JsonValue MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  JsonValue out = JsonValue::MakeObject();
  JsonValue counters = JsonValue::MakeObject();
  for (const auto& [name, c] : counters_) {
    counters.Set(name, JsonValue::Uint(c->Value()));
  }
  out.Set("counters", std::move(counters));
  JsonValue gauges = JsonValue::MakeObject();
  for (const auto& [name, g] : gauges_) {
    gauges.Set(name, JsonValue::Double(g->Value()));
  }
  out.Set("gauges", std::move(gauges));
  JsonValue histograms = JsonValue::MakeObject();
  for (const auto& [name, h] : histograms_) {
    JsonValue hist = JsonValue::MakeObject();
    JsonValue bounds = JsonValue::MakeArray();
    for (const double b : h->bounds()) bounds.Push(JsonValue::Double(b));
    hist.Set("upper_bounds", std::move(bounds));
    JsonValue buckets = JsonValue::MakeArray();
    for (size_t i = 0; i < h->num_buckets(); ++i) {
      buckets.Push(JsonValue::Uint(h->bucket_count(i)));
    }
    hist.Set("bucket_counts", std::move(buckets));
    hist.Set("count", JsonValue::Uint(h->count()));
    hist.Set("sum", JsonValue::Double(h->sum()));
    histograms.Set(name, std::move(hist));
  }
  out.Set("histograms", std::move(histograms));
  return out;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

}  // namespace obs
}  // namespace optinter
