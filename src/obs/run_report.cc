#include "obs/run_report.h"

#include <cstdio>
#include <fstream>

namespace optinter {
namespace obs {

RunReport::RunReport(std::string run_name) {
  run_ = JsonValue::MakeObject();
  run_.Set("name", JsonValue::Str(std::move(run_name)));
}

void RunReport::SetMeta(const std::string& key, JsonValue v) {
  run_.Set(key, std::move(v));
}

void RunReport::AddSection(const std::string& key, JsonValue v) {
  for (auto& [k, existing] : sections_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  sections_.emplace_back(key, std::move(v));
}

void RunReport::CaptureMetrics() {
  AddSection("metrics", MetricsRegistry::Global().ToJson());
}

void RunReport::CaptureSpans() {
  AddSection("spans", Tracer::ToJson(Tracer::Collect()));
}

JsonValue RunReport::ToJson() const {
  JsonValue out = JsonValue::MakeObject();
  out.Set("schema_version", JsonValue::Int(1));
  out.Set("run", run_);
  for (const auto& [key, value] : sections_) {
    out.Set(key, value);
  }
  return out;
}

bool RunReport::WriteFile(const std::string& path, std::string* error) const {
  // Write-then-rename: WriteEvery rewrites the same path periodically, so
  // truncating in place would let anything tailing the report read torn
  // JSON. rename(2) is atomic within a filesystem, so readers see either
  // the previous complete report or the new one.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::out | std::ios::trunc);
    if (!out) {
      if (error != nullptr) *error = "cannot open " + tmp + " for writing";
      return false;
    }
    out << ToJson().Serialize(/*indent=*/2) << "\n";
    out.flush();
    if (!out) {
      if (error != nullptr) *error = "write to " + tmp + " failed";
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    if (error != nullptr) {
      *error = "rename " + tmp + " -> " + path + " failed";
    }
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

void RunReport::WriteEvery(const std::string& path, double seconds) {
  periodic_path_ = path;
  periodic_seconds_ = seconds;
  periodic_armed_ = true;
  last_flush_ = std::chrono::steady_clock::now();
}

bool RunReport::MaybeWriteEvery() {
  if (!periodic_armed_) return false;
  const auto now = std::chrono::steady_clock::now();
  if (std::chrono::duration<double>(now - last_flush_).count() <
      periodic_seconds_) {
    return false;
  }
  last_flush_ = now;
  CaptureMetrics();
  CaptureSpans();
  WriteFile(periodic_path_);
  return true;
}

}  // namespace obs
}  // namespace optinter
