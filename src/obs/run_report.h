// JSON run-report exporter: one file per run aggregating the metrics
// registry snapshot, the merged trace-span profile and caller-provided
// sections (trainer telemetry, search dynamics, bench rows).
//
// Schema (stable; bump schema_version on breaking change):
//   {
//     "schema_version": 1,
//     "run": {"name": "...", <caller metadata>},
//     "metrics": {"counters": {...}, "gauges": {...}, "histograms": {...}},
//     "spans": {"name": "run", "ns": ..., "count": ..., "children": [...]},
//     <caller sections, e.g. "telemetry", "search_dynamics", "rows">
//   }

#pragma once

#include <chrono>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace optinter {
namespace obs {

/// Builder for one run report. Not thread-safe; build from the driver
/// thread after instrumented work has quiesced.
class RunReport {
 public:
  explicit RunReport(std::string run_name);

  /// Adds a key under the "run" metadata object.
  void SetMeta(const std::string& key, JsonValue v);

  /// Adds (or replaces) a top-level section.
  void AddSection(const std::string& key, JsonValue v);

  /// Snapshots MetricsRegistry::Global() into the "metrics" section.
  void CaptureMetrics();

  /// Snapshots Tracer::Collect() into the "spans" section.
  void CaptureSpans();

  JsonValue ToJson() const;

  /// Writes the pretty-printed report to `path`. Returns false (with a
  /// message in `*error` when non-null) on IO failure.
  bool WriteFile(const std::string& path, std::string* error = nullptr) const;

  /// Arms periodic flushing: from now on MaybeWriteEvery() re-captures
  /// metrics + spans and rewrites `path` whenever at least `seconds` have
  /// elapsed since the previous flush. The first flush happens `seconds`
  /// after this call, so a run shorter than the interval writes only its
  /// caller-driven final report.
  void WriteEvery(const std::string& path, double seconds);

  /// Flushes if armed and due; returns whether a write happened. Must be
  /// called from a quiescent point (it runs Tracer::Collect, same rule as
  /// CaptureSpans); IO failures are swallowed — a periodic flush is best
  /// effort and the caller's final WriteFile still reports them.
  bool MaybeWriteEvery();

 private:
  JsonValue run_;  // object
  std::vector<std::pair<std::string, JsonValue>> sections_;
  std::string periodic_path_;
  double periodic_seconds_ = 0.0;
  bool periodic_armed_ = false;
  std::chrono::steady_clock::time_point last_flush_{};
};

}  // namespace obs
}  // namespace optinter
