// JSON run-report exporter: one file per run aggregating the metrics
// registry snapshot, the merged trace-span profile and caller-provided
// sections (trainer telemetry, search dynamics, bench rows).
//
// Schema (stable; bump schema_version on breaking change):
//   {
//     "schema_version": 1,
//     "run": {"name": "...", <caller metadata>},
//     "metrics": {"counters": {...}, "gauges": {...}, "histograms": {...}},
//     "spans": {"name": "run", "ns": ..., "count": ..., "children": [...]},
//     <caller sections, e.g. "telemetry", "search_dynamics", "rows">
//   }

#pragma once

#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace optinter {
namespace obs {

/// Builder for one run report. Not thread-safe; build from the driver
/// thread after instrumented work has quiesced.
class RunReport {
 public:
  explicit RunReport(std::string run_name);

  /// Adds a key under the "run" metadata object.
  void SetMeta(const std::string& key, JsonValue v);

  /// Adds (or replaces) a top-level section.
  void AddSection(const std::string& key, JsonValue v);

  /// Snapshots MetricsRegistry::Global() into the "metrics" section.
  void CaptureMetrics();

  /// Snapshots Tracer::Collect() into the "spans" section.
  void CaptureSpans();

  JsonValue ToJson() const;

  /// Writes the pretty-printed report to `path`. Returns false (with a
  /// message in `*error` when non-null) on IO failure.
  bool WriteFile(const std::string& path, std::string* error = nullptr) const;

 private:
  JsonValue run_;  // object
  std::vector<std::pair<std::string, JsonValue>> sections_;
};

}  // namespace obs
}  // namespace optinter
