#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <memory>
#include <mutex>

namespace optinter {
namespace obs {
namespace internal {

// Per-thread span tree. Nodes are owned by their parent and live for the
// process lifetime (Reset zeroes stats but keeps the structure), so
// pointers held by open TraceSpans never dangle.
//
// Concurrency: a node's stats are relaxed atomics (owner thread writes,
// Collect reads). A thread only mutates its *own* tree's child lists, but
// Collect traverses them from another thread, so child creation and
// collection serialize on one global mutex — child creation happens only
// the first time a thread reaches a given span path, so the lock is off
// the steady-state hot path.
struct SpanNode {
  explicit SpanNode(const char* n, SpanNode* p) : name(n), parent(p) {}

  const char* name;
  SpanNode* parent;
  std::atomic<uint64_t> ns{0};
  std::atomic<uint64_t> cpu_ns{0};
  std::atomic<uint64_t> cycles{0};
  std::atomic<uint64_t> instructions{0};
  std::atomic<uint64_t> llc_misses{0};
  std::atomic<uint64_t> count{0};
  std::vector<std::unique_ptr<SpanNode>> children;
};

namespace {

struct ThreadBuffer {
  ThreadBuffer() : root("thread", nullptr), current(&root) {}
  SpanNode root;
  SpanNode* current;
};

std::mutex& GlobalMutex() {
  static std::mutex* m = new std::mutex();
  return *m;
}

std::vector<ThreadBuffer*>& Buffers() {
  static std::vector<ThreadBuffer*>* v = new std::vector<ThreadBuffer*>();
  return *v;
}

ThreadBuffer* GetThreadBuffer() {
  // Heap-allocated and never freed: spans may be recorded on pool workers
  // whose data must outlive the thread for later Collect() calls.
  thread_local ThreadBuffer* buffer = [] {
    auto* b = new ThreadBuffer();
    std::lock_guard<std::mutex> lock(GlobalMutex());
    Buffers().push_back(b);
    return b;
  }();
  return buffer;
}

SpanNode* FindOrCreateChild(SpanNode* parent, const char* name) {
  // Fast path: same string literal yields pointer equality; distinct
  // literals with equal text still merge via the strcmp fallback.
  for (const auto& child : parent->children) {
    if (child->name == name || std::strcmp(child->name, name) == 0) {
      return child.get();
    }
  }
  std::lock_guard<std::mutex> lock(GlobalMutex());
  parent->children.push_back(std::make_unique<SpanNode>(name, parent));
  return parent->children.back().get();
}

void MergeInto(const SpanNode& node, SpanProfile* out) {
  out->total_ns += node.ns.load(std::memory_order_relaxed);
  out->cpu_ns += node.cpu_ns.load(std::memory_order_relaxed);
  out->cycles += node.cycles.load(std::memory_order_relaxed);
  out->instructions += node.instructions.load(std::memory_order_relaxed);
  out->llc_misses += node.llc_misses.load(std::memory_order_relaxed);
  out->count += node.count.load(std::memory_order_relaxed);
  for (const auto& child : node.children) {
    SpanProfile* slot = nullptr;
    for (SpanProfile& existing : out->children) {
      if (existing.name == child->name) {
        slot = &existing;
        break;
      }
    }
    if (slot == nullptr) {
      out->children.emplace_back();
      slot = &out->children.back();
      slot->name = child->name;
    }
    MergeInto(*child, slot);
  }
}

void SortProfile(SpanProfile* p) {
  std::sort(p->children.begin(), p->children.end(),
            [](const SpanProfile& a, const SpanProfile& b) {
              return a.name < b.name;
            });
  for (SpanProfile& child : p->children) SortProfile(&child);
}

void ResetNode(SpanNode* node) {
  node->ns.store(0, std::memory_order_relaxed);
  node->cpu_ns.store(0, std::memory_order_relaxed);
  node->cycles.store(0, std::memory_order_relaxed);
  node->instructions.store(0, std::memory_order_relaxed);
  node->llc_misses.store(0, std::memory_order_relaxed);
  node->count.store(0, std::memory_order_relaxed);
  for (auto& child : node->children) ResetNode(child.get());
}

}  // namespace

SpanNode* EnterSpan(const char* name) {
  ThreadBuffer* tb = GetThreadBuffer();
  SpanNode* node = FindOrCreateChild(tb->current, name);
  tb->current = node;
  return node;
}

void ExitSpan(SpanNode* node, uint64_t elapsed_ns, uint64_t cpu_ns,
              const HwCounters& hw_delta) {
  node->ns.fetch_add(elapsed_ns, std::memory_order_relaxed);
  node->cpu_ns.fetch_add(cpu_ns, std::memory_order_relaxed);
  if (hw_delta.cycles != 0) {
    node->cycles.fetch_add(hw_delta.cycles, std::memory_order_relaxed);
  }
  if (hw_delta.instructions != 0) {
    node->instructions.fetch_add(hw_delta.instructions,
                                 std::memory_order_relaxed);
  }
  if (hw_delta.llc_misses != 0) {
    node->llc_misses.fetch_add(hw_delta.llc_misses,
                               std::memory_order_relaxed);
  }
  node->count.fetch_add(1, std::memory_order_relaxed);
  GetThreadBuffer()->current = node->parent;
}

}  // namespace internal

SpanProfile Tracer::Collect() {
  SpanProfile root;
  root.name = "run";
  {
    std::lock_guard<std::mutex> lock(internal::GlobalMutex());
    for (const internal::ThreadBuffer* tb : internal::Buffers()) {
      internal::MergeInto(tb->root, &root);
    }
  }
  // The per-thread roots carry no timing of their own; the run totals are
  // the sums of top-level spans.
  root.total_ns = 0;
  root.cpu_ns = 0;
  root.cycles = 0;
  root.instructions = 0;
  root.llc_misses = 0;
  root.count = 0;
  for (const SpanProfile& child : root.children) {
    root.total_ns += child.total_ns;
    root.cpu_ns += child.cpu_ns;
    root.cycles += child.cycles;
    root.instructions += child.instructions;
    root.llc_misses += child.llc_misses;
    root.count += child.count;
  }
  internal::SortProfile(&root);
  return root;
}

void Tracer::Reset() {
  std::lock_guard<std::mutex> lock(internal::GlobalMutex());
  for (internal::ThreadBuffer* tb : internal::Buffers()) {
    internal::ResetNode(&tb->root);
  }
}

JsonValue Tracer::ToJson(const SpanProfile& profile) {
  JsonValue out = JsonValue::MakeObject();
  out.Set("name", JsonValue::Str(profile.name));
  out.Set("ns", JsonValue::Uint(profile.total_ns));
  out.Set("cpu_ns", JsonValue::Uint(profile.cpu_ns));
  out.Set("cycles", JsonValue::Uint(profile.cycles));
  out.Set("instructions", JsonValue::Uint(profile.instructions));
  out.Set("llc_misses", JsonValue::Uint(profile.llc_misses));
  out.Set("count", JsonValue::Uint(profile.count));
  if (profile.name == "run") {
    // Recorded once per profile: what the counter layer could deliver and
    // why hardware columns are zero when it could not.
    const CounterStatus status = CountersStatus();
    JsonValue cs = JsonValue::MakeObject();
    cs.Set("cpu_time", JsonValue::Bool(status.cpu_time));
    cs.Set("hardware", JsonValue::Bool(status.hardware));
    cs.Set("provider", JsonValue::Str(status.provider));
    cs.Set("degradation_reason", JsonValue::Str(status.degradation_reason));
    out.Set("counter_status", std::move(cs));
  }
  if (!profile.children.empty()) {
    JsonValue children = JsonValue::MakeArray();
    for (const SpanProfile& child : profile.children) {
      children.Push(ToJson(child));
    }
    out.Set("children", std::move(children));
  }
  return out;
}

}  // namespace obs
}  // namespace optinter
