#include "obs/timeline.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <vector>

#include "obs/json.h"
#include "obs/registry.h"

namespace optinter {
namespace obs {
namespace {

struct TimelineEvent {
  const char* name = nullptr;
  uint64_t ts_ns = 0;
  uint64_t seq = 0;  // per-thread monotonic index (sort tie-break)
  char phase = 'B';
  char detail[Timeline::kDetailCapacity] = {0};
};

// Per-thread ring. The mutex is uncontended on the record path (only the
// owner thread writes); Flush from another thread locks it briefly per
// ring to copy a consistent snapshot, which keeps the whole timeline
// layer TSan-clean.
struct ThreadRing {
  explicit ThreadRing(uint32_t tid_in, size_t capacity)
      : tid(tid_in), events(capacity) {}

  void Record(const char* name, char phase, const char* detail,
              uint64_t ts_ns) {
    std::lock_guard<std::mutex> lock(mutex);
    TimelineEvent& e = events[next];
    e.name = name;
    e.ts_ns = ts_ns;
    e.seq = total;
    e.phase = phase;
    if (detail != nullptr) {
      std::strncpy(e.detail, detail, sizeof(e.detail) - 1);
      e.detail[sizeof(e.detail) - 1] = '\0';
    } else {
      e.detail[0] = '\0';
    }
    next = (next + 1) % events.size();
    ++total;
  }

  const uint32_t tid;
  std::mutex mutex;
  std::vector<TimelineEvent> events;
  size_t next = 0;      // slot the NEXT event goes into
  uint64_t total = 0;   // events ever recorded (>= events.size() ⇒ wrapped)
};

struct GlobalState {
  std::mutex mutex;
  std::vector<ThreadRing*> rings;  // leaked on purpose (outlive threads)
  std::string path;
  size_t capacity = 65536;
  uint32_t next_tid = 0;
  std::chrono::steady_clock::time_point epoch;
};

GlobalState& Global() {
  static GlobalState* g = new GlobalState();
  return *g;
}

// 0 = uninitialized, 1 = on, 2 = off.
std::atomic<int> g_mode{0};

void FlushAtExit() { Timeline::Flush(); }

int InitMode() {
  GlobalState& g = Global();
  std::lock_guard<std::mutex> lock(g.mutex);
  int mode = g_mode.load(std::memory_order_acquire);
  if (mode != 0) return mode;  // lost the init race
  const char* path = std::getenv("OPTINTER_OBS_TIMELINE");
  if (path == nullptr || path[0] == '\0') {
    g_mode.store(2, std::memory_order_release);
    return 2;
  }
  g.path = path;
  if (const char* cap = std::getenv("OPTINTER_OBS_TIMELINE_EVENTS")) {
    const long parsed = std::strtol(cap, nullptr, 10);
    if (parsed > 1) g.capacity = static_cast<size_t>(parsed);
  }
  g.epoch = std::chrono::steady_clock::now();
  std::atexit(FlushAtExit);
  g_mode.store(1, std::memory_order_release);
  return 1;
}

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - Global().epoch)
          .count());
}

ThreadRing* GetThreadRing() {
  // Heap-allocated and never freed: rings must outlive pool workers so a
  // flush after thread exit still sees their events.
  thread_local ThreadRing* ring = [] {
    GlobalState& g = Global();
    std::lock_guard<std::mutex> lock(g.mutex);
    auto* r = new ThreadRing(g.next_tid++, g.capacity);
    g.rings.push_back(r);
    return r;
  }();
  return ring;
}

void Record(const char* name, char phase, const char* detail) {
  GetThreadRing()->Record(name, phase, detail, NowNs());
}

}  // namespace

bool Timeline::Enabled() {
  int mode = g_mode.load(std::memory_order_acquire);
  if (mode == 0) mode = InitMode();
  return mode == 1;
}

void Timeline::RecordBegin(const char* name) {
  if (!Enabled()) return;
  Record(name, 'B', nullptr);
}

void Timeline::RecordEnd(const char* name) {
  if (!Enabled()) return;
  Record(name, 'E', nullptr);
}

void Timeline::RecordInstant(const char* name, const char* detail) {
  if (!Enabled()) return;
  Record(name, 'i', detail);
}

uint64_t Timeline::DroppedEvents() {
  GlobalState& g = Global();
  std::lock_guard<std::mutex> lock(g.mutex);
  uint64_t dropped = 0;
  for (ThreadRing* ring : g.rings) {
    std::lock_guard<std::mutex> ring_lock(ring->mutex);
    const uint64_t cap = ring->events.size();
    if (ring->total > cap) dropped += ring->total - cap;
  }
  return dropped;
}

std::string Timeline::RenderJson() {
  struct Snapshot {
    TimelineEvent event;
    uint32_t tid;
  };
  std::vector<Snapshot> all;
  uint64_t dropped = 0;
  uint32_t max_tid = 0;
  {
    GlobalState& g = Global();
    std::lock_guard<std::mutex> lock(g.mutex);
    for (ThreadRing* ring : g.rings) {
      std::lock_guard<std::mutex> ring_lock(ring->mutex);
      const uint64_t cap = ring->events.size();
      const uint64_t kept = std::min<uint64_t>(ring->total, cap);
      if (ring->total > cap) dropped += ring->total - cap;
      // Oldest surviving event: slot `next` once wrapped, slot 0 before.
      const size_t start = ring->total > cap ? ring->next : 0;
      for (uint64_t k = 0; k < kept; ++k) {
        all.push_back({ring->events[(start + k) % cap], ring->tid});
      }
      max_tid = std::max(max_tid, ring->tid);
    }
  }
  std::sort(all.begin(), all.end(), [](const Snapshot& a, const Snapshot& b) {
    if (a.event.ts_ns != b.event.ts_ns) return a.event.ts_ns < b.event.ts_ns;
    if (a.tid != b.tid) return a.tid < b.tid;
    return a.event.seq < b.event.seq;
  });

  JsonValue events = JsonValue::MakeArray();
  // Thread-name metadata so Perfetto labels the tracks.
  for (uint32_t t = 0; t <= max_tid && !all.empty(); ++t) {
    JsonValue meta = JsonValue::MakeObject();
    meta.Set("name", JsonValue::Str("thread_name"));
    meta.Set("ph", JsonValue::Str("M"));
    meta.Set("pid", JsonValue::Int(1));
    meta.Set("tid", JsonValue::Int(t));
    JsonValue args = JsonValue::MakeObject();
    args.Set("name", JsonValue::Str("optinter-thread-" + std::to_string(t)));
    meta.Set("args", std::move(args));
    events.Push(std::move(meta));
  }
  for (const Snapshot& s : all) {
    JsonValue e = JsonValue::MakeObject();
    e.Set("name", JsonValue::Str(s.event.name));
    e.Set("ph", JsonValue::Str(std::string(1, s.event.phase)));
    if (s.event.phase == 'i') e.Set("s", JsonValue::Str("t"));
    e.Set("ts", JsonValue::Double(static_cast<double>(s.event.ts_ns) * 1e-3));
    e.Set("pid", JsonValue::Int(1));
    e.Set("tid", JsonValue::Int(s.tid));
    if (s.event.detail[0] != '\0') {
      JsonValue args = JsonValue::MakeObject();
      args.Set("detail", JsonValue::Str(s.event.detail));
      e.Set("args", std::move(args));
    }
    events.Push(std::move(e));
  }

  JsonValue out = JsonValue::MakeObject();
  out.Set("displayTimeUnit", JsonValue::Str("ns"));
  JsonValue other = JsonValue::MakeObject();
  other.Set("source", JsonValue::Str("optinter"));
  other.Set("dropped_events", JsonValue::Uint(dropped));
  out.Set("otherData", std::move(other));
  out.Set("traceEvents", std::move(events));
  return out.Serialize(/*indent=*/-1);
}

bool Timeline::FlushTo(const std::string& path, std::string* error) {
  MetricsRegistry::Global()
      .GetGauge("obs.timeline.dropped_events")
      ->Set(static_cast<double>(DroppedEvents()));
  const std::string body = RenderJson();
  // Write-then-rename so anything tailing the timeline never reads a
  // torn file (same contract as RunReport::WriteFile).
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::out | std::ios::trunc);
    if (!out) {
      if (error != nullptr) *error = "cannot open " + tmp + " for writing";
      return false;
    }
    out << body << "\n";
    out.flush();
    if (!out) {
      if (error != nullptr) *error = "write to " + tmp + " failed";
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    if (error != nullptr) *error = "rename " + tmp + " -> " + path + " failed";
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

bool Timeline::Flush(std::string* error) {
  if (!Enabled()) return false;
  std::string path;
  {
    GlobalState& g = Global();
    std::lock_guard<std::mutex> lock(g.mutex);
    path = g.path;
  }
  if (path.empty()) return false;
  return FlushTo(path, error);
}

void Timeline::EnableForTest(const std::string& path, size_t capacity) {
  GlobalState& g = Global();
  std::lock_guard<std::mutex> lock(g.mutex);
  g.path = path;
  g.capacity = capacity < 2 ? 2 : capacity;
  g.epoch = std::chrono::steady_clock::now();
  for (ThreadRing* ring : g.rings) {
    std::lock_guard<std::mutex> ring_lock(ring->mutex);
    ring->events.assign(g.capacity, TimelineEvent{});
    ring->next = 0;
    ring->total = 0;
  }
  g_mode.store(1, std::memory_order_release);
}

void Timeline::DisableForTest() {
  GlobalState& g = Global();
  std::lock_guard<std::mutex> lock(g.mutex);
  for (ThreadRing* ring : g.rings) {
    std::lock_guard<std::mutex> ring_lock(ring->mutex);
    ring->next = 0;
    ring->total = 0;
  }
  g_mode.store(2, std::memory_order_release);
}

}  // namespace obs
}  // namespace optinter
