#include "obs/prometheus.h"

#include <cmath>
#include <cstdint>
#include <cstdio>

#include "obs/registry.h"

namespace optinter {
namespace obs {
namespace {

// Prometheus sample values are floats; render integral values without a
// fractional part (bucket counts read as integers) and everything else
// with enough digits to round-trip a scrape comparison.
std::string FormatNumber(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

double NumberOf(const JsonValue& v) {
  return v.is_number() ? v.number() : 0.0;
}

void AppendHeader(std::string* out, const std::string& sanitized,
                  const std::string& original, const char* type) {
  out->append("# HELP ");
  out->append(sanitized);
  out->append(" source metric \"");
  // HELP text uses the label-value escapes minus the quote rule; escaping
  // quotes too is harmless and keeps one escaper.
  out->append(PrometheusEscapeLabelValue(original));
  out->append("\"\n# TYPE ");
  out->append(sanitized);
  out->push_back(' ');
  out->append(type);
  out->push_back('\n');
}

}  // namespace

std::string PrometheusSanitizeName(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (out.empty()) return "_";
  if (out[0] >= '0' && out[0] <= '9') out.insert(out.begin(), '_');
  return out;
}

std::string PrometheusEscapeLabelValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\':
        out.append("\\\\");
        break;
      case '"':
        out.append("\\\"");
        break;
      case '\n':
        out.append("\\n");
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string RenderPrometheusText(const JsonValue& metrics_snapshot) {
  std::string out;
  if (const JsonValue* counters = metrics_snapshot.Find("counters")) {
    for (const auto& [name, value] : counters->members()) {
      const std::string sanitized = PrometheusSanitizeName(name);
      AppendHeader(&out, sanitized, name, "counter");
      out.append(sanitized);
      out.push_back(' ');
      out.append(FormatNumber(NumberOf(value)));
      out.push_back('\n');
    }
  }
  if (const JsonValue* gauges = metrics_snapshot.Find("gauges")) {
    for (const auto& [name, value] : gauges->members()) {
      const std::string sanitized = PrometheusSanitizeName(name);
      AppendHeader(&out, sanitized, name, "gauge");
      out.append(sanitized);
      out.push_back(' ');
      out.append(FormatNumber(NumberOf(value)));
      out.push_back('\n');
    }
  }
  if (const JsonValue* histograms = metrics_snapshot.Find("histograms")) {
    for (const auto& [name, hist] : histograms->members()) {
      const JsonValue* bounds = hist.Find("upper_bounds");
      const JsonValue* buckets = hist.Find("bucket_counts");
      if (bounds == nullptr || buckets == nullptr ||
          bounds->type() != JsonValue::Type::kArray ||
          buckets->type() != JsonValue::Type::kArray) {
        continue;
      }
      const std::string sanitized = PrometheusSanitizeName(name);
      AppendHeader(&out, sanitized, name, "histogram");
      // Registry buckets are per-interval counts (bounds.size() finite
      // buckets + one overflow slot); Prometheus buckets are cumulative.
      double cumulative = 0.0;
      for (size_t i = 0; i < bounds->size() && i < buckets->size(); ++i) {
        cumulative += NumberOf(buckets->at(i));
        out.append(sanitized);
        out.append("_bucket{le=\"");
        out.append(FormatNumber(NumberOf(bounds->at(i))));
        out.append("\"} ");
        out.append(FormatNumber(cumulative));
        out.push_back('\n');
      }
      if (buckets->size() > bounds->size()) {
        cumulative += NumberOf(buckets->at(buckets->size() - 1));
      }
      out.append(sanitized);
      out.append("_bucket{le=\"+Inf\"} ");
      out.append(FormatNumber(cumulative));
      out.push_back('\n');
      const JsonValue* sum = hist.Find("sum");
      const JsonValue* count = hist.Find("count");
      out.append(sanitized);
      out.append("_sum ");
      out.append(FormatNumber(sum != nullptr ? NumberOf(*sum) : 0.0));
      out.push_back('\n');
      out.append(sanitized);
      out.append("_count ");
      out.append(
          FormatNumber(count != nullptr ? NumberOf(*count) : cumulative));
      out.push_back('\n');
    }
  }
  return out;
}

std::string RenderPrometheusText() {
  return RenderPrometheusText(MetricsRegistry::Global().ToJson());
}

}  // namespace obs
}  // namespace optinter
