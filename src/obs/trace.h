// Scoped wall-clock trace spans with per-thread buffers.
//
//   void GemmTN(...) {
//     OPTINTER_TRACE_SPAN("gemm_tn");
//     ...
//   }
//
// Each thread owns a private span tree keyed by the nesting path of span
// names: entering a span walks to (or creates) the child node of the
// current node and records elapsed nanoseconds + call count on exit. No
// per-event allocation or logging — a span is two steady_clock reads plus
// two relaxed atomic adds on an already-resolved node, so kernels can be
// instrumented without measurable overhead, and pool workers never contend
// with each other.
//
// Tracer::Collect() merges all threads' trees by span name into one
// deterministic profile (children sorted by name). Parallel kernels open
// their span on the *calling* thread around the fan-out + wait, so kernel
// timings nest under the caller's epoch/step spans and sum to wall-clock.
//
// Kill switches: the runtime switch is obs::Enabled() (see registry.h);
// compiling with -DOPTINTER_DISABLE_OBS removes the macro entirely.
//
// This library sits below src/common, so nothing here may include common/
// headers.

#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/registry.h"

namespace optinter {
namespace obs {

namespace internal {
struct SpanNode;
SpanNode* EnterSpan(const char* name);
void ExitSpan(SpanNode* node, uint64_t elapsed_ns);
}  // namespace internal

/// One node of the merged span profile returned by Tracer::Collect().
struct SpanProfile {
  std::string name;
  /// Total wall-clock nanoseconds spent inside this span (including
  /// children, since children run within the parent's scope).
  uint64_t total_ns = 0;
  uint64_t count = 0;
  std::vector<SpanProfile> children;  // sorted by name

  double total_seconds() const {
    return static_cast<double>(total_ns) * 1e-9;
  }
};

/// Global access to the merged trace profile.
class Tracer {
 public:
  /// Merges every thread's span tree into one profile rooted at "run".
  /// The root's total_ns is the sum of its children. Deterministic
  /// (children sorted by name) given the same recorded spans. Call when
  /// instrumented threads are quiescent (e.g. after ThreadPool::Wait) for
  /// an exact snapshot.
  static SpanProfile Collect();

  /// Zeroes all recorded stats (node structure and thread registrations
  /// are kept). Must not race with open spans.
  static void Reset();

  /// JSON form: {"name", "ns", "count", "children": [...]}.
  static JsonValue ToJson(const SpanProfile& profile);
};

/// RAII span. Does nothing when obs::Enabled() is false at entry.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (!Enabled()) {
      node_ = nullptr;
      return;
    }
    node_ = internal::EnterSpan(name);
    start_ = std::chrono::steady_clock::now();
  }

  ~TraceSpan() {
    if (node_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    internal::ExitSpan(
        node_,
        static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                .count()));
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  internal::SpanNode* node_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace obs
}  // namespace optinter

#ifdef OPTINTER_DISABLE_OBS
#define OPTINTER_TRACE_SPAN(name)
#else
#define OPTINTER_TRACE_SPAN_CONCAT2(a, b) a##b
#define OPTINTER_TRACE_SPAN_CONCAT(a, b) OPTINTER_TRACE_SPAN_CONCAT2(a, b)
/// Opens a scoped trace span named `name` (a string literal that must
/// outlive the program, which literals do).
#define OPTINTER_TRACE_SPAN(name)                                    \
  ::optinter::obs::TraceSpan OPTINTER_TRACE_SPAN_CONCAT(_optinter_span_, \
                                                        __LINE__)(name)
#endif
