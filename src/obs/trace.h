// Scoped trace spans with per-thread buffers: wall clock, thread CPU
// time, and (where the kernel permits perf_event_open) hardware counters.
//
//   void GemmTN(...) {
//     OPTINTER_TRACE_SPAN("gemm_tn");
//     ...
//   }
//
// Each thread owns a private span tree keyed by the nesting path of span
// names: entering a span walks to (or creates) the child node of the
// current node and records elapsed wall nanoseconds, thread CPU
// nanoseconds (CLOCK_THREAD_CPUTIME_ID), hardware-counter deltas
// (cycles / instructions / LLC misses via obs/counters.h — degrading
// per-thread to CPU-time-only when perf_event_open is refused), and a
// call count on exit. No per-event allocation or logging, and pool
// workers never contend with each other. When OPTINTER_OBS_TIMELINE is
// set, every span enter/exit additionally lands in the timeline ring
// (obs/timeline.h) for Perfetto export.
//
// Tracer::Collect() merges all threads' trees by span name into one
// deterministic profile (children sorted by name). Parallel kernels open
// their span on the *calling* thread around the fan-out + wait, so kernel
// timings nest under the caller's epoch/step spans and sum to wall-clock.
// CPU time is per-thread, so for a parallel region the calling thread's
// cpu_ns can be far below wall ns — the gap is time spent blocked on the
// pool.
//
// Kill switches: the runtime switch is obs::Enabled() (see registry.h) —
// a disabled span stays a single relaxed atomic load, no clock or counter
// reads; compiling with -DOPTINTER_DISABLE_OBS removes the macro
// entirely. Hardware counters alone can be disabled with
// OPTINTER_OBS_HW=0.
//
// This library sits below src/common, so nothing here may include common/
// headers.

#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/counters.h"
#include "obs/json.h"
#include "obs/registry.h"
#include "obs/timeline.h"

namespace optinter {
namespace obs {

namespace internal {
struct SpanNode;
SpanNode* EnterSpan(const char* name);
void ExitSpan(SpanNode* node, uint64_t elapsed_ns, uint64_t cpu_ns,
              const HwCounters& hw_delta);
}  // namespace internal

/// One node of the merged span profile returned by Tracer::Collect().
struct SpanProfile {
  std::string name;
  /// Total wall-clock nanoseconds spent inside this span (including
  /// children, since children run within the parent's scope).
  uint64_t total_ns = 0;
  /// Thread CPU nanoseconds of the span's OWN thread (including children
  /// that ran on the same thread; excludes pool workers' time, which is
  /// attributed to the spans they open).
  uint64_t cpu_ns = 0;
  /// Hardware-counter deltas (0 when the counter was unavailable on the
  /// recording threads — see Tracer::ToJson's "counter_status").
  uint64_t cycles = 0;
  uint64_t instructions = 0;
  uint64_t llc_misses = 0;
  uint64_t count = 0;
  std::vector<SpanProfile> children;  // sorted by name

  double total_seconds() const {
    return static_cast<double>(total_ns) * 1e-9;
  }
  double cpu_seconds() const { return static_cast<double>(cpu_ns) * 1e-9; }
};

/// Global access to the merged trace profile.
class Tracer {
 public:
  /// Merges every thread's span tree into one profile rooted at "run".
  /// The root's totals are the sum of its children. Deterministic
  /// (children sorted by name) given the same recorded spans. Call when
  /// instrumented threads are quiescent (e.g. after ThreadPool::Wait) for
  /// an exact snapshot.
  static SpanProfile Collect();

  /// Zeroes all recorded stats (node structure and thread registrations
  /// are kept). Must not race with open spans.
  static void Reset();

  /// JSON form: {"name", "ns", "cpu_ns", "cycles", "instructions",
  /// "llc_misses", "count", "children": [...]}. The "run" root
  /// additionally carries "counter_status" (obs/counters.h): whether CPU
  /// time and hardware counters were available, the provider, and the
  /// first degradation reason when they were not.
  static JsonValue ToJson(const SpanProfile& profile);
};

/// RAII span. Does nothing when obs::Enabled() is false at entry.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (!Enabled()) {
      node_ = nullptr;
      return;
    }
    name_ = name;
    node_ = internal::EnterSpan(name);
    if (Timeline::Enabled()) Timeline::RecordBegin(name);
    hw_active_ = internal::ReadThreadCounters(&hw_start_);
    cpu_start_ = ThreadCpuNow();
    start_ = std::chrono::steady_clock::now();
  }

  ~TraceSpan() {
    if (node_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    const uint64_t cpu_ns = ThreadCpuNow() - cpu_start_;
    HwCounters delta;
    if (hw_active_) {
      HwCounters end;
      if (internal::ReadThreadCounters(&end)) {
        delta.cycles = end.cycles - hw_start_.cycles;
        delta.instructions = end.instructions - hw_start_.instructions;
        delta.llc_misses = end.llc_misses - hw_start_.llc_misses;
      }
    }
    internal::ExitSpan(
        node_,
        static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                .count()),
        cpu_ns, delta);
    if (Timeline::Enabled()) Timeline::RecordEnd(name_);
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  internal::SpanNode* node_;
  const char* name_ = nullptr;
  std::chrono::steady_clock::time_point start_;
  uint64_t cpu_start_ = 0;
  HwCounters hw_start_;
  bool hw_active_ = false;
};

}  // namespace obs
}  // namespace optinter

#ifdef OPTINTER_DISABLE_OBS
#define OPTINTER_TRACE_SPAN(name)
#else
#define OPTINTER_TRACE_SPAN_CONCAT2(a, b) a##b
#define OPTINTER_TRACE_SPAN_CONCAT(a, b) OPTINTER_TRACE_SPAN_CONCAT2(a, b)
/// Opens a scoped trace span named `name` (a string literal that must
/// outlive the program, which literals do).
#define OPTINTER_TRACE_SPAN(name)                                    \
  ::optinter::obs::TraceSpan OPTINTER_TRACE_SPAN_CONCAT(_optinter_span_, \
                                                        __LINE__)(name)
#endif
