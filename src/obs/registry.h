// Thread-safe metrics registry: counters, gauges and fixed-bucket
// histograms keyed by name.
//
// Counters are sharded across cache-line-padded atomic slots indexed by a
// per-thread id, so hot kernels running on pool workers can increment
// without cross-core contention; reads sum the shards. Gauges and
// histograms use plain atomics (their call sites are batch-level, not
// per-element).
//
// Lifetime: metric objects returned by the registry are never destroyed or
// invalidated (ResetAll zeroes values but keeps registrations), so call
// sites may cache the pointer in a function-local static.
//
// This library sits below src/common (the thread pool is instrumented), so
// nothing here may include common/ headers.

#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/json.h"

namespace optinter {
namespace obs {

/// Process-wide observability kill-switch. Initialized lazily from the
/// OPTINTER_OBS environment variable ("0"/"off"/"false" disables; default
/// on); SetEnabled overrides. Instrumentation that pays per-call cost
/// beyond a relaxed atomic increment (clock reads, span bookkeeping)
/// checks this and becomes a near-free branch when disabled.
bool Enabled();
void SetEnabled(bool enabled);

namespace internal {
/// Stable small index for the calling thread, used to pick a counter shard.
size_t ThisThreadShard();
}  // namespace internal

/// Monotonic counter with per-thread sharded slots.
class Counter {
 public:
  static constexpr size_t kShards = 16;

  void Add(uint64_t n = 1) noexcept {
    shards_[internal::ThisThreadShard()].value.fetch_add(
        n, std::memory_order_relaxed);
  }
  void Increment() noexcept { Add(1); }

  /// Sum over all shards. Linearizable only when writers are quiescent.
  uint64_t Value() const;

  void Reset();

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };
  std::array<Shard, kShards> shards_;
};

/// Last-writer-wins double gauge.
class Gauge {
 public:
  void Set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) noexcept;
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. Bucket i counts observations v with
/// bounds[i-1] < v <= bounds[i]; one implicit overflow bucket catches
/// v > bounds.back(). Bounds are fixed at registration.
class Histogram {
 public:
  /// `upper_bounds` must be strictly increasing and non-empty.
  explicit Histogram(std::vector<double> upper_bounds);

  void Observe(double v) noexcept;

  const std::vector<double>& bounds() const { return bounds_; }
  /// bounds().size() + 1 (the last bucket is the overflow bucket).
  size_t num_buckets() const { return bounds_.size() + 1; }
  uint64_t bucket_count(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }

  /// Estimated q-quantile (q in [0, 1]) by linear interpolation within
  /// the covering bucket — the serving layer reports p50/p99 latency this
  /// way. 0 when empty; observations past the last bound report the last
  /// bound (a conservative floor). Consistent only when writers are
  /// quiescent.
  double Quantile(double q) const;

  void Reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Name → metric registry. Get* calls create on first use and always
/// return the same pointer for the same name afterwards.
class MetricsRegistry {
 public:
  /// Process-wide instance used by all built-in instrumentation.
  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// Creates the histogram with `upper_bounds` on first use; later calls
  /// must pass the same bounds and return the existing histogram. A
  /// mismatched re-registration aborts the process: silently keeping the
  /// first bounds would mis-bucket every observation from the second call
  /// site with no error anywhere.
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> upper_bounds);

  /// Snapshot of every metric, keys sorted, as a JSON object with
  /// "counters", "gauges" and "histograms" sections.
  JsonValue ToJson() const;

  /// Zeroes every metric value. Registrations (and therefore pointers
  /// handed out earlier) stay valid.
  void ResetAll();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace obs
}  // namespace optinter
