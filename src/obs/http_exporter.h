// Dependency-free blocking HTTP exporter: one listener thread serving
// live observability over plain POSIX sockets (no third-party code, same
// spirit as the hand-rolled JSON layer).
//
// Endpoints:
//   GET /metrics  Prometheus text exposition of MetricsRegistry::Global()
//                 (obs/prometheus.h) — scrapeable by Prometheus or curl
//                 while a bench / training run / PredictServer is live.
//   GET /healthz  "ok\n" (liveness probe).
//   GET /varz     JSON RunReport-style snapshot: fresh CaptureMetrics +
//                 CaptureSpans by default, or whatever the installed varz
//                 provider returns.
//
// Design constraints: the listener thread only accepts; each connection
// is served on a short-lived worker thread (bounded small pool) so a slow
// scraper draining /metrics cannot stall a concurrent /healthz liveness
// probe, reads/writes carry socket timeouts so a stuck client cannot
// wedge a worker for long, and Stop() joins the threads promptly (the
// accept loop polls with a short timeout and reaps its workers on exit). Metric snapshots taken
// while workers run are approximate-by-design (relaxed counters, live
// span merge) — fine for a live scrape; exact profiles still come from
// the quiescent-point RunReport writes.
//
// This library sits below src/common, so nothing here may include
// common/ headers (hence bool + error-string returns instead of Status).

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace optinter {
namespace obs {

struct HttpExporterOptions {
  /// Interface to bind. Default loopback: the exporter serves internal
  /// telemetry and must be opted into wider exposure explicitly.
  std::string host = "127.0.0.1";
  /// TCP port; 0 asks the kernel for an ephemeral port (read it back from
  /// port() after Start).
  int port = 0;
};

/// One exporter instance = one listening socket + one thread. Create,
/// Start(), scrape, Stop() (or let the destructor stop it).
class HttpExporter {
 public:
  explicit HttpExporter(HttpExporterOptions options = {});
  ~HttpExporter();

  HttpExporter(const HttpExporter&) = delete;
  HttpExporter& operator=(const HttpExporter&) = delete;

  /// Binds + listens + spawns the listener thread. Returns false with a
  /// reason in `*error` (when non-null) on failure; the exporter is then
  /// inert and Start may be retried with different options.
  bool Start(std::string* error = nullptr);

  /// Stops the listener and joins the thread. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Port actually bound (resolves port 0); 0 before a successful Start.
  int port() const { return port_.load(std::memory_order_acquire); }

  /// Installs the /varz body producer (must return a JSON document).
  /// Called on the listener thread, so it must be thread-safe against the
  /// rest of the process. Default: a fresh RunReport snapshot with
  /// metrics + spans captured at scrape time.
  void SetVarzProvider(std::function<std::string()> provider);

  /// Handles one already-parsed request path and fills body/content type.
  /// Returns the HTTP status code. Exposed for unit tests (exercises the
  /// routing without sockets).
  int HandleRoute(const std::string& path, std::string* body,
                  std::string* content_type);

 private:
  void ListenLoop();
  void ServeConnection(int client_fd);

  HttpExporterOptions options_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<int> port_{0};
  int listen_fd_ = -1;
  std::thread listener_;
  // Per-connection workers (listener thread only touches this; joined by
  // the listener before it exits, so Stop's join of the listener also
  // joins every worker).
  std::vector<std::thread> workers_;
  std::mutex varz_mutex_;
  std::function<std::string()> varz_provider_;
};

}  // namespace obs
}  // namespace optinter
