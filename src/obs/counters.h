// Per-thread CPU time and hardware performance counters feeding the
// trace spans (obs/trace.h).
//
// Two sources, layered by availability:
//
//  * CPU time: CLOCK_THREAD_CPUTIME_ID via ThreadCpuNow(). Available on
//    every Linux/POSIX host this repo targets; when the clock is missing
//    the call returns 0 and spans simply record zero CPU time.
//
//  * Hardware counters (cycles, retired instructions, LLC misses) via a
//    pluggable CounterProvider. The default provider uses
//    perf_event_open(2) with one counter group per thread. Containers and
//    locked-down hosts commonly refuse the syscall (EPERM under
//    perf_event_paranoid >= 3, ENOSYS under seccomp); the first failure is
//    recorded ONCE in the process-wide CounterStatus — including errno
//    text — and every span on that thread degrades to CPU-time-only.
//    Degradation is per-thread and silent after the first record; it
//    never aborts or logs per span.
//
// Tests install a fake provider with SetCounterProvider so the span
// plumbing is exercised even where perf_event_open is refused.
//
// This library sits below src/common, so nothing here may include
// common/ headers.

#pragma once

#include <cstdint>
#include <string>

namespace optinter {
namespace obs {

/// One hardware-counter reading: monotonic totals for the calling thread
/// since its provider started. Fields the provider could not open stay 0.
struct HwCounters {
  uint64_t cycles = 0;
  uint64_t instructions = 0;
  uint64_t llc_misses = 0;
};

/// Pluggable per-thread hardware-counter source. All methods are called
/// on the thread being measured; implementations keep per-thread state
/// internally (thread_local file descriptors for the perf provider).
class CounterProvider {
 public:
  virtual ~CounterProvider() = default;

  /// Short provider id recorded in CounterStatus ("perf", "fake", ...).
  virtual const char* name() const = 0;

  /// Called once per thread before its first Read(). Returns false (with
  /// a human-readable reason in `*reason` when non-null) when counters
  /// are unavailable on this thread; the thread then records CPU time
  /// only.
  virtual bool StartThread(std::string* reason) = 0;

  /// Current totals for the calling thread. Only called after a
  /// successful StartThread() on the same thread.
  virtual HwCounters Read() = 0;
};

/// Thread CPU time in nanoseconds (CLOCK_THREAD_CPUTIME_ID); 0 when the
/// clock is unsupported.
uint64_t ThreadCpuNow();

/// Process-wide record of what the counter layer could deliver, written
/// once and embedded in every span-profile JSON (Tracer::ToJson) so a
/// report always says WHY hardware columns are missing.
struct CounterStatus {
  /// CLOCK_THREAD_CPUTIME_ID readable on this host.
  bool cpu_time = false;
  /// At least one thread is reading hardware counters.
  bool hardware = false;
  /// Provider name ("perf" by default, "none" when disabled via
  /// OPTINTER_OBS_HW=0).
  std::string provider;
  /// First per-thread failure reason (errno text); empty while no thread
  /// has failed to start.
  std::string degradation_reason;
};

/// Snapshot of the current status. Thread-safe.
CounterStatus CountersStatus();

/// Installs `provider` (not owned; must outlive all instrumented spans)
/// in place of the default perf provider, resetting the per-thread
/// started state and the recorded status. Pass nullptr to restore the
/// default. Test hook — call only while instrumented threads are
/// quiescent.
void SetCounterProvider(CounterProvider* provider);

namespace internal {

/// Per-thread counter session resolved on first use: caches whether the
/// active provider started successfully on this thread. Returns true and
/// fills `*out` when hardware counters were read.
bool ReadThreadCounters(HwCounters* out);

/// True when the active provider is live on this thread (cheap check
/// after first use).
bool ThreadCountersActive();

}  // namespace internal

}  // namespace obs
}  // namespace optinter
