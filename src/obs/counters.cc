#include "obs/counters.h"

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <mutex>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace optinter {
namespace obs {

uint64_t ThreadCpuNow() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  struct timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<uint64_t>(ts.tv_nsec);
#else
  return 0;
#endif
}

namespace {

std::mutex& StatusMutex() {
  static std::mutex* m = new std::mutex();
  return *m;
}

// Guarded by StatusMutex.
CounterStatus& MutableStatus() {
  static CounterStatus* s = new CounterStatus();
  return *s;
}

void RecordHardwareActive(const char* provider_name) {
  std::lock_guard<std::mutex> lock(StatusMutex());
  CounterStatus& s = MutableStatus();
  s.hardware = true;
  s.provider = provider_name;
}

void RecordDegradation(const char* provider_name, const std::string& reason) {
  std::lock_guard<std::mutex> lock(StatusMutex());
  CounterStatus& s = MutableStatus();
  s.provider = provider_name;
  if (s.degradation_reason.empty()) s.degradation_reason = reason;
}

#if defined(__linux__)

// Default provider: one perf_event_open group per thread — cycles is the
// group leader so all three counters are read with a single read(2).
// Followers that fail to open (common for LLC misses inside VMs) are
// skipped individually; only a failed leader disables the thread.
class PerfCounterProvider : public CounterProvider {
 public:
  const char* name() const override { return "perf"; }

  bool StartThread(std::string* reason) override {
    ThreadFds& fds = Fds();
    if (fds.leader >= 0) return true;
    fds.leader = OpenEvent(PERF_COUNT_HW_CPU_CYCLES, -1);
    if (fds.leader < 0) {
      if (reason != nullptr) {
        *reason = std::string("perf_event_open(cycles): ") +
                  std::strerror(errno);
      }
      return false;
    }
    fds.n_values = 1;
    fds.instructions_index = -1;
    fds.llc_index = -1;
    int fd = OpenEvent(PERF_COUNT_HW_INSTRUCTIONS, fds.leader);
    if (fd >= 0) {
      fds.instructions = fd;
      fds.instructions_index = fds.n_values++;
    }
    fd = OpenEvent(PERF_COUNT_HW_CACHE_MISSES, fds.leader);
    if (fd >= 0) {
      fds.llc = fd;
      fds.llc_index = fds.n_values++;
    }
    ioctl(fds.leader, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
    ioctl(fds.leader, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
    return true;
  }

  HwCounters Read() override {
    HwCounters out;
    const ThreadFds& fds = Fds();
    if (fds.leader < 0) return out;
    // PERF_FORMAT_GROUP layout: { u64 nr; u64 values[nr]; }.
    uint64_t buf[1 + kMaxEvents] = {0};
    const ssize_t want =
        static_cast<ssize_t>((1 + fds.n_values) * sizeof(uint64_t));
    if (read(fds.leader, buf, static_cast<size_t>(want)) != want) return out;
    out.cycles = buf[1];
    if (fds.instructions_index > 0) {
      out.instructions = buf[1 + fds.instructions_index];
    }
    if (fds.llc_index > 0) out.llc_misses = buf[1 + fds.llc_index];
    return out;
  }

 private:
  static constexpr int kMaxEvents = 3;

  struct ThreadFds {
    int leader = -1;
    int instructions = -1;
    int llc = -1;
    int n_values = 0;
    int instructions_index = -1;
    int llc_index = -1;

    ~ThreadFds() {
      if (llc >= 0) close(llc);
      if (instructions >= 0) close(instructions);
      if (leader >= 0) close(leader);
    }
  };

  static ThreadFds& Fds() {
    thread_local ThreadFds fds;
    return fds;
  }

  static int OpenEvent(uint64_t config, int group_fd) {
    struct perf_event_attr attr;
    std::memset(&attr, 0, sizeof(attr));
    attr.type = PERF_TYPE_HARDWARE;
    attr.size = sizeof(attr);
    attr.config = config;
    // Read() parses the group layout {nr, values[nr]} off the leader, so
    // every event in the group must report PERF_FORMAT_GROUP.
    attr.read_format = PERF_FORMAT_GROUP;
    // User-space only: works under perf_event_paranoid <= 2 (the usual
    // non-root ceiling) and matches what we want to attribute to kernels.
    attr.exclude_kernel = 1;
    attr.exclude_hv = 1;
    attr.disabled = group_fd < 0 ? 1 : 0;
    return static_cast<int>(syscall(__NR_perf_event_open, &attr,
                                    /*pid=*/0, /*cpu=*/-1, group_fd,
                                    /*flags=*/0));
  }
};

#else  // !__linux__

class PerfCounterProvider : public CounterProvider {
 public:
  const char* name() const override { return "perf"; }
  bool StartThread(std::string* reason) override {
    if (reason != nullptr) *reason = "perf_event_open: not a Linux host";
    return false;
  }
  HwCounters Read() override { return {}; }
};

#endif  // __linux__

bool EnvDisablesHw() {
  const char* v = std::getenv("OPTINTER_OBS_HW");
  if (v == nullptr) return false;
  return std::strcmp(v, "0") == 0 || std::strcmp(v, "off") == 0 ||
         std::strcmp(v, "false") == 0;
}

// Generation counter: SetCounterProvider bumps it so threads that cached
// a started/failed verdict against the previous provider re-resolve.
std::atomic<uint64_t> g_provider_generation{1};
std::atomic<CounterProvider*> g_provider_override{nullptr};

CounterProvider* ActiveProvider() {
  CounterProvider* installed =
      g_provider_override.load(std::memory_order_acquire);
  if (installed != nullptr) return installed;
  if (EnvDisablesHw()) return nullptr;
  static PerfCounterProvider* perf = new PerfCounterProvider();
  return perf;
}

struct ThreadCounterSession {
  uint64_t generation = 0;
  CounterProvider* provider = nullptr;  // null = unavailable this thread
};

ThreadCounterSession& Session() {
  thread_local ThreadCounterSession session;
  return session;
}

// Resolves (and caches) the provider for this thread under the current
// generation.
CounterProvider* ResolveThreadProvider() {
  ThreadCounterSession& session = Session();
  const uint64_t gen = g_provider_generation.load(std::memory_order_acquire);
  if (session.generation == gen) return session.provider;
  session.generation = gen;
  session.provider = nullptr;
  CounterProvider* provider = ActiveProvider();
  if (provider == nullptr) {
    RecordDegradation("none", "hardware counters disabled (OPTINTER_OBS_HW)");
    return nullptr;
  }
  std::string reason;
  if (!provider->StartThread(&reason)) {
    RecordDegradation(provider->name(), reason);
    return nullptr;
  }
  RecordHardwareActive(provider->name());
  session.provider = provider;
  return provider;
}

// CPU-time availability, probed once via clock_getres (a zero ThreadCpuNow
// reading is legitimate at thread start, so probing the value would lie).
bool CpuTimeAvailable() {
  static const bool available = [] {
    bool ok = false;
#if defined(CLOCK_THREAD_CPUTIME_ID)
    struct timespec ts;
    ok = clock_getres(CLOCK_THREAD_CPUTIME_ID, &ts) == 0;
#endif
    std::lock_guard<std::mutex> lock(StatusMutex());
    MutableStatus().cpu_time = ok;
    return ok;
  }();
  return available;
}

}  // namespace

CounterStatus CountersStatus() {
  CpuTimeAvailable();
  std::lock_guard<std::mutex> lock(StatusMutex());
  CounterStatus s = MutableStatus();
  if (s.provider.empty()) s.provider = "unresolved";
  return s;
}

void SetCounterProvider(CounterProvider* provider) {
  g_provider_override.store(provider, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(StatusMutex());
    CounterStatus& s = MutableStatus();
    s.hardware = false;
    s.provider.clear();
    s.degradation_reason.clear();
  }
  g_provider_generation.fetch_add(1, std::memory_order_acq_rel);
}

namespace internal {

bool ReadThreadCounters(HwCounters* out) {
  CounterProvider* provider = ResolveThreadProvider();
  if (provider == nullptr) return false;
  *out = provider->Read();
  return true;
}

bool ThreadCountersActive() { return ResolveThreadProvider() != nullptr; }

}  // namespace internal

}  // namespace obs
}  // namespace optinter
