// Opt-in per-thread timeline of span begin/end (and instant) events,
// exported as Chrome trace-event JSON so any run opens directly in
// Perfetto or chrome://tracing.
//
// Enabled by setting OPTINTER_OBS_TIMELINE=<path> before the first span;
// the process then records every TraceSpan enter/exit into a per-thread
// ring buffer and flushes <path> at exit (and whenever Timeline::Flush is
// called). Memory is bounded: each thread keeps at most
// OPTINTER_OBS_TIMELINE_EVENTS events (default 65536, ~4.5 MiB/thread);
// when a ring wraps, the OLDEST events are overwritten and a per-thread
// drop counter — surfaced in the output's "otherData" and as the
// obs.timeline.dropped_events metric — records how many were lost.
//
// Event names must be string literals (the span-name contract); instant
// events may carry a short inline detail string (truncated to
// kDetailCapacity - 1 chars) that lands in the event's "args".
//
// When the env var is unset the record path is one relaxed atomic load —
// the same near-free branch as the obs kill switch.
//
// This library sits below src/common, so nothing here may include
// common/ headers.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace optinter {
namespace obs {

class Timeline {
 public:
  /// Inline capacity for instant-event detail strings (incl. NUL).
  static constexpr size_t kDetailCapacity = 48;

  /// True when timeline recording is on (lazily reads
  /// OPTINTER_OBS_TIMELINE on first call; EnableForTest overrides).
  static bool Enabled();

  /// Records a span-begin / span-end event on the calling thread.
  /// `name` must outlive the program (string literals do).
  static void RecordBegin(const char* name);
  static void RecordEnd(const char* name);

  /// Records an instant event ("i" phase), optionally with a short detail
  /// string copied inline (truncated to kDetailCapacity - 1 chars).
  static void RecordInstant(const char* name, const char* detail = nullptr);

  /// Total events overwritten by ring wrap-around across all threads.
  static uint64_t DroppedEvents();

  /// Serializes all threads' rings (merged, sorted by timestamp) as a
  /// Chrome trace-event JSON object and writes it to `path` (atomically:
  /// <path>.tmp then rename). Safe to call while other threads record —
  /// events written during the flush may or may not be included.
  static bool FlushTo(const std::string& path, std::string* error = nullptr);

  /// FlushTo the configured OPTINTER_OBS_TIMELINE path; no-op (returns
  /// false) when recording is off. Runs automatically at process exit.
  static bool Flush(std::string* error = nullptr);

  /// Test hooks: enable recording to `path` with the given per-thread
  /// ring capacity, or disable and clear every thread's ring + drop
  /// counters. Call only while instrumented threads are quiescent.
  static void EnableForTest(const std::string& path, size_t capacity);
  static void DisableForTest();

  /// The Chrome trace JSON for the current rings (what FlushTo writes).
  /// Exposed for tests.
  static std::string RenderJson();
};

}  // namespace obs
}  // namespace optinter
