// Minimal JSON document model used by the run-report exporter.
//
// No third-party dependencies: the observability layer serializes metrics,
// span trees and search dynamics into files consumed by benches, examples
// and external tooling, so the format must be plain JSON. Objects preserve
// insertion order so serialized reports are deterministic and diffable.
//
// The obs library sits below src/common (the thread pool is instrumented),
// so nothing here may include common/ headers.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace optinter {
namespace obs {

/// A JSON value: null, bool, number (integer or double), string, array or
/// object. Value-semantic; copying deep-copies the subtree.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  JsonValue() : type_(Type::kNull) {}

  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b);
  static JsonValue Int(int64_t v);
  static JsonValue Uint(uint64_t v);
  static JsonValue Double(double v);
  static JsonValue Str(std::string s);
  static JsonValue MakeArray();
  static JsonValue MakeObject();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_number() const {
    return type_ == Type::kInt || type_ == Type::kDouble;
  }

  bool bool_value() const { return bool_; }
  /// Numeric value as double (valid for kInt and kDouble).
  double number() const;
  int64_t int_value() const { return int_; }
  const std::string& string_value() const { return string_; }

  // -- Array operations (valid only for kArray) -----------------------------

  /// Appends an element; returns *this for chaining.
  JsonValue& Push(JsonValue v);
  size_t size() const { return items_.size(); }
  const JsonValue& at(size_t i) const { return items_[i]; }
  JsonValue& at(size_t i) { return items_[i]; }

  // -- Object operations (valid only for kObject) ---------------------------

  /// Inserts or replaces a key; insertion order is preserved. Returns *this.
  JsonValue& Set(const std::string& key, JsonValue v);

  /// Pointer to the value for `key`, or nullptr when absent / not an object.
  const JsonValue* Find(const std::string& key) const;

  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  // -- Serialization ---------------------------------------------------------

  /// Serializes to a JSON string. indent < 0 produces compact output;
  /// indent >= 0 pretty-prints with that many spaces per level.
  std::string Serialize(int indent = -1) const;

  /// Parses `text` into `*out`. Returns false (with a message in `*error`
  /// when non-null) on malformed input or trailing garbage.
  static bool Parse(std::string_view text, JsonValue* out,
                    std::string* error = nullptr);

  bool operator==(const JsonValue& other) const;

 private:
  void SerializeTo(std::string* out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Escapes `s` as the body of a JSON string literal (no surrounding quotes).
std::string JsonEscape(std::string_view s);

}  // namespace obs
}  // namespace optinter
