#include "obs/http_exporter.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#if defined(_WIN32)
#error "HttpExporter requires a POSIX socket layer"
#endif

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include "obs/prometheus.h"
#include "obs/registry.h"
#include "obs/run_report.h"

namespace optinter {
namespace obs {
namespace {

constexpr size_t kMaxRequestBytes = 8192;
constexpr int kAcceptPollMs = 100;
constexpr size_t kMaxConnectionWorkers = 4;

std::string DefaultVarz() {
  RunReport report("varz");
  report.CaptureMetrics();
  report.CaptureSpans();
  return report.ToJson().Serialize(/*indent=*/2);
}

std::string StatusText(int code) {
  switch (code) {
    case 200:
      return "OK";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    default:
      return "Error";
  }
}

void SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = send(fd, data.data() + sent, data.size() - sent,
#if defined(MSG_NOSIGNAL)
                           MSG_NOSIGNAL
#else
                           0
#endif
    );
    if (n <= 0) return;  // peer went away; nothing useful to do
    sent += static_cast<size_t>(n);
  }
}

}  // namespace

HttpExporter::HttpExporter(HttpExporterOptions options)
    : options_(std::move(options)) {}

HttpExporter::~HttpExporter() { Stop(); }

bool HttpExporter::Start(std::string* error) {
  if (running()) return true;
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) {
      *error = std::string("socket: ") + std::strerror(errno);
    }
    return false;
  }
  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) *error = "bad bind address " + options_.host;
    close(fd);
    return false;
  }
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (error != nullptr) {
      *error = "bind " + options_.host + ":" +
               std::to_string(options_.port) + ": " + std::strerror(errno);
    }
    close(fd);
    return false;
  }
  if (listen(fd, 16) != 0) {
    if (error != nullptr) {
      *error = std::string("listen: ") + std::strerror(errno);
    }
    close(fd);
    return false;
  }
  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) ==
      0) {
    port_.store(ntohs(bound.sin_port), std::memory_order_release);
  }
  listen_fd_ = fd;
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  listener_ = std::thread([this] { ListenLoop(); });
  return true;
}

void HttpExporter::Stop() {
  if (!running()) return;
  stopping_.store(true, std::memory_order_release);
  if (listener_.joinable()) listener_.join();
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
  running_.store(false, std::memory_order_release);
}

void HttpExporter::SetVarzProvider(std::function<std::string()> provider) {
  std::lock_guard<std::mutex> lock(varz_mutex_);
  varz_provider_ = std::move(provider);
}

int HttpExporter::HandleRoute(const std::string& path, std::string* body,
                              std::string* content_type) {
  // Strip any query string: scrapers sometimes append cache busters.
  const std::string route = path.substr(0, path.find('?'));
  if (route == "/metrics") {
    *content_type = "text/plain; version=0.0.4; charset=utf-8";
    *body = RenderPrometheusText();
    return 200;
  }
  if (route == "/healthz") {
    *content_type = "text/plain; charset=utf-8";
    *body = "ok\n";
    return 200;
  }
  if (route == "/varz") {
    *content_type = "application/json; charset=utf-8";
    std::function<std::string()> provider;
    {
      std::lock_guard<std::mutex> lock(varz_mutex_);
      provider = varz_provider_;
    }
    *body = provider ? provider() : DefaultVarz();
    return 200;
  }
  *content_type = "text/plain; charset=utf-8";
  *body = "not found: " + route + "\n";
  return 404;
}

void HttpExporter::ListenLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd;
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int ready = poll(&pfd, 1, kAcceptPollMs);
    if (ready <= 0) continue;  // timeout (re-check stop flag) or EINTR
    const int client = accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    // Hand the connection to a worker so the accept loop keeps serving:
    // a slow /metrics scraper (or a half-open connection riding out its
    // socket timeouts) must not stall a concurrent /healthz probe. The
    // worker count is bounded by joining the oldest thread once the small
    // pool is full — connection lifetime is already bounded by the 2 s
    // socket timeouts, so that join is prompt and Stop() stays prompt.
    if (workers_.size() >= kMaxConnectionWorkers) {
      workers_.front().join();
      workers_.erase(workers_.begin());
    }
    workers_.emplace_back([this, client] {
      ServeConnection(client);
      close(client);
    });
  }
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
}

void HttpExporter::ServeConnection(int client_fd) {
  // A stuck client must not wedge the exporter: bound both directions.
  timeval timeout;
  timeout.tv_sec = 2;
  timeout.tv_usec = 0;
  setsockopt(client_fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  setsockopt(client_fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));

  std::string request;
  char buf[1024];
  while (request.size() < kMaxRequestBytes &&
         request.find("\r\n\r\n") == std::string::npos) {
    const ssize_t n = recv(client_fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    request.append(buf, static_cast<size_t>(n));
  }
  const size_t line_end = request.find("\r\n");
  if (line_end == std::string::npos) return;
  const std::string line = request.substr(0, line_end);
  // Request line: METHOD SP PATH SP VERSION.
  const size_t sp1 = line.find(' ');
  const size_t sp2 = line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) return;
  const std::string method = line.substr(0, sp1);
  const std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);

  std::string body;
  std::string content_type = "text/plain; charset=utf-8";
  int code;
  if (method != "GET" && method != "HEAD") {
    code = 405;
    body = "method not allowed\n";
  } else {
    code = HandleRoute(path, &body, &content_type);
  }

  std::string response = "HTTP/1.1 " + std::to_string(code) + " " +
                         StatusText(code) +
                         "\r\nContent-Type: " + content_type +
                         "\r\nContent-Length: " + std::to_string(body.size()) +
                         "\r\nConnection: close\r\n\r\n";
  if (method != "HEAD") response += body;
  SendAll(client_fd, response);
}

}  // namespace obs
}  // namespace optinter
