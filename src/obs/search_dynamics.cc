#include "obs/search_dynamics.h"

namespace optinter {
namespace obs {

JsonValue SearchEpochDynamicsToJson(const SearchEpochDynamics& d) {
  JsonValue out = JsonValue::MakeObject();
  out.Set("epoch", JsonValue::Uint(d.epoch));
  out.Set("temperature", JsonValue::Double(d.temperature));
  out.Set("mean_alpha_entropy", JsonValue::Double(d.mean_alpha_entropy));
  out.Set("min_alpha_entropy", JsonValue::Double(d.min_alpha_entropy));
  out.Set("max_alpha_entropy", JsonValue::Double(d.max_alpha_entropy));
  JsonValue per_pair = JsonValue::MakeArray();
  for (const double h : d.alpha_entropy_per_pair) {
    per_pair.Push(JsonValue::Double(h));
  }
  out.Set("alpha_entropy_per_pair", std::move(per_pair));
  JsonValue counts = JsonValue::MakeObject();
  counts.Set("memorize", JsonValue::Uint(d.argmax_counts[0]));
  counts.Set("factorize", JsonValue::Uint(d.argmax_counts[1]));
  counts.Set("naive", JsonValue::Uint(d.argmax_counts[2]));
  out.Set("argmax_counts", std::move(counts));
  out.Set("argmax_flips", JsonValue::Uint(d.argmax_flips));
  return out;
}

const char* AlphaMethodName(int method) {
  switch (method) {
    case 0:
      return "memorize";
    case 1:
      return "factorize";
    case 2:
      return "naive";
    default:
      return "unknown";
  }
}

JsonValue AlphaFlipEventToJson(const AlphaFlipEvent& e) {
  JsonValue out = JsonValue::MakeObject();
  out.Set("epoch", JsonValue::Uint(e.epoch));
  out.Set("step", JsonValue::Uint(e.step));
  out.Set("pair", JsonValue::Uint(e.pair));
  out.Set("from", JsonValue::Str(AlphaMethodName(e.from)));
  out.Set("to", JsonValue::Str(AlphaMethodName(e.to)));
  return out;
}

JsonValue SearchDynamicsToJson(const SearchDynamics& d) {
  JsonValue epochs = JsonValue::MakeArray();
  for (const SearchEpochDynamics& e : d.epochs) {
    epochs.Push(SearchEpochDynamicsToJson(e));
  }
  JsonValue out = JsonValue::MakeObject();
  out.Set("epochs", std::move(epochs));
  if (d.sample_every > 0) {
    out.Set("alpha_sample_every", JsonValue::Uint(d.sample_every));
    JsonValue flips = JsonValue::MakeArray();
    for (const AlphaFlipEvent& e : d.flip_events) {
      flips.Push(AlphaFlipEventToJson(e));
    }
    out.Set("flip_events", std::move(flips));
  }
  return out;
}

}  // namespace obs
}  // namespace optinter
