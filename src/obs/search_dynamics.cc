#include "obs/search_dynamics.h"

namespace optinter {
namespace obs {

JsonValue SearchEpochDynamicsToJson(const SearchEpochDynamics& d) {
  JsonValue out = JsonValue::MakeObject();
  out.Set("epoch", JsonValue::Uint(d.epoch));
  out.Set("temperature", JsonValue::Double(d.temperature));
  out.Set("mean_alpha_entropy", JsonValue::Double(d.mean_alpha_entropy));
  out.Set("min_alpha_entropy", JsonValue::Double(d.min_alpha_entropy));
  out.Set("max_alpha_entropy", JsonValue::Double(d.max_alpha_entropy));
  JsonValue per_pair = JsonValue::MakeArray();
  for (const double h : d.alpha_entropy_per_pair) {
    per_pair.Push(JsonValue::Double(h));
  }
  out.Set("alpha_entropy_per_pair", std::move(per_pair));
  JsonValue counts = JsonValue::MakeObject();
  counts.Set("memorize", JsonValue::Uint(d.argmax_counts[0]));
  counts.Set("factorize", JsonValue::Uint(d.argmax_counts[1]));
  counts.Set("naive", JsonValue::Uint(d.argmax_counts[2]));
  out.Set("argmax_counts", std::move(counts));
  out.Set("argmax_flips", JsonValue::Uint(d.argmax_flips));
  return out;
}

JsonValue SearchDynamicsToJson(const SearchDynamics& d) {
  JsonValue epochs = JsonValue::MakeArray();
  for (const SearchEpochDynamics& e : d.epochs) {
    epochs.Push(SearchEpochDynamicsToJson(e));
  }
  JsonValue out = JsonValue::MakeObject();
  out.Set("epochs", std::move(epochs));
  return out;
}

}  // namespace obs
}  // namespace optinter
