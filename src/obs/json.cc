#include "obs/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace optinter {
namespace obs {

JsonValue JsonValue::Bool(bool b) {
  JsonValue v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::Int(int64_t i) {
  JsonValue v;
  v.type_ = Type::kInt;
  v.int_ = i;
  return v;
}

JsonValue JsonValue::Uint(uint64_t i) {
  // Counters are uint64 but JSON integers round-trip through int64 here;
  // values beyond int64 range (never hit by real runs) degrade to double.
  if (i <= static_cast<uint64_t>(INT64_MAX)) {
    return Int(static_cast<int64_t>(i));
  }
  return Double(static_cast<double>(i));
}

JsonValue JsonValue::Double(double d) {
  JsonValue v;
  v.type_ = Type::kDouble;
  v.double_ = d;
  return v;
}

JsonValue JsonValue::Str(std::string s) {
  JsonValue v;
  v.type_ = Type::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::MakeArray() {
  JsonValue v;
  v.type_ = Type::kArray;
  return v;
}

JsonValue JsonValue::MakeObject() {
  JsonValue v;
  v.type_ = Type::kObject;
  return v;
}

double JsonValue::number() const {
  return type_ == Type::kInt ? static_cast<double>(int_) : double_;
}

JsonValue& JsonValue::Push(JsonValue v) {
  items_.push_back(std::move(v));
  return *this;
}

JsonValue& JsonValue::Set(const std::string& key, JsonValue v) {
  for (auto& [k, existing] : members_) {
    if (k == key) {
      existing = std::move(v);
      return *this;
    }
  }
  members_.emplace_back(key, std::move(v));
  return *this;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

bool JsonValue::operator==(const JsonValue& other) const {
  if (type_ != other.type_) {
    // Ints and doubles compare by numeric value so parse → serialize
    // round-trips (which may reclassify 1.0) still compare equal.
    if (is_number() && other.is_number()) return number() == other.number();
    return false;
  }
  switch (type_) {
    case Type::kNull:
      return true;
    case Type::kBool:
      return bool_ == other.bool_;
    case Type::kInt:
      return int_ == other.int_;
    case Type::kDouble:
      return double_ == other.double_;
    case Type::kString:
      return string_ == other.string_;
    case Type::kArray:
      return items_ == other.items_;
    case Type::kObject:
      return members_ == other.members_;
  }
  return false;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void AppendDouble(std::string* out, double d) {
  if (!std::isfinite(d)) {
    // JSON has no NaN/Inf literal; null is the conventional stand-in.
    *out += "null";
    return;
  }
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), d);
  out->append(buf, res.ptr);
}

void AppendIndent(std::string* out, int indent, int depth) {
  out->push_back('\n');
  out->append(static_cast<size_t>(indent) * depth, ' ');
}

}  // namespace

void JsonValue::SerializeTo(std::string* out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull:
      *out += "null";
      return;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      return;
    case Type::kInt: {
      char buf[24];
      const auto res = std::to_chars(buf, buf + sizeof(buf), int_);
      out->append(buf, res.ptr);
      return;
    }
    case Type::kDouble:
      AppendDouble(out, double_);
      return;
    case Type::kString:
      out->push_back('"');
      *out += JsonEscape(string_);
      out->push_back('"');
      return;
    case Type::kArray: {
      if (items_.empty()) {
        *out += "[]";
        return;
      }
      out->push_back('[');
      for (size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out->push_back(',');
        if (indent >= 0) AppendIndent(out, indent, depth + 1);
        items_[i].SerializeTo(out, indent, depth + 1);
      }
      if (indent >= 0) AppendIndent(out, indent, depth);
      out->push_back(']');
      return;
    }
    case Type::kObject: {
      if (members_.empty()) {
        *out += "{}";
        return;
      }
      out->push_back('{');
      for (size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out->push_back(',');
        if (indent >= 0) AppendIndent(out, indent, depth + 1);
        out->push_back('"');
        *out += JsonEscape(members_[i].first);
        *out += indent >= 0 ? "\": " : "\":";
        members_[i].second.SerializeTo(out, indent, depth + 1);
      }
      if (indent >= 0) AppendIndent(out, indent, depth);
      out->push_back('}');
      return;
    }
  }
}

std::string JsonValue::Serialize(int indent) const {
  std::string out;
  SerializeTo(&out, indent, 0);
  return out;
}

// ---------------------------------------------------------------------------
// Recursive-descent parser.
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  bool ParseDocument(JsonValue* out) {
    SkipWhitespace();
    if (!ParseValue(out, 0)) return false;
    SkipWhitespace();
    if (pos_ != text_.size()) return Fail("trailing characters");
    return true;
  }

 private:
  static constexpr int kMaxDepth = 128;

  bool Fail(const std::string& what) {
    if (error_ != nullptr) {
      *error_ = what + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  bool ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case 'n':
        if (!Literal("null")) return Fail("bad literal");
        *out = JsonValue::Null();
        return true;
      case 't':
        if (!Literal("true")) return Fail("bad literal");
        *out = JsonValue::Bool(true);
        return true;
      case 'f':
        if (!Literal("false")) return Fail("bad literal");
        *out = JsonValue::Bool(false);
        return true;
      case '"': {
        std::string s;
        if (!ParseString(&s)) return false;
        *out = JsonValue::Str(std::move(s));
        return true;
      }
      case '[':
        return ParseArray(out, depth);
      case '{':
        return ParseObject(out, depth);
      default:
        return ParseNumber(out);
    }
  }

  bool ParseString(std::string* out) {
    if (text_[pos_] != '"') return Fail("expected string");
    ++pos_;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return Fail("bad escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"':
            *out += '"';
            break;
          case '\\':
            *out += '\\';
            break;
          case '/':
            *out += '/';
            break;
          case 'n':
            *out += '\n';
            break;
          case 'r':
            *out += '\r';
            break;
          case 't':
            *out += '\t';
            break;
          case 'b':
            *out += '\b';
            break;
          case 'f':
            *out += '\f';
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Fail("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Fail("bad \\u escape");
              }
            }
            // UTF-8 encode (reports only emit \u00xx control escapes, but
            // accept the full BMP for round-trip robustness).
            if (code < 0x80) {
              *out += static_cast<char>(code);
            } else if (code < 0x800) {
              *out += static_cast<char>(0xc0 | (code >> 6));
              *out += static_cast<char>(0x80 | (code & 0x3f));
            } else {
              *out += static_cast<char>(0xe0 | (code >> 12));
              *out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
              *out += static_cast<char>(0x80 | (code & 0x3f));
            }
            break;
          }
          default:
            return Fail("bad escape");
        }
        continue;
      }
      *out += c;
      ++pos_;
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool is_double = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return Fail("expected value");
    const std::string_view tok = text_.substr(start, pos_ - start);
    if (!is_double) {
      int64_t v = 0;
      const auto res = std::from_chars(tok.data(), tok.data() + tok.size(), v);
      if (res.ec == std::errc() && res.ptr == tok.data() + tok.size()) {
        *out = JsonValue::Int(v);
        return true;
      }
      // Fall through for integers overflowing int64.
    }
    double d = 0.0;
    const auto res = std::from_chars(tok.data(), tok.data() + tok.size(), d);
    if (res.ec != std::errc() || res.ptr != tok.data() + tok.size()) {
      pos_ = start;
      return Fail("bad number");
    }
    *out = JsonValue::Double(d);
    return true;
  }

  bool ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    *out = JsonValue::MakeArray();
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      JsonValue elem;
      SkipWhitespace();
      if (!ParseValue(&elem, depth + 1)) return false;
      out->Push(std::move(elem));
      SkipWhitespace();
      if (pos_ >= text_.size()) return Fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or ']'");
    }
  }

  bool ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    *out = JsonValue::MakeObject();
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWhitespace();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key");
      }
      if (!ParseString(&key)) return false;
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Fail("expected ':'");
      }
      ++pos_;
      SkipWhitespace();
      JsonValue value;
      if (!ParseValue(&value, depth + 1)) return false;
      out->Set(key, std::move(value));
      SkipWhitespace();
      if (pos_ >= text_.size()) return Fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or '}'");
    }
  }

  std::string_view text_;
  std::string* error_;
  size_t pos_ = 0;
};

}  // namespace

bool JsonValue::Parse(std::string_view text, JsonValue* out,
                      std::string* error) {
  Parser p(text, error);
  return p.ParseDocument(out);
}

}  // namespace obs
}  // namespace optinter
