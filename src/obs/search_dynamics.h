// Search-dynamics telemetry for the DARTS-style α search (paper
// Algorithm 1): per-epoch records of how the per-pair architecture
// distribution evolves, so selection stability is observable instead of
// inferred from final architectures.
//
// Plain data + JSON serialization only; the values are computed by the
// search driver (core/pipeline.cc), which owns the SearchModel.

#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "obs/json.h"

namespace optinter {
namespace obs {

/// One epoch of α-search dynamics.
struct SearchEpochDynamics {
  size_t epoch = 0;
  /// Gumbel-softmax temperature in effect this epoch.
  double temperature = 0.0;
  /// Entropy (nats) of softmax(α/τ) per pair; uniform over 3 methods is
  /// ln 3 ≈ 1.0986, a converged pair approaches 0.
  std::vector<double> alpha_entropy_per_pair;
  double mean_alpha_entropy = 0.0;
  double min_alpha_entropy = 0.0;
  double max_alpha_entropy = 0.0;
  /// Per-pair argmax histogram, order {memorize, factorize, naive}
  /// (paper Eq. 19 applied at this epoch).
  std::array<size_t, 3> argmax_counts{{0, 0, 0}};
  /// Pairs whose argmax method changed vs the previous epoch (0 for the
  /// first epoch). A stable search drives this to 0 before freeze.
  size_t argmax_flips = 0;
};

/// One within-epoch argmax flip: pair `pair` changed its argmax method
/// between two consecutive α samples (taken every K train steps when the
/// search driver enables sampling). Methods use the fixed OptInter index
/// order {0: memorize, 1: factorize, 2: naive} — obs sits below
/// src/models, so the enum itself is not available here.
struct AlphaFlipEvent {
  size_t epoch = 0;
  /// Global train-step index (across epochs) at which the flip was seen.
  size_t step = 0;
  size_t pair = 0;
  int from = 0;
  int to = 0;
};

/// Name for an AlphaFlipEvent method index ("memorize" / "factorize" /
/// "naive"; "unknown" out of range).
const char* AlphaMethodName(int method);

/// Full search run: one record per epoch, plus optional within-epoch
/// argmax-flip samples.
struct SearchDynamics {
  std::vector<SearchEpochDynamics> epochs;
  /// Empty unless within-epoch α sampling was enabled
  /// (SearchOptions::alpha_sample_every > 0).
  std::vector<AlphaFlipEvent> flip_events;
  /// Sampling stride that produced flip_events (0 = sampling off).
  size_t sample_every = 0;
};

JsonValue SearchEpochDynamicsToJson(const SearchEpochDynamics& d);
JsonValue AlphaFlipEventToJson(const AlphaFlipEvent& e);
JsonValue SearchDynamicsToJson(const SearchDynamics& d);

}  // namespace obs
}  // namespace optinter
