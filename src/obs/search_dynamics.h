// Search-dynamics telemetry for the DARTS-style α search (paper
// Algorithm 1): per-epoch records of how the per-pair architecture
// distribution evolves, so selection stability is observable instead of
// inferred from final architectures.
//
// Plain data + JSON serialization only; the values are computed by the
// search driver (core/pipeline.cc), which owns the SearchModel.

#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "obs/json.h"

namespace optinter {
namespace obs {

/// One epoch of α-search dynamics.
struct SearchEpochDynamics {
  size_t epoch = 0;
  /// Gumbel-softmax temperature in effect this epoch.
  double temperature = 0.0;
  /// Entropy (nats) of softmax(α/τ) per pair; uniform over 3 methods is
  /// ln 3 ≈ 1.0986, a converged pair approaches 0.
  std::vector<double> alpha_entropy_per_pair;
  double mean_alpha_entropy = 0.0;
  double min_alpha_entropy = 0.0;
  double max_alpha_entropy = 0.0;
  /// Per-pair argmax histogram, order {memorize, factorize, naive}
  /// (paper Eq. 19 applied at this epoch).
  std::array<size_t, 3> argmax_counts{{0, 0, 0}};
  /// Pairs whose argmax method changed vs the previous epoch (0 for the
  /// first epoch). A stable search drives this to 0 before freeze.
  size_t argmax_flips = 0;
};

/// Full search run: one record per epoch.
struct SearchDynamics {
  std::vector<SearchEpochDynamics> epochs;
};

JsonValue SearchEpochDynamicsToJson(const SearchEpochDynamics& d);
JsonValue SearchDynamicsToJson(const SearchDynamics& d);

}  // namespace obs
}  // namespace optinter
