#include "metrics/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace optinter {

namespace {

// Element count above which the rank sort fans out across the pool.
constexpr size_t kParallelSortN = 1u << 15;

/// Strict total order (score, index): no two elements compare equal, so
/// the sorted permutation is unique and any correct sort — serial, chunked
/// or merged — produces the identical order array.
inline bool ScoreIndexLess(const std::vector<float>& scores, size_t a,
                           size_t b) {
  const float sa = scores[a];
  const float sb = scores[b];
  if (sa != sb) return sa < sb;
  return a < b;
}

/// Midrank walk over a fully sorted order array. Serial on the calling
/// thread: the accumulation order is fixed by `order`, which both Auc
/// paths produce identically.
double AucFromOrder(const std::vector<size_t>& order,
                    const std::vector<float>& scores,
                    const std::vector<float>& labels) {
  const size_t n = order.size();
  // Midranks: average rank within each tied block.
  double rank_sum_pos = 0.0;
  size_t n_pos = 0;
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j < n && scores[order[j]] == scores[order[i]]) ++j;
    const double midrank = 0.5 * static_cast<double>(i + 1 + j);  // 1-based
    for (size_t k = i; k < j; ++k) {
      if (labels[order[k]] > 0.5f) {
        rank_sum_pos += midrank;
        ++n_pos;
      }
    }
    i = j;
  }
  const size_t n_neg = n - n_pos;
  CHECK_GT(n_pos, 0u);
  CHECK_GT(n_neg, 0u);
  const double u = rank_sum_pos -
                   static_cast<double>(n_pos) * (n_pos + 1) / 2.0;
  return u / (static_cast<double>(n_pos) * static_cast<double>(n_neg));
}

}  // namespace

namespace internal {

double AucSerial(const std::vector<float>& scores,
                 const std::vector<float>& labels) {
  CHECK_EQ(scores.size(), labels.size());
  const size_t n = scores.size();
  CHECK_GT(n, 0u);
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return ScoreIndexLess(scores, a, b); });
  return AucFromOrder(order, scores, labels);
}

}  // namespace internal

double Auc(const std::vector<float>& scores,
           const std::vector<float>& labels) {
  CHECK_EQ(scores.size(), labels.size());
  const size_t n = scores.size();
  CHECK_GT(n, 0u);
  if (n < kParallelSortN || ThreadPool::InWorkerThread() ||
      ThreadPool::Global().num_threads() == 1) {
    return internal::AucSerial(scores, labels);
  }
  // Chunk sorts + width-doubling pairwise merges. The grid is a pure
  // function of n, but even that is not load-bearing: the comparator is a
  // strict total order, so every path yields the one sorted permutation.
  const FixedChunks grid = MakeFixedChunks(n, /*min_chunk=*/1u << 14,
                                           /*max_chunks=*/16);
  if (grid.count == 1) return internal::AucSerial(scores, labels);
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::vector<size_t> scratch(n);
  auto cmp = [&](size_t a, size_t b) { return ScoreIndexLess(scores, a, b); };
  ParallelForEachChunk(grid, [&](size_t i) {
    std::sort(order.begin() + static_cast<ptrdiff_t>(grid.lo(i)),
              order.begin() + static_cast<ptrdiff_t>(grid.hi(i)), cmp);
  });
  std::vector<size_t>* src = &order;
  std::vector<size_t>* dst = &scratch;
  for (size_t width = grid.chunk; width < n; width *= 2) {
    const size_t pair_span = 2 * width;
    const size_t pairs = (n + pair_span - 1) / pair_span;
    ParallelFor(0, pairs, [&](size_t p) {
      const size_t lo = p * pair_span;
      const size_t mid = std::min(lo + width, n);
      const size_t hi = std::min(lo + pair_span, n);
      std::merge(src->begin() + static_cast<ptrdiff_t>(lo),
                 src->begin() + static_cast<ptrdiff_t>(mid),
                 src->begin() + static_cast<ptrdiff_t>(mid),
                 src->begin() + static_cast<ptrdiff_t>(hi),
                 dst->begin() + static_cast<ptrdiff_t>(lo), cmp);
    }, /*grain=*/1);
    std::swap(src, dst);
  }
  return AucFromOrder(*src, scores, labels);
}

double LogLoss(const std::vector<float>& probs,
               const std::vector<float>& labels, double eps) {
  CHECK_EQ(probs.size(), labels.size());
  CHECK_GT(probs.size(), 0u);
  double total = 0.0;
  for (size_t i = 0; i < probs.size(); ++i) {
    const double p =
        std::clamp(static_cast<double>(probs[i]), eps, 1.0 - eps);
    const double y = labels[i];
    total += -(y * std::log(p) + (1.0 - y) * std::log(1.0 - p));
  }
  return total / static_cast<double>(probs.size());
}

double AucStandardError(double auc, size_t n_pos, size_t n_neg) {
  CHECK_GT(n_pos, 0u);
  CHECK_GT(n_neg, 0u);
  const double q1 = auc / (2.0 - auc);
  const double q2 = 2.0 * auc * auc / (1.0 + auc);
  const double np = static_cast<double>(n_pos);
  const double nn = static_cast<double>(n_neg);
  const double var =
      (auc * (1.0 - auc) + (np - 1.0) * (q1 - auc * auc) +
       (nn - 1.0) * (q2 - auc * auc)) /
      (np * nn);
  return std::sqrt(std::max(0.0, var));
}

AucCi AucWithConfidence(const std::vector<float>& scores,
                        const std::vector<float>& labels, double z) {
  size_t n_pos = 0;
  for (float y : labels) n_pos += y > 0.5f;
  const size_t n_neg = labels.size() - n_pos;
  AucCi out;
  out.auc = Auc(scores, labels);
  out.stderr_ = AucStandardError(out.auc, n_pos, n_neg);
  out.lo = std::max(0.0, out.auc - z * out.stderr_);
  out.hi = std::min(1.0, out.auc + z * out.stderr_);
  return out;
}

double Mean(const std::vector<double>& xs) {
  CHECK(!xs.empty());
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double Variance(const std::vector<double>& xs) {
  CHECK_GE(xs.size(), 2u);
  const double m = Mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size() - 1);
}

}  // namespace optinter
