#include "metrics/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"

namespace optinter {

double Auc(const std::vector<float>& scores,
           const std::vector<float>& labels) {
  CHECK_EQ(scores.size(), labels.size());
  const size_t n = scores.size();
  CHECK_GT(n, 0u);
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return scores[a] < scores[b];
  });
  // Midranks: average rank within each tied block.
  double rank_sum_pos = 0.0;
  size_t n_pos = 0;
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j < n && scores[order[j]] == scores[order[i]]) ++j;
    const double midrank = 0.5 * static_cast<double>(i + 1 + j);  // 1-based
    for (size_t k = i; k < j; ++k) {
      if (labels[order[k]] > 0.5f) {
        rank_sum_pos += midrank;
        ++n_pos;
      }
    }
    i = j;
  }
  const size_t n_neg = n - n_pos;
  CHECK_GT(n_pos, 0u);
  CHECK_GT(n_neg, 0u);
  const double u = rank_sum_pos -
                   static_cast<double>(n_pos) * (n_pos + 1) / 2.0;
  return u / (static_cast<double>(n_pos) * static_cast<double>(n_neg));
}

double LogLoss(const std::vector<float>& probs,
               const std::vector<float>& labels, double eps) {
  CHECK_EQ(probs.size(), labels.size());
  CHECK_GT(probs.size(), 0u);
  double total = 0.0;
  for (size_t i = 0; i < probs.size(); ++i) {
    const double p =
        std::clamp(static_cast<double>(probs[i]), eps, 1.0 - eps);
    const double y = labels[i];
    total += -(y * std::log(p) + (1.0 - y) * std::log(1.0 - p));
  }
  return total / static_cast<double>(probs.size());
}

double AucStandardError(double auc, size_t n_pos, size_t n_neg) {
  CHECK_GT(n_pos, 0u);
  CHECK_GT(n_neg, 0u);
  const double q1 = auc / (2.0 - auc);
  const double q2 = 2.0 * auc * auc / (1.0 + auc);
  const double np = static_cast<double>(n_pos);
  const double nn = static_cast<double>(n_neg);
  const double var =
      (auc * (1.0 - auc) + (np - 1.0) * (q1 - auc * auc) +
       (nn - 1.0) * (q2 - auc * auc)) /
      (np * nn);
  return std::sqrt(std::max(0.0, var));
}

AucCi AucWithConfidence(const std::vector<float>& scores,
                        const std::vector<float>& labels, double z) {
  size_t n_pos = 0;
  for (float y : labels) n_pos += y > 0.5f;
  const size_t n_neg = labels.size() - n_pos;
  AucCi out;
  out.auc = Auc(scores, labels);
  out.stderr_ = AucStandardError(out.auc, n_pos, n_neg);
  out.lo = std::max(0.0, out.auc - z * out.stderr_);
  out.hi = std::min(1.0, out.auc + z * out.stderr_);
  return out;
}

double Mean(const std::vector<double>& xs) {
  CHECK(!xs.empty());
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double Variance(const std::vector<double>& xs) {
  CHECK_GE(xs.size(), 2u);
  const double m = Mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size() - 1);
}

}  // namespace optinter
