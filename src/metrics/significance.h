// Significance testing (paper §III-A5): two-tailed t-tests over repeated
// runs, with the Student-t CDF evaluated via the regularized incomplete
// beta function.

#pragma once

#include <vector>

namespace optinter {

/// Result of a t-test.
struct TTestResult {
  double t_statistic = 0.0;
  double degrees_of_freedom = 0.0;
  /// Two-tailed p-value.
  double p_value = 1.0;
};

/// Welch's unequal-variance t-test for two independent samples.
TTestResult WelchTTest(const std::vector<double>& a,
                       const std::vector<double>& b);

/// Paired two-tailed t-test (paper: "pairwise t-test" over seeds).
TTestResult PairedTTest(const std::vector<double>& a,
                        const std::vector<double>& b);

/// Regularized incomplete beta function I_x(a, b) (continued fraction);
/// exposed for testing.
double RegularizedIncompleteBeta(double a, double b, double x);

/// Two-tailed p-value of a t statistic with `df` degrees of freedom.
double StudentTTwoTailedP(double t, double df);

}  // namespace optinter
