// Evaluation metrics for CTR prediction (paper §III-A2): AUC and log loss.

#pragma once

#include <cstddef>
#include <vector>

namespace optinter {

/// Exact AUC (area under the ROC curve) via the Mann–Whitney rank
/// statistic with midrank tie handling. Labels must be 0/1; requires at
/// least one positive and one negative. O(n log n).
double Auc(const std::vector<float>& scores,
           const std::vector<float>& labels);

/// Mean binary cross-entropy of predicted probabilities (paper Eq. 13).
/// Probabilities are clamped to [eps, 1-eps] for stability.
double LogLoss(const std::vector<float>& probs,
               const std::vector<float>& labels, double eps = 1e-7);

/// Hanley–McNeil (1982) standard error of an AUC estimate with n_pos
/// positives and n_neg negatives.
double AucStandardError(double auc, size_t n_pos, size_t n_neg);

/// AUC with a normal-approximation confidence interval.
struct AucCi {
  double auc = 0.0;
  double stderr_ = 0.0;
  double lo = 0.0;
  double hi = 1.0;
};
AucCi AucWithConfidence(const std::vector<float>& scores,
                        const std::vector<float>& labels,
                        double z = 1.96);

/// Mean of a sample.
double Mean(const std::vector<double>& xs);

/// Unbiased sample variance.
double Variance(const std::vector<double>& xs);

}  // namespace optinter
