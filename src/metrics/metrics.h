// Evaluation metrics for CTR prediction (paper §III-A2): AUC and log loss.

#pragma once

#include <cstddef>
#include <vector>

namespace optinter {

/// Exact AUC (area under the ROC curve) via the Mann–Whitney rank
/// statistic with midrank tie handling. Labels must be 0/1; requires at
/// least one positive and one negative. O(n log n).
///
/// Large inputs sort in parallel (per-chunk sorts + width-doubling
/// merges). The comparator is the strict total order (score, index), so
/// the sorted permutation is unique and the parallel path is bit-identical
/// to the serial one at any thread count — including on ties, where the
/// midrank only depends on tied-block boundaries.
double Auc(const std::vector<float>& scores,
           const std::vector<float>& labels);

namespace internal {
/// Serial reference implementation of Auc (same comparator, plain
/// std::sort). Exposed so tests can assert the parallel path is
/// bit-identical.
double AucSerial(const std::vector<float>& scores,
                 const std::vector<float>& labels);
}  // namespace internal

/// Mean binary cross-entropy of predicted probabilities (paper Eq. 13).
/// Probabilities are clamped to [eps, 1-eps] for stability.
double LogLoss(const std::vector<float>& probs,
               const std::vector<float>& labels, double eps = 1e-7);

/// Hanley–McNeil (1982) standard error of an AUC estimate with n_pos
/// positives and n_neg negatives.
double AucStandardError(double auc, size_t n_pos, size_t n_neg);

/// AUC with a normal-approximation confidence interval.
struct AucCi {
  double auc = 0.0;
  double stderr_ = 0.0;
  double lo = 0.0;
  double hi = 1.0;
};
AucCi AucWithConfidence(const std::vector<float>& scores,
                        const std::vector<float>& labels,
                        double z = 1.96);

/// Mean of a sample.
double Mean(const std::vector<double>& xs);

/// Unbiased sample variance.
double Variance(const std::vector<double>& xs);

}  // namespace optinter
