#include "metrics/significance.h"

#include <cmath>

#include "common/logging.h"
#include "metrics/metrics.h"

namespace optinter {

namespace {

double LogBeta(double a, double b) {
  return std::lgamma(a) + std::lgamma(b) - std::lgamma(a + b);
}

// Lentz's continued fraction for the incomplete beta function.
double BetaContinuedFraction(double a, double b, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3e-12;
  constexpr double kTiny = 1e-300;
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double RegularizedIncompleteBeta(double a, double b, double x) {
  CHECK_GE(x, 0.0);
  CHECK_LE(x, 1.0);
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  const double ln_front =
      a * std::log(x) + b * std::log(1.0 - x) - LogBeta(a, b);
  const double front = std::exp(ln_front);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - front * BetaContinuedFraction(b, a, 1.0 - x) / b;
}

double StudentTTwoTailedP(double t, double df) {
  CHECK_GT(df, 0.0);
  const double x = df / (df + t * t);
  // P(|T| > t) = I_{df/(df+t^2)}(df/2, 1/2).
  return RegularizedIncompleteBeta(df / 2.0, 0.5, x);
}

TTestResult WelchTTest(const std::vector<double>& a,
                       const std::vector<double>& b) {
  CHECK_GE(a.size(), 2u);
  CHECK_GE(b.size(), 2u);
  const double ma = Mean(a);
  const double mb = Mean(b);
  const double va = Variance(a) / static_cast<double>(a.size());
  const double vb = Variance(b) / static_cast<double>(b.size());
  TTestResult r;
  const double denom = std::sqrt(va + vb);
  if (denom == 0.0) {
    r.t_statistic = (ma == mb) ? 0.0 : (ma > mb ? 1e9 : -1e9);
    r.degrees_of_freedom = static_cast<double>(a.size() + b.size() - 2);
    r.p_value = (ma == mb) ? 1.0 : 0.0;
    return r;
  }
  r.t_statistic = (ma - mb) / denom;
  const double num = (va + vb) * (va + vb);
  const double den =
      va * va / static_cast<double>(a.size() - 1) +
      vb * vb / static_cast<double>(b.size() - 1);
  r.degrees_of_freedom = num / den;
  r.p_value = StudentTTwoTailedP(r.t_statistic, r.degrees_of_freedom);
  return r;
}

TTestResult PairedTTest(const std::vector<double>& a,
                        const std::vector<double>& b) {
  CHECK_EQ(a.size(), b.size());
  CHECK_GE(a.size(), 2u);
  std::vector<double> diff(a.size());
  for (size_t i = 0; i < a.size(); ++i) diff[i] = a[i] - b[i];
  const double md = Mean(diff);
  const double vd = Variance(diff);
  TTestResult r;
  r.degrees_of_freedom = static_cast<double>(a.size() - 1);
  if (vd == 0.0) {
    r.t_statistic = (md == 0.0) ? 0.0 : (md > 0.0 ? 1e9 : -1e9);
    r.p_value = (md == 0.0) ? 1.0 : 0.0;
    return r;
  }
  r.t_statistic = md / std::sqrt(vd / static_cast<double>(a.size()));
  r.p_value = StudentTTwoTailedP(r.t_statistic, r.degrees_of_freedom);
  return r;
}

}  // namespace optinter
