// Empirical mutual information between a feature interaction and the
// label (paper Eq. 21), used by the interpretability analysis (§III-G):
//
//   MI({H}, y) = H(y) - H(y | H)
//              = -Σ P(y) log P(y) + Σ P(H, y) log P(y | H).
//
// Plug-in estimate over the empirical joint distribution of the encoded
// id pair (id_i, id_j) and the binary label.

#pragma once

#include <cstddef>
#include <vector>

#include "data/dataset.h"

namespace optinter {

/// MI (nats) between the pair of encoded categorical ids at canonical pair
/// index `pair` and the label, over `rows`.
double PairLabelMutualInformation(const EncodedDataset& data,
                                  size_t pair,
                                  const std::vector<size_t>& rows);

/// MI (nats) between a single categorical field's encoded id and the
/// label, over `rows`.
double FieldLabelMutualInformation(const EncodedDataset& data,
                                   size_t cat_field,
                                   const std::vector<size_t>& rows);

/// MI (nats) between the *encoded cross-product feature* at canonical
/// pair index `pair` and the label, over `rows`. Unlike
/// PairLabelMutualInformation (raw id pairs), infrequent combinations are
/// collapsed into OOV — this measures the signal actually available to a
/// memorized embedding table and is far less inflated by sparse-tail
/// plug-in bias. Requires cross features to be built.
double CrossLabelMutualInformation(const EncodedDataset& data, size_t pair,
                                   const std::vector<size_t>& rows);

/// CrossLabelMutualInformation for every pair, in canonical order.
std::vector<double> AllCrossMutualInformation(
    const EncodedDataset& data, const std::vector<size_t>& rows);

/// MI (nats) between the encoded third-order cross id at index `t` of
/// the dataset's built triples and the label, over `rows`.
double TripleLabelMutualInformation(const EncodedDataset& data, size_t t,
                                    const std::vector<size_t>& rows);

/// MI for every pair, in canonical pair order.
std::vector<double> AllPairMutualInformation(
    const EncodedDataset& data, const std::vector<size_t>& rows);

/// Marginal label entropy H(y) in nats over `rows`.
double LabelEntropy(const EncodedDataset& data,
                    const std::vector<size_t>& rows);

}  // namespace optinter
