#include "metrics/mutual_information.h"

#include <cmath>
#include <unordered_map>

#include "common/logging.h"

namespace optinter {

namespace {

// Counts of (value, y=1) and (value, total) per distinct key.
struct Counts {
  double pos = 0.0;
  double total = 0.0;
};

double MiFromCounts(const std::unordered_map<int64_t, Counts>& counts,
                    double n, double pos_total) {
  CHECK_GT(n, 0.0);
  const double p1 = pos_total / n;
  const double p0 = 1.0 - p1;
  double h_y = 0.0;
  if (p1 > 0.0) h_y -= p1 * std::log(p1);
  if (p0 > 0.0) h_y -= p0 * std::log(p0);
  // Conditional entropy H(y | H) = Σ_h P(h) H(y | h).
  double h_cond = 0.0;
  for (const auto& [key, c] : counts) {
    const double ph = c.total / n;
    const double q1 = c.pos / c.total;
    const double q0 = 1.0 - q1;
    double h = 0.0;
    if (q1 > 0.0) h -= q1 * std::log(q1);
    if (q0 > 0.0) h -= q0 * std::log(q0);
    h_cond += ph * h;
  }
  // Guard tiny negative values from floating-point rounding.
  return std::max(0.0, h_y - h_cond);
}

}  // namespace

double PairLabelMutualInformation(const EncodedDataset& data, size_t pair,
                                  const std::vector<size_t>& rows) {
  CHECK_LT(pair, data.num_pairs());
  CHECK(!rows.empty());
  const auto pairs = EnumeratePairs(data.num_categorical());
  const auto [i, j] = pairs[pair];
  std::unordered_map<int64_t, Counts> counts;
  double pos_total = 0.0;
  for (size_t r : rows) {
    const int64_t key = (static_cast<int64_t>(data.cat(r, i)) << 32) |
                        static_cast<int64_t>(
                            static_cast<uint32_t>(data.cat(r, j)));
    Counts& c = counts[key];
    c.total += 1.0;
    if (data.label(r) > 0.5f) {
      c.pos += 1.0;
      pos_total += 1.0;
    }
  }
  return MiFromCounts(counts, static_cast<double>(rows.size()), pos_total);
}

double FieldLabelMutualInformation(const EncodedDataset& data,
                                   size_t cat_field,
                                   const std::vector<size_t>& rows) {
  CHECK_LT(cat_field, data.num_categorical());
  CHECK(!rows.empty());
  std::unordered_map<int64_t, Counts> counts;
  double pos_total = 0.0;
  for (size_t r : rows) {
    Counts& c = counts[data.cat(r, cat_field)];
    c.total += 1.0;
    if (data.label(r) > 0.5f) {
      c.pos += 1.0;
      pos_total += 1.0;
    }
  }
  return MiFromCounts(counts, static_cast<double>(rows.size()), pos_total);
}

double CrossLabelMutualInformation(const EncodedDataset& data, size_t pair,
                                   const std::vector<size_t>& rows) {
  CHECK(data.has_cross());
  CHECK_LT(pair, data.num_pairs());
  CHECK(!rows.empty());
  std::unordered_map<int64_t, Counts> counts;
  double pos_total = 0.0;
  for (size_t r : rows) {
    Counts& c = counts[data.cross(r, pair)];
    c.total += 1.0;
    if (data.label(r) > 0.5f) {
      c.pos += 1.0;
      pos_total += 1.0;
    }
  }
  return MiFromCounts(counts, static_cast<double>(rows.size()), pos_total);
}

std::vector<double> AllCrossMutualInformation(
    const EncodedDataset& data, const std::vector<size_t>& rows) {
  std::vector<double> mi(data.num_pairs());
  for (size_t p = 0; p < data.num_pairs(); ++p) {
    mi[p] = CrossLabelMutualInformation(data, p, rows);
  }
  return mi;
}

double TripleLabelMutualInformation(const EncodedDataset& data, size_t t,
                                    const std::vector<size_t>& rows) {
  CHECK(data.has_triples());
  CHECK_LT(t, data.num_triples());
  CHECK(!rows.empty());
  std::unordered_map<int64_t, Counts> counts;
  double pos_total = 0.0;
  for (size_t r : rows) {
    Counts& c = counts[data.triple(r, t)];
    c.total += 1.0;
    if (data.label(r) > 0.5f) {
      c.pos += 1.0;
      pos_total += 1.0;
    }
  }
  return MiFromCounts(counts, static_cast<double>(rows.size()), pos_total);
}

std::vector<double> AllPairMutualInformation(
    const EncodedDataset& data, const std::vector<size_t>& rows) {
  std::vector<double> mi(data.num_pairs());
  for (size_t p = 0; p < data.num_pairs(); ++p) {
    mi[p] = PairLabelMutualInformation(data, p, rows);
  }
  return mi;
}

double LabelEntropy(const EncodedDataset& data,
                    const std::vector<size_t>& rows) {
  CHECK(!rows.empty());
  double pos = 0.0;
  for (size_t r : rows) pos += data.label(r) > 0.5f ? 1.0 : 0.0;
  const double p1 = pos / static_cast<double>(rows.size());
  const double p0 = 1.0 - p1;
  double h = 0.0;
  if (p1 > 0.0) h -= p1 * std::log(p1);
  if (p0 > 0.0) h -= p0 * std::log(p0);
  return h;
}

}  // namespace optinter
