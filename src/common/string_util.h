// Small string helpers shared by the data pipeline and CLI tooling.

#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace optinter {

/// Splits `s` on `delim`, keeping empty fields (CSV semantics).
std::vector<std::string> Split(std::string_view s, char delim);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// Strips ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

/// Removes one trailing line ending ("\r\n", "\n", or "\r") and nothing
/// else. Unlike Trim, interior-significant whitespace (tabs/spaces that
/// are field delimiters or empty trailing fields) survives — the loaders
/// use this so CRLF files parse identically to LF files without eating
/// delimiter-adjacent empty cells.
std::string_view StripLineEnding(std::string_view s);

/// True when `s` begins with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Formats a parameter count the way the paper's tables do: "13M", "0.5M",
/// "827M", "1012M"; values below 1e5 are printed exactly.
std::string HumanCount(size_t n);

}  // namespace optinter
