// Tiny command-line flag parser used by examples and bench harnesses.
//
//   FlagParser flags;
//   flags.AddInt("epochs", 3, "training epochs");
//   flags.AddString("dataset", "criteo_like", "dataset profile");
//   CHECK_OK(flags.Parse(argc, argv));
//   int epochs = flags.GetInt("epochs");
//
// Accepted syntax: --name=value, --name value, and --flag for bools.

#pragma once

#include <map>
#include <string>

#include "common/status.h"

namespace optinter {

/// Declarative flag registry + parser. Not thread-safe; construct and use
/// from main().
class FlagParser {
 public:
  void AddInt(const std::string& name, int64_t default_value,
              const std::string& help);
  void AddDouble(const std::string& name, double default_value,
                 const std::string& help);
  void AddString(const std::string& name, const std::string& default_value,
                 const std::string& help);
  void AddBool(const std::string& name, bool default_value,
               const std::string& help);

  /// Parses argv; unknown flags are an error. `--help` prints usage and
  /// returns a non-OK status the caller should treat as "exit 0".
  Status Parse(int argc, char** argv);

  int64_t GetInt(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  const std::string& GetString(const std::string& name) const;
  bool GetBool(const std::string& name) const;

  /// Usage text listing all registered flags.
  std::string Usage(const std::string& program) const;

 private:
  enum class Type { kInt, kDouble, kString, kBool };
  struct Flag {
    Type type;
    std::string help;
    int64_t int_value = 0;
    double double_value = 0.0;
    std::string string_value;
    bool bool_value = false;
  };

  Status SetFromString(Flag* flag, const std::string& value);
  const Flag& GetChecked(const std::string& name, Type type) const;

  std::map<std::string, Flag> flags_;
};

}  // namespace optinter
