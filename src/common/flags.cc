#include "common/flags.h"

#include <cstdlib>
#include <sstream>

#include "common/logging.h"
#include "common/string_util.h"

namespace optinter {

void FlagParser::AddInt(const std::string& name, int64_t default_value,
                        const std::string& help) {
  Flag f;
  f.type = Type::kInt;
  f.help = help;
  f.int_value = default_value;
  flags_[name] = std::move(f);
}

void FlagParser::AddDouble(const std::string& name, double default_value,
                           const std::string& help) {
  Flag f;
  f.type = Type::kDouble;
  f.help = help;
  f.double_value = default_value;
  flags_[name] = std::move(f);
}

void FlagParser::AddString(const std::string& name,
                           const std::string& default_value,
                           const std::string& help) {
  Flag f;
  f.type = Type::kString;
  f.help = help;
  f.string_value = default_value;
  flags_[name] = std::move(f);
}

void FlagParser::AddBool(const std::string& name, bool default_value,
                         const std::string& help) {
  Flag f;
  f.type = Type::kBool;
  f.help = help;
  f.bool_value = default_value;
  flags_[name] = std::move(f);
}

Status FlagParser::SetFromString(Flag* flag, const std::string& value) {
  switch (flag->type) {
    case Type::kInt: {
      char* end = nullptr;
      const long long v = std::strtoll(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') {
        return Status::Invalid("expected integer, got '" + value + "'");
      }
      flag->int_value = v;
      return Status::OK();
    }
    case Type::kDouble: {
      char* end = nullptr;
      const double v = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0') {
        return Status::Invalid("expected number, got '" + value + "'");
      }
      flag->double_value = v;
      return Status::OK();
    }
    case Type::kString:
      flag->string_value = value;
      return Status::OK();
    case Type::kBool:
      if (value == "true" || value == "1") {
        flag->bool_value = true;
      } else if (value == "false" || value == "0") {
        flag->bool_value = false;
      } else {
        return Status::Invalid("expected bool, got '" + value + "'");
      }
      return Status::OK();
  }
  return Status::Internal("unreachable");
}

Status FlagParser::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(Usage(argv[0]).c_str(), stderr);
      return Status::FailedPrecondition("help requested");
    }
    if (!StartsWith(arg, "--")) {
      return Status::Invalid("unexpected positional argument '" + arg + "'");
    }
    arg = arg.substr(2);
    std::string name;
    std::string value;
    bool have_value = false;
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      have_value = true;
    } else {
      name = arg;
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      return Status::Invalid("unknown flag --" + name + "\n" +
                             Usage(argv[0]));
    }
    if (!have_value) {
      if (it->second.type == Type::kBool) {
        it->second.bool_value = true;
        continue;
      }
      if (i + 1 >= argc) {
        return Status::Invalid("flag --" + name + " requires a value");
      }
      value = argv[++i];
    }
    OPTINTER_RETURN_NOT_OK(SetFromString(&it->second, value));
  }
  return Status::OK();
}

const FlagParser::Flag& FlagParser::GetChecked(const std::string& name,
                                               Type type) const {
  auto it = flags_.find(name);
  CHECK(it != flags_.end()) << "flag --" << name << " not registered";
  CHECK(it->second.type == type) << "flag --" << name << " type mismatch";
  return it->second;
}

int64_t FlagParser::GetInt(const std::string& name) const {
  return GetChecked(name, Type::kInt).int_value;
}

double FlagParser::GetDouble(const std::string& name) const {
  return GetChecked(name, Type::kDouble).double_value;
}

const std::string& FlagParser::GetString(const std::string& name) const {
  return GetChecked(name, Type::kString).string_value;
}

bool FlagParser::GetBool(const std::string& name) const {
  return GetChecked(name, Type::kBool).bool_value;
}

std::string FlagParser::Usage(const std::string& program) const {
  std::ostringstream os;
  os << "Usage: " << program << " [flags]\n";
  for (const auto& [name, flag] : flags_) {
    os << "  --" << name;
    switch (flag.type) {
      case Type::kInt:
        os << "=<int> (default " << flag.int_value << ")";
        break;
      case Type::kDouble:
        os << "=<num> (default " << flag.double_value << ")";
        break;
      case Type::kString:
        os << "=<str> (default \"" << flag.string_value << "\")";
        break;
      case Type::kBool:
        os << " (default " << (flag.bool_value ? "true" : "false") << ")";
        break;
    }
    os << "\n      " << flag.help << "\n";
  }
  return os.str();
}

}  // namespace optinter
