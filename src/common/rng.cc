#include "common/rng.h"

#include <vector>

namespace optinter {

uint64_t Rng::Zipf(uint64_t n, double exponent) {
  CHECK_GT(n, 0u);
  // Linear-scan inverse CDF; adequate for data-generation setup paths.
  double total = 0.0;
  for (uint64_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), exponent);
  }
  double r = Uniform() * total;
  for (uint64_t k = 0; k < n; ++k) {
    r -= 1.0 / std::pow(static_cast<double>(k + 1), exponent);
    if (r <= 0.0) return k;
  }
  return n - 1;
}

}  // namespace optinter
