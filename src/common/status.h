// Status / Result<T> error-handling primitives (Arrow/RocksDB idiom).
//
// Recoverable errors (bad input files, schema mismatches, invalid configs)
// are reported through Status; programmer errors use the CHECK macros in
// logging.h. No exceptions cross library boundaries.

#pragma once

#include <string>
#include <utility>
#include <variant>

namespace optinter {

/// Machine-readable error category carried by a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kIoError,
  kInternal,
  kUnimplemented,
  kCorruption,
};

/// Returns a stable human-readable name for a StatusCode.
const char* StatusCodeToString(StatusCode code);

/// Outcome of an operation that can fail without a payload.
///
/// Cheap to copy in the OK case (no allocation); error states carry a
/// message. Use the factory functions (Status::OK(), Status::Invalid(...))
/// rather than the constructor.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status Invalid(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  /// Stored data failed an integrity check (bad magic/CRC/length): the
  /// bytes on disk are wrong, as opposed to a well-formed-but-invalid
  /// request (kInvalidArgument).
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string msg_;
};

/// Either a value of type T or an error Status.
///
/// Accessors CHECK-fail on misuse (taking the value of an errored Result);
/// callers must test ok() first on fallible paths.
template <typename T>
class Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design, mirrors
  // arrow::Result so `return value;` and `return status;` both work.
  Result(T value) : repr_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : repr_(std::move(status)) {}

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    if (ok()) return kOk;
    return std::get<Status>(repr_);
  }

  /// Value accessors; undefined (aborts) when !ok().
  const T& value() const& { return std::get<T>(repr_); }
  T& value() & { return std::get<T>(repr_); }
  T&& value() && { return std::move(std::get<T>(repr_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> repr_;
};

}  // namespace optinter

/// Propagates a non-OK Status from an expression to the caller.
#define OPTINTER_RETURN_NOT_OK(expr)            \
  do {                                          \
    ::optinter::Status _st = (expr);            \
    if (!_st.ok()) return _st;                  \
  } while (false)

/// Unwraps a Result<T> into `lhs`, propagating errors to the caller.
/// The temporary's name goes through a second expansion so __LINE__
/// resolves, letting several uses share one scope.
#define OPTINTER_CONCAT_IMPL_(a, b) a##b
#define OPTINTER_CONCAT_(a, b) OPTINTER_CONCAT_IMPL_(a, b)
#define OPTINTER_ASSIGN_OR_RETURN_IMPL_(res, lhs, rexpr) \
  auto res = (rexpr);                                    \
  if (!res.ok()) return res.status();                    \
  lhs = std::move(res).value()
#define OPTINTER_ASSIGN_OR_RETURN(lhs, rexpr) \
  OPTINTER_ASSIGN_OR_RETURN_IMPL_(            \
      OPTINTER_CONCAT_(_res_, __LINE__), lhs, rexpr)
