#include "common/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace optinter {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\r' ||
                   s[b] == '\n')) {
    ++b;
  }
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' ||
                   s[e - 1] == '\r' || s[e - 1] == '\n')) {
    --e;
  }
  return s.substr(b, e - b);
}

std::string_view StripLineEnding(std::string_view s) {
  if (!s.empty() && s.back() == '\n') s.remove_suffix(1);
  if (!s.empty() && s.back() == '\r') s.remove_suffix(1);
  return s;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string HumanCount(size_t n) {
  if (n >= 100000) {
    const double millions = static_cast<double>(n) / 1e6;
    if (millions >= 10.0) {
      return StrFormat("%.0fM", millions);
    }
    return StrFormat("%.1fM", millions);
  }
  return StrFormat("%zu", n);
}

}  // namespace optinter
