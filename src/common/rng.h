// Deterministic, seedable random number generation.
//
// All stochastic components (initializers, samplers, data generators,
// Gumbel noise) draw from Rng so experiments are reproducible from a
// single seed. xoshiro256** core seeded through SplitMix64, as recommended
// by the xoshiro authors.

#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

#include "common/logging.h"

namespace optinter {

/// SplitMix64: used to expand a 64-bit seed into xoshiro state.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// xoshiro256** generator with convenience sampling methods.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed5eed5eedULL) { Seed(seed); }

  /// Re-seeds the generator deterministically from `seed`.
  void Seed(uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.Next();
    have_gaussian_ = false;
  }

  /// Uniform 64-bit integer.
  uint64_t NextUint64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double Uniform() {
    return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Uniform integer in [0, n). Requires n > 0. Unbiased via rejection.
  uint64_t UniformInt(uint64_t n) {
    CHECK_GT(n, 0u);
    const uint64_t threshold = (0 - n) % n;  // 2^64 mod n
    for (;;) {
      uint64_t r = NextUint64();
      if (r >= threshold) return r % n;
    }
  }

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p) { return Uniform() < p; }

  /// Standard normal via Marsaglia polar method (cached pair).
  double Gaussian() {
    if (have_gaussian_) {
      have_gaussian_ = false;
      return cached_gaussian_;
    }
    double u, v, s;
    do {
      u = Uniform(-1.0, 1.0);
      v = Uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double mul = std::sqrt(-2.0 * std::log(s) / s);
    cached_gaussian_ = v * mul;
    have_gaussian_ = true;
    return u * mul;
  }

  /// Normal with the given mean / stddev.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }

  /// Standard Gumbel(0, 1) sample: -log(-log(U)), U ~ Uniform(0,1).
  /// Used by the Gumbel-softmax relaxation (paper Eq. 16).
  double Gumbel() {
    double u;
    do {
      u = Uniform();
    } while (u <= 0.0);  // guard log(0)
    return -std::log(-std::log(u));
  }

  /// Samples an index in [0, n) from unnormalized non-negative weights.
  /// Requires at least one strictly positive weight.
  template <typename Container>
  size_t Categorical(const Container& weights) {
    double total = 0.0;
    for (double w : weights) total += w;
    CHECK_GT(total, 0.0);
    double r = Uniform() * total;
    size_t last = 0;
    size_t i = 0;
    for (double w : weights) {
      r -= w;
      if (r <= 0.0) return i;
      last = i;
      ++i;
    }
    return last;
  }

  /// Zipf-distributed integer in [0, n): P(k) ∝ 1 / (k+1)^exponent.
  /// Inverse-CDF over a precomputed table is the caller's job for hot
  /// paths; this is a simple rejection-free linear scan for setup code.
  uint64_t Zipf(uint64_t n, double exponent);

  /// Fisher–Yates shuffle of an indexable container.
  template <typename Container>
  void Shuffle(Container* c) {
    if (c->size() < 2) return;
    for (size_t i = c->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformInt(i + 1));
      std::swap((*c)[i], (*c)[j]);
    }
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4] = {};
  bool have_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace optinter
