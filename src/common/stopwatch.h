// Wall-clock stopwatch for benches and training-loop reporting.

#pragma once

#include <chrono>

namespace optinter {

/// Measures elapsed wall-clock time since construction or the last Reset().
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed.
  double Elapsed() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  double ElapsedMillis() const { return Elapsed() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace optinter
