#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

#include "common/logging.h"
#include "obs/registry.h"

namespace optinter {

namespace {
thread_local bool t_in_pool_worker = false;

// Registry handles are resolved once; the registry never invalidates them.
obs::Counter* TasksSubmittedCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("pool.tasks_submitted");
  return c;
}

obs::Counter* TasksExecutedCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("pool.tasks_executed");
  return c;
}

obs::Histogram* QueueWaitHistogram() {
  static obs::Histogram* h = obs::MetricsRegistry::Global().GetHistogram(
      "pool.queue_wait_us",
      {1.0, 10.0, 100.0, 1000.0, 10000.0, 100000.0, 1000000.0});
  return h;
}
}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  CHECK_GE(num_threads, 1u);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  const bool observed = obs::Enabled();
  Task queued{std::move(task), observed
                                  ? std::chrono::steady_clock::now()
                                  : std::chrono::steady_clock::time_point{}};
  {
    std::unique_lock<std::mutex> lock(mutex_);
    CHECK(!shutting_down_);
    tasks_.push(std::move(queued));
    ++in_flight_;
  }
  task_available_.notify_one();
  if (observed) TasksSubmittedCounter()->Add(1);
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

bool ThreadPool::InWorkerThread() { return t_in_pool_worker; }

void ThreadPool::WorkerLoop() {
  t_in_pool_worker = true;
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(
          lock, [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    // A zero enqueue time means obs was disabled at Submit; skip reporting
    // rather than record a bogus multi-decade wait.
    if (task.enqueued != std::chrono::steady_clock::time_point{} &&
        obs::Enabled()) {
      const auto wait_us = std::chrono::duration_cast<std::chrono::microseconds>(
                               std::chrono::steady_clock::now() - task.enqueued)
                               .count();
      QueueWaitHistogram()->Observe(static_cast<double>(wait_us));
      TasksExecutedCounter()->Add(1);
    }
    task.fn();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool* pool = [] {
    size_t n = std::thread::hardware_concurrency();
    if (n == 0) n = 4;
    auto* p = new ThreadPool(n);
    obs::MetricsRegistry::Global()
        .GetGauge("pool.num_threads")
        ->Set(static_cast<double>(n));
    return p;
  }();
  return *pool;
}

void ParallelForChunks(size_t begin, size_t end,
                       const std::function<void(size_t, size_t)>& body,
                       size_t min_chunk) {
  if (begin >= end) return;
  if (ThreadPool::InWorkerThread()) {
    // Nested parallel region: run serially on this worker (see
    // InWorkerThread for the deadlock rationale).
    body(begin, end);
    return;
  }
  const size_t n = end - begin;
  ThreadPool& pool = ThreadPool::Global();
  const size_t max_chunks = pool.num_threads() * 4;
  size_t chunk = std::max(min_chunk, (n + max_chunks - 1) / max_chunks);
  if (n <= chunk) {
    body(begin, end);
    return;
  }
  std::atomic<size_t> next{begin};
  const size_t num_tasks =
      std::min(pool.num_threads(), (n + chunk - 1) / chunk);
  for (size_t t = 0; t < num_tasks; ++t) {
    pool.Submit([&next, end, chunk, &body] {
      for (;;) {
        size_t lo = next.fetch_add(chunk);
        if (lo >= end) return;
        body(lo, std::min(lo + chunk, end));
      }
    });
  }
  pool.Wait();
}

void ParallelFor(size_t begin, size_t end,
                 const std::function<void(size_t)>& body, size_t grain) {
  ParallelForChunks(
      begin, end,
      [&body](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) body(i);
      },
      grain);
}

}  // namespace optinter
