#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#include "common/logging.h"
#include "obs/registry.h"

namespace optinter {

namespace {
thread_local bool t_in_pool_worker = false;

// The global pool, created lazily. Guarded by GlobalPoolMutex(); never
// null after first Global() call. SetGlobalThreads swaps it for tests.
ThreadPool* g_global_pool = nullptr;

std::mutex& GlobalPoolMutex() {
  static std::mutex* m = new std::mutex();
  return *m;
}

size_t DefaultGlobalThreads() {
  if (const char* env = std::getenv("OPTINTER_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1) return static_cast<size_t>(v);
    LOG_WARNING() << "ignoring invalid OPTINTER_THREADS='" << env << "'";
  }
  size_t n = std::thread::hardware_concurrency();
  if (n == 0) n = 4;
  return n;
}

// Registry handles are resolved once; the registry never invalidates them.
obs::Counter* TasksSubmittedCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("pool.tasks_submitted");
  return c;
}

obs::Counter* TasksExecutedCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("pool.tasks_executed");
  return c;
}

obs::Histogram* QueueWaitHistogram() {
  static obs::Histogram* h = obs::MetricsRegistry::Global().GetHistogram(
      "pool.queue_wait_us",
      {1.0, 10.0, 100.0, 1000.0, 10000.0, 100000.0, 1000000.0});
  return h;
}
}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  CHECK_GE(num_threads, 1u);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task, TaskGroup* group) {
  const bool observed = obs::Enabled();
  if (group != nullptr) group->Add();
  Task queued{std::move(task), group,
              observed ? std::chrono::steady_clock::now()
                       : std::chrono::steady_clock::time_point{}};
  {
    std::unique_lock<std::mutex> lock(mutex_);
    CHECK(!shutting_down_);
    tasks_.push(std::move(queued));
    ++in_flight_;
  }
  task_available_.notify_one();
  if (observed) TasksSubmittedCounter()->Add(1);
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

bool ThreadPool::InWorkerThread() { return t_in_pool_worker; }

void ThreadPool::WorkerLoop() {
  t_in_pool_worker = true;
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(
          lock, [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    // A zero enqueue time means obs was disabled at Submit; skip reporting
    // rather than record a bogus multi-decade wait.
    if (task.enqueued != std::chrono::steady_clock::time_point{} &&
        obs::Enabled()) {
      const auto wait_us = std::chrono::duration_cast<std::chrono::microseconds>(
                               std::chrono::steady_clock::now() - task.enqueued)
                               .count();
      QueueWaitHistogram()->Observe(static_cast<double>(wait_us));
      TasksExecutedCounter()->Add(1);
    }
    task.fn();
    if (task.group != nullptr) task.group->Finish();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

ThreadPool& ThreadPool::Global() {
  std::lock_guard<std::mutex> lock(GlobalPoolMutex());
  if (g_global_pool == nullptr) {
    const size_t n = DefaultGlobalThreads();
    g_global_pool = new ThreadPool(n);
    obs::MetricsRegistry::Global()
        .GetGauge("pool.num_threads")
        ->Set(static_cast<double>(n));
  }
  return *g_global_pool;
}

void ThreadPool::SetGlobalThreads(size_t num_threads) {
  CHECK_GE(num_threads, 1u);
  CHECK(!InWorkerThread());
  std::lock_guard<std::mutex> lock(GlobalPoolMutex());
  if (g_global_pool != nullptr &&
      g_global_pool->num_threads() == num_threads) {
    return;
  }
  delete g_global_pool;  // drains the queue and joins the workers
  g_global_pool = new ThreadPool(num_threads);
  obs::MetricsRegistry::Global()
      .GetGauge("pool.num_threads")
      ->Set(static_cast<double>(num_threads));
}

FixedChunks MakeFixedChunks(size_t n, size_t min_chunk, size_t max_chunks) {
  CHECK_GE(min_chunk, 1u);
  CHECK_GE(max_chunks, 1u);
  FixedChunks grid;
  grid.n = n;
  if (n == 0) return grid;
  grid.count = std::min(max_chunks, (n + min_chunk - 1) / min_chunk);
  grid.chunk = (n + grid.count - 1) / grid.count;
  // ceil rounding can leave the last chunk empty (e.g. n=9, count=8 →
  // chunk=2 covers n in 5 chunks); trim so every chunk is non-empty.
  grid.count = (n + grid.chunk - 1) / grid.chunk;
  return grid;
}

}  // namespace optinter
