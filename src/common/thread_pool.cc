#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

#include "common/logging.h"

namespace optinter {

namespace {
thread_local bool t_in_pool_worker = false;
}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  CHECK_GE(num_threads, 1u);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    CHECK(!shutting_down_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

bool ThreadPool::InWorkerThread() { return t_in_pool_worker; }

void ThreadPool::WorkerLoop() {
  t_in_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(
          lock, [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool* pool = [] {
    size_t n = std::thread::hardware_concurrency();
    if (n == 0) n = 4;
    return new ThreadPool(n);
  }();
  return *pool;
}

void ParallelForChunks(size_t begin, size_t end,
                       const std::function<void(size_t, size_t)>& body,
                       size_t min_chunk) {
  if (begin >= end) return;
  if (ThreadPool::InWorkerThread()) {
    // Nested parallel region: run serially on this worker (see
    // InWorkerThread for the deadlock rationale).
    body(begin, end);
    return;
  }
  const size_t n = end - begin;
  ThreadPool& pool = ThreadPool::Global();
  const size_t max_chunks = pool.num_threads() * 4;
  size_t chunk = std::max(min_chunk, (n + max_chunks - 1) / max_chunks);
  if (n <= chunk) {
    body(begin, end);
    return;
  }
  std::atomic<size_t> next{begin};
  const size_t num_tasks =
      std::min(pool.num_threads(), (n + chunk - 1) / chunk);
  for (size_t t = 0; t < num_tasks; ++t) {
    pool.Submit([&next, end, chunk, &body] {
      for (;;) {
        size_t lo = next.fetch_add(chunk);
        if (lo >= end) return;
        body(lo, std::min(lo + chunk, end));
      }
    });
  }
  pool.Wait();
}

void ParallelFor(size_t begin, size_t end,
                 const std::function<void(size_t)>& body, size_t grain) {
  ParallelForChunks(
      begin, end,
      [&body](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) body(i);
      },
      grain);
}

}  // namespace optinter
