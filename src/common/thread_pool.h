// Fixed-size worker pool with a ParallelFor convenience used by the tensor
// kernels (GEMM row-blocking, elementwise maps) and batch evaluation.

#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace optinter {

/// Completion latch for a set of tasks submitted to a ThreadPool.
///
/// Pass a TaskGroup* to ThreadPool::Submit and Wait() blocks until every
/// task submitted against THIS group has finished — independent of any
/// other work in flight on the pool. This is what lets a long-lived task
/// (e.g. the training pipeline's batch prefetch) coexist with the
/// fork-join helpers below: ParallelFor/ParallelForChunks wait on their
/// own private group, not on global pool quiescence, so they return as
/// soon as their own chunks are done.
///
/// A group may be reused for successive waves of tasks after Wait()
/// returns. Thread-safe; Wait() may be called from any non-worker thread.
class TaskGroup {
 public:
  TaskGroup() = default;
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Blocks until every task submitted against this group has completed.
  void Wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [this] { return pending_ == 0; });
  }

  /// Number of tasks submitted against this group that have not finished.
  /// Racy by nature — only useful for monitoring/tests.
  size_t pending() {
    std::unique_lock<std::mutex> lock(mutex_);
    return pending_;
  }

 private:
  friend class ThreadPool;

  void Add() {
    std::unique_lock<std::mutex> lock(mutex_);
    ++pending_;
  }

  void Finish() {
    std::unique_lock<std::mutex> lock(mutex_);
    if (--pending_ == 0) done_.notify_all();
  }

  std::mutex mutex_;
  std::condition_variable done_;
  size_t pending_ = 0;
};

/// A fixed pool of worker threads executing queued tasks.
///
/// Thread-safe. Destruction drains the queue and joins all workers.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (>= 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution. When `group` is non-null
  /// the task is counted against it until completion (see TaskGroup); the
  /// group must outlive the task.
  void Submit(std::function<void()> task, TaskGroup* group = nullptr);

  /// Blocks until all submitted tasks have completed (global quiescence
  /// across every group). Prefer TaskGroup::Wait for fork-join scopes.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  /// Process-wide default pool. Sized from the OPTINTER_THREADS
  /// environment variable when set (>= 1), otherwise the hardware
  /// concurrency.
  static ThreadPool& Global();

  /// Replaces the global pool with one of `num_threads` workers. The old
  /// pool is drained and joined first. Must not be called while parallel
  /// work is in flight (callers of Global() may hold a stale reference).
  /// Intended for determinism tests that re-run the same computation at
  /// several thread counts inside one process.
  static void SetGlobalThreads(size_t num_threads);

  /// True when the calling thread is one of the global pool's workers.
  /// ParallelFor/ParallelForChunks use this to degrade to a serial loop:
  /// a worker that Submit()s and then Wait()s for the pool would deadlock
  /// (Wait blocks until in_flight_ == 0, which includes the waiter's own
  /// task).
  static bool InWorkerThread();

 private:
  /// Queued task plus its enqueue time (zero when obs is disabled), so the
  /// dequeueing worker can report queue-wait latency to the metrics
  /// registry ("pool.queue_wait_us" histogram).
  struct Task {
    std::function<void()> fn;
    TaskGroup* group = nullptr;
    std::chrono::steady_clock::time_point enqueued{};
  };

  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<Task> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

// The fork-join helpers below are templates on the body type: taking a
// std::function parameter would type-erase (and usually heap-allocate) at
// EVERY call site, including the serial and single-thread inline paths —
// which breaks the steady-state zero-allocation contract of the training
// pipeline. Only the actual fan-out pays type erasure, inside Submit.

/// Runs body(chunk_begin, chunk_end) over contiguous chunks in parallel.
/// Blocks until every index has been processed.
///
/// Chunk sizing depends on the pool size, so this is only safe for bodies
/// whose writes are disjoint and whose per-element math does not depend on
/// the chunk boundaries (gathers, elementwise maps, per-row loops). For
/// reductions use FixedChunks below.
template <typename Body>
void ParallelForChunks(size_t begin, size_t end, Body&& body,
                       size_t min_chunk = 256) {
  if (begin >= end) return;
  if (ThreadPool::InWorkerThread()) {
    // Nested parallel region: run serially on this worker (see
    // InWorkerThread for the deadlock rationale).
    body(begin, end);
    return;
  }
  const size_t n = end - begin;
  ThreadPool& pool = ThreadPool::Global();
  if (pool.num_threads() == 1) {
    // One worker would execute everything sequentially anyway; running
    // inline skips the Submit allocations and, crucially, cannot deadlock
    // when the lone worker is parked inside a long-lived task (e.g. a
    // fence-blocked pipeline prefetch).
    body(begin, end);
    return;
  }
  const size_t max_chunks = pool.num_threads() * 4;
  size_t chunk = std::max(min_chunk, (n + max_chunks - 1) / max_chunks);
  if (n <= chunk) {
    body(begin, end);
    return;
  }
  std::atomic<size_t> next{begin};
  const size_t num_tasks =
      std::min(pool.num_threads(), (n + chunk - 1) / chunk);
  TaskGroup group;
  for (size_t t = 0; t < num_tasks; ++t) {
    pool.Submit(
        [&next, end, chunk, &body] {
          for (;;) {
            size_t lo = next.fetch_add(chunk);
            if (lo >= end) return;
            body(lo, std::min(lo + chunk, end));
          }
        },
        &group);
  }
  // Waiting on the group (not the whole pool) keeps this fork-join scope
  // independent of unrelated in-flight work such as pipeline prefetches.
  group.Wait();
}

/// Runs body(i) for i in [begin, end), splitting the range across the pool.
/// Blocks until every index has been processed. Falls back to a serial loop
/// for small ranges (fewer than `grain` items per worker would be wasteful).
template <typename Body>
void ParallelFor(size_t begin, size_t end, Body&& body, size_t grain = 256) {
  ParallelForChunks(
      begin, end,
      [&body](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) body(i);
      },
      grain);
}

// ---------------------------------------------------------------------------
// Deterministic parallel reductions.
// ---------------------------------------------------------------------------

/// A chunk grid over [0, n) whose layout depends ONLY on n and the caller's
/// grain parameters — never on the pool size. Per-chunk partial results
/// reduced in a fixed order (sequential by chunk index, or a fixed-shape
/// tree) are therefore bit-identical at any thread count, including the
/// serial nested-parallelism fallback. This is the determinism contract
/// behind the parallel backward passes (see DESIGN.md).
struct FixedChunks {
  size_t n = 0;
  size_t count = 0;  // number of chunks (>= 1 when n > 0)
  size_t chunk = 0;  // items per chunk (last chunk may be short)

  size_t lo(size_t i) const { return i * chunk; }
  size_t hi(size_t i) const {
    const size_t end = (i + 1) * chunk;
    return end < n ? end : n;
  }
};

/// Builds the fixed grid: count = min(max_chunks, ceil(n / min_chunk)),
/// chunk = ceil(n / count). `max_chunks` bounds the memory spent on
/// per-chunk partial buffers; keep it a small constant at the call site so
/// the grid stays a pure function of n.
FixedChunks MakeFixedChunks(size_t n, size_t min_chunk,
                            size_t max_chunks = 8);

/// Runs body(i) for every chunk index i in [0, count) across the pool
/// (serially when nested inside a pool worker, when count == 1, or on a
/// single-thread pool — inline and in chunk order). The caller owns
/// per-chunk output buffers and reduces them afterwards in a fixed order.
template <typename Body>
void ParallelForEachChunk(const FixedChunks& grid, Body&& body) {
  if (grid.count == 0) return;
  if (grid.count == 1 || ThreadPool::InWorkerThread()) {
    for (size_t i = 0; i < grid.count; ++i) body(i);
    return;
  }
  ThreadPool& pool = ThreadPool::Global();
  if (pool.num_threads() == 1) {
    // Same rationale as ParallelForChunks: inline beats queueing through a
    // single worker, and stays live while that worker runs other tasks.
    for (size_t i = 0; i < grid.count; ++i) body(i);
    return;
  }
  std::atomic<size_t> next{0};
  const size_t num_tasks = std::min(pool.num_threads(), grid.count);
  TaskGroup group;
  for (size_t t = 0; t < num_tasks; ++t) {
    pool.Submit(
        [&next, &grid, &body] {
          for (;;) {
            const size_t i = next.fetch_add(1);
            if (i >= grid.count) return;
            body(i);
          }
        },
        &group);
  }
  group.Wait();
}

}  // namespace optinter
