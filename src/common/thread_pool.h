// Fixed-size worker pool with a ParallelFor convenience used by the tensor
// kernels (GEMM row-blocking, elementwise maps) and batch evaluation.

#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace optinter {

/// A fixed pool of worker threads executing queued tasks.
///
/// Thread-safe. Destruction drains the queue and joins all workers.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (>= 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have completed.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  /// Process-wide default pool sized to the hardware concurrency.
  static ThreadPool& Global();

  /// True when the calling thread is one of the global pool's workers.
  /// ParallelFor/ParallelForChunks use this to degrade to a serial loop:
  /// a worker that Submit()s and then Wait()s for the pool would deadlock
  /// (Wait blocks until in_flight_ == 0, which includes the waiter's own
  /// task).
  static bool InWorkerThread();

 private:
  /// Queued task plus its enqueue time (zero when obs is disabled), so the
  /// dequeueing worker can report queue-wait latency to the metrics
  /// registry ("pool.queue_wait_us" histogram).
  struct Task {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued{};
  };

  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<Task> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

/// Runs body(i) for i in [begin, end), splitting the range across the pool.
/// Blocks until every index has been processed. Falls back to a serial loop
/// for small ranges (fewer than `grain` items per worker would be wasteful).
void ParallelFor(size_t begin, size_t end,
                 const std::function<void(size_t)>& body,
                 size_t grain = 256);

/// Runs body(chunk_begin, chunk_end) over contiguous chunks in parallel.
void ParallelForChunks(size_t begin, size_t end,
                       const std::function<void(size_t, size_t)>& body,
                       size_t min_chunk = 256);

}  // namespace optinter
