// Fixed-size worker pool with a ParallelFor convenience used by the tensor
// kernels (GEMM row-blocking, elementwise maps) and batch evaluation.

#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace optinter {

/// A fixed pool of worker threads executing queued tasks.
///
/// Thread-safe. Destruction drains the queue and joins all workers.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (>= 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have completed.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  /// Process-wide default pool. Sized from the OPTINTER_THREADS
  /// environment variable when set (>= 1), otherwise the hardware
  /// concurrency.
  static ThreadPool& Global();

  /// Replaces the global pool with one of `num_threads` workers. The old
  /// pool is drained and joined first. Must not be called while parallel
  /// work is in flight (callers of Global() may hold a stale reference).
  /// Intended for determinism tests that re-run the same computation at
  /// several thread counts inside one process.
  static void SetGlobalThreads(size_t num_threads);

  /// True when the calling thread is one of the global pool's workers.
  /// ParallelFor/ParallelForChunks use this to degrade to a serial loop:
  /// a worker that Submit()s and then Wait()s for the pool would deadlock
  /// (Wait blocks until in_flight_ == 0, which includes the waiter's own
  /// task).
  static bool InWorkerThread();

 private:
  /// Queued task plus its enqueue time (zero when obs is disabled), so the
  /// dequeueing worker can report queue-wait latency to the metrics
  /// registry ("pool.queue_wait_us" histogram).
  struct Task {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued{};
  };

  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<Task> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

/// Runs body(i) for i in [begin, end), splitting the range across the pool.
/// Blocks until every index has been processed. Falls back to a serial loop
/// for small ranges (fewer than `grain` items per worker would be wasteful).
void ParallelFor(size_t begin, size_t end,
                 const std::function<void(size_t)>& body,
                 size_t grain = 256);

/// Runs body(chunk_begin, chunk_end) over contiguous chunks in parallel.
///
/// Chunk sizing depends on the pool size, so this is only safe for bodies
/// whose writes are disjoint and whose per-element math does not depend on
/// the chunk boundaries (gathers, elementwise maps, per-row loops). For
/// reductions use FixedChunks below.
void ParallelForChunks(size_t begin, size_t end,
                       const std::function<void(size_t, size_t)>& body,
                       size_t min_chunk = 256);

// ---------------------------------------------------------------------------
// Deterministic parallel reductions.
// ---------------------------------------------------------------------------

/// A chunk grid over [0, n) whose layout depends ONLY on n and the caller's
/// grain parameters — never on the pool size. Per-chunk partial results
/// reduced in a fixed order (sequential by chunk index, or a fixed-shape
/// tree) are therefore bit-identical at any thread count, including the
/// serial nested-parallelism fallback. This is the determinism contract
/// behind the parallel backward passes (see DESIGN.md).
struct FixedChunks {
  size_t n = 0;
  size_t count = 0;  // number of chunks (>= 1 when n > 0)
  size_t chunk = 0;  // items per chunk (last chunk may be short)

  size_t lo(size_t i) const { return i * chunk; }
  size_t hi(size_t i) const {
    const size_t end = (i + 1) * chunk;
    return end < n ? end : n;
  }
};

/// Builds the fixed grid: count = min(max_chunks, ceil(n / min_chunk)),
/// chunk = ceil(n / count). `max_chunks` bounds the memory spent on
/// per-chunk partial buffers; keep it a small constant at the call site so
/// the grid stays a pure function of n.
FixedChunks MakeFixedChunks(size_t n, size_t min_chunk,
                            size_t max_chunks = 8);

/// Runs body(i) for every chunk index i in [0, count) across the pool
/// (serially when nested inside a pool worker or when count == 1). The
/// caller owns per-chunk output buffers and reduces them afterwards in a
/// fixed order.
void ParallelForEachChunk(const FixedChunks& grid,
                          const std::function<void(size_t)>& body);

}  // namespace optinter
