// Minimal streaming logger plus CHECK macros for invariant enforcement.
//
// CHECK is for programmer errors (violated invariants); recoverable errors
// go through Status (status.h). CHECK failures print the failing condition
// with file:line and abort.

#pragma once

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace optinter {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global minimum level actually emitted. Defaults to the value of the
/// OPTINTER_LOG_LEVEL environment variable at first use ("debug", "info",
/// "warning"/"warn", "error", or a digit 0–3; kInfo when unset or
/// unparsable). SetLogLevel always wins over the env var.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Parses a level name ("debug", "info", "warning"/"warn", "error",
/// case-insensitive, or a digit 0–3) into `*out`. Returns false (leaving
/// `*out` untouched) for anything else.
bool LogLevelFromString(const std::string& text, LogLevel* out);

/// Level from OPTINTER_LOG_LEVEL, or kInfo when unset/unparsable.
LogLevel LogLevelFromEnv();

namespace internal {

/// Accumulates one log line and flushes it on destruction. The line is
/// prefixed with the level tag, a wall-clock timestamp, a compact
/// per-thread id (t0, t1, ...) and file:line, and is emitted as a single
/// write so lines from concurrent pool workers cannot interleave.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Like LogMessage but aborts the process on destruction.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalLogMessage();

  FatalLogMessage(const FatalLogMessage&) = delete;
  FatalLogMessage& operator=(const FatalLogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace optinter

#define OPTINTER_LOG(level)                                          \
  ::optinter::internal::LogMessage(::optinter::LogLevel::k##level,   \
                                   __FILE__, __LINE__)               \
      .stream()

#define LOG_DEBUG() OPTINTER_LOG(Debug)
#define LOG_INFO() OPTINTER_LOG(Info)
#define LOG_WARNING() OPTINTER_LOG(Warning)
#define LOG_ERROR() OPTINTER_LOG(Error)

/// Aborts with a diagnostic when `condition` is false. Always on (release
/// builds included): numeric code depends on these invariants.
#define CHECK(condition)                                                   \
  if (!(condition))                                                        \
  ::optinter::internal::FatalLogMessage(__FILE__, __LINE__, #condition)   \
      .stream()

#define CHECK_EQ(a, b) CHECK((a) == (b)) << " (" << (a) << " vs " << (b) << ") "
#define CHECK_NE(a, b) CHECK((a) != (b)) << " (" << (a) << " vs " << (b) << ") "
#define CHECK_LT(a, b) CHECK((a) < (b)) << " (" << (a) << " vs " << (b) << ") "
#define CHECK_LE(a, b) CHECK((a) <= (b)) << " (" << (a) << " vs " << (b) << ") "
#define CHECK_GT(a, b) CHECK((a) > (b)) << " (" << (a) << " vs " << (b) << ") "
#define CHECK_GE(a, b) CHECK((a) >= (b)) << " (" << (a) << " vs " << (b) << ") "

/// CHECK that a Status-returning expression succeeded.
#define CHECK_OK(expr)                                 \
  do {                                                 \
    ::optinter::Status _st = (expr);                   \
    CHECK(_st.ok()) << _st.ToString();                 \
  } while (false)
