#include "common/logging.h"

#include <atomic>
#include <mutex>

namespace optinter {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_log_mutex;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level));
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load());
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelTag(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) < g_log_level.load()) return;
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::cerr << stream_.str() << "\n";
}

FatalLogMessage::FatalLogMessage(const char* file, int line,
                                 const char* condition) {
  stream_ << "[FATAL " << file << ":" << line << "] Check failed: "
          << condition << " ";
}

FatalLogMessage::~FatalLogMessage() {
  {
    std::lock_guard<std::mutex> lock(g_log_mutex);
    std::cerr << stream_.str() << std::endl;
  }
  std::abort();
}

}  // namespace internal
}  // namespace optinter
