#include "common/logging.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <mutex>

namespace optinter {

namespace {

// -1 is the "uninitialized" sentinel: the first reader initializes from
// OPTINTER_LOG_LEVEL, unless SetLogLevel already stored an explicit level.
std::atomic<int> g_log_level{-1};
std::mutex g_log_mutex;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

int EffectiveLevel() {
  int v = g_log_level.load(std::memory_order_relaxed);
  if (v < 0) {
    // Racing first readers all compute the same env-derived value; a
    // concurrent SetLogLevel may overwrite it, which is the caller's
    // explicit choice winning.
    v = static_cast<int>(LogLevelFromEnv());
    int expected = -1;
    if (!g_log_level.compare_exchange_strong(expected, v,
                                             std::memory_order_relaxed)) {
      v = expected;
    }
  }
  return v;
}

/// Compact per-thread id for log prefixes: assigned in first-log order.
size_t ThisThreadLogId() {
  static std::atomic<size_t> next{0};
  thread_local size_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

/// "HH:MM:SS.mmm" local wall-clock.
void AppendTimestamp(std::ostream& os) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto millis =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          now.time_since_epoch())
          .count() %
      1000;
  std::tm tm_buf;
  localtime_r(&secs, &tm_buf);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%02d:%02d:%02d.%03d", tm_buf.tm_hour,
                tm_buf.tm_min, tm_buf.tm_sec, static_cast<int>(millis));
  os << buf;
}

/// Emits one complete line (newline included) as a single stream write.
/// std::cerr is unit-buffered, so the one insertion reaches the fd intact;
/// the mutex additionally serializes against the fatal path.
void EmitLine(const std::string& line) {
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::cerr << line;
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() { return static_cast<LogLevel>(EffectiveLevel()); }

bool LogLevelFromString(const std::string& text, LogLevel* out) {
  std::string lower;
  lower.reserve(text.size());
  for (const char c : text) {
    lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (lower == "debug" || lower == "0") {
    *out = LogLevel::kDebug;
  } else if (lower == "info" || lower == "1") {
    *out = LogLevel::kInfo;
  } else if (lower == "warning" || lower == "warn" || lower == "2") {
    *out = LogLevel::kWarning;
  } else if (lower == "error" || lower == "3") {
    *out = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

LogLevel LogLevelFromEnv() {
  LogLevel level = LogLevel::kInfo;
  const char* env = std::getenv("OPTINTER_LOG_LEVEL");
  if (env != nullptr) LogLevelFromString(env, &level);
  return level;
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelTag(level) << " ";
  AppendTimestamp(stream_);
  stream_ << " t" << ThisThreadLogId() << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) < EffectiveLevel()) return;
  stream_ << "\n";
  EmitLine(stream_.str());
}

FatalLogMessage::FatalLogMessage(const char* file, int line,
                                 const char* condition) {
  stream_ << "[FATAL ";
  AppendTimestamp(stream_);
  stream_ << " t" << ThisThreadLogId() << " " << file << ":" << line
          << "] Check failed: " << condition << " ";
}

FatalLogMessage::~FatalLogMessage() {
  stream_ << "\n";
  EmitLine(stream_.str());
  std::abort();
}

}  // namespace internal
}  // namespace optinter
