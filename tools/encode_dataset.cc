// One-shot dataset encoder: converts a row source (synthetic profile,
// CSV file, or libsvm file) into a sharded fixed-width binary dataset
// directory that StreamingReader can mmap (data/shard_format.h).
//
// Synthetic profiles stream: rows are regenerated from the RNG on every
// fitting/encoding pass, so even a 50M-row encode holds one row plus the
// vocabulary state (or the hash encoder's bounded tables). CSV and libsvm
// inputs are materialized through their loaders first and then streamed
// from RAM — a v1 limitation; the shard directory they produce is
// identical either way.
//
//   encode_dataset --out=/data/criteo50m --profile=criteo_like \
//       --rows-scale=1000 --hashed
//   encode_dataset --out=/data/mine --source=csv --path=logs.csv \
//       --cat-cols=site,device --cont-cols=price --build-cross

#include <sys/stat.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/logging.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "data/csv_loader.h"
#include "data/libsvm_loader.h"
#include "data/stream_encode.h"
#include "synth/profiles.h"
#include "synth/stream_source.h"

namespace optinter {
namespace {

std::vector<std::string> SplitNonEmpty(const std::string& s, char delim) {
  std::vector<std::string> out;
  for (const std::string& part : Split(s, delim)) {
    if (!part.empty()) out.push_back(part);
  }
  return out;
}

Result<DatasetSchema> CsvSchema(const std::string& cat_cols,
                                const std::string& cont_cols) {
  std::vector<FieldSpec> fields;
  for (const std::string& name : SplitNonEmpty(cat_cols, ',')) {
    fields.push_back({name, FieldType::kCategorical});
  }
  for (const std::string& name : SplitNonEmpty(cont_cols, ',')) {
    fields.push_back({name, FieldType::kContinuous});
  }
  if (fields.empty()) {
    return Status::Invalid(
        "--source=csv needs --cat-cols and/or --cont-cols");
  }
  return DatasetSchema(std::move(fields));
}

/// Parses --libsvm-fields: comma-separated name:kind:begin:end entries,
/// kind in {cat, cont}, e.g. "site:cat:0:1000,price:cont:1000:1001".
Result<std::vector<LibsvmFieldSpec>> ParseLibsvmFields(
    const std::string& spec) {
  std::vector<LibsvmFieldSpec> fields;
  for (const std::string& entry : SplitNonEmpty(spec, ',')) {
    const std::vector<std::string> parts = Split(entry, ':');
    if (parts.size() != 4) {
      return Status::Invalid("bad --libsvm-fields entry '" + entry +
                             "' (want name:cat|cont:begin:end)");
    }
    LibsvmFieldSpec f;
    f.name = parts[0];
    if (parts[1] == "cat") {
      f.type = FieldType::kCategorical;
    } else if (parts[1] == "cont") {
      f.type = FieldType::kContinuous;
    } else {
      return Status::Invalid("bad field kind '" + parts[1] +
                             "' in --libsvm-fields (want cat or cont)");
    }
    char* end = nullptr;
    f.begin = std::strtoull(parts[2].c_str(), &end, 10);
    if (end == nullptr || *end != '\0') {
      return Status::Invalid("bad begin index in '" + entry + "'");
    }
    f.end = std::strtoull(parts[3].c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || f.end <= f.begin) {
      return Status::Invalid("bad end index in '" + entry + "'");
    }
    fields.push_back(std::move(f));
  }
  if (fields.empty()) {
    return Status::Invalid("--source=libsvm needs --libsvm-fields");
  }
  return fields;
}

Status Run(const FlagParser& flags) {
  const std::string out_dir = flags.GetString("out");
  if (out_dir.empty()) return Status::Invalid("--out is required");
  // Create the output directory if needed (one level; parents must exist).
  if (::mkdir(out_dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IoError("cannot create output directory '" + out_dir +
                           "'");
  }

  StreamEncodeOptions options;
  options.encoder.cat_min_count =
      static_cast<size_t>(flags.GetInt("cat-min-count"));
  options.encoder.cross_min_count =
      static_cast<size_t>(flags.GetInt("cross-min-count"));
  options.fit_fraction = flags.GetDouble("fit-fraction");
  options.build_cross = flags.GetBool("build-cross");
  options.rows_per_shard =
      static_cast<size_t>(flags.GetInt("rows-per-shard"));
  options.hashed = flags.GetBool("hashed");
  options.hash_hot_values = static_cast<size_t>(flags.GetInt("hash-hot"));
  options.hash_buckets = static_cast<size_t>(flags.GetInt("hash-buckets"));
  options.encoder.freq_stats_topk =
      static_cast<size_t>(flags.GetInt("freq-topk"));

  const std::string source = flags.GetString("source");
  Stopwatch timer;
  StreamEncodeStats stats;
  if (source == "synth") {
    OPTINTER_ASSIGN_OR_RETURN(SynthConfig config,
                              GetProfile(flags.GetString("profile")));
    ScaleRows(&config, flags.GetDouble("rows-scale"));
    LOG_INFO() << "generating " << config.num_rows << " rows of profile '"
               << flags.GetString("profile") << "' (streamed)";
    SynthRowSource rows(config);
    OPTINTER_ASSIGN_OR_RETURN(
        stats, StreamEncodeToShards(&rows, out_dir, options));
  } else if (source == "csv") {
    CsvOptions csv;
    csv.label_column = flags.GetString("label-column");
    const std::string delim = flags.GetString("delimiter");
    if (delim.size() != 1) {
      return Status::Invalid("--delimiter must be a single character");
    }
    csv.delimiter = delim[0];
    OPTINTER_ASSIGN_OR_RETURN(
        const DatasetSchema schema,
        CsvSchema(flags.GetString("cat-cols"), flags.GetString("cont-cols")));
    OPTINTER_ASSIGN_OR_RETURN(
        const RawDataset raw,
        LoadCsvDataset(flags.GetString("path"), schema, csv));
    MaterializedRowSource rows(&raw);
    OPTINTER_ASSIGN_OR_RETURN(
        stats, StreamEncodeToShards(&rows, out_dir, options));
  } else if (source == "libsvm") {
    OPTINTER_ASSIGN_OR_RETURN(
        const std::vector<LibsvmFieldSpec> fields,
        ParseLibsvmFields(flags.GetString("libsvm-fields")));
    OPTINTER_ASSIGN_OR_RETURN(
        const RawDataset raw,
        LoadLibsvmDataset(flags.GetString("path"), fields));
    MaterializedRowSource rows(&raw);
    OPTINTER_ASSIGN_OR_RETURN(
        stats, StreamEncodeToShards(&rows, out_dir, options));
  } else {
    return Status::Invalid("unknown --source '" + source +
                           "' (want synth, csv, or libsvm)");
  }

  LOG_INFO() << "encoded " << stats.rows << " rows (" << stats.fit_rows
             << " fit rows) into '" << out_dir << "' in "
             << timer.Elapsed() << "s";
  if (options.hashed) {
    LOG_INFO() << "hash encoder: " << stats.cat_hash.hashed_rows
               << " bucketed cat values, " << stats.cat_hash.hot_rows
               << " hot, " << stats.cat_hash.collision_rows
               << " collisions; cross: " << stats.cross_hash.hashed_rows
               << " bucketed, " << stats.cross_hash.collision_rows
               << " collisions";
  }
  return Status::OK();
}

}  // namespace
}  // namespace optinter

int main(int argc, char** argv) {
  using namespace optinter;
  FlagParser flags;
  flags.AddString("out", "", "output shard directory (required)");
  flags.AddString("source", "synth", "input kind: synth, csv, or libsvm");
  flags.AddString("profile", "criteo_like",
                  "synth: profile name (see synth/profiles.h)");
  flags.AddDouble("rows-scale", 1.0, "synth: row-count multiplier");
  flags.AddString("path", "", "csv/libsvm: input file path");
  flags.AddString("cat-cols", "", "csv: comma-separated categorical columns");
  flags.AddString("cont-cols", "", "csv: comma-separated continuous columns");
  flags.AddString("label-column", "label", "csv: label column name");
  flags.AddString("delimiter", ",", "csv: field delimiter");
  flags.AddString("libsvm-fields", "",
                  "libsvm: name:cat|cont:begin:end, comma-separated");
  flags.AddDouble("fit-fraction", 0.7,
                  "prefix fraction used to fit vocabularies");
  flags.AddBool("build-cross", false,
                "also fit + materialize cross-product features");
  flags.AddInt("rows-per-shard", 1 << 17, "rows per shard file");
  flags.AddInt("cat-min-count", 4, "min count for a categorical value");
  flags.AddInt("cross-min-count", 10, "min count for a cross value");
  flags.AddBool("hashed", false,
                "frequency-capped hash encoding for unbounded vocabularies");
  flags.AddInt("hash-hot", 1024, "hashed: dedicated hot ids per field");
  flags.AddInt("hash-buckets", 1 << 16, "hashed: shared tail buckets");
  flags.AddInt("freq-topk", 128,
               "per-field hot ids recorded in the manifest for tiered "
               "embedding backends (0 disables)");
  const Status flag_status = flags.Parse(argc, argv);
  if (!flag_status.ok()) {
    // --help surfaces as FailedPrecondition after printing usage.
    if (flag_status.code() == StatusCode::kFailedPrecondition) return 0;
    std::fprintf(stderr, "%s\n", flag_status.ToString().c_str());
    return 2;
  }
  const Status status = Run(flags);
  if (!status.ok()) {
    std::fprintf(stderr, "encode_dataset: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
