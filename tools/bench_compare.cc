// bench_compare: regression gate over two bench-report JSON files.
//
//   bench_compare --baseline=BENCH_kernels.json --baseline_section=after
//                 --current=bench_now.json --metrics=gflops --threshold=0.10
//
// Loads a baseline and a current report, extracts a common (benchmark,
// metric) -> value table from each, and fails when any shared metric got
// worse by more than the allowed relative threshold. Three report shapes
// are auto-detected:
//
//   1. google-benchmark JSON (micro_kernels --report / --benchmark_out):
//      the "benchmarks" array; FLOPS/BYTES/items_per_second counters are
//      normalized to gflops / gbytes_per_s / mitems_per_s, and cpu_time
//      is kept as a lower-is-better metric.
//   2. Committed section files (BENCH_kernels.json): named sections each
//      carrying a "results" object of {benchmark: {metric: number}};
//      select with --baseline_section / --current_section (default:
//      "after" when present, else the first section with results).
//   3. RunReport output (bench_serve_qps --report etc.): the "results"
//      section, rows either objects of numbers or keyed row objects.
//
// Direction is inferred per metric: names mentioning time / latency /
// seconds / loss count as lower-is-better, everything else (throughput)
// as higher-is-better. Thresholds are relative ("0.10" = tolerate a 10%
// regression); --metric_thresholds=gflops=0.15,cpu_time=0.3 overrides
// per metric. A machine-readable verdict can be written with --output.
//
// Metrics present only in the current report (a freshly added bench or
// counter the committed baseline predates) are reported as "new" —
// informational, never a failure — so new coverage shows up in the gate
// output instead of being silently skipped.
//
// Exit codes: 0 = pass, 1 = regression detected, 2 = usage / IO error.

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/flags.h"
#include "obs/json.h"

using optinter::FlagParser;
using optinter::obs::JsonValue;

namespace {

// (benchmark name, metric name) -> value.
using MetricTable = std::map<std::string, std::map<std::string, double>>;

std::string ToLower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

bool LowerIsBetter(const std::string& metric) {
  const std::string m = ToLower(metric);
  for (const char* marker :
       {"time", "latency", "seconds", "loss", "_ns", "_us", "_ms",
        "dropped", "rejected"}) {
    if (m.find(marker) != std::string::npos) return true;
  }
  return false;
}

bool ReadFile(const std::string& path, std::string* out, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open " + path;
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

// Shape 1: google-benchmark JSON.
bool ExtractGoogleBenchmark(const JsonValue& doc, MetricTable* table) {
  const JsonValue* benches = doc.Find("benchmarks");
  if (benches == nullptr || benches->type() != JsonValue::Type::kArray) {
    return false;
  }
  for (size_t i = 0; i < benches->size(); ++i) {
    const JsonValue& b = benches->at(i);
    const JsonValue* name = b.Find("name");
    if (name == nullptr) continue;
    const JsonValue* run_type = b.Find("run_type");
    if (run_type != nullptr && run_type->string_value() == "aggregate") {
      continue;  // medians/stddev rows would double-count the raw runs
    }
    std::map<std::string, double>& row = (*table)[name->string_value()];
    if (const JsonValue* v = b.Find("FLOPS"); v != nullptr && v->is_number()) {
      row["gflops"] = v->number() / 1e9;
    }
    if (const JsonValue* v = b.Find("BYTES"); v != nullptr && v->is_number()) {
      row["gbytes_per_s"] = v->number() / 1e9;
    }
    if (const JsonValue* v = b.Find("items_per_second");
        v != nullptr && v->is_number()) {
      row["mitems_per_s"] = v->number() / 1e6;
    }
    if (const JsonValue* v = b.Find("cpu_time");
        v != nullptr && v->is_number()) {
      row["cpu_time"] = v->number();
    }
  }
  return !table->empty();
}

void ExtractNumberRow(const JsonValue& row_obj,
                      std::map<std::string, double>* row) {
  for (const auto& [metric, value] : row_obj.members()) {
    if (value.is_number()) (*row)[metric] = value.number();
  }
}

// A "results" object: {benchmark: {metric: number}}. Also tolerates rows
// that are arrays of keyed row objects (RunReport table sections).
bool ExtractResultsObject(const JsonValue& results, MetricTable* table) {
  if (results.type() != JsonValue::Type::kObject) return false;
  for (const auto& [name, row] : results.members()) {
    if (row.type() == JsonValue::Type::kObject) {
      std::map<std::string, double> values;
      ExtractNumberRow(row, &values);
      if (!values.empty()) (*table)[name] = std::move(values);
    } else if (row.type() == JsonValue::Type::kArray) {
      for (size_t i = 0; i < row.size(); ++i) {
        const JsonValue& entry = row.at(i);
        if (entry.type() != JsonValue::Type::kObject) continue;
        std::string key = name + "/" + std::to_string(i);
        for (const char* id : {"model", "name", "section"}) {
          if (const JsonValue* v = entry.Find(id);
              v != nullptr && v->type() == JsonValue::Type::kString) {
            key = name + "/" + v->string_value();
            break;
          }
        }
        std::map<std::string, double> values;
        ExtractNumberRow(entry, &values);
        if (!values.empty()) (*table)[key] = std::move(values);
      }
    }
  }
  return !table->empty();
}

// Shapes 2 and 3: a section (or the document root) carrying "results".
bool ExtractSectioned(const JsonValue& doc, const std::string& section,
                      MetricTable* table, std::string* error) {
  const JsonValue* node = &doc;
  if (!section.empty()) {
    node = doc.Find(section);
    if (node == nullptr) {
      *error = "section '" + section + "' not found";
      return false;
    }
  } else if (doc.Find("results") == nullptr) {
    // No section requested and no top-level results: prefer "after", else
    // the first member that carries a results object.
    if (const JsonValue* after = doc.Find("after");
        after != nullptr && after->Find("results") != nullptr) {
      node = after;
    } else {
      for (const auto& [key, value] : doc.members()) {
        if (value.Find("results") != nullptr) {
          node = &value;
          break;
        }
      }
    }
  }
  const JsonValue* results = node->Find("results");
  if (results == nullptr) results = node;  // bare {benchmark: {...}} maps
  if (!ExtractResultsObject(*results, table)) {
    *error = "no numeric results found";
    return false;
  }
  return true;
}

bool LoadTable(const std::string& path, const std::string& section,
               MetricTable* table, std::string* error) {
  std::string text;
  if (!ReadFile(path, &text, error)) return false;
  JsonValue doc;
  if (!JsonValue::Parse(text, &doc, error)) {
    *error = path + ": " + *error;
    return false;
  }
  if (section.empty() && ExtractGoogleBenchmark(doc, table)) return true;
  if (!ExtractSectioned(doc, section, table, error)) {
    *error = path + ": " + *error;
    return false;
  }
  return true;
}

std::set<std::string> SplitList(const std::string& csv) {
  std::set<std::string> out;
  std::string item;
  std::istringstream ss(csv);
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.insert(item);
  }
  return out;
}

bool ParseThresholdOverrides(const std::string& spec,
                             std::map<std::string, double>* out,
                             std::string* error) {
  std::string item;
  std::istringstream ss(spec);
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    const size_t eq = item.find('=');
    if (eq == std::string::npos) {
      *error = "bad --metric_thresholds entry '" + item + "' (want k=v)";
      return false;
    }
    try {
      (*out)[item.substr(0, eq)] = std::stod(item.substr(eq + 1));
    } catch (...) {
      *error = "bad threshold value in '" + item + "'";
      return false;
    }
  }
  return true;
}

struct Comparison {
  std::string benchmark;
  std::string metric;
  double baseline = 0.0;
  double current = 0.0;
  double change = 0.0;  // signed relative change, + = higher than baseline
  double threshold = 0.0;
  bool lower_is_better = false;
  bool regression = false;
};

/// A (benchmark, metric) present in the current report but absent from
/// the baseline — a freshly added bench or counter. Reported
/// informationally (never a regression) so new coverage is visible in the
/// gate's output instead of silently skipped; commit an updated baseline
/// to start gating it.
struct NewMetric {
  std::string benchmark;
  std::string metric;
  double current = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  flags.AddString("baseline", "", "baseline report JSON (required)");
  flags.AddString("current", "", "current report JSON (required)");
  flags.AddString("baseline_section", "",
                  "section of the baseline file to compare (auto-detect "
                  "when empty)");
  flags.AddString("current_section", "",
                  "section of the current file to compare (auto-detect "
                  "when empty)");
  flags.AddString("metrics", "",
                  "comma-separated metrics to gate on (empty = all shared "
                  "metrics)");
  flags.AddDouble("threshold", 0.10,
                  "allowed relative regression (0.10 = 10%)");
  flags.AddString("metric_thresholds", "",
                  "per-metric overrides, e.g. gflops=0.15,cpu_time=0.3");
  flags.AddString("output", "", "write the JSON verdict here");
  if (optinter::Status st = flags.Parse(argc, argv); !st.ok()) {
    if (st.message() == "help requested") return 0;
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 2;
  }
  const std::string baseline_path = flags.GetString("baseline");
  const std::string current_path = flags.GetString("current");
  if (baseline_path.empty() || current_path.empty()) {
    std::fprintf(stderr, "--baseline and --current are required\n%s",
                 flags.Usage("bench_compare").c_str());
    return 2;
  }

  std::string error;
  MetricTable baseline, current;
  if (!LoadTable(baseline_path, flags.GetString("baseline_section"),
                 &baseline, &error) ||
      !LoadTable(current_path, flags.GetString("current_section"), &current,
                 &error)) {
    std::fprintf(stderr, "bench_compare: %s\n", error.c_str());
    return 2;
  }

  const std::set<std::string> wanted = SplitList(flags.GetString("metrics"));
  const double default_threshold = flags.GetDouble("threshold");
  std::map<std::string, double> thresholds;
  if (!ParseThresholdOverrides(flags.GetString("metric_thresholds"),
                               &thresholds, &error)) {
    std::fprintf(stderr, "bench_compare: %s\n", error.c_str());
    return 2;
  }

  std::vector<Comparison> comparisons;
  size_t regressions = 0;
  for (const auto& [name, base_row] : baseline) {
    const auto cur_it = current.find(name);
    if (cur_it == current.end()) continue;
    for (const auto& [metric, base_value] : base_row) {
      if (!wanted.empty() && wanted.count(metric) == 0) continue;
      const auto metric_it = cur_it->second.find(metric);
      if (metric_it == cur_it->second.end()) continue;
      Comparison c;
      c.benchmark = name;
      c.metric = metric;
      c.baseline = base_value;
      c.current = metric_it->second;
      c.lower_is_better = LowerIsBetter(metric);
      const auto t = thresholds.find(metric);
      c.threshold = t != thresholds.end() ? t->second : default_threshold;
      if (base_value != 0.0) {
        c.change = (c.current - c.baseline) / std::fabs(c.baseline);
        const double worse = c.lower_is_better ? c.change : -c.change;
        c.regression = worse > c.threshold;
      } else {
        // Zero baseline: only flag when a lower-is-better metric became
        // nonzero (e.g. rejected requests appearing).
        c.change = 0.0;
        c.regression = c.lower_is_better && c.current > 0.0;
      }
      if (c.regression) ++regressions;
      comparisons.push_back(std::move(c));
    }
  }

  // Metrics only the current report has: new benches/counters that the
  // committed baseline predates.
  std::vector<NewMetric> fresh;
  for (const auto& [name, cur_row] : current) {
    const auto base_it = baseline.find(name);
    for (const auto& [metric, value] : cur_row) {
      if (!wanted.empty() && wanted.count(metric) == 0) continue;
      if (base_it != baseline.end() &&
          base_it->second.count(metric) != 0) {
        continue;
      }
      fresh.push_back({name, metric, value});
    }
  }

  if (comparisons.empty() && fresh.empty()) {
    std::fprintf(stderr,
                 "bench_compare: no overlapping (benchmark, metric) pairs "
                 "between %s and %s\n",
                 baseline_path.c_str(), current_path.c_str());
    return 2;
  }

  std::sort(comparisons.begin(), comparisons.end(),
            [](const Comparison& a, const Comparison& b) {
              if (a.regression != b.regression) return a.regression;
              return a.benchmark < b.benchmark;
            });
  for (const Comparison& c : comparisons) {
    std::printf("%-8s %-40s %-14s %12.4g -> %12.4g  %+7.1f%% (limit %s%.0f%%)\n",
                c.regression ? "REGRESS" : "ok", c.benchmark.c_str(),
                c.metric.c_str(), c.baseline, c.current, c.change * 100.0,
                c.lower_is_better ? "+" : "-", c.threshold * 100.0);
  }
  for (const NewMetric& n : fresh) {
    std::printf("%-8s %-40s %-14s %12s -> %12.4g  (no baseline; "
                "informational)\n",
                "new", n.benchmark.c_str(), n.metric.c_str(), "-",
                n.current);
  }
  std::printf("%zu comparison(s), %zu regression(s), %zu new metric(s)\n",
              comparisons.size(), regressions, fresh.size());

  const std::string output_path = flags.GetString("output");
  if (!output_path.empty()) {
    JsonValue verdict = JsonValue::MakeObject();
    verdict.Set("status",
                JsonValue::Str(regressions > 0 ? "regression" : "pass"));
    verdict.Set("baseline", JsonValue::Str(baseline_path));
    verdict.Set("current", JsonValue::Str(current_path));
    verdict.Set("comparisons", JsonValue::Uint(comparisons.size()));
    verdict.Set("regressions", JsonValue::Uint(regressions));
    verdict.Set("new_metrics", JsonValue::Uint(fresh.size()));
    JsonValue rows = JsonValue::MakeArray();
    for (const Comparison& c : comparisons) {
      JsonValue row = JsonValue::MakeObject();
      row.Set("benchmark", JsonValue::Str(c.benchmark));
      row.Set("metric", JsonValue::Str(c.metric));
      row.Set("baseline", JsonValue::Double(c.baseline));
      row.Set("current", JsonValue::Double(c.current));
      row.Set("relative_change", JsonValue::Double(c.change));
      row.Set("threshold", JsonValue::Double(c.threshold));
      row.Set("lower_is_better", JsonValue::Bool(c.lower_is_better));
      row.Set("regression", JsonValue::Bool(c.regression));
      row.Set("new", JsonValue::Bool(false));
      rows.Push(std::move(row));
    }
    for (const NewMetric& n : fresh) {
      JsonValue row = JsonValue::MakeObject();
      row.Set("benchmark", JsonValue::Str(n.benchmark));
      row.Set("metric", JsonValue::Str(n.metric));
      row.Set("current", JsonValue::Double(n.current));
      row.Set("new", JsonValue::Bool(true));
      row.Set("regression", JsonValue::Bool(false));
      rows.Push(std::move(row));
    }
    verdict.Set("results", std::move(rows));
    std::ofstream out(output_path);
    if (!out) {
      std::fprintf(stderr, "bench_compare: cannot write %s\n",
                   output_path.c_str());
      return 2;
    }
    out << verdict.Serialize(/*indent=*/2) << "\n";
  }

  return regressions > 0 ? 1 : 0;
}
