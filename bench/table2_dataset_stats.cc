// Table II reproduction: dataset statistics for the four synthetic
// profiles standing in for Criteo / Avazu / iPinYou / Private.
//
// Columns mirror the paper: #samples, #cont, #cate, #cross, #orig value,
// #cross value, pos ratio.

#include <cstdio>

#include "bench_util.h"

using namespace optinter;
using namespace optinter::bench;

int main(int argc, char** argv) {
  FlagParser flags;
  AddCommonFlags(&flags);
  int exit_code = 0;
  if (!ParseOrExit(&flags, argc, argv, &exit_code)) return exit_code;

  PrintHeader("Table II analogue: dataset statistics (synthetic profiles)");
  std::printf("%-14s %9s %6s %6s %7s %12s %13s %9s\n", "Dataset",
              "#samples", "#cont", "#cate", "#cross", "#orig value",
              "#cross value", "pos ratio");
  for (const auto& name : DatasetList(flags, PaperProfileNames())) {
    PrepareOptions opts;
    opts.rows_scale = flags.GetDouble("rows_scale");
    auto prepared = PrepareProfile(name, opts);
    if (!prepared.ok()) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(),
                   prepared.status().ToString().c_str());
      return 1;
    }
    const EncodedDataset& d = prepared->data;
    std::printf("%-14s %9zu %6zu %6zu %7zu %12zu %13zu %9.4f\n",
                name.c_str(), d.num_rows, d.num_continuous(),
                d.num_categorical(), d.num_pairs(), d.TotalOrigVocab(),
                d.TotalCrossVocab(), d.PositiveRatio());
  }
  std::printf(
      "\nNote: profiles are scaled-down synthetic analogues of the paper's\n"
      "datasets (see DESIGN.md); shapes (continuous/categorical mix, the\n"
      "Avazu Device_ID-like giant field, pos-ratio ordering) are "
      "preserved.\n");
  return 0;
}
