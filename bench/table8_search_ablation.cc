// Table VIII reproduction: ablation of the search algorithm — randomly
// generated architectures vs bi-level optimization (DARTS-style
// alternation of Θ and α) vs OptInter's joint one-level search
// (paper §III-E). Each searched architecture is re-trained from scratch
// before evaluation.
//
// Note on the paper's "Bi-level … Out of Memory" entry for Avazu: the
// bi-level variant needs roughly 2× accelerator memory; our CPU substrate
// has no such cliff, so the row is simply reported.

#include <cstdio>

#include "bench_util.h"
#include "core/pipeline.h"
#include "metrics/metrics.h"

using namespace optinter;
using namespace optinter::bench;

int main(int argc, char** argv) {
  FlagParser flags;
  AddCommonFlags(&flags);
  flags.AddInt("random_archs", 3,
               "number of random architectures to average (paper: 10)");
  int exit_code = 0;
  if (!ParseOrExit(&flags, argc, argv, &exit_code)) return exit_code;
  BenchReport report("table8_search_ablation", flags);

  for (const auto& name : DatasetList(
           flags, {"criteo_like", "avazu_like", "ipinyou_like"})) {
    PrepareOptions popts;
    popts.rows_scale = flags.GetDouble("rows_scale");
    auto prepared = PrepareProfile(name, popts);
    if (!prepared.ok()) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(),
                   prepared.status().ToString().c_str());
      return 1;
    }
    const PreparedDataset& p = *prepared;
    HyperParams hp = DefaultHyperParams(name);
    ApplyOverrides(flags, &hp);
    TrainOptions topts = MakeTrainOptions(flags, hp);

    report.Section("Table VIII analogue: " + name);

    // Random search: mean over randomly generated architectures.
    {
      const size_t n = static_cast<size_t>(flags.GetInt("random_archs"));
      Rng rng(hp.seed ^ 0xabcdULL);
      std::vector<double> aucs, loglosses;
      double params = 0.0;
      for (size_t t = 0; t < n; ++t) {
        Architecture arch = RandomArchitecture(p.data.num_pairs(), &rng);
        FixedArchRun run =
            TrainFixedArch(p.data, p.splits, arch, hp, topts, "Random");
        aucs.push_back(run.summary.final_test.auc);
        loglosses.push_back(run.summary.final_test.logloss);
        params += static_cast<double>(run.param_count);
      }
      report.AddRow("Random", Mean(aucs), Mean(loglosses),
                    static_cast<size_t>(params / n),
                    StrFormat("mean of %zu random archs", n));
    }

    // Bi-level and joint (OptInter) searches.
    for (const UpdateMode mode :
         {UpdateMode::kBilevel, UpdateMode::kJoint}) {
      SearchOptions sopts;
      sopts.search_epochs = hp.search_epochs;
      sopts.mode = mode;
      sopts.verbose = flags.GetBool("verbose");
      OptInterResult r = RunOptInter(p.data, p.splits, hp, sopts, topts);
      report.AddRow(
          mode == UpdateMode::kBilevel ? "Bi-level" : "OptInter",
          r.retrain.final_test.auc, r.retrain.final_test.logloss,
          r.param_count, r.retrain.telemetry,
          StrFormat("arch=%s",
                    ArchCountsToString(CountArchitecture(r.search.arch))
                        .c_str()));
      report.AnnotateLastRow(
          "search_dynamics", obs::SearchDynamicsToJson(r.search.dynamics));
    }
  }
  return report.Finish();
}
