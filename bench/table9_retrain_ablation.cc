// Table IX reproduction: ablation of the re-train stage (paper §III-F).
// "w." re-trains a fresh model with the searched architecture frozen
// (Algorithm 2); "w.o." evaluates the search-stage model directly, whose
// weights were trained under the mixed (Gumbel-softmax weighted)
// architecture. Re-training should win clearly.

#include <cstdio>

#include "bench_util.h"
#include "core/pipeline.h"

using namespace optinter;
using namespace optinter::bench;

int main(int argc, char** argv) {
  FlagParser flags;
  AddCommonFlags(&flags);
  int exit_code = 0;
  if (!ParseOrExit(&flags, argc, argv, &exit_code)) return exit_code;
  BenchReport report("table9_retrain_ablation", flags);

  for (const auto& name :
       DatasetList(flags, {"criteo_like", "avazu_like"})) {
    PrepareOptions popts;
    popts.rows_scale = flags.GetDouble("rows_scale");
    auto prepared = PrepareProfile(name, popts);
    if (!prepared.ok()) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(),
                   prepared.status().ToString().c_str());
      return 1;
    }
    const PreparedDataset& p = *prepared;
    HyperParams hp = DefaultHyperParams(name);
    ApplyOverrides(flags, &hp);
    TrainOptions topts = MakeTrainOptions(flags, hp);

    SearchOptions sopts;
    sopts.search_epochs = hp.search_epochs;
    sopts.verbose = flags.GetBool("verbose");
    OptInterResult r = RunOptInter(p.data, p.splits, hp, sopts, topts);

    report.Section("Table IX analogue: " + name);
    report.AddRow("w.  (re-trained)", r.retrain.final_test.auc,
                  r.retrain.final_test.logloss, r.param_count,
                  r.retrain.telemetry);
    report.AddRow("w.o. (search model)", r.search.search_test.auc,
                  r.search.search_test.logloss, r.param_count,
                  r.search.telemetry);
    report.AnnotateLastRow(
        "search_dynamics", obs::SearchDynamicsToJson(r.search.dynamics));
  }
  return report.Finish();
}
