// Shared plumbing for the table/figure reproduction harnesses: common
// flags, dataset preparation, and table printing.

#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/string_util.h"
#include "models/hyperparams.h"
#include "obs/run_report.h"
#include "synth/prepare.h"
#include "train/trainer.h"

namespace optinter {
namespace bench {

/// Registers the flags every experiment harness shares.
inline void AddCommonFlags(FlagParser* flags) {
  flags->AddString("datasets", "",
                   "comma-separated profile subset (default: all for this "
                   "experiment)");
  flags->AddDouble("rows_scale", 1.0,
                   "multiplier on each profile's row count");
  flags->AddInt("epochs", 0, "override training epochs (0 = profile default)");
  flags->AddInt("seed", 0, "override base seed (0 = profile default)");
  flags->AddInt("patience", -1,
                "override early-stop patience (-1 = profile default)");
  flags->AddBool("verbose", false, "per-epoch training logs");
  flags->AddString("report", "",
                   "write a JSON run report (metrics + span profile + "
                   "result rows) to this path");
}

/// Parses flags; returns false if the process should exit (help or error).
inline bool ParseOrExit(FlagParser* flags, int argc, char** argv,
                        int* exit_code) {
  Status st = flags->Parse(argc, argv);
  if (st.ok()) return true;
  *exit_code = st.code() == StatusCode::kFailedPrecondition ? 0 : 1;
  if (*exit_code != 0) std::fprintf(stderr, "%s\n", st.ToString().c_str());
  return false;
}

/// Dataset list from --datasets (or the given defaults).
inline std::vector<std::string> DatasetList(
    const FlagParser& flags, const std::vector<std::string>& defaults) {
  const std::string& arg = flags.GetString("datasets");
  if (arg.empty()) return defaults;
  std::vector<std::string> out;
  for (auto& part : Split(arg, ',')) {
    std::string name(Trim(part));
    if (!name.empty()) out.push_back(std::move(name));
  }
  return out;
}

/// Applies the common overrides to a profile's hyper-parameters.
inline void ApplyOverrides(const FlagParser& flags, HyperParams* hp) {
  if (flags.GetInt("epochs") > 0) {
    hp->epochs = static_cast<size_t>(flags.GetInt("epochs"));
  }
  if (flags.GetInt("seed") > 0) {
    hp->seed = static_cast<uint64_t>(flags.GetInt("seed"));
  }
  if (flags.GetInt("patience") >= 0) {
    hp->early_stop_patience =
        static_cast<size_t>(flags.GetInt("patience"));
  }
}

/// TrainOptions consistent with the hyper-parameters + common flags.
inline TrainOptions MakeTrainOptions(const FlagParser& flags,
                                     const HyperParams& hp) {
  TrainOptions opts;
  opts.epochs = hp.epochs;
  opts.batch_size = hp.batch_size;
  opts.seed = hp.seed;
  opts.patience = hp.early_stop_patience;
  opts.verbose = flags.GetBool("verbose");
  return opts;
}

/// Section header in the output stream.
inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// One Table-V-style row.
inline void PrintModelRow(const std::string& model, double auc,
                          double logloss, size_t params,
                          const std::string& extra = "") {
  std::printf("%-14s  AUC %.4f  logloss %.4f  params %8s  %s\n",
              model.c_str(), auc, logloss, HumanCount(params).c_str(),
              extra.c_str());
}

/// Row with training throughput from TrainTelemetry.
inline void PrintModelRowWithThroughput(const std::string& model, double auc,
                                        double logloss, size_t params,
                                        const TrainTelemetry& telemetry,
                                        const std::string& extra = "") {
  std::printf(
      "%-14s  AUC %.4f  logloss %.4f  params %8s  train %6.1fs  eval "
      "%5.1fs  %8.0f rows/s  %s\n",
      model.c_str(), auc, logloss, HumanCount(params).c_str(),
      telemetry.train_seconds_total, telemetry.eval_seconds_total,
      telemetry.train_rows_per_sec, extra.c_str());
}

/// Prints table rows like the Print* helpers above while also recording
/// them as JSON, and writes a run report when --report was given. One
/// instance per harness:
///
///   bench::BenchReport report("table5_overall", flags);
///   report.Section(profile.name);                  // PrintHeader + JSON
///   report.AddRow("LR", auc, ll, params, telemetry);
///   ...
///   return report.Finish();                        // writes --report file
class BenchReport {
 public:
  /// `run_name` names the report; the output path comes from --report
  /// (empty = print only).
  BenchReport(std::string run_name, const FlagParser& flags)
      : run_name_(std::move(run_name)), path_(flags.GetString("report")) {}

  /// Starts a titled section (a dataset/profile in the table harnesses).
  void Section(const std::string& title) {
    PrintHeader(title);
    sections_.emplace_back(title, obs::JsonValue::MakeArray());
  }

  /// Table-V-style row without timing columns.
  void AddRow(const std::string& model, double auc, double logloss,
              size_t params, const std::string& extra = "") {
    PrintModelRow(model, auc, logloss, params, extra);
    Record(model, auc, logloss, params, nullptr, extra);
  }

  /// Row with train/eval timing from TrainTelemetry.
  void AddRow(const std::string& model, double auc, double logloss,
              size_t params, const TrainTelemetry& telemetry,
              const std::string& extra = "") {
    PrintModelRowWithThroughput(model, auc, logloss, params, telemetry,
                                extra);
    Record(model, auc, logloss, params, &telemetry, extra);
  }

  /// Attaches an arbitrary JSON value to the current section's last row
  /// (e.g. search dynamics for the row's search stage). No-op when no row
  /// exists yet.
  void AnnotateLastRow(const std::string& key, obs::JsonValue v) {
    if (sections_.empty() || sections_.back().second.size() == 0) return;
    obs::JsonValue& rows = sections_.back().second;
    rows.at(rows.size() - 1).Set(key, std::move(v));
  }

  /// Writes the report when --report was given. Returns the process exit
  /// code (non-zero on report IO failure).
  int Finish() {
    if (path_.empty()) return 0;
    obs::RunReport report(run_name_);
    obs::JsonValue results = obs::JsonValue::MakeObject();
    for (auto& [title, rows] : sections_) {
      results.Set(title, std::move(rows));
    }
    report.AddSection("results", std::move(results));
    report.CaptureMetrics();
    report.CaptureSpans();
    std::string error;
    if (!report.WriteFile(path_, &error)) {
      std::fprintf(stderr, "failed to write report %s: %s\n", path_.c_str(),
                   error.c_str());
      return 1;
    }
    std::printf("\nrun report written to %s\n", path_.c_str());
    return 0;
  }

 private:
  void Record(const std::string& model, double auc, double logloss,
              size_t params, const TrainTelemetry* telemetry,
              const std::string& extra) {
    if (sections_.empty()) {
      sections_.emplace_back("results", obs::JsonValue::MakeArray());
    }
    obs::JsonValue row = obs::JsonValue::MakeObject();
    row.Set("model", obs::JsonValue::Str(model));
    row.Set("auc", obs::JsonValue::Double(auc));
    row.Set("logloss", obs::JsonValue::Double(logloss));
    row.Set("params", obs::JsonValue::Uint(params));
    if (telemetry != nullptr) {
      row.Set("telemetry", TelemetryToJson(*telemetry));
    }
    if (!extra.empty()) row.Set("extra", obs::JsonValue::Str(extra));
    sections_.back().second.Push(std::move(row));
  }

  std::string run_name_;
  std::string path_;
  std::vector<std::pair<std::string, obs::JsonValue>> sections_;
};

}  // namespace bench
}  // namespace optinter
