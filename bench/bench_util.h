// Shared plumbing for the table/figure reproduction harnesses: common
// flags, dataset preparation, and table printing.

#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/string_util.h"
#include "models/hyperparams.h"
#include "synth/prepare.h"
#include "train/trainer.h"

namespace optinter {
namespace bench {

/// Registers the flags every experiment harness shares.
inline void AddCommonFlags(FlagParser* flags) {
  flags->AddString("datasets", "",
                   "comma-separated profile subset (default: all for this "
                   "experiment)");
  flags->AddDouble("rows_scale", 1.0,
                   "multiplier on each profile's row count");
  flags->AddInt("epochs", 0, "override training epochs (0 = profile default)");
  flags->AddInt("seed", 0, "override base seed (0 = profile default)");
  flags->AddInt("patience", -1,
                "override early-stop patience (-1 = profile default)");
  flags->AddBool("verbose", false, "per-epoch training logs");
}

/// Parses flags; returns false if the process should exit (help or error).
inline bool ParseOrExit(FlagParser* flags, int argc, char** argv,
                        int* exit_code) {
  Status st = flags->Parse(argc, argv);
  if (st.ok()) return true;
  *exit_code = st.code() == StatusCode::kFailedPrecondition ? 0 : 1;
  if (*exit_code != 0) std::fprintf(stderr, "%s\n", st.ToString().c_str());
  return false;
}

/// Dataset list from --datasets (or the given defaults).
inline std::vector<std::string> DatasetList(
    const FlagParser& flags, const std::vector<std::string>& defaults) {
  const std::string& arg = flags.GetString("datasets");
  if (arg.empty()) return defaults;
  std::vector<std::string> out;
  for (auto& part : Split(arg, ',')) {
    std::string name(Trim(part));
    if (!name.empty()) out.push_back(std::move(name));
  }
  return out;
}

/// Applies the common overrides to a profile's hyper-parameters.
inline void ApplyOverrides(const FlagParser& flags, HyperParams* hp) {
  if (flags.GetInt("epochs") > 0) {
    hp->epochs = static_cast<size_t>(flags.GetInt("epochs"));
  }
  if (flags.GetInt("seed") > 0) {
    hp->seed = static_cast<uint64_t>(flags.GetInt("seed"));
  }
  if (flags.GetInt("patience") >= 0) {
    hp->early_stop_patience =
        static_cast<size_t>(flags.GetInt("patience"));
  }
}

/// TrainOptions consistent with the hyper-parameters + common flags.
inline TrainOptions MakeTrainOptions(const FlagParser& flags,
                                     const HyperParams& hp) {
  TrainOptions opts;
  opts.epochs = hp.epochs;
  opts.batch_size = hp.batch_size;
  opts.seed = hp.seed;
  opts.patience = hp.early_stop_patience;
  opts.verbose = flags.GetBool("verbose");
  return opts;
}

/// Section header in the output stream.
inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// One Table-V-style row.
inline void PrintModelRow(const std::string& model, double auc,
                          double logloss, size_t params,
                          const std::string& extra = "") {
  std::printf("%-14s  AUC %.4f  logloss %.4f  params %8s  %s\n",
              model.c_str(), auc, logloss, HumanCount(params).c_str(),
              extra.c_str());
}

/// Row with training throughput from TrainTelemetry.
inline void PrintModelRowWithThroughput(const std::string& model, double auc,
                                        double logloss, size_t params,
                                        const TrainTelemetry& telemetry,
                                        const std::string& extra = "") {
  std::printf(
      "%-14s  AUC %.4f  logloss %.4f  params %8s  train %6.1fs  eval "
      "%5.1fs  %8.0f rows/s  %s\n",
      model.c_str(), auc, logloss, HumanCount(params).c_str(),
      telemetry.train_seconds_total, telemetry.eval_seconds_total,
      telemetry.train_rows_per_sec, extra.c_str());
}

}  // namespace bench
}  // namespace optinter
