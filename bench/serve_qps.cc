// Serving latency/throughput harness: trains a small model, deploys it
// behind PredictServer, and drives concurrent clients against the
// micro-batcher (Submit) and the fused batch-1 path (PredictNow) while a
// background thread hot-swaps checkpoints. Reports p50/p99 latency and
// QPS from the serve.* histograms, plus flush/batch-size stats, and
// writes them as a JSON run report with --report=PATH.
//
// NOTE: inside a single-core container the clients, the flusher, and the
// kernel thread pool all share one core, so absolute QPS here is a smoke
// number, not a capacity figure — see EXPERIMENTS.md.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/fixed_arch_model.h"
#include "io/serialize.h"
#include "models/interaction.h"
#include "obs/registry.h"
#include "obs/run_report.h"
#include "serve/request.h"
#include "serve/server.h"

using namespace optinter;
using namespace optinter::bench;

namespace {

// Mixed assignment so the serving path exercises memorized, factorized
// and naive pairs at once (same shape the concurrency tests use).
Architecture MixedArch(size_t num_pairs) {
  Architecture arch(num_pairs, InterMethod::kNaive);
  if (num_pairs > 0) arch[0] = InterMethod::kMemorize;
  if (num_pairs > 1) arch[1] = InterMethod::kFactorize;
  return arch;
}

struct ServeSnapshotStats {
  uint64_t requests = 0;
  uint64_t rejected = 0;
  uint64_t flushes = 0;
  uint64_t swaps = 0;
};

ServeSnapshotStats ReadServeCounters() {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  ServeSnapshotStats s;
  s.requests = reg.GetCounter("serve.requests")->Value();
  s.rejected = reg.GetCounter("serve.rejected")->Value();
  s.flushes = reg.GetCounter("serve.flushes")->Value();
  s.swaps = reg.GetCounter("serve.swaps")->Value();
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  AddCommonFlags(&flags);
  flags.AddDouble("seconds", 3.0, "serving load duration per dataset");
  flags.AddInt("clients", 4, "concurrent client threads");
  flags.AddInt("max_batch", 64, "micro-batcher flush size");
  flags.AddInt("deadline_us", 200, "micro-batcher flush deadline");
  flags.AddInt("swap_every_ms", 250,
               "hot-swap interval during load (0 = no swapping)");
  flags.AddInt("train_steps", 30, "warm-up training steps per checkpoint");
  flags.AddInt("metrics_port", -1,
               "serve /metrics over HTTP during the run (-1 = off, "
               "0 = ephemeral, >0 = that port on loopback)");
  int exit_code = 0;
  if (!ParseOrExit(&flags, argc, argv, &exit_code)) return exit_code;

  obs::RunReport run_report("serve_qps");
  obs::JsonValue results = obs::JsonValue::MakeObject();

  for (const auto& name : DatasetList(flags, {"tiny"})) {
    PrepareOptions popts;
    popts.rows_scale = flags.GetDouble("rows_scale");
    auto prepared = PrepareProfile(name, popts);
    if (!prepared.ok()) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(),
                   prepared.status().ToString().c_str());
      return 1;
    }
    const PreparedDataset& p = *prepared;
    HyperParams hp = DefaultHyperParams(name);
    ApplyOverrides(flags, &hp);
    const Architecture arch = MixedArch(p.data.num_pairs());

    // Two briefly-trained checkpoints of the same architecture: the swap
    // thread alternates between them under load.
    const std::string path_a = "bench_serve_qps_a.ckpt";
    const std::string path_b = "bench_serve_qps_b.ckpt";
    {
      FixedArchModel warm(p.data, arch, hp, "serve-warm");
      Batch b;
      b.data = &p.data;
      b.rows = p.splits.train.data();
      b.size = std::min<size_t>(hp.batch_size, p.splits.train.size());
      const int steps = flags.GetInt("train_steps");
      for (int i = 0; i < steps; ++i) warm.TrainStep(b);
      if (Status st = SaveModel(&warm, path_a); !st.ok()) {
        std::fprintf(stderr, "save: %s\n", st.ToString().c_str());
        return 1;
      }
      for (int i = 0; i < steps; ++i) warm.TrainStep(b);
      if (Status st = SaveModel(&warm, path_b); !st.ok()) {
        std::fprintf(stderr, "save: %s\n", st.ToString().c_str());
        return 1;
      }
    }
    auto factory = [&]() -> std::unique_ptr<CtrModel> {
      return std::make_unique<FixedArchModel>(p.data, arch, hp,
                                              "serve-live");
    };

    serve::ServeOptions sopts;
    sopts.max_batch = static_cast<size_t>(flags.GetInt("max_batch"));
    sopts.flush_deadline_us =
        static_cast<uint64_t>(flags.GetInt("deadline_us"));
    sopts.metrics_port = static_cast<int>(flags.GetInt("metrics_port"));
    serve::PredictServer server(p.data, sopts);
    if (server.metrics_port() >= 0) {
      std::printf("metrics exporter on http://127.0.0.1:%d/metrics\n",
                  server.metrics_port());
    }
    if (Status st = server.DeployCheckpoint(factory, path_a); !st.ok()) {
      std::fprintf(stderr, "deploy: %s\n", st.ToString().c_str());
      return 1;
    }

    // Pre-extract request templates so clients measure serving, not
    // dataset row decoding.
    const size_t n_rows = std::min<size_t>(512, p.splits.test.size());
    std::vector<serve::PredictRequest> requests;
    requests.reserve(n_rows);
    for (size_t k = 0; k < n_rows; ++k) {
      requests.push_back(serve::RequestFromRow(p.data, p.splits.test[k]));
    }

    obs::Histogram* latency = obs::MetricsRegistry::Global().GetHistogram(
        "serve.latency_us", {10, 20, 50, 100, 200, 500, 1000, 2000, 5000,
                             10000, 20000, 50000, 100000});
    latency->Reset();
    const ServeSnapshotStats before = ReadServeCounters();

    const double seconds = flags.GetDouble("seconds");
    const int n_clients =
        std::max(1, static_cast<int>(flags.GetInt("clients")));
    std::atomic<bool> stop{false};
    std::atomic<uint64_t> answered{0};
    // Half the clients use the micro-batcher, half the synchronous
    // batch-1 path, so both latency profiles land in the histogram.
    auto client = [&](int id) {
      const bool use_submit = id % 2 == 0;
      uint64_t local = 0;
      for (size_t i = static_cast<size_t>(id);
           !stop.load(std::memory_order_relaxed); ++i) {
        const serve::PredictRequest& req = requests[i % requests.size()];
        if (use_submit) {
          auto fut = server.Submit(req);
          if (fut.ok()) {
            fut->get();
            ++local;
          }
        } else {
          if (server.PredictNow(req).ok()) ++local;
        }
      }
      answered.fetch_add(local);
    };

    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> clients;
    for (int c = 0; c < n_clients; ++c) clients.emplace_back(client, c);
    const int swap_every_ms = flags.GetInt("swap_every_ms");
    uint64_t swap_failures = 0;
    int swaps = 0;
    // The harness thread doubles as the swapper.
    while (std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
               .count() < seconds) {
      if (swap_every_ms > 0) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(swap_every_ms));
        Status st = server.DeployCheckpoint(
            factory, swaps % 2 == 0 ? path_b : path_a);
        if (st.ok()) {
          ++swaps;
        } else {
          ++swap_failures;
        }
      } else {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
    }
    stop.store(true);
    for (auto& t : clients) t.join();
    server.Drain();
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();

    const ServeSnapshotStats after = ReadServeCounters();
    const uint64_t served = after.requests - before.requests;
    const uint64_t flushes = after.flushes - before.flushes;
    const double qps = static_cast<double>(served) / elapsed;
    const double p50 = latency->Quantile(0.5);
    const double p99 = latency->Quantile(0.99);

    PrintHeader("Serving QPS: " + name);
    std::printf(
        "clients %d  %.1fs  served %llu  QPS %.0f  p50 %.0fus  p99 %.0fus  "
        "flushes %llu  swaps %d  rejected %llu\n",
        n_clients, elapsed, static_cast<unsigned long long>(served), qps,
        p50, p99, static_cast<unsigned long long>(flushes), swaps,
        static_cast<unsigned long long>(after.rejected - before.rejected));
    std::printf(
        "note: single-core containers serialize clients, flusher and "
        "kernels — treat QPS as a smoke number there\n");
    if (swap_failures > 0) {
      std::fprintf(stderr, "%llu hot-swaps FAILED\n",
                   static_cast<unsigned long long>(swap_failures));
      return 1;
    }

    obs::JsonValue row = obs::JsonValue::MakeObject();
    row.Set("clients", obs::JsonValue::Int(n_clients));
    row.Set("seconds", obs::JsonValue::Double(elapsed));
    row.Set("requests", obs::JsonValue::Uint(served));
    row.Set("qps", obs::JsonValue::Double(qps));
    row.Set("latency_p50_us", obs::JsonValue::Double(p50));
    row.Set("latency_p99_us", obs::JsonValue::Double(p99));
    row.Set("flushes", obs::JsonValue::Uint(flushes));
    row.Set("swaps", obs::JsonValue::Int(swaps));
    row.Set("rejected",
            obs::JsonValue::Uint(after.rejected - before.rejected));
    results.Set(name, std::move(row));
    std::remove(path_a.c_str());
    std::remove(path_b.c_str());
  }

  const std::string report_path = flags.GetString("report");
  if (!report_path.empty()) {
    run_report.AddSection("results", std::move(results));
    run_report.CaptureMetrics();
    run_report.CaptureSpans();
    std::string error;
    if (!run_report.WriteFile(report_path, &error)) {
      std::fprintf(stderr, "failed to write report %s: %s\n",
                   report_path.c_str(), error.c_str());
      return 1;
    }
    std::printf("\nrun report written to %s\n", report_path.c_str());
  }
  return 0;
}
