// Quantized inference harness: trains a small FixedArchModel, publishes
// int8 and bf16 quantized snapshots via QuantizeSnapshot, and measures
// what quantization costs (AUC, with a paired significance test over
// disjoint test folds) and what it buys (embedding bytes/row, batch-1
// PredictNow throughput and tail latency against the fp32 fused path).
// Writes the rows as a JSON run report with --report=PATH so
// tools/bench_compare can gate regressions against BENCH_quantized.json.
//
// Assertions for CI (all off by default):
//   --assert_auc            fail when a quantized model's fold-wise AUC is
//                           significantly WORSE than fp32 (paired t-test,
//                           p < 0.05 and lower mean).
//   --assert_bytes_ratio=R  fail when fp32/int8 embedding bytes-per-row
//                           ratio falls below R (deterministic; layout).
//   --assert_speedup=S      fail when int8 batch-1 QPS / fp32 batch-1 QPS
//                           falls below S (machine-dependent; use only on
//                           hosts where the ratio is stable).
//
// NOTE: in a single-core container the caller, the flusher, and the
// kernel pool share one core, so absolute QPS is a smoke number — the
// int8-vs-fp32 RATIO is the figure of merit here (same binary, same
// host, same path; only the deployed snapshot differs).

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/logging.h"
#include "core/fixed_arch_model.h"
#include "metrics/metrics.h"
#include "metrics/significance.h"
#include "models/interaction.h"
#include "obs/registry.h"
#include "obs/run_report.h"
#include "serve/quantized_model.h"
#include "serve/request.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "tensor/dispatch.h"

using namespace optinter;
using namespace optinter::bench;

namespace {

// Mixed assignment so quantization covers memorized, factorized and naive
// pairs at once (same shape the serving tests use).
Architecture MixedArch(size_t num_pairs) {
  Architecture arch(num_pairs, InterMethod::kNaive);
  if (num_pairs > 0) arch[0] = InterMethod::kMemorize;
  if (num_pairs > 1) arch[1] = InterMethod::kFactorize;
  return arch;
}

// Batched Predict over `rows`; single-threaded caller, pooled context.
std::vector<float> EvalProbs(const CtrModel& model,
                             const EncodedDataset& data,
                             const std::vector<size_t>& rows,
                             ForwardContext* ctx) {
  std::vector<float> probs;
  probs.reserve(rows.size());
  std::vector<float> chunk_probs;
  constexpr size_t kChunk = 256;
  for (size_t at = 0; at < rows.size(); at += kChunk) {
    Batch b;
    b.data = &data;
    b.rows = rows.data() + at;
    b.size = std::min(kChunk, rows.size() - at);
    model.Predict(b, &chunk_probs, ctx);
    probs.insert(probs.end(), chunk_probs.begin(), chunk_probs.end());
  }
  return probs;
}

// Round-robin fold assignment keeps each fold's class mix close to the
// split's, so per-fold AUC is defined (needs both classes present).
// Returns per-fold AUCs for the folds where BOTH models' AUC is defined
// (same fold set for both, or the pairing would be meaningless).
void FoldAucs(const std::vector<float>& probs_a,
              const std::vector<float>& probs_b,
              const EncodedDataset& data, const std::vector<size_t>& rows,
              size_t n_folds, std::vector<double>* auc_a,
              std::vector<double>* auc_b) {
  auc_a->clear();
  auc_b->clear();
  for (size_t f = 0; f < n_folds; ++f) {
    std::vector<float> pa, pb, labels;
    size_t n_pos = 0;
    for (size_t k = f; k < rows.size(); k += n_folds) {
      pa.push_back(probs_a[k]);
      pb.push_back(probs_b[k]);
      const float y = data.label(rows[k]);
      labels.push_back(y);
      if (y > 0.5f) ++n_pos;
    }
    if (n_pos == 0 || n_pos == labels.size()) continue;  // AUC undefined
    auc_a->push_back(Auc(pa, labels));
    auc_b->push_back(Auc(pb, labels));
  }
}

struct ServeRun {
  double qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

// Single-client PredictNow loop against whatever snapshot is deployed.
ServeRun DriveBatch1(serve::PredictServer* server,
                     const std::vector<serve::PredictRequest>& requests,
                     double seconds) {
  obs::Histogram* latency = obs::MetricsRegistry::Global().GetHistogram(
      "serve.latency_us", {10, 20, 50, 100, 200, 500, 1000, 2000, 5000,
                           10000, 20000, 50000, 100000});
  // Warm caches, the batch-1 slot pool, and the dispatch table.
  for (size_t i = 0; i < 200; ++i) {
    server->PredictNow(requests[i % requests.size()]);
  }
  latency->Reset();
  uint64_t calls = 0;
  const auto start = std::chrono::steady_clock::now();
  auto elapsed = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };
  // Check the clock every 64 calls so timing overhead stays off the
  // measured path.
  while (elapsed() < seconds) {
    for (int k = 0; k < 64; ++k) {
      server->PredictNow(requests[calls % requests.size()]);
      ++calls;
    }
  }
  ServeRun run;
  run.qps = static_cast<double>(calls) / elapsed();
  run.p50_us = latency->Quantile(0.5);
  run.p99_us = latency->Quantile(0.99);
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  AddCommonFlags(&flags);
  flags.AddInt("train_steps", 300, "warm-up training steps");
  // The tiny profile's hyper-params are sized for test speed (dim 8/4,
  // MLP {16}); quantization is measured on a serving-realistic model
  // shape (criteo-like dims) unless overridden.
  flags.AddInt("embed_dim", 16, "feature embedding dim");
  flags.AddInt("cross_embed_dim", 16, "memorized-cross embedding dim");
  flags.AddString("mlp_hidden", "128,64", "comma-separated MLP widths");
  flags.AddInt("folds", 20, "disjoint test folds for the paired t-test");
  flags.AddDouble("per_model_seconds", 1.0,
                  "batch-1 load duration per deployed snapshot");
  flags.AddBool("assert_auc", false,
                "fail when a quantized AUC is significantly worse (p<0.05)");
  flags.AddDouble("assert_bytes_ratio", 0.0,
                  "fail when fp32/int8 bytes-per-row < this (0 = off)");
  flags.AddDouble("assert_speedup", 0.0,
                  "fail when int8/fp32 batch-1 QPS < this (0 = off)");
  int exit_code = 0;
  if (!ParseOrExit(&flags, argc, argv, &exit_code)) return exit_code;

  obs::RunReport run_report("quantized_serve");
  obs::JsonValue results = obs::JsonValue::MakeObject();
  bool failed = false;

  std::printf("kernel backend: %s\n", ActiveKernelBackend());

  for (const auto& name : DatasetList(flags, {"tiny"})) {
    PrepareOptions popts;
    popts.rows_scale = flags.GetDouble("rows_scale");
    auto prepared = PrepareProfile(name, popts);
    if (!prepared.ok()) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(),
                   prepared.status().ToString().c_str());
      return 1;
    }
    const PreparedDataset& p = *prepared;
    HyperParams hp = DefaultHyperParams(name);
    ApplyOverrides(flags, &hp);
    hp.embed_dim = static_cast<size_t>(flags.GetInt("embed_dim"));
    hp.cross_embed_dim =
        static_cast<size_t>(flags.GetInt("cross_embed_dim"));
    hp.mlp_hidden.clear();
    for (const auto& part : Split(flags.GetString("mlp_hidden"), ',')) {
      const std::string w(Trim(part));
      if (!w.empty()) hp.mlp_hidden.push_back(std::stoul(w));
    }
    const Architecture arch = MixedArch(p.data.num_pairs());

    auto fp32 =
        std::make_shared<FixedArchModel>(p.data, arch, hp, "quant-fp32");
    {
      Batch b;
      b.data = &p.data;
      const int steps = flags.GetInt("train_steps");
      const size_t bs = std::min<size_t>(hp.batch_size,
                                         p.splits.train.size());
      for (int i = 0; i < steps; ++i) {
        const size_t at =
            (static_cast<size_t>(i) * bs) % p.splits.train.size();
        const size_t take =
            std::min(bs, p.splits.train.size() - at);
        b.rows = p.splits.train.data() + at;
        b.size = take;
        fp32->TrainStep(b);
      }
    }
    std::shared_ptr<const CtrModel> fp32_const = fp32;

    std::shared_ptr<const CtrModel> int8_model, bf16_model;
    if (Status st = serve::QuantizeSnapshot(fp32_const, QuantMode::kInt8,
                                            &int8_model);
        !st.ok()) {
      std::fprintf(stderr, "quantize int8: %s\n", st.ToString().c_str());
      return 1;
    }
    if (Status st = serve::QuantizeSnapshot(fp32_const, QuantMode::kBf16,
                                            &bf16_model);
        !st.ok()) {
      std::fprintf(stderr, "quantize bf16: %s\n", st.ToString().c_str());
      return 1;
    }
    const auto* q8 =
        dynamic_cast<const serve::QuantizedFixedArchModel*>(int8_model.get());
    const auto* q16 =
        dynamic_cast<const serve::QuantizedFixedArchModel*>(bf16_model.get());
    CHECK(q8 != nullptr && q16 != nullptr);

    // --- Accuracy: full-split AUC + fold-wise paired t-test. ---
    ForwardContext eval_ctx;
    const std::vector<float> probs_fp32 =
        EvalProbs(*fp32, p.data, p.splits.test, &eval_ctx);
    const std::vector<float> probs_int8 =
        EvalProbs(*int8_model, p.data, p.splits.test, &eval_ctx);
    const std::vector<float> probs_bf16 =
        EvalProbs(*bf16_model, p.data, p.splits.test, &eval_ctx);
    std::vector<float> labels;
    labels.reserve(p.splits.test.size());
    for (size_t row : p.splits.test) labels.push_back(p.data.label(row));
    const double auc_fp32 = Auc(probs_fp32, labels);
    const double auc_int8 = Auc(probs_int8, labels);
    const double auc_bf16 = Auc(probs_bf16, labels);

    const size_t n_folds = std::max<size_t>(2, flags.GetInt("folds"));
    std::vector<double> folds_fp32, folds_int8, folds_bf16, folds_ref;
    FoldAucs(probs_fp32, probs_int8, p.data, p.splits.test, n_folds,
             &folds_fp32, &folds_int8);
    FoldAucs(probs_fp32, probs_bf16, p.data, p.splits.test, n_folds,
             &folds_ref, &folds_bf16);
    const TTestResult t_int8 = PairedTTest(folds_fp32, folds_int8);
    const TTestResult t_bf16 = PairedTTest(folds_ref, folds_bf16);
    const bool int8_sig_worse = Mean(folds_int8) < Mean(folds_fp32) &&
                                t_int8.p_value < 0.05;
    const bool bf16_sig_worse = Mean(folds_bf16) < Mean(folds_ref) &&
                                t_bf16.p_value < 0.05;

    // --- Footprint: embedding bytes per row. ---
    const double rows_total = static_cast<double>(q8->EmbeddingRows());
    const double bpr_fp32 =
        static_cast<double>(q8->Fp32EmbeddingBytes()) / rows_total;
    const double bpr_int8 =
        static_cast<double>(q8->EmbeddingBytes()) / rows_total;
    const double bpr_bf16 =
        static_cast<double>(q16->EmbeddingBytes()) / rows_total;
    const double bytes_ratio = bpr_fp32 / bpr_int8;

    // --- Speed: batch-1 PredictNow, same server, snapshot hot-swapped. ---
    serve::ServeOptions sopts;
    serve::PredictServer server(p.data, sopts);
    const size_t n_req = std::min<size_t>(512, p.splits.test.size());
    std::vector<serve::PredictRequest> requests;
    requests.reserve(n_req);
    for (size_t k = 0; k < n_req; ++k) {
      requests.push_back(serve::RequestFromRow(p.data, p.splits.test[k]));
    }
    const double per_model_seconds = flags.GetDouble("per_model_seconds");
    CHECK_OK(server.Deploy(fp32_const));
    const ServeRun run_fp32 = DriveBatch1(&server, requests,
                                          per_model_seconds);
    CHECK_OK(server.Deploy(int8_model));
    const ServeRun run_int8 = DriveBatch1(&server, requests,
                                          per_model_seconds);
    CHECK_OK(server.Deploy(bf16_model));
    const ServeRun run_bf16 = DriveBatch1(&server, requests,
                                          per_model_seconds);
    const double speedup = run_int8.qps / run_fp32.qps;

    PrintHeader("Quantized serving: " + name);
    std::printf(
        "AUC       fp32 %.6f   int8 %.6f (Δ %+.6f, p=%.3f%s)   "
        "bf16 %.6f (Δ %+.6f, p=%.3f%s)\n",
        auc_fp32, auc_int8, auc_int8 - auc_fp32, t_int8.p_value,
        int8_sig_worse ? ", SIGNIFICANT LOSS" : "", auc_bf16,
        auc_bf16 - auc_fp32, t_bf16.p_value,
        bf16_sig_worse ? ", SIGNIFICANT LOSS" : "");
    std::printf(
        "bytes/row fp32 %.1f   int8 %.1f (%.2fx)   bf16 %.1f (%.2fx)\n",
        bpr_fp32, bpr_int8, bytes_ratio, bpr_bf16, bpr_fp32 / bpr_bf16);
    std::printf(
        "batch-1   fp32 %.0f qps (p99 %.0fus)   int8 %.0f qps "
        "(p99 %.0fus, %.2fx)   bf16 %.0f qps (p99 %.0fus)\n",
        run_fp32.qps, run_fp32.p99_us, run_int8.qps, run_int8.p99_us,
        speedup, run_bf16.qps, run_bf16.p99_us);
    std::printf(
        "note: single-core containers serialize everything — the ratio, "
        "not the absolute QPS, is the figure of merit\n");

    if (flags.GetBool("assert_auc") && (int8_sig_worse || bf16_sig_worse)) {
      std::fprintf(stderr,
                   "FAIL %s: quantized AUC significantly worse than fp32 "
                   "(int8 p=%.4f, bf16 p=%.4f)\n",
                   name.c_str(), t_int8.p_value, t_bf16.p_value);
      failed = true;
    }
    const double min_bytes_ratio = flags.GetDouble("assert_bytes_ratio");
    if (min_bytes_ratio > 0.0 && bytes_ratio < min_bytes_ratio) {
      std::fprintf(stderr, "FAIL %s: bytes ratio %.2fx < required %.2fx\n",
                   name.c_str(), bytes_ratio, min_bytes_ratio);
      failed = true;
    }
    const double min_speedup = flags.GetDouble("assert_speedup");
    if (min_speedup > 0.0 && speedup < min_speedup) {
      std::fprintf(stderr, "FAIL %s: int8 speedup %.2fx < required %.2fx\n",
                   name.c_str(), speedup, min_speedup);
      failed = true;
    }

    obs::JsonValue row = obs::JsonValue::MakeObject();
    row.Set("backend", obs::JsonValue::Str(ActiveKernelBackend()));
    row.Set("auc_fp32", obs::JsonValue::Double(auc_fp32));
    row.Set("auc_int8", obs::JsonValue::Double(auc_int8));
    row.Set("auc_bf16", obs::JsonValue::Double(auc_bf16));
    row.Set("auc_folds", obs::JsonValue::Uint(folds_fp32.size()));
    row.Set("p_value_int8", obs::JsonValue::Double(t_int8.p_value));
    row.Set("p_value_bf16", obs::JsonValue::Double(t_bf16.p_value));
    row.Set("bytes_per_row_fp32", obs::JsonValue::Double(bpr_fp32));
    row.Set("bytes_per_row_int8", obs::JsonValue::Double(bpr_int8));
    row.Set("bytes_per_row_bf16", obs::JsonValue::Double(bpr_bf16));
    row.Set("bytes_ratio_int8", obs::JsonValue::Double(bytes_ratio));
    row.Set("qps_fp32", obs::JsonValue::Double(run_fp32.qps));
    row.Set("qps_int8", obs::JsonValue::Double(run_int8.qps));
    row.Set("qps_bf16", obs::JsonValue::Double(run_bf16.qps));
    row.Set("latency_p99_us_fp32", obs::JsonValue::Double(run_fp32.p99_us));
    row.Set("latency_p99_us_int8", obs::JsonValue::Double(run_int8.p99_us));
    row.Set("speedup_int8", obs::JsonValue::Double(speedup));
    results.Set(name, std::move(row));
  }

  const std::string report_path = flags.GetString("report");
  if (!report_path.empty()) {
    run_report.AddSection("results", std::move(results));
    run_report.CaptureMetrics();
    run_report.CaptureSpans();
    std::string error;
    if (!run_report.WriteFile(report_path, &error)) {
      std::fprintf(stderr, "failed to write report %s: %s\n",
                   report_path.c_str(), error.c_str());
      return 1;
    }
    std::printf("\nrun report written to %s\n", report_path.c_str());
  }
  return failed ? 1 : 0;
}
