// Serial vs pipelined training executor comparison (perf harness for
// src/train/pipeline_executor.h): trains the same FixedArchModel — and
// runs the same joint-mode search stage — once with TrainOptions::pipeline
// off and once with it on, printing throughput rows plus the executor's
// stall/workspace counters. Quality columns (AUC/logloss) must match
// bitwise between the two modes at any thread count; that is the
// determinism contract the concurrency tests enforce. On a single core the
// two modes should also perform alike (the pipeline degrades to the serial
// schedule); multi-core speedups are what this harness exists to measure.

#include <cstdint>
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "core/fixed_arch_model.h"
#include "core/pipeline.h"
#include "models/interaction.h"
#include "obs/registry.h"

using namespace optinter;
using namespace optinter::bench;

namespace {

// Same mixed assignment the concurrency tests use: exercises the
// memorize/factorize/naive shards of the prepared batch at once.
Architecture MixedArch(size_t num_pairs) {
  Architecture arch(num_pairs, InterMethod::kNaive);
  if (num_pairs > 0) arch[0] = InterMethod::kMemorize;
  if (num_pairs > 1) arch[1] = InterMethod::kFactorize;
  return arch;
}

// Snapshot of the executor's cumulative counters, for per-run deltas.
struct PipelineCounters {
  uint64_t steps = 0;
  uint64_t stall_us = 0;
  uint64_t growth_steps = 0;
};

PipelineCounters ReadPipelineCounters() {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  PipelineCounters c;
  c.steps = reg.GetCounter("pipeline.steps")->Value();
  c.stall_us = reg.GetCounter("pipeline.stall_us")->Value();
  c.growth_steps = reg.GetCounter("pipeline.workspace_growth_steps")->Value();
  return c;
}

std::string PipelineExtra(const PipelineCounters& before,
                          const PipelineCounters& after) {
  const uint64_t steps = after.steps - before.steps;
  if (steps == 0) return "serial path";
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%llu steps, stall %.1fms, %llu growth steps, ws %s",
                static_cast<unsigned long long>(steps),
                static_cast<double>(after.stall_us - before.stall_us) / 1e3,
                static_cast<unsigned long long>(after.growth_steps -
                                                before.growth_steps),
                HumanCount(static_cast<size_t>(
                               obs::MetricsRegistry::Global()
                                   .GetGauge("pipeline.workspace_bytes")
                                   ->Value()))
                    .c_str());
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  AddCommonFlags(&flags);
  flags.AddBool("search", true,
                "also compare serial vs pipelined joint-mode search epochs");
  int exit_code = 0;
  if (!ParseOrExit(&flags, argc, argv, &exit_code)) return exit_code;
  BenchReport report("train_pipeline", flags);

  for (const auto& name : DatasetList(flags, {"tiny"})) {
    PrepareOptions popts;
    popts.rows_scale = flags.GetDouble("rows_scale");
    auto prepared = PrepareProfile(name, popts);
    if (!prepared.ok()) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(),
                   prepared.status().ToString().c_str());
      return 1;
    }
    const PreparedDataset& p = *prepared;
    HyperParams hp = DefaultHyperParams(name);
    ApplyOverrides(flags, &hp);
    const TrainOptions topts = MakeTrainOptions(flags, hp);

    report.Section("Pipelined trainer: " + name);
    for (const bool pipelined : {false, true}) {
      FixedArchModel model(p.data, MixedArch(p.data.num_pairs()), hp,
                           pipelined ? "fixed-pipelined" : "fixed-serial");
      TrainOptions run = topts;
      run.pipeline = pipelined;
      const PipelineCounters before = ReadPipelineCounters();
      const TrainSummary s = TrainModel(&model, p.data, p.splits, run);
      const PipelineCounters after = ReadPipelineCounters();
      report.AddRow(pipelined ? "Train/pipelined" : "Train/serial",
                    s.final_test.auc, s.final_test.logloss,
                    model.ParamCount(), s.telemetry,
                    pipelined ? PipelineExtra(before, after) : "");
    }

    if (flags.GetBool("search")) {
      for (const bool pipelined : {false, true}) {
        SearchOptions sopts;
        sopts.search_epochs = hp.search_epochs;
        sopts.verbose = flags.GetBool("verbose");
        sopts.pipeline = pipelined;
        const PipelineCounters before = ReadPipelineCounters();
        const SearchResult r = RunSearchStage(p.data, p.splits, hp, sopts);
        const PipelineCounters after = ReadPipelineCounters();
        report.AddRow(pipelined ? "Search/pipelined" : "Search/serial",
                      r.search_val.auc, r.search_val.logloss, /*params=*/0,
                      pipelined ? PipelineExtra(before, after) : "");
      }
    }
  }
  return report.Finish();
}
