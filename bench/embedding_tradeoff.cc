// Embedding-backend trade-off sweep (DESIGN.md §12): AUC vs parameter
// bytes for the cross-table storage backends — dense (the paper's
// memorize tables), QR-compositional (sum and mul combiners), and
// frequency-tiered (hot rows + hashed cold tail).
//
// For each backend the full OptInter pipeline reruns end to end: search
// (so the selection map can react to the changed memorization cost),
// then re-train from scratch with the searched architecture. Rows
// record AUC / logloss / params plus:
//
//   cross_bytes        actual cross-table storage (backing rows × dim ×
//                      4 B + the tiered remap's aux bytes),
//   cross_bytes_ratio  dense-equivalent bytes of the SAME tables over
//                      cross_bytes — the honest compression ratio, not
//                      confounded by the backends memorizing different
//                      pair sets,
//   auc_delta_vs_dense AUC minus the dense baseline's AUC,
//   drift (extra)      per-pair selection-map changes vs the dense
//                      search — memorize/factorize/naive choice drift.
//
// Writes a JSON run report with --report=PATH; tools/bench_compare gates
// CI against the committed BENCH_embedding.json.
//
// CI assertions (off by default):
//   --assert_bytes_ratio=R  fail when a compressed backend's
//                           cross_bytes_ratio falls below R
//                           (deterministic; pure layout arithmetic).
//   --assert_auc_delta=D    fail when a compressed backend's AUC drops
//                           more than D below dense.

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/fixed_arch_model.h"
#include "core/pipeline.h"
#include "models/cross_embedding.h"
#include "nn/embedding.h"

using namespace optinter;
using namespace optinter::bench;

namespace {

bool ParseBackend(const std::string& name, EmbeddingBackendConfig* out) {
  if (name == "dense") {
    *out = EmbeddingBackendConfig::Dense();
  } else if (name == "qr" || name == "qr_sum") {
    *out = EmbeddingBackendConfig::QR();
  } else if (name == "qr_mul") {
    *out = EmbeddingBackendConfig::QR(0, QrCombine::kMul);
  } else if (name == "tiered") {
    *out = EmbeddingBackendConfig::Tiered();
  } else {
    return false;
  }
  return true;
}

/// Actual bytes of the model's cross tables (params + tiered remap) and
/// what the same tables would cost stored densely.
struct CrossBytes {
  size_t actual = 0;
  size_t dense_equiv = 0;
};

CrossBytes MeasureCrossBytes(const FixedArchModel& model) {
  CrossBytes b;
  const CrossEmbedding* cross = model.cross_embedding();
  if (cross == nullptr) return b;
  for (size_t k = 0; k < cross->num_pairs(); ++k) {
    const EmbeddingTable& t = cross->table(k);
    b.actual += t.ParamCount() * sizeof(float) + t.AuxBytes();
    b.dense_equiv += t.vocab_size() * t.dim() * sizeof(float);
  }
  return b;
}

size_t CountDrift(const Architecture& a, const Architecture& b) {
  size_t drift = 0;
  for (size_t p = 0; p < a.size() && p < b.size(); ++p) {
    if (a[p] != b[p]) ++drift;
  }
  return drift;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  AddCommonFlags(&flags);
  flags.AddString("backends", "dense,qr,qr_mul,tiered",
                  "comma-separated backend sweep (dense, qr, qr_mul, "
                  "tiered); the first entry is the drift/AUC baseline");
  flags.AddDouble("assert_bytes_ratio", 0.0,
                  "fail when a compressed backend's cross_bytes_ratio is "
                  "below this (0 = off)");
  flags.AddDouble("assert_auc_delta", 0.0,
                  "fail when a compressed backend's AUC drops more than "
                  "this below the baseline (0 = off)");
  int exit_code = 0;
  if (!ParseOrExit(&flags, argc, argv, &exit_code)) return exit_code;

  std::vector<std::string> backends;
  for (const auto& part : Split(flags.GetString("backends"), ',')) {
    std::string name(Trim(part));
    if (!name.empty()) backends.push_back(std::move(name));
  }
  if (backends.empty()) {
    std::fprintf(stderr, "--backends is empty\n");
    return 1;
  }

  BenchReport report("embedding_tradeoff", flags);
  bool assert_failed = false;

  for (const auto& dataset :
       DatasetList(flags, {"criteo_like", "avazu_like"})) {
    PrepareOptions popts;
    popts.rows_scale = flags.GetDouble("rows_scale");
    auto prepared = PrepareProfile(dataset, popts);
    if (!prepared.ok()) {
      std::fprintf(stderr, "%s: %s\n", dataset.c_str(),
                   prepared.status().ToString().c_str());
      return 1;
    }
    const PreparedDataset& p = *prepared;
    HyperParams base_hp = DefaultHyperParams(dataset);
    ApplyOverrides(flags, &base_hp);
    const TrainOptions topts = MakeTrainOptions(flags, base_hp);

    report.Section(dataset);
    Architecture base_arch;
    double base_auc = 0.0;
    for (const std::string& name : backends) {
      HyperParams hp = base_hp;
      if (!ParseBackend(name, &hp.cross_backend)) {
        std::fprintf(stderr, "unknown backend '%s'\n", name.c_str());
        return 1;
      }

      SearchOptions sopts;
      sopts.search_epochs = hp.search_epochs;
      sopts.verbose = flags.GetBool("verbose");
      SearchResult search = RunSearchStage(p.data, p.splits, hp, sopts);

      FixedArchModel model(p.data, search.arch, hp, name);
      TrainSummary summary = TrainModel(&model, p.data, p.splits, topts);

      const CrossBytes bytes = MeasureCrossBytes(model);
      const double ratio =
          bytes.actual > 0
              ? static_cast<double>(bytes.dense_equiv) / bytes.actual
              : 1.0;
      const bool is_baseline = base_arch.empty();
      if (is_baseline) {
        base_arch = search.arch;
        base_auc = summary.final_test.auc;
      }
      const size_t drift = CountDrift(base_arch, search.arch);
      const double auc_delta = summary.final_test.auc - base_auc;

      report.AddRow(
          name, summary.final_test.auc, summary.final_test.logloss,
          model.ParamCount(), summary.telemetry,
          StrFormat("cross %.2f KiB (%.1fx dense)  drift %zu/%zu pairs",
                    bytes.actual / 1024.0, ratio, drift, base_arch.size()));
      report.AnnotateLastRow("cross_bytes",
                             obs::JsonValue::Uint(bytes.actual));
      report.AnnotateLastRow("cross_bytes_ratio",
                             obs::JsonValue::Double(ratio));
      report.AnnotateLastRow("auc_delta_vs_dense",
                             obs::JsonValue::Double(auc_delta));

      if (!is_baseline) {
        const double min_ratio = flags.GetDouble("assert_bytes_ratio");
        if (min_ratio > 0.0 && bytes.actual > 0 && ratio < min_ratio) {
          std::fprintf(stderr,
                       "ASSERT FAILED: %s/%s cross_bytes_ratio %.2f < %.2f\n",
                       dataset.c_str(), name.c_str(), ratio, min_ratio);
          assert_failed = true;
        }
        const double max_delta = flags.GetDouble("assert_auc_delta");
        if (max_delta > 0.0 && auc_delta < -max_delta) {
          std::fprintf(stderr,
                       "ASSERT FAILED: %s/%s AUC dropped %.4f (> %.4f) "
                       "below %s\n",
                       dataset.c_str(), name.c_str(), -auc_delta, max_delta,
                       backends.front().c_str());
          assert_failed = true;
        }
      }
    }
  }

  const int report_code = report.Finish();
  if (report_code != 0) return report_code;
  return assert_failed ? 1 : 0;
}
