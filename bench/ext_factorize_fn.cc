// Factorization-function extension ablation (paper §II-C1: Hadamard is
// "the representative" and the framework "can be extended easily to
// taking multiple operations into account"): run OptInter-F and the full
// OptInter pipeline with each supported factorization function and
// compare.

#include <cstdio>

#include "bench_util.h"
#include "core/fixed_arch_model.h"
#include "core/pipeline.h"

using namespace optinter;
using namespace optinter::bench;

int main(int argc, char** argv) {
  FlagParser flags;
  AddCommonFlags(&flags);
  int exit_code = 0;
  if (!ParseOrExit(&flags, argc, argv, &exit_code)) return exit_code;

  for (const auto& name : DatasetList(flags, {"criteo_like"})) {
    PrepareOptions popts;
    popts.rows_scale = flags.GetDouble("rows_scale");
    auto prepared = PrepareProfile(name, popts);
    if (!prepared.ok()) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(),
                   prepared.status().ToString().c_str());
      return 1;
    }
    const PreparedDataset& p = *prepared;

    PrintHeader("Factorization-function ablation: " + name);
    for (const FactorizeFn fn :
         {FactorizeFn::kHadamard, FactorizeFn::kInnerProduct,
          FactorizeFn::kPointwiseSum}) {
      HyperParams hp = DefaultHyperParams(name);
      ApplyOverrides(flags, &hp);
      hp.factorize_fn = fn;
      TrainOptions topts = MakeTrainOptions(flags, hp);

      {
        auto model = FixedArchModel::MakeOptInterF(p.data, hp);
        TrainSummary s = TrainModel(model.get(), p.data, p.splits, topts);
        PrintModelRow(StrFormat("OptInter-F/%s", FactorizeFnName(fn)),
                      s.final_test.auc, s.final_test.logloss,
                      model->ParamCount());
      }
      {
        SearchOptions sopts;
        sopts.search_epochs = hp.search_epochs;
        sopts.verbose = flags.GetBool("verbose");
        OptInterResult r = RunOptInter(p.data, p.splits, hp, sopts, topts);
        PrintModelRow(StrFormat("OptInter/%s", FactorizeFnName(fn)),
                      r.retrain.final_test.auc,
                      r.retrain.final_test.logloss, r.param_count,
                      ArchCountsToString(
                          CountArchitecture(r.search.arch)));
      }
    }
  }
  return 0;
}
