// Ablation of the Gumbel-softmax temperature schedule (design choice
// called out in DESIGN.md): annealed τ (start → end) vs fixed-high τ
// (soft mixtures throughout — candidates blur together) vs fixed-low τ
// (near-one-hot from the start — noisy, exploration-starved gradients).

#include <cstdio>

#include "bench_util.h"
#include "core/pipeline.h"

using namespace optinter;
using namespace optinter::bench;

int main(int argc, char** argv) {
  FlagParser flags;
  AddCommonFlags(&flags);
  int exit_code = 0;
  if (!ParseOrExit(&flags, argc, argv, &exit_code)) return exit_code;
  BenchReport report("ablation_temperature", flags);

  for (const auto& name : DatasetList(flags, {"criteo_like"})) {
    PrepareOptions popts;
    popts.rows_scale = flags.GetDouble("rows_scale");
    auto prepared = PrepareProfile(name, popts);
    if (!prepared.ok()) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(),
                   prepared.status().ToString().c_str());
      return 1;
    }
    const PreparedDataset& p = *prepared;

    struct Setting {
      const char* label;
      bool anneal;
      float tau_start;
      float tau_end;
    };
    const Setting kSettings[] = {
        {"anneal 1.0->0.2", true, 1.0f, 0.2f},
        {"fixed 1.0", false, 1.0f, 1.0f},
        {"fixed 0.2", false, 0.2f, 0.2f},
    };

    report.Section("Temperature-schedule ablation: " + name);
    for (const auto& s : kSettings) {
      HyperParams hp = DefaultHyperParams(name);
      ApplyOverrides(flags, &hp);
      hp.gumbel_temp_start = s.tau_start;
      hp.gumbel_temp_end = s.tau_end;
      TrainOptions topts = MakeTrainOptions(flags, hp);
      SearchOptions sopts;
      sopts.search_epochs = hp.search_epochs;
      sopts.anneal_temperature = s.anneal;
      sopts.verbose = flags.GetBool("verbose");
      OptInterResult r = RunOptInter(p.data, p.splits, hp, sopts, topts);
      report.AddRow(s.label, r.retrain.final_test.auc,
                    r.retrain.final_test.logloss, r.param_count,
                    r.retrain.telemetry,
                    ArchCountsToString(CountArchitecture(r.search.arch)));
      report.AnnotateLastRow(
          "search_dynamics", obs::SearchDynamicsToJson(r.search.dynamics));
    }
  }
  return report.Finish();
}
