// Table VII reproduction: comparison with naïve and factorized models
// given roughly the same parameter budget (paper §III-C). The baselines'
// original-feature embedding size is enlarged (paper: 20× on Criteo,
// 17.5× on Avazu) so their parameter counts approach OptInter's; the
// paper's finding is that bigger embeddings do NOT close the gap — the
// extra space is better spent memorizing selected interactions.

#include <cstdio>

#include "bench_util.h"
#include "core/pipeline.h"
#include "core/zoo.h"

using namespace optinter;
using namespace optinter::bench;

int main(int argc, char** argv) {
  FlagParser flags;
  AddCommonFlags(&flags);
  flags.AddInt("embed_factor", 8,
               "embedding-size multiplier for the baselines (paper: 20x / "
               "17.5x)");
  int exit_code = 0;
  if (!ParseOrExit(&flags, argc, argv, &exit_code)) return exit_code;
  BenchReport report("table7_param_matched", flags);

  for (const auto& name :
       DatasetList(flags, {"criteo_like", "avazu_like"})) {
    PrepareOptions popts;
    popts.rows_scale = flags.GetDouble("rows_scale");
    auto prepared = PrepareProfile(name, popts);
    if (!prepared.ok()) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(),
                   prepared.status().ToString().c_str());
      return 1;
    }
    const PreparedDataset& p = *prepared;
    HyperParams hp = DefaultHyperParams(name);
    ApplyOverrides(flags, &hp);
    TrainOptions topts = MakeTrainOptions(flags, hp);

    report.Section("Table VII analogue: " + name +
                   " (param-matched baselines)");

    HyperParams big = hp;
    big.embed_dim =
        hp.embed_dim * static_cast<size_t>(flags.GetInt("embed_factor"));
    std::printf("baseline Orig.E. = %zu, OptInter Orig.E. = %zu / "
                "Cross.E. = %zu\n",
                big.embed_dim, hp.embed_dim, hp.cross_embed_dim);

    for (const auto& model_name : {"FM", "FNN", "IPNN", "DeepFM"}) {
      auto model = CreateBaseline(model_name, p.data, big);
      CHECK(model.ok()) << model.status().ToString();
      TrainSummary s = TrainModel(model->get(), p.data, p.splits, topts);
      report.AddRow(model_name, s.final_test.auc, s.final_test.logloss,
                    (*model)->ParamCount(), s.telemetry,
                    StrFormat("Orig.E.=%zu", big.embed_dim));
    }
    {
      SearchOptions sopts;
      sopts.search_epochs = hp.search_epochs;
      sopts.verbose = flags.GetBool("verbose");
      OptInterResult r = RunOptInter(p.data, p.splits, hp, sopts, topts);
      report.AddRow("OptInter", r.retrain.final_test.auc,
                    r.retrain.final_test.logloss, r.param_count,
                    r.retrain.telemetry,
                    StrFormat("Orig.E.=%zu Cross.E.=%zu arch=%s",
                              hp.embed_dim, hp.cross_embed_dim,
                              ArchCountsToString(
                                  CountArchitecture(r.search.arch))
                                  .c_str()));
      report.AnnotateLastRow(
          "search_dynamics", obs::SearchDynamicsToJson(r.search.dynamics));
    }
  }
  return report.Finish();
}
