// Micro-benchmarks for the hot numeric kernels underlying every
// experiment: GEMM variants, elementwise/reduction kernels, embedding
// gather/scatter + sparse Adam, Hadamard interaction blocks,
// Gumbel-softmax sampling, and AUC.
//
// Every FLOP-bound benchmark reports GFLOP/s ("FLOPS" counter) and every
// kernel reports memory traffic as GB/s ("BYTES" counter), so the perf
// trajectory of the kernel layer is recorded run over run. A custom main
// accepts --report=PATH (the same flag as the table/figure harnesses) and
// writes google-benchmark's JSON there — CI emits BENCH_kernels.json from
// it.

#include <benchmark/benchmark.h>

#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "metrics/metrics.h"
#include "nn/embedding.h"
#include "nn/layers.h"
#include "nn/optimizer.h"
#include "nn/param.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "tensor/kernels.h"

namespace optinter {
namespace {

// FLOPS/BYTES rate counters: google-benchmark divides by wall time and
// prints with G/M suffixes, so these read directly as GFLOP/s and GB/s.
void SetRateCounters(benchmark::State& state, double flops_per_iter,
                     double bytes_per_iter) {
  if (flops_per_iter > 0) {
    state.counters["FLOPS"] = benchmark::Counter(
        flops_per_iter * static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate, benchmark::Counter::OneK::kIs1000);
  }
  state.counters["BYTES"] = benchmark::Counter(
      bytes_per_iter * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate, benchmark::Counter::OneK::kIs1000);
}

void SetGemmCounters(benchmark::State& state, size_t m, size_t k, size_t n) {
  const double flops = 2.0 * static_cast<double>(m * k * n);
  const double bytes =
      4.0 * static_cast<double>(m * k + k * n + 2 * m * n);
  SetRateCounters(state, flops, bytes);
}

void BM_GemmNN(benchmark::State& state) {
  const size_t m = static_cast<size_t>(state.range(0));
  const size_t k = 256;
  const size_t n = 64;
  std::vector<float> a(m * k, 0.5f), b(k * n, 0.25f), c(m * n);
  for (auto _ : state) {
    GemmNN(a.data(), b.data(), c.data(), m, k, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(m * k * n));
  SetGemmCounters(state, m, k, n);
}
BENCHMARK(BM_GemmNN)->Arg(64)->Arg(256)->Arg(1024);

void BM_GemmNT(benchmark::State& state) {
  const size_t m = static_cast<size_t>(state.range(0));
  const size_t k = 256;
  const size_t n = 64;
  std::vector<float> a(m * k, 0.5f), b(n * k, 0.25f), c(m * n);
  for (auto _ : state) {
    GemmNT(a.data(), b.data(), c.data(), m, k, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(m * k * n));
  SetGemmCounters(state, m, k, n);
}
BENCHMARK(BM_GemmNT)->Arg(64)->Arg(256)->Arg(1024);

void BM_GemmTN(benchmark::State& state) {
  const size_t m = static_cast<size_t>(state.range(0));
  const size_t k = 256;
  const size_t n = 64;
  std::vector<float> a(m * k, 0.5f), b(m * n, 0.25f), c(k * n);
  for (auto _ : state) {
    GemmTN(a.data(), b.data(), c.data(), m, k, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(m * k * n));
  SetGemmCounters(state, m, k, n);
}
BENCHMARK(BM_GemmTN)->Arg(64)->Arg(512)->Arg(2048);

void BM_Dot(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<float> x(n, 0.5f), y(n, 0.25f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Dot(n, x.data(), y.data()));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
  SetRateCounters(state, 2.0 * static_cast<double>(n),
                  8.0 * static_cast<double>(n));
}
BENCHMARK(BM_Dot)->Arg(64)->Arg(4096);

void BM_Axpy(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<float> x(n, 0.5f), y(n, 0.25f);
  for (auto _ : state) {
    Axpy(n, 0.001f, x.data(), y.data());
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
  SetRateCounters(state, 2.0 * static_cast<double>(n),
                  12.0 * static_cast<double>(n));
}
BENCHMARK(BM_Axpy)->Arg(64)->Arg(4096);

void BM_SigmoidForward(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<float> z(n), out(n);
  for (size_t i = 0; i < n; ++i) {
    z[i] = static_cast<float>(i % 17) - 8.0f;
  }
  for (auto _ : state) {
    SigmoidForward(z.data(), n, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
  SetRateCounters(state, 0.0, 8.0 * static_cast<double>(n));
}
BENCHMARK(BM_SigmoidForward)->Arg(4096);

void BM_ReluForward(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Relu relu;
  ReluWorkspace ws;
  Tensor x({n}), y;
  for (size_t i = 0; i < n; ++i) {
    x[i] = static_cast<float>(i % 7) - 3.0f;
  }
  for (auto _ : state) {
    relu.Forward(x, &y, &ws);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
  SetRateCounters(state, 0.0, 12.0 * static_cast<double>(n));
}
BENCHMARK(BM_ReluForward)->Arg(16384);

void BM_DenseAdamStep(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  DenseParam p;
  p.name = "bench";
  p.Resize({n});
  p.lr = 1e-3f;
  p.l2 = 1e-6f;
  // Every gradient is nonzero so the moment state is stationary: with a
  // zero gradient, v decays by b2 every step and drifts into subnormal
  // range, where each sqrt/div takes a microcode assist — throughput then
  // degrades with iteration count and runs with different auto-chosen
  // iteration budgets are not comparable.
  for (size_t i = 0; i < n; ++i) {
    p.value[i] = static_cast<float>(i % 13) * 0.01f;
    p.grad[i] = static_cast<float>(i % 7 + 1) * 0.001f;
  }
  Adam adam{AdamConfig{}};
  adam.AddParam(&p);
  for (auto _ : state) {
    adam.Step();
    benchmark::DoNotOptimize(p.value.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
  // ~12 flops/elem (2 fma + bias-correct divide + sqrt + update), touches
  // w, g, m, v (reads) and w, m, v (writes).
  SetRateCounters(state, 12.0 * static_cast<double>(n),
                  28.0 * static_cast<double>(n));
}
BENCHMARK(BM_DenseAdamStep)->Arg(65536);

void BM_EmbeddingGather(benchmark::State& state) {
  const size_t vocab = 100000;
  const size_t dim = 16;
  const size_t batch = static_cast<size_t>(state.range(0));
  Rng rng(1);
  EmbeddingTable table("bench", vocab, dim, 1e-3f, 0.0f);
  table.Init(&rng);
  std::vector<int32_t> ids(batch);
  for (auto& id : ids) {
    id = static_cast<int32_t>(rng.UniformInt(vocab));
  }
  std::vector<float> out(batch * dim);
  for (auto _ : state) {
    for (size_t k = 0; k < batch; ++k) {
      const float* row = table.Row(ids[k]);
      std::copy(row, row + dim, out.data() + k * dim);
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(batch));
  SetRateCounters(state, 0.0, 8.0 * static_cast<double>(batch * dim));
}
BENCHMARK(BM_EmbeddingGather)->Arg(512)->Arg(4096);

void BM_SparseAdamStep(benchmark::State& state) {
  const size_t vocab = 100000;
  const size_t dim = 16;
  const size_t batch = static_cast<size_t>(state.range(0));
  Rng rng(1);
  EmbeddingTable table("bench", vocab, dim, 1e-3f, 1e-6f);
  table.Init(&rng);
  std::vector<float> grad(dim, 0.01f);
  for (auto _ : state) {
    for (size_t k = 0; k < batch; ++k) {
      table.AccumulateGrad(static_cast<int32_t>(rng.UniformInt(vocab)),
                           grad.data());
    }
    table.SparseAdamStep();
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(batch));
  SetRateCounters(state, 12.0 * static_cast<double>(batch * dim),
                  28.0 * static_cast<double>(batch * dim));
}
BENCHMARK(BM_SparseAdamStep)->Arg(512)->Arg(4096);

void BM_HadamardBlock(benchmark::State& state) {
  const size_t pairs = 78;
  const size_t dim = 16;
  std::vector<float> e(17 * dim, 0.3f), out(pairs * dim);
  for (auto _ : state) {
    size_t p = 0;
    for (size_t i = 0; i < 13; ++i) {
      for (size_t j = i + 1; j < 13; ++j, ++p) {
        Hadamard(dim, e.data() + i * dim, e.data() + j * dim,
                 out.data() + p * dim);
      }
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(pairs * dim));
  SetRateCounters(state, static_cast<double>(pairs * dim),
                  12.0 * static_cast<double>(pairs * dim));
}
BENCHMARK(BM_HadamardBlock);

void BM_GumbelSoftmaxSample(benchmark::State& state) {
  const size_t pairs = static_cast<size_t>(state.range(0));
  Rng rng(1);
  std::vector<float> alpha(pairs * 3, 0.1f), probs(pairs * 3);
  const float tau = 0.5f;
  for (auto _ : state) {
    float noisy[3];
    for (size_t p = 0; p < pairs; ++p) {
      for (int k = 0; k < 3; ++k) {
        noisy[k] = (alpha[p * 3 + k] + static_cast<float>(rng.Gumbel())) /
                   tau;
      }
      Softmax(3, noisy, probs.data() + p * 3);
    }
    benchmark::DoNotOptimize(probs.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(pairs));
}
BENCHMARK(BM_GumbelSoftmaxSample)->Arg(78)->Arg(325);

void BM_Auc(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(1);
  std::vector<float> scores(n), labels(n);
  for (size_t i = 0; i < n; ++i) {
    scores[i] = static_cast<float>(rng.Uniform());
    labels[i] = rng.Bernoulli(0.2) ? 1.0f : 0.0f;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(Auc(scores, labels));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_Auc)->Arg(10000)->Arg(100000);

// -- Observability overhead --------------------------------------------------
// The per-call cost of the instrumentation primitives themselves, with the
// runtime switch on and off. "Off" should be a branch on one relaxed
// atomic load (the ≈0-overhead kill switch); "on" bounds what a span adds
// to an instrumented kernel (two clock reads + two relaxed adds).

void BM_TraceSpan(benchmark::State& state) {
  obs::SetEnabled(state.range(0) != 0);
  for (auto _ : state) {
    OPTINTER_TRACE_SPAN("bench_overhead");
    benchmark::ClobberMemory();
  }
  obs::SetEnabled(true);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceSpan)->Arg(0)->Arg(1);

void BM_CounterAdd(benchmark::State& state) {
  obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("bench.counter_overhead");
  for (auto _ : state) {
    c->Add(1);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterAdd);

void BM_HistogramObserve(benchmark::State& state) {
  obs::Histogram* h = obs::MetricsRegistry::Global().GetHistogram(
      "bench.histogram_overhead", {1.0, 10.0, 100.0, 1000.0});
  double v = 0.0;
  for (auto _ : state) {
    h->Observe(v);
    v = v < 2000.0 ? v + 1.0 : 0.0;
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramObserve);

}  // namespace
}  // namespace optinter

// Custom main instead of benchmark_main: accepts the repo-wide
// --report=PATH flag and mirrors the run as google-benchmark JSON there
// (console output is unchanged). CI uses it to emit BENCH_kernels.json.
// --report is rewritten into the native --benchmark_out flags so the
// library's own file-reporter plumbing does the work.
int main(int argc, char** argv) {
  std::string report_path;
  std::vector<std::string> arg_strings;
  arg_strings.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--report=", 9) == 0) {
      report_path = argv[i] + 9;
    } else {
      arg_strings.push_back(argv[i]);
    }
  }
  if (!report_path.empty()) {
    arg_strings.push_back("--benchmark_out=" + report_path);
    arg_strings.push_back("--benchmark_out_format=json");
  }
  std::vector<char*> args;
  for (std::string& s : arg_strings) args.push_back(s.data());
  int bench_argc = static_cast<int>(args.size());
  benchmark::Initialize(&bench_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  if (!report_path.empty()) {
    std::printf("\nrun report written to %s\n", report_path.c_str());
  }
  benchmark::Shutdown();
  return 0;
}
