// Micro-benchmarks for the hot numeric kernels underlying every
// experiment: GEMM variants, embedding gather/scatter + sparse Adam,
// Hadamard interaction blocks, Gumbel-softmax sampling, and AUC.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "metrics/metrics.h"
#include "nn/embedding.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "tensor/kernels.h"

namespace optinter {
namespace {

void BM_GemmNT(benchmark::State& state) {
  const size_t m = static_cast<size_t>(state.range(0));
  const size_t k = 256;
  const size_t n = 64;
  std::vector<float> a(m * k, 0.5f), b(n * k, 0.25f), c(m * n);
  for (auto _ : state) {
    GemmNT(a.data(), b.data(), c.data(), m, k, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(m * k * n));
}
BENCHMARK(BM_GemmNT)->Arg(64)->Arg(256)->Arg(1024);

void BM_GemmTN(benchmark::State& state) {
  const size_t m = static_cast<size_t>(state.range(0));
  const size_t k = 256;
  const size_t n = 64;
  std::vector<float> a(m * k, 0.5f), b(m * n, 0.25f), c(k * n);
  for (auto _ : state) {
    GemmTN(a.data(), b.data(), c.data(), m, k, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(m * k * n));
}
BENCHMARK(BM_GemmTN)->Arg(64)->Arg(512)->Arg(2048);

void BM_EmbeddingGather(benchmark::State& state) {
  const size_t vocab = 100000;
  const size_t dim = 16;
  const size_t batch = static_cast<size_t>(state.range(0));
  Rng rng(1);
  EmbeddingTable table("bench", vocab, dim, 1e-3f, 0.0f);
  table.Init(&rng);
  std::vector<int32_t> ids(batch);
  for (auto& id : ids) {
    id = static_cast<int32_t>(rng.UniformInt(vocab));
  }
  std::vector<float> out(batch * dim);
  for (auto _ : state) {
    for (size_t k = 0; k < batch; ++k) {
      const float* row = table.Row(ids[k]);
      std::copy(row, row + dim, out.data() + k * dim);
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(batch));
}
BENCHMARK(BM_EmbeddingGather)->Arg(512)->Arg(4096);

void BM_SparseAdamStep(benchmark::State& state) {
  const size_t vocab = 100000;
  const size_t dim = 16;
  const size_t batch = static_cast<size_t>(state.range(0));
  Rng rng(1);
  EmbeddingTable table("bench", vocab, dim, 1e-3f, 1e-6f);
  table.Init(&rng);
  std::vector<float> grad(dim, 0.01f);
  for (auto _ : state) {
    for (size_t k = 0; k < batch; ++k) {
      table.AccumulateGrad(static_cast<int32_t>(rng.UniformInt(vocab)),
                           grad.data());
    }
    table.SparseAdamStep();
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(batch));
}
BENCHMARK(BM_SparseAdamStep)->Arg(512)->Arg(4096);

void BM_HadamardBlock(benchmark::State& state) {
  const size_t pairs = 78;
  const size_t dim = 16;
  std::vector<float> e(17 * dim, 0.3f), out(pairs * dim);
  for (auto _ : state) {
    size_t p = 0;
    for (size_t i = 0; i < 13; ++i) {
      for (size_t j = i + 1; j < 13; ++j, ++p) {
        Hadamard(dim, e.data() + i * dim, e.data() + j * dim,
                 out.data() + p * dim);
      }
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(pairs * dim));
}
BENCHMARK(BM_HadamardBlock);

void BM_GumbelSoftmaxSample(benchmark::State& state) {
  const size_t pairs = static_cast<size_t>(state.range(0));
  Rng rng(1);
  std::vector<float> alpha(pairs * 3, 0.1f), probs(pairs * 3);
  const float tau = 0.5f;
  for (auto _ : state) {
    float noisy[3];
    for (size_t p = 0; p < pairs; ++p) {
      for (int k = 0; k < 3; ++k) {
        noisy[k] = (alpha[p * 3 + k] + static_cast<float>(rng.Gumbel())) /
                   tau;
      }
      Softmax(3, noisy, probs.data() + p * 3);
    }
    benchmark::DoNotOptimize(probs.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(pairs));
}
BENCHMARK(BM_GumbelSoftmaxSample)->Arg(78)->Arg(325);

void BM_Auc(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(1);
  std::vector<float> scores(n), labels(n);
  for (size_t i = 0; i < n; ++i) {
    scores[i] = static_cast<float>(rng.Uniform());
    labels[i] = rng.Bernoulli(0.2) ? 1.0f : 0.0f;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(Auc(scores, labels));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_Auc)->Arg(10000)->Arg(100000);

// -- Observability overhead --------------------------------------------------
// The per-call cost of the instrumentation primitives themselves, with the
// runtime switch on and off. "Off" should be a branch on one relaxed
// atomic load (the ≈0-overhead kill switch); "on" bounds what a span adds
// to an instrumented kernel (two clock reads + two relaxed adds).

void BM_TraceSpan(benchmark::State& state) {
  obs::SetEnabled(state.range(0) != 0);
  for (auto _ : state) {
    OPTINTER_TRACE_SPAN("bench_overhead");
    benchmark::ClobberMemory();
  }
  obs::SetEnabled(true);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceSpan)->Arg(0)->Arg(1);

void BM_CounterAdd(benchmark::State& state) {
  obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("bench.counter_overhead");
  for (auto _ : state) {
    c->Add(1);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterAdd);

void BM_HistogramObserve(benchmark::State& state) {
  obs::Histogram* h = obs::MetricsRegistry::Global().GetHistogram(
      "bench.histogram_overhead", {1.0, 10.0, 100.0, 1000.0});
  double v = 0.0;
  for (auto _ : state) {
    h->Observe(v);
    v = v < 2000.0 ? v + 1.0 : 0.0;
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramObserve);

}  // namespace
}  // namespace optinter
